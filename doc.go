// Package climcompress is a from-scratch Go reproduction of Baker et al.,
// "A Methodology for Evaluating the Impact of Data Compression on Climate
// Simulation Data" (HPDC 2014): a verification methodology that decides
// whether lossily compressed climate-model output is statistically
// distinguishable from the model's natural variability, evaluated over
// reimplementations of the four compressors the paper studies (fpzip,
// APAX, ISABELA, GRIB2+JPEG2000) on a synthetic CESM/CAM substrate.
//
// Start with internal/core for the verification API, cmd/climatebench to
// regenerate the paper's tables and figures, and the examples/ directory
// for runnable walkthroughs. DESIGN.md maps every paper artifact to the
// module that reproduces it; EXPERIMENTS.md records paper-vs-measured
// results.
package climcompress
