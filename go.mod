module climcompress

go 1.22
