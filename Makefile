# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench bench-json bench-diff fuzz vet fmt verify experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The tier-1 gate plus static analysis: what CI runs on every change. When
# both benchmark snapshots are present the benchdiff performance gate runs
# too; otherwise it is skipped (fresh checkouts have no snapshots).
verify:
	$(GO) build ./...
	$(GO) build ./cmd/benchdiff
	$(GO) vet ./...
	$(GO) test ./...
	@if [ -f $(BASE) ] && [ -f $(HEAD) ]; then \
		$(GO) run ./cmd/benchdiff -base $(BASE) -head $(HEAD); \
	else \
		echo "benchdiff gate skipped: $(BASE) and/or $(HEAD) not present"; \
	fi

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable performance snapshot: per-experiment wall-clock and heap
# allocation for cold / warm / incremental artifact-cache passes, plus
# ns/op + allocs/op microbenchmarks for the RMSZ engine and every codec.
OUT ?= BENCH_PR3.json
bench-json:
	$(GO) run ./cmd/benchjson -out $(OUT)

# Performance gate: compare two bench-json snapshots and fail on >15% codec
# throughput regression, any allocs/op increase, or >25% growth in an
# experiment's cumulative heap allocation.
BASE ?= BENCH_PR2.json
HEAD ?= BENCH_PR3.json
bench-diff:
	$(GO) run ./cmd/benchdiff -base $(BASE) -head $(HEAD)

# Short fuzzing pass over the decoder, container, and artifact-cache parsers.
fuzz:
	$(GO) test -fuzz=FuzzDecoders -fuzztime=30s ./internal/compress
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/cdf
	$(GO) test -fuzz=FuzzStoreGet -fuzztime=30s ./internal/artifact
	$(GO) test -fuzz=FuzzDec -fuzztime=30s ./internal/artifact

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate every table and figure of the paper (laptop-scale defaults).
experiments:
	$(GO) run ./cmd/climatebench -members 101 table1 table2 table3 table4 table5 ssim fig1 | tee results_bench.txt
	$(GO) run ./cmd/climatebench -members 101 table6 table7 table8 fig2 fig3 fig4 thresholds | tee results_small.txt
	$(GO) run ./cmd/climatebench -members 101 gradient restart analysis portverify characterize | tee results_extensions.txt

clean:
	rm -f results_*.txt test_output.txt bench_output.txt
