# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race race-short bench bench-json bench-diff bench-shard bench-serve bench-fused bench-lint shard-smoke serve-smoke fuzz vet lint lint-corpus fmt fmt-check verify experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The tier-1 gate plus static analysis: what CI runs on every change.
# Order is cheapest-first: formatting, vet, the repo's own analyzers
# (cmd/climatelint), the full test suite, then two named re-runs that
# must stay visible in the verify log even when the suite is green — the
# tsblob golden-stream bit-identity pin, the record v1→v2 migration
# smoke, and the fused-vs-materialized verification equivalence pin —
# then the race detector over the concurrent packages. When two benchmark snapshots are present the
# benchdiff performance gate runs too; otherwise it is skipped (fresh
# checkouts have no snapshots).
verify:
	$(GO) build ./...
	$(GO) build ./cmd/benchdiff
	$(GO) build ./cmd/climatelint
	$(MAKE) fmt-check
	$(GO) vet ./...
	$(MAKE) lint
	$(MAKE) lint-corpus
	$(GO) test ./...
	$(GO) test ./internal/compress/tsblob/ -run TestGoldenStream
	$(GO) test ./internal/experiments/ -run TestRecordV1MigrationSmoke
	$(GO) test ./internal/metrics/ -run TestFusedEquivalence
	$(MAKE) race-short
	$(MAKE) shard-smoke
	$(MAKE) serve-smoke
	@if [ -n "$(BASE)" ] && [ -n "$(HEAD)" ] && [ "$(BASE)" != "$(HEAD)" ]; then \
		$(GO) run ./cmd/benchdiff -base $(BASE) -head $(HEAD); \
	else \
		echo "benchdiff gate skipped: need two BENCH_PR*.json snapshots"; \
	fi

# Repo-specific static analysis: ten stdlib-only analyzers — syntactic
# determinism/resource checks plus the CFG/dataflow-based concurrency
# and contract analyzers — enforcing the pipeline's invariants (see
# internal/lint and the README "Static analysis" section).
lint:
	$(GO) run ./cmd/climatelint ./...

# Analyzer corpus gate: every analyzer's // want corpus must pass in
# both directions (each expected finding reported, nothing extra), the
# pre-1.22 loop-variable corpus must fire only under the old semantics,
# and every corpus must make the full analyzer set fail.
lint-corpus:
	$(GO) test ./internal/lint -count=1 -run 'TestAnalyzerCorpus|TestGoCaptureOldLoopVars|TestCorpusMakesClimatelintFail'

# gofmt as a gate, not a fixer: nonzero exit when any file needs
# formatting. The lint testdata corpora are excluded — one of them is a
# deliberately unparseable fixture for the loader's failure-path tests.
fmt-check:
	@out="$$(gofmt -l $$(find . -name '*.go' -not -path '*/testdata/*'))"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l reports unformatted files:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# Focused race pass over the packages that actually share memory across
# goroutines (worker pool, parallel codec, streaming ensemble, runner).
# Cheap enough to gate every change via `make verify`; `make race` still
# covers the whole tree on demand.
race-short:
	$(GO) test -race ./internal/par ./internal/compress/parallel ./internal/ensemble ./internal/experiments ./internal/serve

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark snapshots are named BENCH_PR<n>.json. The newest two are
# detected automatically (version sort, so PR10 follows PR9), BASE being
# the older: `make bench-diff` gates the newest snapshot against its
# predecessor without Makefile edits each PR. Override BASE/HEAD/OUT
# explicitly to compare arbitrary snapshots.
SNAPSHOTS := $(shell ls BENCH_PR*.json 2>/dev/null | sort -V)
BASE ?= $(shell ls BENCH_PR*.json 2>/dev/null | sort -V | tail -n 2 | head -n 1)
HEAD ?= $(shell ls BENCH_PR*.json 2>/dev/null | sort -V | tail -n 1)
LATEST_PR := $(shell ls BENCH_PR*.json 2>/dev/null | sed -E 's/BENCH_PR([0-9]+)\.json/\1/' | sort -n | tail -n 1)
OUT ?= BENCH_PR$(shell expr 0$(LATEST_PR) + 1).json

# Machine-readable performance snapshot: per-experiment wall-clock and heap
# allocation for cold / warm / incremental artifact-cache passes, plus
# ns/op + allocs/op microbenchmarks for the RMSZ engine and every codec.
bench-json:
	$(GO) run ./cmd/benchjson -out $(OUT)

# Performance gate: compare two bench-json snapshots and fail on >15% codec
# throughput regression, any allocs/op increase, or >25% growth in an
# experiment's cumulative heap allocation.
bench-diff:
	@if [ -z "$(BASE)" ] || [ "$(BASE)" = "$(HEAD)" ]; then \
		echo "bench-diff: need two BENCH_PR*.json snapshots (have: $(SNAPSHOTS))"; exit 1; \
	fi
	$(GO) run ./cmd/benchdiff -base $(BASE) -head $(HEAD)

# Cross-process correctness smoke: a 2-shard supervised run (two real
# climatebench children coordinating through one artifact cache) must
# render byte-identical stdout to a plain single-process uncached run.
shard-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/climatebench ./cmd/climatebench && \
	common="-grid test -members 9 -vars U,FSDSC,Z3,CCN3,SST -q" && \
	$$tmp/climatebench $$common -nocache table3 table6 > $$tmp/serial.txt 2>/dev/null && \
	$$tmp/climatebench $$common -cachedir $$tmp/cache -supervise 2 table3 table6 > $$tmp/sharded.txt 2>/dev/null && \
	if cmp -s $$tmp/serial.txt $$tmp/sharded.txt; then \
		echo "shard-smoke: 2-shard supervised output byte-identical to serial"; \
	else \
		echo "shard-smoke: output differs:"; diff $$tmp/serial.txt $$tmp/sharded.txt; exit 1; \
	fi

# Shard-scale performance snapshot: cold and warm supervised runs at 1, 2
# and 4 shards (one worker per child, so scaling reflects process
# parallelism) appended to the newest BENCH_PR*.json via per-entry-best
# merge. On a >=4-core host the 4-shard cold pass should be >=3x faster
# than 1-shard; benchdiff then gates these entries like any other.
bench-shard:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/climatebench ./cmd/climatebench && \
	$(GO) run ./cmd/benchjson -shard-bin $$tmp/climatebench -shard-only -merge $(HEAD) -out $(HEAD)

# Serving correctness smoke: start climatebenchd on an ephemeral port, ask
# it for one verdict through its built-in client, and require the response
# body to be byte-identical to `climatebench -verdict` on the same
# substrate flags; then a SIGINT must drain cleanly (exit 0). No curl — the
# daemon binary is its own client.
serve-smoke:
	@tmp=$$(mktemp -d); dpid=; \
	trap '[ -n "$$dpid" ] && kill $$dpid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/climatebench ./cmd/climatebench || exit 1; \
	$(GO) build -o $$tmp/climatebenchd ./cmd/climatebenchd || exit 1; \
	$$tmp/climatebenchd -grid test -members 9 -vars U,SST -q \
		-cachedir $$tmp/cache -addr 127.0.0.1:0 -addrfile $$tmp/addr 2>$$tmp/daemon.log & \
	dpid=$$!; \
	i=0; while [ ! -s $$tmp/addr ] && [ $$i -lt 300 ]; do sleep 0.2; i=$$((i+1)); done; \
	[ -s $$tmp/addr ] || { echo "serve-smoke: daemon never bound"; cat $$tmp/daemon.log; exit 1; }; \
	addr=$$(head -n 1 $$tmp/addr); \
	$$tmp/climatebenchd -call http://$$addr -var U -variant fpzip-24 > $$tmp/daemon.json || \
		{ echo "serve-smoke: daemon query failed"; cat $$tmp/daemon.log; exit 1; }; \
	$$tmp/climatebench -grid test -members 9 -vars U,SST -cachedir $$tmp/cache \
		-verdict U/fpzip-24 > $$tmp/batch.json || exit 1; \
	cmp -s $$tmp/daemon.json $$tmp/batch.json || \
		{ echo "serve-smoke: daemon and batch verdicts differ:"; \
		  diff $$tmp/daemon.json $$tmp/batch.json; exit 1; }; \
	kill -INT $$dpid; \
	wait $$dpid || { echo "serve-smoke: daemon exited nonzero on SIGINT"; cat $$tmp/daemon.log; exit 1; }; \
	dpid=; \
	echo "serve-smoke: daemon verdict byte-identical to batch; clean shutdown"

# Serving performance snapshot: load-test the daemon cold (every pair a
# fresh computation), warm (pure response-cache hits; the >=1000 verdicts/s
# target lives here) and coalesced (100 concurrent identical requests, one
# compute), appending serve/ entries with ops/sec and p50/p99 latency to
# the newest BENCH_PR*.json via per-entry-best merge.
bench-serve:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/climatebenchd ./cmd/climatebenchd && \
	$(GO) run ./cmd/benchjson -serve-bin $$tmp/climatebenchd -serve-only -merge $(HEAD) -out $(HEAD)

# Fused-kernel performance snapshot: decode→compare ns/op micros (0
# allocs/op target) for the natively-chunked codec families next to their
# materialize-then-compare companions, plus the two peak-heap
# error-matrix units (fused vs materialized residency on a bench-grid
# field), appended to the newest BENCH_PR*.json via per-entry-best merge.
bench-fused:
	$(GO) run ./cmd/benchjson -fused-only -merge $(HEAD) -out $(HEAD)

# Static-analysis wall-time snapshot: one lint/ entry timing a full
# `climatelint ./...` pass (load + all analyzers), appended to the
# newest BENCH_PR*.json via per-entry-best merge. Informational only —
# benchdiff prints it with a "(not gated)" marker and never fails on it.
bench-lint:
	$(GO) run ./cmd/benchjson -lint-only -merge $(HEAD) -out $(HEAD)

# Short fuzzing pass over the decoder, container, artifact-cache, and
# lint-directive parsers.
fuzz:
	$(GO) test -fuzz=FuzzDecoders -fuzztime=30s ./internal/compress
	$(GO) test -fuzz=FuzzTsblobDecode -fuzztime=30s ./internal/compress/tsblob
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/cdf
	$(GO) test -fuzz=FuzzStoreGet -fuzztime=30s ./internal/artifact
	$(GO) test -fuzz=FuzzDec -fuzztime=30s ./internal/artifact
	$(GO) test -fuzz=FuzzDirectives -fuzztime=30s ./internal/lint

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w $$(find . -name '*.go' -not -path '*/testdata/*')

# Regenerate every table and figure of the paper (laptop-scale defaults).
experiments:
	$(GO) run ./cmd/climatebench -members 101 table1 table2 table3 table4 table5 ssim fig1 | tee results_bench.txt
	$(GO) run ./cmd/climatebench -members 101 table6 table7 table8 fig2 fig3 fig4 thresholds | tee results_small.txt
	$(GO) run ./cmd/climatebench -members 101 gradient restart analysis portverify characterize | tee results_extensions.txt

clean:
	rm -f results_*.txt test_output.txt bench_output.txt
