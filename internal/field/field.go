// Package field defines the in-memory representation of one variable's data
// on a grid: a flat float32 slice with an optional fill (missing/special)
// value, mirroring how CESM history variables are stored in NetCDF. The
// paper's POP2 example uses 1e35 for undefined ocean points; we use the same
// sentinel.
package field

import (
	"fmt"
	"math"

	"climcompress/internal/grid"
	"climcompress/internal/par"
)

// DefaultFill matches the CESM convention for special values.
const DefaultFill float32 = 1e35

// Field is one variable's data for one time slice.
type Field struct {
	Name  string
	Units string
	Grid  *grid.Grid
	NLev  int // 1 for 2-D variables, Grid.NLev for 3-D
	Data  []float32

	HasFill bool
	Fill    float32
}

// New allocates a zeroed field. threeD selects Grid.NLev levels. The data
// buffer is drawn from the shared scratch pool (internal/par); callers on
// bulk transient paths may hand it back with Release, everyone else can let
// the garbage collector take it as before.
func New(name, units string, g *grid.Grid, threeD bool) *Field {
	nlev := 1
	if threeD {
		nlev = g.NLev
	}
	return &Field{
		Name:  name,
		Units: units,
		Grid:  g,
		NLev:  nlev,
		Data:  par.GetFloats(nlev * g.Horizontal()),
		Fill:  DefaultFill,
	}
}

// Release returns the field's data buffer to the shared scratch pool and
// clears the reference. The caller must guarantee nothing aliases Data.
func (f *Field) Release() {
	if f.Data != nil {
		par.PutFloats(f.Data)
		f.Data = nil
	}
}

// Len returns the number of stored points.
func (f *Field) Len() int { return len(f.Data) }

// ThreeD reports whether the field has more than one level.
func (f *Field) ThreeD() bool { return f.NLev > 1 }

// At returns the value at (lev, lat, lon).
func (f *Field) At(lev, lat, lon int) float32 {
	return f.Data[(lev*f.Grid.NLat+lat)*f.Grid.NLon+lon]
}

// Set stores v at (lev, lat, lon).
func (f *Field) Set(lev, lat, lon int, v float32) {
	f.Data[(lev*f.Grid.NLat+lat)*f.Grid.NLon+lon] = v
}

// IsFill reports whether the value at flat index i is the fill sentinel.
func (f *Field) IsFill(i int) bool { return f.HasFill && f.Data[i] == f.Fill }

// Clone returns a deep copy sharing the grid.
func (f *Field) Clone() *Field {
	c := *f
	c.Data = make([]float32, len(f.Data))
	copy(c.Data, f.Data)
	return &c
}

// Summary holds the paper's §4.1 characterization of a dataset: extremes,
// mean, standard deviation and range, all computed over non-fill points.
type Summary struct {
	Min, Max   float64
	Mean, Std  float64
	Range      float64
	N          int // valid points
	FillPoints int
}

// Summarize computes the §4.1 statistics of the field.
func (f *Field) Summarize() Summary {
	var (
		s   Summary
		sum float64
		min = math.Inf(1)
		max = math.Inf(-1)
	)
	for i, v := range f.Data {
		if f.IsFill(i) {
			s.FillPoints++
			continue
		}
		x := float64(v)
		sum += x
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		s.N++
	}
	if s.N == 0 {
		nan := math.NaN()
		return Summary{Min: nan, Max: nan, Mean: nan, Std: nan, Range: nan, FillPoints: s.FillPoints}
	}
	s.Min, s.Max = min, max
	s.Range = max - min
	s.Mean = sum / float64(s.N)
	var ss float64
	for i, v := range f.Data {
		if f.IsFill(i) {
			continue
		}
		d := float64(v) - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	} else {
		s.Std = 0
	}
	return s
}

// GlobalMean returns the area-weighted global mean over non-fill points,
// averaged across levels — the quantity the CESM-PVT compares for range
// shifts (§4.3).
func (f *Field) GlobalMean() float64 {
	w := f.Grid.AreaWeights()
	var sum, wsum float64
	for lev := 0; lev < f.NLev; lev++ {
		for lat := 0; lat < f.Grid.NLat; lat++ {
			base := (lev*f.Grid.NLat + lat) * f.Grid.NLon
			for lon := 0; lon < f.Grid.NLon; lon++ {
				i := base + lon
				if f.IsFill(i) {
					continue
				}
				sum += w[lat] * float64(f.Data[i])
				wsum += w[lat]
			}
		}
	}
	if wsum == 0 {
		return math.NaN()
	}
	return sum / wsum
}

// CheckCompatible verifies that g has the same shape as f, for pairing
// original and reconstructed data.
func (f *Field) CheckCompatible(data []float32) error {
	if len(data) != len(f.Data) {
		return fmt.Errorf("field %s: length mismatch: %d vs %d", f.Name, len(f.Data), len(data))
	}
	return nil
}
