package field

import (
	"math"
	"testing"

	"climcompress/internal/grid"
)

func TestNewShapes(t *testing.T) {
	g := grid.Test()
	f2 := New("TS", "K", g, false)
	if f2.Len() != g.Horizontal() || f2.ThreeD() {
		t.Fatalf("2-D field wrong shape: len=%d", f2.Len())
	}
	f3 := New("T", "K", g, true)
	if f3.Len() != g.Size3D() || !f3.ThreeD() {
		t.Fatalf("3-D field wrong shape: len=%d", f3.Len())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	g := grid.Test()
	f := New("T", "K", g, true)
	f.Set(2, 3, 5, 42.5)
	if got := f.At(2, 3, 5); got != 42.5 {
		t.Fatalf("At = %v", got)
	}
	if f.Data[g.Index(2, 3, 5)] != 42.5 {
		t.Fatal("Set/Index disagree")
	}
}

func TestSummarize(t *testing.T) {
	g := grid.Test()
	f := New("X", "1", g, false)
	for i := range f.Data {
		f.Data[i] = float32(i % 10)
	}
	s := f.Summarize()
	if s.Min != 0 || s.Max != 9 || s.Range != 9 {
		t.Fatalf("summary extremes wrong: %+v", s)
	}
	var want float64
	for i := range f.Data {
		want += float64(i % 10)
	}
	want /= float64(f.Len())
	if math.Abs(s.Mean-want) > 1e-6 {
		t.Fatalf("mean = %v, want %v", s.Mean, want)
	}
	if s.N != f.Len() || s.FillPoints != 0 {
		t.Fatalf("counts wrong: %+v", s)
	}
}

func TestSummarizeSkipsFill(t *testing.T) {
	g := grid.Test()
	f := New("SST", "K", g, false)
	f.HasFill = true
	for i := range f.Data {
		f.Data[i] = 10
	}
	f.Data[0] = f.Fill
	f.Data[1] = f.Fill
	f.Data[2] = 20
	s := f.Summarize()
	if s.FillPoints != 2 {
		t.Fatalf("FillPoints = %d", s.FillPoints)
	}
	if s.Max != 20 || s.Min != 10 {
		t.Fatalf("fill leaked into extremes: %+v", s)
	}
	if s.N != f.Len()-2 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestSummarizeAllFill(t *testing.T) {
	g := grid.Test()
	f := New("SST", "K", g, false)
	f.HasFill = true
	for i := range f.Data {
		f.Data[i] = f.Fill
	}
	s := f.Summarize()
	if !math.IsNaN(s.Mean) || s.N != 0 {
		t.Fatalf("all-fill summary should be NaN: %+v", s)
	}
}

func TestGlobalMeanConstantField(t *testing.T) {
	g := grid.Small()
	f := New("TS", "K", g, true)
	for i := range f.Data {
		f.Data[i] = 288
	}
	if gm := f.GlobalMean(); math.Abs(gm-288) > 1e-9 {
		t.Fatalf("GlobalMean = %v, want 288", gm)
	}
}

func TestGlobalMeanWeighting(t *testing.T) {
	g := grid.Small()
	f := New("TS", "K", g, false)
	// 1 at the equator-most rows, 0 elsewhere: weighted mean must exceed
	// the unweighted fraction of ones.
	ones := 0
	for lat := 0; lat < g.NLat; lat++ {
		v := float32(0)
		if lat == g.NLat/2 || lat == g.NLat/2-1 {
			v = 1
			ones++
		}
		for lon := 0; lon < g.NLon; lon++ {
			f.Set(0, lat, lon, v)
		}
	}
	unweighted := float64(ones) / float64(g.NLat)
	if gm := f.GlobalMean(); gm <= unweighted {
		t.Fatalf("GlobalMean %v should exceed unweighted %v for equatorial signal", gm, unweighted)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := grid.Test()
	f := New("T", "K", g, false)
	f.Data[0] = 1
	c := f.Clone()
	c.Data[0] = 2
	if f.Data[0] != 1 {
		t.Fatal("Clone shares data")
	}
}

func TestCheckCompatible(t *testing.T) {
	g := grid.Test()
	f := New("T", "K", g, false)
	if err := f.CheckCompatible(make([]float32, f.Len())); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := f.CheckCompatible(make([]float32, f.Len()+1)); err == nil {
		t.Fatal("expected length mismatch error")
	}
}
