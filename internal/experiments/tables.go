package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"climcompress/internal/compress"
	"climcompress/internal/ensemble"
	"climcompress/internal/hybrid"
	"climcompress/internal/metrics"
	"climcompress/internal/pvt"
	"climcompress/internal/report"
	"climcompress/internal/varcatalog"
)

// Table1 renders the paper's Table 1: algorithm properties. These are
// properties of the original software packages as reported by the paper;
// the Go reimplementations mirror the behavioural ones (lossless mode,
// special values, fixed quality/CR).
func Table1() string {
	t := &report.Table{
		Title: "Table 1: Algorithm properties.",
		Headers: []string{"Method", "lossless mode", "special values",
			"freely avail.", "fixed quality", "fixed CR", "32- & 64-bit"},
	}
	rows := []compress.Properties{
		{Method: "GRIB2 + jpeg2000", LosslessMode: false, SpecialValues: true, FreelyAvail: true,
			FixedQuality: false, FixedRate: false, Bits32And64: false},
		{Method: "APAX", LosslessMode: true, SpecialValues: false, FreelyAvail: false,
			FixedQuality: true, FixedRate: true, Bits32And64: true},
		{Method: "fpzip", LosslessMode: true, SpecialValues: false, FreelyAvail: true,
			FixedQuality: false, FixedRate: false, Bits32And64: true},
		{Method: "ISABELA", LosslessMode: false, SpecialValues: false, FreelyAvail: true,
			FixedQuality: false, FixedRate: false, Bits32And64: true},
	}
	yn := func(b bool) string {
		if b {
			return "Y"
		}
		return "N"
	}
	for _, p := range rows {
		t.AddRow(p.Method, yn(p.LosslessMode), yn(p.SpecialValues), yn(p.FreelyAvail),
			yn(p.FixedQuality), yn(p.FixedRate), yn(p.Bits32And64))
	}
	return t.String() + "(APAX lossless mode is not supported for 64-bit data.)\n"
}

// Table2 renders the §4.1 characteristics of the four featured variables:
// extremes, mean, standard deviation, and the lossless NetCDF-4 CR.
func (r *Runner) Table2() (string, error) {
	t := &report.Table{
		Title:   fmt.Sprintf("Table 2: Characteristics of U, FSDSC, Z3, CCN3 (grid %s, member 0).", r.Cfg.Grid.Name),
		Headers: []string{"Variable", "units", "x_min", "x_max", "mean", "std", "CR"},
	}
	nc, err := compress.New("nc")
	if err != nil {
		return "", err
	}
	for _, name := range varcatalog.Featured() {
		idx, err := r.varIndex(name)
		if err != nil {
			return "", err
		}
		spec := r.Catalog[idx]
		f := r.memberField(idx, 0)
		s := f.Summarize()
		codec := nc
		if spec.HasFill {
			codec = compress.WithFill(nc, f.Fill)
		}
		buf, err := compress.CompressInto(codec, compress.GetBytes(f.Len()), f.Data, r.shapeFor(spec))
		if err != nil {
			compress.PutBytes(buf)
			f.Release()
			return "", err
		}
		cr := compress.Ratio(len(buf), f.Len())
		compress.PutBytes(buf)
		f.Release()
		t.AddRow(name, spec.Units, report.Sci(s.Min), report.Sci(s.Max),
			report.Sci(s.Mean), report.Sci(s.Std), report.Fix(cr, 2))
	}
	return t.String(), nil
}

// ErrorEntry is one (variable, variant) cell of the §5.2 error tables.
type ErrorEntry struct {
	Errors metrics.Errors
	CR     float64
}

// ErrorMatrix compresses member 0 of each listed variable with every study
// variant and collects the §4.2 error measures — the data behind Tables 3–4
// and Figure 1. Cells are cached as artifacts keyed on (substrate, grid,
// spec, variant): a warm run decodes the whole matrix without generating a
// single field, and invalidating one variant recomputes only its column
// (from the cached member-0 field when present).
func (r *Runner) ErrorMatrix(varNames []string) (map[string]map[string]ErrorEntry, error) {
	out := make(map[string]map[string]ErrorEntry, len(varNames))
	indices := make([]int, 0, len(varNames))
	for _, n := range varNames {
		idx, err := r.varIndex(n)
		if err != nil {
			return nil, err
		}
		indices = append(indices, idx)
		out[n] = make(map[string]ErrorEntry)
	}
	var mu sync.Mutex
	err := r.forEachVar(indices, func(idx int) error {
		entries, err := r.computeErrorVariable(idx)
		if err != nil {
			return err
		}
		mu.Lock()
		for variant, e := range entries {
			out[r.Catalog[idx].Name][variant] = e
		}
		mu.Unlock()
		return nil
	})
	return out, err
}

// computeErrorVariable produces one variable's row of the §5.2 error
// matrix — every study variant's error measures and CR on member 0 —
// reading cached cells where present and computing (and persisting) only
// the missing ones. It is both the per-variable body of ErrorMatrix and
// the work unit the sharded runner claims per variable (ErrorUnits).
func (r *Runner) computeErrorVariable(idx int) (map[string]ErrorEntry, error) {
	spec := r.Catalog[idx]
	s := r.store()
	entries := make(map[string]ErrorEntry, len(Variants()))
	missing := Variants()
	if s.Enabled() {
		missing = missing[:0:0]
		for _, variant := range Variants() {
			if payload, ok := s.Get(r.errmatKey(spec, variant)); ok {
				if e, ok := decodeErrorEntry(payload); ok {
					entries[variant] = e
					continue
				}
			}
			missing = append(missing, variant)
		}
	}
	if len(missing) > 0 {
		f := r.memberField(idx, 0)
		summary := f.Summarize()
		shape := r.shapeFor(spec)
		// Fused sweep: one stream buffer serves every variant, and each
		// reconstruction decodes chunk by chunk straight
		// into the streaming Comparer — the error measures are bit-identical
		// to Compare over a materialized reconstruction (the chunk pushes
		// replicate its index order), but no reconstructed field exists on
		// natively chunked variants.
		var buf []byte
		var cmp metrics.Comparer
		for _, variant := range missing {
			codec, err := r.CodecFor(variant, spec, nil, summary.Range)
			if err != nil {
				return nil, err
			}
			cmp.Reset(f.Fill, f.HasFill)
			withStage("decode", func() {
				buf, err = compress.CompressInto(codec, buf[:0], f.Data, shape)
				if err != nil {
					return
				}
				// Empty chunk: native decoders stream through their own
				// pooled buffer; the fallback yields direct windows of its
				// internal reconstruction instead of copying each one out.
				err = compress.DecodeChunks(codec, buf, nil, func(off int, vals []float32) error {
					if off+len(vals) > f.Len() {
						return fmt.Errorf("%w: chunk [%d,%d) outside field of %d points", compress.ErrCorrupt, off, off+len(vals), f.Len())
					}
					cmp.Push(f.Data[off:off+len(vals)], vals, off)
					return nil
				})
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", spec.Name, variant, err)
			}
			var e ErrorEntry
			withStage("metrics", func() {
				e = ErrorEntry{
					Errors: cmp.Finish(),
					CR:     compress.Ratio(len(buf), f.Len()),
				}
			})
			entries[variant] = e
			if s.Enabled() {
				s.Put(r.errmatKey(spec, variant), encodeErrorEntry(e))
			}
		}
		f.Release()
	}
	return entries, nil
}

// renderErrorTable renders Table 3 (NRMSE) or Table 4 (e_nmax).
func (r *Runner) renderErrorTable(title string, pick func(metrics.Errors) float64) (string, error) {
	names := varcatalog.Featured()
	matrix, err := r.ErrorMatrix(names)
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:   title,
		Headers: append([]string{"Comp. Method"}, names...),
	}
	for _, variant := range Variants() {
		row := []string{Label(variant)}
		for _, name := range names {
			e := matrix[name][variant]
			row = append(row, fmt.Sprintf("%s (%s)", report.Sci(pick(e.Errors)), report.Fix(e.CR, 2)))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// Table3 renders NRMS errors (and CR) for the featured variables.
func (r *Runner) Table3() (string, error) {
	return r.renderErrorTable(
		fmt.Sprintf("Table 3: NRMSE (and CR) between original and reconstructed datasets (grid %s).", r.Cfg.Grid.Name),
		func(e metrics.Errors) float64 { return e.NRMSE })
}

// Table4 renders maximum normalized pointwise errors (and CR).
func (r *Runner) Table4() (string, error) {
	return r.renderErrorTable(
		fmt.Sprintf("Table 4: normalized maximum pointwise error e_nmax (and CR) (grid %s).", r.Cfg.Grid.Name),
		func(e metrics.Errors) float64 { return e.ENMax })
}

// Table5 times compression and reconstruction of U (3-D) and FSDSC (2-D)
// for every variant, with a (*) marking variants whose reconstruction does
// not pass the quality tests (as in the paper's footnote).
func (r *Runner) Table5() (string, error) {
	type colResult struct {
		comp, reconst float64 // seconds (median of three runs)
		cr            float64
		starred       bool
	}
	cols := []string{"U", "FSDSC"}
	results := make(map[string]map[string]colResult)
	for _, name := range cols {
		idx, err := r.varIndex(name)
		if err != nil {
			return "", err
		}
		spec := r.Catalog[idx]
		f := r.memberField(idx, 0)
		shape := r.shapeFor(spec)
		vs, err := r.VarStatsFor(name)
		if err != nil {
			f.Release()
			return "", err
		}
		verifier := &pvt.Verifier{
			Stats: vs, Shape: shape, Thr: r.Cfg.Thr,
			TestMembers: pvt.SelectTestMembers(vs.Members(), 3, r.Cfg.Seed),
			WithBias:    false, Workers: r.workers(),
		}
		results[name] = make(map[string]colResult)
		var buf []byte
		var recon []float32
		for _, variant := range Variants() {
			codec, err := r.CodecFor(variant, spec, vs, 0)
			if err != nil {
				f.Release()
				return "", err
			}
			comp := medianTiming(3, func() error {
				var err error
				buf, err = compress.CompressInto(codec, buf[:0], f.Data, shape)
				return err
			})
			reconst := medianTiming(3, func() error {
				var err error
				recon, err = compress.DecompressInto(codec, recon, buf)
				return err
			})
			res, err := verifier.Verify(codec)
			if err != nil {
				f.Release()
				return "", err
			}
			results[name][variant] = colResult{
				comp:    comp,
				reconst: reconst,
				cr:      compress.Ratio(len(buf), f.Len()),
				starred: !(res.RhoPass && res.RMSZPass && res.EnmaxPass),
			}
		}
		f.Release()
	}
	t := &report.Table{
		Title: fmt.Sprintf("Table 5: compression/reconstruction timings (s) and CR for U (3-D) and FSDSC (2-D) (grid %s).\n"+
			"(*) marks variants whose reconstruction fails the quality tests.", r.Cfg.Grid.Name),
		Headers: []string{"Comp. Method", "U comp.", "U reconst.", "U CR", "FSDSC comp.", "FSDSC reconst.", "FSDSC CR"},
	}
	for _, variant := range Variants() {
		u := results["U"][variant]
		fs := results["FSDSC"][variant]
		star := func(c colResult) string {
			s := report.Fix(c.cr, 2)
			if c.starred {
				s += "(*)"
			}
			return s
		}
		t.AddRow(Label(variant),
			report.Fix(u.comp, 4), report.Fix(u.reconst, 4), star(u),
			report.Fix(fs.comp, 4), report.Fix(fs.reconst, 4), star(fs))
	}
	return t.String(), nil
}

// medianTiming runs fn n times and returns the median wall-clock seconds.
func medianTiming(n int, fn func() error) float64 {
	times := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		//lint:nondet wall-clock timing feeds the reported timing column only, never results or cache keys
		start := time.Now()
		if err := fn(); err != nil {
			return math.NaN()
		}
		times = append(times, time.Since(start).Seconds())
	}
	sort.Float64s(times)
	return times[len(times)/2]
}

// VariantOutcome is the compact per-(variable, variant) verdict retained
// from the full verification sweep. Besides the default-threshold pass
// flags it keeps the raw test quantities, so pass counts can be re-derived
// under different thresholds (the paper's §4.3 note that eq. 9 "may be
// stricter than necessary" — see ThresholdSweep).
type VariantOutcome struct {
	Rho       float64
	NRMSE     float64
	Enmax     float64
	CR        float64
	RhoPass   bool
	RMSZPass  bool
	EnmaxPass bool
	BiasPass  bool
	AllPass   bool

	// Raw quantities across the test members (worst cases).
	RhoMin      float64 // minimum correlation
	RMSZDiffMax float64 // maximum |RMSZ − RMSZ̃| (eq. 8 left side)
	RMSZWithin  bool    // all reconstructed scores inside the distribution
	EnmaxRatio  float64 // maximum e_nmax / R_Enmax (eq. 11 left side)
	SlopeDist   float64 // |s_I − s_WC| (eq. 9 left side)
}

// passAt re-evaluates the four tests at the given thresholds.
func (o VariantOutcome) passAt(thr pvt.Thresholds) (rho, rmsz, enmax, bias, all bool) {
	rho = !math.IsNaN(o.RhoMin) && o.RhoMin >= thr.Correlation
	rmsz = o.RMSZWithin && !math.IsNaN(o.RMSZDiffMax) && o.RMSZDiffMax <= thr.RMSZDiff
	enmax = !math.IsNaN(o.EnmaxRatio) && o.EnmaxRatio <= thr.EnmaxRatio
	bias = !math.IsNaN(o.SlopeDist) && o.SlopeDist <= thr.SlopeDistance
	all = rho && rmsz && enmax && bias
	return
}

// Table6Result is the full verification sweep over the catalog: every
// variable × every variant, with the four tests.
type Table6Result struct {
	Variants   []string
	VarNames   []string
	Outcomes   map[string]map[string]VariantOutcome // var -> variant -> outcome
	FallbackCR map[string]map[string]float64        // var -> lossless codec -> CR
}

// PassCounts aggregates a variant's Table 6 row.
type PassCounts struct {
	Rho, RMSZ, Enmax, Bias, All int
}

// Passes tallies the Table 6 rows.
func (t6 *Table6Result) Passes() map[string]PassCounts {
	out := make(map[string]PassCounts, len(t6.Variants))
	for _, variant := range t6.Variants {
		var pc PassCounts
		for _, name := range t6.VarNames {
			o := t6.Outcomes[name][variant]
			if o.RhoPass {
				pc.Rho++
			}
			if o.RMSZPass {
				pc.RMSZ++
			}
			if o.EnmaxPass {
				pc.Enmax++
			}
			if o.BiasPass {
				pc.Bias++
			}
			if o.AllPass {
				pc.All++
			}
		}
		out[variant] = pc
	}
	return out
}

// losslessFallbacks are the codecs whose per-variable CRs Table 7/8 fall
// back to when no lossy variant passes.
var losslessFallbacks = []string{"nc", "fpzip-32"}

// RunTable6 performs the full sweep (cached on the Runner): for every
// catalog variable, build the ensemble statistics through the streaming
// pipeline, verify all nine variants with the bias test, and record
// lossless fallback CRs. Verdicts are persisted per (variable, variant):
// a fully warm run assembles the table from cached records without building
// a single ensemble, and after InvalidateVariant only that variant's column
// is re-verified.
func (r *Runner) RunTable6() (*Table6Result, error) {
	r.mu.Lock()
	if r.table6 != nil {
		t6 := r.table6
		r.mu.Unlock()
		return t6, nil
	}
	r.mu.Unlock()

	t6 := &Table6Result{
		Variants:   Variants(),
		Outcomes:   make(map[string]map[string]VariantOutcome),
		FallbackCR: make(map[string]map[string]float64),
	}
	for _, s := range r.Catalog {
		t6.VarNames = append(t6.VarNames, s.Name)
	}
	var mu sync.Mutex
	err := r.forEachVar(r.allIndices(), func(idx int) error {
		outcomes, fallbacks, err := r.computeVerifyVariable(idx)
		if err != nil {
			return err
		}
		mu.Lock()
		t6.Outcomes[r.Catalog[idx].Name] = outcomes
		t6.FallbackCR[r.Catalog[idx].Name] = fallbacks
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.table6 = t6
	r.mu.Unlock()
	return t6, nil
}

// computeVerifyVariable produces the full verification sweep of one catalog
// variable — every study variant's outcome plus the lossless fallback CRs —
// reading cached records where present and computing (and persisting) only
// the missing ones. It is both the per-variable body of RunTable6 and the
// work unit the sharded runner claims per variable (VerifyUnits).
func (r *Runner) computeVerifyVariable(idx int) (map[string]VariantOutcome, map[string]float64, error) {
	spec := r.Catalog[idx]
	s := r.store()
	variants := Variants()
	outcomes := make(map[string]VariantOutcome, len(variants))
	fallbacks := make(map[string]float64, len(losslessFallbacks))
	missing := variants
	missingFB := losslessFallbacks
	if s.Enabled() {
		missing = missing[:0:0]
		for _, variant := range variants {
			if payload, ok := s.Get(r.outcomeKey(spec, variant)); ok {
				if o, ok := decodeOutcome(payload); ok {
					outcomes[variant] = o
					continue
				}
			}
			missing = append(missing, variant)
		}
		missingFB = missingFB[:0:0]
		for _, lname := range losslessFallbacks {
			if payload, ok := s.Get(r.fallbackKey(spec, lname)); ok {
				if cr, ok := decodeFloat(payload); ok {
					fallbacks[lname] = cr
					continue
				}
			}
			missingFB = append(missingFB, lname)
		}
	}
	if len(missing) > 0 || len(missingFB) > 0 {
		vs, err := r.streamStats(idx)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		shape := r.shapeFor(spec)
		verifier := r.newVerifier(spec, vs)
		testMembers := verifier.TestMembers
		for _, variant := range missing {
			o, err := r.verifyVariant(verifier, spec, vs, variant)
			if err != nil {
				return nil, nil, err
			}
			outcomes[variant] = o
			if s.Enabled() {
				s.Put(r.outcomeKey(spec, variant), encodeOutcome(o))
			}
		}
		// Lossless fallback CRs on the first test member.
		for _, lname := range missingFB {
			codec, err := r.CodecFor(lname, spec, vs, 0)
			if err != nil {
				return nil, nil, err
			}
			data, release := vs.AcquireOriginal(testMembers[0])
			buf, err := compress.CompressInto(codec, compress.GetBytes(len(data)), data, shape)
			if err != nil {
				compress.PutBytes(buf)
				release()
				return nil, nil, err
			}
			cr := compress.Ratio(len(buf), len(data))
			compress.PutBytes(buf)
			release()
			fallbacks[lname] = cr
			if s.Enabled() {
				s.Put(r.fallbackKey(spec, lname), encodeFloat(cr))
			}
		}
	}
	return outcomes, fallbacks, nil
}

// newVerifier builds the four-test verifier exactly as the batch sweep
// configures it: bias test on, serial codec loop (outer layers own the
// parallelism), test members drawn from the run seed xor the variable's
// synthesis seed. Every path that wants verdicts bit-identical to the
// batch tables — computeVerifyVariable and the serving layer's VerdictFor —
// must construct its verifier here.
func (r *Runner) newVerifier(spec varcatalog.Spec, vs *ensemble.VarStats) *pvt.Verifier {
	return &pvt.Verifier{
		Stats: vs, Shape: r.shapeFor(spec), Thr: r.Cfg.Thr,
		TestMembers: pvt.SelectTestMembers(vs.Members(), 3, r.Cfg.Seed^spec.Seed),
		WithBias:    true, Workers: 1,
	}
}

// verifyVariant runs one study variant through the verifier and condenses
// the full pvt.Result into the compact VariantOutcome record the artifact
// cache (and the serving layer) persists.
func (r *Runner) verifyVariant(verifier *pvt.Verifier, spec varcatalog.Spec, vs *ensemble.VarStats, variant string) (VariantOutcome, error) {
	codec, err := r.CodecFor(variant, spec, vs, 0)
	if err != nil {
		return VariantOutcome{}, err
	}
	res, err := verifier.Verify(codec)
	if err != nil {
		return VariantOutcome{}, fmt.Errorf("%s/%s: %w", spec.Name, variant, err)
	}
	o := VariantOutcome{
		CR:        res.MeanCR,
		RhoPass:   res.RhoPass,
		RMSZPass:  res.RMSZPass,
		EnmaxPass: res.EnmaxPass,
		BiasPass:  res.BiasPass,
		AllPass:   res.AllPass,
		SlopeDist: res.Bias.SlopeWorstCaseDistance(),
	}
	if len(res.Checks) > 0 {
		o.Rho = res.Checks[0].Errors.Pearson
		o.NRMSE = res.Checks[0].Errors.NRMSE
		o.Enmax = res.Checks[0].Errors.ENMax
	}
	// Worst-case raw quantities over the test members.
	o.RhoMin = math.Inf(1)
	o.RMSZWithin = true
	slack := 0.01 * res.RMSZBox.Range()
	for _, chk := range res.Checks {
		if chk.Errors.Pearson < o.RhoMin || math.IsNaN(chk.Errors.Pearson) {
			o.RhoMin = chk.Errors.Pearson
		}
		if d := math.Abs(chk.RMSZRecon - chk.RMSZOrig); d > o.RMSZDiffMax || math.IsNaN(d) {
			o.RMSZDiffMax = d
		}
		if chk.RMSZRecon < res.RMSZBox.Min-slack || chk.RMSZRecon > res.RMSZBox.Max+slack {
			o.RMSZWithin = false
		}
		if res.EnmaxSpread > 0 {
			if ratio := chk.Errors.ENMax / res.EnmaxSpread; ratio > o.EnmaxRatio || math.IsNaN(ratio) {
				o.EnmaxRatio = ratio
			}
		} else {
			o.EnmaxRatio = math.NaN()
		}
	}
	return o, nil
}

// PassesAt tallies pass counts at arbitrary thresholds from the retained
// raw quantities.
func (t6 *Table6Result) PassesAt(thr pvt.Thresholds) map[string]PassCounts {
	out := make(map[string]PassCounts, len(t6.Variants))
	for _, variant := range t6.Variants {
		var pc PassCounts
		for _, name := range t6.VarNames {
			rho, rmsz, enmax, bias, all := t6.Outcomes[name][variant].passAt(thr)
			if rho {
				pc.Rho++
			}
			if rmsz {
				pc.RMSZ++
			}
			if enmax {
				pc.Enmax++
			}
			if bias {
				pc.Bias++
			}
			if all {
				pc.All++
			}
		}
		out[variant] = pc
	}
	return out
}

// ThresholdSweep re-derives the Table 6 "all" column under a spectrum of
// acceptance thresholds, from twice as strict to four times as loose —
// the paper's §4.3 question of whether eq. 9 (and friends) are "stricter
// than necessary", answered without re-running the sweep.
func (r *Runner) ThresholdSweep() (string, error) {
	t6, err := r.RunTable6()
	if err != nil {
		return "", err
	}
	type setting struct {
		label string
		thr   pvt.Thresholds
	}
	def := r.Cfg.Thr
	scale := func(f float64) pvt.Thresholds {
		// The correlation threshold scales in (1 − ρ) space.
		return pvt.Thresholds{
			Correlation:   1 - (1-def.Correlation)*f,
			RMSZDiff:      def.RMSZDiff * f,
			EnmaxRatio:    def.EnmaxRatio * f,
			SlopeDistance: def.SlopeDistance * f,
		}
	}
	settings := []setting{
		{"x0.5 (stricter)", scale(0.5)},
		{"x1 (paper)", def},
		{"x2", scale(2)},
		{"x4 (looser)", scale(4)},
	}
	t := &report.Table{
		Title: fmt.Sprintf("Threshold sensitivity: variables passing ALL tests out of %d, as the §4.3 thresholds scale (grid %s).",
			len(t6.VarNames), r.Cfg.Grid.Name),
		Headers: append([]string{"Comp. Method"}, func() []string {
			var hs []string
			for _, s := range settings {
				hs = append(hs, s.label)
			}
			return hs
		}()...),
	}
	for _, variant := range t6.Variants {
		row := []string{Label(variant)}
		for _, s := range settings {
			row = append(row, fmt.Sprint(t6.PassesAt(s.thr)[variant].All))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// Table6 renders the pass counts.
func (r *Runner) Table6() (string, error) {
	t6, err := r.RunTable6()
	if err != nil {
		return "", err
	}
	passes := t6.Passes()
	t := &report.Table{
		Title: fmt.Sprintf("Table 6: number of passes for all compression methods on %d variables (grid %s, %d members).",
			len(t6.VarNames), r.Cfg.Grid.Name, r.Cfg.Members),
		Headers: []string{"Comp. Method", "rho", "RMSZ ens.", "Enmax ens.", "bias", "all"},
	}
	for _, variant := range t6.Variants {
		pc := passes[variant]
		t.AddRow(Label(variant),
			fmt.Sprint(pc.Rho), fmt.Sprint(pc.RMSZ), fmt.Sprint(pc.Enmax),
			fmt.Sprint(pc.Bias), fmt.Sprint(pc.All))
	}
	return t.String(), nil
}

// hybridChoices runs the §5.4 per-variable customization for each family.
func (r *Runner) hybridChoices() (map[string][]hybrid.Choice, error) {
	t6, err := r.RunTable6()
	if err != nil {
		return nil, err
	}
	out := make(map[string][]hybrid.Choice)
	for _, fam := range hybrid.StudyFamilies() {
		var choices []hybrid.Choice
		for _, name := range t6.VarNames {
			outcomes := make(map[string]hybrid.Outcome)
			for variant, o := range t6.Outcomes[name] {
				outcomes[variant] = hybrid.Outcome{
					Pass: o.AllPass, CR: o.CR, Rho: o.Rho, NRMSE: o.NRMSE, Enmax: o.Enmax,
				}
			}
			fb := hybrid.Outcome{
				CR: t6.FallbackCR[name][fam.Fallback], Rho: 1, NRMSE: 0, Enmax: 0,
			}
			choices = append(choices, hybrid.Select(name, fam, outcomes, fb))
		}
		out[fam.Name] = choices
	}
	return out, nil
}

// Table7 renders the hybrid-method comparison, including the all-lossless
// NetCDF-4 ("NC") column.
func (r *Runner) Table7() (string, error) {
	byFam, err := r.hybridChoices()
	if err != nil {
		return "", err
	}
	t6, _ := r.RunTable6()
	famOrder := []string{"GRIB2", "ISABELA", "fpzip", "APAX"}
	summaries := make(map[string]hybrid.Summary)
	for _, fam := range famOrder {
		summaries[fam] = hybrid.Summarize(byFam[fam])
	}
	// NC column: lossless NetCDF-4 on every variable.
	var ncChoices []hybrid.Choice
	for _, name := range t6.VarNames {
		ncChoices = append(ncChoices, hybrid.Choice{
			Variable: name, Variant: "nc",
			Outcome: hybrid.Outcome{Pass: true, CR: t6.FallbackCR[name]["nc"], Rho: 1},
		})
	}
	summaries["NC"] = hybrid.Summarize(ncChoices)

	t := &report.Table{
		Title: fmt.Sprintf("Table 7: per-variable hybrid methods over %d variables (grid %s).",
			len(t6.VarNames), r.Cfg.Grid.Name),
		Headers: []string{"", "GRIB2", "ISABELA", "fpzip", "APAX", "NC"},
	}
	cols := append(famOrder, "NC")
	row := func(label string, pick func(hybrid.Summary) string) {
		cells := []string{label}
		for _, c := range cols {
			cells = append(cells, pick(summaries[c]))
		}
		t.AddRow(cells...)
	}
	row("avg. CR", func(s hybrid.Summary) string { return report.Fix(s.AvgCR, 2) })
	row("best CR", func(s hybrid.Summary) string { return report.Fix(s.BestCR, 2) })
	row("worst CR", func(s hybrid.Summary) string { return report.Fix(s.WorstCR, 2) })
	row("avg. rho", func(s hybrid.Summary) string { return report.Fix(s.AvgRho, 7) })
	row("avg. nrmse", func(s hybrid.Summary) string { return report.Sci(s.AvgNRMSE) })
	row("avg. e_nmax", func(s hybrid.Summary) string { return report.Sci(s.AvgEnmax) })
	return t.String(), nil
}

// Table8 renders the composition of each hybrid.
func (r *Runner) Table8() (string, error) {
	byFam, err := r.hybridChoices()
	if err != nil {
		return "", err
	}
	t := &report.Table{
		Title:   "Table 8: number of variables using each variant in the hybrid methods.",
		Headers: []string{"Method", "Variant", "Number of Variables"},
	}
	for _, fam := range []string{"GRIB2", "ISABELA", "fpzip", "APAX"} {
		comp := hybrid.Composition(byFam[fam])
		for _, variant := range sortedKeys(comp) {
			t.AddRow(fam, Label(variant), fmt.Sprint(comp[variant]))
		}
	}
	return t.String(), nil
}
