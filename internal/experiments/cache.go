// Artifact-cache integration: key derivation and record schemas binding the
// experiment pipeline to the content-addressed store (internal/artifact).
// Every key folds the complete set of value-influencing inputs — a content
// digest of the chaotic-core ensemble, the grid, the variable's full
// synthesis recipe, the ensemble size, and (for verification outcomes) the
// thresholds, seed, and codec variant — so a hit is exactly as trustworthy
// as a recompute, and changing any input silently becomes a miss.
package experiments

import (
	"climcompress/internal/artifact"
	"climcompress/internal/ensemble"
	"climcompress/internal/field"
	"climcompress/internal/l96"
	"climcompress/internal/metrics"
	"climcompress/internal/varcatalog"
)

// cacheSchema versions every record payload; bumping it invalidates all
// cached experiment artifacts without touching the store format.
const cacheSchema = 1

// store returns the configured artifact store (nil = disabled; every method
// of a nil store degrades to recomputation).
func (r *Runner) store() *artifact.Store { return r.Cfg.Cache }

// fieldCacheMembers resolves how many leading member fields to persist per
// variable. Member 0 alone (the default) feeds the §5.2 error tables and
// figure 1; caching whole ensembles is opt-in because it costs
// members × gridsize × 4 bytes of disk.
func (r *Runner) fieldCacheMembers() int {
	switch {
	case r.Cfg.FieldCacheMembers > 0:
		return r.Cfg.FieldCacheMembers
	case r.Cfg.FieldCacheMembers < 0:
		return 0
	default:
		return 1
	}
}

// substrate returns the content digest of the chaotic-core ensemble: the
// standardization constants plus every member's slow-variable series and
// state keys. Keying artifacts on the loaded ensemble's content (rather
// than on its configuration) stays correct even when Cfg.L96Source supplies
// an externally built ensemble.
func (r *Runner) substrate() string {
	r.subOnce.Do(func() {
		r.subID = substrateDigest(r.L96())
	})
	return r.subID
}

// substrateDigest folds an l96 ensemble's full content into an ID.
func substrateDigest(ens *l96.Ensemble) string {
	k := artifact.NewKey("l96ens").
		Float(ens.MeanX).Float(ens.StdX).Int(len(ens.Members))
	for _, m := range ens.Members {
		k.Int(len(m.Series))
		for t, xs := range m.Series {
			k.Uint(m.SeriesKeys[t])
			for _, x := range xs {
				k.Float(x)
			}
		}
	}
	return string(k.ID())
}

// specKey starts an artifact key covering everything that determines a
// variable's member fields: schema, substrate content, grid geometry,
// ensemble size, and the variable's complete synthesis recipe.
func (r *Runner) specKey(kind string, spec varcatalog.Spec) *artifact.Key {
	g := r.Cfg.Grid
	k := artifact.NewKey(kind).
		Int(cacheSchema).
		Str(r.substrate()).
		Str(g.Name).Int(g.NLat).Int(g.NLon).Int(g.NLev).
		Int(r.Cfg.Members)
	return foldSpec(k, spec)
}

// foldSpec folds every Spec field (any of them changes the synthesized
// data).
func foldSpec(k *artifact.Key, s varcatalog.Spec) *artifact.Key {
	return k.Str(s.Name).Str(s.Units).
		Bool(s.ThreeD).Int(int(s.Kind)).
		Float(s.Base).Float(s.LatAmp).Float(s.WaveAmp).Float(s.VertAmp).
		Int(int(s.VertKind)).Float(s.VertExp).Int(s.WaveNum).
		Float(s.ModeAmp).Float(s.NoiseAmp).
		Float(s.ClampMin).Float(s.ClampMax).
		Bool(s.HasFill).Uint(s.Seed)
}

// verifyKey additionally folds what the verification verdict depends on:
// the acceptance thresholds, the test-member selection seed, and the codec
// variant.
func (r *Runner) verifyKey(kind string, spec varcatalog.Spec, variant string) artifact.ID {
	thr := r.Cfg.Thr
	return r.specKey(kind, spec).
		Uint(r.Cfg.Seed).
		Float(thr.Correlation).Float(thr.RMSZDiff).
		Float(thr.EnmaxRatio).Float(thr.SlopeDistance).
		Str(variant).ID()
}

// Per-class key builders.
func (r *Runner) fieldKey(spec varcatalog.Spec, member int) artifact.ID {
	return r.specKey("field", spec).Int(member).ID()
}
func (r *Runner) ensStatsKey(spec varcatalog.Spec) artifact.ID {
	return r.specKey("ensstats", spec).ID()
}
func (r *Runner) errmatKey(spec varcatalog.Spec, variant string) artifact.ID {
	return r.specKey("errmat", spec).Str(variant).ID()
}
func (r *Runner) outcomeKey(spec varcatalog.Spec, variant string) artifact.ID {
	return r.verifyKey("verify", spec, variant)
}
func (r *Runner) fallbackKey(spec varcatalog.Spec, lossless string) artifact.ID {
	return r.verifyKey("fallbackcr", spec, lossless)
}

// InvalidateVariant removes every cached artifact whose value depends on the
// given codec variant — the per-(variable, variant) error-matrix and
// verification-outcome records — across the runner's catalog. This is the
// incremental-rerun primitive: after "codec X changed", the next run
// recomputes exactly X's column and reads everything else back.
func (r *Runner) InvalidateVariant(variant string) {
	s := r.store()
	if !s.Enabled() {
		return
	}
	for _, spec := range r.Catalog {
		s.Remove(r.errmatKey(spec, variant))
		s.Remove(r.outcomeKey(spec, variant))
		s.Remove(r.fallbackKey(spec, variant))
	}
}

// ---------------------------------------------------------------------------
// Record payloads
// ---------------------------------------------------------------------------

// encodeErrorEntry serializes one §5.2 error-matrix cell.
func encodeErrorEntry(e ErrorEntry) []byte {
	var enc artifact.Enc
	enc.Float(e.Errors.EMax).Float(e.Errors.ENMax).
		Float(e.Errors.RMSE).Float(e.Errors.NRMSE).
		Float(e.Errors.PSNR).Float(e.Errors.Pearson).
		Float(e.Errors.Range).Int(e.Errors.N).
		Float(e.CR)
	return enc.Bytes()
}

func decodeErrorEntry(payload []byte) (ErrorEntry, bool) {
	d := artifact.NewDec(payload)
	var e ErrorEntry
	e.Errors = metrics.Errors{
		EMax: d.Float(), ENMax: d.Float(),
		RMSE: d.Float(), NRMSE: d.Float(),
		PSNR: d.Float(), Pearson: d.Float(),
		Range: d.Float(), N: d.Int(),
	}
	e.CR = d.Float()
	return e, d.Close() == nil
}

// encodeOutcome serializes one verification verdict.
func encodeOutcome(o VariantOutcome) []byte {
	var enc artifact.Enc
	enc.Float(o.Rho).Float(o.NRMSE).Float(o.Enmax).Float(o.CR).
		Bool(o.RhoPass).Bool(o.RMSZPass).Bool(o.EnmaxPass).
		Bool(o.BiasPass).Bool(o.AllPass).
		Float(o.RhoMin).Float(o.RMSZDiffMax).Bool(o.RMSZWithin).
		Float(o.EnmaxRatio).Float(o.SlopeDist)
	return enc.Bytes()
}

func decodeOutcome(payload []byte) (VariantOutcome, bool) {
	d := artifact.NewDec(payload)
	o := VariantOutcome{
		Rho: d.Float(), NRMSE: d.Float(), Enmax: d.Float(), CR: d.Float(),
		RhoPass: d.Bool(), RMSZPass: d.Bool(), EnmaxPass: d.Bool(),
		BiasPass: d.Bool(), AllPass: d.Bool(),
		RhoMin: d.Float(), RMSZDiffMax: d.Float(), RMSZWithin: d.Bool(),
		EnmaxRatio: d.Float(), SlopeDist: d.Float(),
	}
	return o, d.Close() == nil
}

func encodeFloat(v float64) []byte {
	var enc artifact.Enc
	enc.Float(v)
	return enc.Bytes()
}

func decodeFloat(payload []byte) (float64, bool) {
	d := artifact.NewDec(payload)
	v := d.Float()
	return v, d.Close() == nil
}

// encodeScores serializes the pass-2 outputs of a streamed build.
func encodeScores(rmsz, enmax []float64) []byte {
	var enc artifact.Enc
	enc.Floats(rmsz).Floats(enmax)
	return enc.Bytes()
}

func decodeScores(payload []byte) (rmsz, enmax []float64, ok bool) {
	d := artifact.NewDec(payload)
	rmsz = d.Floats()
	enmax = d.Floats()
	return rmsz, enmax, d.Close() == nil
}

// ---------------------------------------------------------------------------
// Cached member fields
// ---------------------------------------------------------------------------

// memberField returns one member field, reading the artifact cache when the
// member is within the field-cache window and writing it back on a miss.
// The returned field is pooled; the caller releases it (or hands it to a
// consumer that does).
func (r *Runner) memberField(idx, m int) *field.Field {
	spec := r.Catalog[idx]
	s := r.store()
	cacheable := s.Enabled() && m < r.fieldCacheMembers()
	var id artifact.ID
	if cacheable {
		id = r.fieldKey(spec, m)
		if f := r.decodeField(spec, id); f != nil {
			return f
		}
	}
	f := r.Generator().Field(idx, m)
	if cacheable {
		var enc artifact.Enc
		enc.Floats32(f.Data)
		s.Put(id, enc.Bytes())
	}
	return f
}

// decodeField materializes a cached member field, reconstructing the same
// metadata the generator would set. Any decode problem is a miss.
func (r *Runner) decodeField(spec varcatalog.Spec, id artifact.ID) *field.Field {
	payload, ok := r.store().Get(id)
	if !ok {
		return nil
	}
	f := field.New(spec.Name, spec.Units, r.Cfg.Grid, spec.ThreeD)
	f.HasFill = spec.HasFill
	d := artifact.NewDec(payload)
	if d.Floats32Into(f.Data, f.Len()) == nil || d.Close() != nil {
		f.Release()
		return nil
	}
	return f
}

// cachedSource adapts the runner's generator (plus the field cache) to
// ensemble.Source for streamed builds. Fields are pooled; Release hands
// them back.
type cachedSource struct {
	r *Runner
}

func (s cachedSource) Members() int { return s.r.Cfg.Members }

func (s cachedSource) Field(varIdx, m int) *field.Field {
	return s.r.memberField(varIdx, m)
}

func (s cachedSource) Release(f *field.Field) { f.Release() }

// streamStats builds one variable's ensemble statistics through the
// streaming pipeline, short-circuiting the scoring pass with a cached
// ensstats record when available and writing one back otherwise.
func (r *Runner) streamStats(idx int) (*ensemble.VarStats, error) {
	spec := r.Catalog[idx]
	src := cachedSource{r}
	s := r.store()
	if !s.Enabled() {
		return ensemble.BuildStream(src, idx)
	}
	id := r.ensStatsKey(spec)
	if payload, ok := s.Get(id); ok {
		if rmsz, enmax, ok := decodeScores(payload); ok &&
			len(rmsz) == r.Cfg.Members && len(enmax) == r.Cfg.Members {
			return ensemble.BuildStreamWithScores(src, idx, rmsz, enmax)
		}
	}
	vs, err := ensemble.BuildStream(src, idx)
	if err != nil {
		return nil, err
	}
	s.Put(id, encodeScores(vs.RMSZ, vs.Enmax))
	return vs, nil
}
