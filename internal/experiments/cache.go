// Artifact-cache integration: key derivation and record schemas binding the
// experiment pipeline to the content-addressed store (internal/artifact).
// Every key folds the complete set of value-influencing inputs — a content
// digest of the chaotic-core ensemble, the grid, the variable's full
// synthesis recipe, the ensemble size, and (for verification outcomes) the
// thresholds, seed, and codec variant — so a hit is exactly as trustworthy
// as a recompute, and changing any input silently becomes a miss.
package experiments

import (
	"encoding/binary"

	"climcompress/internal/artifact"
	"climcompress/internal/blob"
	"climcompress/internal/ensemble"
	"climcompress/internal/field"
	"climcompress/internal/l96"
	"climcompress/internal/metrics"
	"climcompress/internal/varcatalog"
)

// cacheSchema versions every record payload; bumping it invalidates all
// cached experiment artifacts without touching the store format. Schema 2
// switched record payloads from v1 tagged Enc/Dec streams to the v2 blob
// container (record format v2), whose columns are read in place — any
// schema-1 record simply keys differently and ages out of the store.
const cacheSchema = 2

// store returns the configured artifact store (nil = disabled; every method
// of a nil store degrades to recomputation).
func (r *Runner) store() *artifact.Store { return r.Cfg.Cache }

// fieldCacheMembers resolves how many leading member fields to persist per
// variable. Member 0 alone (the default) feeds the §5.2 error tables and
// figure 1; caching whole ensembles is opt-in because it costs
// members × gridsize × 4 bytes of disk.
func (r *Runner) fieldCacheMembers() int {
	switch {
	case r.Cfg.FieldCacheMembers > 0:
		return r.Cfg.FieldCacheMembers
	case r.Cfg.FieldCacheMembers < 0:
		return 0
	default:
		return 1
	}
}

// substrate returns the content digest of the chaotic-core ensemble: the
// standardization constants plus every member's slow-variable series and
// state keys. Keying artifacts on the loaded ensemble's content (rather
// than on its configuration) stays correct even when Cfg.L96Source supplies
// an externally built ensemble.
func (r *Runner) substrate() string {
	r.subOnce.Do(func() {
		r.subID = substrateDigest(r.L96())
	})
	return r.subID
}

// substrateDigest folds an l96 ensemble's full content into an ID.
func substrateDigest(ens *l96.Ensemble) string {
	k := artifact.NewKey("l96ens").
		Float(ens.MeanX).Float(ens.StdX).Int(len(ens.Members))
	for _, m := range ens.Members {
		k.Int(len(m.Series))
		for t, xs := range m.Series {
			k.Uint(m.SeriesKeys[t])
			for _, x := range xs {
				k.Float(x)
			}
		}
	}
	return string(k.ID())
}

// specKey starts an artifact key covering everything that determines a
// variable's member fields: schema, substrate content, grid geometry,
// ensemble size, and the variable's complete synthesis recipe.
func (r *Runner) specKey(kind string, spec varcatalog.Spec) *artifact.Key {
	g := r.Cfg.Grid
	k := artifact.NewKey(kind).
		Int(cacheSchema).
		Str(r.substrate()).
		Str(g.Name).Int(g.NLat).Int(g.NLon).Int(g.NLev).
		Int(r.Cfg.Members)
	return foldSpec(k, spec)
}

// foldSpec folds every Spec field (any of them changes the synthesized
// data).
func foldSpec(k *artifact.Key, s varcatalog.Spec) *artifact.Key {
	return k.Str(s.Name).Str(s.Units).
		Bool(s.ThreeD).Int(int(s.Kind)).
		Float(s.Base).Float(s.LatAmp).Float(s.WaveAmp).Float(s.VertAmp).
		Int(int(s.VertKind)).Float(s.VertExp).Int(s.WaveNum).
		Float(s.ModeAmp).Float(s.NoiseAmp).
		Float(s.ClampMin).Float(s.ClampMax).
		Bool(s.HasFill).Uint(s.Seed)
}

// verifyKey additionally folds what the verification verdict depends on:
// the acceptance thresholds, the test-member selection seed, and the codec
// variant.
func (r *Runner) verifyKey(kind string, spec varcatalog.Spec, variant string) artifact.ID {
	thr := r.Cfg.Thr
	return r.specKey(kind, spec).
		Uint(r.Cfg.Seed).
		Float(thr.Correlation).Float(thr.RMSZDiff).
		Float(thr.EnmaxRatio).Float(thr.SlopeDistance).
		Str(variant).ID()
}

// Per-class key builders.
func (r *Runner) fieldKey(spec varcatalog.Spec, member int) artifact.ID {
	return r.specKey("field", spec).Int(member).ID()
}
func (r *Runner) ensStatsKey(spec varcatalog.Spec) artifact.ID {
	return r.specKey("ensstats", spec).ID()
}
func (r *Runner) errmatKey(spec varcatalog.Spec, variant string) artifact.ID {
	return r.specKey("errmat", spec).Str(variant).ID()
}
func (r *Runner) outcomeKey(spec varcatalog.Spec, variant string) artifact.ID {
	return r.verifyKey("verify", spec, variant)
}
func (r *Runner) fallbackKey(spec varcatalog.Spec, lossless string) artifact.ID {
	return r.verifyKey("fallbackcr", spec, lossless)
}

// InvalidateVariant removes every cached artifact whose value depends on the
// given codec variant — the per-(variable, variant) error-matrix and
// verification-outcome records — across the runner's catalog. This is the
// incremental-rerun primitive: after "codec X changed", the next run
// recomputes exactly X's column and reads everything else back.
func (r *Runner) InvalidateVariant(variant string) {
	s := r.store()
	if !s.Enabled() {
		return
	}
	for _, spec := range r.Catalog {
		s.Remove(r.errmatKey(spec, variant))
		s.Remove(r.outcomeKey(spec, variant))
		s.Remove(r.fallbackKey(spec, variant))
	}
}

// ---------------------------------------------------------------------------
// Record payloads
// ---------------------------------------------------------------------------

// boolByte maps a bool to its record byte; decodeBool inverts it, treating
// anything but 0/1 as corruption.
func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func decodeBool(b byte, ok *bool) bool {
	if b > 1 {
		*ok = false
	}
	return b == 1
}

// encodeErrorEntry serializes one §5.2 error-matrix cell as a v2 record:
// a float64 column of the eight metrics plus the cell's CR, and a bytes
// column holding the point count.
func encodeErrorEntry(e ErrorEntry) []byte {
	w := blob.GetWriter()
	w.AddF64s([]float64{
		e.Errors.EMax, e.Errors.ENMax,
		e.Errors.RMSE, e.Errors.NRMSE,
		e.Errors.PSNR, e.Errors.Pearson,
		e.Errors.Range, e.CR,
	})
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(int64(e.Errors.N)))
	w.AddBytes(n[:])
	payload := w.AppendTo(nil)
	blob.PutWriter(w)
	return payload
}

func decodeErrorEntry(payload []byte) (ErrorEntry, bool) {
	b, err := artifact.OpenRecord(payload)
	if err != nil || b.Cols() != 2 {
		return ErrorEntry{}, false
	}
	fs, err := b.F64(0)
	if err != nil || fs.Len() != 8 {
		return ErrorEntry{}, false
	}
	nb, err := b.Bytes(1)
	if err != nil || len(nb) != 8 {
		return ErrorEntry{}, false
	}
	var e ErrorEntry
	e.Errors = metrics.Errors{
		EMax: fs.At(0), ENMax: fs.At(1),
		RMSE: fs.At(2), NRMSE: fs.At(3),
		PSNR: fs.At(4), Pearson: fs.At(5),
		Range: fs.At(6),
		N:     int(int64(binary.LittleEndian.Uint64(nb))),
	}
	e.CR = fs.At(7)
	return e, true
}

// encodeOutcome serializes one verification verdict as a v2 record: a
// float64 column of the eight scores and a bytes column of the six pass
// flags.
func encodeOutcome(o VariantOutcome) []byte {
	w := blob.GetWriter()
	w.AddF64s([]float64{
		o.Rho, o.NRMSE, o.Enmax, o.CR,
		o.RhoMin, o.RMSZDiffMax, o.EnmaxRatio, o.SlopeDist,
	})
	w.AddBytes([]byte{
		boolByte(o.RhoPass), boolByte(o.RMSZPass), boolByte(o.EnmaxPass),
		boolByte(o.BiasPass), boolByte(o.AllPass), boolByte(o.RMSZWithin),
	})
	payload := w.AppendTo(nil)
	blob.PutWriter(w)
	return payload
}

func decodeOutcome(payload []byte) (VariantOutcome, bool) {
	b, err := artifact.OpenRecord(payload)
	if err != nil || b.Cols() != 2 {
		return VariantOutcome{}, false
	}
	fs, err := b.F64(0)
	if err != nil || fs.Len() != 8 {
		return VariantOutcome{}, false
	}
	flags, err := b.Bytes(1)
	if err != nil || len(flags) != 6 {
		return VariantOutcome{}, false
	}
	ok := true
	o := VariantOutcome{
		Rho: fs.At(0), NRMSE: fs.At(1), Enmax: fs.At(2), CR: fs.At(3),
		RhoMin: fs.At(4), RMSZDiffMax: fs.At(5),
		EnmaxRatio: fs.At(6), SlopeDist: fs.At(7),
		RhoPass:    decodeBool(flags[0], &ok),
		RMSZPass:   decodeBool(flags[1], &ok),
		EnmaxPass:  decodeBool(flags[2], &ok),
		BiasPass:   decodeBool(flags[3], &ok),
		AllPass:    decodeBool(flags[4], &ok),
		RMSZWithin: decodeBool(flags[5], &ok),
	}
	return o, ok
}

func encodeFloat(v float64) []byte {
	var enc artifact.Enc
	enc.Float(v)
	return enc.Bytes()
}

func decodeFloat(payload []byte) (float64, bool) {
	d := artifact.NewDec(payload)
	v := d.Float()
	return v, d.Close() == nil
}

// encodeScores serializes the pass-2 outputs of a streamed build as a v2
// record: two float64 columns, RMSZ then E_nmax, iterated in place on the
// warm path.
func encodeScores(rmsz, enmax []float64) []byte {
	w := blob.GetWriter()
	w.AddF64s(rmsz)
	w.AddF64s(enmax)
	payload := w.AppendTo(nil)
	blob.PutWriter(w)
	return payload
}

// scoreViews is the zero-copy decode of a scores record: two validated
// float64 column views over store-owned bytes.
type scoreViews struct {
	rmsz, enmax blob.F64View
}

// at returns member m's (RMSZ, E_nmax) pair, matching the signature of
// ensemble.BuildStreamWithScoresFunc's score argument.
func (sv scoreViews) at(m int) (float64, float64) {
	return sv.rmsz.At(m), sv.enmax.At(m)
}

// openScores validates a v2 scores record of exactly members entries per
// column. Any v1, foreign or short record returns false (a miss).
func openScores(payload []byte, members int) (scoreViews, bool) {
	b, err := artifact.OpenRecord(payload)
	if err != nil || b.Cols() != 2 {
		return scoreViews{}, false
	}
	rmsz, err := b.F64(0)
	if err != nil || rmsz.Len() != members {
		return scoreViews{}, false
	}
	enmax, err := b.F64(1)
	if err != nil || enmax.Len() != members {
		return scoreViews{}, false
	}
	return scoreViews{rmsz: rmsz, enmax: enmax}, true
}

// ---------------------------------------------------------------------------
// Cached member fields
// ---------------------------------------------------------------------------

// memberField returns one member field, reading the artifact cache when the
// member is within the field-cache window and writing it back on a miss.
// The returned field is pooled; the caller releases it (or hands it to a
// consumer that does).
func (r *Runner) memberField(idx, m int) *field.Field {
	spec := r.Catalog[idx]
	s := r.store()
	cacheable := s.Enabled() && m < r.fieldCacheMembers()
	var id artifact.ID
	if cacheable {
		id = r.fieldKey(spec, m)
		if f := r.decodeField(spec, id); f != nil {
			return f
		}
	}
	f := r.Generator().Field(idx, m)
	if cacheable {
		w := blob.GetWriter()
		w.AddF32s(f.Data)
		s.Put(id, w.AppendTo(nil))
		blob.PutWriter(w)
	}
	return f
}

// decodeField materializes a cached member field from its v2 record,
// reconstructing the same metadata the generator would set: the store
// checksum was verified by Get, so the float column is bulk-copied
// straight off the record bytes into the pooled field. Any decode problem
// is a miss.
func (r *Runner) decodeField(spec varcatalog.Spec, id artifact.ID) *field.Field {
	b, ok := r.store().GetBlob(id)
	if !ok || b.Cols() != 1 {
		return nil
	}
	v, err := b.F32(0)
	if err != nil {
		return nil
	}
	f := field.New(spec.Name, spec.Units, r.Cfg.Grid, spec.ThreeD)
	f.HasFill = spec.HasFill
	if v.Len() != f.Len() || v.CopyInto(f.Data) != f.Len() {
		f.Release()
		return nil
	}
	return f
}

// cachedSource adapts the runner's generator (plus the field cache) to
// ensemble.Source for streamed builds. Fields are pooled; Release hands
// them back.
type cachedSource struct {
	r *Runner
}

func (s cachedSource) Members() int { return s.r.Cfg.Members }

func (s cachedSource) Field(varIdx, m int) *field.Field {
	return s.r.memberField(varIdx, m)
}

func (s cachedSource) Release(f *field.Field) { f.Release() }

// streamStats builds one variable's ensemble statistics through the
// streaming pipeline, short-circuiting the scoring pass with a cached
// ensstats record when available and writing one back otherwise.
func (r *Runner) streamStats(idx int) (*ensemble.VarStats, error) {
	spec := r.Catalog[idx]
	src := cachedSource{r}
	s := r.store()
	if !s.Enabled() {
		return ensemble.BuildStream(src, idx)
	}
	id := r.ensStatsKey(spec)
	if payload, ok := s.Get(id); ok {
		if sv, ok := openScores(payload, r.Cfg.Members); ok {
			// Zero-copy warm path: the score vectors are read in place off
			// the record bytes, never materialized as slices.
			return ensemble.BuildStreamWithScoresFunc(src, idx, r.Cfg.Members, sv.at)
		}
	}
	vs, err := ensemble.BuildStream(src, idx)
	if err != nil {
		return nil, err
	}
	s.Put(id, encodeScores(vs.RMSZ, vs.Enmax))
	return vs, nil
}
