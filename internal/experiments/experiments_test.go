package experiments

import (
	"strings"
	"sync"
	"testing"

	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/varcatalog"
)

var (
	runnerOnce sync.Once
	testRunner *Runner
)

// sharedRunner returns a small shared runner (6 variables, 9 members, test
// grid) so the suite builds the substrate once.
func sharedRunner(t testing.TB) *Runner {
	t.Helper()
	runnerOnce.Do(func() {
		cfg := DefaultConfig(grid.Test())
		cfg.Members = 9
		cfg.L96 = l96.EnsembleConfig{
			Members: 9, Dt: 0.002, SpinupSteps: 1000,
			DivergeSteps: 6000, CalibSteps: 3000, Eps: 1e-14,
		}
		cfg.Variables = []string{"U", "FSDSC", "Z3", "CCN3", "T", "SST"}
		testRunner = NewRunner(cfg, nil)
	})
	return testRunner
}

func TestTable1Static(t *testing.T) {
	out := Table1()
	for _, want := range []string{"GRIB2 + jpeg2000", "APAX", "fpzip", "ISABELA"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	// The paper's key Table 1 facts: only GRIB2 handles special values,
	// only APAX is not freely available.
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.HasPrefix(l, "GRIB2") && !strings.Contains(l, "Y") {
			t.Error("GRIB2 row lost its Y flags")
		}
	}
}

func TestLabels(t *testing.T) {
	cases := map[string]string{
		"grib2": "GRIB2", "apax-2": "APAX-2", "isa-1": "ISA-1.0",
		"isa-0.5": "ISA-0.5", "fpzip-24": "fpzip-24", "nc": "NetCDF-4",
		"unknown-x": "unknown-x",
	}
	for in, want := range cases {
		if got := Label(in); got != want {
			t.Errorf("Label(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVariantsResolvable(t *testing.T) {
	r := sharedRunner(t)
	spec := r.Catalog[0]
	for _, v := range Variants() {
		if _, err := r.CodecFor(v, spec, nil, 100); err != nil {
			t.Errorf("variant %s not resolvable: %v", v, err)
		}
	}
}

func TestCodecForWrapsFill(t *testing.T) {
	r := sharedRunner(t)
	spec, _, ok := varcatalog.ByName(r.Catalog, "SST")
	if !ok {
		t.Fatal("SST missing")
	}
	c, err := r.CodecFor("apax-4", spec, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Name(), "+fill") {
		t.Fatalf("fill variable codec not wrapped: %s", c.Name())
	}
	g, err := r.CodecFor("grib2", spec, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(g.Name(), "+fill") {
		t.Fatal("grib2 handles fill natively and must not be wrapped")
	}
}

func TestErrorMatrixShapeAndOrdering(t *testing.T) {
	r := sharedRunner(t)
	m, err := r.ErrorMatrix([]string{"U", "CCN3"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"U", "CCN3"} {
		row := m[name]
		if len(row) != len(Variants()) {
			t.Fatalf("%s: %d variants, want %d", name, len(row), len(Variants()))
		}
		// Error monotonicity within families (the paper's consistent
		// finding: more compression, more error).
		if row["apax-5"].Errors.NRMSE < row["apax-2"].Errors.NRMSE {
			t.Errorf("%s: APAX-5 NRMSE below APAX-2", name)
		}
		if row["fpzip-16"].Errors.NRMSE < row["fpzip-24"].Errors.NRMSE {
			t.Errorf("%s: fpzip-16 NRMSE below fpzip-24", name)
		}
		if row["isa-1"].Errors.NRMSE < row["isa-0.1"].Errors.NRMSE {
			t.Errorf("%s: ISA-1.0 NRMSE below ISA-0.1", name)
		}
		// APAX's defining fixed-rate property.
		if cr := row["apax-4"].CR; cr < 0.24 || cr > 0.30 {
			t.Errorf("%s: apax-4 CR = %v, want ≈ 0.25", name, cr)
		}
		if cr := row["apax-2"].CR; cr < 0.49 || cr > 0.55 {
			t.Errorf("%s: apax-2 CR = %v, want ≈ 0.50", name, cr)
		}
	}
}

func TestTable6PassOrdering(t *testing.T) {
	r := sharedRunner(t)
	t6, err := r.RunTable6()
	if err != nil {
		t.Fatal(err)
	}
	passes := t6.Passes()
	// Conservative variants must pass at least as often as aggressive ones.
	if passes["apax-2"].All < passes["apax-5"].All {
		t.Errorf("apax-2 (%d) fewer passes than apax-5 (%d)", passes["apax-2"].All, passes["apax-5"].All)
	}
	if passes["fpzip-24"].All < passes["fpzip-16"].All {
		t.Errorf("fpzip-24 fewer passes than fpzip-16")
	}
	if passes["isa-0.1"].All < passes["isa-1"].All {
		t.Errorf("isa-0.1 fewer passes than isa-1.0")
	}
	// The 'all' column can never exceed any individual column.
	for v, pc := range passes {
		for _, col := range []int{pc.Rho, pc.RMSZ, pc.Enmax, pc.Bias} {
			if pc.All > col {
				t.Errorf("%s: all=%d exceeds a sub-test count %d", v, pc.All, col)
			}
		}
	}
}

func TestThresholdSweepMonotone(t *testing.T) {
	r := sharedRunner(t)
	t6, err := r.RunTable6()
	if err != nil {
		t.Fatal(err)
	}
	def := r.Cfg.Thr
	strict := def
	strict.RMSZDiff /= 2
	strict.EnmaxRatio /= 2
	strict.SlopeDistance /= 2
	strict.Correlation = 1 - (1-def.Correlation)/2
	loose := def
	loose.RMSZDiff *= 4
	loose.EnmaxRatio *= 4
	loose.SlopeDistance *= 4
	loose.Correlation = 1 - (1-def.Correlation)*4
	ps := t6.PassesAt(strict)
	pd := t6.PassesAt(def)
	pl := t6.PassesAt(loose)
	for _, v := range t6.Variants {
		if !(ps[v].All <= pd[v].All && pd[v].All <= pl[v].All) {
			t.Fatalf("%s: pass counts not monotone in thresholds: %d, %d, %d",
				v, ps[v].All, pd[v].All, pl[v].All)
		}
	}
	// Default-threshold re-derivation must agree with the stored flags on
	// the 'all' column.
	stored := t6.Passes()
	for _, v := range t6.Variants {
		if pd[v].All != stored[v].All {
			t.Fatalf("%s: re-derived all=%d differs from stored %d", v, pd[v].All, stored[v].All)
		}
	}
}

func TestHybridCompositionSumsToCatalog(t *testing.T) {
	r := sharedRunner(t)
	byFam, err := r.hybridChoices()
	if err != nil {
		t.Fatal(err)
	}
	for fam, choices := range byFam {
		if len(choices) != len(r.Catalog) {
			t.Errorf("%s: %d choices for %d variables", fam, len(choices), len(r.Catalog))
		}
		for _, c := range choices {
			if c.Variant == "" {
				t.Errorf("%s: empty variant for %s", fam, c.Variable)
			}
			if !c.Outcome.Pass && !c.Fallback {
				t.Errorf("%s: non-passing non-fallback choice for %s", fam, c.Variable)
			}
		}
	}
}

func TestAllRunnersProduceOutput(t *testing.T) {
	r := sharedRunner(t)
	t.Run("static", func(t *testing.T) {
		if Table1() == "" {
			t.Fatal("empty table 1")
		}
	})
	funcs := map[string]func() (string, error){
		"table2": r.Table2, "table3": r.Table3, "table4": r.Table4,
		"table5": r.Table5, "table6": r.Table6, "table7": r.Table7,
		"table8": r.Table8, "fig1": r.Fig1, "fig2": r.Fig2,
		"fig3": r.Fig3, "fig4": r.Fig4, "ssim": r.SSIMReport,
		"gradient": r.GradientReport, "restart": r.RestartReport,
		"characterize": r.CharacterizeReport, "portverify": r.PortVerifyReport,
		"analysis": r.AnalysisReport, "thresholds": r.ThresholdSweep,
	}
	for name, fn := range funcs {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			out, err := fn()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(out) < 50 {
				t.Fatalf("%s: suspiciously short output:\n%s", name, out)
			}
		})
	}
}

func TestRunnerRestrictsCatalog(t *testing.T) {
	r := sharedRunner(t)
	if len(r.Catalog) != 6 {
		t.Fatalf("catalog restricted to %d variables, want 6", len(r.Catalog))
	}
	if _, err := r.varIndex("PS"); err == nil {
		t.Fatal("PS should not be in the restricted catalog")
	}
}

func TestTable6Cached(t *testing.T) {
	r := sharedRunner(t)
	a, err := r.RunTable6()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunTable6()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("RunTable6 not cached")
	}
}

func TestZlibFloat64RoundTrip(t *testing.T) {
	data := []float64{0, 1.5, -2.25, 1e300, -5e-324, 3.141592653589793}
	buf, err := zlibFloat64(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unzlibFloat64(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("length %d", len(got))
	}
	for i := range data {
		if got[i] != data[i] && !(got[i] != got[i] && data[i] != data[i]) {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], data[i])
		}
	}
	if _, err := unzlibFloat64(buf[:4]); err == nil {
		t.Fatal("truncated buffer should error")
	}
}

func TestRestartReportLosslessRows(t *testing.T) {
	r := sharedRunner(t)
	out, err := r.RestartReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fpzip64-64") || !strings.Contains(out, "yes") {
		t.Fatalf("restart report missing lossless rows:\n%s", out)
	}
	// Every fpzip64-64 row must be lossless.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "fpzip64-64") && !strings.Contains(line, "yes") {
			t.Fatalf("fpzip64-64 row not lossless: %q", line)
		}
	}
}

func TestGrib2TunedPerVariable(t *testing.T) {
	// GRIB2's decimal scale factor must differ between a huge-magnitude
	// variable (Z3) and a small one (CCN3) — the per-variable customization
	// the paper describes.
	r := sharedRunner(t)
	vsZ3, err := r.VarStatsFor("Z3")
	if err != nil {
		t.Fatal(err)
	}
	vsU, err := r.VarStatsFor("U")
	if err != nil {
		t.Fatal(err)
	}
	tZ3 := grib2AbsTarget(vsZ3, 0)
	tU := grib2AbsTarget(vsU, 0)
	if tZ3 <= tU {
		t.Fatalf("Z3 abs target %v should exceed U's %v (larger spread)", tZ3, tU)
	}
}
