package experiments

import (
	"testing"

	"climcompress/internal/compress"
	"climcompress/internal/compress/fpzip"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/model"
	"climcompress/internal/varcatalog"
)

// TestTemporalCompressionBenefit demonstrates why the §1 workflow converts
// time slices into per-variable time series before compressing: when the
// time dimension folds into the codec's level dimension, fpzip's
// level-adjacent prediction exploits temporal correlation, so a correlated
// series compresses better than the same slices compressed independently.
func TestTemporalCompressionBenefit(t *testing.T) {
	const slices = 6
	cfg := l96.EnsembleConfig{
		Members: 1, Dt: 0.002, SpinupSteps: 1500, DivergeSteps: 6000,
		CalibSteps: 3000, Eps: 1e-14,
		TimeSlices: slices, SliceSteps: 100, // 0.2 time units: strongly correlated
	}
	ens := l96.NewEnsemble(l96.DefaultParams(), cfg)
	g := grid.Test()
	gen := model.NewGenerator(g, varcatalog.Default(), ens)
	_, idx, _ := varcatalog.ByName(gen.Catalog, "TS") // smooth 2-D variable

	perSlice := g.Horizontal()
	series := make([]float32, 0, slices*perSlice)
	for ts := 0; ts < slices; ts++ {
		series = append(series, gen.FieldAt(idx, 0, ts).Data...)
	}

	codec := fpzip.New(24)
	// Time folded into the level dimension: prediction crosses slices.
	folded := compress.Shape{NLev: slices, NLat: g.NLat, NLon: g.NLon}
	foldedBuf, err := codec.Compress(series, folded)
	if err != nil {
		t.Fatal(err)
	}

	// Each slice compressed independently.
	var separate int
	sliceShape := compress.Shape{NLev: 1, NLat: g.NLat, NLon: g.NLon}
	for ts := 0; ts < slices; ts++ {
		buf, err := codec.Compress(series[ts*perSlice:(ts+1)*perSlice], sliceShape)
		if err != nil {
			t.Fatal(err)
		}
		separate += len(buf)
	}

	if len(foldedBuf) >= separate {
		t.Fatalf("series compression (%d bytes) did not beat per-slice (%d bytes)",
			len(foldedBuf), separate)
	}

	// And the round trip must still be within fpzip-24's bound.
	out, err := codec.Decompress(foldedBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(series) {
		t.Fatalf("series length %d, want %d", len(out), len(series))
	}
}
