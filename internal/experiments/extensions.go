package experiments

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"math"
	"time"

	"climcompress/internal/analysis"
	"climcompress/internal/compress"
	"climcompress/internal/compress/apax"
	"climcompress/internal/compress/fpzip"
	"climcompress/internal/ensemble"
	"climcompress/internal/l96"
	"climcompress/internal/metrics"
	"climcompress/internal/model"
	"climcompress/internal/pvt"
	"climcompress/internal/report"
	"climcompress/internal/varcatalog"
)

// RestartReport implements the paper's deferred restart-file study:
// CESM restart files keep the full 8-byte model state and must round-trip
// losslessly. The report compresses double-precision synthetic state with
// the lossless fpzip64 coder, a lossy 48-bit variant, the fixed-rate apax64
// codec, and a shuffle+zlib baseline, reporting ratio, throughput and the
// worst-case reconstruction error.
func (r *Runner) RestartReport() (string, error) {
	names := []string{"T", "U", "V", "Q", "Z3", "CCN3"}
	t := &report.Table{
		Title: fmt.Sprintf("Restart-file (float64) compression — the paper's deferred lossless study (grid %s).",
			r.Cfg.Grid.Name),
		Headers: []string{"Variable", "codec", "CR", "comp MB/s", "max |err|", "lossless"},
	}
	for _, name := range names {
		idx, err := r.varIndex(name)
		if err != nil {
			// Restricted catalogs may omit some variables; skip quietly.
			continue
		}
		_, data, _ := r.Generator().Field64(idx, 0)
		rawBytes := 8 * len(data)
		spec := r.Catalog[idx]
		shape := r.shapeFor(spec)

		type result struct {
			codec  string
			size   int
			secs   float64
			maxErr float64
		}
		var results []result

		run := func(label string, comp func() ([]byte, error), decomp func([]byte) ([]float64, error)) error {
			//lint:nondet wall-clock timing feeds the reported throughput column only, never results or cache keys
			start := time.Now()
			buf, err := comp()
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, label, err)
			}
			secs := time.Since(start).Seconds()
			got, err := decomp(buf)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, label, err)
			}
			var maxErr float64
			for i := range data {
				if e := math.Abs(got[i] - data[i]); e > maxErr {
					maxErr = e
				}
			}
			results = append(results, result{codec: label, size: len(buf), secs: secs, maxErr: maxErr})
			return nil
		}

		fp64 := fpzip.New64(64)
		if err := run("fpzip64-64",
			func() ([]byte, error) { return fp64.Compress64(data, shape) },
			fp64.Decompress64); err != nil {
			return "", err
		}
		fp48 := fpzip.New64(48)
		if err := run("fpzip64-48",
			func() ([]byte, error) { return fp48.Compress64(data, shape) },
			fp48.Decompress64); err != nil {
			return "", err
		}
		ap := apax.New(2)
		if err := run("apax64-2",
			func() ([]byte, error) { return ap.Compress64(data, shape) },
			ap.Decompress64); err != nil {
			return "", err
		}
		if err := run("shuffle+zlib",
			func() ([]byte, error) { return zlibFloat64(data) },
			unzlibFloat64); err != nil {
			return "", err
		}

		for _, res := range results {
			lossless := "no"
			if res.maxErr == 0 {
				lossless = "yes"
			}
			mbps := float64(rawBytes) / res.secs / 1e6
			t.AddRow(name, res.codec,
				report.Fix(float64(res.size)/float64(rawBytes), 3),
				report.Fix(mbps, 1), report.Sci(res.maxErr), lossless)
		}
	}
	return t.String(), nil
}

// zlibFloat64 is the NetCDF-4-style baseline for 8-byte data: byte shuffle
// across the 8 planes, then deflate.
func zlibFloat64(data []float64) ([]byte, error) {
	n := len(data)
	raw := make([]byte, 8*n)
	for b := 0; b < 8; b++ {
		plane := raw[b*n : (b+1)*n]
		for i, v := range data {
			plane[i] = byte(math.Float64bits(v) >> (8 * b))
		}
	}
	var buf bytes.Buffer
	// Record the count for the decoder.
	var hdr [8]byte
	for i := 0; i < 8; i++ {
		hdr[i] = byte(uint64(n) >> (8 * i))
	}
	buf.Write(hdr[:])
	zw := zlib.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func unzlibFloat64(buf []byte) ([]float64, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("zlibFloat64: truncated")
	}
	var n uint64
	for i := 0; i < 8; i++ {
		n |= uint64(buf[i]) << (8 * i)
	}
	zr, err := zlib.NewReader(bytes.NewReader(buf[8:]))
	if err != nil {
		return nil, err
	}
	//lint:errdrop read side; zlib reader Close cannot lose data and ReadFull already validated the stream
	defer zr.Close()
	raw := make([]byte, 8*n)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		var u uint64
		for b := 0; b < 8; b++ {
			u |= uint64(raw[uint64(b)*n+uint64(i)]) << (8 * b)
		}
		out[i] = math.Float64frombits(u)
	}
	return out, nil
}

// AnalysisReport checks that the post-processing analytics the paper cares
// about (§1: "indistinguishable during the post-processing analysis") are
// preserved: for each featured variable and variant it diffs the
// reconstructed zonal means, vertical profiles, and area-weighted global
// means against the originals.
func (r *Runner) AnalysisReport() (string, error) {
	t := &report.Table{
		Title:   fmt.Sprintf("Post-processing analytics preservation (grid %s, member 0).", r.Cfg.Grid.Name),
		Headers: []string{"Variable", "Method", "zonal-mean nrms", "vert-profile nrms", "|Δ global mean|"},
	}
	for _, name := range varcatalog.Featured() {
		idx, err := r.varIndex(name)
		if err != nil {
			return "", err
		}
		spec := r.Catalog[idx]
		f := r.Generator().Field(idx, 0)
		shape := r.shapeFor(spec)
		var buf []byte
		var reconData []float32
		for _, variant := range Variants() {
			codec, err := r.CodecFor(variant, spec, nil, f.Summarize().Range)
			if err != nil {
				return "", err
			}
			buf, err = compress.CompressInto(codec, buf[:0], f.Data, shape)
			if err != nil {
				return "", err
			}
			reconData, err = compress.DecompressInto(codec, reconData, buf)
			if err != nil {
				return "", err
			}
			recon := f.Clone()
			copy(recon.Data, reconData)
			zm := analysis.CompareZonalMeans(f, recon)
			gm := analysis.GlobalMeanDelta(f, recon)
			// A 2-D variable's "profile" is a single value; its normalized
			// diff is meaningless, so show a dash.
			vpCell := "-"
			if f.NLev > 1 {
				vp := analysis.CompareVerticalProfiles(f, recon)
				vpCell = report.Sci(vp.Normalized)
			}
			t.AddRow(name, Label(variant),
				report.Sci(zm.Normalized), vpCell, report.Sci(gm))
		}
	}
	return t.String(), nil
}

// PortVerifyReport demonstrates the CESM-PVT's original purpose (§4.3):
// verifying a port to a new machine. Three extra same-model runs play the
// benign port; three runs of a model whose forcing constant drifted play a
// genuinely changed climate.
func (r *Runner) PortVerifyReport() (string, error) {
	const extraRuns = 3
	trusted := r.L96()
	nm := len(trusted.Members) - extraRuns
	if nm < 5 {
		return "", fmt.Errorf("portverify: need at least %d members", extraRuns+5)
	}

	brokenParams := l96.DefaultParams()
	brokenParams.F = 13
	brokenCfg := r.Cfg.L96
	if brokenCfg.Members == 0 {
		brokenCfg = l96.DefaultEnsembleConfig(extraRuns)
	}
	brokenCfg.Members = extraRuns
	broken := l96.NewEnsemble(brokenParams, brokenCfg)
	// Keep the trusted calibration so the drifted attractor shows up as
	// biased anomaly weights — a changed climate, not a rescaled one.
	broken.MeanX, broken.StdX = trusted.MeanX, trusted.StdX
	brokenGen := model.NewGenerator(r.Cfg.Grid, r.Catalog, broken)

	t := &report.Table{
		Title: fmt.Sprintf("Port verification (CESM-PVT §4.3): benign port vs drifted forcing (grid %s, %d trusted members).\n"+
			"'strict' requires every run inside the trusted distributions (false-alarm rate ≈ 2k/(members+1));\n"+
			"'majority' is the aggregation adopted by NCAR's follow-up tooling.",
			r.Cfg.Grid.Name, nm),
		Headers: []string{"Variable", "scenario", "RMSZ (3 runs)", "RMSZ box", "strict", "majority"},
	}
	for _, name := range []string{"T", "U", "FSDSC"} {
		idx, err := r.varIndex(name)
		if err != nil {
			continue
		}
		fields := ensemble.CollectFields(r.Generator(), idx)[:nm]
		vs, err := ensemble.Build(fields)
		if err != nil {
			return "", err
		}
		benign := make([][]float32, extraRuns)
		bad := make([][]float32, extraRuns)
		for i := 0; i < extraRuns; i++ {
			benign[i] = r.Generator().Field(idx, nm+i).Data
			bad[i] = brokenGen.Field(idx, i).Data
		}
		for _, sc := range []struct {
			label string
			runs  [][]float32
		}{{"benign port", benign}, {"drifted forcing", bad}} {
			res, err := pvt.PortVerify(vs, sc.runs)
			if err != nil {
				return "", err
			}
			var scores string
			for i, run := range res.Runs {
				if i > 0 {
					scores += " "
				}
				scores += report.Fix(run.RMSZ, 3)
			}
			t.AddRow(name, sc.label, scores,
				fmt.Sprintf("[%s, %s]", report.Fix(res.RMSZBox.Min, 3), report.Fix(res.RMSZBox.Max, 3)),
				yesNo(res.Pass), yesNo(res.PassMajority))
		}
	}
	return t.String(), nil
}

// CharacterizeReport extends the paper's Table 2 to the whole catalog: the
// §4.1 characterization (extremes, mean, std, lossless NetCDF-4 CR) of all
// 170 variables, the per-variable diversity that drives the paper's central
// argument for individual treatment.
func (r *Runner) CharacterizeReport() (string, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Characterization of all %d catalog variables (§4.1, grid %s, member 0).",
			len(r.Catalog), r.Cfg.Grid.Name),
		Headers: []string{"Variable", "units", "dims", "x_min", "x_max", "mean", "std", "NC CR", "fill"},
	}
	type row struct {
		cells []string
	}
	rows := make([]row, len(r.Catalog))
	err := r.forEachVar(r.allIndices(), func(idx int) error {
		spec := r.Catalog[idx]
		f := r.Generator().Field(idx, 0)
		s := f.Summarize()
		codec, err := r.CodecFor("nc", spec, nil, s.Range)
		if err != nil {
			return err
		}
		buf, err := compress.CompressInto(codec, compress.GetBytes(f.Len()), f.Data, r.shapeFor(spec))
		if err != nil {
			compress.PutBytes(buf)
			return err
		}
		defer compress.PutBytes(buf)
		dims := "2D"
		if spec.ThreeD {
			dims = "3D"
		}
		fill := ""
		if spec.HasFill {
			fill = "1e35"
		}
		rows[idx] = row{cells: []string{
			spec.Name, spec.Units, dims,
			report.Sci(s.Min), report.Sci(s.Max), report.Sci(s.Mean), report.Sci(s.Std),
			report.Fix(compress.Ratio(len(buf), f.Len()), 2), fill,
		}}
		return nil
	})
	if err != nil {
		return "", err
	}
	for _, rw := range rows {
		t.AddRow(rw.cells...)
	}
	return t.String(), nil
}

// GradientReport implements the paper's §6 plan to verify field-gradient
// preservation: for each featured variable and study variant, the §4.2
// measures are applied to the horizontal gradient-magnitude fields of the
// original and the reconstruction.
func (r *Runner) GradientReport() (string, error) {
	g := r.Cfg.Grid
	t := &report.Table{
		Title: fmt.Sprintf("Gradient preservation (NRMSE of horizontal gradient magnitude, grid %s) — §6 extension.",
			g.Name),
		Headers: append([]string{"Method"}, varcatalog.Featured()...),
	}
	cells := make(map[string]map[string]string)
	for _, name := range varcatalog.Featured() {
		idx, err := r.varIndex(name)
		if err != nil {
			return "", err
		}
		spec := r.Catalog[idx]
		f := r.Generator().Field(idx, 0)
		shape := r.shapeFor(spec)
		// Fused: the reconstruction streams through the 2-row-halo gradient
		// comparer, so neither the reconstructed field nor the two gradient-
		// magnitude fields of the whole-field path are materialized. Finish
		// is bit-identical to GradientCompare (equivalence-tested).
		var buf []byte
		for _, variant := range Variants() {
			codec, err := r.CodecFor(variant, spec, nil, f.Summarize().Range)
			if err != nil {
				return "", err
			}
			gc := metrics.NewGradientComparer(f.Data, shape.NLev, g.NLat, g.NLon, f.Fill, f.HasFill)
			withStage("decode", func() {
				buf, err = compress.CompressInto(codec, buf[:0], f.Data, shape)
				if err != nil {
					return
				}
				// Empty chunk: see computeErrorVariable.
				err = compress.DecodeChunks(codec, buf, nil, func(off int, vals []float32) error {
					gc.Push(vals, off)
					return nil
				})
			})
			if err != nil {
				return "", err
			}
			var e metrics.Errors
			withStage("metrics", func() { e = gc.Finish() })
			if cells[variant] == nil {
				cells[variant] = make(map[string]string)
			}
			cells[variant][name] = report.Sci(e.NRMSE)
		}
	}
	for _, variant := range Variants() {
		row := []string{Label(variant)}
		for _, name := range varcatalog.Featured() {
			row = append(row, cells[variant][name])
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}
