package experiments

import (
	"sort"
	"sync"
	"testing"
	"time"

	"climcompress/internal/artifact"
	"climcompress/internal/shard"
)

// TestShardedRunMatchesSerial is the end-to-end contract of the sharded
// runner at the experiments layer: two shards (independent Runners sharing
// one artifact store, as two processes would) split the verify + error
// work-unit space via the lease protocol, and a subsequent merge render
// from the shared store is byte-identical to a plain single-process run.
func TestShardedRunMatchesSerial(t *testing.T) {
	// Serial baseline, no cache at all.
	base := NewRunner(cacheCfg(nil), nil)
	ens := base.L96()
	want := renderPure(t, base)

	// Sharded: every shard gets its own Runner (processes share nothing
	// in memory), all against one store.
	dir := t.TempDir()
	const shards = 2
	runners := make([]*Runner, shards)
	for s := range runners {
		runners[s] = NewRunner(cacheCfg(artifact.Open(dir)), ens)
	}
	var wg sync.WaitGroup
	results := make([]shard.Result, shards)
	errs := make([]error, shards)
	experimentsList := []string{"table3", "table6", "table7", "thresholds"}
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			units := runners[s].UnitsFor(experimentsList)
			results[s], errs[s] = shard.Run(units, shard.Options{
				Store: runners[s].store(), Self: s, Shards: shards,
				TTL: time.Minute,
			})
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}

	// Both shards enumerated the same unit space (keys agree across
	// independent Runners — the partition contract).
	u0, u1 := runners[0].UnitsFor(experimentsList), runners[1].UnitsFor(experimentsList)
	if len(u0) != len(u1) {
		t.Fatalf("unit counts differ: %d vs %d", len(u0), len(u1))
	}
	for i := range u0 {
		if u0[i].Key != u1[i].Key || u0[i].Name != u1[i].Name {
			t.Fatalf("unit %d differs across runners: %s vs %s", i, u0[i].Name, u1[i].Name)
		}
	}

	// No unit computed twice, none lost.
	var all []string
	for _, res := range results {
		all = append(all, res.Computed...)
	}
	sort.Strings(all)
	if len(all) != len(u0) {
		t.Fatalf("%d units computed across shards, want %d", len(all), len(u0))
	}
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("unit %s computed by both shards", all[i])
		}
	}
	if done := shard.Done(runners[0].store(), u0); done != len(u0) {
		t.Fatalf("%d/%d done records after the run", done, len(u0))
	}

	// Merge: a fresh Runner over the warm store renders byte-identically
	// to the uncached serial baseline, without generating a single field.
	mergeStore := artifact.Open(dir)
	merge := NewRunner(cacheCfg(mergeStore), ens)
	for name, got := range renderPure(t, merge) {
		if got != want[name] {
			t.Errorf("merged %s differs from serial run", name)
		}
	}
	if merge.gen != nil {
		t.Error("merge render built the field generator; expected a pure record reduction")
	}
	if st := mergeStore.Stats(); st.BadReads != 0 {
		t.Fatalf("merge observed %d corrupt reads", st.BadReads)
	}
}

// TestUnitsForClasses pins the experiment→unit-class mapping.
func TestUnitsForClasses(t *testing.T) {
	r := NewRunner(cacheCfg(artifact.Open(t.TempDir())), nil)
	nvars := len(r.Catalog)
	if got := len(r.UnitsFor([]string{"table6"})); got != nvars {
		t.Fatalf("table6 units = %d, want %d", got, nvars)
	}
	if got := len(r.UnitsFor([]string{"table3", "table4", "fig1"})); got != nvars {
		t.Fatalf("error units deduplicated = %d, want %d", got, nvars)
	}
	if got := len(r.UnitsFor([]string{"table6", "fig1"})); got != 2*nvars {
		t.Fatalf("mixed classes = %d, want %d", got, 2*nvars)
	}
	if got := len(r.UnitsFor([]string{"table1", "restart"})); got != 0 {
		t.Fatalf("cacheless experiments produced %d units", got)
	}
	// Costs reflect dimensionality: 3-D variables weigh NLev× a 2-D one.
	units := r.VerifyUnits()
	var has3D, has2D bool
	for i, u := range units {
		if r.Catalog[i].ThreeD {
			has3D = u.Cost == float64(r.Cfg.Grid.NLev) || has3D
		} else {
			has2D = u.Cost == 1 || has2D
		}
	}
	if !has3D || !has2D {
		t.Fatal("unit costs do not reflect variable dimensionality")
	}
}
