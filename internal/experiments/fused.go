package experiments

import (
	"context"
	"runtime/pprof"
)

// withStage runs fn under a pprof "stage" label, so CPU profiles of the
// fused error-matrix / figure / gradient units split into their decode and
// metrics phases (mirroring the labels on the pvt verification stages).
func withStage(stage string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("stage", stage), func(context.Context) { fn() })
}
