// Serving API: the per-(variable, variant) entry points behind
// climatebenchd (internal/serve). The batch tables sweep whole catalogs;
// a verdict service answers one (variable, variant) query at a time, so
// this file exposes exactly that granularity — the verdict itself, the
// artifact-store digest it coalesces on, and the ensemble-statistics
// preload that makes warm serving a pure cache reduction. Every code path
// here reuses the batch machinery (newVerifier, verifyVariant, the cache
// key builders), so a served verdict is bit-identical to the same cell of
// Table 6.
package experiments

import (
	"context"
	"fmt"

	"climcompress/internal/artifact"
	"climcompress/internal/par"
)

// KnownVariant reports whether variant is one of the nine study variants.
func KnownVariant(variant string) bool {
	for _, v := range Variants() {
		if v == variant {
			return true
		}
	}
	return false
}

// VariableNames returns the catalog's variable names in catalog order.
func (r *Runner) VariableNames() []string {
	out := make([]string, len(r.Catalog))
	for i, s := range r.Catalog {
		out[i] = s.Name
	}
	return out
}

// VerdictKey returns the artifact-store digest of one (variable, variant)
// verification outcome — the digest the batch sweep persists verdicts
// under, and therefore the natural request-coalescing and response-cache
// key of the serving layer: two requests with the same key are guaranteed
// the same bytes.
//
// Deriving the key forces the substrate digest, which integrates (or
// loads) the chaotic-core ensemble on first use; servers should derive
// keys at startup, not per request.
func (r *Runner) VerdictKey(name, variant string) (artifact.ID, error) {
	if !KnownVariant(variant) {
		return "", fmt.Errorf("experiments: unknown variant %q", variant)
	}
	idx, err := r.varIndex(name)
	if err != nil {
		return "", err
	}
	return r.outcomeKey(r.Catalog[idx], variant), nil
}

// VerdictFor returns the verification outcome of one study variant on one
// catalog variable: the cached record when present, otherwise a fresh
// four-test verification (persisted before returning). The in-process
// VarStatsFor memo means concurrent verdicts for different variants of one
// variable share a single ensemble-statistics build.
func (r *Runner) VerdictFor(name, variant string) (VariantOutcome, error) {
	if !KnownVariant(variant) {
		return VariantOutcome{}, fmt.Errorf("experiments: unknown variant %q", variant)
	}
	idx, err := r.varIndex(name)
	if err != nil {
		return VariantOutcome{}, err
	}
	spec := r.Catalog[idx]
	s := r.store()
	if s.Enabled() {
		if payload, ok := s.Get(r.outcomeKey(spec, variant)); ok {
			if o, ok := decodeOutcome(payload); ok {
				return o, nil
			}
		}
	}
	vs, err := r.VarStatsFor(name)
	if err != nil {
		return VariantOutcome{}, fmt.Errorf("%s: %w", name, err)
	}
	o, err := r.verifyVariant(r.newVerifier(spec, vs), spec, vs, variant)
	if err != nil {
		return VariantOutcome{}, err
	}
	if s.Enabled() {
		s.Put(r.outcomeKey(spec, variant), encodeOutcome(o))
	}
	return o, nil
}

// PreloadStats builds the ensemble statistics of every catalog variable up
// front, fanning out over the shared worker pool, and returns how many
// variables are resident. This is the daemon's startup warm-up: after it
// returns, every handler reads the leave-one-out aggregates from the
// read-only VarStatsFor memo instead of paying a cold O(members) build on
// the first request for each variable. Cancelling ctx aborts scheduling of
// further variables; the ones already built stay resident.
func (r *Runner) PreloadStats(ctx context.Context) (int, error) {
	indices := r.allIndices()
	errs := make([]error, len(indices))
	err := par.EachLimitCtx(ctx, len(indices), r.workers(), func(k int) error {
		_, errs[k] = r.VarStatsFor(r.Catalog[indices[k]].Name)
		return nil
	})
	loaded := 0
	r.mu.Lock()
	for _, e := range r.varStats {
		if e.vs != nil {
			loaded++
		}
	}
	r.mu.Unlock()
	if err != nil {
		return loaded, err
	}
	for _, e := range errs {
		if e != nil {
			return loaded, e
		}
	}
	return loaded, nil
}
