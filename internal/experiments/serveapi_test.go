package experiments

import (
	"context"
	"testing"

	"climcompress/internal/artifact"
)

func TestKnownVariant(t *testing.T) {
	for _, v := range Variants() {
		if !KnownVariant(v) {
			t.Fatalf("study variant %q not known", v)
		}
	}
	for _, v := range []string{"", "none", "fpzip-24 ", "FPZIP-24"} {
		if KnownVariant(v) {
			t.Fatalf("non-variant %q accepted", v)
		}
	}
}

func TestVerdictForMatchesBatch(t *testing.T) {
	// A served verdict must be the exact record the batch Table 6 sweep
	// computes for the same (variable, variant) cell.
	store := artifact.Open(t.TempDir())
	batch := NewRunner(cacheCfg(store), nil)
	if _, err := batch.Table6(); err != nil {
		t.Fatal(err)
	}

	serveStore := artifact.Open(t.TempDir())
	serve := NewRunner(cacheCfg(serveStore), batch.L96())
	for _, name := range []string{"U", "SST"} {
		for _, variant := range []string{"fpzip-24", "grib2"} {
			got, err := serve.VerdictFor(name, variant)
			if err != nil {
				t.Fatalf("VerdictFor(%s, %s): %v", name, variant, err)
			}
			key, err := batch.VerdictKey(name, variant)
			if err != nil {
				t.Fatal(err)
			}
			payload, ok := store.Get(key)
			if !ok {
				t.Fatalf("batch sweep left no record under VerdictKey(%s, %s)", name, variant)
			}
			want, ok := decodeOutcome(payload)
			if !ok {
				t.Fatalf("batch record for (%s, %s) undecodable", name, variant)
			}
			if got != want {
				t.Fatalf("VerdictFor(%s, %s) = %+v, batch computed %+v", name, variant, got, want)
			}
		}
	}
	// The serving path must have persisted its own records: a fresh runner
	// on the same store serves them without touching the generator.
	warm := NewRunner(cacheCfg(serveStore), nil)
	if _, err := warm.VerdictFor("U", "fpzip-24"); err != nil {
		t.Fatal(err)
	}
	if st := serveStore.Stats(); st.Hits == 0 {
		t.Fatalf("warm VerdictFor did not hit the store: %+v", st)
	}
}

func TestVerdictForUnknown(t *testing.T) {
	r := NewRunner(cacheCfg(nil), nil)
	if _, err := r.VerdictFor("U", "no-such-variant"); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := r.VerdictFor("NOPE", "fpzip-24"); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := r.VerdictKey("U", "no-such-variant"); err == nil {
		t.Fatal("VerdictKey accepted unknown variant")
	}
	if _, err := r.VerdictKey("NOPE", "fpzip-24"); err == nil {
		t.Fatal("VerdictKey accepted unknown variable")
	}
}

func TestPreloadStats(t *testing.T) {
	r := NewRunner(cacheCfg(nil), nil)
	n, err := r.PreloadStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(r.Catalog) {
		t.Fatalf("preloaded %d variables, want %d", n, len(r.Catalog))
	}
	// After preload a verdict needs no new stats build: the memo entry is
	// resident, so VarStatsFor returns the same pointer.
	vs1, err := r.VarStatsFor("U")
	if err != nil {
		t.Fatal(err)
	}
	vs2, _ := r.VarStatsFor("U")
	if vs1 != vs2 {
		t.Fatal("VarStatsFor rebuilt after preload")
	}
}

func TestPreloadStatsCancelled(t *testing.T) {
	r := NewRunner(cacheCfg(nil), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.PreloadStats(ctx); err == nil {
		t.Fatal("cancelled preload reported success")
	}
}

func TestVariableNames(t *testing.T) {
	r := NewRunner(cacheCfg(nil), nil)
	names := r.VariableNames()
	if len(names) != len(r.Catalog) {
		t.Fatalf("%d names for %d specs", len(names), len(r.Catalog))
	}
	for i, s := range r.Catalog {
		if names[i] != s.Name {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], s.Name)
		}
	}
}
