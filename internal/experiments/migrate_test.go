package experiments

import (
	"testing"

	"climcompress/internal/artifact"
	"climcompress/internal/varcatalog"
)

// TestRecordV1MigrationSmoke pins the v1→v2 record migration contract:
// a store holding old-format records — v1 tagged Enc payloads, garbage,
// and records under the retired schema-1 keys — must degrade to misses
// and recomputation, never error, and must render byte-identical output;
// the run then leaves fresh v2 records behind that a warm re-run serves
// purely. make verify runs this test by name.
func TestRecordV1MigrationSmoke(t *testing.T) {
	base := NewRunner(cacheCfg(nil), nil)
	ens := base.L96()
	want := renderPure(t, base)

	store := artifact.Open(t.TempDir())
	r := NewRunner(cacheCfg(store), ens)

	// The schema-1 key derivation (the pre-v2 layout): same folds with the
	// old schema number. The bump must have moved every key.
	oldKey := func(kind string, spec varcatalog.Spec) *artifact.Key {
		g := r.Cfg.Grid
		k := artifact.NewKey(kind).
			Int(1). // cacheSchema before the v2 record format
			Str(r.substrate()).
			Str(g.Name).Int(g.NLat).Int(g.NLon).Int(g.NLev).
			Int(r.Cfg.Members)
		return foldSpec(k, spec)
	}

	for _, spec := range r.Catalog {
		if oldKey("ensstats", spec).ID() == r.ensStatsKey(spec) {
			t.Fatal("schema bump did not change the ensstats key")
		}
		// v1 records under their own (schema-1) keys: invisible to a v2 run.
		var v1 artifact.Enc
		v1.Floats(make([]float64, r.Cfg.Members)).Floats(make([]float64, r.Cfg.Members))
		store.Put(oldKey("ensstats", spec).ID(), v1.Bytes())

		// Hostile case: v1/garbage payloads planted at the *current* keys.
		// Decode must fail closed (miss + recompute), never error.
		var scores artifact.Enc
		scores.Floats(make([]float64, r.Cfg.Members)).Floats(make([]float64, r.Cfg.Members))
		store.Put(r.ensStatsKey(spec), scores.Bytes())
		store.Put(r.fieldKey(spec, 0), []byte{0x01, 0x02, 0x03})
		for _, variant := range Variants() {
			var oe artifact.Enc
			oe.Float(1).Float(2).Float(3).Float(4).Bool(true)
			store.Put(r.outcomeKey(spec, variant), oe.Bytes())
			store.Put(r.errmatKey(spec, variant), []byte("not a record"))
		}
	}

	for name, got := range renderPure(t, r) {
		if got != want[name] {
			t.Errorf("%s over planted v1 records differs from uncached baseline", name)
		}
	}
	if st := store.Stats(); st.Puts == 0 {
		t.Fatalf("migration run wrote no fresh v2 records: %+v", st)
	}

	// The recompute must have replaced the planted payloads with v2
	// records a warm run serves purely (no generator, no puts).
	warm := NewRunner(cacheCfg(artifact.Open(store.Dir())), ens)
	for name, got := range renderPure(t, warm) {
		if got != want[name] {
			t.Errorf("warm %s after migration differs from uncached baseline", name)
		}
	}
	if warm.gen != nil {
		t.Error("warm run after migration built the field generator; records were not refreshed")
	}
}
