package experiments

import (
	"testing"

	"climcompress/internal/artifact"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
)

// cacheCfg returns a small paper-shaped config for cache tests. SST is
// included for the fill-value path.
func cacheCfg(store *artifact.Store) Config {
	cfg := DefaultConfig(grid.Test())
	cfg.Members = 9
	cfg.L96 = l96.EnsembleConfig{
		Members: 9, Dt: 0.002, SpinupSteps: 1000,
		DivergeSteps: 6000, CalibSteps: 3000, Eps: 1e-14,
	}
	cfg.Variables = []string{"U", "FSDSC", "Z3", "CCN3", "SST"}
	cfg.Cache = store
	return cfg
}

// renderPure runs the experiments that a fully warm cache can serve as pure
// reductions (no field generation at all).
func renderPure(t *testing.T, r *Runner) map[string]string {
	t.Helper()
	out := map[string]string{}
	for name, fn := range map[string]func() (string, error){
		"table3": r.Table3,
		"table6": r.Table6,
		"table7": r.Table7,
		"sweep":  r.ThresholdSweep,
	} {
		s, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = s
	}
	return out
}

// TestCacheColdWarmIncrementalIdentical is the end-to-end contract of the
// artifact cache: a cold cached run renders byte-identical output to an
// uncached run; a warm run renders the same bytes from records alone
// (zero generation, zero puts); and after invalidating one codec variant,
// the next run recomputes exactly that variant's records and still renders
// the same bytes.
func TestCacheColdWarmIncrementalIdentical(t *testing.T) {
	dir := t.TempDir()

	// Baseline: no cache.
	base := NewRunner(cacheCfg(nil), nil)
	ens := base.L96()
	want := renderPure(t, base)
	wantFig2, err := base.Fig2()
	if err != nil {
		t.Fatal(err)
	}

	// Cold: empty cache, same substrate. Must match and must populate.
	coldStore := artifact.Open(dir)
	cold := NewRunner(cacheCfg(coldStore), ens)
	for name, got := range renderPure(t, cold) {
		if got != want[name] {
			t.Errorf("cold %s differs from uncached baseline", name)
		}
	}
	if gotFig2, err := cold.Fig2(); err != nil || gotFig2 != wantFig2 {
		t.Errorf("cold fig2 differs from uncached baseline (err=%v)", err)
	}
	if st := coldStore.Stats(); st.Puts == 0 {
		t.Fatalf("cold run wrote no artifacts: %+v", st)
	}

	// Warm: fresh store on the same dir. The pure set must be served
	// entirely from records: no misses, no puts, and — the residency
	// point — the field generator is never even constructed.
	warmStore := artifact.Open(dir)
	warm := NewRunner(cacheCfg(warmStore), ens)
	for name, got := range renderPure(t, warm) {
		if got != want[name] {
			t.Errorf("warm %s differs from uncached baseline", name)
		}
	}
	if warm.gen != nil {
		t.Error("warm run built the field generator; expected pure record reduction")
	}
	if st := warmStore.Stats(); st.Puts != 0 || st.Misses != 0 || st.BadReads != 0 {
		t.Errorf("warm run not pure: %+v", st)
	}
	// Figures need regenerated members (moments are never persisted), but
	// the bytes must still match.
	if gotFig2, err := warm.Fig2(); err != nil || gotFig2 != wantFig2 {
		t.Errorf("warm fig2 differs from uncached baseline (err=%v)", err)
	}

	// Incremental: invalidate one variant; only its records are recomputed.
	incStore := artifact.Open(dir)
	inc := NewRunner(cacheCfg(incStore), ens)
	inc.InvalidateVariant("fpzip-24")
	if s, err := inc.Table6(); err != nil || s != want["table6"] {
		t.Errorf("incremental table6 differs from uncached baseline (err=%v)", err)
	}
	if s, err := inc.Table3(); err != nil || s != want["table3"] {
		t.Errorf("incremental table3 differs from uncached baseline (err=%v)", err)
	}
	nvars := len(inc.Catalog)
	featured := 4
	if st := incStore.Stats(); int(st.Puts) != nvars+featured {
		t.Errorf("incremental run recomputed %d records, want %d (one outcome per variable + one errmat cell per featured variable)",
			st.Puts, nvars+featured)
	}
}

// TestInvalidateVariantScope checks invalidation removes exactly the
// variant-dependent records and leaves the rest readable.
func TestInvalidateVariantScope(t *testing.T) {
	store := artifact.Open(t.TempDir())
	r := NewRunner(cacheCfg(store), nil)
	if _, err := r.Table6(); err != nil {
		t.Fatal(err)
	}
	spec := r.Catalog[0]
	if _, ok := store.Get(r.outcomeKey(spec, "apax-4")); !ok {
		t.Fatal("outcome record missing after Table6")
	}
	r.InvalidateVariant("apax-4")
	if _, ok := store.Get(r.outcomeKey(spec, "apax-4")); ok {
		t.Error("invalidated outcome still present")
	}
	if _, ok := store.Get(r.outcomeKey(spec, "grib2")); !ok {
		t.Error("unrelated variant's outcome was removed")
	}
	if _, ok := store.Get(r.ensStatsKey(spec)); !ok {
		t.Error("ensemble-stats record was removed by variant invalidation")
	}
}

// TestCacheKeySensitivity ensures a changed input silently becomes a miss
// rather than serving stale records: bumping the seed or the member count
// must change the affected record keys, and distinct kinds/variants must
// never collide.
func TestCacheKeySensitivity(t *testing.T) {
	a := NewRunner(cacheCfg(nil), nil)
	cfgB := cacheCfg(nil)
	cfgB.Seed++
	b := NewRunner(cfgB, a.L96())
	cfgC := cacheCfg(nil)
	cfgC.Members = 8
	cfgC.L96.Members = 8
	c := NewRunner(cfgC, nil)

	spec := a.Catalog[0]
	if a.outcomeKey(spec, "grib2") == b.outcomeKey(b.Catalog[0], "grib2") {
		t.Error("outcome key ignores the test-member seed")
	}
	if a.fieldKey(spec, 0) == c.fieldKey(c.Catalog[0], 0) {
		t.Error("field key ignores the member count / substrate")
	}
	if a.errmatKey(spec, "grib2") == a.errmatKey(spec, "apax-2") {
		t.Error("errmat keys collide across variants")
	}
	if a.errmatKey(spec, "grib2") == a.outcomeKey(spec, "grib2") {
		t.Error("record keys collide across kinds")
	}
	if a.fieldKey(spec, 0) == a.fieldKey(spec, 1) {
		t.Error("field keys collide across members")
	}
	if a.fieldKey(spec, 0) == a.fieldKey(a.Catalog[1], 0) {
		t.Error("field keys collide across variables")
	}
}
