package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"climcompress/internal/compress"
	"climcompress/internal/ensemble"
	"climcompress/internal/metrics"
	"climcompress/internal/pvt"
	"climcompress/internal/report"
	"climcompress/internal/stats"
	"climcompress/internal/varcatalog"
)

// Fig1 reproduces Figure 1: box plots over all catalog variables of (a)
// the normalized maximum pointwise error and (b) the NRMSE, one box per
// study variant. Lossless reconstructions contribute the log-scale floor.
func (r *Runner) Fig1() (string, error) {
	names := make([]string, len(r.Catalog))
	for i, s := range r.Catalog {
		names[i] = s.Name
	}
	matrix, err := r.ErrorMatrix(names)
	if err != nil {
		return "", err
	}
	variantLabels := make([]string, 0, len(Variants()))
	var enmaxBoxes, nrmseBoxes []stats.Boxplot
	const floor = 1e-12 // log-scale floor for exact reconstructions
	for _, variant := range Variants() {
		var enmax, nrmse []float64
		for _, name := range names {
			e := matrix[name][variant].Errors
			if !math.IsNaN(e.ENMax) && !math.IsInf(e.ENMax, 0) {
				enmax = append(enmax, math.Max(e.ENMax, floor))
			}
			if !math.IsNaN(e.NRMSE) && !math.IsInf(e.NRMSE, 0) {
				nrmse = append(nrmse, math.Max(e.NRMSE, floor))
			}
		}
		variantLabels = append(variantLabels, Label(variant))
		enmaxBoxes = append(enmaxBoxes, stats.NewBoxplot(enmax))
		nrmseBoxes = append(nrmseBoxes, stats.NewBoxplot(nrmse))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: error distributions over all %d variable datasets (grid %s).\n\n",
		len(names), r.Cfg.Grid.Name)
	b.WriteString(report.BoxplotChart("(a) Normalized maximum pointwise error (log scale)",
		variantLabels, enmaxBoxes, true, 18))
	b.WriteByte('\n')
	b.WriteString(report.BoxplotChart("(b) Normalized RMSE (log scale)",
		variantLabels, nrmseBoxes, true, 18))
	return b.String(), nil
}

// featuredReconstructions compresses the test members of one featured
// variable with every variant and returns per-variant reconstructed RMSZ
// values and e_nmax values.
type featuredRecon struct {
	vs        *ensemble.VarStats
	testM     []int
	rmszRecon map[string][]float64 // variant -> per-test-member recon RMSZ
	enmax     map[string][]float64 // variant -> per-test-member e_nmax
}

func (r *Runner) featuredRecon(name string) (*featuredRecon, error) {
	vs, err := r.VarStatsFor(name)
	if err != nil {
		return nil, err
	}
	idx, err := r.varIndex(name)
	if err != nil {
		return nil, err
	}
	spec := r.Catalog[idx]
	shape := r.shapeFor(spec)
	testM := pvt.SelectTestMembers(vs.Members(), 3, r.Cfg.Seed)
	fr := &featuredRecon{
		vs:        vs,
		testM:     testM,
		rmszRecon: make(map[string][]float64),
		enmax:     make(map[string][]float64),
	}
	var mu sync.Mutex
	variants := Variants()
	indices := make([]int, len(variants))
	for i := range indices {
		indices[i] = i
	}
	err = r.forEachVar(indices, func(vi int) error {
		variant := variants[vi]
		codec, err := r.CodecFor(variant, spec, vs, 0)
		if err != nil {
			return err
		}
		// Fused: each test member's reconstruction decodes chunk by chunk
		// into the streaming RMSZ and error accumulators (the excluded
		// member of the RMSZ score is the acquired original, as before), so
		// no reconstructed field is materialized on natively chunked
		// variants. Scores stay bit-identical to the ScoreRMSZ/Compare pair.
		var rz, en []float64
		var buf []byte
		var cmp metrics.Comparer
		var rzAcc ensemble.RMSZAccumulator
		for _, m := range testM {
			data, release := vs.AcquireOriginal(m)
			cmp.Reset(vs.Fill, vs.HasFill)
			rzAcc.Reset(vs.Mom, vs.FillMask)
			withStage("decode", func() {
				buf, err = compress.CompressInto(codec, buf[:0], data, shape)
				if err != nil {
					return
				}
				// Empty chunk: see computeErrorVariable.
				err = compress.DecodeChunks(codec, buf, nil, func(off int, vals []float32) error {
					if off+len(vals) > len(data) {
						return fmt.Errorf("%w: chunk [%d,%d) outside field of %d points", compress.ErrCorrupt, off, off+len(vals), len(data))
					}
					orig := data[off : off+len(vals)]
					cmp.Push(orig, vals, off)
					rzAcc.Push(orig, vals, off)
					return nil
				})
			})
			release()
			if err != nil {
				return fmt.Errorf("%s/%s: %w", name, variant, err)
			}
			withStage("metrics", func() {
				rz = append(rz, rzAcc.Finish(vs.NPoints))
				en = append(en, cmp.Finish().ENMax)
			})
		}
		mu.Lock()
		fr.rmszRecon[variant] = rz
		fr.enmax[variant] = en
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fr, nil
}

// Fig2 reproduces Figure 2: for each featured variable, the histogram of
// the ensemble's RMSZ scores with markers for the reconstructed test
// members of each variant (the original member's score marked "O").
func (r *Runner) Fig2() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: RMSZ-ensemble test for U, Z3, FSDSC, CCN3 (grid %s, %d members).\n",
		r.Cfg.Grid.Name, r.Cfg.Members)
	b.WriteString("Markers: O = original member score; each variant's symbol marks its reconstructed score.\n\n")
	symbols := map[string]string{
		"grib2": "G", "apax-2": "a2", "apax-4": "a4", "apax-5": "a5",
		"fpzip-24": "f24", "fpzip-16": "f16",
		"isa-0.1": "i.1", "isa-0.5": "i.5", "isa-1": "i1",
	}
	for _, name := range []string{"U", "Z3", "FSDSC", "CCN3"} {
		fr, err := r.featuredRecon(name)
		if err != nil {
			return "", err
		}
		hist := stats.NewHistogram(fr.vs.RMSZ, 15)
		markers := map[string]string{}
		vals := map[string]float64{}
		m0 := fr.testM[0]
		markers["orig"] = "O"
		vals["orig"] = fr.vs.RMSZ[m0]
		for variant, rz := range fr.rmszRecon {
			markers[variant] = symbols[variant]
			vals[variant] = rz[0]
		}
		b.WriteString(report.HistogramChart(
			fmt.Sprintf("RMSZ-Ensemble test: %s (member %d marked)", name, m0),
			hist, markers, vals, 40))
		// Numeric detail: original vs reconstructed RMSZ for each variant.
		t := &report.Table{Headers: []string{"Method", "RMSZ orig", "RMSZ recon", "|diff|"}}
		for _, variant := range Variants() {
			rz := fr.rmszRecon[variant][0]
			t.AddRow(Label(variant), report.Fix(fr.vs.RMSZ[m0], 4), report.Fix(rz, 4),
				report.Sci(math.Abs(rz-fr.vs.RMSZ[m0])))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Fig3 reproduces Figure 3: for each featured variable, the ensemble's
// E_nmax distribution (eq. 10) as the leftmost box and each variant's
// original-vs-reconstruction e_nmax values beside it.
func (r *Runner) Fig3() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: E_nmax ensemble test for U, Z3, FSDSC, CCN3 (grid %s, %d members).\n\n",
		r.Cfg.Grid.Name, r.Cfg.Members)
	for _, name := range []string{"U", "Z3", "FSDSC", "CCN3"} {
		fr, err := r.featuredRecon(name)
		if err != nil {
			return "", err
		}
		labels := []string{"ensemble"}
		boxes := []stats.Boxplot{stats.NewBoxplot(fr.vs.Enmax)}
		const floor = 1e-12
		for _, variant := range Variants() {
			vals := make([]float64, 0, len(fr.enmax[variant]))
			for _, v := range fr.enmax[variant] {
				if !math.IsNaN(v) {
					vals = append(vals, math.Max(v, floor))
				}
			}
			labels = append(labels, Label(variant))
			boxes = append(boxes, stats.NewBoxplot(vals))
		}
		b.WriteString(report.BoxplotChart(
			fmt.Sprintf("E_nmax: %s (leftmost box = ensemble distribution, log scale)", name),
			labels, boxes, true, 16))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Fig4 reproduces Figure 4: the bias test. For each featured variable and
// each variant, the whole ensemble is reconstructed, the reconstructed
// RMSZ scores are regressed on the originals, and the 95% confidence
// rectangle for (slope, intercept) is reported with the eq. 9 verdict.
func (r *Runner) Fig4() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: bias test — RMSZ(reconstructed) regressed on RMSZ(original) (grid %s, %d members).\n",
		r.Cfg.Grid.Name, r.Cfg.Members)
	fmt.Fprintf(&b, "Pass requires |s_I - s_WC| <= %.2f (eq. 9); 'ideal in box' reports whether the 95%% rectangle contains (1, 0).\n\n",
		r.Cfg.Thr.SlopeDistance)
	for _, name := range []string{"U", "Z3", "FSDSC", "CCN3"} {
		vs, err := r.VarStatsFor(name)
		if err != nil {
			return "", err
		}
		idx, err := r.varIndex(name)
		if err != nil {
			return "", err
		}
		spec := r.Catalog[idx]
		verifier := &pvt.Verifier{
			Stats: vs, Shape: r.shapeFor(spec), Thr: r.Cfg.Thr,
			TestMembers: pvt.SelectTestMembers(vs.Members(), 3, r.Cfg.Seed),
			WithBias:    true, Workers: r.workers(),
		}
		t := &report.Table{
			Title: fmt.Sprintf("Bias: %s", name),
			Headers: []string{"Method", "slope", "slope 95% CI", "intercept", "intercept 95% CI",
				"|s_I-s_WC|", "ideal in box", "pass"},
		}
		var rects []report.Rect
		for _, variant := range Variants() {
			codec, err := r.CodecFor(variant, spec, vs, 0)
			if err != nil {
				return "", err
			}
			res, err := verifier.Verify(codec)
			if err != nil {
				return "", err
			}
			reg := res.Bias
			t.AddRow(Label(variant),
				report.Fix(reg.Slope, 5),
				fmt.Sprintf("[%s, %s]", report.Fix(reg.SlopeCI95[0], 5), report.Fix(reg.SlopeCI95[1], 5)),
				report.Sci(reg.Intercept),
				fmt.Sprintf("[%s, %s]", report.Sci(reg.InterceptCI95[0]), report.Sci(reg.InterceptCI95[1])),
				report.Fix(reg.SlopeWorstCaseDistance(), 4),
				yesNo(reg.ContainsIdeal()), yesNo(res.BiasPass))
			if !math.IsNaN(reg.Slope) {
				rects = append(rects, report.Rect{
					Label: Label(variant),
					X0:    reg.SlopeCI95[0], X1: reg.SlopeCI95[1],
					Y0: reg.InterceptCI95[0], Y1: reg.InterceptCI95[1],
				})
			}
		}
		b.WriteString(t.String())
		b.WriteString(report.ScatterRects(
			fmt.Sprintf("slope (x) vs intercept (y) 95%% confidence rectangles, '+' = ideal (1, 0): %s", name),
			rects, 1, 0, 72, 18))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// SSIMReport implements the paper's §6 extension: the structural similarity
// of reconstructed 2-D slices (the surface level for 3-D variables), per
// variant, for the featured variables.
func (r *Runner) SSIMReport() (string, error) {
	g := r.Cfg.Grid
	t := &report.Table{
		Title: fmt.Sprintf("SSIM of reconstructed fields (surface level, 8x8 windows, grid %s) — §6 extension.",
			g.Name),
		Headers: append([]string{"Method"}, varcatalog.Featured()...),
	}
	cells := make(map[string]map[string]string)
	for _, name := range varcatalog.Featured() {
		idx, err := r.varIndex(name)
		if err != nil {
			return "", err
		}
		spec := r.Catalog[idx]
		f := r.memberField(idx, 0)
		shape := r.shapeFor(spec)
		// Surface (last) level slab.
		slab := f.Data[(shape.NLev-1)*g.NLat*g.NLon:]
		var buf []byte
		var recon []float32
		for _, variant := range Variants() {
			codec, err := r.CodecFor(variant, spec, nil, f.Summarize().Range)
			if err != nil {
				f.Release()
				return "", err
			}
			buf, err = compress.CompressInto(codec, buf[:0], f.Data, shape)
			if err != nil {
				f.Release()
				return "", err
			}
			recon, err = compress.DecompressInto(codec, recon, buf)
			if err != nil {
				f.Release()
				return "", err
			}
			rslab := recon[(shape.NLev-1)*g.NLat*g.NLon:]
			s := metrics.SSIM(slab, rslab, g.NLat, g.NLon, 8, f.Fill, f.HasFill)
			if cells[variant] == nil {
				cells[variant] = make(map[string]string)
			}
			cells[variant][name] = report.Fix(s, 6)
		}
		f.Release()
	}
	for _, variant := range Variants() {
		row := []string{Label(variant)}
		for _, name := range varcatalog.Featured() {
			row = append(row, cells[variant][name])
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}
