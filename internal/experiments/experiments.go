// Package experiments reproduces every table and figure of the paper's
// evaluation section (§5). Each RunnerTableN / RunnerFigN method generates
// the corresponding result from the synthetic CESM substrate and renders it
// as text; cmd/climatebench exposes them as subcommands and bench_test.go
// wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"climcompress/internal/artifact"
	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	"climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
	_ "climcompress/internal/compress/tsblob"
	"climcompress/internal/ensemble"
	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/model"
	"climcompress/internal/par"
	"climcompress/internal/pvt"
	"climcompress/internal/varcatalog"
)

// Config parameterizes an experiment run.
type Config struct {
	Grid    *grid.Grid
	Members int // ensemble size (paper: 101)
	Workers int // parallel workers (GOMAXPROCS when 0)
	Seed    uint64
	// Variables restricts the catalog to the named variables (nil = all
	// 170). The featured four are always retained if present.
	Variables []string
	Thr       pvt.Thresholds
	// L96 scales the chaotic-core integration; zero values use defaults.
	L96 l96.EnsembleConfig
	// L96Source, when set, supplies the chaotic-core ensemble instead of
	// integrating one (e.g. a closure shared across runners that loads the
	// on-disk cache). It is consulted lazily, on the first experiment that
	// needs members.
	L96Source func() *l96.Ensemble
	// Cache, when non-nil, persists expensive artifacts — member fields,
	// ensemble scoring vectors, error-matrix cells, verification outcomes —
	// in a content-addressed store, making warm re-runs pure reductions over
	// cached records and incremental re-runs (one codec changed) recompute
	// only that codec's column. Nil disables all persistence.
	Cache *artifact.Store
	// FieldCacheMembers bounds how many leading member fields per variable
	// are persisted (they dominate disk: members × gridsize × 4 bytes).
	// 0 means the default of 1 (member 0, which feeds the error tables);
	// negative disables field caching entirely.
	FieldCacheMembers int
}

// DefaultConfig returns the paper-scale configuration on the given grid.
func DefaultConfig(g *grid.Grid) Config {
	return Config{
		Grid:    g,
		Members: 101,
		Seed:    2014, // HPDC'14
		Thr:     pvt.Default(),
	}
}

// Variants returns the evaluated variants in table order, by registry
// name: the paper's nine lossy study variants plus the repo-native
// lossless tsblob family, which runs through the same four-test
// verification methodology.
func Variants() []string {
	return []string{
		"grib2", "apax-2", "apax-4", "apax-5",
		"fpzip-24", "fpzip-16",
		"isa-0.1", "isa-0.5", "isa-1",
		"tsblob",
	}
}

// Label maps a registry name to the paper's display label.
func Label(name string) string {
	switch name {
	case "grib2":
		return "GRIB2"
	case "apax-2":
		return "APAX-2"
	case "apax-4":
		return "APAX-4"
	case "apax-5":
		return "APAX-5"
	case "fpzip-24":
		return "fpzip-24"
	case "fpzip-16":
		return "fpzip-16"
	case "isa-0.1":
		return "ISA-0.1"
	case "isa-0.5":
		return "ISA-0.5"
	case "isa-1":
		return "ISA-1.0"
	case "nc":
		return "NetCDF-4"
	case "fpzip-32":
		return "fpzip-32"
	case "tsblob":
		return "tsblob"
	}
	return name
}

// Runner owns the lazily built substrate shared by the experiments.
type Runner struct {
	Cfg     Config
	Catalog []varcatalog.Spec

	l96Once sync.Once
	l96Ens  *l96.Ensemble

	genOnce sync.Once
	gen     *model.Generator

	subOnce sync.Once
	subID   string // substrate content digest (cache key component)

	mu       sync.Mutex
	varStats map[string]*varStatsEntry
	table6   *Table6Result
}

// varStatsEntry is the per-variable compute-once slot of the VarStatsFor
// cache: concurrent callers for the same variable share one Build instead of
// racing to do the work twice.
type varStatsEntry struct {
	once sync.Once
	vs   *ensemble.VarStats
	err  error
}

// NewRunner builds a Runner. sharedL96 may carry a pre-integrated chaotic
// ensemble (it is grid-independent) to share across runners; pass nil to
// integrate on first use.
func NewRunner(cfg Config, sharedL96 *l96.Ensemble) *Runner {
	if cfg.Grid == nil {
		cfg.Grid = grid.Bench()
	}
	if cfg.Members == 0 {
		cfg.Members = 101
	}
	if cfg.Thr == (pvt.Thresholds{}) {
		cfg.Thr = pvt.Default()
	}
	r := &Runner{
		Cfg:      cfg,
		Catalog:  selectCatalog(cfg.Variables),
		varStats: make(map[string]*varStatsEntry),
	}
	if sharedL96 != nil {
		r.l96Ens = sharedL96
		r.l96Once.Do(func() {})
	}
	return r
}

// selectCatalog restricts the catalog to the requested variables.
func selectCatalog(names []string) []varcatalog.Spec {
	full := varcatalog.Default()
	if len(names) == 0 {
		return full
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []varcatalog.Spec
	for _, s := range full {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// L96 returns the (lazily integrated) chaotic-core ensemble.
func (r *Runner) L96() *l96.Ensemble {
	r.l96Once.Do(func() {
		if r.Cfg.L96Source != nil {
			r.l96Ens = r.Cfg.L96Source()
			return
		}
		cfg := r.Cfg.L96
		if cfg.Members == 0 {
			cfg = l96.DefaultEnsembleConfig(r.Cfg.Members)
		}
		cfg.Members = r.Cfg.Members
		r.l96Ens = l96.NewEnsemble(l96.DefaultParams(), cfg)
	})
	return r.l96Ens
}

// Generator returns the (lazily built) synthetic field generator.
func (r *Runner) Generator() *model.Generator {
	r.genOnce.Do(func() {
		r.gen = model.NewGenerator(r.Cfg.Grid, r.Catalog, r.L96())
	})
	return r.gen
}

// workers resolves the configured parallelism.
func (r *Runner) workers() int {
	if r.Cfg.Workers > 0 {
		return r.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// shapeFor derives the codec shape of a variable on the runner's grid.
func (r *Runner) shapeFor(spec varcatalog.Spec) compress.Shape {
	g := r.Cfg.Grid
	nlev := 1
	if spec.ThreeD {
		nlev = g.NLev
	}
	return compress.Shape{NLev: nlev, NLat: g.NLat, NLon: g.NLon}
}

// varIndex finds a variable in the runner's catalog.
func (r *Runner) varIndex(name string) (int, error) {
	_, idx, ok := varcatalog.ByName(r.Catalog, name)
	if !ok {
		return -1, fmt.Errorf("experiments: variable %q not in catalog", name)
	}
	return idx, nil
}

// VarStatsFor builds (and caches in-process) the ensemble statistics of one
// variable. Concurrent callers for the same variable block on a single
// build rather than duplicating the member generation. Statistics are built
// through the streaming pipeline: member fields flow through the worker
// pool in chunks and are released immediately, so peak residency is
// O(workers) fields rather than O(members), and results are bit-identical
// to the materialized build.
func (r *Runner) VarStatsFor(name string) (*ensemble.VarStats, error) {
	r.mu.Lock()
	e, ok := r.varStats[name]
	if !ok {
		e = &varStatsEntry{}
		r.varStats[name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		idx, err := r.varIndex(name)
		if err != nil {
			e.err = err
			return
		}
		e.vs, e.err = r.streamStats(idx)
	})
	return e.vs, e.err
}

// grib2AbsTarget derives the absolute-error target for GRIB2's decimal
// scale factor. With ensemble statistics available, the paper's procedure
// applies: the RMSZ ensemble test bounds the tolerable quantization noise
// to a fraction of the per-point ensemble spread. Without them (the plain
// §5.2 error tables), the target falls back to a fraction of the
// variable's range.
func grib2AbsTarget(vs *ensemble.VarStats, fieldRange float64) float64 {
	if vs != nil {
		if s := vs.SigmaMedian(); !math.IsNaN(s) && s > 0 {
			return 0.3 * s
		}
	}
	return 1e-4 * fieldRange
}

// CodecFor instantiates a study variant for a variable. GRIB2 is tuned per
// variable (decimal scale factor, native fill support); the other codecs
// are wrapped with fill masking when the variable has special values.
func (r *Runner) CodecFor(variant string, spec varcatalog.Spec, vs *ensemble.VarStats, fieldRange float64) (compress.Codec, error) {
	if variant == "grib2" {
		d := grib2.DForTarget(grib2AbsTarget(vs, fieldRange))
		c := grib2.New(d)
		if spec.HasFill {
			c.HasFill = true
			c.Fill = field.DefaultFill
		}
		return c, nil
	}
	c, err := compress.New(variant)
	if err != nil {
		return nil, err
	}
	if spec.HasFill {
		c = compress.WithFill(c, field.DefaultFill)
	}
	return c, nil
}

// forEachVar runs fn over catalog indices, fanning out on the shared worker
// pool (bounded by the configured worker count). Every index is attempted;
// the first error in index order is returned.
func (r *Runner) forEachVar(indices []int, fn func(idx int) error) error {
	errs := make([]error, len(indices))
	par.EachLimit(len(indices), r.workers(), func(k int) error {
		errs[k] = fn(indices[k])
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// allIndices returns 0..len(catalog)-1.
func (r *Runner) allIndices() []int {
	out := make([]int, len(r.Catalog))
	for i := range out {
		out[i] = i
	}
	return out
}

// sortedKeys returns map keys sorted for deterministic rendering.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
