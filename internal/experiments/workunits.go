// Work-unit enumeration: the bridge between the experiment pipeline and
// the sharded multi-process runner (internal/shard).
//
// The unit space of the paper's methodology is member × variable × variant,
// but its natural claim granularity is the variable: every variant's
// verification shares the variable's in-memory ensemble statistics (one
// O(members) streamed build), so splitting a variable's variants across
// processes would rebuild those statistics once per process. Each work unit
// therefore covers one variable's full sweep — all members, all variants —
// and its digest folds the exact artifact-cache keys its records land
// under, so a unit is "done" precisely when a warm run could serve it
// without computing.
package experiments

import (
	"fmt"

	"climcompress/internal/shard"
)

// unitCost estimates a variable's relative work for partition balancing:
// proportional to its field size (3-D variables carry NLev× the points of
// 2-D ones).
func (r *Runner) unitCost(idx int) float64 {
	if r.Catalog[idx].ThreeD {
		return float64(r.Cfg.Grid.NLev)
	}
	return 1
}

// VerifyUnits returns one work unit per catalog variable covering the full
// verification sweep behind Tables 6–8, the ensemble figures and the
// threshold sweep: the variable's ensemble score vectors, every study
// variant's verification outcome, and the lossless fallback CRs. Running a
// unit persists exactly the records a warm RunTable6 reads back.
func (r *Runner) VerifyUnits() []shard.Unit {
	units := make([]shard.Unit, 0, len(r.Catalog))
	for idx := range r.Catalog {
		idx := idx
		spec := r.Catalog[idx]
		units = append(units, shard.Unit{
			Name: fmt.Sprintf("verify/%s/%s", r.Cfg.Grid.Name, spec.Name),
			Key:  r.verifyKey("unit-verify", spec, "*all*"),
			Cost: r.unitCost(idx),
			Run: func() error {
				_, _, err := r.computeVerifyVariable(idx)
				return err
			},
		})
	}
	return units
}

// ErrorUnits returns one work unit per catalog variable covering the §5.2
// error matrix behind Tables 3–4 and Figure 1: the variable's member-0
// field record plus every study variant's error-measure cell.
func (r *Runner) ErrorUnits() []shard.Unit {
	units := make([]shard.Unit, 0, len(r.Catalog))
	for idx := range r.Catalog {
		idx := idx
		spec := r.Catalog[idx]
		units = append(units, shard.Unit{
			Name: fmt.Sprintf("errmat/%s/%s", r.Cfg.Grid.Name, spec.Name),
			Key:  r.specKey("unit-errmat", spec).ID(),
			Cost: r.unitCost(idx),
			Run: func() error {
				_, err := r.computeErrorVariable(idx)
				return err
			},
		})
	}
	return units
}

// unitClasses maps each experiment to the unit classes that precompute its
// cached inputs. Experiments not listed here (table1, table5's timing
// columns, the extension reports) either need no cache or measure
// wall-clock locally and are rendered by the merge step directly.
var unitClasses = map[string]string{
	"table2": "error", "table3": "error", "table4": "error",
	"fig1": "error", "ssim": "error",
	"table6": "verify", "table7": "verify", "table8": "verify",
	"fig2": "verify", "fig3": "verify", "fig4": "verify",
	"thresholds": "verify",
}

// UnitsFor returns the units covering the named experiments on this
// runner, deduplicated by class. Unknown names contribute nothing.
func (r *Runner) UnitsFor(experiments []string) []shard.Unit {
	var units []shard.Unit
	seen := map[string]bool{}
	for _, name := range experiments {
		class, ok := unitClasses[name]
		if !ok || seen[class] {
			continue
		}
		seen[class] = true
		switch class {
		case "error":
			units = append(units, r.ErrorUnits()...)
		case "verify":
			units = append(units, r.VerifyUnits()...)
		}
	}
	return units
}
