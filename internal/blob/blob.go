// Package blob implements the columnar record container shared by the
// tsblob codec family (internal/compress/tsblob) and artifact record
// format v2 (internal/artifact): a fixed header, a typed column table with
// absolute byte offsets, and per-column payloads that can be read in place
// — every accessor returns a view over the original buffer, so a record
// validated once (the artifact store's checksum, the codec's header) is
// then iterated with zero copies and zero allocations.
//
// Container layout (all integers little-endian):
//
//	magic   u32   "CLB2"
//	ncols   u16
//	flags   u16   must be zero
//	table   ncols × 16 bytes:
//	          tag   u8    column type (ColF32, ColF64, ...)
//	          pad   u8×3  must be zero
//	          count u32   logical element count
//	          off   u32   absolute byte offset of the column payload
//	          size  u32   payload byte length
//	payloads
//
// Column types:
//
//	ColBytes    opaque bytes (count == size)
//	ColF32      raw float32 bit patterns, 4 bytes each
//	ColF64      raw float64 bit patterns, 8 bytes each
//	ColU32Delta non-decreasing uint32s, delta-packed as uvarints
//	ColXORF32   XOR-compressed float32 blocks with an O(1) offset table
//	            (see xor.go)
//
// Open validates the framing and every column's bounds once; the typed
// accessors validate per-type invariants. All validation errors are
// ErrBlob — a malformed container is indistinguishable from a foreign one,
// and callers uniformly degrade to a cache miss or a corrupt-stream error.
package blob

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrBlob is returned for any malformed container, column table, or
// column payload.
var ErrBlob = errors.New("blob: malformed container")

const (
	magic       = 0x32424c43 // bytes "CLB2" on disk
	headerLen   = 8
	colDescSize = 16
	// maxCols bounds the column table a hostile header can demand.
	maxCols = 1 << 12
)

// Column type tags.
const (
	ColBytes    byte = 'b'
	ColF32      byte = 'f'
	ColF64      byte = 'F'
	ColU32Delta byte = 'd'
	ColXORF32   byte = 'x'
)

// Blob is a validated read-only view over an encoded container. The zero
// value is an empty container. Blob does not copy the buffer; callers must
// treat the underlying bytes as immutable for the view's lifetime.
type Blob struct {
	buf []byte
	n   int
}

// Open validates buf's framing and column table and returns a view.
// Column payload bounds are checked here; per-type payload invariants are
// checked by the typed accessors.
func Open(buf []byte) (Blob, error) {
	if len(buf) < headerLen {
		return Blob{}, ErrBlob
	}
	if binary.LittleEndian.Uint32(buf) != magic {
		return Blob{}, ErrBlob
	}
	n := int(binary.LittleEndian.Uint16(buf[4:]))
	if binary.LittleEndian.Uint16(buf[6:]) != 0 || n > maxCols {
		return Blob{}, ErrBlob
	}
	end := headerLen + n*colDescSize
	if end > len(buf) {
		return Blob{}, ErrBlob
	}
	for i := 0; i < n; i++ {
		d := buf[headerLen+i*colDescSize:]
		if d[1] != 0 || d[2] != 0 || d[3] != 0 {
			return Blob{}, ErrBlob
		}
		count := uint64(binary.LittleEndian.Uint32(d[4:]))
		off := uint64(binary.LittleEndian.Uint32(d[8:]))
		size := uint64(binary.LittleEndian.Uint32(d[12:]))
		if off < uint64(end) || off+size > uint64(len(buf)) {
			return Blob{}, ErrBlob
		}
		switch d[0] {
		case ColBytes:
			if count != size {
				return Blob{}, ErrBlob
			}
		case ColF32:
			if size != 4*count {
				return Blob{}, ErrBlob
			}
		case ColF64:
			if size != 8*count {
				return Blob{}, ErrBlob
			}
		case ColU32Delta:
			// Each value takes at least one uvarint byte.
			if count > size {
				return Blob{}, ErrBlob
			}
		case ColXORF32:
			// Detailed framing is validated by the XORF32 accessor.
		default:
			return Blob{}, ErrBlob
		}
	}
	return Blob{buf: buf, n: n}, nil
}

// Cols returns the number of columns.
func (b Blob) Cols() int { return b.n }

// col returns column i's descriptor fields. Bounds were validated by Open.
func (b Blob) col(i int) (tag byte, count int, payload []byte) {
	d := b.buf[headerLen+i*colDescSize:]
	count = int(binary.LittleEndian.Uint32(d[4:]))
	off := binary.LittleEndian.Uint32(d[8:])
	size := binary.LittleEndian.Uint32(d[12:])
	return d[0], count, b.buf[off : off+size]
}

// Tag returns column i's type tag, or 0 when out of range.
func (b Blob) Tag(i int) byte {
	if i < 0 || i >= b.n {
		return 0
	}
	tag, _, _ := b.col(i)
	return tag
}

// Count returns column i's logical element count, or 0 when out of range.
func (b Blob) Count(i int) int {
	if i < 0 || i >= b.n {
		return 0
	}
	_, count, _ := b.col(i)
	return count
}

// Bytes returns column i's payload as an in-place byte view.
func (b Blob) Bytes(i int) ([]byte, error) {
	if i < 0 || i >= b.n {
		return nil, ErrBlob
	}
	tag, _, p := b.col(i)
	if tag != ColBytes {
		return nil, ErrBlob
	}
	return p, nil
}

// F32 returns a zero-copy view of a float32 column.
func (b Blob) F32(i int) (F32View, error) {
	if i < 0 || i >= b.n {
		return F32View{}, ErrBlob
	}
	tag, _, p := b.col(i)
	if tag != ColF32 {
		return F32View{}, ErrBlob
	}
	return F32View{p: p}, nil
}

// F64 returns a zero-copy view of a float64 column.
func (b Blob) F64(i int) (F64View, error) {
	if i < 0 || i >= b.n {
		return F64View{}, ErrBlob
	}
	tag, _, p := b.col(i)
	if tag != ColF64 {
		return F64View{}, ErrBlob
	}
	return F64View{p: p}, nil
}

// U32Delta returns a sequential iterator over a delta-packed uint32
// column.
func (b Blob) U32Delta(i int) (DeltaIter, error) {
	if i < 0 || i >= b.n {
		return DeltaIter{}, ErrBlob
	}
	tag, count, p := b.col(i)
	if tag != ColU32Delta {
		return DeltaIter{}, ErrBlob
	}
	return DeltaIter{p: p, n: count}, nil
}

// F32View reads float32 values directly off a column payload.
type F32View struct {
	p []byte
}

// Len returns the number of values.
func (v F32View) Len() int { return len(v.p) / 4 }

// At returns value i. Callers must keep i in [0, Len()).
func (v F32View) At(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(v.p[4*i:]))
}

// CopyInto bulk-copies min(len(dst), Len()) values into dst and returns
// how many were copied.
func (v F32View) CopyInto(dst []float32) int {
	n := v.Len()
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(v.p[4*i:]))
	}
	return n
}

// AppendTo appends every value to dst.
func (v F32View) AppendTo(dst []float32) []float32 {
	n := v.Len()
	for i := 0; i < n; i++ {
		dst = append(dst, v.At(i))
	}
	return dst
}

// F64View reads float64 values directly off a column payload.
type F64View struct {
	p []byte
}

// Len returns the number of values.
func (v F64View) Len() int { return len(v.p) / 8 }

// At returns value i. Callers must keep i in [0, Len()).
func (v F64View) At(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.p[8*i:]))
}

// AppendTo appends every value to dst.
func (v F64View) AppendTo(dst []float64) []float64 {
	n := v.Len()
	for i := 0; i < n; i++ {
		dst = append(dst, v.At(i))
	}
	return dst
}

// DeltaIter decodes a delta-packed uint32 column value by value. The zero
// value iterates an empty column.
type DeltaIter struct {
	p   []byte
	n   int
	i   int
	pos int
	cur uint32
	err error
}

// Next advances to the next value, reporting whether one is available.
func (it *DeltaIter) Next() bool {
	if it.err != nil || it.i >= it.n {
		return false
	}
	d, k := binary.Uvarint(it.p[it.pos:])
	if k <= 0 {
		it.err = ErrBlob
		return false
	}
	it.pos += k
	v := d
	if it.i > 0 {
		v += uint64(it.cur)
	}
	if v > math.MaxUint32 {
		it.err = ErrBlob
		return false
	}
	it.cur = uint32(v)
	it.i++
	return true
}

// Value returns the current value (valid after a true Next).
func (it *DeltaIter) Value() uint32 { return it.cur }

// Err returns the first decode error, if any.
func (it *DeltaIter) Err() error { return it.err }

// Done reports whether the column decoded cleanly end to end: every value
// consumed, no error, no trailing bytes.
func (it *DeltaIter) Done() error {
	if it.err != nil {
		return it.err
	}
	if it.i != it.n || it.pos != len(it.p) {
		return ErrBlob
	}
	return nil
}
