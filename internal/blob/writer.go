package blob

import (
	"encoding/binary"
	"math"
	"sync"

	"climcompress/internal/bitstream"
)

// Writer builds a container column by column and appends the encoded
// bytes to a caller-supplied slice. A Writer holds reusable scratch (the
// concatenated payloads and two bit writers for XOR mode selection); pair
// GetWriter/PutWriter to recycle it and keep steady-state encoding
// allocation-free.
type Writer struct {
	cols    []colDesc
	payload []byte
	gw, cw  *bitstream.Writer
}

type colDesc struct {
	tag   byte
	count uint32
	off   uint32 // into payload
	size  uint32
}

var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// GetWriter returns a reset Writer from the pool. Pair with PutWriter.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter hands a Writer back to the pool. The caller must not use it
// (or any slice obtained from it) afterwards.
func PutWriter(w *Writer) { writerPool.Put(w) }

// Reset discards all columns, retaining scratch capacity.
func (w *Writer) Reset() {
	w.cols = w.cols[:0]
	w.payload = w.payload[:0]
}

// add records a column whose payload bytes were appended starting at off.
func (w *Writer) add(tag byte, count, off int) {
	w.cols = append(w.cols, colDesc{
		tag:   tag,
		count: uint32(count),
		off:   uint32(off),
		size:  uint32(len(w.payload) - off),
	})
}

// AddBytes appends an opaque byte column.
func (w *Writer) AddBytes(p []byte) {
	off := len(w.payload)
	w.payload = append(w.payload, p...)
	w.add(ColBytes, len(p), off)
}

// AddF32s appends a raw float32 column (exact bit patterns).
func (w *Writer) AddF32s(vals []float32) {
	off := len(w.payload)
	var tmp [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(v))
		w.payload = append(w.payload, tmp[:]...)
	}
	w.add(ColF32, len(vals), off)
}

// AddF64s appends a raw float64 column (exact bit patterns).
func (w *Writer) AddF64s(vals []float64) {
	off := len(w.payload)
	var tmp [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		w.payload = append(w.payload, tmp[:]...)
	}
	w.add(ColF64, len(vals), off)
}

// AddU32Delta appends a delta-packed uint32 column. Values must be
// non-decreasing (the delta encoding is unsigned); it panics otherwise —
// a programming error, since callers control the sequence.
func (w *Writer) AddU32Delta(vals []uint32) {
	off := len(w.payload)
	var tmp [binary.MaxVarintLen64]byte
	prev := uint32(0)
	for i, v := range vals {
		d := uint64(v)
		if i > 0 {
			if v < prev {
				panic("blob: AddU32Delta requires non-decreasing values")
			}
			d = uint64(v - prev)
		}
		k := binary.PutUvarint(tmp[:], d)
		w.payload = append(w.payload, tmp[:k]...)
		prev = v
	}
	w.add(ColU32Delta, len(vals), off)
}

// AddXORF32 appends an XOR-compressed float32 column. Each block is
// encoded with both the Gorilla and the Chimp-style scheme and the
// smaller stream is kept (ties go to Gorilla), so the choice — and the
// output bytes — are a pure function of the input. blockSize <= 0 selects
// DefaultBlockSize.
func (w *Writer) AddXORF32(vals []float32, blockSize int) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize > maxBlockSize {
		blockSize = maxBlockSize
	}
	off := len(w.payload)
	nblocks := (len(vals) + blockSize - 1) / blockSize
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(blockSize))
	w.payload = append(w.payload, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:], uint32(nblocks))
	w.payload = append(w.payload, tmp[:]...)
	table := len(w.payload)
	for b := 0; b < nblocks; b++ {
		w.payload = append(w.payload, 0, 0, 0, 0)
	}
	if w.gw == nil {
		w.gw = bitstream.NewWriter(0)
		w.cw = bitstream.NewWriter(0)
	}
	areaStart := len(w.payload)
	for b := 0; b < nblocks; b++ {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > len(vals) {
			hi = len(vals)
		}
		block := vals[lo:hi]
		w.gw.Reset()
		appendGorilla(w.gw, block)
		w.cw.Reset()
		appendChimp(w.cw, block)
		enc, mode := w.gw, modeGorilla
		if w.cw.Len() < w.gw.Len() {
			enc, mode = w.cw, modeChimp
		}
		binary.LittleEndian.PutUint32(w.payload[table+4*b:], uint32(len(w.payload)-areaStart))
		w.payload = append(w.payload, mode)
		w.payload = enc.AppendTo(w.payload)
	}
	w.add(ColXORF32, len(vals), off)
}

// Size returns the encoded container size in bytes.
func (w *Writer) Size() int {
	return headerLen + colDescSize*len(w.cols) + len(w.payload)
}

// AppendTo appends the encoded container to dst and returns the extended
// slice. The Writer remains usable (further columns extend the same
// container on a later AppendTo).
func (w *Writer) AppendTo(dst []byte) []byte {
	base := headerLen + colDescSize*len(w.cols)
	var tmp [colDescSize]byte
	binary.LittleEndian.PutUint32(tmp[:], magic)
	binary.LittleEndian.PutUint16(tmp[4:], uint16(len(w.cols)))
	binary.LittleEndian.PutUint16(tmp[6:], 0)
	dst = append(dst, tmp[:headerLen]...)
	for _, c := range w.cols {
		tmp[0] = c.tag
		tmp[1], tmp[2], tmp[3] = 0, 0, 0
		binary.LittleEndian.PutUint32(tmp[4:], c.count)
		binary.LittleEndian.PutUint32(tmp[8:], uint32(base)+c.off)
		binary.LittleEndian.PutUint32(tmp[12:], c.size)
		dst = append(dst, tmp[:]...)
	}
	return append(dst, w.payload...)
}
