package blob

import (
	"math"
	"math/rand"
	"testing"
)

// synth returns a float32 field mixing smooth structure, noise, repeats,
// exact zeros and sign flips — the mix XOR coding must survive.
func synth(seed int64, n int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		switch rng.Intn(8) {
		case 0:
			out[i] = 0
		case 1:
			if i > 0 {
				out[i] = out[i-1] // exact repeat: the 1-bit XOR case
			}
		case 2:
			out[i] = -float32(math.Ldexp(rng.Float64(), rng.Intn(40)-20))
		default:
			out[i] = float32(260 + 30*math.Sin(float64(i)/17) + rng.NormFloat64())
		}
	}
	return out
}

func TestRoundTripAllColumns(t *testing.T) {
	f32 := synth(1, 1000)
	f64 := make([]float64, 257)
	for i := range f64 {
		f64[i] = math.Sqrt(float64(i)) * 1e-3
	}
	f64[0] = math.NaN()
	u32 := []uint32{0, 0, 7, 7, 1000, 1 << 30, math.MaxUint32}
	raw := []byte("opaque payload")

	w := GetWriter()
	defer PutWriter(w)
	w.AddF32s(f32)
	w.AddF64s(f64)
	w.AddU32Delta(u32)
	w.AddBytes(raw)
	w.AddXORF32(f32, 64)
	enc := w.AppendTo(nil)
	if len(enc) != w.Size() {
		t.Fatalf("Size() = %d, encoded %d bytes", w.Size(), len(enc))
	}

	b, err := Open(enc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cols() != 5 {
		t.Fatalf("Cols() = %d, want 5", b.Cols())
	}

	v32, err := b.F32(0)
	if err != nil || v32.Len() != len(f32) {
		t.Fatalf("F32: err %v len %d", err, v32.Len())
	}
	for i, want := range f32 {
		if math.Float32bits(v32.At(i)) != math.Float32bits(want) {
			t.Fatalf("F32.At(%d) = %v, want %v", i, v32.At(i), want)
		}
	}
	got32 := make([]float32, len(f32))
	if n := v32.CopyInto(got32); n != len(f32) {
		t.Fatalf("CopyInto copied %d, want %d", n, len(f32))
	}

	v64, err := b.F64(1)
	if err != nil || v64.Len() != len(f64) {
		t.Fatalf("F64: err %v len %d", err, v64.Len())
	}
	for i, want := range f64 {
		if math.Float64bits(v64.At(i)) != math.Float64bits(want) {
			t.Fatalf("F64.At(%d) differs", i)
		}
	}

	di, err := b.U32Delta(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range u32 {
		if !di.Next() {
			t.Fatalf("U32Delta ended early at %d: %v", i, di.Err())
		}
		if di.Value() != want {
			t.Fatalf("U32Delta[%d] = %d, want %d", i, di.Value(), want)
		}
	}
	if di.Next() {
		t.Fatal("U32Delta yielded an extra value")
	}
	if err := di.Done(); err != nil {
		t.Fatal(err)
	}

	rb, err := b.Bytes(3)
	if err != nil || string(rb) != string(raw) {
		t.Fatalf("Bytes: err %v, got %q", err, rb)
	}

	xc, err := b.XORF32(4)
	if err != nil || xc.Len() != len(f32) {
		t.Fatalf("XORF32: err %v len %d", err, xc.Len())
	}
	it := xc.Iter()
	for i, want := range f32 {
		if !it.Next() {
			t.Fatalf("XOR iter ended early at %d: %v", i, it.Err())
		}
		if math.Float32bits(it.Value()) != math.Float32bits(want) {
			t.Fatalf("XOR value %d = %v, want %v", i, it.Value(), want)
		}
		if it.Index() != i {
			t.Fatalf("Index() = %d, want %d", it.Index(), i)
		}
	}
	if it.Next() {
		t.Fatal("XOR iter yielded an extra value")
	}

	// Wrong-type accessors must error, not misread.
	if _, err := b.F64(0); err == nil {
		t.Fatal("F64 over an f32 column did not error")
	}
	if _, err := b.XORF32(0); err == nil {
		t.Fatal("XORF32 over an f32 column did not error")
	}
	if _, err := b.F32(99); err == nil {
		t.Fatal("out-of-range column did not error")
	}
}

// TestXORRoundTripProperty hammers the XOR column with random data across
// block sizes, including blocks that divide the length unevenly.
func TestXORRoundTripProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 1 + int(seed*37%1500)
		data := synth(seed, n)
		for _, bs := range []int{1, 2, 7, 64, 512, 4096} {
			w := GetWriter()
			w.AddXORF32(data, bs)
			enc := w.AppendTo(nil)
			PutWriter(w)
			b, err := Open(enc)
			if err != nil {
				t.Fatalf("seed %d bs %d: %v", seed, bs, err)
			}
			xc, err := b.XORF32(0)
			if err != nil {
				t.Fatalf("seed %d bs %d: %v", seed, bs, err)
			}
			it := xc.Iter()
			for i := 0; i < n; i++ {
				if !it.Next() {
					t.Fatalf("seed %d bs %d: short at %d: %v", seed, bs, i, it.Err())
				}
				if math.Float32bits(it.Value()) != math.Float32bits(data[i]) {
					t.Fatalf("seed %d bs %d: value %d differs", seed, bs, i)
				}
			}
			if it.Next() {
				t.Fatalf("seed %d bs %d: extra value", seed, bs)
			}
		}
	}
}

// TestXORDeterministic pins that encoding is a pure function of the input.
func TestXORDeterministic(t *testing.T) {
	data := synth(7, 999)
	w1, w2 := GetWriter(), GetWriter()
	w1.AddXORF32(data, 128)
	w2.AddXORF32(data, 128)
	b1 := w1.AppendTo(nil)
	b2 := w2.AppendTo(nil)
	PutWriter(w1)
	PutWriter(w2)
	if string(b1) != string(b2) {
		t.Fatal("identical input produced different streams")
	}
}

func TestXORSeek(t *testing.T) {
	data := synth(3, 700)
	w := GetWriter()
	w.AddXORF32(data, 64)
	enc := w.AppendTo(nil)
	PutWriter(w)
	b, err := Open(enc)
	if err != nil {
		t.Fatal(err)
	}
	xc, err := b.XORF32(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 63, 64, 65, 333, 699, 12} {
		it := xc.Iter()
		if !it.Seek(i) || !it.Next() {
			t.Fatalf("Seek(%d) failed: %v", i, it.Err())
		}
		if math.Float32bits(it.Value()) != math.Float32bits(data[i]) {
			t.Fatalf("Seek(%d): got %v, want %v", i, it.Value(), data[i])
		}
		// The iterator keeps going from there.
		for j := i + 1; j < len(data) && j < i+70; j++ {
			if !it.Next() || math.Float32bits(it.Value()) != math.Float32bits(data[j]) {
				t.Fatalf("after Seek(%d): value %d differs", i, j)
			}
		}
	}
	it := xc.Iter()
	if it.Seek(len(data)) || it.Seek(-1) == true {
		t.Fatal("out-of-range Seek succeeded")
	}
}

// TestIterSteadyStateAllocs pins the zero-allocation contract of the read
// path: opening the container and iterating every value allocates nothing.
func TestIterSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	data := synth(11, 4096)
	w := GetWriter()
	w.AddU32Delta([]uint32{0, 512, 1024})
	w.AddXORF32(data, 512)
	enc := w.AppendTo(nil)
	PutWriter(w)
	if allocs := testing.AllocsPerRun(10, func() {
		b, err := Open(enc)
		if err != nil {
			t.Fatal(err)
		}
		xc, err := b.XORF32(1)
		if err != nil {
			t.Fatal(err)
		}
		it := xc.Iter()
		var sum float32
		for it.Next() {
			sum += it.Value()
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
	}); allocs > 0 {
		t.Errorf("open+iterate allocates %.1f/op, want 0", allocs)
	}
}

// TestWriterSteadyStateAllocs pins the pooled write path: re-encoding into
// a reused dst allocates nothing once the scratch has grown.
func TestWriterSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	data := synth(13, 4096)
	w := GetWriter()
	w.AddXORF32(data, 512)
	dst := w.AppendTo(nil)
	PutWriter(w)
	if allocs := testing.AllocsPerRun(10, func() {
		w := GetWriter()
		w.AddXORF32(data, 512)
		dst = w.AppendTo(dst[:0])
		PutWriter(w)
	}); allocs > 0 {
		t.Errorf("pooled encode allocates %.1f/op, want 0", allocs)
	}
}

// TestOpenRejectsCorruption truncates and bit-flips an encoded container
// at every byte; Open plus full accessor-and-iteration sweeps must error
// or decode cleanly — never panic, never loop.
func TestOpenRejectsCorruption(t *testing.T) {
	data := synth(5, 300)
	w := GetWriter()
	w.AddU32Delta([]uint32{0, 64, 128, 192, 256})
	w.AddXORF32(data, 64)
	enc := w.AppendTo(nil)
	PutWriter(w)

	exercise := func(buf []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on corrupt container: %v", r)
			}
		}()
		b, err := Open(buf)
		if err != nil {
			return
		}
		for i := 0; i < b.Cols(); i++ {
			switch b.Tag(i) {
			case ColU32Delta:
				di, err := b.U32Delta(i)
				if err != nil {
					continue
				}
				for di.Next() {
				}
			case ColXORF32:
				xc, err := b.XORF32(i)
				if err != nil {
					continue
				}
				it := xc.Iter()
				for it.Next() {
				}
			}
		}
	}

	for cut := 0; cut < len(enc); cut += 7 {
		exercise(enc[:cut])
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		bad := append([]byte(nil), enc...)
		bad[rng.Intn(len(bad))] ^= 1 << rng.Intn(8)
		exercise(bad)
	}
}

func TestAddU32DeltaPanicsOnDecrease(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing sequence did not panic")
		}
	}()
	w := GetWriter()
	defer PutWriter(w)
	w.AddU32Delta([]uint32{5, 3})
}

func TestEmptyColumns(t *testing.T) {
	w := GetWriter()
	defer PutWriter(w)
	w.AddF32s(nil)
	w.AddXORF32(nil, 0)
	w.AddU32Delta(nil)
	b, err := Open(w.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.F32(0)
	if err != nil || v.Len() != 0 {
		t.Fatalf("empty F32: err %v len %d", err, v.Len())
	}
	xc, err := b.XORF32(1)
	if err != nil || xc.Len() != 0 {
		t.Fatalf("empty XOR: err %v len %d", err, xc.Len())
	}
	it := xc.Iter()
	if it.Next() {
		t.Fatal("empty XOR column yielded a value")
	}
	di, err := b.U32Delta(2)
	if err != nil || di.Next() || di.Done() != nil {
		t.Fatalf("empty delta column misbehaved: %v", err)
	}
}
