// XOR-compressed float32 columns. Values are grouped into fixed-size
// blocks; each block is encoded twice — Gorilla-style (leading/trailing
// -zero window) and Chimp-style (3-bit leading-zero class, no trailing
// window) — and the smaller stream is kept, with a per-block mode byte
// recording the choice. Block byte offsets are stored in an O(1) table so
// an iterator can seek to any value by decoding at most one block prefix.
// Encoding is lossless and deterministic: exact bit patterns round-trip
// and identical input always yields identical bytes.
//
// Column payload layout (after the container's column descriptor):
//
//	blockSize u32
//	nblocks   u32    must equal ceil(count / blockSize)
//	offsets   nblocks × u32   byte offset of each block within the area
//	area      per block: mode u8 (0 = gorilla, 1 = chimp), then the
//	          zero-padded bitstream
//
// Per-value bit grammar, Gorilla mode (after a raw 32-bit first value):
//
//	0                  XOR with previous value is zero
//	1 0 <m>            meaningful bits in the previous window
//	1 1 <lead:5> <sig-1:5> <sig bits>   new window
//
// Chimp mode (after a raw 32-bit first value):
//
//	0                  XOR is zero
//	1 0 <32-4c bits>   reuse previous leading-zero class c
//	1 1 <c:3> <32-4c bits>              new class
package blob

import (
	"encoding/binary"
	"math"
	"math/bits"

	"climcompress/internal/bitstream"
)

const (
	modeGorilla byte = 0
	modeChimp   byte = 1

	// DefaultBlockSize balances offset-table overhead (4 bytes per block)
	// against seek granularity.
	DefaultBlockSize = 512

	// maxBlockSize bounds the per-block decode work a hostile stream can
	// demand through one offset-table entry.
	maxBlockSize = 1 << 20

	xorColHeader = 8 // blockSize + nblocks
)

// appendGorilla encodes block into w with Facebook Gorilla's windowed XOR
// scheme, adapted to float32 (5-bit leading-zero and significant-bit
// fields).
func appendGorilla(w *bitstream.Writer, block []float32) {
	prev := math.Float32bits(block[0])
	w.WriteBits(uint64(prev), 32)
	var prevLead, prevTrail uint
	window := false
	for _, v := range block[1:] {
		cur := math.Float32bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		lead := uint(bits.LeadingZeros32(xor))
		trail := uint(bits.TrailingZeros32(xor))
		if window && lead >= prevLead && trail >= prevTrail {
			w.WriteBit(0)
			w.WriteBits(uint64(xor>>prevTrail), 32-prevLead-prevTrail)
			continue
		}
		sig := 32 - lead - trail
		w.WriteBit(1)
		w.WriteBits(uint64(lead), 5)
		w.WriteBits(uint64(sig-1), 5)
		w.WriteBits(uint64(xor>>trail), sig)
		prevLead, prevTrail = lead, trail
		window = true
	}
}

// appendChimp encodes block into w with a Chimp-style reduced-window
// scheme: the leading-zero count is rounded down to one of eight 4-bit
// classes and trailing zeros are stored explicitly, trading a few payload
// bits for much cheaper window bookkeeping — it wins on noisy data where
// Gorilla's trailing-zero window rarely sticks.
func appendChimp(w *bitstream.Writer, block []float32) {
	prev := math.Float32bits(block[0])
	w.WriteBits(uint64(prev), 32)
	prevClass := -1
	for _, v := range block[1:] {
		cur := math.Float32bits(v)
		xor := cur ^ prev
		prev = cur
		if xor == 0 {
			w.WriteBit(0)
			continue
		}
		w.WriteBit(1)
		c := bits.LeadingZeros32(xor) >> 2
		if c > 7 {
			c = 7
		}
		if c == prevClass {
			w.WriteBit(0)
		} else {
			w.WriteBit(1)
			w.WriteBits(uint64(c), 3)
			prevClass = c
		}
		w.WriteBits(uint64(xor), uint(32-4*c))
	}
}

// XORF32 validates and returns the XOR-compressed float32 column at index
// i: block framing, offset-table monotonicity and bounds, and a
// plausibility bound on the claimed value count (at least one bit per
// value must exist in the block area).
func (b Blob) XORF32(i int) (XORColumn, error) {
	if i < 0 || i >= b.n {
		return XORColumn{}, ErrBlob
	}
	tag, count, p := b.col(i)
	if tag != ColXORF32 {
		return XORColumn{}, ErrBlob
	}
	if len(p) < xorColHeader {
		return XORColumn{}, ErrBlob
	}
	blockSize := int(binary.LittleEndian.Uint32(p))
	nblocks := int(binary.LittleEndian.Uint32(p[4:]))
	if blockSize < 1 || blockSize > maxBlockSize {
		return XORColumn{}, ErrBlob
	}
	if nblocks != (count+blockSize-1)/blockSize {
		return XORColumn{}, ErrBlob
	}
	tableEnd := xorColHeader + 4*nblocks
	if tableEnd > len(p) {
		return XORColumn{}, ErrBlob
	}
	offsets := p[xorColHeader:tableEnd]
	area := p[tableEnd:]
	if count > 8*len(area) {
		return XORColumn{}, ErrBlob
	}
	prev := uint32(0)
	for b := 0; b < nblocks; b++ {
		off := binary.LittleEndian.Uint32(offsets[4*b:])
		// Every block holds at least a mode byte and a raw first value.
		if off < prev || uint64(off)+5 > uint64(len(area)) {
			return XORColumn{}, ErrBlob
		}
		prev = off
	}
	return XORColumn{blockSize: blockSize, count: count, offsets: offsets, area: area}, nil
}

// XORColumn is a validated XOR-compressed float32 column. Values are read
// through Iter; the column itself holds only views over the blob buffer.
type XORColumn struct {
	blockSize int
	count     int
	offsets   []byte
	area      []byte
}

// Len returns the number of encoded values.
func (c XORColumn) Len() int { return c.count }

// BlockSize returns the values-per-block granularity of the offset table.
func (c XORColumn) BlockSize() int { return c.blockSize }

// Blocks returns the number of blocks.
func (c XORColumn) Blocks() int { return len(c.offsets) / 4 }

// blockBounds returns the [lo, hi) byte range of block b within the area.
func (c XORColumn) blockBounds(b int) (int, int) {
	lo := int(binary.LittleEndian.Uint32(c.offsets[4*b:]))
	hi := len(c.area)
	if 4*(b+1) < len(c.offsets) {
		hi = int(binary.LittleEndian.Uint32(c.offsets[4*(b+1):]))
	}
	if hi > len(c.area) {
		hi = len(c.area)
	}
	return lo, hi
}

// Iter returns a zero-allocation iterator positioned before the first
// value. The iterator is a value type: it lives on the caller's stack and
// reads directly off the blob buffer.
func (c XORColumn) Iter() XORIter {
	return XORIter{c: c}
}

// XORIter decodes an XORColumn value by value.
type XORIter struct {
	c XORColumn
	r bitstream.Reader

	i        int // values already returned
	blockEnd int // first value index beyond the current block

	mode      byte
	prev      uint32
	prevLead  uint
	prevTrail uint
	window    bool
	prevClass int

	val float32
	err error
}

// startBlock positions the iterator at the beginning of block b.
func (it *XORIter) startBlock(b int) bool {
	lo, hi := it.c.blockBounds(b)
	if lo >= hi {
		it.err = ErrBlob
		return false
	}
	it.mode = it.c.area[lo]
	if it.mode != modeGorilla && it.mode != modeChimp {
		it.err = ErrBlob
		return false
	}
	it.r.Reset(it.c.area[lo+1 : hi])
	it.prev = uint32(it.r.ReadBits(32))
	it.window = false
	it.prevClass = -1
	it.blockEnd = (b + 1) * it.c.blockSize
	if it.blockEnd > it.c.count {
		it.blockEnd = it.c.count
	}
	if it.r.Err() != nil {
		it.err = ErrBlob
		return false
	}
	it.val = math.Float32frombits(it.prev)
	return true
}

// Next advances to the next value, reporting whether one was decoded.
func (it *XORIter) Next() bool {
	if it.err != nil || it.i >= it.c.count {
		return false
	}
	if it.i%it.c.blockSize == 0 {
		if !it.startBlock(it.i / it.c.blockSize) {
			return false
		}
		it.i++ // first value of the block is the raw 32-bit read
		return true
	}
	var xor uint32
	if it.r.ReadBit() == 1 {
		if it.mode == modeGorilla {
			if it.r.ReadBit() == 0 {
				if !it.window {
					it.err = ErrBlob
					return false
				}
				xor = uint32(it.r.ReadBits(32-it.prevLead-it.prevTrail)) << it.prevTrail
			} else {
				lead := uint(it.r.ReadBits(5))
				sig := uint(it.r.ReadBits(5)) + 1
				if lead+sig > 32 {
					it.err = ErrBlob
					return false
				}
				trail := 32 - lead - sig
				xor = uint32(it.r.ReadBits(sig)) << trail
				it.prevLead, it.prevTrail = lead, trail
				it.window = true
			}
		} else {
			if it.r.ReadBit() == 1 {
				it.prevClass = int(it.r.ReadBits(3))
			} else if it.prevClass < 0 {
				it.err = ErrBlob
				return false
			}
			xor = uint32(it.r.ReadBits(uint(32 - 4*it.prevClass)))
		}
	}
	if it.r.Err() != nil {
		it.err = ErrBlob
		return false
	}
	it.prev ^= xor
	it.val = math.Float32frombits(it.prev)
	it.i++
	return true
}

// Value returns the current value (valid after a true Next).
func (it *XORIter) Value() float32 { return it.val }

// Index returns the index of the current value (valid after a true Next).
func (it *XORIter) Index() int { return it.i - 1 }

// Err returns the first decode error, if any.
func (it *XORIter) Err() error { return it.err }

// Seek positions the iterator so the next Next returns value i, using the
// offset table to jump to value i's block and decoding at most
// blockSize-1 values of prefix. It reports success; a failed seek poisons
// the iterator.
func (it *XORIter) Seek(i int) bool {
	if it.err != nil || i < 0 || i >= it.c.count {
		if it.err == nil {
			it.err = ErrBlob
		}
		return false
	}
	b := i / it.c.blockSize
	it.i = b * it.c.blockSize
	it.blockEnd = 0 // force startBlock on the next Next
	for it.i < i {
		if !it.Next() {
			return false
		}
	}
	return true
}
