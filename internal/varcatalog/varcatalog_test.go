package varcatalog

import (
	"math"
	"testing"
)

func TestCatalogCounts(t *testing.T) {
	specs := Default()
	if len(specs) != 170 {
		t.Fatalf("catalog has %d variables, want 170", len(specs))
	}
	two, three := Counts(specs)
	if two != 83 {
		t.Errorf("2-D count = %d, want 83", two)
	}
	if three != 87 {
		t.Errorf("3-D count = %d, want 87", three)
	}
}

func TestNamesUnique(t *testing.T) {
	specs := Default()
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" {
			t.Fatal("empty variable name")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate variable name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestFeaturedPresent(t *testing.T) {
	specs := Default()
	for _, name := range Featured() {
		s, idx, ok := ByName(specs, name)
		if !ok {
			t.Fatalf("featured variable %q missing", name)
		}
		if specs[idx].Name != name || s.Name != name {
			t.Fatalf("ByName returned wrong spec for %q", name)
		}
	}
	// Paper: FSDSC is 2-D, the other three are 3-D.
	fs, _, _ := ByName(specs, "FSDSC")
	if fs.ThreeD {
		t.Error("FSDSC must be 2-D")
	}
	for _, name := range []string{"U", "Z3", "CCN3"} {
		s, _, _ := ByName(specs, name)
		if !s.ThreeD {
			t.Errorf("%s must be 3-D", name)
		}
	}
}

func TestByNameMissing(t *testing.T) {
	if _, _, ok := ByName(Default(), "NOPE"); ok {
		t.Fatal("ByName found a nonexistent variable")
	}
}

func TestSpecsSane(t *testing.T) {
	for _, s := range Default() {
		if s.NoiseAmp <= 0 {
			t.Errorf("%s: NoiseAmp must be positive (ensemble σ would vanish)", s.Name)
		}
		if s.ModeAmp <= 0 {
			t.Errorf("%s: ModeAmp must be positive", s.Name)
		}
		if s.WaveNum < 1 || s.WaveNum > 8 {
			t.Errorf("%s: WaveNum %d out of range", s.Name, s.WaveNum)
		}
		if s.Seed == 0 {
			t.Errorf("%s: zero seed", s.Name)
		}
		if !s.ThreeD && s.Kind == Linear && s.VertAmp != 0 && s.VertKind != VertFlat {
			// 2-D variables may carry a template VertAmp; it is ignored by
			// the generator, so this is informational only.
			continue
		}
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	h := hashName("T")
	if jitter(h, 1) != jitter(h, 1) {
		t.Fatal("jitter not deterministic")
	}
	for salt := uint64(0); salt < 50; salt++ {
		j := jitter(h, salt)
		if j < 0.7 || j > 1.3 {
			t.Fatalf("jitter %v out of [0.7, 1.3]", j)
		}
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := Default()
	b := Default()
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i].ClampMin) || math.IsNaN(a[i].ClampMax)) {
			t.Fatalf("catalog not deterministic at %s", a[i].Name)
		}
	}
}

func TestMagnitudeDiversity(t *testing.T) {
	// The catalog must span many orders of magnitude, from chemistry at
	// O(1e-9) to pressure at O(1e5); this drives the paper's key finding
	// that variables need individual treatment.
	specs := Default()
	var logCount, linCount int
	for _, s := range specs {
		if s.Kind == Log {
			logCount++
		} else {
			linCount++
		}
	}
	if logCount < 30 || linCount < 30 {
		t.Fatalf("catalog lacks scale diversity: %d log, %d linear", logCount, linCount)
	}
}

func TestSomeVariablesHaveFill(t *testing.T) {
	var n int
	for _, s := range Default() {
		if s.HasFill {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("expected at least 2 fill-bearing variables, got %d", n)
	}
}
