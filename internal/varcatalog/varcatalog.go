// Package varcatalog defines the synthetic counterpart of the 170 CAM
// history variables the paper evaluates (83 two-dimensional and 87
// three-dimensional fields). Each Spec carries the parameters that
// internal/model uses to synthesize a field with that variable's character:
// magnitude, range, meridional/zonal/vertical structure, chaotic ensemble
// spread, high-frequency noise level, physical clamps, and whether special
// (fill) values occur.
//
// The four variables the paper features — U, FSDSC, Z3 and CCN3 — are
// calibrated so their §4.1 characteristics approximate the paper's Table 2.
// The rest are generated from per-category templates with deterministic
// per-name jitter so that, like real CAM output, no two variables behave
// identically and magnitudes span many orders (SO2 at O(1e-8) up to Z3 at
// O(1e4)).
package varcatalog

import (
	"math"
)

// Kind selects the synthesis space for a variable.
type Kind int

const (
	// Linear variables are synthesized directly in physical units.
	Linear Kind = iota
	// Log variables are synthesized in ln space and exponentiated,
	// producing the large dynamic ranges of moisture, precipitation and
	// chemistry fields.
	Log
)

// VertKind selects the shape of the vertical climatology profile.
type VertKind int

const (
	// VertFlat has no systematic vertical structure.
	VertFlat VertKind = iota
	// VertIncreasing grows from model top (level 0) to the surface.
	VertIncreasing
	// VertDecreasing shrinks from model top to the surface (e.g. Z3, U).
	VertDecreasing
	// VertBump peaks at mid-levels (e.g. cloud amount, jet cores).
	VertBump
)

// Spec is one variable's synthesis recipe. For Kind == Log, Base and every
// amplitude are in ln space; clamps remain in physical space.
type Spec struct {
	Name  string
	Units string

	ThreeD bool
	Kind   Kind

	Base     float64  // climatology offset
	LatAmp   float64  // meridional structure amplitude
	WaveAmp  float64  // zonal wave amplitude
	VertAmp  float64  // vertical profile amplitude (3-D only)
	VertKind VertKind // vertical profile shape
	VertExp  float64  // profile exponent override (0: seeded default)
	WaveNum  int      // dominant zonal wavenumber (higher = rougher)

	ModeAmp  float64 // chaotic (ensemble-spread) anomaly amplitude
	NoiseAmp float64 // deterministic high-frequency noise amplitude

	ClampMin float64 // physical lower bound (NaN: none)
	ClampMax float64 // physical upper bound (NaN: none)

	HasFill bool // variable has special/missing values (paper: 1e35)

	Seed uint64 // deterministic per-variable pattern seed
}

// category groups variables that share a synthesis template.
type category int

const (
	catTempSfc category = iota
	catTemp3D
	catPressure
	catWind
	catFlux
	catCloudFrac
	catFraction
	catHumidity
	catPrecip
	catChem
	catBurden
	catHeight
	catMixing
	catMicro // in-cloud microphysics number/mass concentrations
	catMisc
)

// entry is one catalog row before template expansion.
type entry struct {
	name   string
	units  string
	cat    category
	threeD bool
	fill   bool
}

var nan = math.NaN()

// twoD lists the 83 two-dimensional variables.
var twoD = []entry{
	{"PS", "Pa", catPressure, false, false},
	{"PSL", "Pa", catPressure, false, false},
	{"TS", "K", catTempSfc, false, false},
	{"TSMN", "K", catTempSfc, false, false},
	{"TSMX", "K", catTempSfc, false, false},
	{"TREFHT", "K", catTempSfc, false, false},
	{"TREFHTMN", "K", catTempSfc, false, false},
	{"TREFHTMX", "K", catTempSfc, false, false},
	{"QREFHT", "kg/kg", catHumidity, false, false},
	{"U10", "m/s", catWind, false, false},
	{"PRECC", "m/s", catPrecip, false, false},
	{"PRECL", "m/s", catPrecip, false, false},
	{"PRECSC", "m/s", catPrecip, false, false},
	{"PRECSL", "m/s", catPrecip, false, false},
	{"PRECT", "m/s", catPrecip, false, false},
	{"PRECTMX", "m/s", catPrecip, false, false},
	{"SNOWHLND", "m", catPrecip, false, false},
	{"SNOWHICE", "m", catPrecip, false, true},
	{"QFLX", "kg/m2/s", catPrecip, false, false},
	{"LHFLX", "W/m2", catFlux, false, false},
	{"SHFLX", "W/m2", catFlux, false, false},
	{"TAUX", "N/m2", catWind, false, false},
	{"TAUY", "N/m2", catWind, false, false},
	{"FLDS", "W/m2", catFlux, false, false},
	{"FLNS", "W/m2", catFlux, false, false},
	{"FLNSC", "W/m2", catFlux, false, false},
	{"FLNT", "W/m2", catFlux, false, false},
	{"FLNTC", "W/m2", catFlux, false, false},
	{"FLUT", "W/m2", catFlux, false, false},
	{"FLUTC", "W/m2", catFlux, false, false},
	{"FSDS", "W/m2", catFlux, false, false},
	{"FSDSC", "W/m2", catFlux, false, false}, // featured; overridden below
	{"FSNS", "W/m2", catFlux, false, false},
	{"FSNSC", "W/m2", catFlux, false, false},
	{"FSNT", "W/m2", catFlux, false, false},
	{"FSNTC", "W/m2", catFlux, false, false},
	{"FSNTOA", "W/m2", catFlux, false, false},
	{"FSNTOAC", "W/m2", catFlux, false, false},
	{"FSUTOA", "W/m2", catFlux, false, false},
	{"SOLIN", "W/m2", catFlux, false, false},
	{"CLDTOT", "fraction", catCloudFrac, false, false},
	{"CLDLOW", "fraction", catCloudFrac, false, false},
	{"CLDMED", "fraction", catCloudFrac, false, false},
	{"CLDHGH", "fraction", catCloudFrac, false, false},
	{"TGCLDIWP", "kg/m2", catPrecip, false, false},
	{"TGCLDLWP", "kg/m2", catPrecip, false, false},
	{"TGCLDCWP", "kg/m2", catPrecip, false, false},
	{"LWCF", "W/m2", catFlux, false, false},
	{"SWCF", "W/m2", catFlux, false, false},
	{"TMQ", "kg/m2", catMisc, false, false},
	{"PBLH", "m", catMisc, false, false},
	{"PHIS", "m2/s2", catMisc, false, false},
	{"OCNFRAC", "fraction", catFraction, false, false},
	{"ICEFRAC", "fraction", catFraction, false, true},
	{"LANDFRAC", "fraction", catFraction, false, false},
	{"SST", "K", catTempSfc, false, true},
	{"AEROD_v", "1", catCloudFrac, false, false},
	{"AODVIS", "1", catCloudFrac, false, false},
	{"AODDUST1", "1", catChem, false, false},
	{"AODDUST2", "1", catChem, false, false},
	{"AODDUST3", "1", catChem, false, false},
	{"BURDEN1", "kg/m2", catBurden, false, false},
	{"BURDEN2", "kg/m2", catBurden, false, false},
	{"BURDEN3", "kg/m2", catBurden, false, false},
	{"BURDENBC", "kg/m2", catBurden, false, false},
	{"BURDENDUST", "kg/m2", catBurden, false, false},
	{"BURDENPOM", "kg/m2", catBurden, false, false},
	{"BURDENSEASALT", "kg/m2", catBurden, false, false},
	{"BURDENSO4", "kg/m2", catBurden, false, false},
	{"BURDENSOA", "kg/m2", catBurden, false, false},
	{"CDNUMC", "1/m2", catBurden, false, false},
	{"TROP_P", "Pa", catPressure, false, false},
	{"TROP_T", "K", catTempSfc, false, false},
	{"TROP_Z", "m", catMisc, false, false},
	{"TPERT", "K", catMisc, false, false},
	{"QPERT", "kg/kg", catHumidity, false, false},
	{"SRFRAD", "W/m2", catFlux, false, false},
	{"TBOT", "K", catTempSfc, false, false},
	{"ZBOT", "m", catMisc, false, false},
	{"UBOT", "m/s", catWind, false, false},
	{"VBOT", "m/s", catWind, false, false},
	{"QBOT", "kg/kg", catHumidity, false, false},
	{"PRECSH", "m/s", catPrecip, false, false},
}

// threeDVars lists the 87 three-dimensional variables.
var threeDVars = []entry{
	{"T", "K", catTemp3D, true, false},
	{"U", "m/s", catWind, true, false}, // featured; overridden below
	{"V", "m/s", catWind, true, false},
	{"OMEGA", "Pa/s", catWind, true, false},
	{"Q", "kg/kg", catHumidity, true, false},
	{"RELHUM", "percent", catFraction, true, false},
	{"Z3", "m", catHeight, true, false}, // featured; overridden below
	{"CLOUD", "fraction", catCloudFrac, true, false},
	{"CLDLIQ", "kg/kg", catMicro, true, false},
	{"CLDICE", "kg/kg", catMicro, true, false},
	{"CONCLD", "fraction", catCloudFrac, true, false},
	{"ICIMR", "kg/kg", catMicro, true, false},
	{"ICWMR", "kg/kg", catMicro, true, false},
	{"QRL", "K/s", catMisc, true, false},
	{"QRS", "K/s", catMisc, true, false},
	{"DTCOND", "K/s", catMisc, true, false},
	{"DTV", "K/s", catMisc, true, false},
	{"DCQ", "kg/kg/s", catMicro, true, false},
	{"VD01", "kg/kg/s", catMicro, true, false},
	{"VT", "K m/s", catWind, true, false},
	{"VU", "m2/s2", catWind, true, false},
	{"VV", "m2/s2", catWind, true, false},
	{"VQ", "m/s kg/kg", catHumidity, true, false},
	{"UU", "m2/s2", catWind, true, false},
	{"OMEGAT", "K Pa/s", catWind, true, false},
	{"OMEGAU", "m Pa/s2", catWind, true, false},
	{"WSUB", "m/s", catMixing, true, false},
	{"ANRAIN", "m-3", catMicro, true, false},
	{"ANSNOW", "m-3", catMicro, true, false},
	{"AQRAIN", "kg/kg", catMicro, true, false},
	{"AQSNOW", "kg/kg", catMicro, true, false},
	{"AREI", "micron", catMisc, true, false},
	{"AREL", "micron", catMisc, true, false},
	{"AWNC", "m-3", catMicro, true, false},
	{"AWNI", "m-3", catMicro, true, false},
	{"CCN3", "#/cm3", catMicro, true, false}, // featured; overridden below
	{"FICE", "fraction", catFraction, true, false},
	{"FREQR", "fraction", catFraction, true, false},
	{"FREQS", "fraction", catFraction, true, false},
	{"FREQL", "fraction", catFraction, true, false},
	{"FREQI", "fraction", catFraction, true, false},
	{"ICLDIWP", "kg/m2", catMicro, true, false},
	{"ICLDTWP", "kg/m2", catMicro, true, false},
	{"IWC", "kg/m3", catMicro, true, false},
	{"NUMICE", "1/kg", catMicro, true, false},
	{"NUMLIQ", "1/kg", catMicro, true, false},
	{"SO2", "kg/kg", catChem, true, false},
	{"DMS", "kg/kg", catChem, true, false},
	{"H2O2", "kg/kg", catChem, true, false},
	{"H2SO4", "kg/kg", catChem, true, false},
	{"SOAG", "kg/kg", catChem, true, false},
	{"bc_a1", "kg/kg", catChem, true, false},
	{"dst_a1", "kg/kg", catChem, true, false},
	{"dst_a3", "kg/kg", catChem, true, false},
	{"ncl_a1", "kg/kg", catChem, true, false},
	{"ncl_a2", "kg/kg", catChem, true, false},
	{"ncl_a3", "kg/kg", catChem, true, false},
	{"num_a1", "1/kg", catChem, true, false},
	{"num_a2", "1/kg", catChem, true, false},
	{"num_a3", "1/kg", catChem, true, false},
	{"pom_a1", "kg/kg", catChem, true, false},
	{"so4_a1", "kg/kg", catChem, true, false},
	{"so4_a2", "kg/kg", catChem, true, false},
	{"so4_a3", "kg/kg", catChem, true, false},
	{"soa_a1", "kg/kg", catChem, true, false},
	{"soa_a2", "kg/kg", catChem, true, false},
	{"O3", "mol/mol", catChem, true, false},
	{"CH4", "mol/mol", catChem, true, false},
	{"N2O", "mol/mol", catChem, true, false},
	{"CFC11", "mol/mol", catChem, true, false},
	{"CFC12", "mol/mol", catChem, true, false},
	{"KVH", "m2/s", catMixing, true, false},
	{"KVM", "m2/s", catMixing, true, false},
	{"TKE", "m2/s2", catMixing, true, false},
	{"TOT_CLD_VISTAU", "1", catMicro, true, false},
	{"TOT_ICLD_VISTAU", "1", catMicro, true, false},
	{"EXTINCT", "1/km", catChem, true, false},
	{"ABSORB", "1/km", catChem, true, false},
	{"SSAVIS", "1", catCloudFrac, true, false},
	{"QT", "kg/kg", catHumidity, true, false},
	{"SL", "J/kg", catMisc, true, false},
	{"CMFDQ", "kg/kg/s", catMicro, true, false},
	{"CMFDT", "K/s", catMisc, true, false},
	{"CMFMC", "kg/m2/s", catPrecip, true, false},
	{"CMFMCDZM", "kg/m2/s", catPrecip, true, false},
	{"ZMDQ", "kg/kg/s", catMicro, true, false},
	{"ZMDT", "K/s", catMisc, true, false},
}

// hashName deterministically hashes a variable name (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// jitter returns a multiplicative factor in [0.7, 1.3] derived from the
// name hash and a salt, so same-category variables differ reproducibly.
func jitter(h uint64, salt uint64) float64 {
	x := h ^ salt*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	u := float64(x>>11) / float64(1<<53)
	return 0.7 + 0.6*u
}

// template returns the category's base Spec (without name/units/seed).
func template(cat category) Spec {
	switch cat {
	case catTempSfc:
		return Spec{Kind: Linear, Base: 287, LatAmp: 32, WaveAmp: 5,
			VertKind: VertFlat, WaveNum: 2, ModeAmp: 1.2, NoiseAmp: 0.35,
			ClampMin: 150, ClampMax: 350}
	case catTemp3D:
		return Spec{Kind: Linear, Base: 250, LatAmp: 24, WaveAmp: 3.5,
			VertAmp: 45, VertKind: VertIncreasing, WaveNum: 2,
			ModeAmp: 0.9, NoiseAmp: 0.25, ClampMin: 150, ClampMax: 350}
	case catPressure:
		return Spec{Kind: Linear, Base: 98000, LatAmp: 2800, WaveAmp: 700,
			VertKind: VertFlat, WaveNum: 3, ModeAmp: 220, NoiseAmp: 55,
			ClampMin: 40000, ClampMax: 115000}
	case catWind:
		return Spec{Kind: Linear, Base: 2.5, LatAmp: 15, WaveAmp: 6,
			VertAmp: 9, VertKind: VertDecreasing, WaveNum: 3,
			ModeAmp: 1.4, NoiseAmp: 0.45, ClampMin: nan, ClampMax: nan}
	case catFlux:
		return Spec{Kind: Linear, Base: 150, LatAmp: 85, WaveAmp: 22,
			VertKind: VertFlat, WaveNum: 3, ModeAmp: 7, NoiseAmp: 2.5,
			ClampMin: 0, ClampMax: nan}
	case catCloudFrac:
		return Spec{Kind: Linear, Base: 0.45, LatAmp: 0.22, WaveAmp: 0.12,
			VertAmp: 0.25, VertKind: VertBump, WaveNum: 4,
			ModeAmp: 0.05, NoiseAmp: 0.035, ClampMin: 0, ClampMax: 1}
	case catFraction:
		return Spec{Kind: Linear, Base: 0.5, LatAmp: 0.3, WaveAmp: 0.15,
			VertAmp: 0.2, VertKind: VertBump, WaveNum: 4,
			ModeAmp: 0.06, NoiseAmp: 0.05, ClampMin: 0, ClampMax: 1}
	case catHumidity:
		return Spec{Kind: Log, Base: -6.2, LatAmp: 2.1, WaveAmp: 0.7,
			VertAmp: 3.2, VertKind: VertIncreasing, WaveNum: 3,
			ModeAmp: 0.22, NoiseAmp: 0.1, ClampMin: 0, ClampMax: nan}
	case catPrecip:
		return Spec{Kind: Log, Base: -17.5, LatAmp: 2.0, WaveAmp: 1.0,
			VertAmp: 1.5, VertKind: VertIncreasing, WaveNum: 5,
			ModeAmp: 0.4, NoiseAmp: 0.3, ClampMin: 0, ClampMax: nan}
	case catChem:
		return Spec{Kind: Log, Base: -21, LatAmp: 3.0, WaveAmp: 1.2,
			VertAmp: 4.0, VertKind: VertDecreasing, WaveNum: 4,
			ModeAmp: 0.3, NoiseAmp: 0.2, ClampMin: 0, ClampMax: nan}
	case catBurden:
		return Spec{Kind: Log, Base: -11, LatAmp: 2.2, WaveAmp: 1.0,
			VertKind: VertFlat, WaveNum: 4, ModeAmp: 0.3, NoiseAmp: 0.18,
			ClampMin: 0, ClampMax: nan}
	case catHeight:
		return Spec{Kind: Linear, Base: 1500, LatAmp: 150, WaveAmp: 60,
			VertAmp: 34000, VertKind: VertDecreasing, WaveNum: 2,
			ModeAmp: 9, NoiseAmp: 1.6, ClampMin: 0, ClampMax: nan}
	case catMixing:
		return Spec{Kind: Log, Base: 0.2, LatAmp: 2.4, WaveAmp: 1.0,
			VertAmp: 3.0, VertKind: VertBump, WaveNum: 5,
			ModeAmp: 0.35, NoiseAmp: 0.25, ClampMin: 0, ClampMax: nan}
	case catMicro:
		return Spec{Kind: Log, Base: -13, LatAmp: 2.6, WaveAmp: 1.1,
			VertAmp: 3.5, VertKind: VertBump, WaveNum: 5,
			ModeAmp: 0.35, NoiseAmp: 0.25, ClampMin: 0, ClampMax: nan}
	default: // catMisc
		return Spec{Kind: Linear, Base: 50, LatAmp: 30, WaveAmp: 10,
			VertAmp: 20, VertKind: VertBump, WaveNum: 3,
			ModeAmp: 2.5, NoiseAmp: 0.9, ClampMin: nan, ClampMax: nan}
	}
}

// featured overrides calibrate the paper's four showcased variables to the
// Table 2 characteristics (U: [-25.6, 54.5] μ 6.39 σ 12.2; FSDSC:
// [124, 326] μ 243 σ 48.3; Z3: [41.2, 3.77e4] μ 1.12e4 σ 1.01e4; CCN3:
// [3.37e-5, 1.24e3] μ 26.6 σ 55.7).
func applyFeatured(s *Spec) {
	switch s.Name {
	case "U":
		s.Kind = Linear
		s.Base = 0
		s.LatAmp = 24
		s.WaveAmp = 9
		s.VertAmp = 28
		s.VertKind = VertDecreasing
		s.VertExp = 2.6
		s.WaveNum = 2
		s.ModeAmp = 1.4
		s.NoiseAmp = 0.45
		s.ClampMin, s.ClampMax = nan, nan
	case "FSDSC":
		s.Kind = Linear
		s.Base = 272
		s.LatAmp = 112
		s.WaveAmp = 14
		s.VertKind = VertFlat
		s.WaveNum = 2
		s.ModeAmp = 5
		s.NoiseAmp = 1.8
		s.ClampMin, s.ClampMax = 0, nan
	case "Z3":
		s.Kind = Linear
		s.Base = 60
		s.LatAmp = 130
		s.WaveAmp = 50
		s.VertAmp = 40000
		s.VertKind = VertDecreasing
		s.VertExp = 2.3
		s.WaveNum = 2
		s.ModeAmp = 9
		s.NoiseAmp = 1.6
		s.ClampMin, s.ClampMax = 0, nan
	case "CCN3":
		s.Kind = Log
		s.Base = -8.6
		s.LatAmp = 3.5
		s.WaveAmp = 1.5
		s.VertAmp = 13
		s.VertKind = VertIncreasing
		s.VertExp = 1.2
		s.WaveNum = 3
		s.ModeAmp = 0.3
		s.NoiseAmp = 0.16
		s.ClampMin, s.ClampMax = 0, nan
	}
}

// build expands an entry through its template, jitter, and overrides.
func build(e entry) Spec {
	s := template(e.cat)
	h := hashName(e.name)
	s.Name = e.name
	s.Units = e.units
	s.ThreeD = e.threeD
	s.HasFill = e.fill
	s.Seed = h
	s.LatAmp *= jitter(h, 1)
	s.WaveAmp *= jitter(h, 2)
	s.VertAmp *= jitter(h, 3)
	s.ModeAmp *= jitter(h, 4)
	s.NoiseAmp *= jitter(h, 5)
	if dw := int(h % 3); dw > 0 && s.WaveNum+dw <= 8 {
		s.WaveNum += dw
	}
	applyFeatured(&s)
	return s
}

// Default returns the full 170-variable catalog: 83 two-dimensional
// variables followed by 87 three-dimensional ones.
func Default() []Spec {
	specs := make([]Spec, 0, len(twoD)+len(threeDVars))
	for _, e := range twoD {
		specs = append(specs, build(e))
	}
	for _, e := range threeDVars {
		specs = append(specs, build(e))
	}
	return specs
}

// Featured lists the paper's four showcased variable names in the order
// used throughout the evaluation section.
func Featured() []string { return []string{"U", "FSDSC", "Z3", "CCN3"} }

// ByName returns the spec with the given name and its index in specs.
func ByName(specs []Spec, name string) (Spec, int, bool) {
	for i, s := range specs {
		if s.Name == name {
			return s, i, true
		}
	}
	return Spec{}, -1, false
}

// Counts returns the number of 2-D and 3-D variables in specs.
func Counts(specs []Spec) (twoDim, threeDim int) {
	for _, s := range specs {
		if s.ThreeD {
			threeDim++
		} else {
			twoDim++
		}
	}
	return
}
