// Package analysis implements the post-processing analytics climate
// scientists run on history files — zonal means, vertical profiles,
// area-weighted global means. The paper's acceptance criterion is that the
// reconstructed data be indistinguishable "during the post-processing
// analysis, which includes both visualization and analytics" (§1); this
// package provides those analytics and comparisons of their values between
// original and reconstructed fields.
package analysis

import (
	"math"

	"climcompress/internal/field"
)

// ZonalMean returns the mean over longitude at each (level, latitude),
// skipping fill values; entries with no valid points are NaN. The result
// is indexed [lev][lat].
func ZonalMean(f *field.Field) [][]float64 {
	g := f.Grid
	out := make([][]float64, f.NLev)
	for lev := 0; lev < f.NLev; lev++ {
		row := make([]float64, g.NLat)
		for lat := 0; lat < g.NLat; lat++ {
			var sum float64
			var n int
			base := (lev*g.NLat + lat) * g.NLon
			for lon := 0; lon < g.NLon; lon++ {
				i := base + lon
				if f.IsFill(i) {
					continue
				}
				sum += float64(f.Data[i])
				n++
			}
			if n == 0 {
				row[lat] = math.NaN()
			} else {
				row[lat] = sum / float64(n)
			}
		}
		out[lev] = row
	}
	return out
}

// VerticalProfile returns the area-weighted horizontal mean at each level
// (one value for 2-D fields), skipping fill values.
func VerticalProfile(f *field.Field) []float64 {
	g := f.Grid
	w := g.AreaWeights()
	out := make([]float64, f.NLev)
	for lev := 0; lev < f.NLev; lev++ {
		var sum, wsum float64
		for lat := 0; lat < g.NLat; lat++ {
			base := (lev*g.NLat + lat) * g.NLon
			for lon := 0; lon < g.NLon; lon++ {
				i := base + lon
				if f.IsFill(i) {
					continue
				}
				sum += w[lat] * float64(f.Data[i])
				wsum += w[lat]
			}
		}
		if wsum == 0 {
			out[lev] = math.NaN()
		} else {
			out[lev] = sum / wsum
		}
	}
	return out
}

// Diff summarizes how far a derived quantity moved between original and
// reconstruction.
type Diff struct {
	MaxAbs     float64 // largest absolute difference
	RMS        float64 // root-mean-square difference
	Normalized float64 // RMS / range of the original quantity
	N          int
}

// compareSeries diffs two flat series, skipping NaN pairs.
func compareSeries(a, b []float64) Diff {
	var d Diff
	lo, hi := math.Inf(1), math.Inf(-1)
	var sumsq float64
	for i := range a {
		if i >= len(b) || math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		diff := math.Abs(a[i] - b[i])
		if diff > d.MaxAbs {
			d.MaxAbs = diff
		}
		sumsq += diff * diff
		if a[i] < lo {
			lo = a[i]
		}
		if a[i] > hi {
			hi = a[i]
		}
		d.N++
	}
	if d.N == 0 {
		nan := math.NaN()
		return Diff{MaxAbs: nan, RMS: nan, Normalized: nan}
	}
	d.RMS = math.Sqrt(sumsq / float64(d.N))
	if r := hi - lo; r > 0 {
		d.Normalized = d.RMS / r
	} else if d.RMS == 0 {
		d.Normalized = 0
	} else {
		d.Normalized = math.Inf(1)
	}
	return d
}

// CompareZonalMeans diffs the zonal-mean analytics of two fields.
func CompareZonalMeans(orig, recon *field.Field) Diff {
	a := flatten(ZonalMean(orig))
	b := flatten(ZonalMean(recon))
	return compareSeries(a, b)
}

// CompareVerticalProfiles diffs the vertical-profile analytics.
func CompareVerticalProfiles(orig, recon *field.Field) Diff {
	return compareSeries(VerticalProfile(orig), VerticalProfile(recon))
}

// GlobalMeanDelta returns |Δ| of the area-weighted global means.
func GlobalMeanDelta(orig, recon *field.Field) float64 {
	return math.Abs(orig.GlobalMean() - recon.GlobalMean())
}

func flatten(rows [][]float64) []float64 {
	var out []float64
	for _, r := range rows {
		out = append(out, r...)
	}
	return out
}
