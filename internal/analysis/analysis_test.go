package analysis

import (
	"math"
	"testing"

	"climcompress/internal/field"
	"climcompress/internal/grid"
)

func constField(t *testing.T, v float32, threeD bool) *field.Field {
	t.Helper()
	f := field.New("X", "1", grid.Test(), threeD)
	for i := range f.Data {
		f.Data[i] = v
	}
	return f
}

func TestZonalMeanConstant(t *testing.T) {
	f := constField(t, 7, true)
	zm := ZonalMean(f)
	if len(zm) != f.NLev || len(zm[0]) != f.Grid.NLat {
		t.Fatalf("shape %dx%d", len(zm), len(zm[0]))
	}
	for _, row := range zm {
		for _, v := range row {
			if v != 7 {
				t.Fatalf("zonal mean of constant field = %v", v)
			}
		}
	}
}

func TestZonalMeanStructure(t *testing.T) {
	g := grid.Test()
	f := field.New("X", "1", g, false)
	for lat := 0; lat < g.NLat; lat++ {
		for lon := 0; lon < g.NLon; lon++ {
			f.Set(0, lat, lon, float32(lat*10+lon%2)) // zonal mean = 10·lat + 0.5
		}
	}
	zm := ZonalMean(f)
	for lat := 0; lat < g.NLat; lat++ {
		want := float64(lat*10) + 0.5
		if math.Abs(zm[0][lat]-want) > 1e-6 {
			t.Fatalf("zonal mean at lat %d = %v, want %v", lat, zm[0][lat], want)
		}
	}
}

func TestZonalMeanSkipsFill(t *testing.T) {
	g := grid.Test()
	f := field.New("X", "1", g, false)
	f.HasFill = true
	for i := range f.Data {
		f.Data[i] = 4
	}
	// Fill an entire latitude row.
	for lon := 0; lon < g.NLon; lon++ {
		f.Set(0, 2, lon, f.Fill)
	}
	f.Set(0, 3, 0, f.Fill)
	zm := ZonalMean(f)
	if !math.IsNaN(zm[0][2]) {
		t.Fatalf("fully filled row should be NaN, got %v", zm[0][2])
	}
	if zm[0][3] != 4 {
		t.Fatalf("partially filled row mean = %v", zm[0][3])
	}
}

func TestVerticalProfile(t *testing.T) {
	g := grid.Test()
	f := field.New("X", "1", g, true)
	for lev := 0; lev < g.NLev; lev++ {
		for lat := 0; lat < g.NLat; lat++ {
			for lon := 0; lon < g.NLon; lon++ {
				f.Set(lev, lat, lon, float32(lev)*2)
			}
		}
	}
	vp := VerticalProfile(f)
	for lev, v := range vp {
		if math.Abs(v-float64(lev)*2) > 1e-9 {
			t.Fatalf("profile level %d = %v", lev, v)
		}
	}
}

func TestCompareIdentical(t *testing.T) {
	f := constField(t, 3, true)
	d := CompareZonalMeans(f, f)
	if d.MaxAbs != 0 || d.RMS != 0 || d.Normalized != 0 {
		t.Fatalf("identical fields differ: %+v", d)
	}
	if GlobalMeanDelta(f, f) != 0 {
		t.Fatal("identical global means differ")
	}
	if dv := CompareVerticalProfiles(f, f); dv.MaxAbs != 0 {
		t.Fatalf("identical profiles differ: %+v", dv)
	}
}

func TestCompareDetectsShift(t *testing.T) {
	g := grid.Test()
	a := field.New("X", "1", g, false)
	b := field.New("X", "1", g, false)
	for lat := 0; lat < g.NLat; lat++ {
		for lon := 0; lon < g.NLon; lon++ {
			a.Set(0, lat, lon, float32(lat))
			b.Set(0, lat, lon, float32(lat)+0.25)
		}
	}
	d := CompareZonalMeans(a, b)
	if math.Abs(d.MaxAbs-0.25) > 1e-6 {
		t.Fatalf("MaxAbs = %v, want 0.25", d.MaxAbs)
	}
	if math.Abs(GlobalMeanDelta(a, b)-0.25) > 1e-6 {
		t.Fatalf("global mean delta = %v", GlobalMeanDelta(a, b))
	}
	// Normalized against the zonal-mean range (7).
	if math.Abs(d.Normalized-0.25/7) > 1e-6 {
		t.Fatalf("Normalized = %v", d.Normalized)
	}
}

func TestCompareDegenerate(t *testing.T) {
	f := constField(t, 5, false)
	g := constField(t, 6, false)
	d := CompareZonalMeans(f, g)
	if !math.IsInf(d.Normalized, 1) {
		t.Fatalf("zero-range original with nonzero diff should normalize to +Inf, got %v", d.Normalized)
	}
}
