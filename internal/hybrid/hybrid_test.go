package hybrid

import (
	"math"
	"testing"
)

func TestStudyFamilies(t *testing.T) {
	fams := StudyFamilies()
	if len(fams) != 4 {
		t.Fatalf("%d families, want 4", len(fams))
	}
	byName := map[string]Family{}
	for _, f := range fams {
		if f.Fallback == "" || len(f.Variants) == 0 {
			t.Fatalf("family %s incomplete", f.Name)
		}
		byName[f.Name] = f
	}
	// fpzip falls back to its own lossless mode; the others need NetCDF-4.
	if byName["fpzip"].Fallback != "fpzip-32" {
		t.Errorf("fpzip fallback = %s", byName["fpzip"].Fallback)
	}
	for _, name := range []string{"GRIB2", "ISABELA", "APAX"} {
		if byName[name].Fallback != "nc" {
			t.Errorf("%s fallback = %s, want nc", name, byName[name].Fallback)
		}
	}
	// Variants ordered most aggressive first.
	if byName["fpzip"].Variants[0] != "fpzip-16" {
		t.Error("fpzip variants not ordered most aggressive first")
	}
	if byName["APAX"].Variants[0] != "apax-5" {
		t.Error("APAX variants not ordered most aggressive first")
	}
}

func TestSelectPicksFirstPassing(t *testing.T) {
	fam := Family{Name: "APAX", Variants: []string{"apax-5", "apax-4", "apax-2"}, Fallback: "nc"}
	outcomes := map[string]Outcome{
		"apax-5": {Pass: false, CR: 0.2},
		"apax-4": {Pass: true, CR: 0.25, Rho: 0.999999},
		"apax-2": {Pass: true, CR: 0.5, Rho: 1},
	}
	c := Select("T", fam, outcomes, Outcome{CR: 0.6, Rho: 1})
	if c.Variant != "apax-4" || c.Fallback {
		t.Fatalf("selected %+v", c)
	}
}

func TestSelectFallsBack(t *testing.T) {
	fam := Family{Name: "ISABELA", Variants: []string{"isa-1", "isa-0.5", "isa-0.1"}, Fallback: "nc"}
	outcomes := map[string]Outcome{
		"isa-1":   {Pass: false},
		"isa-0.5": {Pass: false},
		"isa-0.1": {Pass: false},
	}
	c := Select("Z3", fam, outcomes, Outcome{CR: 0.58, Rho: 1})
	if !c.Fallback || c.Variant != "nc" {
		t.Fatalf("expected fallback, got %+v", c)
	}
	if c.Outcome.CR != 0.58 || !c.Outcome.Pass {
		t.Fatalf("fallback outcome %+v", c.Outcome)
	}
}

func TestSelectMissingOutcomeSkipped(t *testing.T) {
	fam := Family{Name: "fpzip", Variants: []string{"fpzip-16", "fpzip-24"}, Fallback: "fpzip-32"}
	outcomes := map[string]Outcome{
		"fpzip-24": {Pass: true, CR: 0.3},
	}
	c := Select("U", fam, outcomes, Outcome{CR: 0.5})
	if c.Variant != "fpzip-24" {
		t.Fatalf("missing variant should be skipped: %+v", c)
	}
}

func TestSummarize(t *testing.T) {
	choices := []Choice{
		{Variable: "A", Variant: "x", Outcome: Outcome{CR: 0.2, Rho: 1, NRMSE: 1e-5, Enmax: 1e-4}},
		{Variable: "B", Variant: "x", Outcome: Outcome{CR: 0.4, Rho: 0.99999, NRMSE: 3e-5, Enmax: 3e-4}},
		{Variable: "C", Variant: "nc", Outcome: Outcome{CR: 0.6, Rho: 1, NRMSE: 0, Enmax: 0}},
	}
	s := Summarize(choices)
	if math.Abs(s.AvgCR-0.4) > 1e-12 {
		t.Fatalf("AvgCR = %v", s.AvgCR)
	}
	if s.BestCR != 0.2 || s.WorstCR != 0.6 {
		t.Fatalf("best/worst CR = %v/%v", s.BestCR, s.WorstCR)
	}
	if s.Variables != 3 {
		t.Fatalf("Variables = %d", s.Variables)
	}
	wantNRMSE := (1e-5 + 3e-5 + 0) / 3
	if math.Abs(s.AvgNRMSE-wantNRMSE) > 1e-18 {
		t.Fatalf("AvgNRMSE = %v, want %v", s.AvgNRMSE, wantNRMSE)
	}
}

func TestSummarizeSkipsNaN(t *testing.T) {
	choices := []Choice{
		{Outcome: Outcome{CR: 0.5, Rho: math.NaN(), NRMSE: math.NaN(), Enmax: math.NaN()}},
		{Outcome: Outcome{CR: 0.3, Rho: 1, NRMSE: 1e-5, Enmax: 1e-4}},
	}
	s := Summarize(choices)
	if math.IsNaN(s.AvgRho) || math.Abs(s.AvgRho-1) > 1e-12 {
		t.Fatalf("AvgRho = %v", s.AvgRho)
	}
	if math.IsNaN(s.AvgNRMSE) {
		t.Fatal("AvgNRMSE is NaN")
	}
}

func TestComposition(t *testing.T) {
	choices := []Choice{
		{Variant: "apax-5"}, {Variant: "apax-5"}, {Variant: "apax-2"}, {Variant: "nc"},
	}
	comp := Composition(choices)
	if comp["apax-5"] != 2 || comp["apax-2"] != 1 || comp["nc"] != 1 {
		t.Fatalf("composition %v", comp)
	}
	total := 0
	for _, n := range comp {
		total += n
	}
	if total != len(choices) {
		t.Fatal("composition does not sum to variable count")
	}
}
