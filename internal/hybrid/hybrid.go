// Package hybrid implements the paper's §5.4 per-variable customization:
// for each method family, pick for every variable the most aggressive
// variant that passes all four verification tests, falling back to a
// lossless option when none does (fpzip falls back to its own fpzip-32;
// ISABELA and GRIB2 cannot run losslessly, so they — like APAX, whose
// lossless mode excludes 64-bit data — fall back to NetCDF-4 compression).
// The resulting per-family hybrids are the rows of Tables 7 and 8.
package hybrid

import (
	"math"
)

// Family is one method family's ordered variants.
type Family struct {
	Name string
	// Variants are codec registry names ordered most aggressive (best
	// compression, worst quality) first — the order the paper's selection
	// walks.
	Variants []string
	// Fallback is the lossless codec used when no variant passes.
	Fallback string
}

// StudyFamilies returns the four families of the paper with their
// fallbacks (Table 8's variant lists).
func StudyFamilies() []Family {
	return []Family{
		{Name: "GRIB2", Variants: []string{"grib2"}, Fallback: "nc"},
		{Name: "ISABELA", Variants: []string{"isa-1", "isa-0.5", "isa-0.1"}, Fallback: "nc"},
		{Name: "fpzip", Variants: []string{"fpzip-16", "fpzip-24"}, Fallback: "fpzip-32"},
		{Name: "APAX", Variants: []string{"apax-5", "apax-4", "apax-2"}, Fallback: "nc"},
	}
}

// Outcome is the verification result of one codec variant on one variable.
type Outcome struct {
	Pass  bool
	CR    float64
	Rho   float64
	NRMSE float64
	Enmax float64
}

// Choice is the selected variant for one variable.
type Choice struct {
	Variable string
	Variant  string
	Fallback bool // true when the lossless fallback was selected
	Outcome  Outcome
}

// Select walks the family's variants in order and returns the first that
// passes; fallbackOutcome describes the lossless fallback (Pass is
// ignored — lossless always "passes").
func Select(variable string, fam Family, outcomes map[string]Outcome, fallbackOutcome Outcome) Choice {
	for _, v := range fam.Variants {
		if o, ok := outcomes[v]; ok && o.Pass {
			return Choice{Variable: variable, Variant: v, Outcome: o}
		}
	}
	fallbackOutcome.Pass = true
	return Choice{Variable: variable, Variant: fam.Fallback, Fallback: true, Outcome: fallbackOutcome}
}

// Summary aggregates a family's choices into a Table 7 row set.
type Summary struct {
	AvgCR, BestCR, WorstCR float64
	AvgRho                 float64
	AvgNRMSE, AvgEnmax     float64
	Variables              int
}

// Summarize computes the Table 7 statistics over all variables' choices.
// NaN metric values (e.g. ρ of a constant field) are skipped in averages.
func Summarize(choices []Choice) Summary {
	s := Summary{BestCR: math.Inf(1), WorstCR: math.Inf(-1)}
	var crSum, rhoSum, nrmseSum, enmaxSum float64
	var rhoN, errN int
	for _, c := range choices {
		o := c.Outcome
		crSum += o.CR
		if o.CR < s.BestCR {
			s.BestCR = o.CR
		}
		if o.CR > s.WorstCR {
			s.WorstCR = o.CR
		}
		if !math.IsNaN(o.Rho) {
			rhoSum += o.Rho
			rhoN++
		}
		if !math.IsNaN(o.NRMSE) && !math.IsInf(o.NRMSE, 0) {
			nrmseSum += o.NRMSE
			enmaxSum += o.Enmax
			errN++
		}
		s.Variables++
	}
	if s.Variables > 0 {
		s.AvgCR = crSum / float64(s.Variables)
	}
	if rhoN > 0 {
		s.AvgRho = rhoSum / float64(rhoN)
	}
	if errN > 0 {
		s.AvgNRMSE = nrmseSum / float64(errN)
		s.AvgEnmax = enmaxSum / float64(errN)
	}
	return s
}

// Composition counts how many variables use each variant (Table 8).
func Composition(choices []Choice) map[string]int {
	out := make(map[string]int)
	for _, c := range choices {
		out[c.Variant]++
	}
	return out
}
