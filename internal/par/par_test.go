package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		err := Each(n, func(i int) error {
			if seen[i].Swap(true) {
				t.Errorf("index %d visited twice", i)
			}
			hits.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if int(hits.Load()) != n {
			t.Fatalf("n=%d: %d indices visited", n, hits.Load())
		}
	}
}

func TestEachReturnsError(t *testing.T) {
	want := errors.New("boom")
	err := Each(100, func(i int) error {
		if i == 37 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestEachShortCircuitsOnError(t *testing.T) {
	// After a worker fails, indices not yet started must not be scheduled.
	// The error surfaces on a gate index so every parallel worker has
	// processed at least one item before the failure; everything scheduled
	// strictly after the gate would only run by continuing past the error.
	old := Width()
	SetWidth(4)
	defer SetWidth(old)
	want := errors.New("boom")
	const n = 10000
	const gate = 64
	var after atomic.Int64
	err := Each(n, func(i int) error {
		if i == gate {
			return want
		}
		if i > gate+Width() {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	// In-flight workers may legitimately finish their current index, but a
	// draining loop would visit nearly all n indices. Allow a generous
	// scheduling window before calling it a failure.
	if got := after.Load(); got > n/10 {
		t.Fatalf("%d indices ran after the failing one; error did not cancel scheduling", got)
	}
}

func TestEachNested(t *testing.T) {
	// Deeply nested Each calls must not deadlock even when the pool is
	// narrower than the nesting.
	old := Width()
	SetWidth(2)
	defer SetWidth(old)
	var total atomic.Int64
	err := Each(8, func(int) error {
		return Each(8, func(int) error {
			return Each(8, func(int) error {
				total.Add(1)
				return nil
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 8*8*8 {
		t.Fatalf("total = %d, want %d", total.Load(), 8*8*8)
	}
}

func TestEachLimitSerial(t *testing.T) {
	// limit=1 must run in the calling goroutine, strictly in order.
	var order []int
	err := EachLimit(10, 1, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestRangesPartition(t *testing.T) {
	n := 1237
	covered := make([]atomic.Int32, n)
	Ranges(n, 100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}

func TestGetFloatsZeroed(t *testing.T) {
	b := GetFloats(64)
	for i := range b {
		b[i] = float32(i) + 1
	}
	PutFloats(b)
	c := GetFloats(32)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	if len(c) != 32 {
		t.Fatalf("len = %d", len(c))
	}
}

func TestSetWidth(t *testing.T) {
	old := Width()
	defer SetWidth(old)
	SetWidth(5)
	if Width() != 5 {
		t.Fatalf("Width = %d, want 5", Width())
	}
	SetWidth(0)
	if Width() < 1 {
		t.Fatalf("Width = %d, want >= 1", Width())
	}
}

func TestEachCtxCompletesUncancelled(t *testing.T) {
	// With a live context the ctx variants behave exactly like Each.
	var hits atomic.Int64
	err := EachCtx(context.Background(), 100, func(i int) error {
		hits.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 100 {
		t.Fatalf("%d indices visited, want 100", hits.Load())
	}
}

func TestEachCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := EachCtx(ctx, 10, func(i int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("worker ran despite pre-cancelled context")
	}
}

func TestEachCtxCancelMidRun(t *testing.T) {
	// Cancelling after a gate index must stop scheduling of later indices,
	// mirroring the first-error short-circuit.
	old := Width()
	SetWidth(4)
	defer SetWidth(old)
	ctx, cancel := context.WithCancel(context.Background())
	const n = 10000
	const gate = 64
	var after atomic.Int64
	err := EachCtx(ctx, n, func(i int) error {
		if i == gate {
			cancel()
		}
		if i > gate+Width() {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := after.Load(); got > n/10 {
		t.Fatalf("%d indices ran after cancellation; ctx did not stop scheduling", got)
	}
}

func TestEachCtxWorkerErrorBeatsCancellation(t *testing.T) {
	// An fn error recorded before the cancellation is observed must win.
	want := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := EachLimitCtx(ctx, 10, 1, func(i int) error {
		if i == 3 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestEachLimitCtxSerialCancel(t *testing.T) {
	// The serial path (limit=1) must also poll the context between indices.
	ctx, cancel := context.WithCancel(context.Background())
	var visited int
	err := EachLimitCtx(ctx, 100, 1, func(i int) error {
		visited++
		if i == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visited != 6 {
		t.Fatalf("visited = %d, want 6 (indices 0..5)", visited)
	}
}
