// Package par provides the process-wide bounded worker pool shared by every
// parallel stage of the pipeline: ensemble member-field generation, the
// per-variable experiment fan-out, per-member verification compression, and
// chunked codec compression all draw extra workers from one pool, so total
// concurrency stays bounded by the configured width (GOMAXPROCS by default)
// no matter how the stages nest.
//
// The pool is a token bucket: a parallel loop always runs in the calling
// goroutine and additionally spawns a helper for each token it can acquire
// without blocking. Nested loops therefore never deadlock — a loop that
// finds the pool drained simply runs serially in its caller — and the
// process never holds more than `width` busy loop-workers in aggregate.
//
// It also hosts the float32 scratch-buffer pool used to recycle field-sized
// allocations (member fields, reconstruction outputs) across experiment
// stages.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	mu     sync.Mutex
	width  int           // configured pool width (0 = GOMAXPROCS)
	tokens chan struct{} // helper-goroutine tokens, len == Width()-1
)

func init() {
	resize(0)
}

// resize rebuilds the token bucket for a new width. Outstanding tokens from
// the old bucket are simply abandoned; running helpers drain and exit.
func resize(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	mu.Lock()
	width = n
	// The caller of Each counts as one worker, so n-1 helper tokens.
	tokens = make(chan struct{}, n-1)
	for i := 0; i < n-1; i++ {
		tokens <- struct{}{}
	}
	mu.Unlock()
}

// SetWidth sets the pool width (the maximum aggregate parallelism of all
// loops drawing on the pool). n <= 0 resets to GOMAXPROCS. Command-line
// `-workers` flags funnel here.
func SetWidth(n int) { resize(n) }

// Width returns the configured pool width.
func Width() int {
	mu.Lock()
	defer mu.Unlock()
	return width
}

// acquire obtains up to max helper tokens without blocking.
func acquire(max int) int {
	mu.Lock()
	t := tokens
	mu.Unlock()
	got := 0
	for got < max {
		select {
		case <-t:
			got++
		default:
			return got
		}
	}
	return got
}

// release returns n helper tokens.
func release(n int) {
	mu.Lock()
	t := tokens
	mu.Unlock()
	for i := 0; i < n; i++ {
		select {
		case t <- struct{}{}:
		default: // bucket was resized smaller; drop the token
			return
		}
	}
}

// Each runs fn(i) for every i in [0, n), fanning out over the shared pool.
// The calling goroutine always participates, so Each makes progress even
// when the pool is fully busy (nested calls degrade to serial loops). The
// first error cancels scheduling of indices not yet started (in-flight
// invocations finish) and is returned; fn must be safe for concurrent
// invocation. Callers that need every index attempted must collect errors
// per index and return nil from fn.
func Each(n int, fn func(i int) error) error {
	return eachLimit(nil, n, 0, fn)
}

// EachLimit is Each with an additional per-call cap on parallel workers
// (0 = no extra cap beyond the pool). limit=1 forces a serial loop.
func EachLimit(n, limit int, fn func(i int) error) error {
	return eachLimit(nil, n, limit, fn)
}

// EachCtx is Each with cooperative cancellation: once ctx is done, no
// further index is scheduled (in-flight invocations finish) and ctx's error
// is returned unless an fn error was recorded first. fn itself is not
// interrupted — long-running workers that should observe the deadline must
// check ctx on their own.
func EachCtx(ctx context.Context, n int, fn func(i int) error) error {
	return eachLimit(ctx, n, 0, fn)
}

// EachLimitCtx is EachLimit with the cancellation behaviour of EachCtx.
func EachLimitCtx(ctx context.Context, n, limit int, fn func(i int) error) error {
	return eachLimit(ctx, n, limit, fn)
}

// eachLimit is the shared body. A nil ctx (the Each/EachLimit entry points)
// compiles to the uncancellable fast path: no per-index channel poll.
func eachLimit(ctx context.Context, n, limit int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var done <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		done = ctx.Done()
	}
	max := n - 1
	if limit > 0 && limit-1 < max {
		max = limit - 1
	}
	helpers := 0
	if max > 0 {
		helpers = acquire(max)
	}
	if helpers == 0 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	defer release(helpers)

	var next atomic.Int64
	var firstErr atomic.Value
	work := func() {
		// Stop claiming indices once any worker has failed — mirroring the
		// serial path, which also abandons the loop on the first error —
		// or once the context is done.
		for firstErr.Load() == nil {
			if done != nil {
				select {
				case <-done:
					firstErr.CompareAndSwap(nil, errBox{ctx.Err()})
					return
				default:
				}
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				firstErr.CompareAndSwap(nil, errBox{err})
				return
			}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < helpers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	if e, ok := firstErr.Load().(errBox); ok {
		return e.err
	}
	return nil
}

// errBox wraps an error for atomic.Value (which needs a consistent concrete
// type).
type errBox struct{ err error }

// Ranges splits [0, n) into contiguous chunks of at least grain elements
// and runs fn(lo, hi) for each, in parallel over the shared pool. Chunks
// are contiguous and ordered within themselves, so order-sensitive
// accumulations that are independent *across* elements stay deterministic.
func Ranges(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if w := Width(); chunks > 4*w {
		chunks = 4 * w
		if chunks < 1 {
			chunks = 1
		}
	}
	size := (n + chunks - 1) / chunks
	Each(chunks, func(c int) error {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo < hi {
			fn(lo, hi)
		}
		return nil
	})
}

// ---------------------------------------------------------------------------
// Recycled float32 buffers
// ---------------------------------------------------------------------------

var floatPool = sync.Pool{}

// GetFloats returns a zeroed float32 slice of length n, recycled from the
// pool when a large-enough buffer is available.
func GetFloats(n int) []float32 {
	if v := floatPool.Get(); v != nil {
		buf := v.(*[]float32)
		if cap(*buf) >= n {
			s := (*buf)[:n]
			for i := range s {
				s[i] = 0
			}
			return s
		}
	}
	return make([]float32, n)
}

// PutFloats returns a buffer to the pool. The caller must not use the slice
// (or any alias of it) afterwards.
func PutFloats(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	b := buf[:0]
	floatPool.Put(&b)
}
