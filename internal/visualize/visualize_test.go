package visualize

import (
	"math"
	"strings"
	"testing"

	"climcompress/internal/field"
	"climcompress/internal/grid"
)

func gradientField(t *testing.T) *field.Field {
	t.Helper()
	g := grid.Small()
	f := field.New("TS", "K", g, false)
	for lat := 0; lat < g.NLat; lat++ {
		for lon := 0; lon < g.NLon; lon++ {
			f.Set(0, lat, lon, float32(200+5*lat)+float32(math.Sin(float64(lon)/5)))
		}
	}
	return f
}

func TestRenderMapBasics(t *testing.T) {
	f := gradientField(t)
	out := RenderMap(f, Options{Width: 48, Height: 12})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // header + 12 rows
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "TS") || !strings.Contains(lines[0], "K") {
		t.Fatalf("header missing metadata: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if len([]rune(l)) != 48 {
			t.Fatalf("row width %d, want 48", len([]rune(l)))
		}
	}
	// North (top row) is the warmest here: darkest shades at the top.
	top, bottom := lines[1], lines[12]
	if strings.Count(top, "@")+strings.Count(top, "%") == 0 {
		t.Fatalf("top row should hold the maximum shades: %q", top)
	}
	if strings.Count(bottom, " ")+strings.Count(bottom, ".") == 0 {
		t.Fatalf("bottom row should hold the minimum shades: %q", bottom)
	}
}

func TestRenderMapFill(t *testing.T) {
	f := gradientField(t)
	f.HasFill = true
	for lon := 0; lon < f.Grid.NLon; lon++ {
		f.Set(0, f.Grid.NLat/2, lon, f.Fill)
	}
	out := RenderMap(f, Options{Width: f.Grid.NLon, Height: f.Grid.NLat})
	if !strings.Contains(out, "~") {
		t.Fatal("fill values should render as '~'")
	}
}

func TestRenderMapConstant(t *testing.T) {
	g := grid.Test()
	f := field.New("X", "1", g, false)
	for i := range f.Data {
		f.Data[i] = 5
	}
	out := RenderMap(f, Options{})
	if out == "" || strings.Contains(out, "@") {
		t.Fatalf("constant field should render flat:\n%s", out)
	}
}

func TestRenderMapAllFill(t *testing.T) {
	g := grid.Test()
	f := field.New("X", "1", g, false)
	f.HasFill = true
	for i := range f.Data {
		f.Data[i] = f.Fill
	}
	if out := RenderMap(f, Options{}); !strings.Contains(out, "all fill") {
		t.Fatalf("all-fill notice missing:\n%s", out)
	}
}

func TestRenderDiffIdentical(t *testing.T) {
	f := gradientField(t)
	out, err := RenderDiff(f, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bit-for-bit identical") {
		t.Fatalf("identical fields should short-circuit:\n%s", out)
	}
}

func TestRenderDiffLocalizedError(t *testing.T) {
	f := gradientField(t)
	r := f.Clone()
	// One corrupted region.
	r.Set(0, 3, 5, r.At(0, 3, 5)+10)
	out, err := RenderDiff(f, r, Options{Width: f.Grid.NLon, Height: f.Grid.NLat})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "@") != 1 {
		t.Fatalf("expected exactly one worst-error cell:\n%s", out)
	}
	if !strings.Contains(out, "max err") {
		t.Fatal("header missing error summary")
	}
}

func TestRenderDiffMismatched(t *testing.T) {
	f := gradientField(t)
	g := field.New("X", "1", grid.Test(), false)
	if _, err := RenderDiff(f, g, Options{}); err == nil {
		t.Fatal("mismatched fields should error")
	}
}

func TestLevelSelection(t *testing.T) {
	g := grid.Test()
	f := field.New("T", "K", g, true)
	for lev := 0; lev < g.NLev; lev++ {
		for i := 0; i < g.Horizontal(); i++ {
			f.Data[lev*g.Horizontal()+i] = float32(lev * 100)
		}
	}
	out := RenderMap(f, Options{Level: 2})
	if !strings.Contains(out, "level 2/") {
		t.Fatalf("level selection ignored:\n%s", out)
	}
	// Default picks the surface (last) level.
	out = RenderMap(f, Options{})
	if !strings.Contains(out, "level 4/4") {
		t.Fatalf("default level should be the surface:\n%s", out)
	}
}
