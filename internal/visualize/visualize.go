// Package visualize renders climate fields as ASCII maps — the terminal
// stand-in for the map plots climate scientists draw from history files.
// The paper's §6 notes that "climate scientists visualize subsets of their
// simulation data as part of the post-processing analysis workflow" and
// that reconstructed data must produce quality images; RenderDiff shows
// where a reconstruction deviates.
package visualize

import (
	"fmt"
	"math"
	"strings"

	"climcompress/internal/field"
)

// shades orders glyphs from low to high values.
var shades = []rune(" .:-=+*#%@")

// Options controls map rendering.
type Options struct {
	// Width is the output width in characters (default min(lon, 72)).
	Width int
	// Height is the output height in rows (default keeps a ~2:1 aspect).
	Height int
	// Level selects the vertical level for 3-D fields, 1-based; 0 (the
	// zero value) selects the surface, i.e. the last level.
	Level int
}

func (o Options) resolve(f *field.Field) (w, h, lev int) {
	w = o.Width
	if w <= 0 {
		w = f.Grid.NLon
		if w > 72 {
			w = 72
		}
	}
	h = o.Height
	if h <= 0 {
		h = w / 2 * f.Grid.NLat / f.Grid.NLon * 2
		if h < 8 {
			h = 8
		}
		if h > f.Grid.NLat {
			h = f.Grid.NLat
		}
	}
	if o.Level >= 1 && o.Level <= f.NLev {
		lev = o.Level - 1
	} else {
		lev = f.NLev - 1
	}
	return
}

// RenderMap draws one level of a field as a shaded latitude–longitude map
// (north at the top). Fill values render as '~' (the "ocean mask" look).
func RenderMap(f *field.Field, opts Options) string {
	w, h, lev := opts.resolve(f)
	g := f.Grid

	// Value range over the level, excluding fills.
	lo, hi := math.Inf(1), math.Inf(-1)
	base := lev * g.NLat * g.NLon
	for i := base; i < base+g.NLat*g.NLon; i++ {
		if f.IsFill(i) {
			continue
		}
		v := float64(f.Data[i])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return "(all fill)\n"
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] level %d/%d  min %.4g  max %.4g\n",
		f.Name, f.Units, lev+1, f.NLev, lo, hi)
	for row := 0; row < h; row++ {
		// Row 0 is the northernmost latitude.
		lat := g.NLat - 1 - row*g.NLat/h
		for col := 0; col < w; col++ {
			lon := col * g.NLon / w
			i := base + lat*g.NLon + lon
			if f.IsFill(i) {
				b.WriteRune('~')
				continue
			}
			frac := (float64(f.Data[i]) - lo) / span
			idx := int(frac * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteRune(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderDiff draws the pointwise |orig − recon| of one level on a scale
// normalized by the original's range, so '@' marks errors near the worst
// case and ' ' marks exact agreement.
func RenderDiff(orig, recon *field.Field, opts Options) (string, error) {
	if err := orig.CheckCompatible(recon.Data); err != nil {
		return "", err
	}
	w, h, lev := opts.resolve(orig)
	g := orig.Grid
	base := lev * g.NLat * g.NLon

	// Normalize by the level's value range.
	lo, hi := math.Inf(1), math.Inf(-1)
	maxDiff := 0.0
	for i := base; i < base+g.NLat*g.NLon; i++ {
		if orig.IsFill(i) {
			continue
		}
		v := float64(orig.Data[i])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if d := math.Abs(float64(orig.Data[i] - recon.Data[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if math.IsInf(lo, 1) {
		return "(all fill)\n", nil
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, "|%s - reconstruction| level %d/%d  max err %.3g (%.3g of range)\n",
		orig.Name, lev+1, orig.NLev, maxDiff, maxDiff/span)
	if maxDiff == 0 {
		b.WriteString("(bit-for-bit identical)\n")
		return b.String(), nil
	}
	for row := 0; row < h; row++ {
		lat := g.NLat - 1 - row*g.NLat/h
		for col := 0; col < w; col++ {
			lon := col * g.NLon / w
			i := base + lat*g.NLon + lon
			if orig.IsFill(i) {
				b.WriteRune('~')
				continue
			}
			frac := math.Abs(float64(orig.Data[i]-recon.Data[i])) / maxDiff
			idx := int(frac * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteRune(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
