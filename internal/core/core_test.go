package core

import (
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
	"climcompress/internal/field"
	"climcompress/internal/grid"
)

func testMembers(t testing.TB, nm int) []*field.Field {
	t.Helper()
	g := grid.Test()
	rng := rand.New(rand.NewSource(1))
	out := make([]*field.Field, nm)
	for m := range out {
		f := field.New("X", "1", g, false)
		for i := range f.Data {
			f.Data[i] = float32(100 + 20*math.Sin(float64(i)/10) + rng.NormFloat64())
		}
		out[m] = f
	}
	return out
}

func TestSuiteLosslessPasses(t *testing.T) {
	s, err := NewSuite(testMembers(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCodec("fpzip-32")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Verify(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllPass {
		t.Fatalf("lossless codec should pass: %+v", res)
	}
}

func TestSuiteAggressiveLossFails(t *testing.T) {
	s, err := NewSuite(testMembers(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCodec("fpzip-8")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Verify(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllPass {
		t.Fatal("8-bit precision should be climate-changing here")
	}
}

func TestSuiteOptions(t *testing.T) {
	s, err := NewSuite(testMembers(t, 9),
		WithoutBiasTest(),
		WithTestMembers(0, 4),
		WithWorkers(2),
		WithThresholds(DefaultThresholds()),
	)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCodec("apax-2")
	res, err := s.Verify(c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SkippedBias {
		t.Fatal("bias test should be skipped")
	}
	if len(res.Checks) != 2 {
		t.Fatalf("expected 2 test members, got %d", len(res.Checks))
	}
	if res.Checks[0].Member != 0 || res.Checks[1].Member != 4 {
		t.Fatalf("test members not honored: %+v", res.Checks)
	}
}

func TestSuiteAccessors(t *testing.T) {
	s, err := NewSuite(testMembers(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	if s.Members() != 9 {
		t.Fatalf("Members = %d", s.Members())
	}
	rm := s.RMSZ()
	if len(rm) != 9 {
		t.Fatalf("RMSZ length %d", len(rm))
	}
	rm[0] = -1 // must not corrupt internal state
	if s.RMSZ()[0] == -1 {
		t.Fatal("RMSZ returned internal slice")
	}
	if len(s.Enmax()) != 9 {
		t.Fatal("Enmax length wrong")
	}
}

func TestCompareHelpers(t *testing.T) {
	orig := []float32{1, 2, 3}
	recon := []float32{1, 2, 4}
	e := Compare(orig, recon)
	if e.EMax != 1 {
		t.Fatalf("EMax = %v", e.EMax)
	}
	const fill = float32(1e35)
	e2 := CompareWithFill([]float32{1, fill}, []float32{1, fill}, fill)
	if e2.N != 1 || e2.EMax != 0 {
		t.Fatalf("fill compare wrong: %+v", e2)
	}
}

func TestKSCompare(t *testing.T) {
	orig := make([]float32, 4000)
	same := make([]float32, 4000)
	shifted := make([]float32, 4000)
	rng := rand.New(rand.NewSource(5))
	for i := range orig {
		orig[i] = float32(rng.NormFloat64())
		same[i] = orig[i] + float32(rng.NormFloat64()*1e-5)
		shifted[i] = orig[i] + 1
	}
	if res := KSCompare(orig, same, 0, false); res.P < 0.5 {
		t.Fatalf("near-identical data rejected by KS: p=%v", res.P)
	}
	if res := KSCompare(orig, shifted, 0, false); res.P > 1e-6 {
		t.Fatalf("shifted data not caught by KS: p=%v", res.P)
	}
	const fill = float32(1e35)
	withFill := append([]float32(nil), orig...)
	withFill[0] = fill
	if res := KSCompare(withFill, withFill, fill, true); res.N1 != 3999 {
		t.Fatalf("fill not excluded: n=%d", res.N1)
	}
}

func TestNewSuiteEmpty(t *testing.T) {
	if _, err := NewSuite(nil); err == nil {
		t.Fatal("empty suite should error")
	}
}

func TestCodecNamesNonEmpty(t *testing.T) {
	names := CodecNames()
	if len(names) < 9 {
		t.Fatalf("only %d codecs registered", len(names))
	}
	if _, err := NewCodec("definitely-not-a-codec"); err == nil {
		t.Fatal("unknown codec should error")
	}
}

func TestWrapFill(t *testing.T) {
	inner, _ := NewCodec("apax-4")
	c := WrapFill(inner, 1e35)
	g := grid.Test()
	data := make([]float32, g.Horizontal())
	for i := range data {
		data[i] = float32(i)
	}
	data[3] = 1e35
	buf, err := c.Compress(data, compress.Shape{NLev: 1, NLat: g.NLat, NLon: g.NLon})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out[3] != 1e35 {
		t.Fatal("fill lost through WrapFill")
	}
}
