// Package core is the public face of the verification methodology — the
// paper's primary contribution. It ties together the ensemble statistics
// (internal/ensemble), the four acceptance tests (internal/pvt) and the
// error metrics (internal/metrics) behind a small API:
//
//	suite, _ := core.NewSuite(memberFields)
//	result, _ := suite.Verify(codec)       // the four §4.3 tests
//	errs := core.Compare(orig, recon)      // the §4.2 measures
//
// A codec "passes" for a variable when the reconstructed data is
// statistically indistinguishable from the natural variability of the
// perturbation ensemble: correlation, RMSZ closeness (eq. 8), E_nmax ratio
// (eq. 11) and regression bias (eq. 9) all within thresholds.
package core

import (
	"fmt"

	"climcompress/internal/compress"
	// The codec implementations register themselves; importing core gives
	// callers the full registry.
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
	_ "climcompress/internal/compress/tsblob"
	"climcompress/internal/ensemble"
	"climcompress/internal/field"
	"climcompress/internal/metrics"
	"climcompress/internal/pvt"
	"climcompress/internal/stats"
)

// Codec is the compressor interface verified by a Suite.
type Codec = compress.Codec

// Thresholds are the acceptance limits of the four tests.
type Thresholds = pvt.Thresholds

// Result is a verification verdict.
type Result = pvt.Result

// Errors are the §4.2 original-vs-reconstructed measures.
type Errors = metrics.Errors

// DefaultThresholds returns the paper's limits (ρ ≥ 0.99999, |ΔRMSZ| ≤ 0.1,
// e_nmax ratio ≤ 0.1, slope distance ≤ 0.05).
func DefaultThresholds() Thresholds { return pvt.Default() }

// Suite verifies codecs against one variable's perturbation ensemble.
type Suite struct {
	verifier *pvt.Verifier
	stats    *ensemble.VarStats
}

// Option configures a Suite.
type Option func(*pvt.Verifier)

// WithThresholds overrides the acceptance limits.
func WithThresholds(t Thresholds) Option {
	return func(v *pvt.Verifier) { v.Thr = t }
}

// WithTestMembers pins the individually verified members (default: three
// deterministically chosen, mirroring the paper's three random members).
func WithTestMembers(members ...int) Option {
	return func(v *pvt.Verifier) { v.TestMembers = members }
}

// WithoutBiasTest skips the (all-members) bias regression, keeping only the
// three cheap tests. Used when the full ensemble sweep is too expensive.
func WithoutBiasTest() Option {
	return func(v *pvt.Verifier) { v.WithBias = false }
}

// WithWorkers bounds compression parallelism.
func WithWorkers(n int) Option {
	return func(v *pvt.Verifier) { v.Workers = n }
}

// NewSuite builds a verification suite from the ensemble member fields of
// one variable (all members must share name, shape and fill handling).
func NewSuite(members []*field.Field, opts ...Option) (*Suite, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("core: no ensemble members")
	}
	vs, err := ensemble.Build(members)
	if err != nil {
		return nil, err
	}
	f0 := members[0]
	shape := compress.Shape{NLev: f0.NLev, NLat: f0.Grid.NLat, NLon: f0.Grid.NLon}
	v := &pvt.Verifier{
		Stats:    vs,
		Shape:    shape,
		Thr:      pvt.Default(),
		WithBias: true,
	}
	for _, opt := range opts {
		opt(v)
	}
	return &Suite{verifier: v, stats: vs}, nil
}

// Verify runs the four acceptance tests of the methodology for one codec.
func (s *Suite) Verify(codec Codec) (Result, error) {
	return s.verifier.Verify(codec)
}

// RMSZ returns the original ensemble's RMSZ distribution (eq. 7).
func (s *Suite) RMSZ() []float64 { return append([]float64(nil), s.stats.RMSZ...) }

// Enmax returns the ensemble's normalized-maximum-pointwise-error
// distribution (eq. 10).
func (s *Suite) Enmax() []float64 { return append([]float64(nil), s.stats.Enmax...) }

// Members returns the ensemble size.
func (s *Suite) Members() int { return s.stats.Members() }

// Compare computes the §4.2 error measures between an original and a
// reconstructed dataset with no fill handling. For data with special
// values use CompareWithFill.
func Compare(orig, recon []float32) Errors {
	return metrics.Compare(orig, recon, 0, false)
}

// CompareWithFill is Compare for datasets carrying a fill sentinel.
func CompareWithFill(orig, recon []float32, fill float32) Errors {
	return metrics.Compare(orig, recon, fill, true)
}

// KSCompare runs a two-sample Kolmogorov–Smirnov test between the value
// distributions of an original and a reconstructed dataset (fill values
// excluded) — the distribution check adopted by NCAR's follow-up ensemble
// consistency tooling. A small p-value means the reconstruction visibly
// changed the distribution of values.
func KSCompare(orig, recon []float32, fill float32, hasFill bool) stats.KSResult {
	a := make([]float64, 0, len(orig))
	b := make([]float64, 0, len(recon))
	for i := range orig {
		if hasFill && orig[i] == fill {
			continue
		}
		a = append(a, float64(orig[i]))
		if i < len(recon) {
			if hasFill && recon[i] == fill {
				continue
			}
			b = append(b, float64(recon[i]))
		}
	}
	return stats.KolmogorovSmirnov(a, b)
}

// NewCodec resolves a codec by registry name (e.g. "fpzip-24", "apax-2",
// "isa-0.5", "nc"); see compress.Names for the full list.
func NewCodec(name string) (Codec, error) { return compress.New(name) }

// CodecNames lists all registered codec variants.
func CodecNames() []string { return compress.Names() }

// WrapFill adds special-value masking around a codec that lacks native
// fill support.
func WrapFill(c Codec, fill float32) Codec { return compress.WithFill(c, fill) }
