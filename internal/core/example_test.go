package core_test

import (
	"fmt"
	"math"

	"climcompress/internal/core"
	"climcompress/internal/field"
	"climcompress/internal/grid"
)

// ExampleCompare shows the §4.2 error measures on a toy reconstruction.
func ExampleCompare() {
	orig := []float32{10, 20, 30, 40, 50}
	recon := []float32{10, 20.5, 30, 39.5, 50}
	e := core.Compare(orig, recon)
	fmt.Printf("e_max=%.1f e_nmax=%.5f nrmse=%.5f pass=%v\n",
		e.EMax, e.ENMax, e.NRMSE, e.PassesCorrelation())
	// Output: e_max=0.5 e_nmax=0.01250 nrmse=0.00791 pass=false
}

// ExampleSuite_Verify runs the full methodology on a small synthetic
// ensemble: a lossless codec is always statistically indistinguishable.
func ExampleSuite_Verify() {
	g := grid.Test()
	members := make([]*field.Field, 9)
	x := uint64(7)
	next := func() float64 { // tiny deterministic noise source
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%1000)/500 - 1
	}
	for m := range members {
		f := field.New("TS", "K", g, false)
		for i := range f.Data {
			f.Data[i] = float32(288 + 5*math.Sin(float64(i)/9) + next())
		}
		members[m] = f
	}
	suite, err := core.NewSuite(members)
	if err != nil {
		panic(err)
	}
	codec, _ := core.NewCodec("fpzip-32")
	res, _ := suite.Verify(codec)
	fmt.Printf("codec=%s rho=%v rmsz=%v enmax=%v bias=%v all=%v\n",
		res.Codec, res.RhoPass, res.RMSZPass, res.EnmaxPass, res.BiasPass, res.AllPass)
	// Output: codec=fpzip-32 rho=true rmsz=true enmax=true bias=true all=true
}

// ExampleNewCodec lists a few of the registered codec variants.
func ExampleNewCodec() {
	for _, name := range []string{"fpzip-24", "apax-2", "isa-0.5", "grib2", "nc"} {
		c, err := core.NewCodec(name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s lossless=%v\n", c.Name(), c.Lossless())
	}
	// Output:
	// fpzip-24 lossless=false
	// apax-2 lossless=false
	// isa-0.5 lossless=false
	// grib2 lossless=false
	// nc lossless=true
}
