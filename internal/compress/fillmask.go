package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// fillMasked wraps a codec with special-value support: a bitmap records
// which points hold the fill sentinel, fill points are replaced by a
// neighborhood-continuation value before inner compression (so spatial
// predictors see smooth data), and the sentinel is restored bit exactly on
// reconstruction. This implements the pre-/post-processing the paper
// anticipates for fpzip and APAX ("we assume that could be ... handled
// through our pre- and post-processing", §5.4).
type fillMasked struct {
	inner Codec
	fill  float32
}

// WithFill returns a codec that handles the fill sentinel around inner.
func WithFill(inner Codec, fill float32) Codec {
	return &fillMasked{inner: inner, fill: fill}
}

func (f *fillMasked) Name() string   { return f.inner.Name() + "+fill" }
func (f *fillMasked) Lossless() bool { return f.inner.Lossless() }

// fillScratch is the reusable working set of one fill-masked Compress call.
type fillScratch struct {
	bitmap []byte
	work   []float32
}

var fillPool = sync.Pool{New: func() any { return new(fillScratch) }}

func (s *fillScratch) grow(n int) (bitmap []byte, work []float32) {
	nb := (n + 7) / 8
	if cap(s.bitmap) < nb {
		s.bitmap = make([]byte, nb)
	}
	s.bitmap = s.bitmap[:nb]
	for i := range s.bitmap {
		s.bitmap[i] = 0
	}
	if cap(s.work) < n {
		s.work = make([]float32, n)
	}
	s.work = s.work[:n]
	return s.bitmap, s.work
}

// Stream layout after the common header:
//
//	fill   float32 (LE bits)
//	bitmap (len(data)+7)/8 bytes, bit i set => point i is fill
//	inner  the wrapped codec's self-describing stream
func (f *fillMasked) Compress(data []float32, shape Shape) ([]byte, error) {
	return f.CompressInto(nil, data, shape)
}

// CompressInto implements AppendCodec with pooled mask buffers; the appended
// stream is bit-identical to Compress's.
func (f *fillMasked) CompressInto(dst []byte, data []float32, shape Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return dst, fmt.Errorf("compress: shape %v does not match %d values", shape, len(data))
	}
	n := len(data)
	s := fillPool.Get().(*fillScratch)
	defer fillPool.Put(s)
	bitmap, work := s.grow(n)
	// Continuation value: the most recent valid value in scan order (or the
	// first valid value for a leading run of fills). Keeps the field smooth
	// for spatial predictors without influencing reconstruction.
	first := float32(0)
	for _, v := range data {
		if v != f.fill {
			first = v
			break
		}
	}
	last := first
	for i, v := range data {
		if v == f.fill {
			bitmap[i/8] |= 1 << (i % 8)
			work[i] = last
		} else {
			work[i] = v
			last = v
		}
	}
	dst = PutHeader(dst, Header{CodecID: IDFillMask, Shape: shape})
	var fb [4]byte
	binary.LittleEndian.PutUint32(fb[:], math.Float32bits(f.fill))
	dst = append(dst, fb[:]...)
	dst = append(dst, bitmap...)
	return CompressInto(f.inner, dst, work, shape)
}

func (f *fillMasked) Decompress(buf []byte) ([]float32, error) {
	return f.DecompressInto(nil, buf)
}

// DecompressInto implements AppendCodec, restoring the sentinel in place over
// the inner codec's reconstruction.
func (f *fillMasked) DecompressInto(dst []float32, buf []byte) ([]float32, error) {
	h, rest, err := ParseHeader(buf)
	if err != nil {
		return dst, err
	}
	if h.CodecID != IDFillMask {
		return dst, fmt.Errorf("%w: not a fill-masked stream", ErrCorrupt)
	}
	n := h.Shape.Len()
	need := 4 + (n+7)/8
	if len(rest) < need {
		return dst, fmt.Errorf("%w: truncated fill mask", ErrCorrupt)
	}
	fill := math.Float32frombits(binary.LittleEndian.Uint32(rest))
	bitmap := rest[4:need]
	vals, err := DecompressInto(f.inner, dst, rest[need:])
	if err != nil {
		return dst, err
	}
	if len(vals) != n {
		return dst, fmt.Errorf("%w: inner stream has %d values, want %d", ErrCorrupt, len(vals), n)
	}
	for i := range vals {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			vals[i] = fill
		}
	}
	return vals, nil
}

// DecodeChunks implements ChunkDecoder by streaming the inner codec's
// chunks and overlaying the fill sentinel per chunk — the wrapper adds no
// whole-field buffer of its own, so a fill-masked tsblob/apax/fpzip stream
// stays natively chunked end to end. The overlay mutates the yielded
// values in place, which the chunk contract permits.
func (f *fillMasked) DecodeChunks(compressed []byte, chunk []float32, yield func(off int, vals []float32) error) error {
	h, rest, err := ParseHeader(compressed)
	if err != nil {
		return err
	}
	if h.CodecID != IDFillMask {
		return fmt.Errorf("%w: not a fill-masked stream", ErrCorrupt)
	}
	n := h.Shape.Len()
	need := 4 + (n+7)/8
	if len(rest) < need {
		return fmt.Errorf("%w: truncated fill mask", ErrCorrupt)
	}
	fill := math.Float32frombits(binary.LittleEndian.Uint32(rest))
	bitmap := rest[4:need]
	total := 0
	err = DecodeChunks(f.inner, rest[need:], chunk, func(off int, vals []float32) error {
		if off+len(vals) > n {
			return fmt.Errorf("%w: inner chunk [%d,%d) outside field of %d points", ErrCorrupt, off, off+len(vals), n)
		}
		for j := range vals {
			i := off + j
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				vals[j] = fill
			}
		}
		total = off + len(vals)
		return yield(off, vals)
	})
	if err != nil {
		return err
	}
	if total != n {
		return fmt.Errorf("%w: inner stream has %d values, want %d", ErrCorrupt, total, n)
	}
	return nil
}
