package compress_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"climcompress/internal/compress"
)

// arbitraryField builds a field of the given size from a seed, mixing
// smooth structure, noise, exact zeros and denormals.
func arbitraryField(seed int64, n int) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n)
	for i := range data {
		switch rng.Intn(6) {
		case 0:
			data[i] = 0
		case 1:
			data[i] = float32(math.Ldexp(rng.Float64(), rng.Intn(60)-30))
		case 2:
			data[i] = -float32(math.Ldexp(rng.Float64(), rng.Intn(60)-30))
		default:
			data[i] = float32(100*math.Sin(float64(i)/7) + rng.NormFloat64())
		}
	}
	return data
}

// Property: every lossless codec reconstructs arbitrary fields bit exactly,
// for arbitrary (valid) shapes.
func TestQuickLosslessCodecs(t *testing.T) {
	f := func(seed int64, a, b, c uint8) bool {
		shape := compress.Shape{
			NLev: int(a%4) + 1,
			NLat: int(b%8) + 2,
			NLon: int(c%16) + 2,
		}
		data := arbitraryField(seed, shape.Len())
		for _, name := range []string{"fpzip-32", "fpzip64-64", "nc", "nc-noshuffle", "tsblob"} {
			codec, err := compress.New(name)
			if err != nil {
				return false
			}
			buf, err := codec.Compress(data, shape)
			if err != nil {
				return false
			}
			out, err := codec.Decompress(buf)
			if err != nil || len(out) != len(data) {
				return false
			}
			for i := range data {
				if math.Float32bits(out[i]) != math.Float32bits(data[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: every lossy study codec round-trips to the right length with
// finite values for arbitrary finite input.
func TestQuickLossyCodecsTotal(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		shape := compress.Shape{
			NLev: 1,
			NLat: int(a%8) + 2,
			NLon: int(b%32) + 4,
		}
		data := arbitraryField(seed, shape.Len())
		for _, name := range []string{"fpzip-16", "fpzip-24", "apax-2", "apax-5", "isa-0.5", "grib2"} {
			codec, err := compress.New(name)
			if err != nil {
				return false
			}
			buf, err := codec.Compress(data, shape)
			if err != nil {
				// grib2 legitimately rejects values that overflow its
				// quantizer; other codecs must always accept.
				if name == "grib2" {
					continue
				}
				return false
			}
			out, err := codec.Decompress(buf)
			if err != nil || len(out) != len(data) {
				return false
			}
			for _, v := range out {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: compression is deterministic — same input, same bytes.
func TestQuickDeterministicStreams(t *testing.T) {
	f := func(seed int64) bool {
		shape := compress.Shape{NLev: 2, NLat: 6, NLon: 10}
		data := arbitraryField(seed, shape.Len())
		for _, name := range []string{"fpzip-24", "apax-4", "isa-0.5", "grib2", "nc", "tsblob"} {
			c1, _ := compress.New(name)
			c2, _ := compress.New(name)
			b1, err1 := c1.Compress(data, shape)
			b2, err2 := c2.Compress(data, shape)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 != nil {
				continue
			}
			if string(b1) != string(b2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
