package parallel

import (
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	"climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/nclossless"
)

func testData(levs, lat, lon int, seed int64) ([]float32, compress.Shape) {
	rng := rand.New(rand.NewSource(seed))
	shape := compress.Shape{NLev: levs, NLat: lat, NLon: lon}
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(100*math.Sin(float64(i)/40) + rng.NormFloat64())
	}
	return data, shape
}

func TestLosslessRoundTrip3D(t *testing.T) {
	data, shape := testData(10, 16, 24, 1)
	c, err := FromRegistry("fpzip-32", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Lossless() {
		t.Fatal("wrapper must inherit losslessness")
	}
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestRoundTrip2DBands(t *testing.T) {
	data, shape := testData(1, 37, 24, 2) // odd rows force a tail band
	c, err := FromRegistry("fpzip-32", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	data, shape := testData(8, 12, 16, 3)
	var streams [][]byte
	for _, workers := range []int{1, 2, 8} {
		c, _ := FromRegistry("fpzip-24", workers, 2)
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, buf)
	}
	for i := 1; i < len(streams); i++ {
		if string(streams[i]) != string(streams[0]) {
			t.Fatal("stream depends on worker count")
		}
	}
}

func TestLossyInnerPreserved(t *testing.T) {
	data, shape := testData(6, 16, 16, 4)
	seq, _ := compress.New("apax-4")
	par, err := FromRegistry("apax-4", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sbuf, err := seq.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	pbuf, err := par.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	sout, _ := seq.Decompress(sbuf)
	pout, err := par.Decompress(pbuf)
	if err != nil {
		t.Fatal(err)
	}
	// Error magnitudes comparable between chunked and sequential paths.
	var se, pe float64
	for i := range data {
		se += math.Abs(float64(sout[i] - data[i]))
		pe += math.Abs(float64(pout[i] - data[i]))
	}
	if pe > 2*se+1e-9 {
		t.Fatalf("chunked error %v much worse than sequential %v", pe, se)
	}
}

func TestChunkOverheadBounded(t *testing.T) {
	data, shape := testData(16, 24, 32, 5)
	seq, _ := compress.New("fpzip-24")
	par, _ := FromRegistry("fpzip-24", 2, 2)
	sbuf, _ := seq.Compress(data, shape)
	pbuf, _ := par.Compress(data, shape)
	// Chunking resets adaptive models: some ratio loss, but bounded.
	if float64(len(pbuf)) > 1.25*float64(len(sbuf)) {
		t.Fatalf("chunk overhead too large: %d vs %d bytes", len(pbuf), len(sbuf))
	}
}

func TestNameAndErrors(t *testing.T) {
	c := New(func() compress.Codec { return fpzip.New(24) }, 2, 2)
	if c.Name() != "parallel(fpzip-24)" {
		t.Fatalf("Name = %q", c.Name())
	}
	if _, err := FromRegistry("nope", 1, 1); err == nil {
		t.Fatal("unknown inner codec should error")
	}
	if _, err := c.Compress(make([]float32, 3), compress.Shape{NLev: 1, NLat: 2, NLon: 2}); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestCorruptStreams(t *testing.T) {
	data, shape := testData(4, 8, 8, 6)
	c, _ := FromRegistry("fpzip-32", 2, 2)
	buf, _ := c.Compress(data, shape)
	if _, err := c.Decompress(buf[:6]); err == nil {
		t.Fatal("truncated header should error")
	}
	if _, err := c.Decompress(buf[:20]); err == nil {
		t.Fatal("truncated chunk table should error")
	}
	bad := append([]byte(nil), buf...)
	bad[0] = compress.IDAPAX
	if _, err := c.Decompress(bad); err == nil {
		t.Fatal("wrong stream ID should error")
	}
	short := append([]byte(nil), buf[:len(buf)-5]...)
	if _, err := c.Decompress(short); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func BenchmarkParallelChunks(b *testing.B) {
	data, shape := testData(16, 48, 96, 7)
	for _, workers := range []int{1, 2, 4} {
		c, _ := FromRegistry("fpzip-24", workers, 2)
		b.Run(c.Name()+"_w"+string(rune('0'+workers)), func(b *testing.B) {
			b.SetBytes(int64(4 * len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Compress(data, shape); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
