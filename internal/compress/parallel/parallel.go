// Package parallel provides a chunked, concurrent wrapper around any codec
// in the registry: a field is split along its level dimension (or into
// latitude bands for 2-D data), the chunks are compressed by a worker pool,
// and the streams are framed back together. This is the shape compression
// takes when integrated into a model's I/O path — the paper's stated goal
// of folding compression into the CESM post-processing workflow — where
// per-variable wall-clock matters and fields arrive as independent slabs.
//
// Chunking costs a little ratio (each chunk restarts the inner codec's
// adaptive models) and buys near-linear scaling; the trade-off is measured
// by BenchmarkParallelChunks.
package parallel

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"

	"climcompress/internal/compress"
	"climcompress/internal/par"
)

// Codec compresses chunks of a field concurrently with an inner codec.
type Codec struct {
	// Factory creates one inner codec per chunk; instances must not be
	// shared across goroutines because adaptive codecs carry state.
	Factory func() compress.Codec
	// Workers bounds the pool (GOMAXPROCS when 0).
	Workers int
	// ChunkLevels is the number of levels per chunk for 3-D fields, and
	// the number of latitude rows per chunk for 2-D fields (default 4).
	ChunkLevels int

	nameOnce sync.Once
	name     string
}

// New wraps a codec factory.
func New(factory func() compress.Codec, workers, chunkLevels int) *Codec {
	return &Codec{Factory: factory, Workers: workers, ChunkLevels: chunkLevels}
}

// FromRegistry wraps a registered codec by name.
func FromRegistry(name string, workers, chunkLevels int) (*Codec, error) {
	if _, err := compress.New(name); err != nil {
		return nil, err
	}
	return New(func() compress.Codec {
		c, _ := compress.New(name)
		return c
	}, workers, chunkLevels), nil
}

// Name implements compress.Codec.
func (c *Codec) Name() string {
	c.nameOnce.Do(func() { c.name = "parallel(" + c.Factory().Name() + ")" })
	return c.name
}

// Lossless implements compress.Codec.
func (c *Codec) Lossless() bool { return c.Factory().Lossless() }

func (c *Codec) chunk() int {
	if c.ChunkLevels > 0 {
		return c.ChunkLevels
	}
	return 4
}

func (c *Codec) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// chunkSpec describes one slab of the field.
type chunkSpec struct {
	offset int // starting value index
	shape  compress.Shape
}

// plan splits the shape into chunk slabs.
func (c *Codec) plan(shape compress.Shape) []chunkSpec {
	var chunks []chunkSpec
	step := c.chunk()
	if shape.NLev > 1 {
		perLev := shape.NLat * shape.NLon
		for lev := 0; lev < shape.NLev; lev += step {
			n := step
			if lev+n > shape.NLev {
				n = shape.NLev - lev
			}
			chunks = append(chunks, chunkSpec{
				offset: lev * perLev,
				shape:  compress.Shape{NLev: n, NLat: shape.NLat, NLon: shape.NLon},
			})
		}
		return chunks
	}
	// 2-D: latitude bands.
	for lat := 0; lat < shape.NLat; lat += step {
		n := step
		if lat+n > shape.NLat {
			n = shape.NLat - lat
		}
		chunks = append(chunks, chunkSpec{
			offset: lat * shape.NLon,
			shape:  compress.Shape{NLev: 1, NLat: n, NLon: shape.NLon},
		})
	}
	return chunks
}

// Compress implements compress.Codec. Stream layout after the header:
//
//	chunkParam byte      (ChunkLevels used, for Decompress planning)
//	nchunks    uint32
//	lengths    nchunks × uint32
//	payloads   concatenated inner streams
func (c *Codec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	return c.CompressInto(nil, data, shape)
}

// CompressInto implements compress.AppendCodec: per-chunk payloads come from
// the shared byte pool and the inner codec's Into path is used when it has
// one. The appended stream is bit-identical to Compress's.
func (c *Codec) CompressInto(dst []byte, data []float32, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return dst, fmt.Errorf("parallel: shape %v does not match %d values", shape, len(data))
	}
	chunks := c.plan(shape)
	payloads := make([][]byte, len(chunks))
	defer func() {
		for _, p := range payloads {
			if p != nil {
				compress.PutBytes(p)
			}
		}
	}()
	errs := make([]error, len(chunks))

	// Fan out over the shared pool; a fresh inner codec per chunk because
	// adaptive codecs carry per-stream state.
	par.EachLimit(len(chunks), c.workers(), func(i int) error {
		ch := chunks[i]
		slab := data[ch.offset : ch.offset+ch.shape.Len()]
		buf := compress.GetBytes(ch.shape.Len())
		payloads[i], errs[i] = compress.CompressInto(c.Factory(), buf, slab, ch.shape)
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return dst, fmt.Errorf("parallel: chunk %d: %w", i, err)
		}
	}

	dst = compress.PutHeader(dst, compress.Header{CodecID: compress.IDParallel, Shape: shape})
	dst = append(dst, byte(c.chunk()))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(chunks)))
	dst = append(dst, u32[:]...)
	for _, p := range payloads {
		binary.LittleEndian.PutUint32(u32[:], uint32(len(p)))
		dst = append(dst, u32[:]...)
	}
	for _, p := range payloads {
		dst = append(dst, p...)
	}
	return dst, nil
}

// Decompress implements compress.Codec, reconstructing chunks concurrently.
func (c *Codec) Decompress(buf []byte) ([]float32, error) {
	return c.DecompressInto(nil, buf)
}

// DecompressInto implements compress.AppendCodec: each chunk reconstructs
// directly into its slab of the output buffer (capacity-clipped so a corrupt
// chunk claiming a larger shape cannot scribble over its neighbours), with a
// copy only when the inner codec lacks the Into path.
func (c *Codec) DecompressInto(dst []float32, buf []byte) ([]float32, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return dst, err
	}
	if h.CodecID != compress.IDParallel {
		return dst, fmt.Errorf("%w: not a parallel stream", compress.ErrCorrupt)
	}
	if len(rest) < 5 {
		return dst, fmt.Errorf("%w: missing chunk table", compress.ErrCorrupt)
	}
	chunkParam := int(rest[0])
	nchunks := int(binary.LittleEndian.Uint32(rest[1:]))
	rest = rest[5:]
	if nchunks <= 0 || len(rest) < 4*nchunks {
		return dst, fmt.Errorf("%w: bad chunk count %d", compress.ErrCorrupt, nchunks)
	}
	lengths := make([]int, nchunks)
	for i := range lengths {
		lengths[i] = int(binary.LittleEndian.Uint32(rest[4*i:]))
	}
	rest = rest[4*nchunks:]

	// Re-derive the chunk plan with the stored parameter.
	planner := &Codec{Factory: c.Factory, ChunkLevels: chunkParam}
	chunks := planner.plan(h.Shape)
	if len(chunks) != nchunks {
		return dst, fmt.Errorf("%w: chunk plan mismatch (%d vs %d)", compress.ErrCorrupt, len(chunks), nchunks)
	}
	payloads := make([][]byte, nchunks)
	off := 0
	for i, n := range lengths {
		if off+n > len(rest) {
			return dst, fmt.Errorf("%w: truncated chunk %d", compress.ErrCorrupt, i)
		}
		payloads[i] = rest[off : off+n]
		off += n
	}

	out := compress.GrowFloats(dst, h.Shape.Len())
	errs := make([]error, nchunks)
	par.EachLimit(nchunks, c.workers(), func(i int) error {
		want := chunks[i].shape.Len()
		lo, hi := chunks[i].offset, chunks[i].offset+want
		sub := out[lo:hi:hi]
		vals, err := compress.DecompressInto(c.Factory(), sub, payloads[i])
		if err != nil {
			errs[i] = err
			return nil
		}
		if len(vals) != want {
			errs[i] = fmt.Errorf("%w: chunk %d wrong length", compress.ErrCorrupt, i)
			return nil
		}
		if want > 0 && &vals[0] != &sub[0] {
			copy(sub, vals)
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return dst, fmt.Errorf("parallel: chunk %d: %w", i, err)
		}
	}
	return out, nil
}
