// Package grib2 reimplements the behaviour of the study's GRIB2+JPEG2000
// pipeline: values are quantized to integers with a per-variable decimal
// scale factor D (the WMO "decimal scale factor" that the paper had to tune
// per variable, ultimately using the RMSZ ensemble test as a guide), a
// bitmap marks missing/special values (GRIB2 is the only studied codec with
// native special-value support, Table 1), and the integer field is coded
// with the reversible 5/3 wavelet + adaptive range coding — the JPEG2000
// lossless path. Encoding into the format is itself lossy (the
// quantization), so no lossless mode exists even with lossless JPEG2000,
// exactly as the paper notes.
package grib2

import (
	"fmt"
	"math"
	"sync"

	"climcompress/internal/bitstream"
	"climcompress/internal/compress"
	"climcompress/internal/entropy"
	"climcompress/internal/wavelet"
)

// Packing selects GRIB2's data representation template.
type Packing byte

const (
	// JPEG2000 codes the quantized field with the reversible wavelet +
	// range coder (template 5.40, the paper's configuration).
	JPEG2000 Packing = 0
	// Simple packs the quantized offsets at a fixed bit width (template
	// 5.0, GRIB2's default) — the ablation baseline showing what the
	// wavelet stage buys.
	Simple Packing = 1
)

// Codec is a GRIB2-style quantize-then-encode coder.
type Codec struct {
	// D is the decimal scale factor: values are rounded to 10^-D units.
	// Negative D coarsens (e.g. D=-2 keeps hundreds). The useful range is
	// roughly [-20, 20] given float64 rounding.
	D int
	// Fill, when HasFill is set, marks special values excluded from
	// quantization and restored exactly.
	Fill    float32
	HasFill bool
	// Levels is the wavelet decomposition depth (default 4).
	Levels int
	// Packing selects the data representation (default JPEG2000).
	Packing Packing
}

// New returns a codec with decimal scale factor d.
func New(d int) *Codec {
	if d < -20 || d > 20 {
		panic(fmt.Sprintf("grib2: decimal scale factor %d out of [-20, 20]", d))
	}
	return &Codec{D: d}
}

func init() {
	compress.Register("grib2", func() compress.Codec { return New(2) })
	compress.Register("grib2-simple", func() compress.Codec { return &Codec{D: 2, Packing: Simple} })
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return "grib2" }

// Lossless implements compress.Codec.
func (c *Codec) Lossless() bool { return false }

func (c *Codec) levels() int {
	if c.Levels > 0 {
		return c.Levels
	}
	return 4
}

// maxQuant guards against quantized magnitudes that exceed exact float64
// integer range.
const maxQuant = int64(1) << 52

// gribScratch is the reusable working set of one Compress or Decompress
// call: the quantized field, the fill bitmap, the range coder and its
// model, the wavelet buffers and the simple-packing bit writer.
type gribScratch struct {
	q      []int64
	bitmap []byte
	enc    *entropy.Encoder
	dec    *entropy.Decoder
	model  *entropy.SignedModel
	wav    wavelet.Scratch
	bw     *bitstream.Writer
}

var scratchPool = sync.Pool{New: func() any {
	return &gribScratch{
		enc:   entropy.NewEncoder(0),
		dec:   entropy.NewDecoder(nil),
		model: entropy.NewSignedModel(),
		bw:    bitstream.NewWriter(0),
	}
}}

func (s *gribScratch) grow(n int) {
	if cap(s.q) < n {
		s.q = make([]int64, n)
	}
	s.q = s.q[:n]
	nb := (n + 7) / 8
	if cap(s.bitmap) < nb {
		s.bitmap = make([]byte, nb)
	}
	s.bitmap = s.bitmap[:nb]
	for i := range s.bitmap {
		s.bitmap[i] = 0
	}
}

// Compress implements compress.Codec.
func (c *Codec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	return c.CompressInto(nil, data, shape)
}

// CompressInto implements compress.AppendCodec with pooled scratch; the
// appended stream is bit-identical to Compress's.
func (c *Codec) CompressInto(dst []byte, data []float32, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return dst, fmt.Errorf("grib2: shape %v does not match %d values", shape, len(data))
	}
	scale := math.Pow(10, float64(c.D))
	n := len(data)

	s := scratchPool.Get().(*gribScratch)
	defer scratchPool.Put(s)
	s.grow(n)
	q, bitmap := s.q, s.bitmap

	// Quantize; fill points carry the previous valid quantum so the wavelet
	// sees a smooth surface (their exact value is restored via the bitmap).
	anyFill := false
	var last int64
	if c.HasFill {
		for i, v := range data {
			if v == c.Fill {
				bitmap[i/8] |= 1 << (i % 8)
				q[i] = last
				anyFill = true
				continue
			}
			x := math.Round(float64(v) * scale)
			if x > float64(maxQuant) || x < -float64(maxQuant) {
				return dst, fmt.Errorf("grib2: value %v overflows quantizer at D=%d", v, c.D)
			}
			q[i] = int64(x)
			last = q[i]
		}
	} else {
		for i, v := range data {
			x := math.Round(float64(v) * scale)
			if x > float64(maxQuant) || x < -float64(maxQuant) {
				return dst, fmt.Errorf("grib2: value %v overflows quantizer at D=%d", v, c.D)
			}
			q[i] = int64(x)
		}
	}

	if c.Packing != Simple {
		// Per-level 2-D wavelet transform, then range coding.
		rows, cols := shape.NLat, shape.NLon
		for lev := 0; lev < shape.NLev; lev++ {
			slab := q[lev*rows*cols : (lev+1)*rows*cols]
			s.wav.Transform2D(slab, rows, cols, c.levels())
		}
		s.enc.Reset()
		s.model.Reset()
		for _, v := range q {
			s.model.Encode(s.enc, v)
		}
	}

	dst = compress.PutHeader(dst, compress.Header{CodecID: compress.IDGRIB2, Shape: shape})
	flags := byte(0)
	if anyFill {
		flags |= 1
	}
	if c.Packing == Simple {
		flags |= 2
	}
	f := math.Float32bits(c.Fill)
	dst = append(dst, flags, byte(int8(c.D)), byte(c.levels()),
		byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
	if anyFill {
		dst = append(dst, bitmap...)
	}
	if c.Packing == Simple {
		dst = packSimple(dst, q, s.bw)
	} else {
		dst = append(dst, s.enc.Flush()...)
	}
	return dst, nil
}

// packSimple implements GRIB2 template 5.0: offsets from the field minimum
// at a fixed bit width, appended to dst via the (reused) bit writer.
// Layout: ref int64 LE, width byte, packed bits.
func packSimple(dst []byte, q []int64, w *bitstream.Writer) []byte {
	ref := q[0]
	hi := q[0]
	for _, v := range q {
		if v < ref {
			ref = v
		}
		if v > hi {
			hi = v
		}
	}
	span := uint64(hi - ref)
	width := uint(0)
	for 1<<width <= span && width < 63 {
		width++
	}
	w.Reset()
	w.WriteBits(uint64(ref), 64)
	w.WriteBits(uint64(width), 8)
	for _, v := range q {
		w.WriteBits(uint64(v-ref), width)
	}
	return w.AppendTo(dst)
}

// unpackSimple inverts packSimple into the caller's buffer.
func unpackSimple(buf []byte, out []int64) error {
	var r bitstream.Reader
	r.Reset(buf)
	ref := int64(r.ReadBits(64))
	width := uint(r.ReadBits(8))
	if width > 63 {
		return fmt.Errorf("%w: bad packing width %d", compress.ErrCorrupt, width)
	}
	for i := range out {
		out[i] = ref + int64(r.ReadBits(width))
	}
	if r.Err() != nil {
		return fmt.Errorf("%w: %v", compress.ErrCorrupt, r.Err())
	}
	return nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(buf []byte) ([]float32, error) {
	return c.DecompressInto(nil, buf)
}

// DecompressInto implements compress.AppendCodec, reconstructing into dst's
// backing array when its capacity suffices.
func (c *Codec) DecompressInto(dst []float32, buf []byte) ([]float32, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return dst, err
	}
	if h.CodecID != compress.IDGRIB2 {
		return dst, fmt.Errorf("%w: not a grib2 stream", compress.ErrCorrupt)
	}
	if len(rest) < 7 {
		return dst, fmt.Errorf("%w: missing grib2 parameters", compress.ErrCorrupt)
	}
	flags := rest[0]
	d := int(int8(rest[1]))
	levels := int(rest[2])
	fill := math.Float32frombits(uint32(rest[3]) | uint32(rest[4])<<8 | uint32(rest[5])<<16 | uint32(rest[6])<<24)
	rest = rest[7:]

	n := h.Shape.Len()
	var bitmap []byte
	if flags&1 != 0 {
		need := (n + 7) / 8
		if len(rest) < need {
			return dst, fmt.Errorf("%w: truncated bitmap", compress.ErrCorrupt)
		}
		bitmap = rest[:need]
		rest = rest[need:]
	}

	if err := compress.CheckPlausible(n, len(rest)); err != nil {
		return dst, err
	}
	s := scratchPool.Get().(*gribScratch)
	defer scratchPool.Put(s)
	if cap(s.q) < n {
		s.q = make([]int64, n)
	}
	q := s.q[:n]
	if flags&2 != 0 { // simple packing
		if err := unpackSimple(rest, q); err != nil {
			return dst, err
		}
	} else {
		dec := s.dec
		dec.Reset(rest)
		s.model.Reset()
		for i := range q {
			q[i] = s.model.Decode(dec)
			if i&0xfff == 0xfff && dec.Overrun() {
				return dst, fmt.Errorf("%w: truncated grib2 stream", compress.ErrCorrupt)
			}
		}
		rows, cols := h.Shape.NLat, h.Shape.NLon
		// Reconstruct the dims sequence Transform2D would have produced
		// (identical for every slab of the field).
		dims := s.wav.PlanDims(rows, cols, levels)
		for lev := 0; lev < h.Shape.NLev; lev++ {
			slab := q[lev*rows*cols : (lev+1)*rows*cols]
			s.wav.Inverse2D(slab, rows, cols, dims)
		}
	}

	inv := math.Pow(10, -float64(d))
	out := compress.GrowFloats(dst, n)
	for i, v := range q {
		if bitmap != nil && bitmap[i/8]&(1<<(i%8)) != 0 {
			out[i] = fill
			continue
		}
		out[i] = float32(float64(v) * inv)
	}
	return out, nil
}

// MaxAbsoluteError returns the quantization half-step 0.5·10^-D — the
// codec's guaranteed pointwise error bound on non-fill values.
func (c *Codec) MaxAbsoluteError() float64 { return 0.5 * math.Pow(10, -float64(c.D)) }

// DForTarget returns the smallest decimal scale factor whose quantization
// error 0.5·10^-D stays below absErr, clamped to the codec's legal range.
// The paper tunes D per variable; experiments derive absErr from the
// variable's range or — as the paper ultimately did — from the ensemble
// spread ("we were only able to achieve the more competitive results ... by
// using the RMSZ ensemble test as a guide for choosing an optimal D").
func DForTarget(absErr float64) int {
	if absErr <= 0 || math.IsNaN(absErr) {
		return 20
	}
	d := int(math.Ceil(-math.Log10(2 * absErr)))
	if d < -20 {
		d = -20
	}
	if d > 20 {
		d = 20
	}
	return d
}
