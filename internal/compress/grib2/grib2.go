// Package grib2 reimplements the behaviour of the study's GRIB2+JPEG2000
// pipeline: values are quantized to integers with a per-variable decimal
// scale factor D (the WMO "decimal scale factor" that the paper had to tune
// per variable, ultimately using the RMSZ ensemble test as a guide), a
// bitmap marks missing/special values (GRIB2 is the only studied codec with
// native special-value support, Table 1), and the integer field is coded
// with the reversible 5/3 wavelet + adaptive range coding — the JPEG2000
// lossless path. Encoding into the format is itself lossy (the
// quantization), so no lossless mode exists even with lossless JPEG2000,
// exactly as the paper notes.
package grib2

import (
	"fmt"
	"math"

	"climcompress/internal/bitstream"
	"climcompress/internal/compress"
	"climcompress/internal/entropy"
	"climcompress/internal/wavelet"
)

// Packing selects GRIB2's data representation template.
type Packing byte

const (
	// JPEG2000 codes the quantized field with the reversible wavelet +
	// range coder (template 5.40, the paper's configuration).
	JPEG2000 Packing = 0
	// Simple packs the quantized offsets at a fixed bit width (template
	// 5.0, GRIB2's default) — the ablation baseline showing what the
	// wavelet stage buys.
	Simple Packing = 1
)

// Codec is a GRIB2-style quantize-then-encode coder.
type Codec struct {
	// D is the decimal scale factor: values are rounded to 10^-D units.
	// Negative D coarsens (e.g. D=-2 keeps hundreds). The useful range is
	// roughly [-20, 20] given float64 rounding.
	D int
	// Fill, when HasFill is set, marks special values excluded from
	// quantization and restored exactly.
	Fill    float32
	HasFill bool
	// Levels is the wavelet decomposition depth (default 4).
	Levels int
	// Packing selects the data representation (default JPEG2000).
	Packing Packing
}

// New returns a codec with decimal scale factor d.
func New(d int) *Codec {
	if d < -20 || d > 20 {
		panic(fmt.Sprintf("grib2: decimal scale factor %d out of [-20, 20]", d))
	}
	return &Codec{D: d}
}

func init() {
	compress.Register("grib2", func() compress.Codec { return New(2) })
	compress.Register("grib2-simple", func() compress.Codec { return &Codec{D: 2, Packing: Simple} })
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return "grib2" }

// Lossless implements compress.Codec.
func (c *Codec) Lossless() bool { return false }

func (c *Codec) levels() int {
	if c.Levels > 0 {
		return c.Levels
	}
	return 4
}

// maxQuant guards against quantized magnitudes that exceed exact float64
// integer range.
const maxQuant = int64(1) << 52

// Compress implements compress.Codec.
func (c *Codec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return nil, fmt.Errorf("grib2: shape %v does not match %d values", shape, len(data))
	}
	scale := math.Pow(10, float64(c.D))
	n := len(data)

	// Quantize; fill points carry the previous valid quantum so the wavelet
	// sees a smooth surface (their exact value is restored via the bitmap).
	q := make([]int64, n)
	bitmap := make([]byte, (n+7)/8)
	anyFill := false
	var last int64
	for i, v := range data {
		if c.HasFill && v == c.Fill {
			bitmap[i/8] |= 1 << (i % 8)
			q[i] = last
			anyFill = true
			continue
		}
		x := math.Round(float64(v) * scale)
		if x > float64(maxQuant) || x < -float64(maxQuant) {
			return nil, fmt.Errorf("grib2: value %v overflows quantizer at D=%d", v, c.D)
		}
		q[i] = int64(x)
		last = q[i]
	}

	var payload []byte
	if c.Packing == Simple {
		payload = packSimple(q)
	} else {
		// Per-level 2-D wavelet transform, then range coding.
		rows, cols := shape.NLat, shape.NLon
		for lev := 0; lev < shape.NLev; lev++ {
			slab := q[lev*rows*cols : (lev+1)*rows*cols]
			wavelet.Transform2D(slab, rows, cols, c.levels())
		}
		enc := entropy.NewEncoder(n)
		model := entropy.NewSignedModel()
		for _, v := range q {
			model.Encode(enc, v)
		}
		payload = enc.Flush()
	}

	out := compress.PutHeader(nil, compress.Header{CodecID: compress.IDGRIB2, Shape: shape})
	flags := byte(0)
	if anyFill {
		flags |= 1
	}
	if c.Packing == Simple {
		flags |= 2
	}
	out = append(out, flags, byte(int8(c.D)), byte(c.levels()))
	var fb [4]byte
	putU32 := func(v uint32) {
		fb[0], fb[1], fb[2], fb[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		out = append(out, fb[:]...)
	}
	putU32(math.Float32bits(c.Fill))
	if anyFill {
		out = append(out, bitmap...)
	}
	return append(out, payload...), nil
}

// packSimple implements GRIB2 template 5.0: offsets from the field minimum
// at a fixed bit width. Layout: ref int64 LE, width byte, packed bits.
func packSimple(q []int64) []byte {
	ref := q[0]
	hi := q[0]
	for _, v := range q {
		if v < ref {
			ref = v
		}
		if v > hi {
			hi = v
		}
	}
	span := uint64(hi - ref)
	width := uint(0)
	for 1<<width <= span && width < 63 {
		width++
	}
	w := bitstream.NewWriter(len(q)*int(width)/8 + 16)
	w.WriteBits(uint64(ref), 64)
	w.WriteBits(uint64(width), 8)
	for _, v := range q {
		w.WriteBits(uint64(v-ref), width)
	}
	return w.Bytes()
}

// unpackSimple inverts packSimple.
func unpackSimple(buf []byte, n int) ([]int64, error) {
	r := bitstream.NewReader(buf)
	ref := int64(r.ReadBits(64))
	width := uint(r.ReadBits(8))
	if width > 63 {
		return nil, fmt.Errorf("%w: bad packing width %d", compress.ErrCorrupt, width)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = ref + int64(r.ReadBits(width))
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", compress.ErrCorrupt, r.Err())
	}
	return out, nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(buf []byte) ([]float32, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.CodecID != compress.IDGRIB2 {
		return nil, fmt.Errorf("%w: not a grib2 stream", compress.ErrCorrupt)
	}
	if len(rest) < 7 {
		return nil, fmt.Errorf("%w: missing grib2 parameters", compress.ErrCorrupt)
	}
	flags := rest[0]
	d := int(int8(rest[1]))
	levels := int(rest[2])
	fill := math.Float32frombits(uint32(rest[3]) | uint32(rest[4])<<8 | uint32(rest[5])<<16 | uint32(rest[6])<<24)
	rest = rest[7:]

	n := h.Shape.Len()
	var bitmap []byte
	if flags&1 != 0 {
		need := (n + 7) / 8
		if len(rest) < need {
			return nil, fmt.Errorf("%w: truncated bitmap", compress.ErrCorrupt)
		}
		bitmap = rest[:need]
		rest = rest[need:]
	}

	if err := compress.CheckPlausible(n, len(rest)); err != nil {
		return nil, err
	}
	var q []int64
	if flags&2 != 0 { // simple packing
		var err error
		q, err = unpackSimple(rest, n)
		if err != nil {
			return nil, err
		}
	} else {
		dec := entropy.NewDecoder(rest)
		model := entropy.NewSignedModel()
		q = make([]int64, n)
		for i := range q {
			q[i] = model.Decode(dec)
			if i&0xfff == 0xfff && dec.Overrun() {
				return nil, fmt.Errorf("%w: truncated grib2 stream", compress.ErrCorrupt)
			}
		}
		rows, cols := h.Shape.NLat, h.Shape.NLon
		for lev := 0; lev < h.Shape.NLev; lev++ {
			slab := q[lev*rows*cols : (lev+1)*rows*cols]
			// Reconstruct the dims sequence Transform2D would have produced.
			dims := make([][2]int, 0, levels)
			r, cc := rows, cols
			for l := 0; l < levels && r >= 2 && cc >= 2; l++ {
				dims = append(dims, [2]int{r, cc})
				r = (r + 1) / 2
				cc = (cc + 1) / 2
			}
			wavelet.Inverse2D(slab, rows, cols, dims)
		}
	}

	inv := math.Pow(10, -float64(d))
	out := make([]float32, n)
	for i, v := range q {
		if bitmap != nil && bitmap[i/8]&(1<<(i%8)) != 0 {
			out[i] = fill
			continue
		}
		out[i] = float32(float64(v) * inv)
	}
	return out, nil
}

// MaxAbsoluteError returns the quantization half-step 0.5·10^-D — the
// codec's guaranteed pointwise error bound on non-fill values.
func (c *Codec) MaxAbsoluteError() float64 { return 0.5 * math.Pow(10, -float64(c.D)) }

// DForTarget returns the smallest decimal scale factor whose quantization
// error 0.5·10^-D stays below absErr, clamped to the codec's legal range.
// The paper tunes D per variable; experiments derive absErr from the
// variable's range or — as the paper ultimately did — from the ensemble
// spread ("we were only able to achieve the more competitive results ... by
// using the RMSZ ensemble test as a guide for choosing an optimal D").
func DForTarget(absErr float64) int {
	if absErr <= 0 || math.IsNaN(absErr) {
		return 20
	}
	d := int(math.Ceil(-math.Log10(2 * absErr)))
	if d < -20 {
		d = -20
	}
	if d > 20 {
		d = 20
	}
	return d
}
