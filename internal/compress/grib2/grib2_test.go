package grib2

import (
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/compress"
)

func smoothField(rows, cols, levs int, seed int64) ([]float32, compress.Shape) {
	rng := rand.New(rand.NewSource(seed))
	shape := compress.Shape{NLev: levs, NLat: rows, NLon: cols}
	data := make([]float32, shape.Len())
	for l := 0; l < levs; l++ {
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				idx := (l*rows+i)*cols + j
				data[idx] = float32(100*math.Sin(float64(i)/6)*math.Cos(float64(j)/9) +
					float64(l)*10 + rng.NormFloat64())
			}
		}
	}
	return data, shape
}

func TestQuantizationErrorBound(t *testing.T) {
	data, shape := smoothField(24, 48, 2, 1)
	for _, d := range []int{0, 1, 2, 3} {
		c := New(d)
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		bound := c.MaxAbsoluteError()
		for i := range data {
			// float32 output rounding adds up to one ulp of the value.
			slack := math.Abs(float64(data[i]))*1e-6 + 1e-9
			if e := math.Abs(float64(got[i] - data[i])); e > bound+slack {
				t.Fatalf("D=%d: error %v exceeds bound %v at %d", d, e, bound, i)
			}
		}
	}
}

func TestHigherDCostsMore(t *testing.T) {
	data, shape := smoothField(24, 48, 1, 2)
	var prev int
	for i, d := range []int{0, 2, 4} {
		c := New(d)
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(buf) <= prev {
			t.Fatalf("D=%d stream (%d bytes) not larger than coarser D (%d bytes)", d, len(buf), prev)
		}
		prev = len(buf)
	}
}

func TestFillValuesRestoredExactly(t *testing.T) {
	data, shape := smoothField(16, 16, 1, 3)
	const fill = float32(1e35)
	for i := 0; i < len(data); i += 7 {
		data[i] = fill
	}
	c := &Codec{D: 2, Fill: fill, HasFill: true}
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] == fill {
			if got[i] != fill {
				t.Fatalf("fill not restored at %d: %v", i, got[i])
			}
		} else if e := math.Abs(float64(got[i] - data[i])); e > 0.005001 {
			t.Fatalf("non-fill error %v at %d", e, i)
		}
	}
}

func TestSmoothFieldCompressesWell(t *testing.T) {
	data, shape := smoothField(48, 96, 1, 4)
	c := New(1)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	cr := compress.Ratio(len(buf), len(data))
	if cr > 0.5 {
		t.Fatalf("smooth field CR %v, expected < 0.5", cr)
	}
}

func TestNegativeD(t *testing.T) {
	// D=-1 quantizes to tens.
	data := []float32{1234, 5678, -910}
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: 3}
	c := New(-1)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if e := math.Abs(float64(got[i] - data[i])); e > 5.001 {
			t.Fatalf("D=-1 error %v at %d", e, i)
		}
		if math.Mod(float64(got[i]), 10) != 0 {
			t.Fatalf("D=-1 should produce multiples of 10, got %v", got[i])
		}
	}
}

func TestOverflowRejected(t *testing.T) {
	data := []float32{3e38}
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: 1}
	c := New(20)
	if _, err := c.Compress(data, shape); err == nil {
		t.Fatal("expected overflow error for huge value at D=20")
	}
}

func TestDForTarget(t *testing.T) {
	cases := []struct {
		absErr float64
		want   int
	}{
		{0.05, 1},   // 0.5·10^-1 = 0.05 ≤ 0.05
		{0.005, 2},  // 0.5·10^-2
		{0.5, 0},    // 0.5·10^0
		{50, -2},    // 0.5·10^2
		{5e-7, 6},   // 0.5·10^-6 = 5e-7, exactly on target
		{1e-30, 20}, // clamped
		{0, 20},     // degenerate
	}
	for _, cse := range cases {
		if got := DForTarget(cse.absErr); got != cse.want {
			t.Errorf("DForTarget(%v) = %d, want %d", cse.absErr, got, cse.want)
		}
	}
	// The returned D must actually satisfy the bound.
	for _, absErr := range []float64{0.05, 0.005, 0.5, 50, 5e-7} {
		d := DForTarget(absErr)
		if got := 0.5 * math.Pow(10, -float64(d)); got > absErr*(1+1e-12) {
			t.Errorf("D=%d gives error %v > target %v", d, got, absErr)
		}
	}
}

func TestLargeDynamicRangeFailureMode(t *testing.T) {
	// The paper's CCN3 observation: a variable spanning many decades under
	// absolute quantization crushes its small values to zero.
	n := 1024
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(math.Pow(10, float64(i%8)-4)) // 1e-4 .. 1e3
	}
	c := New(2) // resolves 0.005 — destroys 1e-4 values
	buf, _ := c.Compress(data, shape)
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	crushed := 0
	for i := range data {
		if data[i] <= 1e-3 && got[i] == 0 {
			crushed++
		}
	}
	if crushed == 0 {
		t.Fatal("expected small values to be crushed by absolute quantization")
	}
}

func TestSimplePackingRoundTrip(t *testing.T) {
	data, shape := smoothField(24, 48, 2, 9)
	c := &Codec{D: 2, Packing: Simple}
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	bound := c.MaxAbsoluteError()
	for i := range data {
		slack := math.Abs(float64(data[i]))*1e-6 + 1e-9
		if e := math.Abs(float64(got[i] - data[i])); e > bound+slack {
			t.Fatalf("simple packing error %v at %d", e, i)
		}
	}
}

func TestJPEG2000BeatsSimplePacking(t *testing.T) {
	// The wavelet + range-coder path must outperform fixed-width packing
	// on smooth data — that is the point of GRIB2's template 5.40.
	data, shape := smoothField(48, 96, 1, 10)
	wave := &Codec{D: 2}
	simple := &Codec{D: 2, Packing: Simple}
	bw, err := wave.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := simple.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if len(bw) >= len(bs) {
		t.Fatalf("wavelet path (%d bytes) did not beat simple packing (%d bytes)", len(bw), len(bs))
	}
}

func TestSimplePackingConstantField(t *testing.T) {
	data := []float32{5, 5, 5, 5}
	shape := compress.Shape{NLev: 1, NLat: 2, NLon: 2}
	c := &Codec{D: 1, Packing: Simple}
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 5 {
			t.Fatalf("constant field corrupted: %v", got[i])
		}
	}
}

func TestRegistry(t *testing.T) {
	c, err := compress.New("grib2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "grib2" {
		t.Fatalf("name %q", c.Name())
	}
}

func TestCorruptStream(t *testing.T) {
	data, shape := smoothField(8, 8, 1, 5)
	c := New(2)
	buf, _ := c.Compress(data, shape)
	if _, err := c.Decompress(buf[:10]); err == nil {
		t.Fatal("truncated stream should error")
	}
}

func BenchmarkCompressGRIB2(b *testing.B) {
	data, shape := smoothField(72, 144, 2, 6)
	c := New(2)
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, shape); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressGRIB2(b *testing.B) {
	data, shape := smoothField(72, 144, 2, 6)
	c := New(2)
	buf, _ := c.Compress(data, shape)
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}
