package compress_test

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"climcompress/internal/compress"
	_ "climcompress/internal/compress/nclossless"
)

// chunkField builds a deterministic smooth field.
func chunkField(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(math.Sin(float64(i) / 11))
	}
	return out
}

// TestFallbackChunksContract exercises the pooled whole-field adapter on a
// deflate-bound codec: contiguous ascending offsets covering the field,
// caller-buffer windows, and value identity with the materialized decode.
func TestFallbackChunksContract(t *testing.T) {
	c, err := compress.New("nc")
	if err != nil {
		t.Fatal(err)
	}
	if compress.Chunked(c) {
		t.Fatalf("nc unexpectedly implements ChunkDecoder; fallback untested")
	}
	shape := compress.Shape{NLev: 2, NLat: 5, NLon: 13}
	data := chunkField(shape.Len())
	buf, err := compress.CompressInto(c, nil, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range []int{0, 1, 17, 8192} {
		var chunk []float32
		if cl > 0 {
			chunk = make([]float32, cl)
		}
		next := 0
		err := compress.DecodeChunks(c, buf, chunk, func(off int, vals []float32) error {
			if off != next {
				return fmt.Errorf("offset %d, want %d", off, next)
			}
			if len(vals) == 0 {
				return fmt.Errorf("empty chunk at %d", off)
			}
			if cl > 0 && len(vals) > cl {
				return fmt.Errorf("chunk of %d exceeds caller buffer %d", len(vals), cl)
			}
			for j, v := range vals {
				if math.Float32bits(v) != math.Float32bits(data[off+j]) {
					return fmt.Errorf("value %d: %v != %v", off+j, v, data[off+j])
				}
				vals[j] = -1 // consumers may mutate yielded values
			}
			next = off + len(vals)
			return nil
		})
		if err != nil {
			t.Fatalf("chunk %d: %v", cl, err)
		}
		if next != shape.Len() {
			t.Fatalf("chunk %d: covered %d of %d points", cl, next, shape.Len())
		}
	}
	// Mutation through the yield must not poison pooled state for the next
	// decode.
	vals, err := compress.DecompressInto(c, nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float32bits(vals[i]) != math.Float32bits(data[i]) {
			t.Fatalf("post-mutation decode corrupt at %d", i)
		}
	}
}

// TestDecodeChunksYieldError pins that a yield error aborts the decode and
// comes back unwrapped.
func TestDecodeChunksYieldError(t *testing.T) {
	c, err := compress.New("nc")
	if err != nil {
		t.Fatal(err)
	}
	shape := compress.Shape{NLev: 1, NLat: 4, NLon: 8}
	buf, err := compress.CompressInto(c, nil, chunkField(shape.Len()), shape)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	calls := 0
	err = compress.DecodeChunks(c, buf, make([]float32, 8), func(off int, vals []float32) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("yield error not propagated: %v", err)
	}
	if calls != 1 {
		t.Fatalf("decode continued after yield error: %d calls", calls)
	}
}

// TestDecodeChunksCorrupt pins that stream validation still fires on the
// chunked path.
func TestDecodeChunksCorrupt(t *testing.T) {
	c, err := compress.New("nc")
	if err != nil {
		t.Fatal(err)
	}
	err = compress.DecodeChunks(c, []byte{1, 2, 3}, nil, func(off int, vals []float32) error { return nil })
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("corrupt stream err = %v, want ErrCorrupt", err)
	}
}

// TestFillMaskChunkedNative pins that wrapping a natively-chunked codec
// keeps the wrapper natively chunked.
func TestFillMaskChunkedNative(t *testing.T) {
	inner, err := compress.New("nc")
	if err != nil {
		t.Fatal(err)
	}
	if !compress.Chunked(compress.WithFill(inner, 7)) {
		t.Fatalf("fill-masked codec should implement ChunkDecoder")
	}
}
