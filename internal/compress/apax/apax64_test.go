package apax

import (
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/compress"
)

func makeData64(n int, seed int64) ([]float64, compress.Shape) {
	rng := rand.New(rand.NewSource(seed))
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i)/7)*50 + rng.NormFloat64() + 300
	}
	return data, shape
}

func TestApax64FixedRate(t *testing.T) {
	data, shape := makeData64(65536, 1)
	for _, rate := range []float64{2, 4, 5} {
		c := New(rate)
		buf, err := c.Compress64(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(len(buf)) / float64(8*len(data))
		want := 1 / rate
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rate %v: CR %v, want %v", rate, got, want)
		}
	}
}

func TestApax64RoundTripQuality(t *testing.T) {
	data, shape := makeData64(8192, 2)
	c := New(2)
	buf, err := c.Compress64(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress64(buf)
	if err != nil {
		t.Fatal(err)
	}
	// rate 2 on 64-bit data keeps ~31 mantissa bits of the block residual:
	// errors must be minuscule relative to the signal.
	for i := range data {
		if e := math.Abs(got[i] - data[i]); e > 1e-6 {
			t.Fatalf("error %v at %d", e, i)
		}
	}
}

func TestApax64MeanOnlyBlocks(t *testing.T) {
	// Constant blocks decode exactly (mean carries everything).
	n := BlockSize * 2
	data := make([]float64, n)
	for i := range data {
		data[i] = 42.5
	}
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	c := New(5)
	buf, err := c.Compress64(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress64(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 42.5 {
			t.Fatalf("constant block lost at %d: %v", i, got[i])
		}
	}
}

func TestApax64RejectsNarrowStream(t *testing.T) {
	data32, shape := makeData(1024, 3)
	buf, _ := New(4).Compress(data32, shape)
	if _, err := New(4).Decompress64(buf); err == nil {
		t.Fatal("Decompress64 should reject a 32-bit stream")
	}
	data64, shape64 := makeData64(1024, 3)
	buf64, _ := New(4).Compress64(data64, shape64)
	if _, err := New(4).Decompress(buf64); err == nil {
		t.Fatal("Decompress should reject a 64-bit stream")
	}
}

func BenchmarkCompressApax64(b *testing.B) {
	data, shape := makeData64(32768, 4)
	c := New(2)
	b.SetBytes(int64(8 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress64(data, shape); err != nil {
			b.Fatal(err)
		}
	}
}
