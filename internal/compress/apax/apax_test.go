package apax

import (
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/compress"
)

func makeData(n int, seed int64) ([]float32, compress.Shape) {
	rng := rand.New(rand.NewSource(seed))
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(math.Sin(float64(i)/7)*50 + rng.NormFloat64())
	}
	return data, shape
}

func TestFixedRateAchieved(t *testing.T) {
	data, shape := makeData(65536, 1)
	for _, rate := range []float64{2, 4, 5} {
		c := New(rate)
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		got := compress.Ratio(len(buf), len(data))
		want := 1 / rate
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rate %v: CR %v, want %v ± 0.01 (this is APAX's defining fixed-rate property)",
				rate, got, want)
		}
	}
}

func TestRoundTripQuality(t *testing.T) {
	data, shape := makeData(8192, 2)
	var lo, hi float32 = data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rangeX := float64(hi - lo)
	prevErr := 0.0
	for _, rate := range []float64{2, 4, 5} {
		c := New(rate)
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		var maxErr float64
		for i := range data {
			if e := math.Abs(float64(got[i] - data[i])); e > maxErr {
				maxErr = e
			}
		}
		nmax := maxErr / rangeX
		if nmax > 0.05 {
			t.Fatalf("rate %v: normalized max error %v too large", rate, nmax)
		}
		if nmax < prevErr {
			t.Fatalf("error should grow with rate: rate %v gave %v after %v", rate, nmax, prevErr)
		}
		prevErr = nmax
	}
}

func TestBlockAbsoluteErrorBound(t *testing.T) {
	// Error within each block must be bounded by blockmax · 2^(1-k); with
	// rate 2 (k ≈ 15) the bound is tiny even for wild magnitudes.
	rng := rand.New(rand.NewSource(3))
	n := 4096
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * math.Pow(10, float64(i/256%8-4)))
	}
	c := New(2)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < n; b += BlockSize {
		e := b + BlockSize
		if e > n {
			e = n
		}
		var blockMax, maxErr float64
		for i := b; i < e; i++ {
			if a := math.Abs(float64(data[i])); a > blockMax {
				blockMax = a
			}
			if er := math.Abs(float64(got[i] - data[i])); er > maxErr {
				maxErr = er
			}
		}
		// k ≥ 14 at rate 2, so bound ≈ blockMax·2^-13 with margin.
		if blockMax > 0 && maxErr > blockMax*math.Ldexp(1, -12) {
			t.Fatalf("block %d: error %v exceeds bound for blockmax %v", b, maxErr, blockMax)
		}
	}
}

func TestZerosPreserved(t *testing.T) {
	n := 1024
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	data := make([]float32, n)
	c := New(4)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("zero block not preserved at %d: %v", i, v)
		}
	}
}

func TestMixedMagnitudeBlocks(t *testing.T) {
	// A block mixing 1e-8 and 1e3 values: small values are crushed to the
	// block quantum (APAX's known failure mode on huge dynamic range), but
	// large values must stay accurate.
	n := BlockSize * 2
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	data := make([]float32, n)
	for i := range data {
		if i%2 == 0 {
			data[i] = 1e3 + float32(i)
		} else {
			data[i] = 1e-8
		}
	}
	c := New(4)
	buf, _ := c.Compress(data, shape)
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 2 {
		rel := math.Abs(float64(got[i]-data[i])) / float64(data[i])
		if rel > 0.02 {
			t.Fatalf("large value %v reconstructed as %v", data[i], got[i])
		}
	}
}

func TestShortTailBlock(t *testing.T) {
	n := BlockSize + 7 // forces a 7-sample tail block
	data, _ := makeData(n, 4)
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	c := New(2)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("length %d, want %d", len(got), n)
	}
}

func TestRegistryVariants(t *testing.T) {
	for _, name := range []string{"apax-2", "apax-4", "apax-5", "apax-6", "apax-7"} {
		c, err := compress.New(name)
		if err != nil {
			t.Fatalf("registry missing %s: %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("name mismatch: %q vs %q", c.Name(), name)
		}
	}
}

func TestCorruptStream(t *testing.T) {
	data, shape := makeData(1024, 5)
	c := New(4)
	buf, _ := c.Compress(data, shape)
	if _, err := c.Decompress(buf[:8]); err == nil {
		t.Fatal("truncated stream should error")
	}
	bad := append([]byte(nil), buf...)
	bad[0] = compress.IDFPZip
	if _, err := c.Decompress(bad); err == nil {
		t.Fatal("wrong codec ID should error")
	}
}

func TestBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0.5) should panic")
		}
	}()
	New(0.5)
}

func BenchmarkCompressAPAX4(b *testing.B) {
	data, shape := makeData(32768, 7)
	c := New(4)
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, shape); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressAPAX4(b *testing.B) {
	data, shape := makeData(32768, 7)
	c := New(4)
	buf, _ := c.Compress(data, shape)
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}
