package apax

import (
	"fmt"
	"math"

	"climcompress/internal/bitstream"
	"climcompress/internal/compress"
)

// Double-precision side information: 11-bit biased exponent, 6-bit mantissa
// width, 64-bit block mean.
const (
	expBits64     = 11
	widthBits64   = 6
	meanBits64    = 64
	maxMantissa64 = 56
	overhead64    = expBits64 + widthBits64 + meanBits64
)

// rawExp64 extracts the biased IEEE-754 exponent of |v|.
func rawExp64(v float64) int {
	return int(math.Float64bits(v)>>52) & 0x7ff
}

// Compress64 packs double-precision values at the codec's fixed rate
// (relative to 64-bit samples, so rate 2 stores 32 bits per sample).
func (c *Codec) Compress64(data []float64, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return nil, fmt.Errorf("apax64: shape %v does not match %d values", shape, len(data))
	}
	bs := c.blockSize()
	targetBits := 64 / c.Rate

	w := bitstream.NewWriter(int(float64(len(data))*targetBits/8) + 64)
	budget := 0.0
	for start := 0; start < len(data); start += bs {
		end := start + bs
		if end > len(data) {
			end = len(data)
		}
		block := data[start:end]
		n := len(block)
		budget += targetBits * float64(n)

		var sum float64
		for _, v := range block {
			sum += v
		}
		mean := sum / float64(n)

		e := 0
		for _, v := range block {
			if ex := rawExp64(v - mean); ex > e {
				e = ex
			}
		}
		k := int((budget - overhead64) / float64(n))
		if k < 0 {
			k = 0
		}
		if k > maxMantissa64 {
			k = maxMantissa64
		}
		budget -= float64(overhead64) + float64(k*n)

		w.WriteBits(uint64(e), expBits64)
		w.WriteBits(uint64(k), widthBits64)
		w.WriteBits(math.Float64bits(mean), meanBits64)
		if k == 0 {
			continue
		}
		// q = round((x−μ) · 2^(k-1-(e-1022))) ∈ [-2^(k-1), 2^(k-1)-1]
		scale := math.Ldexp(1, k-1-(e-1022))
		hi := int64(1)<<(k-1) - 1
		lo := -(int64(1) << (k - 1))
		for _, v := range block {
			q := int64(math.RoundToEven((v - mean) * scale))
			if q > hi {
				q = hi
			}
			if q < lo {
				q = lo
			}
			w.WriteBits(uint64(q-lo), uint(k))
		}
	}
	out := compress.PutHeader(nil, compress.Header{CodecID: compress.IDAPAX, Shape: shape})
	out = append(out, byte(math.Round(c.Rate*10)), byte(bs), 64) // trailing 64 marks wide variant
	return append(out, w.Bytes()...), nil
}

// Decompress64 reconstructs double-precision values.
func (c *Codec) Decompress64(buf []byte) ([]float64, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.CodecID != compress.IDAPAX {
		return nil, fmt.Errorf("%w: not an apax stream", compress.ErrCorrupt)
	}
	if len(rest) < 3 || rest[2] != 64 {
		return nil, fmt.Errorf("%w: not an apax64 stream", compress.ErrCorrupt)
	}
	bs := int(rest[1])
	if bs <= 0 {
		return nil, fmt.Errorf("%w: bad block size", compress.ErrCorrupt)
	}
	n := h.Shape.Len()
	if err := compress.CheckPlausible(n, len(rest)-3); err != nil {
		return nil, err
	}
	r := bitstream.NewReader(rest[3:])
	out := make([]float64, n)
	for start := 0; start < n; start += bs {
		end := start + bs
		if end > n {
			end = n
		}
		e := int(r.ReadBits(expBits64))
		k := int(r.ReadBits(widthBits64))
		mean := math.Float64frombits(r.ReadBits(meanBits64))
		if k == 0 {
			for i := start; i < end; i++ {
				out[i] = mean
			}
			continue
		}
		lo := -(int64(1) << (k - 1))
		inv := math.Ldexp(1, (e-1022)-(k-1))
		for i := start; i < end; i++ {
			q := int64(r.ReadBits(uint(k))) + lo
			out[i] = mean + float64(q)*inv
		}
		if r.Err() != nil { // fail fast on truncated streams
			return nil, fmt.Errorf("%w: %v", compress.ErrCorrupt, r.Err())
		}
	}
	return out, nil
}
