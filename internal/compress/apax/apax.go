// Package apax reimplements the defining behaviour of Samplify's APAX
// encoder as described in the paper and in Wegener's patent: a fixed-rate
// block floating-point codec. Samples are processed in blocks; each block
// stores a shared exponent and fixed-width mantissas whose width is chosen
// by a rate-control loop so the stream hits the user's target compression
// rate exactly, with quality varying per block ("fixed CR" mode, the
// property the paper highlights as unique to APAX). The quantization bounds
// the absolute error relative to each block's peak magnitude, matching the
// paper's observation that APAX bounds absolute error while fpzip bounds
// relative error.
package apax

import (
	"fmt"
	"math"
	"sync"

	"climcompress/internal/bitstream"
	"climcompress/internal/compress"
)

// BlockSize is the number of samples sharing one exponent. 64 mirrors
// typical block floating-point designs; the ablation benchmark varies it.
const BlockSize = 64

// Codec is a fixed-rate APAX-style encoder.
type Codec struct {
	// Rate is the target compression rate (2 means 2:1, i.e. 16 bits per
	// 32-bit sample).
	Rate float64
	// Block overrides BlockSize when positive (used by ablation benches).
	Block int
}

// New returns a codec with the given fixed compression rate.
func New(rate float64) *Codec {
	if rate < 1 || rate > 16 {
		panic(fmt.Sprintf("apax: rate %v out of [1, 16]", rate))
	}
	return &Codec{Rate: rate}
}

func init() {
	for _, r := range []float64{2, 4, 5, 6, 7} {
		r := r
		compress.Register(fmt.Sprintf("apax-%g", r), func() compress.Codec { return New(r) })
	}
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return fmt.Sprintf("apax-%g", c.Rate) }

// Lossless implements compress.Codec. The Go reimplementation is always
// lossy; like the original (whose lossless mode does not cover 64-bit
// data), lossless operation is not the codec's purpose.
func (c *Codec) Lossless() bool { return false }

func (c *Codec) blockSize() int {
	if c.Block > 0 {
		return c.Block
	}
	return BlockSize
}

const (
	expBits     = 8
	widthBits   = 5
	meanBits    = 32
	maxMantissa = 28
	// overhead is the per-block side information: shared exponent, mantissa
	// width, and the block mean. Removing the block mean before
	// quantization is the codec's stand-in for APAX's attenuator/predictive
	// stage: the error then scales with the local signal variation rather
	// than its absolute offset.
	overhead = expBits + widthBits + meanBits
)

// rawExp extracts the biased IEEE-754 exponent of |v|.
func rawExp(v float32) int {
	return int(math.Float32bits(v)>>23) & 0xff
}

// writerPool holds the reusable bit writers; APAX needs no other scratch.
var writerPool = sync.Pool{New: func() any { return bitstream.NewWriter(0) }}

// Compress implements compress.Codec.
func (c *Codec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	return c.CompressInto(nil, data, shape)
}

// CompressInto implements compress.AppendCodec with a pooled bit writer; the
// appended stream is bit-identical to Compress's.
func (c *Codec) CompressInto(dst []byte, data []float32, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return dst, fmt.Errorf("apax: shape %v does not match %d values", shape, len(data))
	}
	bs := c.blockSize()
	targetBits := 32 / c.Rate

	w := writerPool.Get().(*bitstream.Writer)
	defer writerPool.Put(w)
	w.Reset()
	budget := 0.0
	for start := 0; start < len(data); start += bs {
		end := start + bs
		if end > len(data) {
			end = len(data)
		}
		block := data[start:end]
		n := len(block)
		budget += targetBits * float64(n)

		// Block mean (attenuation stage), stored as float32 so encoder and
		// decoder subtract the identical value.
		var sum float64
		for _, v := range block {
			sum += float64(v)
		}
		mean := float32(sum / float64(n))

		// Shared exponent: the maximum biased exponent of the residuals.
		e := 0
		for _, v := range block {
			if ex := rawExp(v - mean); ex > e {
				e = ex
			}
		}
		// Mantissa width from the rate-control budget.
		k := int((budget - overhead) / float64(n))
		if k < 0 {
			k = 0
		}
		if k > maxMantissa {
			k = maxMantissa
		}
		budget -= float64(overhead) + float64(k*n)

		w.WriteBits(uint64(e), expBits)
		w.WriteBits(uint64(k), widthBits)
		w.WriteBits(uint64(math.Float32bits(mean)), meanBits)
		if k == 0 {
			continue // block decodes to the mean
		}
		// q = round((x−μ) · 2^(k-1-(e-126))) ∈ [-2^(k-1), 2^(k-1)-1]
		scale := math.Ldexp(1, k-1-(e-126))
		hi := int64(1)<<(k-1) - 1
		lo := -(int64(1) << (k - 1))
		for _, v := range block {
			q := int64(math.RoundToEven(float64(v-mean) * scale))
			if q > hi {
				q = hi
			}
			if q < lo {
				q = lo
			}
			w.WriteBits(uint64(q-lo), uint(k))
		}
	}

	dst = compress.PutHeader(dst, compress.Header{CodecID: compress.IDAPAX, Shape: shape})
	dst = append(dst, byte(math.Round(c.Rate*10)), byte(bs), 32) // trailing 32 marks the single-precision variant
	return w.AppendTo(dst), nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(buf []byte) ([]float32, error) {
	return c.DecompressInto(nil, buf)
}

// DecompressInto implements compress.AppendCodec, reconstructing into dst's
// backing array when its capacity suffices.
func (c *Codec) DecompressInto(dst []float32, buf []byte) ([]float32, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return dst, err
	}
	if h.CodecID != compress.IDAPAX {
		return dst, fmt.Errorf("%w: not an apax stream", compress.ErrCorrupt)
	}
	if len(rest) < 3 {
		return dst, fmt.Errorf("%w: missing apax parameters", compress.ErrCorrupt)
	}
	if rest[2] != 32 {
		return dst, fmt.Errorf("%w: not a single-precision apax stream", compress.ErrCorrupt)
	}
	bs := int(rest[1])
	if bs <= 0 {
		return dst, fmt.Errorf("%w: bad block size", compress.ErrCorrupt)
	}
	n := h.Shape.Len()
	// Even zero-mantissa blocks store 45 bits of side information each.
	if err := compress.CheckPlausible(n, len(rest)-3); err != nil {
		return dst, err
	}
	var r bitstream.Reader
	r.Reset(rest[3:])
	out := compress.GrowFloats(dst, n)
	for start := 0; start < n; start += bs {
		end := start + bs
		if end > n {
			end = n
		}
		e := int(r.ReadBits(expBits))
		k := int(r.ReadBits(widthBits))
		mean := math.Float32frombits(uint32(r.ReadBits(meanBits)))
		if k == 0 {
			for i := start; i < end; i++ {
				out[i] = mean
			}
			continue
		}
		lo := -(int64(1) << (k - 1))
		inv := math.Ldexp(1, (e-126)-(k-1))
		for i := start; i < end; i++ {
			q := int64(r.ReadBits(uint(k))) + lo
			out[i] = mean + float32(float64(q)*inv)
		}
		if r.Err() != nil { // fail fast on truncated streams
			return dst, fmt.Errorf("%w: %v", compress.ErrCorrupt, r.Err())
		}
	}
	return out, nil
}

// DecodeChunks implements compress.ChunkDecoder natively: blocks are
// dequantized straight off the bit reader into the chunk buffer, which is
// flushed whenever the next block would not fit. The arithmetic is the
// same expression sequence as DecompressInto, so chunked values are
// bit-identical to the materialized ones.
func (c *Codec) DecodeChunks(compressed []byte, chunk []float32, yield func(off int, vals []float32) error) error {
	h, rest, err := compress.ParseHeader(compressed)
	if err != nil {
		return err
	}
	if h.CodecID != compress.IDAPAX {
		return fmt.Errorf("%w: not an apax stream", compress.ErrCorrupt)
	}
	if len(rest) < 3 {
		return fmt.Errorf("%w: missing apax parameters", compress.ErrCorrupt)
	}
	if rest[2] != 32 {
		return fmt.Errorf("%w: not a single-precision apax stream", compress.ErrCorrupt)
	}
	bs := int(rest[1])
	if bs <= 0 {
		return fmt.Errorf("%w: bad block size", compress.ErrCorrupt)
	}
	n := h.Shape.Len()
	if err := compress.CheckPlausible(n, len(rest)-3); err != nil {
		return err
	}
	// Blocks decode whole, so the working buffer must hold at least one.
	if len(chunk) < bs {
		want := compress.DefaultChunkLen
		if want < bs {
			want = bs
		}
		chunk = compress.GetFloats(want)
		defer compress.PutFloats(chunk)
	}
	var r bitstream.Reader
	r.Reset(rest[3:])
	base, w := 0, 0
	for start := 0; start < n; start += bs {
		end := start + bs
		if end > n {
			end = n
		}
		bn := end - start
		if w+bn > len(chunk) {
			if err := yield(base, chunk[:w]); err != nil {
				return err
			}
			base += w
			w = 0
		}
		out := chunk[w : w+bn]
		e := int(r.ReadBits(expBits))
		k := int(r.ReadBits(widthBits))
		mean := math.Float32frombits(uint32(r.ReadBits(meanBits)))
		if k == 0 {
			for i := range out {
				out[i] = mean
			}
			w += bn
			continue
		}
		lo := -(int64(1) << (k - 1))
		inv := math.Ldexp(1, (e-126)-(k-1))
		for i := range out {
			q := int64(r.ReadBits(uint(k))) + lo
			out[i] = mean + float32(float64(q)*inv)
		}
		if r.Err() != nil { // fail fast on truncated streams
			return fmt.Errorf("%w: %v", compress.ErrCorrupt, r.Err())
		}
		w += bn
	}
	if w > 0 {
		if err := yield(base, chunk[:w]); err != nil {
			return err
		}
	}
	return nil
}

// NominalCR returns the codec's nominal compression ratio (1/Rate); the
// achieved ratio matches it up to the fixed stream header.
func (c *Codec) NominalCR() float64 { return 1 / c.Rate }
