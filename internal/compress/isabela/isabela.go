// Package isabela reimplements the ISABELA compressor (Lakshminarasimhan
// et al., Euro-Par 2011): data is processed in fixed windows, each window is
// sorted (storing the permutation index) so the value curve becomes smooth
// and monotone, the sorted curve is approximated by a least-squares cubic
// B-spline, and points whose per-point relative error exceeds the user's
// tolerance are patched with exact values. Because each window decodes
// independently, subsets of the data can be reconstructed without touching
// the rest — the random-access property the paper highlights.
//
// As the paper observes for single-precision data, the sort index
// (⌈log2 window⌉ bits per point) dominates the payload, which is why the
// three tolerance variants' compression ratios are nearly identical.
package isabela

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"climcompress/internal/bitstream"
	"climcompress/internal/bspline"
	"climcompress/internal/compress"
)

// DefaultWindow is the window size recommended by the ISABELA authors and
// used in the paper.
const DefaultWindow = 1024

// DefaultNCoef is the number of B-spline coefficients per window.
const DefaultNCoef = 30

// Codec is an ISABELA-style sort-and-spline coder.
type Codec struct {
	// RelErr is the per-point relative error tolerance in percent
	// (the paper evaluates 1.0, 0.5 and 0.1).
	RelErr float64
	// Window is the sort window size (DefaultWindow if 0).
	Window int
	// NCoef is the spline coefficient count per window (DefaultNCoef if 0).
	NCoef int
}

// New returns a codec with the given percent relative-error tolerance.
func New(relErrPercent float64) *Codec {
	if relErrPercent <= 0 {
		panic(fmt.Sprintf("isabela: relative error %v must be positive", relErrPercent))
	}
	return &Codec{RelErr: relErrPercent}
}

func init() {
	for _, e := range []float64{1.0, 0.5, 0.1} {
		e := e
		compress.Register(fmt.Sprintf("isa-%g", e), func() compress.Codec { return New(e) })
	}
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return fmt.Sprintf("isa-%g", c.RelErr) }

// Lossless implements compress.Codec: ISABELA has no lossless mode
// (Table 1), which forces the hybrid method to fall back to NetCDF-4.
func (c *Codec) Lossless() bool { return false }

func (c *Codec) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return DefaultWindow
}

func (c *Codec) ncoef() int {
	if c.NCoef > 0 {
		return c.NCoef
	}
	return DefaultNCoef
}

// indexBits returns the bits needed for a permutation index in an n-window.
func indexBits(n int) uint {
	b := uint(1)
	for 1<<b < n {
		b++
	}
	return b
}

// isaScratch is the reusable working set of one Compress or Decompress
// call: the bit writer, the per-window sort and spline buffers, and the
// decoder-side permutation/correction buffers.
type isaScratch struct {
	w         *bitstream.Writer
	perm      []int
	keys      []uint64
	sortBuf   []uint64
	sorted    []float64
	rec       []float64
	coefs     []float64
	corrected []bool
}

var scratchPool = sync.Pool{New: func() any {
	return &isaScratch{w: bitstream.NewWriter(0)}
}}

// grow sizes the per-window buffers for windows of up to wsize points.
func (s *isaScratch) grow(wsize int) {
	if cap(s.perm) < wsize {
		s.perm = make([]int, wsize)
	}
	if cap(s.keys) < wsize {
		s.keys = make([]uint64, wsize)
	}
	if cap(s.sortBuf) < wsize {
		s.sortBuf = make([]uint64, wsize)
	}
	if cap(s.sorted) < wsize {
		s.sorted = make([]float64, wsize)
	}
	if cap(s.corrected) < wsize {
		s.corrected = make([]bool, wsize)
	}
}

// Compress implements compress.Codec.
func (c *Codec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	return c.CompressInto(nil, data, shape)
}

// CompressInto implements compress.AppendCodec with pooled scratch; the
// appended stream is bit-identical to Compress's.
func (c *Codec) CompressInto(dst []byte, data []float32, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return dst, fmt.Errorf("isabela: shape %v does not match %d values", shape, len(data))
	}
	wsize := c.window()
	ncoef := c.ncoef()
	// The tolerance travels in the stream as basis points; derive the
	// working value the same way the decoder will, so the correction
	// quantizer is bit-identical on both sides.
	basisPoints := math.Round(c.RelErr * 100)
	tol := basisPoints / 100 / 100

	s := scratchPool.Get().(*isaScratch)
	defer scratchPool.Put(s)
	s.grow(wsize)
	w := s.w
	w.Reset()
	perm := s.perm[:0]
	keys := s.keys[:0]
	scratch := s.sortBuf[:0]
	sorted := s.sorted[:0]
	rec := s.rec[:0]

	for start := 0; start < len(data); start += wsize {
		end := start + wsize
		if end > len(data) {
			end = len(data)
		}
		block := data[start:end]
		n := len(block)
		nc := ncoef
		if n < 2*nc {
			nc = n / 2
		}
		if nc < 4 {
			// Window too small for a spline: store raw.
			w.WriteBit(1)
			for _, v := range block {
				w.WriteBits(uint64(math.Float32bits(v)), 32)
			}
			continue
		}
		w.WriteBit(0)

		perm = sortPermutation(block, perm[:n], keys[:n], scratch[:n])
		sorted = sorted[:n]
		for i, p := range perm {
			sorted[i] = float64(block[p])
		}

		coefs, err := bspline.FitInto(s.coefs[:0], sorted, nc)
		if err != nil {
			return dst, fmt.Errorf("isabela: %w", err)
		}
		s.coefs = coefs[:0]
		rec = bspline.EvalAll(coefs, n, rec[:0])
		s.rec = rec[:0]

		// Emit: coefficient count, coefficients, permutation, correction
		// bitmap, then exact values for out-of-tolerance points.
		w.WriteBits(uint64(nc), 16)
		for _, cf := range coefs {
			w.WriteBits(uint64(math.Float32bits(float32(cf))), 32)
		}
		ib := indexBits(n)
		for _, p := range perm {
			w.WriteBits(uint64(p), ib)
		}
		for i := 0; i < n; i++ {
			approx := float32(rec[i])
			if withinRel(sorted[i], float64(approx), tol) {
				w.WriteBit(0)
			} else {
				w.WriteBit(1)
			}
		}
		// Corrections: a quantized error delta when a few gamma-coded bits
		// restore the tolerance (ISABELA's error encoding), or an exact
		// escape for points the spline misses badly (zero crossings).
		for i := 0; i < n; i++ {
			approx := float32(rec[i])
			if withinRel(sorted[i], float64(approx), tol) {
				continue
			}
			q, ok := quantizeCorrection(sorted[i], approx, tol)
			if ok {
				w.WriteBit(0)
				w.WriteEliasGamma(zigzag(q) + 1)
			} else {
				w.WriteBit(1)
				w.WriteBits(uint64(math.Float32bits(float32(sorted[i]))), 32)
			}
		}
	}

	dst = compress.PutHeader(dst, compress.Header{CodecID: compress.IDISABELA, Shape: shape})
	var meta [6]byte
	putU16 := func(off int, v uint16) { meta[off] = byte(v); meta[off+1] = byte(v >> 8) }
	putU16(0, uint16(wsize))
	putU16(2, uint16(ncoef))
	putU16(4, uint16(basisPoints)) // tolerance in basis points
	dst = append(dst, meta[:]...)
	return w.AppendTo(dst), nil
}

// sortPermutation fills perm with the stable sort-by-value permutation of
// block. The sort index is ISABELA's dominant cost, so instead of a
// comparator-driven stable sort the window is sorted as packed integer keys:
// the float32 bits mapped through the usual monotone flip (sign bit set →
// bits inverted, else sign bit ORed in) in the high word and the original
// index in the low word. The index tie-break reproduces stability exactly;
// −0 is canonicalized to +0 first since the two compare equal as floats but
// differ in bits. NaNs have no consistent comparator order, so any NaN in
// the window falls back to the comparator sort that produced the seed
// streams.
func sortPermutation(block []float32, perm []int, keys, scratch []uint64) []int {
	nan := false
	for i, v := range block {
		if v != v {
			nan = true
			break
		}
		b := math.Float32bits(v)
		if b == 0x80000000 { // -0 sorts identically to +0
			b = 0
		}
		if b&0x80000000 != 0 {
			b = ^b
		} else {
			b |= 0x80000000
		}
		keys[i] = uint64(b)<<32 | uint64(uint32(i))
	}
	if nan {
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(a, b int) bool { return block[perm[a]] < block[perm[b]] })
		return perm
	}
	radixSort(keys, scratch)
	for i, k := range keys {
		perm[i] = int(uint32(k))
	}
	return perm
}

// radixSort sorts keys ascending with a byte-wise LSD counting sort,
// skipping passes whose digit column is constant. Ascending uint64 order is
// unique, so the result is identical to a comparison sort; it just avoids
// pdqsort's branchy comparisons in the per-window hot loop.
func radixSort(keys, scratch []uint64) {
	n := len(keys)
	if n < 2 {
		return
	}
	var counts [8][256]int
	for _, k := range keys {
		for d := 0; d < 8; d++ {
			counts[d][byte(k>>(8*d))]++
		}
	}
	src, dst := keys, scratch[:n]
	for d := 0; d < 8; d++ {
		c := &counts[d]
		if c[byte(src[0]>>(8*d))] == n {
			continue // all keys share this digit
		}
		sum := 0
		for v := 0; v < 256; v++ {
			c[v], sum = sum, sum+c[v]
		}
		for _, k := range src {
			digit := byte(k >> (8 * d))
			dst[c[digit]] = k
			c[digit]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// withinRel reports whether approx is within the relative tolerance of
// exact. An exact zero requires an exact reconstruction.
func withinRel(exact, approx, tol float64) bool {
	if exact == 0 {
		return approx == 0
	}
	return math.Abs(approx-exact) <= tol*math.Abs(exact)
}

// zigzag maps signed to unsigned with small magnitudes first.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// correctionStep is the quantization step for error corrections, derived
// from the (decoder-visible) approximation so both sides agree.
func correctionStep(approx float32, tol float64) float64 {
	return tol * math.Abs(float64(approx))
}

// applyCorrection reconstructs the corrected value; shared by encoder
// verification and decoder so the arithmetic is bit-identical.
func applyCorrection(approx float32, q int64, tol float64) float32 {
	return float32(float64(approx) + float64(q)*correctionStep(approx, tol))
}

// quantizeCorrection finds a small integer q whose correction brings approx
// within tolerance of exact; ok is false when the encoder must escape to an
// exact value instead.
func quantizeCorrection(exact float64, approx float32, tol float64) (int64, bool) {
	step := correctionStep(approx, tol)
	if step <= 0 || exact == 0 {
		return 0, false
	}
	q := int64(math.Round((exact - float64(approx)) / step))
	if q > 1<<20 || q < -(1<<20) {
		return 0, false
	}
	if withinRel(exact, float64(applyCorrection(approx, q, tol)), tol) {
		return q, true
	}
	return 0, false
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(buf []byte) ([]float32, error) {
	return c.DecompressInto(nil, buf)
}

// DecompressInto implements compress.AppendCodec, reconstructing into dst's
// backing array when its capacity suffices.
func (c *Codec) DecompressInto(dst []float32, buf []byte) ([]float32, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return dst, err
	}
	if h.CodecID != compress.IDISABELA {
		return dst, fmt.Errorf("%w: not an isabela stream", compress.ErrCorrupt)
	}
	if len(rest) < 6 {
		return dst, fmt.Errorf("%w: missing isabela parameters", compress.ErrCorrupt)
	}
	wsize := int(rest[0]) | int(rest[1])<<8
	if wsize <= 0 {
		return dst, fmt.Errorf("%w: bad window", compress.ErrCorrupt)
	}
	// Tolerance is stored in basis points (RelErr·100) and must round-trip
	// exactly so encoder and decoder quantize corrections identically.
	tol := float64(int(rest[4])|int(rest[5])<<8) / 100 / 100

	var r bitstream.Reader
	r.Reset(rest[6:])
	n := h.Shape.Len()
	// ISABELA stores at least the sort index (≈10 bits/point); far smaller
	// payloads are corrupt.
	if err := compress.CheckPlausible(n, len(rest)-6); err != nil {
		return dst, err
	}
	s := scratchPool.Get().(*isaScratch)
	defer scratchPool.Put(s)
	s.grow(wsize)
	out := compress.GrowFloats(dst, n)
	rec := s.rec[:0]

	for start := 0; start < n; start += wsize {
		end := start + wsize
		if end > n {
			end = n
		}
		bn := end - start
		if r.ReadBit() == 1 { // raw window
			for i := start; i < end; i++ {
				out[i] = math.Float32frombits(uint32(r.ReadBits(32)))
			}
			continue
		}
		nc := int(r.ReadBits(16))
		if nc < 4 || nc > bn {
			return dst, fmt.Errorf("%w: bad coefficient count %d", compress.ErrCorrupt, nc)
		}
		if cap(s.coefs) < nc {
			s.coefs = make([]float64, nc)
		}
		coefs := s.coefs[:nc]
		for i := range coefs {
			coefs[i] = float64(math.Float32frombits(uint32(r.ReadBits(32))))
		}
		ib := indexBits(bn)
		perm := s.perm[:bn]
		for i := range perm {
			p := int(r.ReadBits(ib))
			if p >= bn {
				return dst, fmt.Errorf("%w: permutation index out of range", compress.ErrCorrupt)
			}
			perm[i] = p
		}
		rec = bspline.EvalAll(coefs, bn, rec[:0])
		s.rec = rec[:0]
		corrected := s.corrected[:bn]
		for i := 0; i < bn; i++ {
			corrected[i] = r.ReadBit() == 1
		}
		for i := 0; i < bn; i++ {
			v := float32(rec[i])
			if corrected[i] {
				if r.ReadBit() == 1 { // exact escape
					v = math.Float32frombits(uint32(r.ReadBits(32)))
				} else {
					q := unzigzag(r.ReadEliasGamma() - 1)
					v = applyCorrection(v, q, tol)
				}
			}
			out[start+perm[i]] = v
		}
		if r.Err() != nil { // fail fast on truncated streams
			return dst, fmt.Errorf("%w: %v", compress.ErrCorrupt, r.Err())
		}
	}
	return out, nil
}

// MaxRelativeError returns the guaranteed per-point relative error bound
// (as a fraction, not percent).
func (c *Codec) MaxRelativeError() float64 { return c.RelErr / 100 }
