package isabela

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"climcompress/internal/compress"
)

func noisyData(n int, seed int64) ([]float32, compress.Shape) {
	rng := rand.New(rand.NewSource(seed))
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(20*math.Sin(float64(i)/50) + 5*rng.NormFloat64() + 40)
	}
	return data, shape
}

func TestRelativeErrorGuarantee(t *testing.T) {
	data, shape := noisyData(4096, 1)
	for _, pct := range []float64{1.0, 0.5, 0.1} {
		c := New(pct)
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		tol := pct / 100
		for i := range data {
			if data[i] == 0 {
				if got[i] != 0 {
					t.Fatalf("isa-%g: zero not preserved at %d", pct, i)
				}
				continue
			}
			rel := math.Abs(float64(got[i]-data[i])) / math.Abs(float64(data[i]))
			// float32 storage of corrections costs ~1e-7 extra slack.
			if rel > tol+1e-6 {
				t.Fatalf("isa-%g: relative error %v exceeds %v at %d (%v -> %v)",
					pct, rel, tol, i, data[i], got[i])
			}
		}
	}
}

func TestTighterToleranceCostsMore(t *testing.T) {
	data, shape := noisyData(8192, 2)
	var prev int
	for i, pct := range []float64{1.0, 0.5, 0.1} {
		c := New(pct)
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(buf) < prev {
			t.Fatalf("isa-%g produced smaller stream (%d) than looser tolerance (%d)", pct, len(buf), prev)
		}
		prev = len(buf)
	}
}

func TestSortIndexDominatesPayload(t *testing.T) {
	// The paper's observation: for single precision, the three variants'
	// CRs are close because the 10-bit/point sort index dominates.
	data, shape := noisyData(8192, 3)
	crs := make([]float64, 0, 3)
	for _, pct := range []float64{1.0, 0.5, 0.1} {
		c := New(pct)
		buf, _ := c.Compress(data, shape)
		crs = append(crs, compress.Ratio(len(buf), len(data)))
	}
	for _, cr := range crs {
		if cr < 10.0/32.0 {
			t.Fatalf("CR %v below the sort-index floor 10/32", cr)
		}
	}
	if crs[2]-crs[0] > 0.35 {
		t.Fatalf("variant CRs too far apart: %v", crs)
	}
}

func TestWindowIndependence(t *testing.T) {
	// Decoding must not leak state across windows: compressing two windows
	// separately equals compressing them together.
	data, _ := noisyData(2048, 4)
	c := New(0.5)
	whole, err := c.Compress(data, compress.Shape{NLev: 1, NLat: 1, NLon: 2048})
	if err != nil {
		t.Fatal(err)
	}
	gotWhole, err := c.Decompress(whole)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Compress(data[:1024], compress.Shape{NLev: 1, NLat: 1, NLon: 1024})
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := c.Decompress(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if gotWhole[i] != gotA[i] {
			t.Fatalf("window decode differs at %d: %v vs %v", i, gotWhole[i], gotA[i])
		}
	}
}

func TestShortWindowRawFallback(t *testing.T) {
	data := []float32{3, 1, 4, 1, 5}
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: 5}
	c := New(1.0)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("raw fallback not exact at %d", i)
		}
	}
}

func TestTailWindow(t *testing.T) {
	n := DefaultWindow + 100
	data, _ := noisyData(n, 5)
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: n}
	c := New(0.5)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("length %d, want %d", len(got), n)
	}
	for i := range data {
		if data[i] != 0 {
			rel := math.Abs(float64(got[i]-data[i])) / math.Abs(float64(data[i]))
			if rel > 0.005+1e-6 {
				t.Fatalf("tail window error %v at %d", rel, i)
			}
		}
	}
}

func TestNegativeAndZeroValues(t *testing.T) {
	data := make([]float32, 2048)
	for i := range data {
		data[i] = float32(i%7) - 3 // includes zeros and negatives
	}
	shape := compress.Shape{NLev: 1, NLat: 1, NLon: len(data)}
	c := New(0.1)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] == 0 && got[i] != 0 {
			t.Fatalf("zero not exact at %d: %v", i, got[i])
		}
		if data[i] != 0 {
			rel := math.Abs(float64(got[i]-data[i])) / math.Abs(float64(data[i]))
			if rel > 0.001+1e-6 {
				t.Fatalf("error %v at %d", rel, i)
			}
		}
	}
}

func TestRegistryVariants(t *testing.T) {
	for _, name := range []string{"isa-1", "isa-0.5", "isa-0.1"} {
		if _, err := compress.New(name); err != nil {
			t.Fatalf("registry missing %s: %v", name, err)
		}
	}
}

func TestCorruptStream(t *testing.T) {
	data, shape := noisyData(1024, 6)
	c := New(0.5)
	buf, _ := c.Compress(data, shape)
	if _, err := c.Decompress(buf[:10]); err == nil {
		t.Fatal("truncated stream should error")
	}
}

func BenchmarkCompressISA05(b *testing.B) {
	data, shape := noisyData(32768, 7)
	c := New(0.5)
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, shape); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressISA05(b *testing.B) {
	data, shape := noisyData(32768, 7)
	c := New(0.5)
	buf, _ := c.Compress(data, shape)
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRadixSortMatchesSlicesSort checks the counting sort against the
// standard library across sizes and key distributions (constant columns
// exercise the pass-skipping, narrow ranges the copy-back parity).
func TestRadixSortMatchesSlicesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 3, 17, 255, 1000, 1024} {
		for _, gen := range []func() uint64{
			func() uint64 { return rng.Uint64() },
			func() uint64 { return uint64(rng.Intn(16)) },
			func() uint64 { return uint64(rng.Intn(3)) << 56 },
			func() uint64 { return 42 },
		} {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = gen()
			}
			want := slices.Clone(keys)
			slices.Sort(want)
			radixSort(keys, make([]uint64, n))
			if !slices.Equal(keys, want) {
				t.Fatalf("n=%d: radixSort diverged from slices.Sort", n)
			}
		}
	}
}

// TestSortPermutationMatchesStableSort pins the key-sort rewrite to the
// comparator-driven stable sort it replaced, on data with duplicates,
// negatives, signed zeros and NaNs.
func TestSortPermutationMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := [][]float32{
		{3, 1, 2, 1, 3, 1, 0, -1, -1, 0},
		{float32(math.Copysign(0, -1)), 0, float32(math.Copysign(0, -1)), 0},
		{float32(math.NaN()), 1, -1, float32(math.NaN()), 0},
	}
	big := make([]float32, 1024)
	for i := range big {
		// Coarse quantization forces many duplicate values.
		big[i] = float32(math.Round(rng.NormFloat64()*4)) / 2
	}
	cases = append(cases, big)
	for ci, block := range cases {
		want := make([]int, len(block))
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return block[want[a]] < block[want[b]] })
		got := sortPermutation(block, make([]int, len(block)), make([]uint64, len(block)), make([]uint64, len(block)))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d: perm[%d] = %d, want %d", ci, i, got[i], want[i])
			}
		}
	}
}
