package nclossless

import (
	"bytes"
	"compress/zlib"
	"math"
	"testing"

	"climcompress/internal/compress"
)

func testField(n int) []float32 {
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(15 + 10*math.Sin(float64(i)/9) + 0.01*float64(i%7))
	}
	return data
}

// TestLevelSentinel pins the Level semantics: the zero value means "unset"
// and matches zlib.DefaultCompression, while a stored-block request — which
// zlib itself encodes as level 0 — is reachable through the LevelStore
// sentinel rather than colliding with the zero value.
func TestLevelSentinel(t *testing.T) {
	shape := compress.Shape{NLev: 1, NLat: 32, NLon: 64}
	data := testField(shape.Len())

	unset, err := (&Codec{Shuffle: true}).Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	def, err := (&Codec{Shuffle: true, Level: zlib.DefaultCompression}).Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unset, def) {
		t.Errorf("zero Level (%d bytes) differs from explicit DefaultCompression (%d bytes)",
			len(unset), len(def))
	}

	stored, err := (&Codec{Shuffle: true, Level: LevelStore}).Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	// Stored deflate blocks carry the raw bytes plus framing, so the stream
	// must exceed the raw payload and any genuinely compressed stream.
	if len(stored) <= 4*len(data) {
		t.Errorf("LevelStore stream is %d bytes for %d raw bytes; blocks look compressed",
			len(stored), 4*len(data))
	}
	if len(stored) <= len(def) {
		t.Errorf("LevelStore stream (%d bytes) not larger than default-level stream (%d bytes)",
			len(stored), len(def))
	}

	for _, level := range []int{LevelStore, zlib.HuffmanOnly, zlib.BestSpeed, 5, zlib.BestCompression} {
		c := &Codec{Shuffle: true, Level: level}
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		out, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if len(out) != len(data) {
			t.Fatalf("level %d: got %d values, want %d", level, len(out), len(data))
		}
		for i := range data {
			if math.Float32bits(out[i]) != math.Float32bits(data[i]) {
				t.Fatalf("level %d: value %d not lossless", level, i)
			}
		}
	}
}

// TestBadLevel verifies that an out-of-range level surfaces as an error
// rather than a panic or silent remap.
func TestBadLevel(t *testing.T) {
	shape := compress.Shape{NLev: 1, NLat: 4, NLon: 4}
	if _, err := (&Codec{Level: 42}).Compress(testField(shape.Len()), shape); err == nil {
		t.Fatal("level 42 should error")
	}
}
