// Package nclossless implements the study's lossless baseline: the
// NetCDF-4-style deflate pipeline (HDF5 shuffle filter followed by zlib).
// The paper uses this as both the §4.1 characterization metric ("CR" in
// Table 2) and the lossless fallback of the hybrid methods ("NetCDF-4" rows
// of Tables 7–8).
package nclossless

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"math"
	"sync"

	"climcompress/internal/compress"
)

// LevelStore requests stored (uncompressed) deflate blocks. zlib encodes
// that mode as level 0 (zlib.NoCompression), which collides with the
// Codec's zero value, so an explicit sentinel carries the request instead.
const LevelStore = -3

// Codec is the shuffle+zlib lossless codec.
type Codec struct {
	// Shuffle applies the HDF5 byte-transposition filter before deflate.
	// On floating-point data it groups the (highly repetitive) exponent
	// bytes together, typically improving the deflate ratio markedly; the
	// ablation benchmark BenchmarkAblationShuffle quantifies this.
	Shuffle bool
	// Level is the zlib compression level. The zero value means "unset"
	// and selects zlib.DefaultCompression, so zero Codec values work;
	// because zlib.NoCompression is also numerically 0, a store-level
	// request must use the LevelStore sentinel. Every other zlib level
	// (zlib.HuffmanOnly .. zlib.BestCompression) passes through unchanged.
	Level int
}

// New returns the default NetCDF-4-style configuration (shuffle on,
// default deflate level).
func New() *Codec { return &Codec{Shuffle: true} }

func init() {
	compress.Register("nc", func() compress.Codec { return New() })
	compress.Register("nc-noshuffle", func() compress.Codec { return &Codec{Shuffle: false} })
}

// Name implements compress.Codec.
func (c *Codec) Name() string {
	if !c.Shuffle {
		return "nc-noshuffle"
	}
	return "nc"
}

// Lossless implements compress.Codec.
func (c *Codec) Lossless() bool { return true }

// zlibLevel resolves the Level field to the zlib level actually used.
func (c *Codec) zlibLevel() int {
	switch c.Level {
	case 0:
		return zlib.DefaultCompression
	case LevelStore:
		return zlib.NoCompression
	default:
		return c.Level
	}
}

// shuffleFloats serializes data into raw as 4 byte planes (the HDF5 shuffle
// of the little-endian encoding), fusing the former floatsToBytes+shuffle
// passes into one.
func shuffleFloats(raw []byte, data []float32) {
	n := len(data)
	p0, p1, p2, p3 := raw[0:n], raw[n:2*n], raw[2*n:3*n], raw[3*n:4*n]
	for i, v := range data {
		u := math.Float32bits(v)
		p0[i] = byte(u)
		p1[i] = byte(u >> 8)
		p2[i] = byte(u >> 16)
		p3[i] = byte(u >> 24)
	}
}

// flatFloats serializes data little-endian without the shuffle.
func flatFloats(raw []byte, data []float32) {
	for i, v := range data {
		u := math.Float32bits(v)
		raw[4*i] = byte(u)
		raw[4*i+1] = byte(u >> 8)
		raw[4*i+2] = byte(u >> 16)
		raw[4*i+3] = byte(u >> 24)
	}
}

// sliceWriter is an io.Writer appending into an owned slice; pooled inside
// ncScratch so handing it to zlib allocates nothing.
type sliceWriter struct{ buf []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

// ncScratch is the per-worker reusable state of one Compress or Decompress
// call.
type ncScratch struct {
	raw []byte
	sw  sliceWriter
	br  bytes.Reader
}

var scratchPool = sync.Pool{New: func() any { return new(ncScratch) }}

func (s *ncScratch) growRaw(n int) []byte {
	if cap(s.raw) < n {
		s.raw = make([]byte, n)
	}
	return s.raw[:n]
}

// zlib writers are reusable via Reset but fixed to their construction
// level, so they pool per level (index level+2 over zlib's -2..9 range).
var zwPools [12]sync.Pool

func getZlibWriter(level int, w io.Writer) (*zlib.Writer, error) {
	idx := level + 2
	if idx < 0 || idx >= len(zwPools) {
		return zlib.NewWriterLevel(w, level) // will error on truly bad levels
	}
	if v := zwPools[idx].Get(); v != nil {
		zw := v.(*zlib.Writer)
		zw.Reset(w)
		return zw, nil
	}
	return zlib.NewWriterLevel(w, level)
}

func putZlibWriter(level int, zw *zlib.Writer) {
	idx := level + 2
	if idx >= 0 && idx < len(zwPools) {
		zwPools[idx].Put(zw)
	}
}

// zlib readers are reusable via zlib.Resetter.
var zrPool sync.Pool

// Compress implements compress.Codec.
func (c *Codec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	return c.CompressInto(nil, data, shape)
}

// CompressInto implements compress.AppendCodec: it appends the stream to
// dst using pooled scratch, allocating nothing in steady state.
func (c *Codec) CompressInto(dst []byte, data []float32, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return dst, fmt.Errorf("nclossless: shape %v does not match %d values", shape, len(data))
	}
	s := scratchPool.Get().(*ncScratch)
	defer scratchPool.Put(s)
	raw := s.growRaw(4 * len(data))
	flags := byte(0)
	if c.Shuffle {
		shuffleFloats(raw, data)
		flags = 1
	} else {
		flatFloats(raw, data)
	}
	dst = compress.PutHeader(dst, compress.Header{CodecID: compress.IDNCLossless, Shape: shape})
	dst = append(dst, flags)

	level := c.zlibLevel()
	s.sw.buf = dst
	zw, err := getZlibWriter(level, &s.sw)
	if err != nil {
		s.sw.buf = nil
		return dst, err
	}
	if _, err := zw.Write(raw); err != nil {
		s.sw.buf = nil
		return dst, err
	}
	if err := zw.Close(); err != nil {
		s.sw.buf = nil
		return dst, err
	}
	putZlibWriter(level, zw)
	dst = s.sw.buf
	s.sw.buf = nil // do not retain the caller's buffer in the pool
	return dst, nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(buf []byte) ([]float32, error) {
	return c.DecompressInto(nil, buf)
}

// DecompressInto implements compress.AppendCodec, reconstructing into dst's
// backing array when its capacity suffices.
func (c *Codec) DecompressInto(dst []float32, buf []byte) ([]float32, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return dst, err
	}
	if h.CodecID != compress.IDNCLossless {
		return dst, fmt.Errorf("%w: not an nc-lossless stream", compress.ErrCorrupt)
	}
	if len(rest) < 1 {
		return dst, fmt.Errorf("%w: missing flags", compress.ErrCorrupt)
	}
	shuffled := rest[0]&1 != 0

	s := scratchPool.Get().(*ncScratch)
	defer scratchPool.Put(s)
	s.br.Reset(rest[1:])
	var zr io.ReadCloser
	if v := zrPool.Get(); v != nil {
		zr = v.(io.ReadCloser)
		if err := zr.(zlib.Resetter).Reset(&s.br, nil); err != nil {
			return dst, fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
		}
	} else {
		zr, err = zlib.NewReader(&s.br)
		if err != nil {
			return dst, fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
		}
	}
	defer zrPool.Put(zr)
	n := h.Shape.Len()
	raw := s.growRaw(4 * n)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return dst, fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
	}
	out := compress.GrowFloats(dst, n)
	if shuffled {
		p0, p1, p2, p3 := raw[0:n], raw[n:2*n], raw[2*n:3*n], raw[3*n:4*n]
		for i := range out {
			u := uint32(p0[i]) | uint32(p1[i])<<8 | uint32(p2[i])<<16 | uint32(p3[i])<<24
			out[i] = math.Float32frombits(u)
		}
	} else {
		for i := range out {
			u := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			out[i] = math.Float32frombits(u)
		}
	}
	return out, nil
}
