// Package nclossless implements the study's lossless baseline: the
// NetCDF-4-style deflate pipeline (HDF5 shuffle filter followed by zlib).
// The paper uses this as both the §4.1 characterization metric ("CR" in
// Table 2) and the lossless fallback of the hybrid methods ("NetCDF-4" rows
// of Tables 7–8).
package nclossless

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
	"math"

	"climcompress/internal/compress"
)

// Codec is the shuffle+zlib lossless codec.
type Codec struct {
	// Shuffle applies the HDF5 byte-transposition filter before deflate.
	// On floating-point data it groups the (highly repetitive) exponent
	// bytes together, typically improving the deflate ratio markedly; the
	// ablation benchmark BenchmarkAblationShuffle quantifies this.
	Shuffle bool
	// Level is the zlib compression level (zlib.DefaultCompression if 0).
	Level int
}

// New returns the default NetCDF-4-style configuration (shuffle on,
// default deflate level).
func New() *Codec { return &Codec{Shuffle: true} }

func init() {
	compress.Register("nc", func() compress.Codec { return New() })
	compress.Register("nc-noshuffle", func() compress.Codec { return &Codec{Shuffle: false} })
}

// Name implements compress.Codec.
func (c *Codec) Name() string {
	if !c.Shuffle {
		return "nc-noshuffle"
	}
	return "nc"
}

// Lossless implements compress.Codec.
func (c *Codec) Lossless() bool { return true }

// shuffle transposes an array of 4-byte elements into 4 byte planes.
func shuffle(src []byte, n int) []byte {
	dst := make([]byte, len(src))
	for b := 0; b < 4; b++ {
		plane := dst[b*n : (b+1)*n]
		for i := 0; i < n; i++ {
			plane[i] = src[i*4+b]
		}
	}
	return dst
}

// unshuffle inverts shuffle.
func unshuffle(src []byte, n int) []byte {
	dst := make([]byte, len(src))
	for b := 0; b < 4; b++ {
		plane := src[b*n : (b+1)*n]
		for i := 0; i < n; i++ {
			dst[i*4+b] = plane[i]
		}
	}
	return dst
}

// floatsToBytes serializes float32 values little-endian.
func floatsToBytes(data []float32) []byte {
	out := make([]byte, 4*len(data))
	for i, v := range data {
		u := math.Float32bits(v)
		out[4*i] = byte(u)
		out[4*i+1] = byte(u >> 8)
		out[4*i+2] = byte(u >> 16)
		out[4*i+3] = byte(u >> 24)
	}
	return out
}

func bytesToFloats(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		u := uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
		out[i] = math.Float32frombits(u)
	}
	return out
}

// Compress implements compress.Codec.
func (c *Codec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return nil, fmt.Errorf("nclossless: shape %v does not match %d values", shape, len(data))
	}
	raw := floatsToBytes(data)
	flags := byte(0)
	if c.Shuffle {
		raw = shuffle(raw, len(data))
		flags = 1
	}
	out := compress.PutHeader(nil, compress.Header{CodecID: compress.IDNCLossless, Shape: shape})
	out = append(out, flags)
	var buf bytes.Buffer
	level := c.Level
	if level == 0 {
		level = zlib.DefaultCompression
	}
	zw, err := zlib.NewWriterLevel(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return append(out, buf.Bytes()...), nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(buf []byte) ([]float32, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.CodecID != compress.IDNCLossless {
		return nil, fmt.Errorf("%w: not an nc-lossless stream", compress.ErrCorrupt)
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: missing flags", compress.ErrCorrupt)
	}
	shuffled := rest[0]&1 != 0
	zr, err := zlib.NewReader(bytes.NewReader(rest[1:]))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
	}
	defer zr.Close()
	n := h.Shape.Len()
	raw := make([]byte, 4*n)
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
	}
	if shuffled {
		raw = unshuffle(raw, n)
	}
	return bytesToFloats(raw), nil
}
