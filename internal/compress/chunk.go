package compress

// Chunked decoding: the fused verification kernels consume reconstructed
// values chunk by chunk, straight off the compressed stream, so the full
// field is never materialized on that path. Codecs whose decode loop is
// naturally sequential (tsblob's XOR iterator, apax's block quantizer,
// fpzip's truncation paths) implement ChunkDecoder directly; deflate-bound
// codecs (nc, nclossless, grib2, isa) go through a pooled whole-field
// fallback whose buffer lives only for the duration of one call.

// DefaultChunkLen is the chunk length (in float32 values) used when the
// caller passes an empty chunk buffer to DecodeChunks. 4096 values = 16 KiB,
// comfortably inside L1/L2 while amortizing the per-chunk callback cost.
const DefaultChunkLen = 4096

// ChunkDecoder is implemented by codecs that can stream reconstructed
// values without materializing the whole field. DecodeChunks decodes the
// self-describing stream in compressed and yields consecutive windows of
// values: yield(off, vals) delivers the points [off, off+len(vals)) of the
// decoded field, with offsets strictly increasing and contiguous, covering
// [0, n) exactly when DecodeChunks returns nil.
//
// chunk, when non-empty, is the caller's working buffer; implementations
// decode into it and yield subslices of it. When chunk is empty the
// implementation uses its own pooled buffer of DefaultChunkLen values.
// Either way the yielded slice is only valid during the callback — it is
// overwritten by the next chunk — and the consumer may freely mutate its
// contents (the fill-mask wrapper relies on this to overlay sentinels).
// A non-nil error from yield aborts the decode and is returned unwrapped.
type ChunkDecoder interface {
	DecodeChunks(compressed []byte, chunk []float32, yield func(off int, vals []float32) error) error
}

// Chunked reports whether c decodes natively chunked (without a whole-field
// fallback buffer).
func Chunked(c Codec) bool {
	_, ok := c.(ChunkDecoder)
	return ok
}

// DecodeChunks streams the reconstructed values of compressed through
// yield, using c's native chunk decoder when it has one and a pooled
// whole-field fallback otherwise. See ChunkDecoder for the contract.
func DecodeChunks(c Codec, compressed []byte, chunk []float32, yield func(off int, vals []float32) error) error {
	if cd, ok := c.(ChunkDecoder); ok {
		return cd.DecodeChunks(compressed, chunk, yield)
	}
	return fallbackChunks(c, compressed, chunk, yield)
}

// fallbackChunks adapts a whole-field decode to the chunked contract: the
// field is decoded into a pooled buffer, windows of it are yielded, and the
// buffer is returned to the pool before the call returns — so peak heap is
// one pooled field per in-flight call rather than one per member held
// across the metrics pass.
func fallbackChunks(c Codec, compressed []byte, chunk []float32, yield func(off int, vals []float32) error) error {
	h, _, err := ParseHeader(compressed)
	if err != nil {
		return err
	}
	n := h.Shape.Len()
	full := GetFloats(n)
	defer PutFloats(full)
	vals, err := DecompressInto(c, full, compressed)
	if err != nil {
		return err
	}
	if len(vals) != n {
		// Defensive: every registered codec validates this itself.
		n = len(vals)
	}
	step := len(chunk)
	if step == 0 {
		step = DefaultChunkLen
	}
	for off := 0; off < n; off += step {
		end := off + step
		if end > n {
			end = n
		}
		w := vals[off:end]
		if len(chunk) != 0 {
			// Honor the contract that yielded values live in the caller's
			// buffer (and may be mutated without corrupting pooled state).
			copy(chunk, w)
			w = chunk[:len(w)]
		}
		if err := yield(off, w); err != nil {
			return err
		}
	}
	return nil
}
