package compress_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"testing"

	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
	"climcompress/internal/compress/parallel"
	_ "climcompress/internal/compress/tsblob"
)

// goldenShape and goldenField pin the exact inputs whose compressed streams
// were hashed against the pre-refactor (pre-Into) implementations. Any change
// to these streams is a format break, not a refactor.
var goldenShape = compress.Shape{NLev: 3, NLat: 24, NLon: 48}

func goldenField(n int) []float32 {
	data := make([]float32, n)
	x := uint64(2014)
	for i := range data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		noise := float64(x%100000)/50000 - 1
		data[i] = float32(260 + 30*math.Sin(float64(i)/17) + 5*math.Cos(float64(i)/5) + noise)
	}
	// A few special values: exact zeros and a fill-like sentinel region.
	for i := 0; i < n; i += 97 {
		data[i] = 0
	}
	return data
}

// goldenHashes are SHA-256 digests of each codec's compressed stream for
// goldenField/goldenShape, captured from the repository state before the
// append-style API existed. CompressInto and Compress must both still
// produce exactly these bytes.
var goldenHashes = map[string]string{
	"apax-2":             "6c85b153b650a6e7dcb4465bb24501be17ef31ecf789281ba5d8b98ad2731f74",
	"apax-4":             "1db0126c6a3aafff0e86662d49e7dcc8d091d427b4e136e7bc2867b653ae6438",
	"apax-5":             "c49827e992877d3762a865f60e2ce2561061fed30c2e9e1eeaeda9e13918a907",
	"apax-6":             "4ceef237fcdfdea0d5aae048ce96474c508f961a3396a073f846695a3329c47c",
	"apax-7":             "657e698bf58a541e405b49a51f4de759c9ec35286a0b19acef72a8e0be043410",
	"fpzip-16":           "f5ba5cfd4e50cbc6face16116171715fbd5d433302ec25db2ba09aad34092beb",
	"fpzip-16-prev":      "ca58683fef079a6b37df6dc6fd9b07a2772106c6a3a0e4cdc81d63c3577d2583",
	"fpzip-24":           "1dbffdf391f25a979f6c5bae26a150197f93db916e2c87a5179fd7386f065458",
	"fpzip-24-3d":        "0d354199334b0e8bb0bd5acf5df6de597d4ccaa624678dd0595780b7f13e5df2",
	"fpzip-32":           "d692f71279d843553485c8386115ad0d004d1524ad2ea23149399018b9b68d2c",
	"fpzip-8":            "57ccf3345deb1d7da46fd4206ab1a43408db99147aec774061b32428aa95f960",
	"fpzip64-48":         "8acda36cd3426ffed533b006f8b7407f86e755d80186f5933b9bb9913371e937",
	"fpzip64-64":         "482e07462b804011f7256a9072db870f186b6c250f32e08ed7721ef58ba0a8e1",
	"grib2":              "fe19508e5861e02a4d1246710873061a900833f3390a8d4062002d4c40e25103",
	"grib2-simple":       "85646b4b020f58b89ee371010b3939c20d992420323326b55eb98fcb51e6cbb5",
	"isa-0.1":            "03b07f778afca906ecc2ab6c34862e617f27bb3fe9576f305a4ae1f4cb124182",
	"isa-0.5":            "049e9de564555d4f29049250c0e2e0700d534b2129138b35016eb66e01da64b2",
	"isa-1":              "3c06f9ca4e44e2f60ae1f5a77a5a10c04695de762429f702a6772687fb345c93",
	"nc":                 "3a09971bd4232e758a8e98704401673b6b01732d8e6f01e81003a52c514f2ed9",
	"nc-noshuffle":       "df244dcee8a60371a1eab744614b15ac38a38672bfa9659103f507b0ec59d17b",
	"parallel(fpzip-24)": "523a38c7d88b2abd0a74ed0d898a540d78b4241293de5e47329ce5ab6ffc5897",
	"nc+fill":            "6a333892746a80033128ca0234bebcea948af95d5a1131dd47b1cf8d1b39e2d8",
	"tsblob":             "37b2dd645044e765ee1bb75a9a59b82b5e2028949082e2844b5b94cac0c3526f",
}

// goldenCodecs returns every codec under test by name: the registry plus the
// parallel and fill-masked wrappers.
func goldenCodecs(t *testing.T) map[string]compress.Codec {
	t.Helper()
	codecs := make(map[string]compress.Codec)
	for _, name := range compress.Names() {
		c, err := compress.New(name)
		if err != nil {
			t.Fatal(err)
		}
		codecs[name] = c
	}
	p, err := parallel.FromRegistry("fpzip-24", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	codecs["parallel(fpzip-24)"] = p
	nc, err := compress.New("nc")
	if err != nil {
		t.Fatal(err)
	}
	codecs["nc+fill"] = compress.WithFill(nc, 0)
	return codecs
}

// TestGoldenStreams pins every codec's compressed output — via both the
// classic API and the append API — to the hashes captured before the
// zero-allocation refactor.
func TestGoldenStreams(t *testing.T) {
	data := goldenField(goldenShape.Len())
	for name, c := range goldenCodecs(t) {
		want, ok := goldenHashes[name]
		if !ok {
			t.Errorf("%s: no golden hash recorded; add one", name)
			continue
		}
		buf, err := c.Compress(data, goldenShape)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		if got := hex.EncodeToString(sum256(buf)); got != want {
			t.Errorf("%s: Compress stream hash %s, want %s", name, got, want)
		}
		into, err := compress.CompressInto(c, nil, data, goldenShape)
		if err != nil {
			t.Fatalf("%s: compress into: %v", name, err)
		}
		if !bytes.Equal(into, buf) {
			t.Errorf("%s: CompressInto differs from Compress", name)
		}
	}
}

func sum256(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}

// TestCompressIntoAppends verifies the append contract: an existing dst
// prefix is preserved and the appended bytes match a fresh Compress.
func TestCompressIntoAppends(t *testing.T) {
	data := goldenField(goldenShape.Len())
	prefix := []byte("framed:")
	for name, c := range goldenCodecs(t) {
		plain, err := c.Compress(data, goldenShape)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dst := append(make([]byte, 0, len(prefix)+len(plain)+512), prefix...)
		dst, err = compress.CompressInto(c, dst, data, goldenShape)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.HasPrefix(dst, prefix) {
			t.Fatalf("%s: dst prefix clobbered", name)
		}
		if !bytes.Equal(dst[len(prefix):], plain) {
			t.Fatalf("%s: appended stream differs from Compress", name)
		}
	}
}

// TestDecompressIntoReuses verifies the reconstruction contract: with a
// big-enough dst the decoded slice reuses its backing array, and the values
// match the classic API bit for bit.
func TestDecompressIntoReuses(t *testing.T) {
	data := goldenField(goldenShape.Len())
	for name, c := range goldenCodecs(t) {
		buf, err := c.Compress(data, goldenShape)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dst := make([]float32, goldenShape.Len())
		got, err := compress.DecompressInto(c, dst, buf)
		if err != nil {
			t.Fatalf("%s: decompress into: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: decoded %d values, want %d", name, len(got), len(want))
		}
		if &got[0] != &dst[0] {
			t.Errorf("%s: DecompressInto did not reuse dst's backing array", name)
		}
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("%s: value %d differs: %v vs %v", name, i, got[i], want[i])
			}
		}
		// A second pass over a reused (dirty) dst must give the same result.
		again, err := compress.DecompressInto(c, got, buf)
		if err != nil {
			t.Fatalf("%s: second decompress into: %v", name, err)
		}
		for i := range want {
			if math.Float32bits(again[i]) != math.Float32bits(want[i]) {
				t.Fatalf("%s: reused-dst value %d differs", name, i)
			}
		}
	}
}

// TestIntoSteadyStateAllocs asserts the headline property of the pooled
// scratch design: after warm-up, the nc and grib2 Into paths allocate
// nothing per operation. The one exception is the nc decompress direction,
// where the stdlib flate decoder rebuilds its dynamic-Huffman link tables
// (inflate.go's h.links = make(...)) for every deflate block; those
// allocations live inside compress/flate and cannot be pooled from here
// without changing the stream, so that direction asserts a small fixed
// bound instead of zero.
func TestIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	shape := compress.Shape{NLev: 2, NLat: 32, NLon: 64}
	data := goldenField(shape.Len())
	for _, tc := range []struct {
		name          string
		maxDecompress float64 // stdlib-flate floor; 0 for our own decoders
	}{
		{name: "nc", maxDecompress: 8},
		{name: "nc-noshuffle", maxDecompress: 8},
		{name: "grib2", maxDecompress: 0},
	} {
		c, err := compress.New(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		ac, ok := c.(compress.AppendCodec)
		if !ok {
			t.Fatalf("%s does not implement AppendCodec", tc.name)
		}
		// Warm the pools and size the reusable buffers.
		buf, err := ac.CompressInto(nil, data, shape)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ac.DecompressInto(nil, buf)
		if err != nil {
			t.Fatal(err)
		}
		bufCap := buf[:0:cap(buf)]
		if allocs := testing.AllocsPerRun(10, func() {
			var err error
			buf, err = ac.CompressInto(bufCap, data, shape)
			if err != nil {
				t.Fatal(err)
			}
		}); allocs > 0 {
			t.Errorf("%s: CompressInto allocates %.1f/op in steady state, want 0", tc.name, allocs)
		}
		if allocs := testing.AllocsPerRun(10, func() {
			var err error
			out, err = ac.DecompressInto(out, buf)
			if err != nil {
				t.Fatal(err)
			}
		}); allocs > tc.maxDecompress {
			t.Errorf("%s: DecompressInto allocates %.1f/op in steady state, want ≤ %.0f",
				tc.name, allocs, tc.maxDecompress)
		}
	}
}

// TestParallelIntoCorrupt drives the parallel chunk format's corruption
// handling through the append API: truncations and frame damage must error
// (or decode to the right length), never panic, and never scribble outside
// the caller's buffer.
func TestParallelIntoCorrupt(t *testing.T) {
	p, err := parallel.FromRegistry("fpzip-24", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	shape := compress.Shape{NLev: 3, NLat: 16, NLon: 24}
	data := goldenField(shape.Len())
	buf, err := p.CompressInto(nil, data, shape)
	if err != nil {
		t.Fatal(err)
	}

	decode := func(stream []byte, what string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %s: %v", what, r)
			}
		}()
		dst := make([]float32, shape.Len())
		out, err := p.DecompressInto(dst[:0:len(dst)], stream)
		if err == nil && len(out) != shape.Len() {
			t.Fatalf("%s: decoded wrong length %d", what, len(out))
		}
	}

	// Truncations at every structural boundary of the frame: header, chunk
	// parameter, chunk count, length table, and mid-payload.
	for _, n := range []int{0, 5, 13, 14, 17, 18, 21, len(buf) / 2, len(buf) - 1} {
		if n > len(buf) {
			continue
		}
		decode(buf[:n], "truncation")
	}
	// Oversized chunk count.
	bad := append([]byte(nil), buf...)
	bad[14] = 0xff
	bad[15] = 0xff
	decode(bad, "chunk count corruption")
	// Length table pointing past the payload.
	bad = append([]byte(nil), buf...)
	bad[18] = 0xff
	bad[19] = 0xff
	decode(bad, "length corruption")
	// A chunk whose inner stream claims a larger shape than its slab must
	// not overwrite neighbouring chunks: clip is enforced by capacity.
	inner, err := compress.New("fpzip-24")
	if err != nil {
		t.Fatal(err)
	}
	bigShape := compress.Shape{NLev: 3, NLat: 16, NLon: 24}
	bigStream, err := inner.Compress(goldenField(bigShape.Len()), bigShape)
	if err != nil {
		t.Fatal(err)
	}
	decode(spliceChunk(t, buf, bigStream), "oversized inner chunk")
}

// spliceChunk replaces the first chunk payload of a parallel stream with the
// given inner stream, fixing up the length table.
func spliceChunk(t *testing.T, buf, inner []byte) []byte {
	t.Helper()
	if len(buf) < 18 {
		t.Fatal("parallel stream too short to splice")
	}
	nchunks := int(uint32(buf[14]) | uint32(buf[15])<<8 | uint32(buf[16])<<16 | uint32(buf[17])<<24)
	table := 18
	payload := table + 4*nchunks
	first := int(uint32(buf[table]) | uint32(buf[table+1])<<8 | uint32(buf[table+2])<<16 | uint32(buf[table+3])<<24)
	out := append([]byte(nil), buf[:table]...)
	var l [4]byte
	l[0] = byte(len(inner))
	l[1] = byte(len(inner) >> 8)
	l[2] = byte(len(inner) >> 16)
	l[3] = byte(len(inner) >> 24)
	out = append(out, l[:]...)
	out = append(out, buf[table+4:payload]...)
	out = append(out, inner...)
	out = append(out, buf[payload+first:]...)
	return out
}
