package tsblob

import (
	"math"
	"testing"

	"climcompress/internal/compress"
)

// FuzzTsblobDecode drives the header and column parsers with arbitrary
// bytes plus mutations of valid streams: decoding must never panic, and
// when it succeeds both read paths (slice decode and zero-copy iterator)
// must agree bit for bit.
func FuzzTsblobDecode(f *testing.F) {
	c := New()
	shape := compress.Shape{NLev: 1, NLat: 6, NLon: 10}
	seed, err := c.Compress(field(shape.Len()), shape)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:13])
	f.Add(seed[:len(seed)/2])
	small, err := (&Codec{Block: 4}).Compress(field(25), compress.Shape{NLev: 1, NLat: 5, NLon: 5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(small)
	f.Add([]byte{})
	f.Add([]byte{compress.IDTsBlob})

	f.Fuzz(func(t *testing.T, buf []byte) {
		out, err := c.Decompress(buf)
		xc, ierr := Iter(buf)
		if (err == nil) != (ierr == nil) {
			t.Fatalf("decode err %v but iter err %v", err, ierr)
		}
		if err != nil {
			return
		}
		if xc.Len() != len(out) {
			t.Fatalf("iterator sees %d values, decoder %d", xc.Len(), len(out))
		}
		it := xc.Iter()
		for i := range out {
			if !it.Next() {
				t.Fatalf("iterator ended early at %d: %v", i, it.Err())
			}
			if math.Float32bits(it.Value()) != math.Float32bits(out[i]) {
				t.Fatalf("iterator value %d differs from decoder", i)
			}
		}
		// Accepted streams must re-encode and round-trip losslessly.
		re, err := c.Compress(out, compress.Shape{NLev: 1, NLat: 1, NLon: len(out)})
		if err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
		back, err := c.Decompress(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range out {
			if math.Float32bits(back[i]) != math.Float32bits(out[i]) {
				t.Fatalf("re-encoded value %d differs", i)
			}
		}
	})
}
