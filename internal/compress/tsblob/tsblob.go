// Package tsblob implements a lossless columnar time-series codec: the
// field is framed as a blob container (internal/blob) holding a
// delta-packed block-index column and an XOR-compressed float32 value
// column. Each value block is encoded with both a Gorilla-style
// leading/trailing-zero window scheme and a Chimp-style reduced-window
// scheme, keeping whichever is smaller, so smooth climate fields get the
// window wins while noisy ones fall back to the cheaper class coding.
// The blob's O(1) offset table lets Iter seek to any value without
// materializing a slice, and both directions run allocation-free in
// steady state through pooled scratch.
package tsblob

import (
	"fmt"
	"sync"

	"climcompress/internal/blob"
	"climcompress/internal/compress"
)

// DefaultBlockSize is the values-per-block granularity of the XOR column
// (and of its seek offset table).
const DefaultBlockSize = blob.DefaultBlockSize

// Codec is the columnar XOR-float codec.
type Codec struct {
	// Block overrides DefaultBlockSize when positive (used by ablation
	// benches).
	Block int
}

// New returns a tsblob codec with the default block size.
func New() *Codec { return &Codec{} }

func init() {
	compress.Register("tsblob", func() compress.Codec { return New() })
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return "tsblob" }

// Lossless implements compress.Codec: XOR coding stores exact bit
// patterns, so reconstruction is always bit exact.
func (c *Codec) Lossless() bool { return true }

func (c *Codec) blockSize() int {
	if c.Block > 0 {
		return c.Block
	}
	return DefaultBlockSize
}

// indexPool recycles the block-start index scratch used by CompressInto.
var indexPool = sync.Pool{New: func() any { return new([]uint32) }}

// Compress implements compress.Codec.
func (c *Codec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	return c.CompressInto(nil, data, shape)
}

// CompressInto implements compress.AppendCodec with pooled scratch; the
// appended stream is bit-identical to Compress's.
func (c *Codec) CompressInto(dst []byte, data []float32, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return dst, fmt.Errorf("tsblob: shape %v does not match %d values", shape, len(data))
	}
	bs := c.blockSize()
	nblocks := (len(data) + bs - 1) / bs

	idxp := indexPool.Get().(*[]uint32)
	idx := (*idxp)[:0]
	for b := 0; b < nblocks; b++ {
		idx = append(idx, uint32(b*bs))
	}
	*idxp = idx

	w := blob.GetWriter()
	w.AddU32Delta(idx)
	w.AddXORF32(data, bs)
	dst = compress.PutHeader(dst, compress.Header{CodecID: compress.IDTsBlob, Shape: shape})
	dst = w.AppendTo(dst)
	blob.PutWriter(w)
	indexPool.Put(idxp)
	return dst, nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(buf []byte) ([]float32, error) {
	return c.DecompressInto(nil, buf)
}

// DecompressInto implements compress.AppendCodec, reconstructing into
// dst's backing array when its capacity suffices.
func (c *Codec) DecompressInto(dst []float32, buf []byte) ([]float32, error) {
	xc, n, err := open(buf)
	if err != nil {
		return dst, err
	}
	out := compress.GrowFloats(dst, n)
	it := xc.Iter()
	for it.Next() {
		out[it.Index()] = it.Value()
	}
	if it.Err() != nil {
		return dst, fmt.Errorf("%w: %v", compress.ErrCorrupt, it.Err())
	}
	return out, nil
}

// DecodeChunks implements compress.ChunkDecoder natively: the XOR iterator
// walks the value column straight off the compressed bytes, filling the
// chunk buffer and yielding each window as it completes. No whole-field
// buffer exists at any point.
func (c *Codec) DecodeChunks(compressed []byte, chunk []float32, yield func(off int, vals []float32) error) error {
	xc, n, err := open(compressed)
	if err != nil {
		return err
	}
	if len(chunk) == 0 {
		chunk = compress.GetFloats(compress.DefaultChunkLen)
		defer compress.PutFloats(chunk)
	}
	it := xc.Iter()
	off, w := 0, 0
	for it.Next() {
		chunk[w] = it.Value()
		w++
		if w == len(chunk) {
			if err := yield(off, chunk); err != nil {
				return err
			}
			off += w
			w = 0
		}
	}
	if it.Err() != nil {
		return fmt.Errorf("%w: %v", compress.ErrCorrupt, it.Err())
	}
	if w > 0 {
		if err := yield(off, chunk[:w]); err != nil {
			return err
		}
		off += w
	}
	if off != n {
		return fmt.Errorf("%w: decoded %d of %d values", compress.ErrCorrupt, off, n)
	}
	return nil
}

// Iter returns a zero-allocation iterator over a tsblob stream's values
// without materializing a slice: the returned column reads directly off
// buf, and its Iter/Seek decode at most one block prefix per jump.
func Iter(buf []byte) (blob.XORColumn, error) {
	xc, _, err := open(buf)
	return xc, err
}

// open validates a tsblob stream end to end — codec header, blob
// container, index column, value column — and returns the value column
// and the declared value count.
func open(buf []byte) (blob.XORColumn, int, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return blob.XORColumn{}, 0, err
	}
	if h.CodecID != compress.IDTsBlob {
		return blob.XORColumn{}, 0, fmt.Errorf("%w: not a tsblob stream", compress.ErrCorrupt)
	}
	n := h.Shape.Len()
	if err := compress.CheckPlausible(n, len(rest)); err != nil {
		return blob.XORColumn{}, 0, err
	}
	b, err := blob.Open(rest)
	if err != nil {
		return blob.XORColumn{}, 0, fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
	}
	if b.Cols() != 2 {
		return blob.XORColumn{}, 0, fmt.Errorf("%w: tsblob wants 2 columns, found %d", compress.ErrCorrupt, b.Cols())
	}
	xc, err := b.XORF32(1)
	if err != nil {
		return blob.XORColumn{}, 0, fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
	}
	if xc.Len() != n {
		return blob.XORColumn{}, 0, fmt.Errorf("%w: value column holds %d of %d values", compress.ErrCorrupt, xc.Len(), n)
	}
	// The index column must list exactly the block start offsets.
	di, err := b.U32Delta(0)
	if err != nil {
		return blob.XORColumn{}, 0, fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
	}
	for bi := 0; bi < xc.Blocks(); bi++ {
		if !di.Next() || di.Value() != uint32(bi*xc.BlockSize()) {
			return blob.XORColumn{}, 0, fmt.Errorf("%w: bad index column", compress.ErrCorrupt)
		}
	}
	if err := di.Done(); err != nil {
		return blob.XORColumn{}, 0, fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
	}
	return xc, n, nil
}
