//go:build race

package tsblob

// raceEnabled reports whether the race detector is active; its shadow
// memory bookkeeping allocates, so allocation-count tests skip themselves.
const raceEnabled = true
