package tsblob

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/compress"
)

// field mirrors the compress package's golden generator: smooth climate
// structure with bounded noise, plus exact zeros.
func field(n int) []float32 {
	data := make([]float32, n)
	x := uint64(2014)
	for i := range data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		noise := float64(x%100000)/50000 - 1
		data[i] = float32(260 + 30*math.Sin(float64(i)/17) + 5*math.Cos(float64(i)/5) + noise)
	}
	for i := 0; i < n; i += 97 {
		data[i] = 0
	}
	return data
}

func TestRoundTripLossless(t *testing.T) {
	c := New()
	for _, shape := range []compress.Shape{
		{NLev: 1, NLat: 1, NLon: 1},
		{NLev: 1, NLat: 7, NLon: 13},
		{NLev: 3, NLat: 24, NLon: 48},
		{NLev: 2, NLat: 73, NLon: 144},
	} {
		data := field(shape.Len())
		// Sprinkle special values: XOR coding must round-trip exact bits.
		if len(data) > 10 {
			data[1] = float32(math.NaN())
			data[2] = float32(math.Inf(1))
			data[3] = float32(math.Inf(-1))
			data[4] = -0.0
			data[5] = math.Float32frombits(1) // smallest denormal
		}
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(data) {
			t.Fatalf("shape %v: decoded %d of %d values", shape, len(out), len(data))
		}
		for i := range data {
			if math.Float32bits(out[i]) != math.Float32bits(data[i]) {
				t.Fatalf("shape %v: value %d not bit exact: %x vs %x",
					shape, i, math.Float32bits(out[i]), math.Float32bits(data[i]))
			}
		}
	}
}

// TestGoldenStream pins the exact compressed bytes for the compress
// package's golden field: the stream is a format contract, and encoding
// must be deterministic across runs and platforms. make verify runs this
// test by name.
func TestGoldenStream(t *testing.T) {
	const want = "37b2dd645044e765ee1bb75a9a59b82b5e2028949082e2844b5b94cac0c3526f"
	shape := compress.Shape{NLev: 3, NLat: 24, NLon: 48}
	data := field(shape.Len())
	c := New()
	var prev []byte
	for run := 0; run < 3; run++ {
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(buf, prev) {
			t.Fatal("tsblob output differs between runs")
		}
		prev = buf
		h := sha256.Sum256(buf)
		if got := hex.EncodeToString(h[:]); got != want {
			t.Fatalf("golden stream hash %s, want %s", got, want)
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	shape := compress.Shape{NLev: 2, NLat: 73, NLon: 144}
	data := field(shape.Len())
	buf, err := New().Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	cr := compress.Ratio(len(buf), shape.Len())
	if cr >= 1.0 {
		t.Errorf("tsblob expanded smooth climate data: CR %.3f", cr)
	}
	t.Logf("tsblob CR on synthetic climate field: %.3f", cr)
}

func TestIter(t *testing.T) {
	shape := compress.Shape{NLev: 2, NLat: 24, NLon: 48}
	data := field(shape.Len())
	buf, err := New().Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	xc, err := Iter(buf)
	if err != nil {
		t.Fatal(err)
	}
	if xc.Len() != len(data) {
		t.Fatalf("Iter column holds %d of %d values", xc.Len(), len(data))
	}
	it := xc.Iter()
	for i := range data {
		if !it.Next() {
			t.Fatalf("iterator ended early at %d: %v", i, it.Err())
		}
		if math.Float32bits(it.Value()) != math.Float32bits(data[i]) {
			t.Fatalf("value %d differs", i)
		}
	}
	if it.Next() {
		t.Fatal("iterator yielded an extra value")
	}
	// Seek reads single values without a full decode.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		i := rng.Intn(len(data))
		it := xc.Iter()
		if !it.Seek(i) || !it.Next() {
			t.Fatalf("Seek(%d) failed: %v", i, it.Err())
		}
		if math.Float32bits(it.Value()) != math.Float32bits(data[i]) {
			t.Fatalf("Seek(%d) read wrong value", i)
		}
	}
}

func TestAppendContract(t *testing.T) {
	shape := compress.Shape{NLev: 1, NLat: 24, NLon: 48}
	data := field(shape.Len())
	c := New()
	plain, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("framed:")
	dst, err := c.CompressInto(append([]byte(nil), prefix...), data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(dst, prefix) || !bytes.Equal(dst[len(prefix):], plain) {
		t.Fatal("CompressInto violated the append contract")
	}
	want, err := c.Decompress(plain)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, shape.Len())
	got, err := c.DecompressInto(out, plain)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &out[0] {
		t.Error("DecompressInto did not reuse dst's backing array")
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("value %d differs", i)
		}
	}
}

// TestSteadyStateAllocs pins the pooled-scratch contract: compress,
// decompress and iterate all run allocation-free once warm.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are meaningless under -race")
	}
	shape := compress.Shape{NLev: 2, NLat: 32, NLon: 64}
	data := field(shape.Len())
	c := New()
	buf, err := c.CompressInto(nil, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.DecompressInto(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	bufCap := buf[:0:cap(buf)]
	if allocs := testing.AllocsPerRun(10, func() {
		var err error
		buf, err = c.CompressInto(bufCap, data, shape)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("CompressInto allocates %.1f/op in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		var err error
		out, err = c.DecompressInto(out, buf)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("DecompressInto allocates %.1f/op in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		xc, err := Iter(buf)
		if err != nil {
			t.Fatal(err)
		}
		it := xc.Iter()
		var sum float32
		for it.Next() {
			sum += it.Value()
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
	}); allocs > 0 {
		t.Errorf("Iter allocates %.1f/op in steady state, want 0", allocs)
	}
}

func TestBlockSizeAblation(t *testing.T) {
	shape := compress.Shape{NLev: 1, NLat: 48, NLon: 96}
	data := field(shape.Len())
	for _, bs := range []int{16, 64, 512, 4096} {
		c := &Codec{Block: bs}
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatalf("block %d: %v", bs, err)
		}
		out, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("block %d: %v", bs, err)
		}
		for i := range data {
			if math.Float32bits(out[i]) != math.Float32bits(data[i]) {
				t.Fatalf("block %d: value %d differs", bs, i)
			}
		}
	}
}
