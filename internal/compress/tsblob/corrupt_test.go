package tsblob

import (
	"math/rand"
	"testing"

	"climcompress/internal/compress"
)

// TestCorruptStreams mirrors internal/compress/corrupt_test.go for the
// blob-framed format: truncated, bit-flipped and garbage streams must
// error or decode to the right length — never panic, never hang — through
// both the slice decoder and the zero-copy iterator.
func TestCorruptStreams(t *testing.T) {
	shape := compress.Shape{NLev: 2, NLat: 12, NLon: 20}
	data := field(shape.Len())
	c := New()
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}

	exercise := func(stream []byte, what string, checkLen bool) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %s: %v", what, r)
			}
		}()
		out, err := c.Decompress(stream)
		if err == nil && checkLen && len(out) != shape.Len() {
			t.Fatalf("%s decoded to wrong length %d", what, len(out))
		}
		// The iterator path must degrade identically: either Iter errors,
		// or iteration stops with Err() set, or the data decodes cleanly.
		xc, err := Iter(stream)
		if err != nil {
			return
		}
		it := xc.Iter()
		n := 0
		for it.Next() {
			n++
		}
		if it.Err() == nil && checkLen && n != shape.Len() {
			t.Fatalf("%s iterated to wrong length %d", what, n)
		}
	}

	// Truncations at every structural region: codec header, blob header,
	// column table, index column, XOR framing, offset table, bit area.
	for cut := 0; cut <= len(buf); cut++ {
		exercise(buf[:cut], "truncation", true)
	}
	// Random single-byte corruptions. Flips inside the 13-byte codec
	// header may legitimately change the decoded shape.
	rng := rand.New(rand.NewSource(2024))
	trials := 4000
	if testing.Short() {
		trials = 400
	}
	for trial := 0; trial < trials; trial++ {
		bad := append([]byte(nil), buf...)
		idx := rng.Intn(len(bad))
		bad[idx] ^= byte(1 + rng.Intn(255))
		exercise(bad, "bit flip", idx >= 13)
	}
	// Garbage of assorted sizes.
	for _, n := range []int{0, 1, 13, 21, 64, 500} {
		junk := make([]byte, n)
		rng.Read(junk)
		exercise(junk, "garbage", false)
	}
}

// TestHeaderShapeTamper inflates the shape in the stream header; the
// decoder must reject rather than allocate absurd buffers.
func TestHeaderShapeTamper(t *testing.T) {
	shape := compress.Shape{NLev: 1, NLat: 8, NLon: 8}
	c := New()
	buf, err := c.Compress(make([]float32, shape.Len()), shape)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf...)
	bad[1], bad[2], bad[3], bad[4] = 0xff, 0xff, 0xff, 0x7f
	if _, err := c.Decompress(bad); err == nil {
		t.Fatal("tampered shape accepted")
	}
	// A merely-inflated (but valid-range) count must also be rejected:
	// the value column knows its own length.
	bad = append([]byte(nil), buf...)
	bad[1] = 2 // NLev 1 → 2 doubles the claimed value count
	if _, err := c.Decompress(bad); err == nil {
		t.Fatal("inflated value count accepted")
	}
}
