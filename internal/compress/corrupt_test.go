package compress_test

import (
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/compress"
	"climcompress/internal/compress/parallel"
)

// TestCorruptionNeverPanics feeds every registered codec truncated and
// bit-flipped versions of its own valid streams: decoders must return an
// error or (for undetectably corrupted adaptive streams) wrong data, but
// never panic or hang. Decoded lengths, when successful, must match.
func TestCorruptionNeverPanics(t *testing.T) {
	shape := compress.Shape{NLev: 2, NLat: 12, NLon: 20}
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(25 + 10*math.Sin(float64(i)/11))
	}
	rng := rand.New(rand.NewSource(2024))

	codecs := make(map[string]compress.Codec)
	for _, name := range compress.Names() {
		c, err := compress.New(name)
		if err != nil {
			t.Fatal(err)
		}
		codecs[name] = c
	}
	if p, err := parallel.FromRegistry("fpzip-24", 2, 1); err == nil {
		codecs["parallel(fpzip-24)"] = p
	}

	for name, c := range codecs {
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		decode := func(stream []byte, what string, checkLen bool) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: panic on %s: %v", name, what, r)
				}
			}()
			out, err := c.Decompress(stream)
			if err == nil && checkLen && len(out) != shape.Len() {
				t.Fatalf("%s: %s decoded to wrong length %d", name, what, len(out))
			}
		}
		// Truncations at assorted points.
		for _, frac := range []float64{0, 0.1, 0.3, 0.5, 0.9, 0.99} {
			n := int(frac * float64(len(buf)))
			decode(buf[:n], "truncation", true)
		}
		// Random single-byte corruptions. A flip inside the 13-byte header
		// may legitimately change the decoded shape, so the length check
		// only applies to payload corruption.
		trials := 12
		if testing.Short() {
			trials = 3
		}
		for trial := 0; trial < trials; trial++ {
			bad := append([]byte(nil), buf...)
			idx := rng.Intn(len(bad))
			bad[idx] ^= byte(1 + rng.Intn(255))
			decode(bad, "bit flip", idx >= 13)
		}
		// Garbage of various sizes.
		for _, n := range []int{0, 1, 13, 64, 500} {
			junk := make([]byte, n)
			rng.Read(junk)
			decode(junk, "garbage", false)
		}
	}
}

// TestHeaderShapeTamperRejected corrupts the shape in the stream header so
// the implied length explodes; decoders must reject rather than allocate
// absurd buffers or read out of bounds.
func TestHeaderShapeTamperRejected(t *testing.T) {
	shape := compress.Shape{NLev: 1, NLat: 8, NLon: 8}
	data := make([]float32, shape.Len())
	for _, name := range []string{"fpzip-24", "apax-4", "isa-0.5", "grib2", "nc"} {
		c, err := compress.New(name)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), buf...)
		// Header layout: ID byte + 3 × uint32 LE dims.
		bad[1], bad[2], bad[3], bad[4] = 0xff, 0xff, 0xff, 0x7f
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: panic on tampered shape: %v", name, r)
				}
			}()
			if _, err := c.Decompress(bad); err == nil {
				t.Fatalf("%s: tampered shape accepted", name)
			}
		}()
	}
}
