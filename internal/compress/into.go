package compress

// AppendCodec is implemented by codecs that support the zero-allocation
// append-style API. CompressInto appends the self-describing stream to dst
// (growing it as needed) and returns the extended slice, exactly like
// append; the bytes appended are bit-identical to what Compress returns.
// DecompressInto reconstructs the values into dst's backing array when its
// capacity suffices (allocating only otherwise) and returns the decoded
// slice, whose previous contents are overwritten.
//
// Both methods are safe for concurrent use on one codec value: reusable
// state lives in per-codec sync.Pool scratch arenas, not on the codec.
// All registered study codecs implement AppendCodec; Compress/Decompress
// remain as thin wrappers over the Into paths.
type AppendCodec interface {
	Codec
	CompressInto(dst []byte, data []float32, shape Shape) ([]byte, error)
	DecompressInto(dst []float32, buf []byte) ([]float32, error)
}

// CompressInto appends c's compressed stream for data to dst, using the
// codec's zero-allocation path when available and falling back to
// Compress-plus-append otherwise. The appended bytes are identical either
// way.
func CompressInto(c Codec, dst []byte, data []float32, shape Shape) ([]byte, error) {
	if ac, ok := c.(AppendCodec); ok {
		return ac.CompressInto(dst, data, shape)
	}
	buf, err := c.Compress(data, shape)
	if err != nil {
		return dst, err
	}
	return append(dst, buf...), nil
}

// DecompressInto reconstructs buf into dst (reusing its capacity when
// possible), falling back to Decompress for codecs without the fast path.
func DecompressInto(c Codec, dst []float32, buf []byte) ([]float32, error) {
	if ac, ok := c.(AppendCodec); ok {
		return ac.DecompressInto(dst, buf)
	}
	vals, err := c.Decompress(buf)
	if err != nil {
		return dst, err
	}
	if cap(dst) >= len(vals) {
		dst = dst[:len(vals)]
		copy(dst, vals)
		return dst, nil
	}
	return vals, nil
}

// GrowFloats returns a slice of length n for decoded output, reusing dst's
// backing array when its capacity suffices. The contents are unspecified;
// callers overwrite every element.
func GrowFloats(dst []float32, n int) []float32 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float32, n)
}
