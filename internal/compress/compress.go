// Package compress defines the codec interface shared by every compression
// method in the study, a registry of the paper's nine evaluated variants
// (GRIB2, APAX-2/4/5, fpzip-24/16, ISABELA-0.1/0.5/1.0) plus the lossless
// options, and a wrapper that adds special-value (fill) support to codecs
// that lack it — the capability the paper notes is missing from fpzip,
// APAX and ISABELA (Table 1).
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Shape carries the grid dimensions of the data being compressed. Codecs
// that exploit spatial structure (fpzip's Lorenzo predictor, GRIB2's 2-D
// wavelet) interpret the data as NLev slabs of NLat×NLon points.
type Shape struct {
	NLev, NLat, NLon int
}

// Len returns the number of values implied by the shape.
func (s Shape) Len() int { return s.NLev * s.NLat * s.NLon }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.NLev > 0 && s.NLat > 0 && s.NLon > 0 }

// Codec compresses and reconstructs float32 climate fields.
type Codec interface {
	// Name identifies the codec variant, e.g. "fpzip-24".
	Name() string
	// Lossless reports whether reconstruction is bit exact.
	Lossless() bool
	// Compress packs data (of the given shape) into a self-describing
	// byte stream.
	Compress(data []float32, shape Shape) ([]byte, error)
	// Decompress reconstructs the values from a stream produced by
	// Compress.
	Decompress(buf []byte) ([]float32, error)
}

// Codec64 is implemented by codecs that natively handle double-precision
// data (fpzip and APAX per the paper's Table 1). Their Codec methods remain
// usable for float32 data.
type Codec64 interface {
	Codec
	Compress64(data []float64, shape Shape) ([]byte, error)
	Decompress64(buf []byte) ([]float64, error)
}

// ErrCorrupt is returned when a compressed stream fails validation.
var ErrCorrupt = errors.New("compress: corrupt stream")

// Header is the common frame every codec payload starts with.
type Header struct {
	CodecID byte
	Shape   Shape
}

// Codec IDs used in stream headers.
const (
	IDNCLossless byte = 1
	IDFPZip      byte = 2
	IDAPAX       byte = 3
	IDISABELA    byte = 4
	IDGRIB2      byte = 5
	IDFillMask   byte = 6
	IDRaw        byte = 7
	IDParallel   byte = 8
	IDRaw64      byte = 9
	IDTsBlob     byte = 10
)

// headerSize is the encoded size of a Header.
const headerSize = 1 + 3*4

// PutHeader appends the encoded header to dst.
func PutHeader(dst []byte, h Header) []byte {
	dst = append(dst, h.CodecID)
	var tmp [12]byte
	binary.LittleEndian.PutUint32(tmp[0:], uint32(h.Shape.NLev))
	binary.LittleEndian.PutUint32(tmp[4:], uint32(h.Shape.NLat))
	binary.LittleEndian.PutUint32(tmp[8:], uint32(h.Shape.NLon))
	return append(dst, tmp[:]...)
}

// ParseHeader decodes a header and returns the remaining payload.
func ParseHeader(buf []byte) (Header, []byte, error) {
	if len(buf) < headerSize {
		return Header{}, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	h := Header{CodecID: buf[0]}
	h.Shape.NLev = int(binary.LittleEndian.Uint32(buf[1:]))
	h.Shape.NLat = int(binary.LittleEndian.Uint32(buf[5:]))
	h.Shape.NLon = int(binary.LittleEndian.Uint32(buf[9:]))
	// 2^28 values (1 GiB of float32) comfortably covers any climate field
	// while bounding the work a tampered header can demand. Each dimension
	// is checked before multiplying so the product cannot overflow int.
	const maxLen = 1 << 28
	if !h.Shape.Valid() ||
		h.Shape.NLev > maxLen || h.Shape.NLat > maxLen || h.Shape.NLon > maxLen ||
		h.Shape.NLev*h.Shape.NLat > maxLen ||
		h.Shape.NLev*h.Shape.NLat*h.Shape.NLon > maxLen {
		return Header{}, nil, fmt.Errorf("%w: bad shape %+v", ErrCorrupt, h.Shape)
	}
	return h, buf[headerSize:], nil
}

// CheckPlausible rejects streams whose payload is too small to plausibly
// encode n values (below ~0.03 bits per value, far beyond any codec here).
// It bounds the work a tampered header can demand from a decoder.
func CheckPlausible(n, payloadLen int) error {
	if payloadLen < n/256 {
		return fmt.Errorf("%w: %d-byte payload cannot encode %d values", ErrCorrupt, payloadLen, n)
	}
	return nil
}

// Ratio returns the paper's compression ratio (eq. 1): compressed size over
// original size, so smaller is better and 1.0 means no compression.
func Ratio(compressed int, n int) float64 {
	if n == 0 {
		return math.NaN()
	}
	return float64(compressed) / float64(4*n)
}

// Properties describes a codec for the paper's Table 1.
type Properties struct {
	Method        string
	LosslessMode  bool // has a lossless mode
	SpecialValues bool // natively handles special/missing values
	FreelyAvail   bool // (of the original software) freely available
	FixedQuality  bool // can fix quality, varying rate
	FixedRate     bool // can fix rate, varying quality
	Bits32And64   bool // handles both 32- and 64-bit data
}

// factory builds a codec variant by registered name.
type factory func() Codec

var registry = map[string]factory{}

// Register adds a codec variant to the global registry. It panics on
// duplicate names (a programming error).
func Register(name string, f factory) {
	if _, dup := registry[name]; dup {
		panic("compress: duplicate codec " + name)
	}
	registry[name] = f
}

// New returns a fresh codec by registered name.
func New(name string) (Codec, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return f(), nil
}

// Names returns all registered codec names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StudyVariants returns the paper's nine evaluated lossy variants in the
// order of Tables 3–6.
func StudyVariants() []string {
	return []string{
		"grib2", "apax-2", "apax-4", "apax-5",
		"fpzip-24", "fpzip-16",
		"isa-0.1", "isa-0.5", "isa-1.0",
	}
}
