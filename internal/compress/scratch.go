package compress

import "sync"

// Scratch pools shared by the codec pipeline. The PVT runs compress and
// reconstruct inside a members × variables × chunks loop; these pools let
// every worker reuse one set of field-sized buffers per iteration instead
// of allocating fresh ones. sync.Pool keeps caches per P, so concurrent
// workers get private scratch without contention.

var (
	bytePool  sync.Pool // *[]byte
	int64Pool sync.Pool // *[]int64
	floatPool sync.Pool // *[]float32
)

// GetBytes returns a zero-length byte slice with at least capHint capacity,
// recycled when possible. Pair with PutBytes.
func GetBytes(capHint int) []byte {
	if v := bytePool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= capHint {
			return b[:0]
		}
		// Too small for this caller; let some other request reuse it.
		bytePool.Put(v)
	}
	if capHint < 64 {
		capHint = 64
	}
	return make([]byte, 0, capHint)
}

// PutBytes hands a buffer back to the pool. The caller must not use the
// slice (or any alias of it) afterwards.
func PutBytes(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	bytePool.Put(&b)
}

// GetInt64s returns an int64 slice of length n with unspecified contents,
// recycled when possible. Pair with PutInt64s.
func GetInt64s(n int) []int64 {
	if v := int64Pool.Get(); v != nil {
		s := *(v.(*[]int64))
		if cap(s) >= n {
			return s[:n]
		}
		int64Pool.Put(v)
	}
	return make([]int64, n)
}

// PutInt64s hands a buffer back to the pool.
func PutInt64s(s []int64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	int64Pool.Put(&s)
}

// GetFloats returns a float32 slice of length n with unspecified contents,
// recycled when possible. It backs the chunked-decode fallback (a whole
// decoded field held only for the duration of one DecodeChunks call) and
// the default chunk buffer of the native chunk decoders. Pair with
// PutFloats.
func GetFloats(n int) []float32 {
	if v := floatPool.Get(); v != nil {
		s := *(v.(*[]float32))
		if cap(s) >= n {
			return s[:n]
		}
		floatPool.Put(v)
	}
	return make([]float32, n)
}

// PutFloats hands a buffer back to the pool.
func PutFloats(s []float32) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	floatPool.Put(&s)
}
