package compress_test

import (
	"math"
	"testing"

	"climcompress/internal/compress"
)

// FuzzDecoders feeds arbitrary bytes to every registered decoder: none may
// panic, whatever the input. Valid streams from several codecs seed the
// corpus so mutations explore the interesting parts of each format.
func FuzzDecoders(f *testing.F) {
	shape := compress.Shape{NLev: 1, NLat: 6, NLon: 10}
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(10 + math.Sin(float64(i)))
	}
	for _, name := range []string{"fpzip-24", "apax-4", "isa-0.5", "grib2", "nc", "fpzip64-64"} {
		c, err := compress.New(name)
		if err != nil {
			f.Fatal(err)
		}
		buf, err := c.Compress(data, shape)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	names := compress.Names()
	codecs := make([]compress.Codec, 0, len(names))
	for _, n := range names {
		c, err := compress.New(n)
		if err != nil {
			f.Fatal(err)
		}
		codecs = append(codecs, c)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 1<<16 {
			return
		}
		for _, c := range codecs {
			out, err := c.Decompress(in)
			if err == nil && len(out) > 1<<28 {
				t.Fatalf("%s: implausible decode length %d", c.Name(), len(out))
			}
		}
	})
}

// FuzzFillMaskDecompress targets the special-value wrapper's framing.
func FuzzFillMaskDecompress(f *testing.F) {
	shape := compress.Shape{NLev: 1, NLat: 4, NLon: 8}
	data := make([]float32, shape.Len())
	data[3] = 1e35
	inner, _ := compress.New("fpzip-32")
	c := compress.WithFill(inner, 1e35)
	if buf, err := c.Compress(data, shape); err == nil {
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 1<<16 {
			return
		}
		_, _ = c.Decompress(in)
	})
}
