package compress_test

import (
	"math"
	"testing"

	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	"climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := compress.Header{CodecID: compress.IDAPAX, Shape: compress.Shape{NLev: 3, NLat: 17, NLon: 101}}
	buf := compress.PutHeader(nil, h)
	buf = append(buf, 0xde, 0xad)
	got, rest, err := compress.ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header %+v, want %+v", got, h)
	}
	if len(rest) != 2 || rest[0] != 0xde {
		t.Fatalf("payload not preserved: %x", rest)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	if _, _, err := compress.ParseHeader([]byte{1, 2}); err == nil {
		t.Fatal("short buffer should error")
	}
	bad := compress.PutHeader(nil, compress.Header{CodecID: 1, Shape: compress.Shape{NLev: 0, NLat: 1, NLon: 1}})
	if _, _, err := compress.ParseHeader(bad); err == nil {
		t.Fatal("zero dimension should error")
	}
}

func TestRatio(t *testing.T) {
	if got := compress.Ratio(100, 100); got != 0.25 {
		t.Fatalf("Ratio = %v, want 0.25", got)
	}
	if !math.IsNaN(compress.Ratio(10, 0)) {
		t.Fatal("Ratio with n=0 should be NaN")
	}
}

func TestRegistryListsStudyVariants(t *testing.T) {
	names := compress.Names()
	if len(names) < 9 {
		t.Fatalf("registry has only %d codecs: %v", len(names), names)
	}
	for _, v := range compress.StudyVariants() {
		found := false
		for _, n := range names {
			// apax/isa registry names use %g formatting (e.g. "isa-1").
			if n == v || n+".0" == v {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("study variant %q not in registry %v", v, names)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := compress.New("nope"); err == nil {
		t.Fatal("unknown codec should error")
	}
}

func TestFillMaskRoundTrip(t *testing.T) {
	shape := compress.Shape{NLev: 1, NLat: 8, NLon: 16}
	const fill = float32(1e35)
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(i%13) + 0.5
	}
	// Fill a leading run plus scattered points.
	data[0], data[1], data[40], data[41], data[127] = fill, fill, fill, fill, fill

	c := compress.WithFill(fpzip.New(32), fill)
	if c.Name() != "fpzip-32+fill" || !c.Lossless() {
		t.Fatalf("wrapper metadata wrong: %s lossless=%v", c.Name(), c.Lossless())
	}
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], data[i])
		}
	}
}

func TestFillMaskAllFill(t *testing.T) {
	shape := compress.Shape{NLev: 1, NLat: 2, NLon: 4}
	const fill = float32(1e35)
	data := []float32{fill, fill, fill, fill, fill, fill, fill, fill}
	c := compress.WithFill(fpzip.New(32), fill)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != fill {
			t.Fatalf("all-fill field corrupted at %d", i)
		}
	}
}

func TestFillMaskLossyInnerPreservesFill(t *testing.T) {
	shape := compress.Shape{NLev: 1, NLat: 16, NLon: 16}
	const fill = float32(1e35)
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(i)
	}
	for i := 3; i < len(data); i += 9 {
		data[i] = fill
	}
	inner, err := compress.New("apax-4")
	if err != nil {
		t.Fatal(err)
	}
	c := compress.WithFill(inner, fill)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] == fill {
			if got[i] != fill {
				t.Fatalf("fill lost at %d", i)
			}
		} else if math.Abs(float64(got[i]-data[i])) > 1 {
			// Without masking, the 1e35 sentinel would dominate every
			// block exponent and destroy all real values.
			t.Fatalf("lossy value error too large at %d: %v vs %v", i, got[i], data[i])
		}
	}
}

func TestAllCodecsRoundTripViaInterface(t *testing.T) {
	shape := compress.Shape{NLev: 2, NLat: 16, NLon: 32}
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(50 + 10*math.Sin(float64(i)/20))
	}
	for _, name := range compress.Names() {
		c, err := compress.New(name)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatalf("%s: decompress: %v", name, err)
		}
		if len(got) != len(data) {
			t.Fatalf("%s: length %d, want %d", name, len(got), len(data))
		}
		if name == "fpzip-8" {
			// 8-bit precision keeps no mantissa bits at all (values
			// collapse to powers of two); only the round trip is checked.
			continue
		}
		// Gross-error screen only: the aggressive variants (apax-7) are
		// allowed visible loss, but nothing should be wildly off.
		for i := range data {
			if math.Abs(float64(got[i]-data[i])) > 10 {
				t.Fatalf("%s: gross error at %d: %v vs %v", name, i, got[i], data[i])
			}
		}
	}
}
