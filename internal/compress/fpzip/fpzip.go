// Package fpzip reimplements the algorithmic core of Lindstrom &
// Isenburg's fpzip (IEEE TVCG 2006): floating-point values are optionally
// truncated to a precision that is a multiple of 8 bits, mapped to a
// monotonic integer code, predicted from already-coded spatial neighbors
// with a Lorenzo predictor, and the prediction residuals are entropy-coded
// with an adaptive range coder. Precision 32 is lossless for
// single-precision data; 24 and 16 are the lossy variants the paper
// evaluates (fpzip-24, fpzip-16).
package fpzip

import (
	"fmt"
	"math"
	"sync"

	"climcompress/internal/compress"
	"climcompress/internal/entropy"
)

// Codec is an fpzip-style predictive coder at a fixed precision.
type Codec struct {
	// Bits is the retained precision; fpzip requires a multiple of 8
	// (8, 16, 24 or 32). 32 is lossless.
	Bits int
	// Predictor selects the spatial predictor: Lorenzo2D (default) uses
	// f(i-1,j) + f(i,j-1) - f(i-1,j-1); Previous uses the preceding value
	// in scan order. Exposed for the DESIGN.md predictor ablation.
	Predictor Predictor
}

// Predictor enumerates the available spatial predictors.
type Predictor int

const (
	// Lorenzo2D is the 2-D Lorenzo parallelogram predictor.
	Lorenzo2D Predictor = iota
	// Previous predicts each value from its predecessor in scan order.
	Previous
	// Lorenzo3D extends the parallelogram across levels (the 7-term
	// third-order Lorenzo predictor of the original fpzip), falling back
	// to 2-D at level boundaries.
	Lorenzo3D
)

// New returns a codec retaining bits of precision. It panics if bits is
// not one of 8, 16, 24, 32 (mirroring fpzip's interface restriction that
// the paper calls out as its "biggest drawback").
func New(bits int) *Codec {
	if bits != 8 && bits != 16 && bits != 24 && bits != 32 {
		panic(fmt.Sprintf("fpzip: precision %d is not a multiple of 8 in [8,32]", bits))
	}
	return &Codec{Bits: bits}
}

func init() {
	for _, b := range []int{8, 16, 24, 32} {
		b := b
		compress.Register(fmt.Sprintf("fpzip-%d", b), func() compress.Codec { return New(b) })
	}
	compress.Register("fpzip-16-prev", func() compress.Codec {
		return &Codec{Bits: 16, Predictor: Previous}
	})
	compress.Register("fpzip-24-3d", func() compress.Codec {
		return &Codec{Bits: 24, Predictor: Lorenzo3D}
	})
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return fmt.Sprintf("fpzip-%d", c.Bits) }

// Lossless implements compress.Codec.
func (c *Codec) Lossless() bool { return c.Bits >= 32 }

// forwardMap truncates a float32 to the retained precision and maps its bit
// pattern to a monotonically increasing unsigned code, shifted down so
// residuals are small integers. drop = 32 - Bits.
func forwardMap(v float32, drop uint) uint32 {
	u := math.Float32bits(v)
	u &^= (1 << drop) - 1 // truncate least significant mantissa bits
	// Sign-magnitude to monotonic: negative values reverse order.
	if u&0x80000000 != 0 {
		u = ^u
	} else {
		u |= 0x80000000
	}
	return u >> drop
}

// inverseMap undoes forwardMap.
func inverseMap(code uint32, drop uint) float32 {
	u := code << drop
	if u&0x80000000 != 0 {
		u &^= 0x80000000
	} else {
		u = ^u
		u &^= (1 << drop) - 1
	}
	return math.Float32frombits(u)
}

// fpzipScratch is the reusable working set of one Compress or Decompress
// call: the monotonic integer codes, the range coder and its model.
type fpzipScratch struct {
	codes []uint32
	enc   *entropy.Encoder
	dec   *entropy.Decoder
	model *entropy.SignedModel
}

var scratchPool = sync.Pool{New: func() any {
	return &fpzipScratch{
		enc:   entropy.NewEncoder(0),
		dec:   entropy.NewDecoder(nil),
		model: entropy.NewSignedModel(),
	}
}}

func (s *fpzipScratch) growCodes(n int) []uint32 {
	if cap(s.codes) < n {
		s.codes = make([]uint32, n)
	}
	return s.codes[:n]
}

// Compress implements compress.Codec.
func (c *Codec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	return c.CompressInto(nil, data, shape)
}

// CompressInto implements compress.AppendCodec with pooled scratch; the
// appended stream is bit-identical to Compress's.
func (c *Codec) CompressInto(dst []byte, data []float32, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return dst, fmt.Errorf("fpzip: shape %v does not match %d values", shape, len(data))
	}
	drop := uint(32 - c.Bits)
	maxCode := int64(^uint32(0) >> drop)

	s := scratchPool.Get().(*fpzipScratch)
	defer scratchPool.Put(s)
	enc, model := s.enc, s.model
	enc.Reset()
	model.Reset()

	nlat, nlon := shape.NLat, shape.NLon
	codes := s.growCodes(len(data))
	for i, v := range data {
		codes[i] = forwardMap(v, drop)
	}
	levStride := nlat * nlon
	for lev := 0; lev < shape.NLev; lev++ {
		base := lev * levStride
		for lat := 0; lat < nlat; lat++ {
			row := base + lat*nlon
			for lon := 0; lon < nlon; lon++ {
				i := row + lon
				pred := c.predict(codes, i, lat, lon, nlon, levStride, maxCode)
				model.Encode(enc, int64(codes[i])-pred)
			}
		}
	}
	dst = compress.PutHeader(dst, compress.Header{CodecID: compress.IDFPZip, Shape: shape})
	dst = append(dst, byte(c.Bits), byte(c.Predictor))
	return append(dst, enc.Flush()...), nil
}

// predict returns the Lorenzo or previous-value prediction for index i,
// clamped into the valid code range. levStride is the number of points per
// level, so i-levStride is the same horizontal position one level up.
func (c *Codec) predict(codes []uint32, i, lat, lon, nlon, levStride int, maxCode int64) int64 {
	var p int64
	switch {
	case c.Predictor == Previous:
		if i > 0 {
			p = int64(codes[i-1])
		}
	case c.Predictor == Lorenzo3D && i >= levStride && lat > 0 && lon > 0:
		p = int64(codes[i-1]) + int64(codes[i-nlon]) + int64(codes[i-levStride]) -
			int64(codes[i-nlon-1]) - int64(codes[i-levStride-1]) - int64(codes[i-levStride-nlon]) +
			int64(codes[i-levStride-nlon-1])
	case lat > 0 && lon > 0:
		p = int64(codes[i-1]) + int64(codes[i-nlon]) - int64(codes[i-nlon-1])
	case lat > 0:
		p = int64(codes[i-nlon])
	case lon > 0:
		p = int64(codes[i-1])
	case i >= levStride: // first point of a level: same point, level above
		p = int64(codes[i-levStride])
	}
	if p < 0 {
		p = 0
	}
	if p > maxCode {
		p = maxCode
	}
	return p
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(buf []byte) ([]float32, error) {
	return c.DecompressInto(nil, buf)
}

// DecompressInto implements compress.AppendCodec, reconstructing into dst's
// backing array when its capacity suffices.
func (c *Codec) DecompressInto(dst []float32, buf []byte) ([]float32, error) {
	s := scratchPool.Get().(*fpzipScratch)
	defer scratchPool.Put(s)
	codes, drop, err := decodeCodes(s, buf)
	if err != nil {
		return dst, err
	}
	out := compress.GrowFloats(dst, len(codes))
	for i, code := range codes {
		out[i] = inverseMap(code, drop)
	}
	return out, nil
}

// decodeCodes validates buf and entropy-decodes the full monotonic integer
// code array into s's scratch. Both the materialized and the chunked decode
// paths run through it, so their residual checks and code values are
// identical by construction. (The code array itself is unavoidable working
// state: the Lorenzo predictor reads codes a full row and a full level
// back. Only the float field is skippable.)
func decodeCodes(s *fpzipScratch, buf []byte) ([]uint32, uint, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return nil, 0, err
	}
	if h.CodecID != compress.IDFPZip {
		return nil, 0, fmt.Errorf("%w: not an fpzip stream", compress.ErrCorrupt)
	}
	if len(rest) < 2 {
		return nil, 0, fmt.Errorf("%w: missing fpzip parameters", compress.ErrCorrupt)
	}
	bits := int(rest[0])
	if bits != 8 && bits != 16 && bits != 24 && bits != 32 {
		return nil, 0, fmt.Errorf("%w: bad precision %d", compress.ErrCorrupt, bits)
	}
	dc := Codec{Bits: bits, Predictor: Predictor(rest[1])}
	drop := uint(32 - bits)
	maxCode := int64(^uint32(0) >> drop)
	if err := compress.CheckPlausible(h.Shape.Len(), len(rest)-2); err != nil {
		return nil, 0, err
	}

	dec, model := s.dec, s.model
	dec.Reset(rest[2:])
	model.Reset()
	n := h.Shape.Len()
	codes := s.growCodes(n)
	for i := range codes {
		codes[i] = 0
	}
	nlat, nlon := h.Shape.NLat, h.Shape.NLon
	levStride := nlat * nlon
	for lev := 0; lev < h.Shape.NLev; lev++ {
		base := lev * levStride
		for lat := 0; lat < nlat; lat++ {
			row := base + lat*nlon
			for lon := 0; lon < nlon; lon++ {
				i := row + lon
				pred := dc.predict(codes, i, lat, lon, nlon, levStride, maxCode)
				v := pred + model.Decode(dec)
				if v < 0 || v > maxCode {
					return nil, 0, fmt.Errorf("%w: residual out of range", compress.ErrCorrupt)
				}
				codes[i] = uint32(v)
			}
			if dec.Overrun() {
				return nil, 0, fmt.Errorf("%w: truncated fpzip stream", compress.ErrCorrupt)
			}
		}
	}
	return codes, drop, nil
}

// DecodeChunks implements compress.ChunkDecoder: the truncation inverse map
// runs chunk by chunk over the decoded code array, so the reconstructed
// float field is never materialized (the uint32 scratch the predictor needs
// is pooled and shared with the materialized path).
func (c *Codec) DecodeChunks(compressed []byte, chunk []float32, yield func(off int, vals []float32) error) error {
	s := scratchPool.Get().(*fpzipScratch)
	defer scratchPool.Put(s)
	codes, drop, err := decodeCodes(s, compressed)
	if err != nil {
		return err
	}
	if len(chunk) == 0 {
		chunk = compress.GetFloats(compress.DefaultChunkLen)
		defer compress.PutFloats(chunk)
	}
	n := len(codes)
	for off := 0; off < n; off += len(chunk) {
		end := off + len(chunk)
		if end > n {
			end = n
		}
		seg := chunk[:end-off]
		for j := range seg {
			seg[j] = inverseMap(codes[off+j], drop)
		}
		if err := yield(off, seg); err != nil {
			return err
		}
	}
	return nil
}

// MaxRelativeError returns the worst-case relative error of the codec's
// precision on normalized floats: 2^-(mantissa bits kept + 1). The paper's
// fpzip bounds relative (not absolute) error, in contrast to APAX.
func (c *Codec) MaxRelativeError() float64 {
	kept := c.Bits - 9 // 1 sign + 8 exponent bits
	if kept >= 23 {
		return 0
	}
	if kept < 0 {
		kept = 0
	}
	return math.Ldexp(1, -kept)
}
