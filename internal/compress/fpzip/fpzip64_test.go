package fpzip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"climcompress/internal/compress"
)

func smooth64(n int) ([]float64, compress.Shape) {
	shape := compress.Shape{NLev: 2, NLat: 16, NLon: n / 32}
	data := make([]float64, shape.Len())
	for lev := 0; lev < shape.NLev; lev++ {
		for lat := 0; lat < shape.NLat; lat++ {
			for lon := 0; lon < shape.NLon; lon++ {
				i := (lev*shape.NLat+lat)*shape.NLon + lon
				data[i] = 10*math.Sin(float64(lat)/3)*math.Cos(float64(lon)/5) + float64(lev)
			}
		}
	}
	return data, shape
}

func TestFpzip64LosslessRoundTrip(t *testing.T) {
	data, shape := smooth64(1024)
	data[0] = 0
	data[1] = math.Copysign(0, -1)
	data[2] = math.MaxFloat64
	data[3] = -math.MaxFloat64
	data[4] = 5e-324 // smallest denormal
	data[5] = math.Pi
	c := New64(64)
	if !c.Lossless() {
		t.Fatal("fpzip64-64 must report lossless")
	}
	buf, err := c.Compress64(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress64(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Float64bits(got[i]) != math.Float64bits(data[i]) {
			t.Fatalf("not lossless at %d: %v vs %v", i, got[i], data[i])
		}
	}
}

func TestFpzip64LossyBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shape := compress.Shape{NLev: 1, NLat: 32, NLon: 32}
	data := make([]float64, shape.Len())
	for i := range data {
		data[i] = (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(12)-6))
	}
	for _, bits := range []int{32, 48, 56} {
		c := &Codec64{Bits: bits}
		buf, err := c.Compress64(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decompress64(buf)
		if err != nil {
			t.Fatal(err)
		}
		// Mantissa bits kept = bits - 12 (sign + 11 exponent bits).
		bound := math.Ldexp(1, -(bits - 12))
		for i := range data {
			if data[i] == 0 {
				continue
			}
			rel := math.Abs(got[i]-data[i]) / math.Abs(data[i])
			if rel > bound {
				t.Fatalf("bits=%d: rel error %v exceeds %v at %d", bits, rel, bound, i)
			}
		}
	}
}

func TestFpzip64MapQuick(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ca, cb := forwardMap64(a, 0), forwardMap64(b, 0)
		switch {
		case a < b:
			return ca < cb
		case a > b:
			return ca > cb
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFpzip64MapInverse(t *testing.T) {
	vals := []float64{0, 1, -1, math.Pi, -math.E, 1e300, -1e300, 1e-300, 5e-324}
	for _, drop := range []uint{0, 16, 32} {
		for _, v := range vals {
			code := forwardMap64(v, drop)
			back := inverseMap64(code, drop)
			if forwardMap64(back, drop) != code {
				t.Fatalf("drop %d: map not idempotent for %v", drop, v)
			}
		}
	}
}

func TestFpzip64BetterThanRawOnSmoothData(t *testing.T) {
	data, shape := smooth64(8192)
	c := New64(64)
	buf, err := c.Compress64(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) >= 8*len(data) {
		t.Fatalf("lossless fpzip64 did not compress: %d vs %d raw bytes", len(buf), 8*len(data))
	}
}

func TestFpzip64ViaCodecInterface(t *testing.T) {
	c, err := compress.New("fpzip64-64")
	if err != nil {
		t.Fatal(err)
	}
	shape := compress.Shape{NLev: 1, NLat: 8, NLon: 8}
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32(i) * 1.5
	}
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("interface round trip failed at %d", i)
		}
	}
}

func TestFpzip64RejectsNarrowStream(t *testing.T) {
	data, shape := smoothData(1024)
	buf, _ := New(32).Compress(data, shape)
	if _, err := New64(64).Decompress64(buf); err == nil {
		t.Fatal("fpzip64 should reject a 32-bit stream")
	}
	wide, _ := smooth64(1024)
	buf64, _ := New64(64).Compress64(wide, compress.Shape{NLev: 2, NLat: 16, NLon: 32})
	if _, err := New(32).Decompress(buf64); err == nil {
		t.Fatal("fpzip32 should reject a 64-bit stream")
	}
}

func TestFpzip64BadPrecisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New64(63) should panic")
		}
	}()
	New64(63)
}

func BenchmarkCompressFpzip64Lossless(b *testing.B) {
	data, shape := smooth64(32768)
	c := New64(64)
	b.SetBytes(int64(8 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress64(data, shape); err != nil {
			b.Fatal(err)
		}
	}
}
