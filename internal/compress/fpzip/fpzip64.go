package fpzip

import (
	"fmt"
	"math"

	"climcompress/internal/compress"
	"climcompress/internal/entropy"
)

// Codec64 is the double-precision variant of the predictive coder. CESM
// "restart files" hold the full 8-byte model state and must be compressed
// losslessly (the paper defers them to future work, citing Laney et al.);
// Codec64 at 64 bits provides exactly that, and lower precisions give the
// lossy modes fpzip offers for 64-bit data.
type Codec64 struct {
	// Bits is the retained precision, a multiple of 8 in [8, 64].
	// 64 is lossless.
	Bits int
	// Predictor selects the spatial predictor (shared with the 32-bit
	// codec).
	Predictor Predictor
}

// New64 returns a double-precision codec retaining bits of precision.
func New64(bits int) *Codec64 {
	if bits%8 != 0 || bits < 8 || bits > 64 {
		panic(fmt.Sprintf("fpzip: precision %d is not a multiple of 8 in [8,64]", bits))
	}
	return &Codec64{Bits: bits}
}

func init() {
	for _, b := range []int{48, 64} {
		b := b
		compress.Register(fmt.Sprintf("fpzip64-%d", b), func() compress.Codec { return New64(b) })
	}
}

// Name identifies the codec variant.
func (c *Codec64) Name() string { return fmt.Sprintf("fpzip64-%d", c.Bits) }

// Lossless reports bit-exact reconstruction (Bits == 64).
func (c *Codec64) Lossless() bool { return c.Bits >= 64 }

// forwardMap64 truncates a float64 to the retained precision and maps it to
// a monotonic unsigned code, shifted down by the dropped bits.
func forwardMap64(v float64, drop uint) uint64 {
	u := math.Float64bits(v)
	if drop > 0 {
		u &^= 1<<drop - 1
	}
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	return u >> drop
}

// inverseMap64 undoes forwardMap64.
func inverseMap64(code uint64, drop uint) float64 {
	u := code << drop
	if u&(1<<63) != 0 {
		u &^= 1 << 63
	} else {
		u = ^u
		if drop > 0 {
			u &^= 1<<drop - 1
		}
	}
	return math.Float64frombits(u)
}

// predict64 mirrors the 32-bit predictor in uint64 code space. Prediction
// wrap-around is harmless: residuals are taken modulo 2^64 and the minimal
// signed representative is coded.
func (c *Codec64) predict64(codes []uint64, i, lat, lon, nlon, levStride int) uint64 {
	switch {
	case c.Predictor == Previous:
		if i > 0 {
			return codes[i-1]
		}
	case lat > 0 && lon > 0:
		return codes[i-1] + codes[i-nlon] - codes[i-nlon-1]
	case lat > 0:
		return codes[i-nlon]
	case lon > 0:
		return codes[i-1]
	case i >= levStride:
		return codes[i-levStride]
	}
	return 0
}

// Compress64 packs double-precision values.
func (c *Codec64) Compress64(data []float64, shape compress.Shape) ([]byte, error) {
	if shape.Len() != len(data) {
		return nil, fmt.Errorf("fpzip64: shape %v does not match %d values", shape, len(data))
	}
	drop := uint(64 - c.Bits)
	enc := entropy.NewEncoder(2 * len(data))
	model := entropy.NewSignedModel()
	codes := make([]uint64, len(data))
	for i, v := range data {
		codes[i] = forwardMap64(v, drop)
	}
	nlat, nlon := shape.NLat, shape.NLon
	levStride := nlat * nlon
	for lev := 0; lev < shape.NLev; lev++ {
		base := lev * levStride
		for lat := 0; lat < nlat; lat++ {
			row := base + lat*nlon
			for lon := 0; lon < nlon; lon++ {
				i := row + lon
				pred := c.predict64(codes, i, lat, lon, nlon, levStride)
				// Residual modulo 2^64; int64 reinterpretation selects the
				// minimal-magnitude representative.
				model.Encode(enc, int64(codes[i]-pred))
			}
		}
	}
	out := compress.PutHeader(nil, compress.Header{CodecID: compress.IDFPZip, Shape: shape})
	out = append(out, 64, byte(c.Bits), byte(c.Predictor)) // 64 marks the wide variant
	return append(out, enc.Flush()...), nil
}

// Decompress64 reconstructs double-precision values.
func (c *Codec64) Decompress64(buf []byte) ([]float64, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.CodecID != compress.IDFPZip || len(rest) < 3 || rest[0] != 64 {
		return nil, fmt.Errorf("%w: not an fpzip64 stream", compress.ErrCorrupt)
	}
	bits := int(rest[1])
	if bits%8 != 0 || bits < 8 || bits > 64 {
		return nil, fmt.Errorf("%w: bad precision %d", compress.ErrCorrupt, bits)
	}
	dc := &Codec64{Bits: bits, Predictor: Predictor(rest[2])}
	drop := uint(64 - bits)
	if err := compress.CheckPlausible(h.Shape.Len(), len(rest)-3); err != nil {
		return nil, err
	}
	dec := entropy.NewDecoder(rest[3:])
	model := entropy.NewSignedModel()
	n := h.Shape.Len()
	codes := make([]uint64, n)
	nlat, nlon := h.Shape.NLat, h.Shape.NLon
	levStride := nlat * nlon
	maxCode := ^uint64(0) >> drop
	for lev := 0; lev < h.Shape.NLev; lev++ {
		base := lev * levStride
		for lat := 0; lat < nlat; lat++ {
			row := base + lat*nlon
			for lon := 0; lon < nlon; lon++ {
				i := row + lon
				pred := dc.predict64(codes, i, lat, lon, nlon, levStride)
				code := pred + uint64(model.Decode(dec))
				if code > maxCode {
					return nil, fmt.Errorf("%w: code out of range", compress.ErrCorrupt)
				}
				codes[i] = code
			}
			if dec.Overrun() {
				return nil, fmt.Errorf("%w: truncated fpzip64 stream", compress.ErrCorrupt)
			}
		}
	}
	out := make([]float64, n)
	for i, code := range codes {
		out[i] = inverseMap64(code, drop)
	}
	return out, nil
}

// Compress implements compress.Codec by widening float32 input, so the
// 64-bit coder can be used anywhere a Codec is expected.
func (c *Codec64) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	wide := make([]float64, len(data))
	for i, v := range data {
		wide[i] = float64(v)
	}
	return c.Compress64(wide, shape)
}

// Decompress implements compress.Codec (narrowing to float32).
func (c *Codec64) Decompress(buf []byte) ([]float32, error) {
	wide, err := c.Decompress64(buf)
	if err != nil {
		return nil, err
	}
	out := make([]float32, len(wide))
	for i, v := range wide {
		out[i] = float32(v)
	}
	return out, nil
}
