package fpzip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"climcompress/internal/compress"
)

func smoothData(n int) ([]float32, compress.Shape) {
	shape := compress.Shape{NLev: 2, NLat: 16, NLon: n / 32}
	data := make([]float32, shape.Len())
	for lev := 0; lev < shape.NLev; lev++ {
		for lat := 0; lat < shape.NLat; lat++ {
			for lon := 0; lon < shape.NLon; lon++ {
				i := (lev*shape.NLat+lat)*shape.NLon + lon
				data[i] = float32(10*math.Sin(float64(lat)/3)*math.Cos(float64(lon)/5) + float64(lev))
			}
		}
	}
	return data, shape
}

func TestLosslessRoundTrip(t *testing.T) {
	data, shape := smoothData(1024)
	// Sprinkle in awkward values.
	data[0] = 0
	data[1] = float32(math.Copysign(0, -1))
	data[2] = math.MaxFloat32
	data[3] = -math.MaxFloat32
	data[4] = 1e-38
	data[5] = -1e-45
	c := New(32)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Float32bits(got[i]) != math.Float32bits(data[i]) {
			t.Fatalf("fpzip-32 not lossless at %d: %v vs %v", i, got[i], data[i])
		}
	}
	if !c.Lossless() {
		t.Fatal("fpzip-32 must report lossless")
	}
}

func TestLossyErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shape := compress.Shape{NLev: 1, NLat: 32, NLon: 32}
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = float32((rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(8)-4)))
	}
	for _, bits := range []int{16, 24} {
		c := New(bits)
		buf, err := c.Compress(data, shape)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		bound := c.MaxRelativeError()
		for i := range data {
			if data[i] == 0 {
				if got[i] != 0 {
					t.Fatalf("fpzip-%d: zero not preserved", bits)
				}
				continue
			}
			rel := math.Abs(float64(got[i]-data[i])) / math.Abs(float64(data[i]))
			if rel > bound {
				t.Fatalf("fpzip-%d: relative error %v exceeds bound %v at %d (%v -> %v)",
					bits, rel, bound, i, data[i], got[i])
			}
		}
		if c.Lossless() {
			t.Fatalf("fpzip-%d must report lossy", bits)
		}
	}
}

func TestMonotonicMapOrderPreserving(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		ca, cb := forwardMap(a, 0), forwardMap(b, 0)
		switch {
		case a < b:
			return ca < cb
		case a > b:
			return ca > cb
		default:
			return true // -0 and +0 may differ in code; both map back to 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMapRoundTripAllDrops(t *testing.T) {
	vals := []float32{0, 1, -1, 3.14159, -2.71828, 1e10, -1e10, 1e-10, -1e-10}
	for _, drop := range []uint{0, 8, 16, 24} {
		for _, v := range vals {
			code := forwardMap(v, drop)
			back := inverseMap(code, drop)
			// Re-encoding the truncated value must be a fixed point.
			if forwardMap(back, drop) != code {
				t.Fatalf("drop %d: map not idempotent for %v", drop, v)
			}
		}
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	data, shape := smoothData(4096)
	c := New(32)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	cr := compress.Ratio(len(buf), len(data))
	if cr > 0.8 {
		t.Fatalf("lossless fpzip on smooth data: CR %v, expected < 0.8", cr)
	}
	lossy := New(16)
	buf16, _ := lossy.Compress(data, shape)
	if len(buf16) >= len(buf) {
		t.Fatalf("fpzip-16 (%d bytes) should be smaller than fpzip-32 (%d bytes)", len(buf16), len(buf))
	}
}

func TestHigherPrecisionLargerError(t *testing.T) {
	data, shape := smoothData(2048)
	var prevMax float64
	for i, bits := range []int{24, 16} {
		c := New(bits)
		buf, _ := c.Compress(data, shape)
		got, err := c.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
		var maxErr float64
		for j := range data {
			if e := math.Abs(float64(got[j] - data[j])); e > maxErr {
				maxErr = e
			}
		}
		if i > 0 && maxErr < prevMax {
			t.Fatalf("fpzip-16 error %v not larger than fpzip-24 error %v", maxErr, prevMax)
		}
		prevMax = maxErr
	}
}

func TestPreviousPredictorRoundTrip(t *testing.T) {
	data, shape := smoothData(1024)
	c := &Codec{Bits: 32, Predictor: Previous}
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("previous-predictor mismatch at %d", i)
		}
	}
}

func TestLorenzo3DRoundTrip(t *testing.T) {
	data, shape := smoothData(4096) // NLev=2 exercises the 3-D branch
	c := &Codec{Bits: 32, Predictor: Lorenzo3D}
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("3-D Lorenzo mismatch at %d", i)
		}
	}
}

func TestLorenzo3DHelpsOnVerticallyCorrelatedData(t *testing.T) {
	// A field whose levels are near-copies: the 3-D predictor should beat
	// the 2-D one.
	shape := compress.Shape{NLev: 8, NLat: 16, NLon: 16}
	data := make([]float32, shape.Len())
	for lev := 0; lev < shape.NLev; lev++ {
		for lat := 0; lat < shape.NLat; lat++ {
			for lon := 0; lon < shape.NLon; lon++ {
				i := (lev*shape.NLat+lat)*shape.NLon + lon
				data[i] = float32(math.Sin(float64(lat*lon))*20 + float64(lev)*0.01)
			}
		}
	}
	c2 := &Codec{Bits: 32, Predictor: Lorenzo2D}
	c3 := &Codec{Bits: 32, Predictor: Lorenzo3D}
	b2, _ := c2.Compress(data, shape)
	b3, err := c3.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if len(b3) >= len(b2) {
		t.Fatalf("3-D Lorenzo (%d bytes) did not beat 2-D (%d bytes) on vertically correlated data",
			len(b3), len(b2))
	}
	got, err := c3.Decompress(b3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestBadPrecisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(20) should panic: precision must be a multiple of 8")
		}
	}()
	New(20)
}

func TestShapeMismatch(t *testing.T) {
	c := New(32)
	if _, err := c.Compress(make([]float32, 10), compress.Shape{NLev: 1, NLat: 2, NLon: 3}); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestCorruptStream(t *testing.T) {
	data, shape := smoothData(1024)
	c := New(32)
	buf, _ := c.Compress(data, shape)
	if _, err := c.Decompress(buf[:5]); err == nil {
		t.Fatal("truncated header should error")
	}
	buf[0] = 99
	if _, err := c.Decompress(buf); err == nil {
		t.Fatal("wrong codec ID should error")
	}
}

func TestRegistryVariants(t *testing.T) {
	for _, name := range []string{"fpzip-16", "fpzip-24", "fpzip-32"} {
		c, err := compress.New(name)
		if err != nil {
			t.Fatalf("registry missing %s: %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("name mismatch: %s vs %s", c.Name(), name)
		}
	}
}

func TestRandomDataRoundTrip(t *testing.T) {
	// Pure noise: compression will be poor but must remain correct.
	rng := rand.New(rand.NewSource(3))
	shape := compress.Shape{NLev: 1, NLat: 20, NLon: 50}
	data := make([]float32, shape.Len())
	for i := range data {
		data[i] = math.Float32frombits(rng.Uint32())
		if math.IsNaN(float64(data[i])) {
			data[i] = 0
		}
	}
	c := New(32)
	buf, err := c.Compress(data, shape)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decompress(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Float32bits(got[i]) != math.Float32bits(data[i]) {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func BenchmarkCompressFPZip24(b *testing.B) {
	data, shape := smoothData(32768)
	c := New(24)
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, shape); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressFPZip24(b *testing.B) {
	data, shape := smoothData(32768)
	c := New(24)
	buf, _ := c.Compress(data, shape)
	b.SetBytes(int64(4 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(buf); err != nil {
			b.Fatal(err)
		}
	}
}
