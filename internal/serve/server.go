package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"climcompress/internal/artifact"
	"climcompress/internal/experiments"
)

// Config sizes the daemon. The zero value of every field has a sensible
// default resolved by New.
type Config struct {
	// Runner owns the substrate: catalog, ensemble statistics, artifact
	// cache, verification thresholds. Required.
	Runner *experiments.Runner

	// MaxInflight bounds concurrent verdict computations (not concurrent
	// connections — cached responses bypass admission entirely). Default:
	// GOMAXPROCS.
	MaxInflight int

	// MaxQueue bounds computations waiting for an inflight slot. A request
	// arriving with the queue full is shed with 429. Default:
	// 4×MaxInflight.
	MaxQueue int

	// RetryAfterSec is the Retry-After header value on shed responses.
	// Default: 1.
	RetryAfterSec int
}

// Server answers verdict queries. The hot path is lock-free: a request
// resolves its (variable, variant) pair against a key table precomputed at
// startup, then looks its rendered response up in a concurrent byte cache.
// Only cache misses pass through admission control and the singleflight
// group, so N concurrent identical cold requests cost one computation and
// N-1 coalesced waits.
type Server struct {
	cfg Config

	// keys maps (variable, variant) to the artifact-store digest of the
	// verdict record. Built once in New; read-only afterwards — no SHA-256
	// and no catalog scan on the request path.
	keys map[reqKey]artifact.ID

	// resp caches rendered response bytes per (digest, format). Values are
	// immutable []byte written exactly once by the singleflight winner.
	resp sync.Map

	flights flightGroup
	gate    *gate

	requests  atomic.Int64
	respHits  atomic.Int64
	coalesced atomic.Int64
	computes  atomic.Int64
	shed      atomic.Int64
	errors    atomic.Int64
	preloaded atomic.Int64

	// computeHook, when set, runs inside the admission slot before the
	// verdict computation. Tests use it to hold slots open and saturate
	// the gate deterministically.
	computeHook func()
}

type reqKey struct {
	variable string
	variant  string
}

type respKey struct {
	id     artifact.ID
	binary bool
}

// rendered is a verdict in both wire formats, produced together by the
// singleflight winner so requests that differ only in format still
// coalesce.
type rendered struct {
	json   []byte
	binary []byte
}

// gate is the admission controller: a semaphore of MaxInflight slots with
// at most MaxQueue waiters. Acquisition never blocks on a client — once a
// computation holds a slot it runs to completion, so waiters drain in
// bounded time and anything beyond the queue bound is shed immediately.
type gate struct {
	sem      chan struct{}
	maxQueue int64
	queued   atomic.Int64
}

func newGate(inflight, maxQueue int) *gate {
	return &gate{sem: make(chan struct{}, inflight), maxQueue: int64(maxQueue)}
}

// acquire claims an inflight slot, reporting false (shed) when both the
// slots and the queue are full.
func (g *gate) acquire() bool {
	select {
	case g.sem <- struct{}{}:
		return true
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return false
	}
	g.sem <- struct{}{}
	g.queued.Add(-1)
	return true
}

func (g *gate) release() { <-g.sem }

// New builds a Server and precomputes the request key table. Deriving the
// first key forces the substrate content digest, which integrates (or
// loads from cache) the chaotic-core ensemble — so New is deliberately the
// expensive call and request handling is not.
func New(cfg Config) (*Server, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("serve: Config.Runner is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInflight
	}
	if cfg.RetryAfterSec <= 0 {
		cfg.RetryAfterSec = 1
	}
	s := &Server{
		cfg:  cfg,
		keys: make(map[reqKey]artifact.ID),
		gate: newGate(cfg.MaxInflight, cfg.MaxQueue),
	}
	for _, name := range cfg.Runner.VariableNames() {
		for _, variant := range experiments.Variants() {
			id, err := cfg.Runner.VerdictKey(name, variant)
			if err != nil {
				return nil, fmt.Errorf("serve: key table: %w", err)
			}
			s.keys[reqKey{name, variant}] = id
		}
	}
	return s, nil
}

// Preload builds the ensemble statistics of every catalog variable so the
// first request for each variable pays no cold stats build. Returns the
// number of variables resident.
func (s *Server) Preload(ctx context.Context) (int, error) {
	n, err := s.cfg.Runner.PreloadStats(ctx)
	s.preloaded.Store(int64(n))
	return n, err
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /verdict", s.handleVerdict)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

// VerdictRequest is the POST /verdict body: the field (catalog variable)
// and the codec+params recipe (study variant), plus the response format.
type VerdictRequest struct {
	Variable string `json:"variable"`
	Variant  string `json:"variant"`
	// Format selects the response encoding: "json" (default) or "binary"
	// (length-framed, see AppendBinary).
	Format string `json:"format,omitempty"`
}

// bodyPool recycles request read buffers; verdict request bodies are tiny
// and a warm hit should not allocate per request beyond what
// encoding/json needs for two short strings.
var bodyPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

const maxBodyBytes = 1 << 16

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	bufp := bodyPool.Get().(*[]byte)
	defer bodyPool.Put(bufp)
	buf, err := readAll((*bufp)[:0], http.MaxBytesReader(w, r.Body, maxBodyBytes))
	*bufp = buf[:0]
	if err != nil {
		s.fail(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req VerdictRequest
	if err := json.Unmarshal(buf, &req); err != nil {
		s.fail(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	binary := false
	switch req.Format {
	case "", "json":
	case "binary":
		binary = true
	default:
		s.fail(w, http.StatusBadRequest, "unknown format %q", req.Format)
		return
	}
	if req.Format == "" && r.Header.Get("Accept") == ContentTypeBinary {
		binary = true
	}
	id, ok := s.keys[reqKey{req.Variable, req.Variant}]
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown variable/variant %q/%q", req.Variable, req.Variant)
		return
	}

	if b, ok := s.resp.Load(respKey{id, binary}); ok {
		s.respHits.Add(1)
		writeVerdict(w, binary, b.([]byte))
		return
	}

	rend, err, shared := s.flights.Do(id, func() (*rendered, error) {
		if !s.gate.acquire() {
			return nil, errShed
		}
		defer s.gate.release()
		if s.computeHook != nil {
			s.computeHook()
		}
		s.computes.Add(1)
		o, err := s.cfg.Runner.VerdictFor(req.Variable, req.Variant)
		if err != nil {
			return nil, err
		}
		v := FromOutcome(req.Variable, req.Variant, o)
		rend := &rendered{json: v.AppendJSON(nil), binary: v.AppendBinary(nil)}
		s.resp.Store(respKey{id, false}, rend.json)
		s.resp.Store(respKey{id, true}, rend.binary)
		return rend, nil
	})
	if shared {
		s.coalesced.Add(1)
	}
	switch {
	case err == errShed:
		s.shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSec))
		s.fail(w, http.StatusTooManyRequests, "server saturated, retry later")
	case err != nil:
		s.fail(w, http.StatusInternalServerError, "verdict: %v", err)
	case binary:
		writeVerdict(w, true, rend.binary)
	default:
		writeVerdict(w, false, rend.json)
	}
}

var errShed = fmt.Errorf("serve: admission queue full")

func writeVerdict(w http.ResponseWriter, binary bool, body []byte) {
	if binary {
		w.Header().Set("Content-Type", ContentTypeBinary)
	} else {
		w.Header().Set("Content-Type", ContentTypeJSON)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// fail writes a JSON error body. Shed and error responses are off the hot
// path, so plain fmt/json is fine here.
func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	if code >= http.StatusInternalServerError {
		s.errors.Add(1)
	}
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(code)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, "{\"error\":%s}\n", msg)
}

// readAll is io.ReadAll into a caller-owned buffer (the pool above), so
// repeated requests reuse one allocation.
func readAll(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// StatsResponse is the GET /stats body: the artifact store's counters
// (the exact struct internal/artifact serializes) plus the serving-layer
// counters.
type StatsResponse struct {
	Cache artifact.Stats `json:"cache"`
	Serve ServeStats     `json:"serve"`
}

// ServeStats are the serving-layer counters. Requests = RespCacheHits +
// Coalesced + Computes + Shed + Errors + rejected-input requests; the
// split is the daemon's whole performance story (how much traffic the
// byte cache absorbed, how much coalescing absorbed, how little reached
// the verifier).
type ServeStats struct {
	Requests      int64 `json:"requests"`
	RespCacheHits int64 `json:"resp_cache_hits"`
	Coalesced     int64 `json:"coalesced"`
	Computes      int64 `json:"computes"`
	Shed          int64 `json:"shed"`
	Errors        int64 `json:"errors"`
	Queued        int64 `json:"queued"`
	Inflight      int64 `json:"inflight"`
	PreloadedVars int64 `json:"preloaded_vars"`
	Variables     int64 `json:"variables"`
	Variants      int64 `json:"variants"`
}

// Stats snapshots the serving counters.
func (s *Server) Stats() StatsResponse {
	return StatsResponse{
		Cache: s.cfg.Runner.Cfg.Cache.Stats(),
		Serve: ServeStats{
			Requests:      s.requests.Load(),
			RespCacheHits: s.respHits.Load(),
			Coalesced:     s.coalesced.Load(),
			Computes:      s.computes.Load(),
			Shed:          s.shed.Load(),
			Errors:        s.errors.Load(),
			Queued:        s.gate.queued.Load(),
			Inflight:      int64(len(s.gate.sem)),
			PreloadedVars: s.preloaded.Load(),
			Variables:     int64(len(s.cfg.Runner.VariableNames())),
			Variants:      int64(len(experiments.Variants())),
		},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body, err := json.Marshal(s.Stats())
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "stats: %v", err)
		return
	}
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.Write(append(body, '\n'))
}
