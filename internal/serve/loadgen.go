package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadResult is one load-test measurement: wall-clock throughput and the
// client-observed latency quantiles. The bench harness copies these into
// BENCH_PR6.json entries (OpsPerSec, P50Ns, P99Ns) that benchdiff tracks
// across PRs.
type LoadResult struct {
	Requests int           // requests attempted
	OK       int           // 2xx responses
	Shed     int           // 429 responses
	Errors   int           // transport errors and non-2xx/429 statuses
	Elapsed  time.Duration // wall clock for the whole run
	P50      time.Duration // median request latency
	P99      time.Duration // 99th-percentile request latency
}

// OpsPerSec is the successful-response throughput of the run.
func (r LoadResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// LoadSpec describes a load run against a running daemon.
type LoadSpec struct {
	URL         string   // base URL, e.g. http://127.0.0.1:8437
	Variables   []string // request mix: variables, cycled
	Variants    []string // request mix: variants, cycled
	Total       int      // total requests
	Concurrency int      // concurrent client workers
	Binary      bool     // request the binary format
}

// Load drives the daemon with Total requests spread over Concurrency
// workers, cycling through the Variables × Variants mix, and reports
// throughput and latency quantiles. Requests reuse pooled bodies and one
// shared transport with keep-alives, so the client side stays cheap enough
// to saturate the server rather than itself.
func Load(spec LoadSpec) (LoadResult, error) {
	if spec.Total <= 0 || spec.Concurrency <= 0 {
		return LoadResult{}, fmt.Errorf("serve: load spec needs Total and Concurrency > 0")
	}
	if len(spec.Variables) == 0 || len(spec.Variants) == 0 {
		return LoadResult{}, fmt.Errorf("serve: load spec needs a variable/variant mix")
	}
	format := ""
	if spec.Binary {
		format = `,"format":"binary"`
	}
	bodies := make([][]byte, 0, len(spec.Variables)*len(spec.Variants))
	for _, name := range spec.Variables {
		for _, variant := range spec.Variants {
			bodies = append(bodies,
				fmt.Appendf(nil, `{"variable":%q,"variant":%q%s}`, name, variant, format))
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: spec.Concurrency,
	}}
	defer client.CloseIdleConnections()
	url := spec.URL + "/verdict"

	latencies := make([]time.Duration, spec.Total)
	status := make([]int, spec.Total)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < spec.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < spec.Total; i += spec.Concurrency {
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(url, ContentTypeJSON, bytes.NewReader(body))
				if err != nil {
					status[i] = -1
					latencies[i] = time.Since(t0)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				//lint:errdrop read side; the body was drained and a response Close cannot lose data
				resp.Body.Close()
				status[i] = resp.StatusCode
				latencies[i] = time.Since(t0)
			}
		}(w)
	}
	wg.Wait()
	res := LoadResult{Requests: spec.Total, Elapsed: time.Since(start)}
	for _, code := range status {
		switch {
		case code >= 200 && code < 300:
			res.OK++
		case code == http.StatusTooManyRequests:
			res.Shed++
		default:
			res.Errors++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = quantile(latencies, 0.50)
	res.P99 = quantile(latencies, 0.99)
	return res, nil
}

// quantile reads the q-quantile from an ascending latency slice (nearest
// rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
