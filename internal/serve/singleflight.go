package serve

import (
	"sync"

	"climcompress/internal/artifact"
)

// flightGroup is a minimal singleflight: concurrent Do calls with the same
// key share one execution of fn. The stdlib has no singleflight and this
// module takes no dependencies, so the ~40 lines live here. Keys are
// artifact IDs — the same content digests the store files verdicts under —
// so "identical request" is decided by the cache's own identity, not by
// re-parsing request bodies.
type flightGroup struct {
	mu sync.Mutex
	m  map[artifact.ID]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val *rendered
	err error
}

// Do executes fn once per key among concurrent callers. shared reports
// whether this caller piggybacked on another caller's execution.
func (g *flightGroup) Do(key artifact.ID, fn func() (*rendered, error)) (val *rendered, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[artifact.ID]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
