package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"climcompress/internal/artifact"
	"climcompress/internal/experiments"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
)

// testRunner builds a small paper-shaped runner shared by the package's
// tests (one chaotic-core integration for the whole test binary).
var (
	runnerOnce sync.Once
	testR      *experiments.Runner
)

func testConfig(store *artifact.Store) experiments.Config {
	cfg := experiments.DefaultConfig(grid.Test())
	cfg.Members = 9
	cfg.L96 = l96.EnsembleConfig{
		Members: 9, Dt: 0.002, SpinupSteps: 1000,
		DivergeSteps: 6000, CalibSteps: 3000, Eps: 1e-14,
	}
	cfg.Variables = []string{"U", "SST"}
	cfg.Cache = store
	return cfg
}

func sharedRunner(t *testing.T) *experiments.Runner {
	t.Helper()
	runnerOnce.Do(func() {
		testR = experiments.NewRunner(testConfig(nil), nil)
	})
	return testR
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Runner == nil {
		cfg.Runner = experiments.NewRunner(testConfig(nil), sharedRunner(t).L96())
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postVerdict(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/verdict", ContentTypeJSON, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, buf
}

func TestVerdictJSONRoundTrip(t *testing.T) {
	o := experiments.VariantOutcome{
		Rho: 0.999999, NRMSE: 1.5e-7, Enmax: 2e-6, CR: 1.68,
		RhoPass: true, RMSZPass: true, EnmaxPass: false, BiasPass: true,
		RhoMin: 0.9999985, RMSZDiffMax: 0.01, RMSZWithin: true,
		EnmaxRatio: math.NaN(), SlopeDist: 1e-9,
	}
	buf := FromOutcome("U", "fpzip-24", o).AppendJSON(nil)
	if !bytes.HasSuffix(buf, []byte("}\n")) {
		t.Fatalf("JSON verdict lacks trailing newline: %q", buf)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("rendered verdict is not valid JSON: %v\n%s", err, buf)
	}
	if m["variable"] != "U" || m["variant"] != "fpzip-24" {
		t.Fatalf("identity fields wrong: %v", m)
	}
	metrics := m["metrics"].(map[string]any)
	if metrics["enmax_ratio"] != nil {
		t.Fatalf("NaN must render as null, got %v", metrics["enmax_ratio"])
	}
	if metrics["rho"].(float64) != o.Rho {
		t.Fatalf("rho %v", metrics["rho"])
	}
	pass := m["pass"].(map[string]any)
	if pass["enmax"] != false || pass["correlation"] != true {
		t.Fatalf("pass flags wrong: %v", pass)
	}
}

func TestVerdictBinaryRoundTrip(t *testing.T) {
	o := experiments.VariantOutcome{
		Rho: 0.42, NRMSE: 1, Enmax: 2, CR: 3, AllPass: true, RMSZWithin: true,
		RhoMin: -1, RMSZDiffMax: 0.5, EnmaxRatio: math.Inf(1), SlopeDist: math.NaN(),
	}
	v := FromOutcome("SST", "grib2", o)
	buf := v.AppendBinary(nil)
	got, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	// NaN breaks == on the whole struct; compare it separately.
	if !math.IsNaN(got.Outcome.SlopeDist) {
		t.Fatalf("SlopeDist %v, want NaN", got.Outcome.SlopeDist)
	}
	got.Outcome.SlopeDist = 0
	v.Outcome.SlopeDist = 0
	if got != v {
		t.Fatalf("binary round-trip: got %+v, want %+v", got, v)
	}
	// Corruption and truncation must error, not panic.
	for _, bad := range [][]byte{nil, buf[:3], buf[:len(buf)-1], append([]byte("XXXX"), buf[4:]...)} {
		if _, err := DecodeBinary(bad); err == nil {
			t.Fatalf("corrupt frame %q decoded", bad)
		}
	}
}

func TestServerEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, buf := postVerdict(t, ts.URL, `{"variable":"U","variant":"fpzip-24"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeJSON {
		t.Fatalf("content type %q", ct)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("bad body: %v\n%s", err, buf)
	}

	// Second identical request must be a response-cache hit with the same
	// bytes.
	_, buf2 := postVerdict(t, ts.URL, `{"variable":"U","variant":"fpzip-24"}`)
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("cached response differs:\n%s\n%s", buf, buf2)
	}
	st := s.Stats()
	if st.Serve.Computes != 1 || st.Serve.RespCacheHits != 1 {
		t.Fatalf("counters %+v", st.Serve)
	}

	// Binary format decodes to the same outcome.
	resp3, buf3 := postVerdict(t, ts.URL, `{"variable":"U","variant":"fpzip-24","format":"binary"}`)
	if ct := resp3.Header.Get("Content-Type"); ct != ContentTypeBinary {
		t.Fatalf("binary content type %q", ct)
	}
	v, err := DecodeBinary(buf3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Variable != "U" || v.Variant != "fpzip-24" || v.Outcome.CR == 0 {
		t.Fatalf("binary verdict %+v", v)
	}

	// Unknown pairs and malformed bodies are client errors.
	for body, want := range map[string]int{
		`{"variable":"NOPE","variant":"fpzip-24"}`:             http.StatusNotFound,
		`{"variable":"U","variant":"nope"}`:                    http.StatusNotFound,
		`{"variable":"U","variant":"fpzip-24","format":"xml"}`: http.StatusBadRequest,
		`{`: http.StatusBadRequest,
	} {
		if resp, buf := postVerdict(t, ts.URL, body); resp.StatusCode != want {
			t.Fatalf("body %s: status %d (%s), want %d", body, resp.StatusCode, buf, want)
		}
	}
}

// TestCoalescing is the acceptance gate: 100 concurrent identical cold
// requests produce exactly one computation and 100 identical response
// bodies. Run under -race this also proves the flight group and response
// cache are data-race free.
func TestCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 2, MaxQueue: 2})
	const n = 100
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/verdict", ContentTypeJSON,
				strings.NewReader(`{"variable":"SST","variant":"grib2"}`))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := range bodies {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	st := s.Stats()
	if st.Serve.Computes != 1 {
		t.Fatalf("%d computes for %d identical requests, want exactly 1 (%+v)", st.Serve.Computes, n, st.Serve)
	}
	if st.Serve.Coalesced+st.Serve.RespCacheHits != n-1 {
		t.Fatalf("coalesced %d + cache hits %d != %d (%+v)",
			st.Serve.Coalesced, st.Serve.RespCacheHits, n-1, st.Serve)
	}
}

// TestShedding saturates admission with held compute slots and distinct
// keys (no coalescing possible) and requires 429 + Retry-After on the
// overflow, with the server intact afterwards.
func TestShedding(t *testing.T) {
	s, err := New(Config{
		Runner:      experiments.NewRunner(testConfig(nil), sharedRunner(t).L96()),
		MaxInflight: 1,
		MaxQueue:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	s.computeHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Distinct (variable, variant) pairs → distinct flight keys.
	reqs := []string{
		`{"variable":"U","variant":"fpzip-24"}`,
		`{"variable":"U","variant":"fpzip-16"}`,
		`{"variable":"SST","variant":"isa-1"}`,
		`{"variable":"SST","variant":"isa-0.5"}`,
		`{"variable":"U","variant":"apax-2"}`,
	}
	type result struct {
		code  int
		retry string
	}
	results := make(chan result, len(reqs))
	var wg sync.WaitGroup
	launch := func(body string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/verdict", ContentTypeJSON, strings.NewReader(body))
			if err != nil {
				results <- result{code: -1}
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
	}
	// First request occupies the single inflight slot...
	launch(reqs[0])
	<-entered
	// ...the rest contend for 1 queue slot: at least 3 of the 4 must shed.
	for _, r := range reqs[1:] {
		launch(r)
	}
	sheds := 0
	for i := 0; i < len(reqs)-2; i++ {
		r := <-results
		if r.code != http.StatusTooManyRequests {
			t.Fatalf("expected shed, got status %d", r.code)
		}
		if r.retry == "" {
			t.Fatal("shed response lacks Retry-After")
		}
		sheds++
	}
	// Unblock the held computations; the holder and the queued request
	// finish normally.
	close(release)
	go func() { // drain the second compute's hook entry
		for range entered {
		}
	}()
	wg.Wait()
	close(results)
	ok := 0
	for r := range results {
		if r.code == http.StatusOK {
			ok++
		}
	}
	close(entered)
	if ok != 2 {
		t.Fatalf("%d requests succeeded after release, want 2 (holder + queued)", ok)
	}
	st := s.Stats()
	if st.Serve.Shed != int64(sheds) || st.Serve.Shed < 3 {
		t.Fatalf("shed counter %d, observed %d", st.Serve.Shed, sheds)
	}
	if st.Serve.Queued != 0 || st.Serve.Inflight != 0 {
		t.Fatalf("gate not drained: %+v", st.Serve)
	}
}

func TestStatsEndpoint(t *testing.T) {
	store := artifact.Open(t.TempDir())
	s, ts := newTestServer(t, Config{
		Runner: experiments.NewRunner(testConfig(store), sharedRunner(t).L96()),
	})
	postVerdict(t, ts.URL, `{"variable":"U","variant":"isa-1"}`)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Serve.Requests != 1 || got.Serve.Computes != 1 {
		t.Fatalf("serve stats %+v", got.Serve)
	}
	if got.Cache.Puts == 0 {
		t.Fatalf("cache stats %+v lack the verdict put", got.Cache)
	}
	if got.Serve.Variables != 2 || got.Serve.Variants != int64(len(experiments.Variants())) {
		t.Fatalf("catalog dimensions %+v", got.Serve)
	}
	if want := s.Stats().Cache; got.Cache != want {
		t.Fatalf("stats endpoint %+v, Stats() %+v", got.Cache, want)
	}
}

func TestPreloadMakesWarmServing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	n, err := s.Preload(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("preloaded %d variables, want 2", n)
	}
	if resp, buf := postVerdict(t, ts.URL, `{"variable":"SST","variant":"apax-5"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf)
	}
	if st := s.Stats(); st.Serve.PreloadedVars != 2 {
		t.Fatalf("preload counter %+v", st.Serve)
	}
}

func TestLoadGenerator(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	res, err := Load(LoadSpec{
		URL:         ts.URL,
		Variables:   []string{"U", "SST"},
		Variants:    []string{"fpzip-24", "isa-0.1"},
		Total:       40,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 40 || res.Errors != 0 {
		t.Fatalf("load result %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.OpsPerSec() <= 0 {
		t.Fatalf("degenerate quantiles %+v", res)
	}
	if _, err := Load(LoadSpec{URL: ts.URL}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestDaemonMatchesBatchBytes(t *testing.T) {
	// The serve-smoke contract in miniature: the daemon's JSON body must
	// equal the batch renderer's bytes for the same cell.
	r := experiments.NewRunner(testConfig(nil), sharedRunner(t).L96())
	_, ts := newTestServer(t, Config{Runner: r})
	_, daemon := postVerdict(t, ts.URL, `{"variable":"U","variant":"grib2"}`)
	o, err := r.VerdictFor("U", "grib2")
	if err != nil {
		t.Fatal(err)
	}
	batch := FromOutcome("U", "grib2", o).AppendJSON(nil)
	if !bytes.Equal(daemon, batch) {
		t.Fatalf("daemon and batch bytes differ:\n%s\n%s", daemon, batch)
	}
}

func TestGateDirect(t *testing.T) {
	g := newGate(1, 1)
	if !g.acquire() {
		t.Fatal("empty gate refused")
	}
	done := make(chan bool)
	go func() { done <- g.acquire() }() // queues
	for g.queued.Load() == 0 {
	}
	if g.acquire() {
		t.Fatal("over-queue acquire admitted")
	}
	g.release()
	if !<-done {
		t.Fatal("queued acquire failed")
	}
	g.release()
	if g.queued.Load() != 0 || len(g.sem) != 0 {
		t.Fatalf("gate not drained: queued=%d inflight=%d", g.queued.Load(), len(g.sem))
	}
}

func TestNewRejectsMissingRunner(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil runner")
	}
}

func BenchmarkWarmVerdictJSON(b *testing.B) {
	r := experiments.NewRunner(testConfig(nil), nil)
	s, err := New(Config{Runner: r})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"variable":"U","variant":"fpzip-24"}`
	if resp, err := http.Post(ts.URL+"/verdict", ContentTypeJSON, strings.NewReader(body)); err != nil {
		b.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		//lint:errdrop read side; warm-up response already drained
		resp.Body.Close()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/verdict", ContentTypeJSON, strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		//lint:errdrop read side; bench response already drained
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	if st := s.Stats(); st.Serve.Computes != 1 {
		b.Fatalf("warm bench recomputed: %+v", st.Serve)
	}
}

func ExampleVerdict_AppendJSON() {
	o := experiments.VariantOutcome{
		Rho: 0.5, NRMSE: 0.25, Enmax: 0.125, CR: 2,
		RhoMin: 0.5, RMSZDiffMax: 1, EnmaxRatio: 4, SlopeDist: 8,
	}
	fmt.Print(string(FromOutcome("V", "grib2", o).AppendJSON(nil)))
	// Output:
	// {"variable":"V","variant":"grib2","pass":{"correlation":false,"rmsz":false,"enmax":false,"bias":false,"all":false},"metrics":{"rho":0.5,"nrmse":0.25,"enmax":0.125,"rho_min":0.5,"rmsz_diff_max":1,"rmsz_within":false,"enmax_ratio":4,"slope_dist":8},"cr":2}
}
