// Package serve is the verification-as-a-service layer: an HTTP daemon
// (cmd/climatebenchd) answering single (variable, variant) verdict queries
// from the same substrate the batch tables sweep. The design centre is the
// hot path: verdicts are immutable once computed (the artifact store
// already keys them by content digest), so the server renders each verdict
// to bytes exactly once and every later request — and every concurrent
// duplicate — is a lookup, a coalesced wait, or a shed, never a second
// compute.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"

	"climcompress/internal/artifact"
	"climcompress/internal/experiments"
)

// Verdict is the wire form of one verification outcome: the four
// pass/fail tests of the paper's methodology, the summary error metrics,
// and the compression ratio. It is rendered by AppendJSON/AppendBinary
// through explicit, deterministic encoders so that the daemon and the
// batch CLI (climatebench -verdict) emit byte-identical output for the
// same cell — the serve-smoke gate compares them literally.
type Verdict struct {
	Variable string
	Variant  string
	Outcome  experiments.VariantOutcome
}

// FromOutcome wraps a batch outcome in its wire form.
func FromOutcome(variable, variant string, o experiments.VariantOutcome) Verdict {
	return Verdict{Variable: variable, Variant: variant, Outcome: o}
}

// appendFloat renders a float as a JSON value. NaN and ±Inf have no JSON
// representation; they become null (the decoder side maps null back to
// NaN, which is how the verifier reports "no defined ratio" cases such as
// zero ensemble spread).
func appendFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, "null"...)
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// AppendJSON renders the verdict as one JSON object with a fixed field
// order and a trailing newline. The field order is part of the wire
// contract (byte comparisons, response caching); do not reorder.
func (v Verdict) AppendJSON(dst []byte) []byte {
	o := v.Outcome
	dst = append(dst, `{"variable":`...)
	dst = strconv.AppendQuote(dst, v.Variable)
	dst = append(dst, `,"variant":`...)
	dst = strconv.AppendQuote(dst, v.Variant)
	dst = append(dst, `,"pass":{"correlation":`...)
	dst = appendBool(dst, o.RhoPass)
	dst = append(dst, `,"rmsz":`...)
	dst = appendBool(dst, o.RMSZPass)
	dst = append(dst, `,"enmax":`...)
	dst = appendBool(dst, o.EnmaxPass)
	dst = append(dst, `,"bias":`...)
	dst = appendBool(dst, o.BiasPass)
	dst = append(dst, `,"all":`...)
	dst = appendBool(dst, o.AllPass)
	dst = append(dst, `},"metrics":{"rho":`...)
	dst = appendFloat(dst, o.Rho)
	dst = append(dst, `,"nrmse":`...)
	dst = appendFloat(dst, o.NRMSE)
	dst = append(dst, `,"enmax":`...)
	dst = appendFloat(dst, o.Enmax)
	dst = append(dst, `,"rho_min":`...)
	dst = appendFloat(dst, o.RhoMin)
	dst = append(dst, `,"rmsz_diff_max":`...)
	dst = appendFloat(dst, o.RMSZDiffMax)
	dst = append(dst, `,"rmsz_within":`...)
	dst = appendBool(dst, o.RMSZWithin)
	dst = append(dst, `,"enmax_ratio":`...)
	dst = appendFloat(dst, o.EnmaxRatio)
	dst = append(dst, `,"slope_dist":`...)
	dst = appendFloat(dst, o.SlopeDist)
	dst = append(dst, `},"cr":`...)
	dst = appendFloat(dst, o.CR)
	dst = append(dst, "}\n"...)
	return dst
}

// Binary framing: a fixed 4-byte magic, a big-endian uint32 payload
// length, then an artifact record (the same tagged encoding the store
// uses on disk, so corruption is detected by the record decoder).
const binaryMagic = "CBV1"

// ContentTypeBinary is the media type of the length-framed binary verdict.
const ContentTypeBinary = "application/x-climatebench-verdict"

// ContentTypeJSON is the media type of the JSON verdict.
const ContentTypeJSON = "application/json"

// AppendBinary renders the verdict in the length-framed binary format.
func (v Verdict) AppendBinary(dst []byte) []byte {
	o := v.Outcome
	var e artifact.Enc
	e.Str(v.Variable).Str(v.Variant).
		Float(o.Rho).Float(o.NRMSE).Float(o.Enmax).Float(o.CR).
		Bool(o.RhoPass).Bool(o.RMSZPass).Bool(o.EnmaxPass).Bool(o.BiasPass).Bool(o.AllPass).
		Float(o.RhoMin).Float(o.RMSZDiffMax).Bool(o.RMSZWithin).
		Float(o.EnmaxRatio).Float(o.SlopeDist)
	payload := e.Bytes()
	dst = append(dst, binaryMagic...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// DecodeBinary parses one length-framed binary verdict. It is the inverse
// of AppendBinary, used by the built-in client (climatebenchd -call) and
// the tests.
func DecodeBinary(buf []byte) (Verdict, error) {
	if len(buf) < len(binaryMagic)+4 {
		return Verdict{}, errors.New("serve: binary verdict truncated")
	}
	if string(buf[:len(binaryMagic)]) != binaryMagic {
		return Verdict{}, fmt.Errorf("serve: bad verdict magic %q", buf[:len(binaryMagic)])
	}
	n := binary.BigEndian.Uint32(buf[len(binaryMagic) : len(binaryMagic)+4])
	payload := buf[len(binaryMagic)+4:]
	if uint32(len(payload)) != n {
		return Verdict{}, fmt.Errorf("serve: verdict payload %d bytes, frame declares %d", len(payload), n)
	}
	d := artifact.NewDec(payload)
	var v Verdict
	o := &v.Outcome
	v.Variable = d.Str()
	v.Variant = d.Str()
	o.Rho, o.NRMSE, o.Enmax, o.CR = d.Float(), d.Float(), d.Float(), d.Float()
	o.RhoPass, o.RMSZPass, o.EnmaxPass, o.BiasPass, o.AllPass =
		d.Bool(), d.Bool(), d.Bool(), d.Bool(), d.Bool()
	o.RhoMin, o.RMSZDiffMax = d.Float(), d.Float()
	o.RMSZWithin = d.Bool()
	o.EnmaxRatio, o.SlopeDist = d.Float(), d.Float()
	if err := d.Close(); err != nil {
		return Verdict{}, fmt.Errorf("serve: binary verdict: %w", err)
	}
	return v, nil
}
