package pvt

import (
	"fmt"
	"math"

	"climcompress/internal/ensemble"
	"climcompress/internal/stats"
)

// The CESM-PVT was built to answer a question older than compression
// (§4.3): after porting CESM to a new machine — or changing compilers,
// optimization flags, or the order of parallel reductions — results are no
// longer bit-for-bit; are they climate-changing? The procedure: run a few
// simulations on the new machine and check that (a) their global means show
// no range shift against the trusted ensemble and (b) their RMSZ scores
// fall within the trusted ensemble's RMSZ distribution. PortVerify
// implements exactly that; the compression verification elsewhere in this
// package is the paper's adaptation of it.

// PortRun is one new-machine run's evidence.
type PortRun struct {
	RMSZ       float64
	GlobalMean float64
	RMSZOK     bool
	MeanOK     bool
}

// PortResult is the verdict for one variable.
type PortResult struct {
	Variable string
	Runs     []PortRun
	RMSZBox  stats.Boxplot // trusted ensemble's RMSZ distribution
	MeanBox  stats.Boxplot // trusted ensemble's global-mean distribution
	// Pass is the strict verdict: every run inside the distributions. A
	// statistically identical run still lands outside a finite ensemble's
	// range with probability ≈ 2/(members+1), so with several runs the
	// strict rule false-alarms at a known rate.
	Pass bool
	// PassMajority requires more than half the runs to pass — the
	// aggregation NCAR's follow-up tooling moved to for exactly this
	// false-alarm reason.
	PassMajority bool
}

// PortVerify scores new-machine runs of one variable against the trusted
// ensemble. Unlike the leave-one-out scores used for compression (the new
// run is not a member of E), the Z-scores here use the full-ensemble
// per-point mean and standard deviation.
func PortVerify(vs *ensemble.VarStats, newRuns [][]float32) (PortResult, error) {
	res := PortResult{
		Variable: vs.Name,
		RMSZBox:  vs.RMSZBox(),
		Pass:     true,
	}
	if len(newRuns) == 0 {
		return res, fmt.Errorf("pvt: no new runs supplied")
	}
	// Trusted ensemble's global means, computed with the same statistic
	// applied to the new runs (unweighted valid-point mean, precomputed by
	// the build — works for both materialized and streamed statistics).
	gm := vs.ValidMean
	res.MeanBox = stats.NewBoxplot(gm)
	// Slack mirrors the compression RMSZ test: a run statistically
	// identical to the ensemble should not fail by an epsilon at the
	// distribution's edge.
	rmszSlack := 0.01 * res.RMSZBox.Range()
	// The range-shift screen uses a z-test against the trusted global-mean
	// distribution rather than a strict range check: the range of a finite
	// ensemble rejects ≈ 2/(members+1) of statistically identical runs,
	// while |z| ≤ 4 keeps false alarms negligible and still catches any
	// real shift.
	gmMean := stats.Mean(gm)
	gmStd := stats.StdDev(gm)
	const meanZLimit = 4.0
	for i, data := range newRuns {
		if len(data) != vs.NPoints {
			return res, fmt.Errorf("pvt: new run %d has %d points, want %d", i, len(data), vs.NPoints)
		}
		var sum float64
		var cnt int
		var meanSum float64
		var meanCnt int
		for p, v := range data {
			if vs.FillMask[p] {
				continue
			}
			loo := vs.Mom.At(p)
			if loo.N < 2 {
				continue
			}
			n := float64(loo.N)
			mean := loo.Sum / n
			variance := (loo.SumSq - loo.Sum*mean) / (n - 1)
			if variance <= 0 {
				continue
			}
			z := (float64(v) - mean) / math.Sqrt(variance)
			sum += z * z
			cnt++
			meanSum += float64(v)
			meanCnt++
		}
		run := PortRun{RMSZ: math.NaN(), GlobalMean: math.NaN()}
		if cnt > 0 {
			run.RMSZ = math.Sqrt(sum / float64(cnt))
		}
		if meanCnt > 0 {
			run.GlobalMean = meanSum / float64(meanCnt)
		}
		run.RMSZOK = !math.IsNaN(run.RMSZ) &&
			run.RMSZ >= res.RMSZBox.Min-rmszSlack && run.RMSZ <= res.RMSZBox.Max+rmszSlack
		switch {
		case math.IsNaN(run.GlobalMean) || math.IsNaN(gmStd):
			run.MeanOK = false
		case gmStd == 0:
			//lint:floateq zero ensemble spread demands bit-exact agreement; any tolerance would defeat the port check
			run.MeanOK = run.GlobalMean == gmMean
		default:
			run.MeanOK = math.Abs(run.GlobalMean-gmMean)/gmStd <= meanZLimit
		}
		if !run.RMSZOK || !run.MeanOK {
			res.Pass = false
		}
		res.Runs = append(res.Runs, run)
	}
	good := 0
	for _, run := range res.Runs {
		if run.RMSZOK && run.MeanOK {
			good++
		}
	}
	res.PassMajority = good*2 > len(res.Runs)
	return res, nil
}
