package pvt

import (
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/ensemble"
	"climcompress/internal/field"
	"climcompress/internal/grid"
)

// portEnsemble builds a trusted ensemble plus generator for new runs.
func portEnsemble(t *testing.T, nm int, seed int64) (*ensemble.VarStats, func(shift float64) []float32) {
	t.Helper()
	g := grid.Test()
	rng := rand.New(rand.NewSource(seed))
	gen := func(shift float64) []float32 {
		data := make([]float32, g.Horizontal())
		for i := range data {
			mu := 50 + 10*math.Sin(float64(i)/9) + shift
			data[i] = float32(mu + rng.NormFloat64())
		}
		return data
	}
	fields := make([]*field.Field, nm)
	for m := range fields {
		f := field.New("X", "1", g, false)
		copy(f.Data, gen(0))
		fields[m] = f
	}
	vs, err := ensemble.Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	return vs, gen
}

func TestPortVerifySameClimatePasses(t *testing.T) {
	// A range check over a finite ensemble rejects a same-climate draw with
	// probability ≈ 2k/(members+1), so use a healthy ensemble size (the
	// deterministic seed keeps the test stable).
	vs, gen := portEnsemble(t, 101, 1)
	// Three "new machine" runs drawn from the same climate.
	newRuns := [][]float32{gen(0), gen(0), gen(0)}
	res, err := PortVerify(vs, newRuns)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || !res.PassMajority {
		t.Fatalf("same-climate runs failed port verification: %+v", res.Runs)
	}
	for _, run := range res.Runs {
		if run.RMSZ < 0.7 || run.RMSZ > 1.4 {
			t.Fatalf("RMSZ %v outside the expected O(1) band", run.RMSZ)
		}
	}
}

func TestPortVerifyChangedClimateFails(t *testing.T) {
	vs, gen := portEnsemble(t, 31, 2)
	// A systematic 2-sigma warm shift: climate-changing.
	newRuns := [][]float32{gen(2)}
	res, err := PortVerify(vs, newRuns)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || res.PassMajority {
		t.Fatal("2-sigma shifted climate passed port verification")
	}
	if res.Runs[0].RMSZOK {
		t.Fatal("RMSZ check should catch a 2-sigma shift")
	}
	if res.Runs[0].MeanOK {
		t.Fatal("global-mean range check should catch a 2-sigma shift")
	}
}

func TestPortVerifyInflatedVarianceFails(t *testing.T) {
	vs, gen := portEnsemble(t, 31, 3)
	// Same mean but doubled noise: RMSZ ≈ 2, outside the distribution,
	// while the global mean stays fine (catches what a mean check misses).
	base := gen(0)
	run := make([]float32, len(base))
	for i := range run {
		run[i] = base[i] + (base[i]-50)*0 + float32(2*math.Sin(float64(i*7)))
	}
	res, err := PortVerify(vs, [][]float32{run})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].RMSZOK {
		t.Fatalf("inflated variance not caught: RMSZ %v box %+v", res.Runs[0].RMSZ, res.RMSZBox)
	}
}

func TestPortVerifyErrors(t *testing.T) {
	vs, _ := portEnsemble(t, 11, 4)
	if _, err := PortVerify(vs, nil); err == nil {
		t.Fatal("no runs should error")
	}
	if _, err := PortVerify(vs, [][]float32{make([]float32, 3)}); err == nil {
		t.Fatal("wrong-size run should error")
	}
}
