package pvt

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	"climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/nclossless"
	"climcompress/internal/ensemble"
	"climcompress/internal/field"
	"climcompress/internal/grid"
)

// buildEnsemble creates a synthetic ensemble with per-point std sigma.
func buildEnsemble(t testing.TB, nm int, sigma float64, seed int64) (*ensemble.VarStats, compress.Shape) {
	t.Helper()
	g := grid.Test()
	rng := rand.New(rand.NewSource(seed))
	fields := make([]*field.Field, nm)
	for m := range fields {
		f := field.New("X", "1", g, false)
		for i := range f.Data {
			mu := 50 + 10*math.Sin(float64(i)/9)
			f.Data[i] = float32(mu + sigma*rng.NormFloat64())
		}
		fields[m] = f
	}
	vs, err := ensemble.Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	return vs, compress.Shape{NLev: 1, NLat: g.NLat, NLon: g.NLon}
}

// noopCodec reconstructs data exactly; it must pass everything.
type noopCodec struct{}

func (noopCodec) Name() string   { return "noop" }
func (noopCodec) Lossless() bool { return true }
func (noopCodec) Compress(data []float32, shape compress.Shape) ([]byte, error) {
	out := compress.PutHeader(nil, compress.Header{CodecID: compress.IDRaw, Shape: shape})
	for _, v := range data {
		u := math.Float32bits(v)
		out = append(out, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return out, nil
}
func (noopCodec) Decompress(buf []byte) ([]float32, error) {
	h, rest, err := compress.ParseHeader(buf)
	if err != nil {
		return nil, err
	}
	out := make([]float32, h.Shape.Len())
	for i := range out {
		u := uint32(rest[4*i]) | uint32(rest[4*i+1])<<8 | uint32(rest[4*i+2])<<16 | uint32(rest[4*i+3])<<24
		out[i] = math.Float32frombits(u)
	}
	return out, nil
}

// breakerCodec adds a constant offset scaled by member-dependent data — a
// deliberately climate-changing "compressor".
type breakerCodec struct {
	noopCodec
	offset float32
}

func (b breakerCodec) Name() string { return "breaker" }
func (b breakerCodec) Decompress(buf []byte) ([]float32, error) {
	out, err := b.noopCodec.Decompress(buf)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] += b.offset
	}
	return out, nil
}

func TestSelectTestMembers(t *testing.T) {
	m := SelectTestMembers(101, 3, 7)
	if len(m) != 3 {
		t.Fatalf("got %d members", len(m))
	}
	seen := map[int]bool{}
	for _, i := range m {
		if i < 0 || i >= 101 || seen[i] {
			t.Fatalf("bad member selection %v", m)
		}
		seen[i] = true
	}
	m2 := SelectTestMembers(101, 3, 7)
	for i := range m {
		if m[i] != m2[i] {
			t.Fatal("selection not deterministic")
		}
	}
	if got := SelectTestMembers(2, 5, 1); len(got) != 2 {
		t.Fatalf("k>n should clamp: %v", got)
	}
}

func TestLosslessPassesAllTests(t *testing.T) {
	vs, shape := buildEnsemble(t, 21, 1.0, 1)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: true}
	res, err := v.Verify(noopCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllPass {
		t.Fatalf("lossless codec failed: %+v", res)
	}
	if !res.RhoPass || !res.RMSZPass || !res.EnmaxPass || !res.BiasPass || !res.RangeOK {
		t.Fatalf("sub-tests: %+v", res)
	}
	if math.Abs(res.Bias.Slope-1) > 1e-9 || math.Abs(res.Bias.Intercept) > 1e-9 {
		t.Fatalf("lossless bias regression should be ideal: %+v", res.Bias)
	}
	for _, c := range res.Checks {
		if c.Errors.EMax != 0 || c.RMSZRecon != c.RMSZOrig {
			t.Fatalf("lossless member check not exact: %+v", c)
		}
	}
}

func TestClimateChangingCodecFails(t *testing.T) {
	vs, shape := buildEnsemble(t, 21, 1.0, 2)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: true}
	// Offset of 3 sigma: clearly climate-changing.
	res, err := v.Verify(breakerCodec{offset: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllPass {
		t.Fatal("3-sigma offset codec must fail")
	}
	if res.RMSZPass {
		t.Fatal("RMSZ test should catch a 3-sigma shift")
	}
}

func TestSmallErrorCodecPassesRMSZButMaybeNotEnmax(t *testing.T) {
	vs, shape := buildEnsemble(t, 21, 1.0, 3)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: true}
	// Tiny offset, well under sigma.
	res, err := v.Verify(breakerCodec{offset: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if !res.RMSZPass {
		t.Fatalf("0.005 offset should pass RMSZ: %+v", res.Checks)
	}
	if !res.RhoPass {
		t.Fatal("0.005 offset should pass correlation")
	}
}

func TestFpzipPrecisionOrdering(t *testing.T) {
	// Higher precision must pass at least as many tests as lower.
	vs, shape := buildEnsemble(t, 21, 0.5, 4)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: true}
	count := func(res Result) int {
		n := 0
		for _, p := range []bool{res.RhoPass, res.RMSZPass, res.EnmaxPass, res.BiasPass} {
			if p {
				n++
			}
		}
		return n
	}
	r32, err := v.Verify(fpzip.New(32))
	if err != nil {
		t.Fatal(err)
	}
	r16, err := v.Verify(fpzip.New(16))
	if err != nil {
		t.Fatal(err)
	}
	if count(r32) < count(r16) {
		t.Fatalf("fpzip-32 (%d passes) worse than fpzip-16 (%d)", count(r32), count(r16))
	}
	if !r32.AllPass {
		t.Fatalf("fpzip-32 lossless must pass everything: %+v", r32)
	}
}

func TestBiasDetection(t *testing.T) {
	vs, shape := buildEnsemble(t, 31, 1.0, 5)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: true}
	// A large constant offset inflates every reconstructed RMSZ: the
	// regression slope/intercept moves away from (1, 0).
	res, err := v.Verify(breakerCodec{offset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bias.Slope == 1 && res.Bias.Intercept == 0 {
		t.Fatal("bias regression should move off the ideal point")
	}
}

func TestSkipBias(t *testing.T) {
	vs, shape := buildEnsemble(t, 11, 1.0, 6)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: false}
	res, err := v.Verify(noopCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SkippedBias || !res.BiasPass {
		t.Fatal("skipped bias should be marked and pass")
	}
	if len(res.ReconRMSZ) != 0 {
		t.Fatal("skipped bias should not compute all-member RMSZ")
	}
}

func TestMeanCRReported(t *testing.T) {
	vs, shape := buildEnsemble(t, 11, 1.0, 7)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: true}
	c, err := compress.New("apax-4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Verify(c)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny test fields carry fixed header overhead, so allow extra slack
	// above the nominal 0.25.
	if res.MeanCR < 0.23 || res.MeanCR > 0.30 {
		t.Fatalf("apax-4 mean CR = %v, want ≈ 0.25", res.MeanCR)
	}
}

func TestVerifyDataMatchesVerify(t *testing.T) {
	// Compressing externally then calling VerifyData must agree with the
	// in-process Verify path.
	vs, shape := buildEnsemble(t, 15, 1.0, 55)
	codec := fpzip.New(16)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: true}
	direct, err := v.Verify(codec)
	if err != nil {
		t.Fatal(err)
	}
	recon := make([][]float32, vs.Members())
	for m := range recon {
		buf, err := codec.Compress(vs.Original(m), shape)
		if err != nil {
			t.Fatal(err)
		}
		recon[m], err = codec.Decompress(buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	viaData, err := v.VerifyData("external", recon)
	if err != nil {
		t.Fatal(err)
	}
	if viaData.RhoPass != direct.RhoPass || viaData.RMSZPass != direct.RMSZPass ||
		viaData.EnmaxPass != direct.EnmaxPass || viaData.BiasPass != direct.BiasPass {
		t.Fatalf("paths disagree: direct %+v vs data %+v", direct, viaData)
	}
	if math.Abs(viaData.Bias.Slope-direct.Bias.Slope) > 1e-12 {
		t.Fatalf("bias slopes differ: %v vs %v", viaData.Bias.Slope, direct.Bias.Slope)
	}
}

func TestVerifyDataErrors(t *testing.T) {
	vs, shape := buildEnsemble(t, 7, 1.0, 56)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default()}
	if _, err := v.VerifyData("x", make([][]float32, 3)); err == nil {
		t.Fatal("wrong member count should error")
	}
	bad := make([][]float32, 7)
	for i := range bad {
		bad[i] = make([]float32, 5)
	}
	if _, err := v.VerifyData("x", bad); err == nil {
		t.Fatal("wrong point count should error")
	}
}

func TestFillBearingVariableVerifies(t *testing.T) {
	g := grid.Test()
	rng := rand.New(rand.NewSource(33))
	fields := make([]*field.Field, 11)
	for m := range fields {
		f := field.New("SST", "K", g, false)
		f.HasFill = true
		for i := range f.Data {
			if i%5 == 0 {
				f.Data[i] = f.Fill
			} else {
				f.Data[i] = float32(290 + 3*math.Sin(float64(i)/7) + rng.NormFloat64())
			}
		}
		fields[m] = f
	}
	vs, err := ensemble.Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	v := &Verifier{
		Stats: vs,
		Shape: compress.Shape{NLev: 1, NLat: g.NLat, NLon: g.NLon},
		Thr:   Default(), WithBias: true,
	}
	inner := fpzip.New(24)
	res, err := v.Verify(compress.WithFill(inner, field.DefaultFill))
	if err != nil {
		t.Fatal(err)
	}
	if !res.RhoPass || !res.RMSZPass {
		t.Fatalf("fill-bearing variable failed basic tests: %+v", res)
	}
	for _, c := range res.Checks {
		if c.Errors.N >= fields[0].Len() {
			t.Fatal("fill points leaked into error metrics")
		}
		if math.IsInf(c.Errors.EMax, 1) {
			t.Fatal("fill values lost through the codec")
		}
	}
}

func TestThresholdsTighterFailsMore(t *testing.T) {
	vs, shape := buildEnsemble(t, 15, 1.0, 44)
	loose := Default()
	tight := Default()
	tight.RMSZDiff = 1e-9
	tight.EnmaxRatio = 1e-9
	vl := &Verifier{Stats: vs, Shape: shape, Thr: loose, WithBias: false}
	vt := &Verifier{Stats: vs, Shape: shape, Thr: tight, WithBias: false}
	codec := breakerCodec{offset: 0.01}
	rl, err := vl.Verify(codec)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := vt.Verify(codec)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.RMSZPass || rt.RMSZPass {
		t.Fatalf("threshold tightening had no effect: loose=%v tight=%v", rl.RMSZPass, rt.RMSZPass)
	}
}

func TestVerifierParallelDeterminism(t *testing.T) {
	vs, shape := buildEnsemble(t, 15, 1.0, 8)
	results := make([]Result, 2)
	for i, workers := range []int{1, 8} {
		v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: true, Workers: workers}
		res, err := v.Verify(fpzip.New(16))
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if fmt.Sprintf("%v", results[0].ReconRMSZ) != fmt.Sprintf("%v", results[1].ReconRMSZ) {
		t.Fatal("worker count changed results")
	}
}

func BenchmarkVerifyWithBias(b *testing.B) {
	vs, shape := buildEnsemble(b, 11, 1.0, 9)
	v := &Verifier{Stats: vs, Shape: shape, Thr: Default(), WithBias: true}
	c := fpzip.New(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Verify(c); err != nil {
			b.Fatal(err)
		}
	}
}
