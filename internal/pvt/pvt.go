// Package pvt implements the paper's verification methodology (§4.3): the
// CESM-PVT applied to compressed data. A codec passes for a variable when
//
//  1. the Pearson correlation between original and reconstructed data is at
//     least 0.99999 for each test member;
//  2. the RMSZ test holds: each test member's reconstructed RMSZ falls
//     within the 101-member RMSZ distribution AND differs from the original
//     member's RMSZ by at most 0.1 (eq. 8);
//  3. the E_nmax test holds: the normalized maximum pointwise error between
//     original and reconstruction is at most one tenth of the spread of the
//     ensemble's E_nmax distribution (eq. 11);
//  4. the bias test holds: regressing the fully reconstructed ensemble's
//     RMSZ scores on the original ensemble's, the distance from the ideal
//     slope 1 to the worst corner of the 95% confidence interval is at most
//     0.05 (eq. 9).
//
// A range-shift screen on global means (the CESM-PVT's first step) is also
// provided.
package pvt

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"

	"climcompress/internal/compress"
	"climcompress/internal/ensemble"
	"climcompress/internal/metrics"
	"climcompress/internal/par"
	"climcompress/internal/stats"
)

// withStage runs fn under a pprof "stage" label, so CPU profiles of the
// fused verification path split into its decode / metrics / rmsz phases.
func withStage(stage string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("stage", stage), func(context.Context) { fn() })
}

// Thresholds are the acceptance limits of the four tests.
type Thresholds struct {
	Correlation   float64 // minimum ρ (paper: 0.99999)
	RMSZDiff      float64 // maximum |RMSZ − RMSZ̃| (paper: 1/10)
	EnmaxRatio    float64 // maximum e_nmax / R_Enmax (paper: 1/10)
	SlopeDistance float64 // maximum |s_I − s_WC| (paper: 0.05)
}

// Default returns the paper's thresholds.
func Default() Thresholds {
	return Thresholds{
		Correlation:   metrics.CorrelationThreshold,
		RMSZDiff:      0.1,
		EnmaxRatio:    0.1,
		SlopeDistance: 0.05,
	}
}

// MemberCheck is the per-test-member evidence.
type MemberCheck struct {
	Member    int
	Errors    metrics.Errors // §4.2 measures on this member
	RMSZOrig  float64
	RMSZRecon float64
	CR        float64
}

// Result is the verdict of one codec on one variable.
type Result struct {
	Variable string
	Codec    string

	Checks []MemberCheck // one per test member

	RhoPass     bool
	RMSZPass    bool
	EnmaxPass   bool
	BiasPass    bool
	RangeOK     bool // global-mean range-shift screen
	AllPass     bool // the four paper tests (range screen not included)
	Bias        stats.Regression
	ReconRMSZ   []float64 // RMSZ of every reconstructed member (bias data)
	MeanCR      float64   // mean compression ratio over all members
	EnmaxSpread float64   // R_Enmax denominator of eq. 11
	RMSZBox     stats.Boxplot
	SkippedBias bool // bias test not run (WithBias=false)
}

// Verifier runs the tests for one variable.
type Verifier struct {
	Stats *ensemble.VarStats
	Shape compress.Shape
	Thr   Thresholds
	// TestMembers are the indices verified individually (the paper picks
	// three at random); SelectTestMembers provides a deterministic choice.
	TestMembers []int
	// WithBias controls whether the (expensive, all-members) bias test
	// runs; when false the bias test is marked passed-by-skip.
	WithBias bool
	// Workers bounds compression parallelism (GOMAXPROCS when 0).
	Workers int
}

// SelectTestMembers deterministically picks k distinct member indices from
// an ensemble of n, spread across the range (the paper uses three random
// members; a deterministic spread keeps experiments reproducible).
func SelectTestMembers(n, k int, seed uint64) []int {
	if k > n {
		k = n
	}
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	x := seed | 1
	for len(out) < k {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m := int(x % uint64(n))
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Verify compresses and reconstructs the ensemble with the codec and runs
// the four tests. Statistics from a streamed build (ensemble.BuildStream)
// take the bounded-memory path: member originals are re-acquired on demand
// and only the compressed streams — a small fraction of the raw data — are
// retained across stages, so peak residency stays O(workers) instead of
// O(members). Both paths produce bit-identical Results.
func (v *Verifier) Verify(codec compress.Codec) (Result, error) {
	vs := v.Stats
	nm := vs.Members()
	if nm == 0 {
		return Result{}, fmt.Errorf("pvt: empty ensemble")
	}
	testMembers := v.TestMembers
	if len(testMembers) == 0 {
		testMembers = SelectTestMembers(nm, 3, 12345)
	}
	if vs.Streamed() {
		return v.verifyStream(codec, testMembers)
	}

	res := Result{
		Variable:    vs.Name,
		Codec:       codec.Name(),
		RMSZBox:     vs.RMSZBox(),
		EnmaxSpread: vs.EnmaxRange(),
	}

	// Which members must be reconstructed? All of them for the bias test,
	// otherwise only the test members.
	needed := testMembers
	if v.WithBias {
		needed = make([]int, nm)
		for i := range needed {
			needed[i] = i
		}
	}

	recon := make([][]float32, nm)
	crs := make([]float64, nm)
	errs := make([]error, nm)
	// Reconstruction buffers are only needed within this call (the Result
	// keeps derived scores, never the raw data), so hand them back to the
	// shared scratch pool on every exit path.
	defer func() {
		for _, out := range recon {
			if out != nil {
				par.PutFloats(out)
			}
		}
	}()
	par.EachLimit(len(needed), v.Workers, func(j int) error {
		m := needed[j]
		data := vs.Original(m)
		// The compressed stream is a per-iteration intermediate; the Into
		// paths let each worker recycle one stream buffer and write the
		// reconstruction straight into a pooled field buffer.
		buf, err := compress.CompressInto(codec, compress.GetBytes(len(data)), data, v.Shape)
		if err != nil {
			compress.PutBytes(buf)
			errs[m] = err
			return nil
		}
		crs[m] = compress.Ratio(len(buf), len(data))
		out, err := compress.DecompressInto(codec, par.GetFloats(len(data)), buf)
		compress.PutBytes(buf)
		if err != nil {
			par.PutFloats(out)
			errs[m] = err
			return nil
		}
		recon[m] = out
		return nil
	})
	for _, m := range needed {
		if errs[m] != nil {
			return Result{}, fmt.Errorf("pvt: %s member %d: %w", codec.Name(), m, errs[m])
		}
	}

	// Per-test-member checks.
	res.RhoPass, res.RMSZPass, res.EnmaxPass = true, true, true
	for _, m := range testMembers {
		e := metrics.Compare(vs.Original(m), recon[m], vs.Fill, vs.HasFill)
		rz := vs.RMSZOf(m, recon[m])
		chk := MemberCheck{
			Member:    m,
			Errors:    e,
			RMSZOrig:  vs.RMSZ[m],
			RMSZRecon: rz,
			CR:        crs[m],
		}
		res.Checks = append(res.Checks, chk)
		if !e.PassesCorrelation() {
			res.RhoPass = false
		}
		// Within-distribution check with a 1% slack of the distribution
		// range: when a test member happens to hold the extreme RMSZ, any
		// infinitesimal positive shift would otherwise land "outside" even
		// though the distribution is statistically unchanged. Eq. 8 remains
		// the binding criterion.
		slack := 0.01 * res.RMSZBox.Range()
		within := rz >= res.RMSZBox.Min-slack && rz <= res.RMSZBox.Max+slack
		if math.IsNaN(rz) || !within ||
			math.Abs(rz-vs.RMSZ[m]) > v.Thr.RMSZDiff {
			res.RMSZPass = false
		}
		if res.EnmaxSpread <= 0 || math.IsNaN(e.ENMax) ||
			e.ENMax/res.EnmaxSpread > v.Thr.EnmaxRatio {
			res.EnmaxPass = false
		}
	}

	// Bias test over the full reconstructed ensemble Ẽ.
	if v.WithBias {
		res.ReconRMSZ = ensemble.RMSZScores(recon, vs.FillMask)
		res.Bias = stats.LinearFit(vs.RMSZ, res.ReconRMSZ)
		res.BiasPass = !math.IsNaN(res.Bias.Slope) &&
			res.Bias.SlopeWorstCaseDistance() <= v.Thr.SlopeDistance
		var sum float64
		for _, cr := range crs {
			sum += cr
		}
		res.MeanCR = sum / float64(nm)
	} else {
		res.SkippedBias = true
		res.BiasPass = true
		var sum float64
		for _, m := range testMembers {
			sum += crs[m]
		}
		res.MeanCR = sum / float64(len(testMembers))
	}

	// Range-shift screen: reconstructed test members' global (unweighted,
	// valid-point) means must fall within the ensemble's distribution
	// (precomputed as ValidMean during the build).
	gmBox := stats.NewBoxplot(vs.ValidMean)
	res.RangeOK = true
	for _, m := range testMembers {
		if !rangeShiftOK(gmBox, ensemble.MaskedMean(recon[m], vs.FillMask)) {
			res.RangeOK = false
		}
	}

	res.AllPass = res.RhoPass && res.RMSZPass && res.EnmaxPass && res.BiasPass
	return res, nil
}

// rangeShiftOK reports whether a reconstructed member's global mean sits
// inside the ensemble's distribution, tolerating float rounding at the box
// edges.
func rangeShiftOK(gmBox stats.Boxplot, rm float64) bool {
	if gmBox.Contains(rm) {
		return true
	}
	slack := 1e-9 * (math.Abs(gmBox.Max) + 1)
	return rm >= gmBox.Min-slack && rm <= gmBox.Max+slack
}

// verifyStream is Verify for streamed ensemble statistics, running the
// fused verification kernels. Stage 1 compresses every needed member from a
// re-acquired original, retaining only the compressed stream; stage 2
// chunk-decodes each test member straight into the streaming metric
// accumulators (Comparer, RMSZAccumulator, MeanAccumulator); stage 3 feeds
// the bias regression through the chunked RMSZ reduction. On natively
// chunked codecs no reconstructed field is ever materialized — peak
// residency per member is one DefaultChunkLen chunk — and the Result stays
// bit-identical to Verify's materialized path (pinned by the stream tests).
// CPU profile samples carry "stage" labels (decode / metrics / rmsz).
func (v *Verifier) verifyStream(codec compress.Codec, testMembers []int) (Result, error) {
	vs := v.Stats
	nm := vs.Members()
	res := Result{
		Variable:    vs.Name,
		Codec:       codec.Name(),
		RMSZBox:     vs.RMSZBox(),
		EnmaxSpread: vs.EnmaxRange(),
	}

	needed := testMembers
	if v.WithBias {
		needed = make([]int, nm)
		for i := range needed {
			needed[i] = i
		}
	}

	// Stage 1: compress each needed member; keep streams, drop originals.
	streams := make([][]byte, nm)
	crs := make([]float64, nm)
	errs := make([]error, nm)
	defer func() {
		for _, buf := range streams {
			if buf != nil {
				compress.PutBytes(buf)
			}
		}
	}()
	par.EachLimit(len(needed), v.Workers, func(j int) error {
		m := needed[j]
		data, release := vs.AcquireOriginal(m)
		defer release()
		buf, err := compress.CompressInto(codec, compress.GetBytes(len(data)), data, v.Shape)
		if err != nil {
			compress.PutBytes(buf)
			errs[m] = err
			return nil
		}
		crs[m] = compress.Ratio(len(buf), len(data))
		streams[m] = buf
		return nil
	})
	for _, m := range needed {
		if errs[m] != nil {
			return Result{}, fmt.Errorf("pvt: %s member %d: %w", codec.Name(), m, errs[m])
		}
	}

	// Stage 2: fused per-test-member checks — each member's compressed
	// stream decodes chunk by chunk straight into the streaming metric
	// accumulators, so no reconstructed field is ever materialized. The
	// accumulators replicate Compare/ScoreRMSZ/MaskedMean in index order,
	// keeping the Result bit-identical to the materialized path.
	// An empty chunk buffer lets each decoder pick its cheapest shape:
	// native chunk decoders stream through their own pooled buffer, and
	// the whole-field fallback yields direct windows of its internal
	// reconstruction instead of copying every window out.
	gmBox := stats.NewBoxplot(vs.ValidMean)
	res.RhoPass, res.RMSZPass, res.EnmaxPass, res.RangeOK = true, true, true, true
	var cmp metrics.Comparer
	var rzAcc ensemble.RMSZAccumulator
	var meanAcc ensemble.MeanAccumulator
	for _, m := range testMembers {
		data, release := vs.AcquireOriginal(m)
		cmp.Reset(vs.Fill, vs.HasFill)
		rzAcc.Reset(vs.Mom, vs.FillMask)
		meanAcc.Reset(vs.FillMask)
		var err error
		withStage("decode", func() {
			err = compress.DecodeChunks(codec, streams[m], nil, func(off int, vals []float32) error {
				if off+len(vals) > len(data) {
					return fmt.Errorf("%w: chunk [%d,%d) outside field of %d points", compress.ErrCorrupt, off, off+len(vals), len(data))
				}
				orig := data[off : off+len(vals)]
				cmp.Push(orig, vals, off)
				rzAcc.Push(orig, vals, off)
				meanAcc.Push(vals, off)
				return nil
			})
		})
		release()
		if err != nil {
			return Result{}, fmt.Errorf("pvt: %s member %d: %w", codec.Name(), m, err)
		}
		withStage("metrics", func() {
			e := cmp.Finish()
			rz := rzAcc.Finish(vs.NPoints)
			res.Checks = append(res.Checks, MemberCheck{
				Member:    m,
				Errors:    e,
				RMSZOrig:  vs.RMSZ[m],
				RMSZRecon: rz,
				CR:        crs[m],
			})
			if !e.PassesCorrelation() {
				res.RhoPass = false
			}
			slack := 0.01 * res.RMSZBox.Range()
			within := rz >= res.RMSZBox.Min-slack && rz <= res.RMSZBox.Max+slack
			if math.IsNaN(rz) || !within || math.Abs(rz-vs.RMSZ[m]) > v.Thr.RMSZDiff {
				res.RMSZPass = false
			}
			if res.EnmaxSpread <= 0 || math.IsNaN(e.ENMax) ||
				e.ENMax/res.EnmaxSpread > v.Thr.EnmaxRatio {
				res.EnmaxPass = false
			}
			if !rangeShiftOK(gmBox, meanAcc.Finish()) {
				res.RangeOK = false
			}
		})
	}

	// Stage 3: bias over the reconstructed ensemble Ẽ, fused — each member
	// decodes twice (moments pass, then self-scoring pass) chunk by chunk
	// into the RMSZ accumulators.
	if v.WithBias {
		var scores []float64
		var err error
		withStage("rmsz", func() {
			scores, err = ensemble.RMSZScoresChunked(nm, vs.NPoints, vs.FillMask,
				func(m int, yield func(off int, vals []float32) error) error {
					if derr := compress.DecodeChunks(codec, streams[m], nil, yield); derr != nil {
						return fmt.Errorf("pvt: %s member %d: %w", codec.Name(), m, derr)
					}
					return nil
				})
		})
		if err != nil {
			return Result{}, err
		}
		res.ReconRMSZ = scores
		res.Bias = stats.LinearFit(vs.RMSZ, res.ReconRMSZ)
		res.BiasPass = !math.IsNaN(res.Bias.Slope) &&
			res.Bias.SlopeWorstCaseDistance() <= v.Thr.SlopeDistance
		var sum float64
		for _, cr := range crs {
			sum += cr
		}
		res.MeanCR = sum / float64(nm)
	} else {
		res.SkippedBias = true
		res.BiasPass = true
		var sum float64
		for _, m := range testMembers {
			sum += crs[m]
		}
		res.MeanCR = sum / float64(len(testMembers))
	}

	res.AllPass = res.RhoPass && res.RMSZPass && res.EnmaxPass && res.BiasPass
	return res, nil
}

// VerifyData runs the four tests against externally produced
// reconstructions of every ensemble member — e.g. data decompressed by
// another tool and read back from files — rather than compressing with a
// Codec. recon must hold one reconstruction per member; CRs are unknown to
// this path and reported as zero.
func (v *Verifier) VerifyData(name string, recon [][]float32) (Result, error) {
	vs := v.Stats
	nm := vs.Members()
	if len(recon) != nm {
		return Result{}, fmt.Errorf("pvt: %d reconstructions for %d members", len(recon), nm)
	}
	testMembers := v.TestMembers
	if len(testMembers) == 0 {
		testMembers = SelectTestMembers(nm, 3, 12345)
	}
	res := Result{
		Variable:    vs.Name,
		Codec:       name,
		RMSZBox:     vs.RMSZBox(),
		EnmaxSpread: vs.EnmaxRange(),
	}
	res.RhoPass, res.RMSZPass, res.EnmaxPass = true, true, true
	for _, m := range testMembers {
		if len(recon[m]) != vs.NPoints {
			return Result{}, fmt.Errorf("pvt: reconstruction %d has %d points, want %d", m, len(recon[m]), vs.NPoints)
		}
		e := metrics.Compare(vs.Original(m), recon[m], vs.Fill, vs.HasFill)
		rz := vs.RMSZOf(m, recon[m])
		res.Checks = append(res.Checks, MemberCheck{
			Member: m, Errors: e, RMSZOrig: vs.RMSZ[m], RMSZRecon: rz,
		})
		if !e.PassesCorrelation() {
			res.RhoPass = false
		}
		slack := 0.01 * res.RMSZBox.Range()
		within := rz >= res.RMSZBox.Min-slack && rz <= res.RMSZBox.Max+slack
		if math.IsNaN(rz) || !within || math.Abs(rz-vs.RMSZ[m]) > v.Thr.RMSZDiff {
			res.RMSZPass = false
		}
		if res.EnmaxSpread <= 0 || math.IsNaN(e.ENMax) ||
			e.ENMax/res.EnmaxSpread > v.Thr.EnmaxRatio {
			res.EnmaxPass = false
		}
	}
	res.ReconRMSZ = ensemble.RMSZScores(recon, vs.FillMask)
	res.Bias = stats.LinearFit(vs.RMSZ, res.ReconRMSZ)
	res.BiasPass = !math.IsNaN(res.Bias.Slope) &&
		res.Bias.SlopeWorstCaseDistance() <= v.Thr.SlopeDistance
	res.RangeOK = true
	res.AllPass = res.RhoPass && res.RMSZPass && res.EnmaxPass && res.BiasPass
	return res, nil
}
