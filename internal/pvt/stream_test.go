package pvt

import (
	"math"
	"reflect"
	"testing"

	"climcompress/internal/compress"
	"climcompress/internal/ensemble"
	"climcompress/internal/field"
	"climcompress/internal/grid"
)

// hashSource is a deterministic ensemble.Source: regenerating a member
// always yields identical bits, which is the contract the streamed verify
// path relies on.
type hashSource struct {
	g  *grid.Grid
	nm int
}

func (s *hashSource) Members() int { return s.nm }

func (s *hashSource) Field(varIdx, m int) *field.Field {
	f := field.New("X", "1", s.g, false)
	for i := range f.Data {
		f.Data[i] = hashValue(varIdx, m, i)
	}
	return f
}

func hashValue(varIdx, m, i int) float32 {
	x := uint64(varIdx)*0x9e3779b97f4a7c15 + uint64(m)*0xbf58476d1ce4e5b9 + uint64(i)*0x94d049bb133111eb
	x ^= x >> 31
	x *= 0xd6e8feb86659fd93
	x ^= x >> 27
	mu := 50 + 10*math.Sin(float64(i)/9)
	return float32(mu + float64(x%100000)/50000 - 1)
}

// TestVerifyStreamMatchesMaterialized checks the bounded-memory verify path
// produces bit-identical Results to the materialized one, for lossless and
// lossy codecs, with and without the bias test.
func TestVerifyStreamMatchesMaterialized(t *testing.T) {
	src := &hashSource{g: grid.Test(), nm: 15}
	fields := make([]*field.Field, src.nm)
	for m := range fields {
		fields[m] = src.Field(0, m)
	}
	mvs, err := ensemble.Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	svs, err := ensemble.BuildStream(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !svs.Streamed() {
		t.Fatal("BuildStream stats not streamed")
	}
	shape := compress.Shape{NLev: 1, NLat: src.g.NLat, NLon: src.g.NLon}

	for _, name := range []string{"nc", "fpzip-24", "apax-4"} {
		codec, err := compress.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, withBias := range []bool{false, true} {
			mv := &Verifier{Stats: mvs, Shape: shape, Thr: Default(), WithBias: withBias}
			sv := &Verifier{Stats: svs, Shape: shape, Thr: Default(), WithBias: withBias}
			want, err := mv.Verify(codec)
			if err != nil {
				t.Fatalf("%s materialized: %v", name, err)
			}
			got, err := sv.Verify(codec)
			if err != nil {
				t.Fatalf("%s streamed: %v", name, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s withBias=%v: streamed Result differs\nmaterialized: %+v\nstreamed:     %+v",
					name, withBias, want, got)
			}
		}
	}
}
