// Package entropy implements an adaptive binary range coder (arithmetic
// coder) plus the probability models used by the compressors in this
// repository. The coder follows the classic carry-less LZMA construction:
// 11-bit probabilities, 32-bit range, byte-wise renormalization.
package entropy

// Prob is an 11-bit adaptive probability of a zero bit, in [0, 2048).
type Prob uint16

const (
	probBits = 11
	probInit = 1 << (probBits - 1) // p(0) = 0.5
	moveBits = 5
	topValue = 1 << 24
)

// NewProbs returns n probability slots initialized to one half.
func NewProbs(n int) []Prob {
	p := make([]Prob, n)
	for i := range p {
		p[i] = probInit
	}
	return p
}

// Encoder is a binary range encoder. Create with NewEncoder; call Flush once
// at the end to obtain the compressed bytes.
type Encoder struct {
	out       []byte
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
}

// NewEncoder returns an Encoder with the given output capacity hint.
func NewEncoder(capHint int) *Encoder {
	if capHint < 0 {
		capHint = 0
	}
	return &Encoder{
		out:       make([]byte, 0, capHint),
		rng:       0xffffffff,
		cacheSize: 1,
	}
}

// Reset returns the Encoder to its initial state, retaining the output
// buffer's capacity, so one Encoder can code many independent streams
// without reallocating.
func (e *Encoder) Reset() {
	e.out = e.out[:0]
	e.low = 0
	e.rng = 0xffffffff
	e.cache = 0
	e.cacheSize = 1
}

func (e *Encoder) shiftLow() {
	e.low = e.shiftLowVal(e.low)
}

// shiftLowVal is shiftLow with the low register passed in and returned, so
// hot loops can keep it in a local across many bits without re-reading the
// struct field. The byte stream it emits is identical to shiftLow's.
func (e *Encoder) shiftLowVal(low uint64) uint64 {
	if uint32(low) < 0xff000000 || low>>32 == 1 {
		temp := e.cache
		for {
			e.out = append(e.out, temp+byte(low>>32))
			temp = 0xff
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(low >> 24)
	}
	e.cacheSize++
	return (low << 8) & 0xffffffff
}

// EncodeBit encodes one bit under the adaptive model *p and updates the model.
func (e *Encoder) EncodeBit(p *Prob, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (1<<probBits - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeDirect encodes the low n bits of v (MSB first) at fixed probability
// one half, bypassing any model.
func (e *Encoder) EncodeDirect(v uint32, n uint) {
	low, rng := e.low, e.rng
	for n > 0 {
		n--
		rng >>= 1
		if (v>>n)&1 != 0 {
			low += uint64(rng)
		}
		for rng < topValue {
			rng <<= 8
			low = e.shiftLowVal(low)
		}
	}
	e.low, e.rng = low, rng
}

// Flush terminates the stream and returns the encoded bytes. The Encoder
// must not be used after Flush.
func (e *Encoder) Flush() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// Len reports the current number of output bytes (excluding unflushed state).
func (e *Encoder) Len() int { return len(e.out) }

// Decoder is the matching binary range decoder.
type Decoder struct {
	in   []byte
	pos  int
	rng  uint32
	code uint32
	over bool // ran past the end of input
}

// NewDecoder returns a Decoder over the bytes produced by Encoder.Flush.
func NewDecoder(in []byte) *Decoder {
	d := &Decoder{}
	d.Reset(in)
	return d
}

// Reset re-primes the Decoder over a new stream, equivalent to a fresh
// NewDecoder without the allocation.
func (d *Decoder) Reset(in []byte) {
	d.in = in
	d.rng = 0xffffffff
	d.code = 0
	d.over = false
	d.pos = 1 // the first output byte of the encoder is always zero
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.nextByte())
	}
}

func (d *Decoder) nextByte() byte {
	if d.pos < len(d.in) {
		b := d.in[d.pos]
		d.pos++
		return b
	}
	d.pos++
	d.over = true
	return 0
}

// Overrun reports whether the decoder has consumed more bytes than were
// present in the input (i.e. the stream was truncated). A small overrun is
// normal at end of stream because NewDecoder primes 4 bytes; callers that
// need strict validation should frame their payloads with explicit counts.
func (d *Decoder) Overrun() bool { return d.over }

// DecodeBit decodes one bit under the adaptive model *p and updates the model.
func (d *Decoder) DecodeBit(p *Prob) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<probBits - *p) >> moveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> moveBits
		bit = 1
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return bit
}

// DecodeDirect decodes n model-free bits, MSB first.
func (d *Decoder) DecodeDirect(n uint) uint32 {
	rng, code := d.rng, d.code
	in, pos := d.in, d.pos
	var v uint32
	for n > 0 {
		n--
		rng >>= 1
		var bit uint32
		if code >= rng {
			code -= rng
			bit = 1
		}
		v = v<<1 | bit
		for rng < topValue {
			rng <<= 8
			var b byte
			if pos < len(in) {
				b = in[pos]
			} else {
				d.over = true
			}
			pos++
			code = code<<8 | uint32(b)
		}
	}
	d.rng, d.code, d.pos = rng, code, pos
	return v
}
