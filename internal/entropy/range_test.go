package entropy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitRoundTripBiased(t *testing.T) {
	// A heavily biased stream must round-trip and compress well.
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	bitsIn := make([]int, n)
	for i := range bitsIn {
		if rng.Float64() < 0.03 {
			bitsIn[i] = 1
		}
	}
	e := NewEncoder(0)
	p := NewProbs(1)
	for _, b := range bitsIn {
		e.EncodeBit(&p[0], b)
	}
	out := e.Flush()
	if len(out)*8 > n/3 {
		t.Fatalf("biased stream compressed to %d bytes; expected < %d bits total", len(out), n/3)
	}
	d := NewDecoder(out)
	q := NewProbs(1)
	for i, want := range bitsIn {
		if got := d.DecodeBit(&q[0]); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestDirectBitsRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	vals := []uint32{0, 1, 0xffffffff, 0x12345678, 7, 1 << 31}
	widths := []uint{1, 3, 32, 29, 4, 32}
	for i, v := range vals {
		e.EncodeDirect(v&masku32(widths[i]), widths[i])
	}
	d := NewDecoder(e.Flush())
	for i, v := range vals {
		want := v & masku32(widths[i])
		if got := d.DecodeDirect(widths[i]); got != want {
			t.Fatalf("direct %d: got %#x want %#x", i, got, want)
		}
	}
}

func masku32(w uint) uint32 {
	if w >= 32 {
		return 0xffffffff
	}
	return 1<<w - 1
}

func TestMixedModelAndDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEncoder(0)
	p := NewProbs(4)
	type ev struct {
		kind int
		v    uint32
		w    uint
		ctx  int
	}
	var evs []ev
	for i := 0; i < 5000; i++ {
		if rng.Intn(2) == 0 {
			x := ev{kind: 0, v: uint32(rng.Intn(2)), ctx: rng.Intn(4)}
			e.EncodeBit(&p[x.ctx], int(x.v))
			evs = append(evs, x)
		} else {
			w := uint(rng.Intn(16) + 1)
			x := ev{kind: 1, v: rng.Uint32() & masku32(w), w: w}
			e.EncodeDirect(x.v, x.w)
			evs = append(evs, x)
		}
	}
	d := NewDecoder(e.Flush())
	q := NewProbs(4)
	for i, x := range evs {
		if x.kind == 0 {
			if got := d.DecodeBit(&q[x.ctx]); uint32(got) != x.v {
				t.Fatalf("event %d bit mismatch", i)
			}
		} else {
			if got := d.DecodeDirect(x.w); got != x.v {
				t.Fatalf("event %d direct mismatch: got %#x want %#x", i, got, x.v)
			}
		}
	}
}

func TestTreeModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewTreeModel(8)
	e := NewEncoder(0)
	syms := make([]uint32, 4000)
	for i := range syms {
		// Skewed distribution: mostly small symbols.
		syms[i] = uint32(rng.ExpFloat64() * 10)
		if syms[i] > 255 {
			syms[i] = 255
		}
		m.Encode(e, syms[i])
	}
	out := e.Flush()
	d := NewDecoder(out)
	m2 := NewTreeModel(8)
	for i, want := range syms {
		if got := m2.Decode(d); got != want {
			t.Fatalf("sym %d: got %d want %d", i, got, want)
		}
	}
	if len(out) >= 4000 {
		t.Fatalf("skewed 8-bit symbols should compress below 1 byte/sym, got %d bytes", len(out))
	}
}

func TestUintModelRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 2, 3, 255, 256, 1 << 20, 1<<40 + 12345, 1<<63 + 99, ^uint64(0)}
	m := NewUintModel()
	e := NewEncoder(0)
	for _, v := range vals {
		m.Encode(e, v)
	}
	d := NewDecoder(e.Flush())
	m2 := NewUintModel()
	for i, want := range vals {
		if got := m2.Decode(d); got != want {
			t.Fatalf("val %d: got %d want %d", i, got, want)
		}
	}
}

func TestSignedModelRoundTrip(t *testing.T) {
	vals := []int64{0, -1, 1, -2, 2, 1000, -1000, 1 << 40, -(1 << 40), -9223372036854775808, 9223372036854775807}
	m := NewSignedModel()
	e := NewEncoder(0)
	for _, v := range vals {
		m.Encode(e, v)
	}
	d := NewDecoder(e.Flush())
	m2 := NewSignedModel()
	for i, want := range vals {
		if got := m2.Decode(d); got != want {
			t.Fatalf("val %d: got %d want %d", i, got, want)
		}
	}
}

func TestZigZag(t *testing.T) {
	cases := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4}
	for v, want := range cases {
		if got := ZigZag(v); got != want {
			t.Errorf("ZigZag(%d) = %d, want %d", v, got, want)
		}
		if back := UnZigZag(want); back != v {
			t.Errorf("UnZigZag(%d) = %d, want %d", want, back, v)
		}
	}
}

func TestZigZagQuick(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByteModelRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, repeatedly: " +
		"the quick brown fox jumps over the lazy dog")
	m := NewByteModel()
	e := NewEncoder(0)
	for _, b := range data {
		m.Encode(e, b)
	}
	d := NewDecoder(e.Flush())
	m2 := NewByteModel()
	for i, want := range data {
		if got := m2.Decode(d); got != want {
			t.Fatalf("byte %d: got %q want %q", i, got, want)
		}
	}
}

func TestDecoderOverrunFlag(t *testing.T) {
	d := NewDecoder([]byte{0})
	_ = d.DecodeDirect(32)
	_ = d.DecodeDirect(32)
	if !d.Overrun() {
		t.Fatal("expected Overrun after decoding past a 1-byte stream")
	}
}

func BenchmarkEncodeBit(b *testing.B) {
	e := NewEncoder(1 << 20)
	p := NewProbs(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Len() > 1<<19 {
			e = NewEncoder(1 << 20)
		}
		e.EncodeBit(&p[0], i&1)
	}
}

func BenchmarkUintModel(b *testing.B) {
	m := NewUintModel()
	e := NewEncoder(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Len() > 1<<19 {
			e = NewEncoder(1 << 20)
			m = NewUintModel()
		}
		m.Encode(e, uint64(i%1000))
	}
}
