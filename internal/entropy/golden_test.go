package entropy

import (
	"bytes"
	"math/rand"
	"testing"
)

// refTreeEncode is TreeModel.Encode before the register-hoisting unroll: one
// EncodeBit call per bit. The unrolled version must emit the exact same
// bytes, since compressed sizes feed the published compression ratios.
func refTreeEncode(m *TreeModel, e *Encoder, sym uint32) {
	node := uint32(1)
	for i := int(m.width) - 1; i >= 0; i-- {
		bit := int(sym>>uint(i)) & 1
		e.EncodeBit(&m.probs[node], bit)
		node = node<<1 | uint32(bit)
	}
}

// refTreeDecode is the matching per-bit reference decoder.
func refTreeDecode(m *TreeModel, d *Decoder) uint32 {
	node := uint32(1)
	for i := 0; i < int(m.width); i++ {
		bit := d.DecodeBit(&m.probs[node])
		node = node<<1 | uint32(bit)
	}
	return node - 1<<m.width
}

// refEncodeDirect is EncodeDirect before hoisting.
func refEncodeDirect(e *Encoder, v uint32, n uint) {
	for n > 0 {
		n--
		e.rng >>= 1
		if (v>>n)&1 != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

// refDecodeDirect is DecodeDirect before hoisting.
func refDecodeDirect(d *Decoder, n uint) uint32 {
	var v uint32
	for n > 0 {
		n--
		d.rng >>= 1
		var bit uint32
		if d.code >= d.rng {
			d.code -= d.rng
			bit = 1
		}
		v = v<<1 | bit
		for d.rng < topValue {
			d.rng <<= 8
			d.code = d.code<<8 | uint32(d.nextByte())
		}
	}
	return v
}

// TestCoderMatchesReferenceBitwise drives the optimized tree/direct coders
// and the per-bit reference implementations through the same long mixed
// symbol stream and requires byte-for-byte identical output, identical
// model state, and identical decoder reads.
func TestCoderMatchesReferenceBitwise(t *testing.T) {
	for _, width := range []uint{1, 4, 7, 8, 12, 16} {
		rng := rand.New(rand.NewSource(int64(width) * 1009))
		type ev struct {
			kind int // 0 = tree symbol, 1 = direct bits
			v    uint32
			w    uint
		}
		evs := make([]ev, 30000)
		for i := range evs {
			if rng.Intn(3) == 0 {
				w := uint(rng.Intn(32) + 1)
				evs[i] = ev{kind: 1, v: rng.Uint32() & masku32(w), w: w}
			} else {
				// Skewed so the adaptive probabilities drift far from 1/2.
				v := uint32(rng.ExpFloat64() * 3)
				evs[i] = ev{kind: 0, v: v & masku32(width)}
			}
		}

		opt, ref := NewTreeModel(width), NewTreeModel(width)
		eOpt, eRef := NewEncoder(0), NewEncoder(0)
		for _, x := range evs {
			if x.kind == 0 {
				opt.Encode(eOpt, x.v)
				refTreeEncode(ref, eRef, x.v)
			} else {
				eOpt.EncodeDirect(x.v, x.w)
				refEncodeDirect(eRef, x.v, x.w)
			}
		}
		outOpt, outRef := eOpt.Flush(), eRef.Flush()
		if !bytes.Equal(outOpt, outRef) {
			t.Fatalf("width %d: optimized encoder diverged from reference (%d vs %d bytes)",
				width, len(outOpt), len(outRef))
		}
		for i := range opt.probs {
			if opt.probs[i] != ref.probs[i] {
				t.Fatalf("width %d: encoder model state diverged at slot %d", width, i)
			}
		}

		dOpt, dRef := NewDecoder(outOpt), NewDecoder(outRef)
		mOpt, mRef := NewTreeModel(width), NewTreeModel(width)
		for i, x := range evs {
			var got, want uint32
			if x.kind == 0 {
				got = mOpt.Decode(dOpt)
				want = refTreeDecode(mRef, dRef)
				if got != x.v {
					t.Fatalf("width %d: sym %d decoded %d want %d", width, i, got, x.v)
				}
			} else {
				got = dOpt.DecodeDirect(x.w)
				want = refDecodeDirect(dRef, x.w)
				if got != x.v {
					t.Fatalf("width %d: direct %d decoded %#x want %#x", width, i, got, x.v)
				}
			}
			if got != want {
				t.Fatalf("width %d: event %d optimized/reference decode mismatch", width, i)
			}
		}
		if dOpt.pos != dRef.pos || dOpt.rng != dRef.rng || dOpt.code != dRef.code || dOpt.over != dRef.over {
			t.Fatalf("width %d: decoder state diverged", width)
		}
	}
}

// TestDecodeOverrunMatchesReference checks the hoisted decoder sets the
// overrun flag and keeps advancing pos exactly like nextByte does when the
// stream is truncated.
func TestDecodeOverrunMatchesReference(t *testing.T) {
	in := []byte{0, 1, 2}
	dOpt, dRef := NewDecoder(in), NewDecoder(in)
	m, mRef := NewTreeModel(8), NewTreeModel(8)
	for i := 0; i < 8; i++ {
		if got, want := m.Decode(dOpt), refTreeDecode(mRef, dRef); got != want {
			t.Fatalf("read %d: got %d want %d", i, got, want)
		}
		if got, want := dOpt.DecodeDirect(13), refDecodeDirect(dRef, 13); got != want {
			t.Fatalf("direct read %d: got %d want %d", i, got, want)
		}
	}
	if dOpt.pos != dRef.pos || dOpt.over != dRef.over {
		t.Fatalf("truncated-stream state diverged: pos %d/%d over %v/%v",
			dOpt.pos, dRef.pos, dOpt.over, dRef.over)
	}
	if !dOpt.Overrun() {
		t.Fatal("expected overrun on truncated stream")
	}
}
