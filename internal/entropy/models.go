package entropy

import "math/bits"

// TreeModel codes fixed-width symbols bit by bit down a binary tree of
// adaptive probabilities, so frequent symbols cost less than their raw width.
type TreeModel struct {
	width uint
	probs []Prob
}

// NewTreeModel returns a model for symbols of the given bit width (1..16).
func NewTreeModel(width uint) *TreeModel {
	if width < 1 || width > 16 {
		panic("entropy: tree model width out of range")
	}
	return &TreeModel{width: width, probs: NewProbs(1 << width)}
}

// Reset restores every probability to one half, equivalent to a fresh model.
func (m *TreeModel) Reset() {
	for i := range m.probs {
		m.probs[i] = probInit
	}
}

// Encode writes the low `width` bits of sym. The loop is EncodeBit unrolled
// with the coder registers held in locals for the whole symbol; the emitted
// byte stream is identical.
func (m *TreeModel) Encode(e *Encoder, sym uint32) {
	low, rng := e.low, e.rng
	probs := m.probs
	node := uint32(1)
	for i := int(m.width) - 1; i >= 0; i-- {
		bit := (sym >> uint(i)) & 1
		p := probs[node]
		bound := (rng >> probBits) * uint32(p)
		if bit == 0 {
			rng = bound
			probs[node] = p + (1<<probBits-p)>>moveBits
		} else {
			low += uint64(bound)
			rng -= bound
			probs[node] = p - p>>moveBits
		}
		node = node<<1 | bit
		for rng < topValue {
			rng <<= 8
			low = e.shiftLowVal(low)
		}
	}
	e.low, e.rng = low, rng
}

// Decode reads one symbol (DecodeBit unrolled, same transformation as Encode).
func (m *TreeModel) Decode(d *Decoder) uint32 {
	rng, code := d.rng, d.code
	in, pos := d.in, d.pos
	probs := m.probs
	node := uint32(1)
	for i := 0; i < int(m.width); i++ {
		p := probs[node]
		bound := (rng >> probBits) * uint32(p)
		var bit uint32
		if code < bound {
			rng = bound
			probs[node] = p + (1<<probBits-p)>>moveBits
		} else {
			code -= bound
			rng -= bound
			probs[node] = p - p>>moveBits
			bit = 1
		}
		node = node<<1 | bit
		for rng < topValue {
			rng <<= 8
			var b byte
			if pos < len(in) {
				b = in[pos]
			} else {
				d.over = true
			}
			pos++
			code = code<<8 | uint32(b)
		}
	}
	d.rng, d.code, d.pos = rng, code, pos
	return node - 1<<m.width
}

// UintModel codes unsigned 64-bit integers as an adaptively-coded bit length
// followed by the length-1 trailing bits coded directly. It is the workhorse
// for prediction residuals, which cluster around small magnitudes.
type UintModel struct {
	lenModel *TreeModel
}

// NewUintModel returns a fresh model.
func NewUintModel() *UintModel {
	return &UintModel{lenModel: NewTreeModel(7)} // lengths 0..64 fit in 7 bits
}

// Reset restores the model to its initial adaptive state.
func (m *UintModel) Reset() { m.lenModel.Reset() }

// Encode writes v.
func (m *UintModel) Encode(e *Encoder, v uint64) {
	n := uint(bits.Len64(v)) // 0 for v==0
	m.lenModel.Encode(e, uint32(n))
	if n > 1 {
		// The leading one bit is implied by the length.
		rest := v & ((1 << (n - 1)) - 1)
		if n-1 > 32 {
			e.EncodeDirect(uint32(rest>>32), n-1-32)
			e.EncodeDirect(uint32(rest), 32)
		} else {
			e.EncodeDirect(uint32(rest), n-1)
		}
	}
}

// Decode reads one value.
func (m *UintModel) Decode(d *Decoder) uint64 {
	n := uint(m.lenModel.Decode(d))
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1
	}
	var rest uint64
	if n-1 > 32 {
		hi := uint64(d.DecodeDirect(n - 1 - 32))
		lo := uint64(d.DecodeDirect(32))
		rest = hi<<32 | lo
	} else {
		rest = uint64(d.DecodeDirect(n - 1))
	}
	return 1<<(n-1) | rest
}

// SignedModel codes signed integers via zigzag mapping over a UintModel,
// with a dedicated adaptive sign bit for values whose magnitude repeats.
type SignedModel struct {
	mag *UintModel
}

// NewSignedModel returns a fresh model.
func NewSignedModel() *SignedModel {
	return &SignedModel{mag: NewUintModel()}
}

// Reset restores the model to its initial adaptive state.
func (m *SignedModel) Reset() { m.mag.Reset() }

// ZigZag maps a signed integer to an unsigned one with small magnitudes first.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode writes v.
func (m *SignedModel) Encode(e *Encoder, v int64) { m.mag.Encode(e, ZigZag(v)) }

// Decode reads one value.
func (m *SignedModel) Decode(d *Decoder) int64 { return UnZigZag(m.mag.Decode(d)) }

// ByteModel codes bytes with an order-0 adaptive model (a width-8 tree).
type ByteModel struct{ tree *TreeModel }

// NewByteModel returns a fresh model.
func NewByteModel() *ByteModel { return &ByteModel{tree: NewTreeModel(8)} }

// Encode writes one byte.
func (m *ByteModel) Encode(e *Encoder, b byte) { m.tree.Encode(e, uint32(b)) }

// Decode reads one byte.
func (m *ByteModel) Decode(d *Decoder) byte { return byte(m.tree.Decode(d)) }
