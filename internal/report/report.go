// Package report renders experiment results as text: aligned tables for
// the paper's Tables 1–8 and ASCII box plots / histograms / scatter
// summaries for Figures 1–4.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"climcompress/internal/stats"
)

// Table is a titled, aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with column alignment and a rule under the
// header.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if w := len([]rune(c)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	if n := w - len([]rune(s)); n > 0 {
		return s + strings.Repeat(" ", n)
	}
	return s
}

// Sci formats a value in the paper's compact scientific style ("3.6e-4").
func Sci(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == 0:
		return "0"
	}
	return fmt.Sprintf("%.1e", v)
}

// Fix formats a fixed-precision value, trimming NaN/Inf gracefully.
func Fix(v float64, prec int) string {
	if math.IsNaN(v) {
		return "nan"
	}
	if math.IsInf(v, 0) {
		return "inf"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// BoxplotChart renders vertical box plots side by side, one per label.
// With logScale, values are plotted on a log10 axis (non-positive values
// are clamped to the smallest positive datum).
func BoxplotChart(title string, labels []string, boxes []stats.Boxplot, logScale bool, height int) string {
	if len(labels) != len(boxes) || len(boxes) == 0 {
		return title + " (no data)\n"
	}
	if height < 5 {
		height = 5
	}
	// Global plotting range.
	lo, hi := math.Inf(1), math.Inf(-1)
	minPos := math.Inf(1)
	for _, b := range boxes {
		for _, v := range []float64{b.Min, b.Max} {
			if math.IsNaN(v) {
				continue
			}
			if v > 0 && v < minPos {
				minPos = v
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 0) || lo == hi {
		return title + " (degenerate data)\n"
	}
	xform := func(v float64) float64 { return v }
	if logScale {
		if math.IsInf(minPos, 0) {
			return title + " (no positive data for log scale)\n"
		}
		xform = func(v float64) float64 {
			if v < minPos {
				v = minPos
			}
			return math.Log10(v)
		}
		lo, hi = xform(lo), xform(hi)
		if lo == hi {
			hi = lo + 1
		}
	}
	span := hi - lo
	row := func(v float64) int {
		r := int(math.Round((xform(v) - lo) / span * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return height - 1 - r // row 0 at top
	}

	colWidth := 9
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", colWidth*len(boxes)))
	}
	for ci, b := range boxes {
		if math.IsNaN(b.Min) {
			continue
		}
		x := ci*colWidth + colWidth/2
		rMin, rMax := row(b.Min), row(b.Max)
		rQ1, rQ3, rMed := row(b.Q1), row(b.Q3), row(b.Median)
		for r := rMax; r <= rMin; r++ { // rMax is the top row
			grid[r][x] = '|'
		}
		for r := rQ3; r <= rQ1; r++ {
			grid[r][x-1] = '['
			grid[r][x+1] = ']'
			if grid[r][x] == '|' {
				grid[r][x] = ' '
			}
		}
		grid[rMed][x-1] = '='
		grid[rMed][x] = '='
		grid[rMed][x+1] = '='
		grid[rMax][x] = '-'
		grid[rMin][x] = '-'
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	axisLabel := func(r int) string {
		v := lo + (float64(height-1-r)/float64(height-1))*span
		if logScale {
			return fmt.Sprintf("%8s", Sci(math.Pow(10, v)))
		}
		return fmt.Sprintf("%8s", Sci(v))
	}
	for r := 0; r < height; r++ {
		if r == 0 || r == height-1 || r == height/2 {
			b.WriteString(axisLabel(r))
		} else {
			b.WriteString(strings.Repeat(" ", 8))
		}
		b.WriteString(" |")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 8) + " +")
	b.WriteString(strings.Repeat("-", colWidth*len(boxes)))
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", 10))
	for _, l := range labels {
		if len(l) > colWidth-1 {
			l = l[:colWidth-1]
		}
		b.WriteString(pad(l, colWidth))
	}
	b.WriteByte('\n')
	return b.String()
}

// Rect is an axis-aligned confidence rectangle for ScatterRects.
type Rect struct {
	Label          string
	X0, X1, Y0, Y1 float64
}

// ScatterRects renders labeled rectangles in (x, y) space — the paper's
// Figure 4 layout, with slope on x, intercept on y and the ideal point
// (1, 0) marked '+'. Rectangles smaller than one cell render as their
// label's first rune.
func ScatterRects(title string, rects []Rect, idealX, idealY float64, width, height int) string {
	if len(rects) == 0 {
		return title + " (no data)\n"
	}
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 16
	}
	lox, hix := idealX, idealX
	loy, hiy := idealY, idealY
	for _, r := range rects {
		lox = math.Min(lox, r.X0)
		hix = math.Max(hix, r.X1)
		loy = math.Min(loy, r.Y0)
		hiy = math.Max(hiy, r.Y1)
	}
	if hix == lox {
		hix = lox + 1
	}
	if hiy == loy {
		hiy = loy + 1
	}
	// Pad 5% so edge rectangles stay visible.
	px, py := 0.05*(hix-lox), 0.05*(hiy-loy)
	lox, hix, loy, hiy = lox-px, hix+px, loy-py, hiy+py

	col := func(x float64) int {
		c := int((x - lox) / (hix - lox) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int((hiy - y) / (hiy - loy) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for _, r := range rects {
		c0, c1 := col(r.X0), col(r.X1)
		r0, r1 := row(r.Y1), row(r.Y0) // Y1 is the top
		for c := c0; c <= c1; c++ {
			grid[r0][c] = '-'
			grid[r1][c] = '-'
		}
		for rr := r0; rr <= r1; rr++ {
			grid[rr][c0] = '|'
			grid[rr][c1] = '|'
		}
		mark := '?'
		if r.Label != "" {
			mark = []rune(r.Label)[0]
		}
		grid[(r0+r1)/2][(c0+c1)/2] = mark
	}
	grid[row(idealY)][col(idealX)] = '+'

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 10)
		if r == 0 || r == height-1 || r == height/2 {
			y := hiy - float64(r)/float64(height-1)*(hiy-loy)
			label = fmt.Sprintf("%10s", Sci(y))
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.WriteString(string(grid[r]))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10) + " +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "%12s%-*s%s\n", Sci(lox)+" ", width-8, "", Sci(hix))
	return b.String()
}

// HistogramChart renders a horizontal-bar histogram with named markers
// placed on their bins (the Figure 2 layout: the RMSZ distribution with
// each codec's reconstructed score marked).
func HistogramChart(title string, h stats.Histogram, markers map[string]string, markerVals map[string]float64, width int) string {
	if width < 10 {
		width = 40
	}
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// Group marker names by bin, in sorted name order so the chart is
	// byte-stable across runs (map iteration order is not).
	names := make([]string, 0, len(markerVals))
	for name := range markerVals {
		names = append(names, name)
	}
	sort.Strings(names)
	byBin := make(map[int][]string)
	for _, name := range names {
		sym := markers[name]
		if sym == "" {
			sym = "*"
		}
		v := markerVals[name]
		byBin[h.Bin(v)] = append(byBin[h.Bin(v)], sym)
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	n := len(h.Counts)
	w := (h.Hi - h.Lo) / float64(n)
	for i := 0; i < n; i++ {
		binLo := h.Lo + float64(i)*w
		bar := int(math.Round(float64(h.Counts[i]) / float64(maxCount) * float64(width)))
		fmt.Fprintf(&b, "%10.4f | %s", binLo, strings.Repeat("#", bar))
		if syms := byBin[i]; len(syms) > 0 {
			b.WriteString("  <- " + strings.Join(syms, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
