package report

import (
	"fmt"
	"sort"
)

// ShardRow is one shard's contribution to a sharded run, as reconstructed
// by the merge step from the shared artifact store (done-record owners plus
// the shards' persisted run summaries).
type ShardRow struct {
	Shard string // owner tag, e.g. "shard-0"
	Units int    // units whose done record this shard published
	// Stolen/Expired/Waits come from the shard's last incarnation's
	// summary; -1 marks a shard that left no summary (it crashed and was
	// never restarted), rendered as "-".
	Stolen, Expired, Waits int
}

// ShardManifest renders the merge-mode run manifest: one row per shard,
// sorted by shard tag, plus a totals row. The rendering is deterministic in
// its inputs; which shard computed which unit still depends on run timing,
// so byte-stable output across runs requires fixed inputs (as in tests).
func ShardManifest(rows []ShardRow) string {
	sorted := append([]ShardRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	t := Table{
		Title:   "Sharded run manifest",
		Headers: []string{"shard", "units", "stolen", "expired", "waits"},
	}
	opt := func(v int) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprint(v)
	}
	var units int
	for _, r := range sorted {
		units += r.Units
		t.AddRow(r.Shard, fmt.Sprint(r.Units), opt(r.Stolen), opt(r.Expired), opt(r.Waits))
	}
	t.AddRow("total", fmt.Sprint(units), "", "", "")
	return t.String()
}
