package report

import (
	"math"
	"strings"
	"testing"

	"climcompress/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:   "Table X",
		Headers: []string{"Method", "CR"},
	}
	tb.AddRow("grib2", "0.10")
	tb.AddRow("apax-2", "0.50")
	out := tb.String()
	if !strings.Contains(out, "Table X") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: "CR" must start at the same offset in every row.
	idx := strings.Index(lines[1], "CR")
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Fatalf("row too short: %q", l)
		}
	}
}

func TestTableNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("a", "b")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Fatal("rule without headers")
	}
}

func TestSci(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3.6e-4:  "3.6e-04",
		-1.2e10: "-1.2e+10",
	}
	for v, want := range cases {
		if got := Sci(v); got != want {
			t.Errorf("Sci(%v) = %q, want %q", v, got, want)
		}
	}
	if Sci(math.NaN()) != "nan" || Sci(math.Inf(1)) != "inf" {
		t.Error("special values mishandled")
	}
}

func TestFix(t *testing.T) {
	if got := Fix(0.123456, 2); got != "0.12" {
		t.Fatalf("Fix = %q", got)
	}
	if Fix(math.NaN(), 2) != "nan" || Fix(math.Inf(-1), 2) != "inf" {
		t.Fatal("special values mishandled")
	}
}

func TestBoxplotChart(t *testing.T) {
	boxes := []stats.Boxplot{
		stats.NewBoxplot([]float64{1, 2, 3, 4, 5}),
		stats.NewBoxplot([]float64{2, 3, 4, 5, 6}),
	}
	out := BoxplotChart("Fig", []string{"a", "b"}, boxes, false, 10)
	if !strings.Contains(out, "Fig") || !strings.Contains(out, "=") {
		t.Fatalf("chart malformed:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("labels missing")
	}
}

func TestBoxplotChartLogScale(t *testing.T) {
	boxes := []stats.Boxplot{
		stats.NewBoxplot([]float64{1e-6, 1e-5, 1e-4}),
		stats.NewBoxplot([]float64{1e-3, 1e-2, 1e-1}),
	}
	out := BoxplotChart("log fig", []string{"lo", "hi"}, boxes, true, 12)
	if !strings.Contains(out, "e-") {
		t.Fatalf("log axis labels missing:\n%s", out)
	}
}

func TestBoxplotChartDegenerate(t *testing.T) {
	out := BoxplotChart("t", []string{"x"}, []stats.Boxplot{stats.NewBoxplot([]float64{5, 5})}, false, 8)
	if !strings.Contains(out, "degenerate") {
		t.Fatalf("expected degenerate notice, got:\n%s", out)
	}
	out = BoxplotChart("t", nil, nil, false, 8)
	if !strings.Contains(out, "no data") {
		t.Fatal("expected no-data notice")
	}
}

func TestScatterRects(t *testing.T) {
	rects := []Rect{
		{Label: "A", X0: 1.04, X1: 1.08, Y0: -0.06, Y1: -0.03},
		{Label: "B", X0: 0.90, X1: 0.95, Y0: 0.05, Y1: 0.10},
	}
	out := ScatterRects("fig", rects, 1, 0, 60, 14)
	if !strings.Contains(out, "fig") {
		t.Fatal("title missing")
	}
	for _, want := range []string{"A", "B", "+", "|", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(ScatterRects("t", nil, 1, 0, 10, 5), "no data") {
		t.Fatal("empty input should say no data")
	}
}

func TestScatterRectsDegenerate(t *testing.T) {
	// A zero-area rectangle exactly at the ideal point must not divide by
	// zero or panic.
	out := ScatterRects("t", []Rect{{Label: "X", X0: 1, X1: 1, Y0: 0, Y1: 0}}, 1, 0, 40, 10)
	if !strings.Contains(out, "X") && !strings.Contains(out, "+") {
		t.Fatalf("degenerate rect rendered badly:\n%s", out)
	}
}

func TestHistogramChart(t *testing.T) {
	h := stats.NewHistogram([]float64{1, 1.1, 1.2, 2, 2.1, 3}, 4)
	out := HistogramChart("hist", h,
		map[string]string{"apax": "A"}, map[string]float64{"apax": 2.05}, 30)
	if !strings.Contains(out, "#") {
		t.Fatalf("bars missing:\n%s", out)
	}
	if !strings.Contains(out, "A") {
		t.Fatalf("marker missing:\n%s", out)
	}
}
