package report

import (
	"strings"
	"testing"
)

func TestShardManifestDeterministicAndSorted(t *testing.T) {
	rows := []ShardRow{
		{Shard: "shard-1", Units: 3, Stolen: 1, Expired: 0, Waits: 2},
		{Shard: "shard-0", Units: 7, Stolen: 0, Expired: 1, Waits: 0},
	}
	a := ShardManifest(rows)
	b := ShardManifest([]ShardRow{rows[1], rows[0]})
	if a != b {
		t.Fatalf("manifest depends on input order:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	// Title, header, rule, two shard rows, totals.
	if len(lines) != 6 {
		t.Fatalf("manifest has %d lines, want 6:\n%s", len(lines), a)
	}
	if !strings.HasPrefix(lines[3], "shard-0") || !strings.HasPrefix(lines[4], "shard-1") {
		t.Fatalf("shards not sorted:\n%s", a)
	}
	if !strings.HasPrefix(lines[5], "total") || !strings.Contains(lines[5], "10") {
		t.Fatalf("totals row wrong:\n%s", a)
	}
	// Input must not be reordered in place.
	if rows[0].Shard != "shard-1" {
		t.Fatal("ShardManifest reordered its input slice")
	}
}

func TestShardManifestMissingSummary(t *testing.T) {
	out := ShardManifest([]ShardRow{{Shard: "shard-0", Units: 2, Stolen: -1, Expired: -1, Waits: -1}})
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "shard-0") && !strings.Contains(line, "-") {
			t.Fatalf("missing summary not rendered as '-':\n%s", out)
		}
	}
}
