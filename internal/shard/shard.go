// Package shard turns the experiment pipeline into a multi-process fleet.
//
// The paper's methodology is embarrassingly parallel across the
// member × variable × variant work-unit space, and the content-addressed
// artifact store (internal/artifact) already gives N processes a safe
// shared substrate: puts are atomic (temp + rename), corrupt or partial
// reads degrade to misses, and every expensive intermediate is keyed by a
// digest of everything that influences it. This package adds the three
// missing pieces:
//
//   - a deterministic partitioner (Partition) that splits the unit list
//     into cost-balanced shards, so N processes given the same units agree
//     on who owns what without talking to each other;
//   - a claim protocol built purely from artifact-store records: a lease is
//     an exclusive record (Store.PutExclusive — atomic hard link, exactly
//     one winner across processes) keyed on the unit digest, kept fresh by
//     mtime touches while the unit computes, and presumed dead — stealable —
//     once its mtime ages past the TTL;
//   - a work-stealing scheduler (Run): a shard first drains its own
//     partition, then scans the other shards' partitions for units that are
//     neither done nor freshly leased and computes those too, so a finished
//     shard converts idle time into stolen work and a crashed shard's units
//     are picked up after its leases expire.
//
// Completion is also a record: a small "done" artifact per unit, written
// after the unit's results are in the store. The merge step (rendering
// tables and figures from the shared cache) needs no communication at all —
// once every done record exists, a warm single-process run over the same
// store reproduces the output byte-for-byte.
//
// The protocol is safe but intentionally not serializable: if a lease
// holder stalls longer than the TTL without touching its lease, a stealer
// may recompute the same unit. That is harmless by construction — unit
// results are content-addressed and byte-identical, so the second Put
// rewrites the same bytes — and the done/claimed accounting in Result is
// per-shard, so tests can still assert that no double compute occurred
// when every process is healthy.
package shard

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"climcompress/internal/artifact"
)

// Unit is one claimable piece of work: a stable name, the digest of
// everything that determines its outputs (the coordination key leases and
// done records derive from), a relative cost estimate for partition
// balancing, and the computation itself. Run must be idempotent and persist
// its results through the shared artifact store.
type Unit struct {
	Name string
	Key  artifact.ID
	Cost float64
	Run  func() error
}

// Partition deterministically assigns the units to n shards, balancing
// summed cost by greedy longest-processing-time assignment over a stable
// order (cost descending, name ascending, index ascending). Every process
// given the same unit list computes the same partition. The returned outer
// slice has length n; inner slices hold indices into units.
func Partition(units []Unit, n int) [][]int {
	if n < 1 {
		n = 1
	}
	order := make([]int, len(units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := units[order[a]], units[order[b]]
		if ua.Cost != ub.Cost {
			return ua.Cost > ub.Cost
		}
		if ua.Name != ub.Name {
			return ua.Name < ub.Name
		}
		return order[a] < order[b]
	})
	parts := make([][]int, n)
	load := make([]float64, n)
	for _, idx := range order {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		parts[best] = append(parts[best], idx)
		cost := units[idx].Cost
		if cost <= 0 {
			cost = 1
		}
		load[best] += cost
	}
	return parts
}

// Options configures one shard of a run.
type Options struct {
	// Store is the shared artifact store; it must be enabled whenever
	// Shards > 1 (leases live in it).
	Store *artifact.Store
	// Self and Shards identify this shard: Self ∈ [0, Shards).
	Self, Shards int
	// TTL is the lease expiry: a lease whose mtime is older than TTL is
	// presumed dead and may be stolen. Leases are touched every TTL/3 while
	// their unit computes, so TTL only needs to exceed a few touch periods,
	// not the unit's runtime. Default 2 minutes.
	TTL time.Duration
	// Poll is the sleep between scans when every remaining unit is freshly
	// leased by another shard. Default TTL/10, clamped to [25ms, 2s].
	Poll time.Duration
	// Owner tags this shard's leases and done records (default host:pid).
	Owner string
	// Logf, when set, receives progress lines (stolen units, broken
	// leases, waits).
	Logf func(format string, args ...any)
}

// Result summarizes what one shard did.
type Result struct {
	// Computed lists the names of units this shard ran, in completion
	// order.
	Computed []string
	// Skipped counts units found already done on first visit (warm
	// records from an earlier run).
	Skipped int
	// Stolen counts computed units that were outside this shard's own
	// partition.
	Stolen int
	// Expired counts stale leases this shard broke.
	Expired int
	// Waits counts poll sleeps spent blocked on other shards' fresh
	// leases.
	Waits int
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Key derivation: the lease and done records of a unit live beside the
// unit's own artifacts, keyed off its digest. The kinds partition the key
// space, so they can never alias a payload record.
func leaseID(u Unit) artifact.ID {
	return artifact.NewKey("shard-lease").Str(string(u.Key)).ID()
}

// DoneID returns the completion-record key for a unit digest. Exposed so
// callers (and tests) can probe run completeness without a scheduler.
func DoneID(key artifact.ID) artifact.ID {
	return artifact.NewKey("shard-done").Str(string(key)).ID()
}

// ownerPayload encodes the lease/done payload: owner tag plus unit name,
// for post-mortem inspection of a shared cache.
func ownerPayload(owner, name string) []byte {
	var enc artifact.Enc
	enc.Str(owner).Str(name)
	return enc.Bytes()
}

// Run executes the shard's slice of the unit space, then steals. It
// returns when every unit is done (or locally failed) across the whole
// run. Unit errors do not abort the scan — every other unit is still
// attempted, matching the pipeline's forEachVar semantics — and the first
// error is returned at the end.
func Run(units []Unit, opt Options) (Result, error) {
	var res Result
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	if opt.Self < 0 || opt.Self >= opt.Shards {
		return res, fmt.Errorf("shard: self %d out of range [0,%d)", opt.Self, opt.Shards)
	}
	if !opt.Store.Enabled() {
		if opt.Shards > 1 {
			return res, errors.New("shard: a shared artifact store is required to coordinate multiple shards")
		}
		// Degenerate single-shard run without a store: no leases, no done
		// records, just compute everything.
		var firstErr error
		for _, u := range units {
			if err := u.Run(); err != nil && firstErr == nil {
				firstErr = err
			} else if err == nil {
				res.Computed = append(res.Computed, u.Name)
			}
		}
		return res, firstErr
	}
	if opt.TTL <= 0 {
		opt.TTL = 2 * time.Minute
	}
	if opt.Poll <= 0 {
		opt.Poll = opt.TTL / 10
	}
	if opt.Poll < 25*time.Millisecond {
		opt.Poll = 25 * time.Millisecond
	}
	if opt.Poll > 2*time.Second {
		opt.Poll = 2 * time.Second
	}
	if opt.Owner == "" {
		host, _ := os.Hostname()
		opt.Owner = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	parts := Partition(units, opt.Shards)
	s := &scheduler{units: units, opt: &opt, res: &res,
		settled: make([]bool, len(units))}

	// Pass 1: drain the home partition.
	for _, idx := range parts[opt.Self] {
		s.try(idx, false)
	}
	// Pass 2: steal. Scan the other shards' partitions starting at the
	// next shard (so finished shards fan out over different victims), then
	// re-scan everything until all units are settled. A unit is settled
	// once its done record exists, or it failed locally.
	for {
		progressed := false
		for k := 1; k < opt.Shards; k++ {
			victim := (opt.Self + k) % opt.Shards
			for _, idx := range parts[victim] {
				if s.try(idx, true) {
					progressed = true
				}
			}
		}
		// Home partition again: a unit stolen from us by a shard that then
		// died must be reclaimed here after its lease expires.
		for _, idx := range parts[opt.Self] {
			if s.try(idx, false) {
				progressed = true
			}
		}
		if s.allSettled() {
			break
		}
		if !progressed {
			res.Waits++
			time.Sleep(opt.Poll)
		}
	}
	return res, s.firstErr
}

// scheduler carries one Run's mutable state.
type scheduler struct {
	units    []Unit
	opt      *Options
	res      *Result
	settled  []bool // done record seen, or failed locally
	firstErr error
}

func (s *scheduler) allSettled() bool {
	for _, ok := range s.settled {
		if !ok {
			return false
		}
	}
	return true
}

// try advances one unit: skip if settled or done, claim (breaking an
// expired lease if needed), compute, publish the done record, release the
// lease. Reports whether it made progress (computed the unit or observed it
// newly done).
func (s *scheduler) try(idx int, stealing bool) bool {
	if s.settled[idx] {
		return false
	}
	u := s.units[idx]
	store := s.opt.Store
	if _, ok := store.Get(DoneID(u.Key)); ok {
		s.settled[idx] = true
		s.res.Skipped++
		return true
	}
	if !s.claim(u) {
		return false
	}
	lease := leaseID(u)
	// Keep the lease fresh while the unit computes, so the TTL bounds
	// crash detection latency rather than unit runtime.
	stopTouch := make(chan struct{})
	touchDone := make(chan struct{})
	go func() {
		defer close(touchDone)
		t := time.NewTicker(s.opt.TTL / 3)
		defer t.Stop()
		for {
			select {
			case <-stopTouch:
				return
			case <-t.C:
				store.Touch(lease)
			}
		}
	}()
	err := u.Run()
	close(stopTouch)
	<-touchDone
	if err != nil {
		// Release so another shard may retry; remember the failure locally
		// so this shard terminates even if every retry fails too.
		store.Remove(lease)
		s.settled[idx] = true
		if s.firstErr == nil {
			s.firstErr = fmt.Errorf("shard %d/%d: unit %s: %w", s.opt.Self, s.opt.Shards, u.Name, err)
		}
		s.opt.logf("shard %d/%d: unit %s failed: %v", s.opt.Self, s.opt.Shards, u.Name, err)
		return false
	}
	store.Put(DoneID(u.Key), ownerPayload(s.opt.Owner, u.Name))
	store.Remove(lease)
	s.settled[idx] = true
	s.res.Computed = append(s.res.Computed, u.Name)
	if stealing {
		s.res.Stolen++
		s.opt.logf("shard %d/%d: stole unit %s", s.opt.Self, s.opt.Shards, u.Name)
	}
	return true
}

// claim takes the unit's lease: first by exclusive put, then — if the
// standing lease has aged past the TTL — by breaking it and claiming again.
// The break window is racy by design (two stealers can both remove and one
// claims; in the worst interleaving both compute), which is safe because
// unit results are content-addressed: see the package comment.
func (s *scheduler) claim(u Unit) bool {
	store := s.opt.Store
	lease := leaseID(u)
	payload := ownerPayload(s.opt.Owner, u.Name)
	if store.PutExclusive(lease, payload) {
		return true
	}
	mt, ok := store.Mtime(lease)
	if !ok {
		// Lease vanished between the failed claim and the stat (released
		// or broken elsewhere); retry once, next scan picks it up if lost.
		return store.PutExclusive(lease, payload)
	}
	//lint:nondet lease aging is wall-clock by design and never influences results
	if time.Since(mt) <= s.opt.TTL {
		return false
	}
	store.Remove(lease)
	s.res.Expired++
	s.opt.logf("shard %d/%d: broke expired lease for %s", s.opt.Self, s.opt.Shards, u.Name)
	return store.PutExclusive(lease, payload)
}

// OwnerOf reports which shard published a unit's done record (empty name
// check: ok is false when the unit has no done record or the record is
// malformed). The merge step uses it to attribute units to shards without
// any channel back from the children.
func OwnerOf(store *artifact.Store, u Unit) (string, bool) {
	payload, ok := store.Get(DoneID(u.Key))
	if !ok {
		return "", false
	}
	dec := artifact.NewDec(payload)
	owner := dec.Str()
	dec.Str() // unit name, for post-mortem inspection only
	if dec.Close() != nil {
		return "", false
	}
	return owner, true
}

// summaryID keys a shard's run summary by its owner tag.
func summaryID(owner string) artifact.ID {
	return artifact.NewKey("shard-summary").Str(owner).ID()
}

// PutSummary persists a shard's Result under its owner tag so the merge
// step can render a run manifest from the store alone. A restarted shard
// overwrites its previous incarnation's summary; done records carry the
// authoritative per-unit attribution either way.
func PutSummary(store *artifact.Store, owner string, res Result) {
	var enc artifact.Enc
	enc.Int(len(res.Computed)).Int(res.Skipped).Int(res.Stolen).Int(res.Expired).Int(res.Waits)
	store.Put(summaryID(owner), enc.Bytes())
}

// Summary is the decoded form of a shard's persisted run summary.
type Summary struct {
	Computed, Skipped, Stolen, Expired, Waits int
}

// LoadSummary reads the summary a shard persisted with PutSummary.
func LoadSummary(store *artifact.Store, owner string) (Summary, bool) {
	payload, ok := store.Get(summaryID(owner))
	if !ok {
		return Summary{}, false
	}
	dec := artifact.NewDec(payload)
	sum := Summary{
		Computed: dec.Int(), Skipped: dec.Int(),
		Stolen: dec.Int(), Expired: dec.Int(), Waits: dec.Int(),
	}
	if dec.Close() != nil {
		return Summary{}, false
	}
	return sum, true
}

// Done reports how many of the units already have completion records in
// the store — the supervisor's progress probe and the merge precondition.
func Done(store *artifact.Store, units []Unit) int {
	n := 0
	for _, u := range units {
		if _, ok := store.Get(DoneID(u.Key)); ok {
			n++
		}
	}
	return n
}
