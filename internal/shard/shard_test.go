package shard

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"climcompress/internal/artifact"
)

// fakeUnits builds n synthetic units whose Run records invocations in
// counts and persists a deterministic result artifact.
func fakeUnits(store *artifact.Store, n int, counts []atomic.Int64, delay time.Duration) []Unit {
	units := make([]Unit, n)
	for i := 0; i < n; i++ {
		i := i
		key := artifact.NewKey("test-unit").Int(i).ID()
		units[i] = Unit{
			Name: fmt.Sprintf("unit-%02d", i),
			Key:  key,
			Cost: float64(1 + i%3),
			Run: func() error {
				if counts != nil {
					counts[i].Add(1)
				}
				if delay > 0 {
					time.Sleep(delay)
				}
				store.Put(artifact.NewKey("test-result").Int(i).ID(),
					[]byte(fmt.Sprintf("result-%02d", i)))
				return nil
			},
		}
	}
	return units
}

func TestPartitionDeterministicAndComplete(t *testing.T) {
	units := fakeUnits(nil, 17, nil, 0)
	for _, n := range []int{1, 2, 4, 5, 17, 20} {
		a := Partition(units, n)
		b := Partition(units, n)
		if len(a) != n {
			t.Fatalf("n=%d: %d partitions", n, len(a))
		}
		seen := map[int]int{}
		for s := range a {
			if fmt.Sprint(a[s]) != fmt.Sprint(b[s]) {
				t.Fatalf("n=%d: partition not deterministic", n)
			}
			for _, idx := range a[s] {
				seen[idx]++
			}
		}
		if len(seen) != len(units) {
			t.Fatalf("n=%d: %d units assigned, want %d", n, len(seen), len(units))
		}
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: unit %d assigned %d times", n, idx, c)
			}
		}
	}
}

func TestPartitionBalancesCost(t *testing.T) {
	units := make([]Unit, 12)
	for i := range units {
		units[i] = Unit{Name: fmt.Sprintf("u%02d", i), Cost: 1}
	}
	// One heavy unit: it must sit alone-ish, not stack onto a shard that
	// already carries the others.
	units[0].Cost = 6
	parts := Partition(units, 4)
	loads := make([]float64, 4)
	for s, idxs := range parts {
		for _, i := range idxs {
			loads[s] += units[i].Cost
		}
	}
	min, max := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// Total cost 17 over 4 shards: the heavy shard carries 6, the rest
	// split 11. Max spread must stay near the heavy unit, not degenerate.
	if max > 6+1 || min < 2 {
		t.Fatalf("unbalanced partition: loads %v", loads)
	}
}

// TestConcurrentShardsNoDoubleCompute runs every shard of a 4-way split
// concurrently against one store and asserts each unit ran exactly once.
func TestConcurrentShardsNoDoubleCompute(t *testing.T) {
	store := artifact.Open(t.TempDir())
	const n = 23
	counts := make([]atomic.Int64, n)
	units := fakeUnits(store, n, counts, time.Millisecond)
	const shards = 4
	var wg sync.WaitGroup
	results := make([]Result, shards)
	errs := make([]error, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s], errs[s] = Run(units, Options{
				Store: store, Self: s, Shards: shards,
				TTL: time.Minute, Owner: fmt.Sprintf("t-%d", s),
			})
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	total := 0
	for i := range counts {
		c := int(counts[i].Load())
		if c != 1 {
			t.Errorf("unit %d computed %d times", i, c)
		}
		total += c
	}
	if total != n {
		t.Fatalf("computed %d, want %d", total, n)
	}
	if Done(store, units) != n {
		t.Fatal("not all units have done records")
	}
	// The computed sets across shards must partition the unit names.
	seen := map[string]int{}
	for _, r := range results {
		for _, name := range r.Computed {
			seen[name]++
		}
	}
	if len(seen) != n {
		t.Fatalf("%d distinct computed units, want %d", len(seen), n)
	}
}

// TestSecondRunIsAllSkips reruns a completed unit set: everything is
// served by done records, nothing recomputes.
func TestSecondRunIsAllSkips(t *testing.T) {
	store := artifact.Open(t.TempDir())
	const n = 7
	counts := make([]atomic.Int64, n)
	units := fakeUnits(store, n, counts, 0)
	if _, err := Run(units, Options{Store: store, Self: 0, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(units, Options{Store: store, Self: 0, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Computed) != 0 || res.Skipped != n {
		t.Fatalf("warm rerun computed %v, skipped %d", res.Computed, res.Skipped)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("unit %d ran %d times across both runs", i, c)
		}
	}
}

// TestExpiredLeaseIsStolen plants a stale lease (its owner "crashed") and
// checks the scheduler breaks it and computes the unit.
func TestExpiredLeaseIsStolen(t *testing.T) {
	store := artifact.Open(t.TempDir())
	counts := make([]atomic.Int64, 1)
	units := fakeUnits(store, 1, counts, 0)
	lease := leaseID(units[0])
	if !store.PutExclusive(lease, ownerPayload("dead-owner", units[0].Name)) {
		t.Fatal("planting lease")
	}
	// Backdate past any TTL the scheduler might use.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(leasePath(t, store, lease), past, past); err != nil {
		t.Fatal(err)
	}
	res, err := Run(units, Options{Store: store, Self: 0, Shards: 1, TTL: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired != 1 || counts[0].Load() != 1 {
		t.Fatalf("expired=%d computed=%d, want 1/1", res.Expired, counts[0].Load())
	}
}

// TestFreshLeaseBlocksUntilExpiry plants a live lease the scheduler must
// wait out before stealing: polls happen, then the unit computes.
func TestFreshLeaseBlocksUntilExpiry(t *testing.T) {
	store := artifact.Open(t.TempDir())
	counts := make([]atomic.Int64, 1)
	units := fakeUnits(store, 1, counts, 0)
	lease := leaseID(units[0])
	if !store.PutExclusive(lease, ownerPayload("slow-owner", units[0].Name)) {
		t.Fatal("planting lease")
	}
	start := time.Now()
	res, err := Run(units, Options{Store: store, Self: 0, Shards: 1,
		TTL: 300 * time.Millisecond, Poll: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0].Load() != 1 {
		t.Fatal("unit not computed after lease expiry")
	}
	if res.Waits == 0 {
		t.Error("no waits recorded while blocked on a fresh lease")
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Errorf("stole a fresh lease after only %v", elapsed)
	}
}

// TestUnitErrorPropagatesButScanCompletes: one failing unit must not stop
// the others, and the first error comes back.
func TestUnitErrorPropagatesButScanCompletes(t *testing.T) {
	store := artifact.Open(t.TempDir())
	const n = 5
	counts := make([]atomic.Int64, n)
	units := fakeUnits(store, n, counts, 0)
	boom := errors.New("boom")
	units[2].Run = func() error { return boom }
	res, err := Run(units, Options{Store: store, Self: 0, Shards: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "unit-02") {
		t.Fatalf("error does not name the failing unit: %v", err)
	}
	if len(res.Computed) != n-1 {
		t.Fatalf("computed %d units despite one failure, want %d", len(res.Computed), n-1)
	}
	// The failed unit's lease must be released so a retry can claim it.
	if _, ok := store.Get(leaseID(units[2])); ok {
		t.Fatal("failed unit's lease not released")
	}
	if Done(store, units) != n-1 {
		t.Fatal("done records wrong after failure")
	}
}

func TestRunValidatesOptions(t *testing.T) {
	store := artifact.Open(t.TempDir())
	units := fakeUnits(store, 1, nil, 0)
	if _, err := Run(units, Options{Store: store, Self: 3, Shards: 2}); err == nil {
		t.Fatal("out-of-range self accepted")
	}
	if _, err := Run(units, Options{Store: nil, Self: 0, Shards: 2}); err == nil {
		t.Fatal("multi-shard run without a store accepted")
	}
	// Single shard without a store degrades to plain serial execution.
	res, err := Run(units, Options{Store: nil, Self: 0, Shards: 1})
	if err != nil || len(res.Computed) != 1 {
		t.Fatalf("storeless single shard: %v %v", res, err)
	}
}

// TestSummaryAndOwnerRoundTrip covers the merge step's store-only view of a
// run: per-unit owner attribution and the persisted shard summaries.
func TestSummaryAndOwnerRoundTrip(t *testing.T) {
	store := artifact.Open(t.TempDir())
	units := fakeUnits(store, 3, nil, 0)
	res, err := Run(units, Options{Store: store, Self: 0, Shards: 1, Owner: "shard-0"})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range units {
		owner, ok := OwnerOf(store, u)
		if !ok || owner != "shard-0" {
			t.Fatalf("OwnerOf(%s) = %q, %v", u.Name, owner, ok)
		}
	}
	PutSummary(store, "shard-0", res)
	sum, ok := LoadSummary(store, "shard-0")
	if !ok {
		t.Fatal("summary not found after PutSummary")
	}
	want := Summary{Computed: 3}
	if sum != want {
		t.Fatalf("summary = %+v, want %+v", sum, want)
	}
	if _, ok := LoadSummary(store, "shard-1"); ok {
		t.Fatal("summary for a shard that never ran")
	}
	if _, ok := OwnerOf(store, Unit{Key: artifact.NewKey("test-unit").Int(99).ID()}); ok {
		t.Fatal("owner for a unit that never completed")
	}
}

// leasePath exposes the on-disk path of a lease record for mtime
// manipulation in tests.
func leasePath(t *testing.T, store *artifact.Store, id artifact.ID) string {
	t.Helper()
	k := string(id)
	return store.Dir() + "/objects/" + k[:2] + "/" + k + ".art"
}
