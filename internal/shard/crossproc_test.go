package shard

// Cross-process coordination tests: the satellite contract of the sharded
// runner. Real child processes (the test binary re-exec'd with
// GO_SHARD_HELPER=1) hammer one artifact store through the lease protocol,
// and the parent asserts the three properties the supervisor relies on:
// no corrupt reads, no double-computed units while every process is
// healthy, and a merged output byte-identical to a serial run. A separate
// test kills a shard mid-unit (while it holds the lease) and restarts it,
// checking the run still completes with every unit computed exactly once.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"climcompress/internal/artifact"
)

const helperEnv = "GO_SHARD_HELPER"

// helperUnits builds the unit set both the helper children and the serial
// baseline use: unit i persists a deterministic payload under a digest all
// processes agree on, and appends its name to logPath on completion.
func helperUnits(store *artifact.Store, n int, logPath string, dieAfter int) []Unit {
	var completed atomic.Int64
	units := make([]Unit, n)
	for i := 0; i < n; i++ {
		i := i
		units[i] = Unit{
			Name: fmt.Sprintf("unit-%02d", i),
			Key:  artifact.NewKey("xproc-unit").Int(i).ID(),
			Cost: 1,
			Run: func() error {
				time.Sleep(15 * time.Millisecond) // force overlap between shards
				if dieAfter >= 0 && completed.Load() >= int64(dieAfter) {
					// Simulated crash: exit hard while holding the lease.
					os.Exit(7)
				}
				store.Put(resultID(i), []byte(fmt.Sprintf("result-%02d\n", i)))
				if logPath != "" {
					f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
					if err != nil {
						return err
					}
					if _, err := fmt.Fprintf(f, "unit-%02d\n", i); err != nil {
						//lint:errdrop best-effort close of an already-failed log write
						f.Close()
						return err
					}
					if err := f.Close(); err != nil {
						return err
					}
				}
				completed.Add(1)
				return nil
			},
		}
	}
	return units
}

func resultID(i int) artifact.ID {
	return artifact.NewKey("xproc-result").Int(i).ID()
}

// mergeOutput renders the run's merged output purely from the store — the
// same reduction a real merge step performs over cached experiment records.
func mergeOutput(t *testing.T, store *artifact.Store, n int) string {
	t.Helper()
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		payload, ok := store.Get(resultID(i))
		if !ok {
			t.Fatalf("result %d missing from store", i)
		}
		b.Write(payload)
	}
	return b.String()
}

// TestShardHelperProcess is the child-process entry point; it is a no-op
// unless re-exec'd by the tests below.
func TestShardHelperProcess(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		t.Skip("helper process entry point")
	}
	dir := os.Getenv("SHARD_STORE")
	self, _ := strconv.Atoi(os.Getenv("SHARD_SELF"))
	shards, _ := strconv.Atoi(os.Getenv("SHARD_N"))
	nunits, _ := strconv.Atoi(os.Getenv("SHARD_UNITS"))
	ttlMS, _ := strconv.Atoi(os.Getenv("SHARD_TTL_MS"))
	dieAfter := -1
	if v := os.Getenv("SHARD_DIE_AFTER"); v != "" {
		dieAfter, _ = strconv.Atoi(v)
	}
	store := artifact.Open(dir)
	units := helperUnits(store, nunits, os.Getenv("SHARD_LOG"), dieAfter)
	_, err := Run(units, Options{
		Store: store, Self: self, Shards: shards,
		TTL:   time.Duration(ttlMS) * time.Millisecond,
		Owner: fmt.Sprintf("helper-%d", self),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper shard %d: %v\n", self, err)
		os.Exit(1)
	}
	// A healthy run must never observe a corrupt record.
	if st := store.Stats(); st.BadReads != 0 {
		fmt.Fprintf(os.Stderr, "helper shard %d: %d corrupt reads\n", self, st.BadReads)
		os.Exit(2)
	}
}

// spawnHelper starts one shard child against the shared store.
func spawnHelper(t *testing.T, dir string, self, shards, nunits, ttlMS int, logPath string, dieAfter int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestShardHelperProcess$", "-test.v=false")
	cmd.Env = append(os.Environ(),
		helperEnv+"=1",
		"SHARD_STORE="+dir,
		fmt.Sprintf("SHARD_SELF=%d", self),
		fmt.Sprintf("SHARD_N=%d", shards),
		fmt.Sprintf("SHARD_UNITS=%d", nunits),
		fmt.Sprintf("SHARD_TTL_MS=%d", ttlMS),
		"SHARD_LOG="+logPath,
	)
	if dieAfter >= 0 {
		cmd.Env = append(cmd.Env, fmt.Sprintf("SHARD_DIE_AFTER=%d", dieAfter))
	}
	cmd.Stdout = os.Stderr // test-binary chatter must not pollute the parent's stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper shard %d: %v", self, err)
	}
	return cmd
}

// readLog returns the unit names a child logged as completed.
func readLog(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line != "" {
			out = append(out, line)
		}
	}
	return out
}

// TestCrossProcessShardsCoordinate is the main two-process contract test.
func TestCrossProcessShardsCoordinate(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	const nunits = 14
	// Serial baseline in-process, into its own store.
	serialStore := artifact.Open(t.TempDir())
	if _, err := Run(helperUnits(serialStore, nunits, "", -1), Options{
		Store: serialStore, Self: 0, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	want := mergeOutput(t, serialStore, nunits)

	// Two real processes against one shared store. Generous TTL: nobody
	// dies, so nothing may expire and nothing may double-compute.
	dir := t.TempDir()
	logs := []string{filepath.Join(dir, "log-0"), filepath.Join(dir, "log-1")}
	c0 := spawnHelper(t, dir, 0, 2, nunits, 60_000, logs[0], -1)
	c1 := spawnHelper(t, dir, 1, 2, nunits, 60_000, logs[1], -1)
	if err := c0.Wait(); err != nil {
		t.Fatalf("shard 0: %v", err)
	}
	if err := c1.Wait(); err != nil {
		t.Fatalf("shard 1: %v", err)
	}

	// No double-computed units: the children's completion logs are
	// disjoint and together cover every unit exactly once.
	all := append(readLog(t, logs[0]), readLog(t, logs[1])...)
	sort.Strings(all)
	if len(all) != nunits {
		t.Fatalf("children logged %d completions, want %d: %v", len(all), nunits, all)
	}
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("unit %s computed by both children", all[i])
		}
	}

	// Byte-identical merged output vs the serial run, and no corrupt
	// reads while assembling it.
	mergeStore := artifact.Open(dir)
	if got := mergeOutput(t, mergeStore, nunits); got != want {
		t.Errorf("merged output differs from serial run:\nserial:\n%s\nsharded:\n%s", want, got)
	}
	if st := mergeStore.Stats(); st.BadReads != 0 {
		t.Fatalf("merge observed %d corrupt reads", st.BadReads)
	}
}

// TestCrossProcessKillAndRestart kills shard 0 mid-unit (lease held) and
// restarts it: the run must complete with no lost and no duplicated units.
func TestCrossProcessKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	const nunits = 10
	dir := t.TempDir()
	logs := []string{filepath.Join(dir, "log-0"), filepath.Join(dir, "log-1"), filepath.Join(dir, "log-0b")}
	// Short TTL so the dead shard's lease expires quickly; the refresh
	// goroutine keeps live leases fresh regardless.
	const ttlMS = 400
	c0 := spawnHelper(t, dir, 0, 2, nunits, ttlMS, logs[0], 2)
	c1 := spawnHelper(t, dir, 1, 2, nunits, ttlMS, logs[1], -1)
	err0 := c0.Wait()
	if err0 == nil {
		t.Fatal("shard 0 was supposed to die")
	}
	// Restart the crashed shard (what the supervisor does).
	c0b := spawnHelper(t, dir, 0, 2, nunits, ttlMS, logs[2], -1)
	if err := c0b.Wait(); err != nil {
		t.Fatalf("restarted shard 0: %v", err)
	}
	if err := c1.Wait(); err != nil {
		t.Fatalf("shard 1: %v", err)
	}

	// Every unit completed exactly once across all three incarnations:
	// the kill happened before the in-flight unit logged, so no unit may
	// appear twice and none may be missing.
	var all []string
	for _, lg := range logs {
		all = append(all, readLog(t, lg)...)
	}
	sort.Strings(all)
	if len(all) != nunits {
		t.Fatalf("%d completions across incarnations, want %d: %v", len(all), nunits, all)
	}
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("unit %s computed twice after kill+restart", all[i])
		}
	}
	// And the merged output is complete and clean.
	store := artifact.Open(dir)
	mergeOutput(t, store, nunits)
	if st := store.Stats(); st.BadReads != 0 {
		t.Fatalf("%d corrupt reads after kill+restart", st.BadReads)
	}
}
