// Package model synthesizes CAM-like climate fields. It is the stand-in for
// running CESM: each variable in the catalog is generated as
//
//	value = Base + vert(lev) + levW(lev)·clim(lat,lon)
//	      + ModeAmp·levM(lev)·Σ_k w_k·M_k(lat,lon,lev)
//	      + NoiseAmp·η(member, variable, point)
//
// where clim is a smooth seeded climatology, M_k are separable anomaly-mode
// patterns, w_k are the member's standardized Lorenz-96 slow variables (so
// ensemble members share statistics but differ chaotically), and η is a
// deterministic counter-based pseudo-normal noise keyed on the member's
// chaotic state — every bit of every field derives from the O(1e-14)
// initial-condition perturbation, as in the CESM-PVT. Log-kind variables
// compose the same expression in ln space and exponentiate, producing the
// multi-decade dynamic ranges of moisture and chemistry fields.
package model

import (
	"math"
	"sync"

	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/varcatalog"
)

// NumModes is the number of chaotic anomaly modes drawn from the Lorenz-96
// slow variables.
const NumModes = 20

// Generator produces any (variable, member) field deterministically.
// It is safe for concurrent use.
type Generator struct {
	Grid    *grid.Grid
	Catalog []varcatalog.Spec
	Ens     *l96.Ensemble

	mu       sync.Mutex
	patterns map[int]*patternsEntry
	weights  [][][]float64 // [member][timeSlice][mode]
	landMask []bool
}

// patternsEntry is the compute-once slot of the pattern cache: when all
// members of a variable are generated in parallel, the first arrival builds
// the patterns and the rest block on the same sync.Once instead of each
// redoing the work.
type patternsEntry struct {
	once sync.Once
	p    *varPatterns
}

// varPatterns holds the precomputed, member-independent spatial structure
// of one variable on one grid.
type varPatterns struct {
	clim2d []float64 // LatAmp·P + WaveAmp·W, len NLat*NLon
	vert   []float64 // VertAmp·V(lev), len NLev (zeros for 2-D)
	levW   []float64 // climatology level weighting, in [0.55, 1]
	levM   []float64 // mode level weighting, in [0.5, 1]
	// separable mode patterns, each normalized so the product has O(1) range
	latv [NumModes][]float64
	lonv [NumModes][]float64
	levv [NumModes][]float64
}

// NewGenerator builds a generator for the given grid, catalog and ensemble.
func NewGenerator(g *grid.Grid, catalog []varcatalog.Spec, ens *l96.Ensemble) *Generator {
	gen := &Generator{
		Grid:     g,
		Catalog:  catalog,
		Ens:      ens,
		patterns: make(map[int]*patternsEntry),
		weights:  make([][][]float64, len(ens.Members)),
	}
	gen.landMask = buildLandMask(g)
	for m := range ens.Members {
		slices := len(ens.Members[m].Series)
		gen.weights[m] = make([][]float64, slices)
		for t := 0; t < slices; t++ {
			w := ens.WeightsAt(m, t)
			if len(w) > NumModes {
				w = w[:NumModes]
			}
			gen.weights[m][t] = w
		}
	}
	return gen
}

// Members returns the ensemble size.
func (gen *Generator) Members() int { return len(gen.Ens.Members) }

// splitmix64 is a counter-based PRNG step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stream is a tiny deterministic random stream for pattern construction.
type stream struct{ s uint64 }

func (r *stream) next() uint64 {
	r.s = splitmix64(r.s)
	return r.s
}

// unit returns a uniform value in [0, 1).
func (r *stream) unit() float64 { return float64(r.next()>>11) / float64(1<<53) }

// angle returns a uniform phase in [0, 2π).
func (r *stream) angle() float64 { return 2 * math.Pi * r.unit() }

// pseudoNormal converts 64 random bits into an approximately standard
// normal value (Irwin–Hall with n=4, rescaled to unit variance).
func pseudoNormal(bits uint64) float64 {
	s := float64(bits&0xffff) + float64((bits>>16)&0xffff) +
		float64((bits>>32)&0xffff) + float64((bits>>48)&0xffff)
	// mean 2·65535, variance 4·65536²/12
	return (s/65536 - 2.0) * 1.7320508075688772
}

// noise returns the deterministic pseudo-normal noise for (memberKey,
// varSeed, point index).
func noise(memberKey, varSeed uint64, idx int) float64 {
	return pseudoNormal(splitmix64(memberKey ^ varSeed*0x9e3779b97f4a7c15 ^ uint64(idx)*0xbf58476d1ce4e5b9))
}

// buildLandMask derives a fixed, grid-resolution "continents" mask used by
// fill-bearing variables (the analogue of POP2's undefined land points).
func buildLandMask(g *grid.Grid) []bool {
	mask := make([]bool, g.Horizontal())
	for lat := 0; lat < g.NLat; lat++ {
		phi := g.Lats[lat] * math.Pi / 180
		for lon := 0; lon < g.NLon; lon++ {
			lam := g.Lons[lon] * math.Pi / 180
			v := math.Sin(2*phi)*math.Cos(3*lam) +
				0.5*math.Sin(5*lam+1)*math.Cos(phi) +
				0.4*math.Sin(3*phi+0.7)
			mask[lat*g.NLon+lon] = v > 0.55
		}
	}
	return mask
}

// levFrac returns the normalized vertical coordinate of level k in (0, 1).
func levFrac(k, nlev int) float64 { return (float64(k) + 0.5) / float64(nlev) }

// vertProfile evaluates the climatology vertical shape in [0, 1]. A
// positive exp overrides the seeded profile exponent (used to calibrate the
// featured variables); the seeded draws still advance the stream so other
// patterns are unaffected by the override.
func vertProfile(kind varcatalog.VertKind, exp float64, r *stream) func(float64) float64 {
	switch kind {
	case varcatalog.VertIncreasing:
		p := 1.1 + 0.6*r.unit()
		if exp > 0 {
			p = exp
		}
		return func(f float64) float64 { return math.Pow(f, p) }
	case varcatalog.VertDecreasing:
		p := 1.3 + 0.6*r.unit()
		if exp > 0 {
			p = exp
		}
		return func(f float64) float64 { return math.Pow(1-f, p) }
	case varcatalog.VertBump:
		c := 0.35 + 0.3*r.unit()
		w := 0.15 + 0.1*r.unit()
		return func(f float64) float64 {
			d := (f - c) / w
			return math.Exp(-d * d)
		}
	default:
		return func(float64) float64 { return 0 }
	}
}

// computePatterns builds the member-independent structure of one variable.
func (gen *Generator) computePatterns(varIdx int) *varPatterns {
	spec := gen.Catalog[varIdx]
	g := gen.Grid
	nlev := 1
	if spec.ThreeD {
		nlev = g.NLev
	}
	p := &varPatterns{
		clim2d: make([]float64, g.Horizontal()),
		vert:   make([]float64, nlev),
		levW:   make([]float64, nlev),
		levM:   make([]float64, nlev),
	}
	r := &stream{s: spec.Seed}

	// Meridional pattern P(φ): three seeded harmonics, normalized to
	// maximum absolute value 1 over the latitudes.
	type harm struct{ amp, n, ph float64 }
	var laths [3]harm
	for i := range laths {
		laths[i] = harm{amp: 1 / float64(i+1), n: float64(i + 1), ph: r.angle()}
	}
	latP := make([]float64, g.NLat)
	maxAbs := 0.0
	for i, lat := range g.Lats {
		phi := lat * math.Pi / 180
		var v float64
		for _, h := range laths {
			v += h.amp * math.Sin(h.n*phi+h.ph)
		}
		latP[i] = v
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0 {
		for i := range latP {
			latP[i] /= maxAbs
		}
	}

	// Zonal wave pattern W(φ, λ): two waves tapered by cos(φ),
	// normalized to max |W| = 1.
	w1n := float64(spec.WaveNum)
	w2n := float64(spec.WaveNum + 2)
	ph1, ph2 := r.angle(), r.angle()
	tilt1, tilt2 := 1+2*r.unit(), 1+2*r.unit()
	wave := make([]float64, g.Horizontal())
	maxAbs = 0
	for lat := 0; lat < g.NLat; lat++ {
		phi := g.Lats[lat] * math.Pi / 180
		cphi := math.Cos(phi)
		for lon := 0; lon < g.NLon; lon++ {
			lam := g.Lons[lon] * math.Pi / 180
			v := cphi*math.Cos(w1n*lam+ph1+tilt1*phi) +
				0.5*cphi*cphi*math.Cos(w2n*lam+ph2+tilt2*phi)
			wave[lat*g.NLon+lon] = v
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs > 0 {
		for i := range wave {
			wave[i] /= maxAbs
		}
	}
	for lat := 0; lat < g.NLat; lat++ {
		for lon := 0; lon < g.NLon; lon++ {
			h := lat*g.NLon + lon
			p.clim2d[h] = spec.LatAmp*latP[lat] + spec.WaveAmp*wave[h]
		}
	}

	// Vertical structure.
	vp := vertProfile(spec.VertKind, spec.VertExp, r)
	cw := 0.35 + 0.3*r.unit()
	cm := 0.35 + 0.3*r.unit()
	for k := 0; k < nlev; k++ {
		f := levFrac(k, nlev)
		if spec.ThreeD {
			p.vert[k] = spec.VertAmp * vp(f)
			p.levW[k] = 0.55 + 0.45*math.Exp(-sq((f-cw)/0.5))
			p.levM[k] = 0.5 + 0.5*math.Exp(-sq((f-cm)/0.45))
		} else {
			p.levW[k] = 1
			p.levM[k] = 1
		}
	}

	// Anomaly modes: separable seeded patterns. The 1/sqrt(NumModes)
	// normalization keeps the summed anomaly variance O(ModeAmp²).
	norm := 1 / math.Sqrt(NumModes)
	for k := 0; k < NumModes; k++ {
		nlat := 1 + k%4
		nlon := 1 + (k*3+spec.WaveNum)%(spec.WaveNum+4)
		phLat, phLon, phLev := r.angle(), r.angle(), r.angle()
		lv := make([]float64, g.NLat)
		for i, lat := range g.Lats {
			phi := lat * math.Pi / 180
			lv[i] = math.Sin(float64(nlat)*phi+phLat) * norm
		}
		ov := make([]float64, g.NLon)
		for i, lon := range g.Lons {
			lam := lon * math.Pi / 180
			ov[i] = math.Cos(float64(nlon)*lam + phLon)
		}
		ev := make([]float64, nlev)
		for j := 0; j < nlev; j++ {
			f := levFrac(j, nlev)
			ev[j] = math.Cos(math.Pi*float64(1+k%3)*f + phLev)
		}
		p.latv[k] = lv
		p.lonv[k] = ov
		p.levv[k] = ev
	}
	return p
}

func sq(x float64) float64 { return x * x }

// getPatterns returns (building exactly once if needed) the cached patterns
// for varIdx.
func (gen *Generator) getPatterns(varIdx int) *varPatterns {
	gen.mu.Lock()
	e, ok := gen.patterns[varIdx]
	if !ok {
		e = &patternsEntry{}
		gen.patterns[varIdx] = e
	}
	gen.mu.Unlock()
	e.once.Do(func() { e.p = gen.computePatterns(varIdx) })
	return e.p
}

// Field synthesizes the field of catalog variable varIdx for ensemble
// member m, truncated to single precision exactly as CESM truncates when
// writing history files.
func (gen *Generator) Field(varIdx, m int) *field.Field {
	return gen.FieldAt(varIdx, m, 0)
}

// FieldAt synthesizes the field at time slice t of member m's trajectory;
// successive slices are temporally correlated through the chaotic core,
// like consecutive history-file time slices.
func (gen *Generator) FieldAt(varIdx, m, t int) *field.Field {
	spec := gen.Catalog[varIdx]
	f := field.New(spec.Name, spec.Units, gen.Grid, spec.ThreeD)
	gen.generate(varIdx, m, t, func(idx int, v float64) {
		f.Data[idx] = float32(v)
	})
	if spec.HasFill {
		f.HasFill = true
		gen.applyFill(f.NLev, func(i int) { f.Data[i] = f.Fill })
	}
	return f
}

// Field64 synthesizes the same field in full double precision — the form
// CESM keeps in restart files (the paper defers their lossless compression
// to future work; see internal/experiments.RestartReport).
func (gen *Generator) Field64(varIdx, m int) (name string, data []float64, threeD bool) {
	spec := gen.Catalog[varIdx]
	n := gen.Grid.Horizontal()
	nlev := 1
	if spec.ThreeD {
		nlev = gen.Grid.NLev
	}
	data = make([]float64, nlev*n)
	gen.generate(varIdx, m, 0, func(idx int, v float64) {
		data[idx] = v
	})
	if spec.HasFill {
		gen.applyFill(nlev, func(i int) { data[i] = float64(field.DefaultFill) })
	}
	return spec.Name, data, spec.ThreeD
}

// applyFill marks land-mask points at every level via the store callback.
func (gen *Generator) applyFill(nlev int, store func(i int)) {
	hor := gen.Grid.Horizontal()
	for lev := 0; lev < nlev; lev++ {
		off := lev * hor
		for h, land := range gen.landMask {
			if land {
				store(off + h)
			}
		}
	}
}

// generate runs the synthesis loop, handing each (index, value) pair to
// store before any precision truncation.
func (gen *Generator) generate(varIdx, m, t int, store func(idx int, v float64)) {
	spec := gen.Catalog[varIdx]
	g := gen.Grid
	pat := gen.getPatterns(varIdx)
	w := gen.weights[m][t]
	key := gen.Ens.Members[m].SeriesKeys[t]

	nlev := 1
	if spec.ThreeD {
		nlev = g.NLev
	}
	nlat, nlon := g.NLat, g.NLon

	// Per-(lev,lat) mode coefficients: c_k = w_k · latv_k[lat] · levv_k[lev].
	var ck [NumModes]float64
	logKind := spec.Kind == varcatalog.Log
	hasMin := !math.IsNaN(spec.ClampMin)
	hasMax := !math.IsNaN(spec.ClampMax)

	for lev := 0; lev < nlev; lev++ {
		base := spec.Base + pat.vert[lev]
		lw := pat.levW[lev]
		lm := spec.ModeAmp * pat.levM[lev]
		for lat := 0; lat < nlat; lat++ {
			for k := 0; k < NumModes && k < len(w); k++ {
				ck[k] = w[k] * pat.latv[k][lat] * pat.levv[k][lev]
			}
			row := (lev*nlat + lat) * nlon
			for lon := 0; lon < nlon; lon++ {
				idx := row + lon
				gval := base + lw*pat.clim2d[lat*nlon+lon]
				var modes float64
				for k := 0; k < NumModes && k < len(w); k++ {
					modes += ck[k] * pat.lonv[k][lon]
				}
				gval += lm * modes
				gval += spec.NoiseAmp * noise(key, spec.Seed, idx)
				if logKind {
					gval = math.Exp(gval)
				}
				if hasMin && gval < spec.ClampMin {
					gval = spec.ClampMin
				}
				if hasMax && gval > spec.ClampMax {
					gval = spec.ClampMax
				}
				store(idx, gval)
			}
		}
	}
}
