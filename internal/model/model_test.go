package model

import (
	"math"
	"sync"
	"testing"

	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/l96"
	"climcompress/internal/stats"
	"climcompress/internal/varcatalog"
)

var (
	ensOnce sync.Once
	ensVal  *l96.Ensemble
)

// testEnsemble integrates a small shared ensemble once per test binary.
func testEnsemble(t testing.TB) *l96.Ensemble {
	t.Helper()
	ensOnce.Do(func() {
		ensVal = l96.NewEnsemble(l96.DefaultParams(), l96.EnsembleConfig{
			Members: 6, Dt: 0.002, SpinupSteps: 1500,
			DivergeSteps: 8000, CalibSteps: 4000, Eps: 1e-14,
		})
	})
	return ensVal
}

func testGen(t testing.TB) *Generator {
	return NewGenerator(grid.Test(), varcatalog.Default(), testEnsemble(t))
}

func TestFieldDeterministic(t *testing.T) {
	gen := testGen(t)
	a := gen.Field(0, 0)
	b := gen.Field(0, 0)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("field generation not deterministic at %d", i)
		}
	}
}

func TestMembersDiffer(t *testing.T) {
	gen := testGen(t)
	a := gen.Field(0, 0)
	b := gen.Field(0, 1)
	same := 0
	for i := range a.Data {
		if a.Data[i] == b.Data[i] {
			same++
		}
	}
	if same > len(a.Data)/10 {
		t.Fatalf("members 0 and 1 share %d/%d values", same, len(a.Data))
	}
}

func TestMembersShareStatistics(t *testing.T) {
	gen := testGen(t)
	cat := gen.Catalog
	_, idx, _ := varcatalog.ByName(cat, "T")
	var means, stds []float64
	for m := 0; m < gen.Members(); m++ {
		s := gen.Field(idx, m).Summarize()
		means = append(means, s.Mean)
		stds = append(stds, s.Std)
	}
	// Ensemble members must be statistically indistinguishable: the member-
	// to-member spread of the mean should be far below the field's std.
	if spread := stats.StdDev(means); spread > stats.Mean(stds)/5 {
		t.Fatalf("member means vary too much: spread %v vs field std %v", spread, stats.Mean(stds))
	}
}

func TestAllVariablesFinite(t *testing.T) {
	gen := testGen(t)
	for idx, spec := range gen.Catalog {
		f := gen.Field(idx, 0)
		wantLen := gen.Grid.Horizontal()
		if spec.ThreeD {
			wantLen = gen.Grid.Size3D()
		}
		if f.Len() != wantLen {
			t.Fatalf("%s: length %d, want %d", spec.Name, f.Len(), wantLen)
		}
		for i, v := range f.Data {
			if f.IsFill(i) {
				continue
			}
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite value at %d: %v", spec.Name, i, v)
			}
			if spec.Kind == varcatalog.Log && v < 0 {
				t.Fatalf("%s: negative value in log-kind variable: %v", spec.Name, v)
			}
		}
	}
}

func TestClampsRespected(t *testing.T) {
	gen := testGen(t)
	for idx, spec := range gen.Catalog {
		if math.IsNaN(spec.ClampMin) && math.IsNaN(spec.ClampMax) {
			continue
		}
		f := gen.Field(idx, 0)
		for i, v := range f.Data {
			if f.IsFill(i) {
				continue
			}
			if !math.IsNaN(spec.ClampMin) && float64(v) < spec.ClampMin {
				t.Fatalf("%s: value %v below clamp %v", spec.Name, v, spec.ClampMin)
			}
			if !math.IsNaN(spec.ClampMax) && float64(v) > spec.ClampMax {
				t.Fatalf("%s: value %v above clamp %v", spec.Name, v, spec.ClampMax)
			}
		}
	}
}

func TestFillMaskConsistent(t *testing.T) {
	gen := testGen(t)
	var checked bool
	for idx, spec := range gen.Catalog {
		if !spec.HasFill {
			continue
		}
		checked = true
		a := gen.Field(idx, 0)
		b := gen.Field(idx, 1)
		if !a.HasFill || a.Fill != field.DefaultFill {
			t.Fatalf("%s: fill metadata missing", spec.Name)
		}
		var fills int
		for i := range a.Data {
			if a.IsFill(i) != b.IsFill(i) {
				t.Fatalf("%s: fill mask differs between members at %d", spec.Name, i)
			}
			if a.IsFill(i) {
				fills++
			}
		}
		if fills == 0 || fills == a.Len() {
			t.Fatalf("%s: degenerate fill mask (%d of %d)", spec.Name, fills, a.Len())
		}
	}
	if !checked {
		t.Fatal("no fill-bearing variables in catalog")
	}
}

func TestFeaturedCharacteristicsApproximateTable2(t *testing.T) {
	// Loose order-of-magnitude bands around the paper's Table 2; the
	// synthetic substrate is calibrated, not identical.
	gen := NewGenerator(grid.Bench(), varcatalog.Default(), testEnsemble(t))
	type band struct{ minLo, minHi, maxLo, maxHi, meanLo, meanHi float64 }
	bands := map[string]band{
		"U":     {-40, -10, 30, 70, 0, 15},
		"FSDSC": {100, 180, 280, 370, 200, 280},
		"Z3":    {0, 200, 3e4, 4.5e4, 0.8e4, 1.6e4},
		"CCN3":  {1e-5, 1e-3, 5e2, 5e3, 5, 100},
	}
	for name, b := range bands {
		_, idx, ok := varcatalog.ByName(gen.Catalog, name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		s := gen.Field(idx, 0).Summarize()
		if s.Min < b.minLo || s.Min > b.minHi {
			t.Errorf("%s: min %v outside [%v, %v]", name, s.Min, b.minLo, b.minHi)
		}
		if s.Max < b.maxLo || s.Max > b.maxHi {
			t.Errorf("%s: max %v outside [%v, %v]", name, s.Max, b.maxLo, b.maxHi)
		}
		if s.Mean < b.meanLo || s.Mean > b.meanHi {
			t.Errorf("%s: mean %v outside [%v, %v]", name, s.Mean, b.meanLo, b.meanHi)
		}
	}
}

func TestTimeSlicesCorrelated(t *testing.T) {
	ens := l96.NewEnsemble(l96.DefaultParams(), l96.EnsembleConfig{
		Members: 2, Dt: 0.002, SpinupSteps: 1500, DivergeSteps: 8000,
		CalibSteps: 4000, Eps: 1e-14,
		TimeSlices: 5, SliceSteps: 150,
	})
	if ens.TimeSlices() != 5 {
		t.Fatalf("TimeSlices = %d", ens.TimeSlices())
	}
	gen := NewGenerator(grid.Test(), varcatalog.Default(), ens)
	_, idx, _ := varcatalog.ByName(gen.Catalog, "T")

	slices := make([][]float64, 5)
	for ts := 0; ts < 5; ts++ {
		f := gen.FieldAt(idx, 0, ts)
		slices[ts] = make([]float64, f.Len())
		for i, v := range f.Data {
			slices[ts][i] = float64(v)
		}
	}
	// Slices must differ.
	same := 0
	for i := range slices[0] {
		if slices[0][i] == slices[1][i] {
			same++
		}
	}
	if same > len(slices[0])/10 {
		t.Fatalf("adjacent time slices share %d values", same)
	}
	// Adjacent slices (0.3 time units apart) must correlate more strongly
	// than the ensemble-member baseline correlation of the shared
	// climatology. Compare against a different member at the same slice.
	other := gen.FieldAt(idx, 1, 0)
	otherVals := make([]float64, other.Len())
	for i, v := range other.Data {
		otherVals[i] = float64(v)
	}
	adj := stats.Pearson(slices[0], slices[1])
	cross := stats.Pearson(slices[0], otherVals)
	if !(adj > cross) {
		t.Fatalf("temporal correlation %v not above cross-member baseline %v", adj, cross)
	}
}

func TestField64ConsistentWithField(t *testing.T) {
	// History files are the truncation of the restart-precision state:
	// float32(Field64) must equal Field exactly, including fill points.
	gen := testGen(t)
	for _, name := range []string{"U", "SST", "CCN3"} {
		_, idx, _ := varcatalog.ByName(gen.Catalog, name)
		f32 := gen.Field(idx, 1)
		n64, data64, threeD := gen.Field64(idx, 1)
		if n64 != name || threeD != gen.Catalog[idx].ThreeD {
			t.Fatalf("%s: metadata mismatch", name)
		}
		if len(data64) != f32.Len() {
			t.Fatalf("%s: length mismatch", name)
		}
		for i := range data64 {
			if float32(data64[i]) != f32.Data[i] {
				t.Fatalf("%s: truncation mismatch at %d: %v vs %v", name, i, data64[i], f32.Data[i])
			}
		}
	}
}

func TestField64HasExtraPrecision(t *testing.T) {
	gen := testGen(t)
	_, idx, _ := varcatalog.ByName(gen.Catalog, "T")
	_, data64, _ := gen.Field64(idx, 0)
	diff := 0
	for _, v := range data64 {
		if float64(float32(v)) != v {
			diff++
		}
	}
	if diff < len(data64)/2 {
		t.Fatalf("only %d/%d values carry sub-float32 precision", diff, len(data64))
	}
}

func TestPseudoNormalMoments(t *testing.T) {
	var w stats.Welford
	x := uint64(12345)
	for i := 0; i < 200000; i++ {
		x = splitmix64(x)
		w.Add(pseudoNormal(x))
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Fatalf("pseudo-normal mean %v", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.02 {
		t.Fatalf("pseudo-normal std %v", w.StdDev())
	}
}

func TestConcurrentGeneration(t *testing.T) {
	gen := testGen(t)
	ref := gen.Field(5, 0)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := gen.Field(5, 0)
			for i := range f.Data {
				if f.Data[i] != ref.Data[i] {
					errs <- "concurrent generation mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

func BenchmarkField3D(b *testing.B) {
	gen := NewGenerator(grid.Small(), varcatalog.Default(), testEnsemble(b))
	_, idx, _ := varcatalog.ByName(gen.Catalog, "U")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Field(idx, i%gen.Members())
	}
}
