// Package metrics implements the paper's §4.2 measures for comparing
// original and reconstructed datasets — maximum pointwise error, normalized
// maximum pointwise error (eq. 2), RMSE (eq. 3), NRMSE (eq. 4), PSNR, and
// the Pearson correlation coefficient (eq. 5) — plus the SSIM image-quality
// index the paper lists as future work (§6). All measures skip special
// (fill) values, as the paper prescribes.
package metrics

import (
	"math"
)

// Errors summarizes the §4.2 comparison of a reconstructed dataset with
// its original.
type Errors struct {
	EMax    float64 // max_i |x_i - x̃_i|
	ENMax   float64 // EMax / range(X)            (eq. 2)
	RMSE    float64 //                             (eq. 3)
	NRMSE   float64 // RMSE / range(X)             (eq. 4)
	PSNR    float64 // 20·log10(range/RMSE), dB
	Pearson float64 // correlation coefficient ρ   (eq. 5)
	Range   float64 // range(X) over valid points
	N       int     // valid (non-fill) points compared
}

// Compare computes all §4.2 measures between orig and recon. Points whose
// original value equals fill are excluded when hasFill is set. A fill
// point that is not reconstructed as fill counts as an infinite error.
func Compare(orig, recon []float32, fill float32, hasFill bool) Errors {
	var e Errors
	if len(orig) != len(recon) || len(orig) == 0 {
		nan := math.NaN()
		return Errors{EMax: nan, ENMax: nan, RMSE: nan, NRMSE: nan, PSNR: nan, Pearson: nan, Range: nan}
	}
	var (
		minX, maxX   = math.Inf(1), math.Inf(-1)
		sumX, sumY   float64
		sumXX, sumYY float64
		sumXY        float64
		sumSq        float64
		identical    = true
	)
	for i := range orig {
		//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
		if hasFill && orig[i] == fill {
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			if recon[i] != fill {
				e.EMax = math.Inf(1)
			}
			continue
		}
		x := float64(orig[i])
		y := float64(recon[i])
		d := x - y
		if ad := math.Abs(d); ad > e.EMax {
			e.EMax = ad
		}
		sumSq += d * d
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		sumX += x
		sumY += y
		sumXX += x * x
		sumYY += y * y
		sumXY += x * y
		//lint:floateq intentional exact comparison: detects bit-identical reconstruction, where correlation is defined as 1
		if x != y {
			identical = false
		}
		e.N++
	}
	if e.N == 0 {
		nan := math.NaN()
		return Errors{EMax: nan, ENMax: nan, RMSE: nan, NRMSE: nan, PSNR: nan, Pearson: nan, Range: nan}
	}
	n := float64(e.N)
	e.Range = maxX - minX
	e.RMSE = math.Sqrt(sumSq / n)
	if e.Range > 0 {
		e.ENMax = e.EMax / e.Range
		e.NRMSE = e.RMSE / e.Range
		if e.RMSE > 0 {
			e.PSNR = 20 * math.Log10(e.Range/e.RMSE)
		} else {
			e.PSNR = math.Inf(1)
		}
	} else {
		// Constant field: normalized measures are 0 when exact, +Inf when
		// any error exists.
		if e.EMax == 0 {
			e.ENMax, e.NRMSE = 0, 0
			e.PSNR = math.Inf(1)
		} else {
			e.ENMax, e.NRMSE = math.Inf(1), math.Inf(1)
			e.PSNR = 0
		}
	}
	// Pearson ρ (eq. 5) from the accumulated moments.
	vx := sumXX - sumX*sumX/n
	vy := sumYY - sumY*sumY/n
	cov := sumXY - sumX*sumY/n
	switch {
	case identical:
		e.Pearson = 1
	case vx <= 0 || vy <= 0:
		e.Pearson = math.NaN()
	default:
		e.Pearson = cov / math.Sqrt(vx*vy)
	}
	return e
}

// CorrelationThreshold is the acceptance threshold for ρ used throughout
// the paper (recommended by the APAX profiler).
const CorrelationThreshold = 0.99999

// PassesCorrelation reports whether ρ meets the paper's acceptance
// threshold.
func (e Errors) PassesCorrelation() bool {
	return !math.IsNaN(e.Pearson) && e.Pearson >= CorrelationThreshold
}

// SSIM computes the mean structural similarity index over non-overlapping
// win×win windows of a rows×cols slab (Wang et al. 2004), the §6 extension
// for assessing visualization quality. The dynamic range L is taken from
// the original slab; windows containing fill values are skipped. Returns
// NaN if no window is valid.
func SSIM(orig, recon []float32, rows, cols, win int, fill float32, hasFill bool) float64 {
	if len(orig) != len(recon) || len(orig) != rows*cols || win < 2 {
		return math.NaN()
	}
	var lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range orig {
		//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
		if hasFill && v == fill {
			continue
		}
		x := float64(v)
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	l := hi - lo
	if l <= 0 || math.IsInf(l, 0) {
		return math.NaN()
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)

	var total float64
	var count int
	for r0 := 0; r0+win <= rows; r0 += win {
		for c0 := 0; c0+win <= cols; c0 += win {
			var sx, sy, sxx, syy, sxy float64
			n := 0
			skip := false
			for r := r0; r < r0+win && !skip; r++ {
				for c := c0; c < c0+win; c++ {
					i := r*cols + c
					//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
					if hasFill && (orig[i] == fill || recon[i] == fill) {
						skip = true
						break
					}
					x, y := float64(orig[i]), float64(recon[i])
					sx += x
					sy += y
					sxx += x * x
					syy += y * y
					sxy += x * y
					n++
				}
			}
			if skip || n < 4 {
				continue
			}
			fn := float64(n)
			mx, my := sx/fn, sy/fn
			vx := sxx/fn - mx*mx
			vy := syy/fn - my*my
			cov := sxy/fn - mx*my
			s := ((2*mx*my + c1) * (2*cov + c2)) /
				((mx*mx + my*my + c1) * (vx + vy + c2))
			total += s
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return total / float64(count)
}
