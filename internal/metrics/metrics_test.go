package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestIdenticalData(t *testing.T) {
	orig := []float32{1, 2, 3, 4, 5}
	e := Compare(orig, orig, 0, false)
	if e.EMax != 0 || e.RMSE != 0 || e.ENMax != 0 || e.NRMSE != 0 {
		t.Fatalf("identical data should have zero errors: %+v", e)
	}
	if e.Pearson != 1 {
		t.Fatalf("identical data ρ = %v, want 1", e.Pearson)
	}
	if !math.IsInf(e.PSNR, 1) {
		t.Fatalf("identical data PSNR = %v, want +Inf", e.PSNR)
	}
	if !e.PassesCorrelation() {
		t.Fatal("identical data must pass correlation test")
	}
	if e.Range != 4 || e.N != 5 {
		t.Fatalf("range/N wrong: %+v", e)
	}
}

func TestKnownErrors(t *testing.T) {
	orig := []float32{0, 10}
	recon := []float32{1, 10}
	e := Compare(orig, recon, 0, false)
	if e.EMax != 1 {
		t.Fatalf("EMax = %v", e.EMax)
	}
	if math.Abs(e.ENMax-0.1) > 1e-12 {
		t.Fatalf("ENMax = %v, want 0.1", e.ENMax)
	}
	wantRMSE := math.Sqrt(0.5)
	if math.Abs(e.RMSE-wantRMSE) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", e.RMSE, wantRMSE)
	}
	if math.Abs(e.NRMSE-wantRMSE/10) > 1e-12 {
		t.Fatalf("NRMSE = %v", e.NRMSE)
	}
	wantPSNR := 20 * math.Log10(10/wantRMSE)
	if math.Abs(e.PSNR-wantPSNR) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", e.PSNR, wantPSNR)
	}
}

func TestFillSkipped(t *testing.T) {
	const fill = float32(1e35)
	orig := []float32{1, fill, 3}
	recon := []float32{1, fill, 4}
	e := Compare(orig, recon, fill, true)
	if e.N != 2 {
		t.Fatalf("N = %d, want 2", e.N)
	}
	if e.EMax != 1 || e.Range != 2 {
		t.Fatalf("fill leaked into metrics: %+v", e)
	}
}

func TestLostFillIsInfiniteError(t *testing.T) {
	const fill = float32(1e35)
	orig := []float32{1, fill, 3}
	recon := []float32{1, 2, 3}
	e := Compare(orig, recon, fill, true)
	if !math.IsInf(e.EMax, 1) {
		t.Fatalf("losing a fill value must be an infinite error, got %v", e.EMax)
	}
}

func TestMismatchedLengths(t *testing.T) {
	e := Compare([]float32{1}, []float32{1, 2}, 0, false)
	if !math.IsNaN(e.RMSE) {
		t.Fatal("mismatched lengths should yield NaN metrics")
	}
}

func TestConstantField(t *testing.T) {
	orig := []float32{5, 5, 5}
	exact := Compare(orig, orig, 0, false)
	if exact.ENMax != 0 || exact.NRMSE != 0 {
		t.Fatalf("exact constant field: %+v", exact)
	}
	recon := []float32{5, 5.5, 5}
	e := Compare(orig, recon, 0, false)
	if !math.IsInf(e.ENMax, 1) {
		t.Fatalf("error on zero-range field should normalize to +Inf, got %v", e.ENMax)
	}
}

func TestPearsonDegradesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	orig := make([]float32, n)
	tiny := make([]float32, n)
	big := make([]float32, n)
	for i := range orig {
		orig[i] = float32(math.Sin(float64(i) / 100))
		tiny[i] = orig[i] + float32(rng.NormFloat64()*1e-7)
		big[i] = orig[i] + float32(rng.NormFloat64()*0.2)
	}
	et := Compare(orig, tiny, 0, false)
	eb := Compare(orig, big, 0, false)
	if !et.PassesCorrelation() {
		t.Fatalf("tiny noise ρ = %v should pass .99999", et.Pearson)
	}
	if eb.PassesCorrelation() {
		t.Fatalf("large noise ρ = %v should fail .99999", eb.Pearson)
	}
	if eb.Pearson >= et.Pearson {
		t.Fatal("more noise should lower ρ")
	}
}

func TestSSIMIdentical(t *testing.T) {
	rows, cols := 32, 32
	orig := make([]float32, rows*cols)
	for i := range orig {
		orig[i] = float32(math.Sin(float64(i) / 10))
	}
	if s := SSIM(orig, orig, rows, cols, 8, 0, false); math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIM of identical images = %v, want 1", s)
	}
}

func TestSSIMDegradesWithDistortion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows, cols := 32, 32
	orig := make([]float32, rows*cols)
	mild := make([]float32, rows*cols)
	severe := make([]float32, rows*cols)
	for i := range orig {
		orig[i] = float32(math.Sin(float64(i%cols)/5) * math.Cos(float64(i/cols)/5))
		mild[i] = orig[i] + float32(rng.NormFloat64()*0.01)
		severe[i] = orig[i] + float32(rng.NormFloat64()*0.5)
	}
	sm := SSIM(orig, mild, rows, cols, 8, 0, false)
	ss := SSIM(orig, severe, rows, cols, 8, 0, false)
	if !(sm > ss) {
		t.Fatalf("SSIM ordering wrong: mild %v, severe %v", sm, ss)
	}
	if sm < 0.9 {
		t.Fatalf("mild distortion SSIM %v unexpectedly low", sm)
	}
	if ss > 0.9 {
		t.Fatalf("severe distortion SSIM %v unexpectedly high", ss)
	}
}

func TestSSIMSkipsFillWindows(t *testing.T) {
	const fill = float32(1e35)
	rows, cols := 16, 16
	orig := make([]float32, rows*cols)
	recon := make([]float32, rows*cols)
	for i := range orig {
		orig[i] = float32(i % 7)
		recon[i] = orig[i]
	}
	// Poison one window with fill.
	orig[0] = fill
	recon[0] = fill
	s := SSIM(orig, recon, rows, cols, 8, fill, true)
	if math.IsNaN(s) || math.Abs(s-1) > 1e-9 {
		t.Fatalf("SSIM with one skipped window = %v", s)
	}
}

func TestSSIMDegenerate(t *testing.T) {
	if !math.IsNaN(SSIM([]float32{1}, []float32{1}, 1, 1, 8, 0, false)) {
		t.Fatal("tiny image should give NaN")
	}
	flat := []float32{5, 5, 5, 5}
	if !math.IsNaN(SSIM(flat, flat, 2, 2, 2, 0, false)) {
		t.Fatal("zero-range image should give NaN")
	}
}

func BenchmarkCompare(b *testing.B) {
	n := 100000
	orig := make([]float32, n)
	recon := make([]float32, n)
	for i := range orig {
		orig[i] = float32(i % 1000)
		recon[i] = orig[i] + 0.01
	}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compare(orig, recon, 0, false)
	}
}
