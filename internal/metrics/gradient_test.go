package metrics

import (
	"math"
	"testing"
)

func TestGradientMagnitudeLinearRamp(t *testing.T) {
	// f(r,c) = 3c: gradient magnitude 3 everywhere.
	rows, cols := 8, 8
	data := make([]float32, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			data[r*cols+c] = float32(3 * c)
		}
	}
	g := GradientMagnitude(data, 1, rows, cols, 0, false)
	for i, v := range g {
		if math.Abs(float64(v)-3) > 1e-6 {
			t.Fatalf("gradient at %d = %v, want 3", i, v)
		}
	}
}

func TestGradientMagnitudeDiagonal(t *testing.T) {
	// f(r,c) = r + c: |∇f| = sqrt(2).
	rows, cols := 10, 12
	data := make([]float32, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			data[r*cols+c] = float32(r + c)
		}
	}
	g := GradientMagnitude(data, 1, rows, cols, 0, false)
	want := math.Sqrt2
	for i, v := range g {
		if math.Abs(float64(v)-want) > 1e-6 {
			t.Fatalf("gradient at %d = %v, want %v", i, v, want)
		}
	}
}

func TestGradientMagnitudeConstant(t *testing.T) {
	data := make([]float32, 36)
	for i := range data {
		data[i] = 7
	}
	g := GradientMagnitude(data, 1, 6, 6, 0, false)
	for i, v := range g {
		if v != 0 {
			t.Fatalf("constant field gradient at %d = %v", i, v)
		}
	}
}

func TestGradientFillPropagation(t *testing.T) {
	const fill = float32(1e35)
	rows, cols := 6, 6
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = float32(i)
	}
	data[2*cols+2] = fill
	g := GradientMagnitude(data, 1, rows, cols, fill, true)
	// The fill point itself and its 4-neighbors become fill.
	for _, idx := range []int{2*cols + 2, 1*cols + 2, 3*cols + 2, 2*cols + 1, 2*cols + 3} {
		if g[idx] != fill {
			t.Fatalf("fill did not propagate to %d: %v", idx, g[idx])
		}
	}
	// Far corners remain valid.
	if g[0] == fill || g[rows*cols-1] == fill {
		t.Fatal("fill over-propagated")
	}
}

func TestGradientCompareIdentical(t *testing.T) {
	rows, cols := 16, 16
	data := make([]float32, rows*cols)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 9))
	}
	e := GradientCompare(data, data, 1, rows, cols, 0, false)
	if e.EMax != 0 || e.Pearson != 1 {
		t.Fatalf("identical gradients should be exact: %+v", e)
	}
}

func TestGradientCompareSensitiveToHighFreqNoise(t *testing.T) {
	// Pointwise-small high-frequency noise perturbs gradients much more
	// (relatively) than the values themselves — the reason the paper wants
	// this metric.
	rows, cols := 32, 32
	orig := make([]float32, rows*cols)
	recon := make([]float32, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			orig[i] = float32(100 * math.Sin(float64(c)/10))
			// Alternating-sign perturbation: tiny value error, large
			// gradient error.
			recon[i] = orig[i] + float32(0.5*float64(1-2*((r+c)%2)))
		}
	}
	val := Compare(orig, recon, 0, false)
	grad := GradientCompare(orig, recon, 1, rows, cols, 0, false)
	if grad.NRMSE <= val.NRMSE*5 {
		t.Fatalf("gradient NRMSE %v should dwarf value NRMSE %v for alternating noise",
			grad.NRMSE, val.NRMSE)
	}
}

func TestGradientCompareMismatched(t *testing.T) {
	e := GradientCompare(make([]float32, 4), make([]float32, 9), 1, 3, 3, 0, false)
	if !math.IsNaN(e.RMSE) {
		t.Fatal("mismatched sizes should yield NaN")
	}
}
