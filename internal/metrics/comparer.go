package metrics

import (
	"math"
)

// Comparer is the streaming form of Compare: the fused verification path
// pushes reconstructed values chunk by chunk as they decode, and Finish
// folds the accumulated moments into Errors. Accumulation happens in the
// same index order with the same per-point expression sequence as Compare,
// so the result is bit-identical — the golden equivalence test pins this.
//
// Chunks must arrive in strictly increasing contiguous index order (Push
// with off equal to the count of points pushed so far); out-of-order or
// mismatched pushes poison the Comparer and Finish returns the NaN-filled
// Errors, exactly like Compare on mismatched inputs.
type Comparer struct {
	fill    float32
	hasFill bool

	emax         float64
	minX, maxX   float64
	sumX, sumY   float64
	sumXX, sumYY float64
	sumXY        float64
	sumSq        float64
	identical    bool
	n            int
	total        int
	bad          bool
}

// Reset prepares the Comparer for a new comparison with the given fill
// sentinel.
func (c *Comparer) Reset(fill float32, hasFill bool) {
	*c = Comparer{
		fill:    fill,
		hasFill: hasFill,
		minX:    math.Inf(1),
		maxX:    math.Inf(-1),

		identical: true,
	}
}

// Push accumulates one chunk: orig and recon hold the original and
// reconstructed values of points [off, off+len(orig)).
func (c *Comparer) Push(orig, recon []float32, off int) {
	if len(orig) != len(recon) || off != c.total {
		c.bad = true
		return
	}
	c.total += len(orig)
	fill, hasFill := c.fill, c.hasFill
	emax := c.emax
	minX, maxX := c.minX, c.maxX
	sumX, sumY := c.sumX, c.sumY
	sumXX, sumYY := c.sumXX, c.sumYY
	sumXY, sumSq := c.sumXY, c.sumSq
	identical := c.identical
	n := c.n
	for i := range orig {
		//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
		if hasFill && orig[i] == fill {
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			if recon[i] != fill {
				emax = math.Inf(1)
			}
			continue
		}
		x := float64(orig[i])
		y := float64(recon[i])
		d := x - y
		if ad := math.Abs(d); ad > emax {
			emax = ad
		}
		sumSq += d * d
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		sumX += x
		sumY += y
		sumXX += x * x
		sumYY += y * y
		sumXY += x * y
		//lint:floateq intentional exact comparison: detects bit-identical reconstruction, where correlation is defined as 1
		if x != y {
			identical = false
		}
		n++
	}
	c.emax = emax
	c.minX, c.maxX = minX, maxX
	c.sumX, c.sumY = sumX, sumY
	c.sumXX, c.sumYY = sumXX, sumYY
	c.sumXY, c.sumSq = sumXY, sumSq
	c.identical = identical
	c.n = n
}

// Total returns the number of points pushed so far.
func (c *Comparer) Total() int { return c.total }

// Finish folds the accumulated moments into Errors, mirroring Compare's
// post-loop arithmetic expression for expression.
func (c *Comparer) Finish() Errors {
	if c.bad || c.total == 0 || c.n == 0 {
		nan := math.NaN()
		return Errors{EMax: nan, ENMax: nan, RMSE: nan, NRMSE: nan, PSNR: nan, Pearson: nan, Range: nan}
	}
	var e Errors
	e.EMax = c.emax
	e.N = c.n
	n := float64(c.n)
	e.Range = c.maxX - c.minX
	e.RMSE = math.Sqrt(c.sumSq / n)
	if e.Range > 0 {
		e.ENMax = e.EMax / e.Range
		e.NRMSE = e.RMSE / e.Range
		if e.RMSE > 0 {
			e.PSNR = 20 * math.Log10(e.Range/e.RMSE)
		} else {
			e.PSNR = math.Inf(1)
		}
	} else {
		// Constant field: normalized measures are 0 when exact, +Inf when
		// any error exists.
		if e.EMax == 0 {
			e.ENMax, e.NRMSE = 0, 0
			e.PSNR = math.Inf(1)
		} else {
			e.ENMax, e.NRMSE = math.Inf(1), math.Inf(1)
			e.PSNR = 0
		}
	}
	// Pearson ρ (eq. 5) from the accumulated moments.
	vx := c.sumXX - c.sumX*c.sumX/n
	vy := c.sumYY - c.sumY*c.sumY/n
	cov := c.sumXY - c.sumX*c.sumY/n
	switch {
	case c.identical:
		e.Pearson = 1
	case vx <= 0 || vy <= 0:
		e.Pearson = math.NaN()
	default:
		e.Pearson = cov / math.Sqrt(vx*vy)
	}
	return e
}
