package metrics

import (
	"math"
)

// GradientMagnitude computes the centered-difference horizontal gradient
// magnitude of each rows×cols slab of a (levs, rows, cols) field. One-sided
// differences are used at the edges; points adjacent to fill values inherit
// the fill sentinel.
func GradientMagnitude(data []float32, levs, rows, cols int, fill float32, hasFill bool) []float32 {
	out := make([]float32, len(data))
	at := func(base, r, c int) (float32, bool) {
		v := data[base+r*cols+c]
		//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
		if hasFill && v == fill {
			return 0, false
		}
		return v, true
	}
	for lev := 0; lev < levs; lev++ {
		base := lev * rows * cols
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				idx := base + r*cols + c
				//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
				if hasFill && data[idx] == fill {
					out[idx] = fill
					continue
				}
				// d/dx along the row.
				c0, c1 := c-1, c+1
				if c0 < 0 {
					c0 = c
				}
				if c1 >= cols {
					c1 = c
				}
				x0, ok0 := at(base, r, c0)
				x1, ok1 := at(base, r, c1)
				// d/dy along the column.
				r0, r1 := r-1, r+1
				if r0 < 0 {
					r0 = r
				}
				if r1 >= rows {
					r1 = r
				}
				y0, ok2 := at(base, r0, c)
				y1, ok3 := at(base, r1, c)
				if !ok0 || !ok1 || !ok2 || !ok3 {
					out[idx] = fill
					continue
				}
				dx := float64(x1-x0) / float64(c1-c0+boolInt(c1 == c0))
				dy := float64(y1-y0) / float64(r1-r0+boolInt(r1 == r0))
				out[idx] = float32(math.Sqrt(dx*dx + dy*dy))
			}
		}
	}
	return out
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// GradientCompare evaluates how well a reconstruction preserves horizontal
// field gradients — the paper's §6 plan ("extend our verification metrics
// to evaluate the impact of compression ... on field gradients"). It
// compares the gradient-magnitude fields of original and reconstruction
// with the standard §4.2 measures.
func GradientCompare(orig, recon []float32, levs, rows, cols int, fill float32, hasFill bool) Errors {
	if len(orig) != len(recon) || len(orig) != levs*rows*cols {
		return Compare(nil, nil, fill, hasFill) // NaN-filled
	}
	gFill := fill
	go1 := GradientMagnitude(orig, levs, rows, cols, fill, hasFill)
	go2 := GradientMagnitude(recon, levs, rows, cols, fill, hasFill)
	// Gradient fields mark edge-of-mask points as fill; compare with the
	// union of both masks by copying orig's fill marks into recon's field.
	if hasFill {
		for i := range go1 {
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			if go1[i] == gFill && go2[i] != gFill {
				go2[i] = gFill
			}
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			if go2[i] == gFill && go1[i] != gFill {
				go1[i] = gFill
			}
		}
	}
	return Compare(go1, go2, gFill, hasFill)
}
