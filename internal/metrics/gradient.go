package metrics

import (
	"math"
)

// gradientRow computes one output row of the centered-difference gradient
// magnitude: cur is the row being differentiated, prev/next its clamped
// vertical neighbors (aliases of cur at the slab edges), and dyDen the
// vertical denominator (2 in the interior, 1 at edges and single-row
// slabs). Both the whole-field GradientMagnitude and the streaming
// GradientComparer run through it, so their arithmetic is shared by
// construction.
func gradientRow(dst, prev, cur, next []float32, cols, dyDen int, fill float32, hasFill bool) {
	for c := 0; c < cols; c++ {
		v := cur[c]
		//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
		if hasFill && v == fill {
			dst[c] = fill
			continue
		}
		// d/dx along the row.
		c0, c1 := c-1, c+1
		if c0 < 0 {
			c0 = c
		}
		if c1 >= cols {
			c1 = c
		}
		x0, x1 := cur[c0], cur[c1]
		// d/dy along the column.
		y0, y1 := prev[c], next[c]
		//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
		if hasFill && (x0 == fill || x1 == fill || y0 == fill || y1 == fill) {
			dst[c] = fill
			continue
		}
		dx := float64(x1-x0) / float64(c1-c0+boolInt(c1 == c0))
		dy := float64(y1-y0) / float64(dyDen)
		dst[c] = float32(math.Sqrt(dx*dx + dy*dy))
	}
}

// GradientMagnitude computes the centered-difference horizontal gradient
// magnitude of each rows×cols slab of a (levs, rows, cols) field. One-sided
// differences are used at the edges; points adjacent to fill values inherit
// the fill sentinel.
func GradientMagnitude(data []float32, levs, rows, cols int, fill float32, hasFill bool) []float32 {
	out := make([]float32, len(data))
	for lev := 0; lev < levs; lev++ {
		base := lev * rows * cols
		for r := 0; r < rows; r++ {
			r0, r1 := r-1, r+1
			if r0 < 0 {
				r0 = r
			}
			if r1 >= rows {
				r1 = r
			}
			cur := data[base+r*cols : base+(r+1)*cols]
			prev := data[base+r0*cols : base+(r0+1)*cols]
			next := data[base+r1*cols : base+(r1+1)*cols]
			dst := out[base+r*cols : base+(r+1)*cols]
			gradientRow(dst, prev, cur, next, cols, r1-r0+boolInt(r1 == r0), fill, hasFill)
		}
	}
	return out
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// GradientCompare evaluates how well a reconstruction preserves horizontal
// field gradients — the paper's §6 plan ("extend our verification metrics
// to evaluate the impact of compression ... on field gradients"). It
// compares the gradient-magnitude fields of original and reconstruction
// with the standard §4.2 measures.
func GradientCompare(orig, recon []float32, levs, rows, cols int, fill float32, hasFill bool) Errors {
	if len(orig) != len(recon) || len(orig) != levs*rows*cols {
		return Compare(nil, nil, fill, hasFill) // NaN-filled
	}
	gFill := fill
	go1 := GradientMagnitude(orig, levs, rows, cols, fill, hasFill)
	go2 := GradientMagnitude(recon, levs, rows, cols, fill, hasFill)
	// Gradient fields mark edge-of-mask points as fill; compare with the
	// union of both masks by copying orig's fill marks into recon's field.
	if hasFill {
		for i := range go1 {
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			if go1[i] == gFill && go2[i] != gFill {
				go2[i] = gFill
			}
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			if go2[i] == gFill && go1[i] != gFill {
				go1[i] = gFill
			}
		}
	}
	return Compare(go1, go2, gFill, hasFill)
}
