package metrics

// GradientComparer is the streaming form of GradientCompare: reconstructed
// values arrive chunk by chunk, and only a 3-row ring of the reconstruction
// (the centered-difference halo) plus two gradient-row scratch buffers are
// held — never the two full gradient-magnitude fields the whole-field path
// materializes. Rows are emitted into an inner Comparer in the same
// row-major order, through the same gradientRow kernel and the same
// per-point mask union as GradientCompare, so Finish is bit-identical to
// it — pinned by the golden equivalence test.
type GradientComparer struct {
	orig             []float32
	levs, rows, cols int
	fill             float32
	hasFill          bool

	cmp    Comparer
	ring   []float32 // 3 rows of the reconstruction, indexed by row%3
	g1, g2 []float32 // gradient-row scratch: original, reconstruction
	total  int
	bad    bool
}

// NewGradientComparer prepares a streaming gradient comparison of a
// reconstruction against orig, a (levs, rows, cols) field. A mismatched
// orig length poisons the comparer, and Finish returns the NaN-filled
// Errors exactly like GradientCompare on mismatched inputs.
func NewGradientComparer(orig []float32, levs, rows, cols int, fill float32, hasFill bool) *GradientComparer {
	g := &GradientComparer{
		orig: orig, levs: levs, rows: rows, cols: cols,
		fill: fill, hasFill: hasFill,
	}
	if levs <= 0 || rows <= 0 || cols <= 0 || len(orig) != levs*rows*cols {
		g.bad = true
		return g
	}
	g.cmp.Reset(fill, hasFill)
	g.ring = make([]float32, 3*cols)
	g.g1 = make([]float32, cols)
	g.g2 = make([]float32, cols)
	return g
}

// Push accumulates one chunk of reconstructed values covering the points
// [off, off+len(vals)). Chunks must arrive in strictly increasing
// contiguous order, as DecodeChunks yields them.
func (g *GradientComparer) Push(vals []float32, off int) {
	if g.bad {
		return
	}
	if off != g.total || off+len(vals) > len(g.orig) {
		g.bad = true
		return
	}
	cols, perLev := g.cols, g.rows*g.cols
	for len(vals) > 0 {
		i := g.total
		lev, li := i/perLev, i%perLev
		r, c := li/cols, li%cols
		take := cols - c
		if take > len(vals) {
			take = len(vals)
		}
		copy(g.ring[(r%3)*cols+c:], vals[:take])
		vals = vals[take:]
		g.total += take
		if c+take == cols {
			g.rowDone(lev, r)
		}
	}
}

// rowDone fires when reconstruction row r of level lev is complete: the
// previous row then has its full halo, and the last row of a level can be
// emitted immediately (its lower neighbor clamps to itself).
func (g *GradientComparer) rowDone(lev, r int) {
	if g.rows == 1 {
		g.emit(lev, 0)
		return
	}
	if r >= 1 {
		g.emit(lev, r-1)
	}
	if r == g.rows-1 {
		g.emit(lev, r)
	}
}

// emit computes gradient row e of level lev for both fields, applies the
// mask union, and pushes the pair into the inner Comparer.
func (g *GradientComparer) emit(lev, e int) {
	cols := g.cols
	r0, r1 := e-1, e+1
	if r0 < 0 {
		r0 = e
	}
	if r1 >= g.rows {
		r1 = e
	}
	dyDen := r1 - r0 + boolInt(r1 == r0)
	base := lev * g.rows * cols
	row := func(r int) []float32 { return g.orig[base+r*cols : base+(r+1)*cols] }
	gradientRow(g.g1, row(r0), row(e), row(r1), cols, dyDen, g.fill, g.hasFill)
	rring := func(r int) []float32 { return g.ring[(r%3)*cols : (r%3+1)*cols] }
	gradientRow(g.g2, rring(r0), rring(e), rring(r1), cols, dyDen, g.fill, g.hasFill)
	if g.hasFill {
		// Same union as GradientCompare: compare under both masks.
		gFill := g.fill
		for i := range g.g1 {
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			if g.g1[i] == gFill && g.g2[i] != gFill {
				g.g2[i] = gFill
			}
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			if g.g2[i] == gFill && g.g1[i] != gFill {
				g.g1[i] = gFill
			}
		}
	}
	g.cmp.Push(g.g1, g.g2, base+e*cols)
}

// Finish returns the §4.2 measures over the gradient fields, bit-identical
// to GradientCompare on the materialized reconstruction.
func (g *GradientComparer) Finish() Errors {
	if g.bad || g.total != g.levs*g.rows*g.cols {
		return Compare(nil, nil, g.fill, g.hasFill) // NaN-filled
	}
	return g.cmp.Finish()
}
