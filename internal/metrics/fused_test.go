package metrics_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/compress"
	_ "climcompress/internal/compress/apax"
	"climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/grib2"
	_ "climcompress/internal/compress/isabela"
	_ "climcompress/internal/compress/nclossless"
	_ "climcompress/internal/compress/tsblob"
	"climcompress/internal/metrics"
)

const testFill = float32(9.96921e36)

// fusedShape is deliberately not a multiple of the chunk sizes below, so
// partial trailing chunks are exercised.
var fusedShape = compress.Shape{NLev: 3, NLat: 16, NLon: 24}

// fusedFields builds the three field characters of the equivalence matrix:
// fill-heavy (~50% sentinel), constant, and chaotic.
func fusedFields() map[string][]float32 {
	n := fusedShape.Len()
	rng := rand.New(rand.NewSource(9))
	fillHeavy := make([]float32, n)
	for i := range fillHeavy {
		if rng.Intn(2) == 0 {
			fillHeavy[i] = testFill
		} else {
			fillHeavy[i] = float32(math.Sin(float64(i)/7)) * 40
		}
	}
	constant := make([]float32, n)
	for i := range constant {
		constant[i] = 273.15
	}
	chaotic := make([]float32, n)
	for i := range chaotic {
		chaotic[i] = rng.Float32()*500 - 250
	}
	return map[string][]float32{"fill-heavy": fillHeavy, "constant": constant, "chaotic": chaotic}
}

// fusedCodecs covers all seven codec families: nclossless, grib2, apax,
// fpzip, isabela, tsblob, and the fill-mask wrapper.
func fusedCodecs(t *testing.T) map[string]compress.Codec {
	out := map[string]compress.Codec{}
	for _, name := range []string{"nc", "grib2", "apax-4", "fpzip-24", "isa-0.5", "tsblob"} {
		c, err := compress.New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		out[name] = c
	}
	out["fillmask"] = compress.WithFill(fpzip.New(24), testFill)
	return out
}

func errorsBits(e metrics.Errors) [8]uint64 {
	return [8]uint64{
		math.Float64bits(e.EMax), math.Float64bits(e.ENMax),
		math.Float64bits(e.RMSE), math.Float64bits(e.NRMSE),
		math.Float64bits(e.PSNR), math.Float64bits(e.Pearson),
		math.Float64bits(e.Range), uint64(e.N),
	}
}

// TestFusedEquivalence pins the tentpole invariant: for every codec family
// and field character, the chunked decode yields exactly the materialized
// reconstruction, and the streaming Comparer/GradientComparer produce
// bit-identical Errors to Compare/GradientCompare. Wired into make verify
// by name.
func TestFusedEquivalence(t *testing.T) {
	fields := fusedFields()
	codecs := fusedCodecs(t)
	chunkLens := []int{0, 7, 100, 4096}
	for cname, c := range codecs {
		for fname, orig := range fields {
			// Lossy codecs cannot carry the sentinel through quantization;
			// the pipeline wraps them in the fill mask, and so does the test.
			if fname == "fill-heavy" && !c.Lossless() && cname != "fillmask" {
				c = compress.WithFill(c, testFill)
			}
			buf, err := compress.CompressInto(c, nil, orig, fusedShape)
			if err != nil {
				t.Fatalf("%s/%s: compress: %v", cname, fname, err)
			}
			recon, err := compress.DecompressInto(c, nil, buf)
			if err != nil {
				t.Fatalf("%s/%s: decompress: %v", cname, fname, err)
			}
			wantCmp := metrics.Compare(orig, recon, testFill, true)
			wantGrad := metrics.GradientCompare(orig, recon, fusedShape.NLev, fusedShape.NLat, fusedShape.NLon, testFill, true)
			for _, cl := range chunkLens {
				t.Run(fmt.Sprintf("%s/%s/chunk%d", cname, fname, cl), func(t *testing.T) {
					var chunk []float32
					if cl > 0 {
						chunk = make([]float32, cl)
					}
					got := make([]float32, 0, len(orig))
					var cmp metrics.Comparer
					cmp.Reset(testFill, true)
					gc := metrics.NewGradientComparer(orig, fusedShape.NLev, fusedShape.NLat, fusedShape.NLon, testFill, true)
					err := compress.DecodeChunks(c, buf, chunk, func(off int, vals []float32) error {
						if off != len(got) {
							return fmt.Errorf("offset %d, want %d", off, len(got))
						}
						got = append(got, vals...)
						cmp.Push(orig[off:off+len(vals)], vals, off)
						gc.Push(vals, off)
						return nil
					})
					if err != nil {
						t.Fatalf("DecodeChunks: %v", err)
					}
					if len(got) != len(recon) {
						t.Fatalf("chunked decode yielded %d values, want %d", len(got), len(recon))
					}
					for i := range got {
						if math.Float32bits(got[i]) != math.Float32bits(recon[i]) {
							t.Fatalf("value %d: chunked %v != materialized %v", i, got[i], recon[i])
						}
					}
					if g, w := errorsBits(cmp.Finish()), errorsBits(wantCmp); g != w {
						t.Errorf("Comparer.Finish mismatch:\n got %+v\nwant %+v", cmp.Finish(), wantCmp)
					}
					if g, w := errorsBits(gc.Finish()), errorsBits(wantGrad); g != w {
						t.Errorf("GradientComparer.Finish mismatch:\n got %+v\nwant %+v", gc.Finish(), wantGrad)
					}
				})
			}
		}
	}
}

// TestCompareAllFillNaN is the regression pin for the degenerate all-fill
// field: zero valid points must yield the explicit NaN-filled Errors (the
// same shape as the length-mismatch case), discarding even the infinite
// EMax that a fill-point reconstruction mismatch sets — and the streaming
// Comparer must match bit for bit.
func TestCompareAllFillNaN(t *testing.T) {
	orig := []float32{testFill, testFill, testFill, testFill}
	for _, recon := range [][]float32{
		{testFill, testFill, testFill, testFill}, // faithful fill reconstruction
		{testFill, 1.5, testFill, testFill},      // fill point lost => transient Inf EMax
	} {
		e := metrics.Compare(orig, recon, testFill, true)
		for name, v := range map[string]float64{
			"EMax": e.EMax, "ENMax": e.ENMax, "RMSE": e.RMSE, "NRMSE": e.NRMSE,
			"PSNR": e.PSNR, "Pearson": e.Pearson, "Range": e.Range,
		} {
			if !math.IsNaN(v) {
				t.Errorf("all-fill Compare %s = %v, want NaN", name, v)
			}
		}
		if e.N != 0 {
			t.Errorf("all-fill Compare N = %d, want 0", e.N)
		}
		var cmp metrics.Comparer
		cmp.Reset(testFill, true)
		cmp.Push(orig[:2], recon[:2], 0)
		cmp.Push(orig[2:], recon[2:], 2)
		if g, w := errorsBits(cmp.Finish()), errorsBits(e); g != w {
			t.Errorf("Comparer all-fill mismatch:\n got %+v\nwant %+v", cmp.Finish(), e)
		}
	}
}
