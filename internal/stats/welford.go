package stats

import "math"

// Welford is a numerically stable streaming accumulator of count, mean and
// variance, after Welford (1962). The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w (Chan et al. parallel update),
// enabling per-worker accumulation followed by a reduction.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// N returns the number of accumulated values.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or NaN if empty.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased sample variance, or NaN for n < 2.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population variance (n denominator).
func (w *Welford) PopVariance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest accumulated value, or NaN if empty.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest accumulated value, or NaN if empty.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Range returns Max - Min, or NaN if empty.
func (w *Welford) Range() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max - w.min
}

// LeaveOneOut holds per-point sums over an ensemble that allow O(1)
// computation of the mean and standard deviation of the sub-ensemble that
// excludes any single member (the {E \ m} statistics of eqs. 6–7).
type LeaveOneOut struct {
	N     int     // number of members accumulated
	Sum   float64 // Σ x_m
	SumSq float64 // Σ x_m²
}

// Add folds one member's value at this point.
func (l *LeaveOneOut) Add(x float64) {
	l.N++
	l.Sum += x
	l.SumSq += x * x
}

// Excluding returns the mean and unbiased sample standard deviation of the
// accumulated values with x (one previously added member value) removed.
func (l *LeaveOneOut) Excluding(x float64) (mean, std float64) {
	n := l.N - 1
	if n < 1 {
		return math.NaN(), math.NaN()
	}
	s := l.Sum - x
	ss := l.SumSq - x*x
	mean = s / float64(n)
	if n < 2 {
		return mean, math.NaN()
	}
	v := (ss - s*s/float64(n)) / float64(n-1)
	if v < 0 { // numeric cancellation guard
		v = 0
	}
	return mean, math.Sqrt(v)
}
