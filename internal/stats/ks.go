package stats

import (
	"math"
	"sort"
)

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	D      float64 // maximum distance between the empirical CDFs
	P      float64 // asymptotic p-value (probability of D this large under H0)
	N1, N2 int
}

// KolmogorovSmirnov performs the two-sample KS test. The ensemble
// consistency tooling that grew out of the paper (NCAR's CECT line of
// work) uses distribution tests of this kind alongside the RMSZ scores;
// it is provided here as an extension metric (see core.KSCompare).
func KolmogorovSmirnov(a, b []float64) KSResult {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return KSResult{D: math.NaN(), P: math.NaN(), N1: n1, N2: n2}
	}
	x := append([]float64(nil), a...)
	y := append([]float64(nil), b...)
	sort.Float64s(x)
	sort.Float64s(y)
	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		// Advance past all samples equal to the smaller current value so
		// ties move both CDFs together (otherwise identical samples would
		// report spurious distance).
		v := math.Min(x[i], y[j])
		//lint:floateq tie groups advance over bit-identical sorted values; a tolerance would merge distinct samples
		for i < n1 && x[i] == v {
			i++
		}
		//lint:floateq tie groups advance over bit-identical sorted values; a tolerance would merge distinct samples
		for j < n2 && y[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n1) * float64(n2) / float64(n1+n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: ksProbability(lambda), N1: n1, N2: n2}
}

// ksProbability evaluates the asymptotic Kolmogorov distribution
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}.
func ksProbability(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}
