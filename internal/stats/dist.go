package stats

import "math"

// NormQuantile returns the p-th quantile of the standard normal distribution
// using Acklam's rational approximation (relative error < 1.15e-9).
func NormQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		//lint:floateq the quantile domain edge is the exact constant 1, not a computed value
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against the normal CDF.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormCDF returns the standard normal cumulative distribution at x.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// TQuantile returns the p-th quantile of Student's t distribution with df
// degrees of freedom, using the Peiser/Cornish–Fisher expansion around the
// normal quantile. Accurate to ~1e-6 for df ≥ 3; exact forms are used for
// df 1 and 2.
func TQuantile(p float64, df int) float64 {
	if df <= 0 || math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		//lint:floateq the quantile domain edge is the exact constant 1, not a computed value
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	switch df {
	case 1:
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		return (2*p - 1) * math.Sqrt(2/(4*p*(1-p)))
	}
	z := NormQuantile(p)
	v := float64(df)
	z2 := z * z
	g1 := (z2 + 1) * z / 4
	g2 := ((5*z2+16)*z2 + 3) * z / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) * z / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) * z / 92160
	return z + g1/v + g2/(v*v) + g3/(v*v*v) + g4/(v*v*v*v)
}
