package stats

import "math"

// Moments is the structure-of-arrays streaming moment accumulator behind
// the one-pass leave-one-out ensemble statistics (eqs. 6–8): one pass over
// all members accumulates per-point Σx and Σx², and the mean/std of the
// sub-ensemble excluding any single member follow algebraically in O(1)
// per point. It computes exactly the same quantities as LeaveOneOut but
// stores the sums in flat parallel slices, which halves the memory stride
// of the scoring hot loop and lets point ranges be accumulated by
// independent workers.
type Moments struct {
	N     []int32   // members accumulated per point
	Sum   []float64 // Σ x_m per point
	SumSq []float64 // Σ x_m² per point
}

// NewMoments returns an accumulator for n points.
func NewMoments(n int) *Moments {
	return &Moments{
		N:     make([]int32, n),
		Sum:   make([]float64, n),
		SumSq: make([]float64, n),
	}
}

// Len returns the number of points.
func (mo *Moments) Len() int { return len(mo.Sum) }

// AddMember folds one member's values into every non-masked point of
// [lo, hi). mask may be nil. Accumulation order per point is the call
// order, so adding members 0..M-1 yields sums bit-identical to a serial
// per-point loop regardless of how [lo, hi) ranges partition the points.
func (mo *Moments) AddMember(data []float32, mask []bool, lo, hi int) {
	sum, sumsq, cnt := mo.Sum, mo.SumSq, mo.N
	if mask == nil {
		for i := lo; i < hi; i++ {
			x := float64(data[i])
			cnt[i]++
			sum[i] += x
			sumsq[i] += x * x
		}
		return
	}
	for i := lo; i < hi; i++ {
		if mask[i] {
			continue
		}
		x := float64(data[i])
		cnt[i]++
		sum[i] += x
		sumsq[i] += x * x
	}
}

// AddMemberChunk folds one chunk of a member's values — the points
// [off, off+len(vals)) — into the accumulator, with the same per-point
// arithmetic as AddMember. Feeding a member's chunks in ascending offset
// order is equivalent to one AddMember call over the whole field; the
// fused decode path drives this straight from a codec's chunk iterator.
// mask (indexed by absolute point, like off) may be nil.
func (mo *Moments) AddMemberChunk(vals []float32, mask []bool, off int) {
	sum, sumsq, cnt := mo.Sum, mo.SumSq, mo.N
	if mask == nil {
		for j, v := range vals {
			i := off + j
			x := float64(v)
			cnt[i]++
			sum[i] += x
			sumsq[i] += x * x
		}
		return
	}
	for j, v := range vals {
		i := off + j
		if mask[i] {
			continue
		}
		x := float64(v)
		cnt[i]++
		sum[i] += x
		sumsq[i] += x * x
	}
}

// Excluding returns the mean and unbiased sample standard deviation at
// point i of the accumulated values with x (one previously added member
// value) removed — the {E \ m} statistics of eq. 6. The arithmetic matches
// LeaveOneOut.Excluding operation for operation.
func (mo *Moments) Excluding(i int, x float64) (mean, std float64) {
	n := int(mo.N[i]) - 1
	if n < 1 {
		return math.NaN(), math.NaN()
	}
	s := mo.Sum[i] - x
	ss := mo.SumSq[i] - x*x
	mean = s / float64(n)
	if n < 2 {
		return mean, math.NaN()
	}
	v := (ss - s*s/float64(n)) / float64(n-1)
	if v < 0 { // numeric cancellation guard
		v = 0
	}
	return mean, math.Sqrt(v)
}

// FullStd returns the full-ensemble (nothing excluded) unbiased standard
// deviation at point i, or NaN for fewer than 2 values.
func (mo *Moments) FullStd(i int) float64 {
	n := float64(mo.N[i])
	if n < 2 {
		return math.NaN()
	}
	mean := mo.Sum[i] / n
	v := (mo.SumSq[i] - mo.Sum[i]*mean) / (n - 1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// At returns the point's accumulated sums as a LeaveOneOut value,
// preserving the older element-wise API for callers that hold one point.
func (mo *Moments) At(i int) LeaveOneOut {
	return LeaveOneOut{N: int(mo.N[i]), Sum: mo.Sum[i], SumSq: mo.SumSq[i]}
}
