package stats

import "math"

// Regression holds an ordinary least-squares fit y = Intercept + Slope·x
// with the standard errors needed for the paper's bias test (§4.3, eq. 9 and
// Figure 4): 95 % confidence rectangles in (slope, intercept) space.
type Regression struct {
	Slope, Intercept         float64
	SlopeSE, InterceptSE     float64 // standard errors
	R2                       float64 // coefficient of determination
	ResidualStd              float64 // σ̂ of the residuals
	N                        int
	SlopeCI95, InterceptCI95 [2]float64 // two-sided 95 % confidence intervals
}

// LinearFit performs an OLS regression of ys on xs. It returns a zero-value
// Regression with NaN fields when fewer than three points are supplied or
// the xs are constant.
func LinearFit(xs, ys []float64) Regression {
	nan := math.NaN()
	bad := Regression{
		Slope: nan, Intercept: nan, SlopeSE: nan, InterceptSE: nan,
		R2: nan, ResidualStd: nan,
		SlopeCI95: [2]float64{nan, nan}, InterceptCI95: [2]float64{nan, nan},
	}
	n := len(xs)
	if n != len(ys) || n < 3 {
		bad.N = n
		return bad
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		bad.N = n
		return bad
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	var rss, tss float64
	for i := range xs {
		r := ys[i] - (intercept + slope*xs[i])
		rss += r * r
		dy := ys[i] - my
		tss += dy * dy
	}
	df := float64(n - 2)
	sigma2 := rss / df
	slopeSE := math.Sqrt(sigma2 / sxx)
	var sumx2 float64
	for _, x := range xs {
		sumx2 += x * x
	}
	interceptSE := math.Sqrt(sigma2 * sumx2 / (float64(n) * sxx))

	r2 := 1.0
	if tss > 0 {
		r2 = 1 - rss/tss
	}
	tcrit := TQuantile(0.975, n-2)
	return Regression{
		Slope: slope, Intercept: intercept,
		SlopeSE: slopeSE, InterceptSE: interceptSE,
		R2: r2, ResidualStd: math.Sqrt(sigma2), N: n,
		SlopeCI95:     [2]float64{slope - tcrit*slopeSE, slope + tcrit*slopeSE},
		InterceptCI95: [2]float64{intercept - tcrit*interceptSE, intercept + tcrit*interceptSE},
	}
}

// SlopeWorstCaseDistance implements the paper's eq. 9 quantity
// |s_I − s_WC|: the distance between the ideal slope (1) and the corner of
// the 95 % confidence interval farthest from it. An unbiased, certain fit
// yields a small value; either bias or large uncertainty inflates it.
func (r Regression) SlopeWorstCaseDistance() float64 {
	dLo := math.Abs(1 - r.SlopeCI95[0])
	dHi := math.Abs(1 - r.SlopeCI95[1])
	return math.Max(dLo, dHi)
}

// ContainsIdeal reports whether the joint 95 % confidence rectangle contains
// the ideal point (slope 1, intercept 0), i.e. the reconstruction shows no
// detectable bias at this confidence level.
func (r Regression) ContainsIdeal() bool {
	return r.SlopeCI95[0] <= 1 && 1 <= r.SlopeCI95[1] &&
		r.InterceptCI95[0] <= 0 && 0 <= r.InterceptCI95[1]
}
