package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res := KolmogorovSmirnov(a, a)
	if res.D != 0 {
		t.Fatalf("identical samples D = %v, want 0", res.D)
	}
	if res.P < 0.999 {
		t.Fatalf("identical samples p = %v, want ≈ 1", res.P)
	}
}

func TestKSSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res := KolmogorovSmirnov(a, b)
	if res.P < 0.01 {
		t.Fatalf("same-distribution samples rejected: D=%v p=%v", res.D, res.P)
	}
}

func TestKSShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 0.5
	}
	res := KolmogorovSmirnov(a, b)
	if res.P > 1e-6 {
		t.Fatalf("shifted distribution not detected: D=%v p=%v", res.D, res.P)
	}
	if res.D < 0.1 {
		t.Fatalf("D = %v too small for a 0.5σ shift", res.D)
	}
}

func TestKSScaledDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() * 2 // same mean, different spread
	}
	res := KolmogorovSmirnov(a, b)
	if res.P > 1e-6 {
		t.Fatalf("scale change not detected: p=%v", res.P)
	}
}

func TestKSEmpty(t *testing.T) {
	res := KolmogorovSmirnov(nil, []float64{1})
	if !math.IsNaN(res.D) || !math.IsNaN(res.P) {
		t.Fatal("empty sample should yield NaN")
	}
}

func TestKSUnequalSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 100)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res := KolmogorovSmirnov(a, b)
	if res.N1 != 100 || res.N2 != 5000 {
		t.Fatal("sizes not recorded")
	}
	if res.P < 0.001 {
		t.Fatalf("same distribution, unequal sizes rejected: p=%v", res.P)
	}
}

func TestKSProbabilityMonotone(t *testing.T) {
	prev := 1.0
	for _, l := range []float64{0.1, 0.5, 0.8, 1.0, 1.5, 2.0} {
		p := ksProbability(l)
		if p > prev+1e-12 {
			t.Fatalf("Q(λ) not monotone at λ=%v: %v > %v", l, p, prev)
		}
		prev = p
	}
	// Known value: Q(1.0) ≈ 0.2700.
	if p := ksProbability(1.0); math.Abs(p-0.27) > 0.005 {
		t.Fatalf("Q(1.0) = %v, want ≈ 0.27", p)
	}
}
