// Package stats provides the statistical machinery behind the verification
// methodology: descriptive statistics, streaming (Welford) accumulators,
// quantiles and box-plot summaries, Pearson correlation, and ordinary
// least-squares regression with Student-t confidence intervals.
//
// All routines operate on float64. The compression pipeline's float32 data
// is widened at the call sites so accumulations do not lose precision.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator), or NaN
// for fewer than two values.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extreme values of xs, ignoring NaNs. For empty or
// all-NaN input both results are NaN.
func MinMax(xs []float64) (min, max float64) {
	min, max = math.NaN(), math.NaN()
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if math.IsNaN(min) || x < min {
			min = x
		}
		if math.IsNaN(max) || x > max {
			max = x
		}
	}
	return min, max
}

// Covariance returns the unbiased sample covariance of two equal-length
// series, or NaN if they differ in length or have fewer than two points.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Pearson returns the Pearson correlation coefficient ρ (eq. 5 of the paper)
// between two equal-length series. If either series is constant the result
// is NaN unless the series are identical, in which case 1 is returned (the
// reconstruction is exact, the natural verdict for a lossless codec).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		identical := true
		for i := range xs {
			//lint:floateq intentional exact comparison: distinguishes bit-identical series (r=1) from degenerate variance (r=NaN)
			if xs[i] != ys[i] {
				identical = false
				break
			}
		}
		if identical {
			return 1
		}
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Quantile returns the q-th quantile (q in [0,1]) of xs using linear
// interpolation between order statistics (type-7, the R default). xs need
// not be sorted. Returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Boxplot is the five-number summary used to render the paper's box plots
// (Figures 1 and 3): full-range whiskers, quartile box, median line.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// NewBoxplot computes the summary of xs. Empty input yields all-NaN fields.
func NewBoxplot(xs []float64) Boxplot {
	if len(xs) == 0 {
		nan := math.NaN()
		return Boxplot{Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return Boxplot{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		N:      len(s),
	}
}

// Contains reports whether v lies within the full range of the distribution
// the summary was built from.
func (b Boxplot) Contains(v float64) bool { return v >= b.Min && v <= b.Max }

// Range returns Max - Min.
func (b Boxplot) Range() float64 { return b.Max - b.Min }

// Histogram bins values into nbins equal-width bins spanning [lo, hi].
// Values outside the span are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram of xs with nbins bins spanning the data
// range (or [0,1] if the data are constant/empty).
func NewHistogram(xs []float64, nbins int) Histogram {
	if nbins < 1 {
		nbins = 1
	}
	lo, hi := MinMax(xs)
	//lint:floateq exact min==max detects a constant series, which gets the widened fallback range below
	if math.IsNaN(lo) || lo == hi {
		if math.IsNaN(lo) {
			lo, hi = 0, 1
		} else {
			hi = lo + 1
		}
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		h.Counts[i]++
	}
	return h
}

// Bin returns the bin index v falls into (clamped).
func (h Histogram) Bin(v float64) int {
	n := len(h.Counts)
	w := (h.Hi - h.Lo) / float64(n)
	i := int((v - h.Lo) / w)
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
