package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample variance with n-1: ss = 32, 32/7.
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of one value should be NaN")
	}
}

func TestMinMaxIgnoresNaN(t *testing.T) {
	lo, hi := MinMax([]float64{3, math.NaN(), -2, 8})
	if lo != -2 || hi != 8 {
		t.Fatalf("MinMax = (%v,%v), want (-2,8)", lo, hi)
	}
	lo, hi = MinMax([]float64{math.NaN()})
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("all-NaN input should yield NaN extremes")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-14) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-14) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantIdentical(t *testing.T) {
	xs := []float64{5, 5, 5}
	if got := Pearson(xs, xs); got != 1 {
		t.Fatalf("identical constant series: Pearson = %v, want 1", got)
	}
	ys := []float64{5, 5, 6}
	if got := Pearson(xs, ys); !math.IsNaN(got) {
		t.Fatalf("constant-vs-varying: Pearson = %v, want NaN", got)
	}
}

func TestCovarianceMatchesPearson(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = 0.5*xs[i] + rng.NormFloat64()
	}
	rho := Covariance(xs, ys) / (StdDev(xs) * StdDev(ys))
	if got := Pearson(xs, ys); !almostEq(got, rho, 1e-12) {
		t.Fatalf("Pearson %v != cov/σσ %v", got, rho)
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBoxplot(t *testing.T) {
	b := NewBoxplot([]float64{5, 1, 3, 2, 4})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.N != 5 {
		t.Fatalf("unexpected boxplot: %+v", b)
	}
	if !b.Contains(2.5) || b.Contains(5.5) || b.Contains(0.5) {
		t.Fatal("Contains misbehaves")
	}
	if b.Range() != 4 {
		t.Fatalf("Range = %v, want 4", b.Range())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if len(h.Counts) != 2 {
		t.Fatal("wrong bin count")
	}
	if h.Counts[0]+h.Counts[1] != 5 {
		t.Fatalf("histogram lost values: %v", h.Counts)
	}
	if h.Bin(h.Lo) != 0 || h.Bin(h.Hi) != 1 {
		t.Fatal("Bin clamping wrong")
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-10) {
		t.Fatalf("mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("variance %v vs %v", w.Variance(), Variance(xs))
	}
	lo, hi := MinMax(xs)
	if w.Min() != lo || w.Max() != hi {
		t.Fatal("min/max mismatch")
	}
}

func TestWelfordMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		var all, a, b Welford
		for i := 0; i < n; i++ {
			x := rng.NormFloat64() * 100
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return almostEq(a.Mean(), all.Mean(), 1e-9) &&
			almostEq(a.Variance(), all.Variance(), 1e-7) &&
			a.Min() == all.Min() && a.Max() == all.Max() && a.N() == all.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge with empty changed state")
	}
	var c Welford
	c.Merge(a)
	if c.N() != 2 || c.Mean() != 2 {
		t.Fatal("merge into empty failed")
	}
}

func TestLeaveOneOut(t *testing.T) {
	xs := []float64{3, 7, 7, 19, 24, 4, 8}
	var l LeaveOneOut
	for _, x := range xs {
		l.Add(x)
	}
	for i, excl := range xs {
		var rest []float64
		for j, x := range xs {
			if j != i {
				rest = append(rest, x)
			}
		}
		m, s := l.Excluding(excl)
		if !almostEq(m, Mean(rest), 1e-10) {
			t.Fatalf("excluding %v: mean %v, want %v", excl, m, Mean(rest))
		}
		if !almostEq(s, StdDev(rest), 1e-10) {
			t.Fatalf("excluding %v: std %v, want %v", excl, s, StdDev(rest))
		}
	}
}

func TestLeaveOneOutDegenerate(t *testing.T) {
	var l LeaveOneOut
	l.Add(5)
	m, s := l.Excluding(5)
	if !math.IsNaN(m) || !math.IsNaN(s) {
		t.Fatal("excluding the only member should yield NaNs")
	}
}

func TestNormQuantileKnown(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.99, 2.3263478740408408},
		{0.0001, -3.719016485455709},
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); !almostEq(got, c.want, 1e-8) {
			t.Errorf("NormQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("extreme quantiles should be infinite")
	}
}

func TestNormQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999} {
		if got := NormCDF(NormQuantile(p)); !almostEq(got, p, 1e-10) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestTQuantileKnown(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		p    float64
		df   int
		want float64
		tol  float64
	}{
		{0.975, 1, 12.7062047364, 1e-6},
		{0.975, 2, 4.30265272991, 1e-8},
		{0.975, 10, 2.22813885196, 1e-4},
		{0.975, 99, 1.98421695155, 1e-5},
		{0.95, 30, 1.69726089436, 1e-5},
		{0.5, 42, 0, 1e-12},
	}
	for _, c := range cases {
		if got := TQuantile(c.p, c.df); !almostEq(got, c.want, c.tol) {
			t.Errorf("TQuantile(%v, %d) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []int{1, 2, 5, 30, 99} {
		for _, p := range []float64{0.6, 0.9, 0.975, 0.999} {
			a, b := TQuantile(p, df), TQuantile(1-p, df)
			if !almostEq(a, -b, 1e-9*math.Max(1, math.Abs(a))) {
				t.Errorf("asymmetry df=%d p=%v: %v vs %v", df, p, a, b)
			}
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 2*x
	}
	r := LinearFit(xs, ys)
	if !almostEq(r.Slope, 2, 1e-12) || !almostEq(r.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", r)
	}
	if !almostEq(r.R2, 1, 1e-12) || !almostEq(r.ResidualStd, 0, 1e-9) {
		t.Fatalf("perfect fit should have R2=1: %+v", r)
	}
	if !r.ContainsIdeal() == (r.SlopeCI95[0] <= 1 && 1 <= r.SlopeCI95[1] && r.InterceptCI95[0] <= 0 && 0 <= r.InterceptCI95[1]) {
		t.Fatal("ContainsIdeal inconsistent")
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 101
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = 0.5 + 1.5*xs[i] + rng.NormFloat64()*0.2
	}
	r := LinearFit(xs, ys)
	if math.Abs(r.Slope-1.5) > 0.05 || math.Abs(r.Intercept-0.5) > 0.3 {
		t.Fatalf("fit off: %+v", r)
	}
	if r.SlopeCI95[0] >= r.Slope || r.SlopeCI95[1] <= r.Slope {
		t.Fatal("CI does not bracket the estimate")
	}
	// True slope should (almost surely at this noise level) be inside CI.
	if r.SlopeCI95[0] > 1.5 || r.SlopeCI95[1] < 1.5 {
		t.Fatalf("true slope outside CI: %+v", r.SlopeCI95)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	r := LinearFit([]float64{1, 2}, []float64{1, 2})
	if !math.IsNaN(r.Slope) {
		t.Fatal("n<3 should give NaN slope")
	}
	r = LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !math.IsNaN(r.Slope) {
		t.Fatal("constant x should give NaN slope")
	}
}

func TestSlopeWorstCaseDistance(t *testing.T) {
	r := Regression{SlopeCI95: [2]float64{0.98, 1.01}}
	if got := r.SlopeWorstCaseDistance(); !almostEq(got, 0.02, 1e-12) {
		t.Fatalf("distance = %v, want 0.02", got)
	}
	r = Regression{SlopeCI95: [2]float64{1.0, 1.2}}
	if got := r.SlopeWorstCaseDistance(); !almostEq(got, 0.2, 1e-12) {
		t.Fatalf("distance = %v, want 0.2", got)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
}

func BenchmarkPearson(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 10000)
	ys := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = xs[i] + 0.01*rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Pearson(xs, ys)
	}
}
