package artifact

import (
	"bytes"
	"testing"

	"climcompress/internal/blob"
)

// TestMemcacheHitMissAccounting pins the Stats contract of the in-process
// byte cache: the first Get of a small record is a disk hit, repeat Gets
// are memory hits, Hits counts both kinds, and invalidation (Put, Remove)
// sends the next Get back to disk.
func TestMemcacheHitMissAccounting(t *testing.T) {
	s := Open(t.TempDir())
	small := NewKey("test").Str("small").ID()
	big := NewKey("test").Str("big").ID()
	s.Put(small, []byte("tiny record"))
	s.Put(big, make([]byte, memRecordLimit+1))

	assert := func(step string, hits, memHits, misses int64) {
		t.Helper()
		st := s.Stats()
		if st.Hits != hits || st.MemHits != memHits || st.Misses != misses {
			t.Fatalf("%s: hits=%d memHits=%d misses=%d, want %d/%d/%d",
				step, st.Hits, st.MemHits, st.Misses, hits, memHits, misses)
		}
	}

	if _, ok := s.Get(small); !ok {
		t.Fatal("small record missing")
	}
	assert("first get (disk)", 1, 0, 0)
	for i := 0; i < 3; i++ {
		p, ok := s.Get(small)
		if !ok || string(p) != "tiny record" {
			t.Fatalf("memory hit %d returned %q, %v", i, p, ok)
		}
	}
	assert("repeat gets (memory)", 4, 3, 0)

	// Records over the size limit never enter the memory cache.
	for i := 0; i < 2; i++ {
		if _, ok := s.Get(big); !ok {
			t.Fatal("big record missing")
		}
	}
	assert("big record (always disk)", 6, 3, 0)

	// Put invalidates: the next Get re-reads from disk, later ones from
	// memory again.
	s.Put(small, []byte("tiny record"))
	if _, ok := s.Get(small); !ok {
		t.Fatal("record lost after Put")
	}
	assert("get after put (disk)", 7, 3, 0)

	// Remove invalidates both layers.
	s.Remove(small)
	if _, ok := s.Get(small); ok {
		t.Fatal("removed record still readable")
	}
	assert("get after remove (miss)", 7, 3, 1)

	// A nil store stays inert.
	var nils *Store
	if _, ok := nils.Get(small); ok {
		t.Fatal("nil store returned a hit")
	}
}

// TestMemcacheEviction pins the byte budget: inserting past the limit
// evicts the least-recently-used entries and counts them.
func TestMemcacheEviction(t *testing.T) {
	m := newMemcache(3000)
	ids := make([]ID, 4)
	for i := range ids {
		ids[i] = NewKey("evict").Int(i).ID()
	}
	payload := make([]byte, 1000)
	evicted := 0
	for _, id := range ids {
		evicted += m.add(id, payload)
	}
	if evicted != 1 {
		t.Fatalf("evicted %d entries, want 1", evicted)
	}
	if _, ok := m.get(ids[0]); ok {
		t.Fatal("least-recently-used entry survived")
	}
	for _, id := range ids[1:] {
		if _, ok := m.get(id); !ok {
			t.Fatalf("entry %s evicted prematurely", id)
		}
	}
	// Touching an entry protects it from the next eviction round.
	m.get(ids[1])
	m.add(NewKey("evict").Int(99).ID(), payload)
	if _, ok := m.get(ids[1]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := m.get(ids[2]); ok {
		t.Fatal("LRU entry survived second eviction")
	}
}

// TestGetBlobRoundTrip pins the v2 zero-copy read path: a blob-framed
// record comes back as a validated view over the stored bytes, and v1 or
// damaged payloads degrade to a miss.
func TestGetBlobRoundTrip(t *testing.T) {
	s := Open(t.TempDir())
	w := blob.GetWriter()
	w.AddF64s([]float64{1.5, -2.25, 3.75})
	payload := w.AppendTo(nil)
	blob.PutWriter(w)
	id := NewKey("test").Str("blobrec").ID()
	s.Put(id, payload)

	b, ok := s.GetBlob(id)
	if !ok {
		t.Fatal("GetBlob missed a stored v2 record")
	}
	v, err := b.F64(0)
	if err != nil || v.Len() != 3 || v.At(1) != -2.25 {
		t.Fatalf("blob view wrong: err %v len %d", err, v.Len())
	}

	// A v1-style (non-blob) payload is a miss, not an error.
	var e Enc
	e.Uint(7).Float(1.5)
	v1 := NewKey("test").Str("v1rec").ID()
	s.Put(v1, e.Bytes())
	if _, ok := s.GetBlob(v1); ok {
		t.Fatal("GetBlob accepted a v1 record")
	}
	// Raw Get still serves it: the two read paths coexist.
	if p, ok := s.Get(v1); !ok || !bytes.Equal(p, e.Bytes()) {
		t.Fatal("v1 record unreadable through Get")
	}
	if _, ok := s.GetBlob(NewKey("test").Str("absent").ID()); ok {
		t.Fatal("GetBlob hit an absent record")
	}
}
