// Typed payload encoding for artifact records. Every value is written with
// a one-byte type tag (and a length prefix for vectors), so a decoder
// reading a payload against the wrong schema fails deterministically
// instead of misinterpreting bytes. Floats round-trip by exact bit pattern:
// a cached verification quantity must compare bit-identical to the freshly
// computed one.

package artifact

import (
	"encoding/binary"
	"errors"
	"math"
)

// Value type tags.
const (
	tagUint  byte = 'U'
	tagFloat byte = 'F'
	tagBool  byte = 'B'
	tagStr   byte = 'S'
	tagF64s  byte = 'V'
	tagF32s  byte = 'v'
)

// ErrRecord is returned (via Dec.Err) for any malformed record payload.
var ErrRecord = errors.New("artifact: malformed record")

// Enc builds a record payload.
type Enc struct {
	b []byte
}

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.b }

func (e *Enc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.b = append(e.b, b[:]...)
}

// Uint appends an unsigned integer.
func (e *Enc) Uint(v uint64) *Enc {
	e.b = append(e.b, tagUint)
	e.u64(v)
	return e
}

// Int appends a signed integer.
func (e *Enc) Int(v int) *Enc { return e.Uint(uint64(int64(v))) }

// Float appends a float64 by bit pattern.
func (e *Enc) Float(v float64) *Enc {
	e.b = append(e.b, tagFloat)
	e.u64(math.Float64bits(v))
	return e
}

// Bool appends a boolean.
func (e *Enc) Bool(v bool) *Enc {
	e.b = append(e.b, tagBool)
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
	return e
}

// Str appends a string.
func (e *Enc) Str(s string) *Enc {
	e.b = append(e.b, tagStr)
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
	return e
}

// Floats appends a float64 vector.
func (e *Enc) Floats(v []float64) *Enc {
	e.b = append(e.b, tagF64s)
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(math.Float64bits(x))
	}
	return e
}

// Floats32 appends a float32 vector (member field data).
func (e *Enc) Floats32(v []float32) *Enc {
	e.b = append(e.b, tagF32s)
	e.u64(uint64(len(v)))
	var b [4]byte
	for _, x := range v {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(x))
		e.b = append(e.b, b[:]...)
	}
	return e
}

// Dec reads a record payload back. All reads after the first error return
// zero values; callers check Err once at the end. Length prefixes are
// validated against the remaining payload before any allocation, so a
// corrupt record can neither panic nor balloon memory.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{b: payload} }

// Err returns the first decode error (nil for a clean read). Decoders that
// finished with trailing bytes are also malformed; call Close to check.
func (d *Dec) Err() error { return d.err }

// Close marks trailing unread bytes as an error and returns Err.
func (d *Dec) Close() error {
	if d.err == nil && d.off != len(d.b) {
		d.err = ErrRecord
	}
	return d.err
}

func (d *Dec) fail() {
	if d.err == nil {
		d.err = ErrRecord
	}
}

func (d *Dec) tag(want byte) bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.b) || d.b[d.off] != want {
		d.fail()
		return false
	}
	d.off++
	return true
}

func (d *Dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// Uint reads an unsigned integer.
func (d *Dec) Uint() uint64 {
	if !d.tag(tagUint) {
		return 0
	}
	return d.u64()
}

// Int reads a signed integer.
func (d *Dec) Int() int { return int(int64(d.Uint())) }

// Float reads a float64.
func (d *Dec) Float() float64 {
	if !d.tag(tagFloat) {
		return 0
	}
	return math.Float64frombits(d.u64())
}

// Bool reads a boolean.
func (d *Dec) Bool() bool {
	if !d.tag(tagBool) {
		return false
	}
	if d.off >= len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.off]
	d.off++
	if v > 1 {
		d.fail()
		return false
	}
	return v == 1
}

// Str reads a string.
func (d *Dec) Str() string {
	if !d.tag(tagStr) {
		return ""
	}
	n := d.u64()
	if d.err != nil || n > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Floats reads a float64 vector.
func (d *Dec) Floats() []float64 {
	if !d.tag(tagF64s) {
		return nil
	}
	n := d.u64()
	// Divide, don't multiply: n*8 overflows uint64 for hostile lengths.
	if d.err != nil || n > uint64(len(d.b)-d.off)/8 {
		d.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return out
}

// Floats32Into reads a float32 vector into dst when dst has the exact
// decoded length (avoiding an allocation on pooled buffers); otherwise it
// allocates. A length mismatch against want >= 0 is an error.
func (d *Dec) Floats32Into(dst []float32, want int) []float32 {
	if !d.tag(tagF32s) {
		return nil
	}
	n := d.u64()
	if d.err != nil || n > uint64(len(d.b)-d.off)/4 {
		d.fail()
		return nil
	}
	if want >= 0 && n != uint64(want) {
		d.fail()
		return nil
	}
	if uint64(len(dst)) != n {
		dst = make([]float32, n)
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return dst
}

// Floats32 reads a float32 vector.
func (d *Dec) Floats32() []float32 { return d.Floats32Into(nil, -1) }
