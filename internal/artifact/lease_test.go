package artifact

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// chtimes backdates a file's mtime for lease-aging tests.
func chtimes(path string, to time.Time) error {
	return os.Chtimes(path, to, to)
}

func TestPutExclusiveSingleWinner(t *testing.T) {
	s := Open(t.TempDir())
	id := NewKey("lease").Str("unit-1").ID()
	if !s.PutExclusive(id, []byte("owner-a")) {
		t.Fatal("first exclusive put lost")
	}
	if s.PutExclusive(id, []byte("owner-b")) {
		t.Fatal("second exclusive put won over an existing record")
	}
	got, ok := s.Get(id)
	if !ok || string(got) != "owner-a" {
		t.Fatalf("claimed payload overwritten: %q ok=%v", got, ok)
	}
	st := s.Stats()
	if st.Claims != 1 || st.ClaimLosses != 1 {
		t.Fatalf("claim counters %+v", st)
	}
}

func TestPutExclusiveConcurrentClaimants(t *testing.T) {
	s := Open(t.TempDir())
	id := NewKey("lease").Str("contended").ID()
	const claimants = 16
	wins := make([]bool, claimants)
	var wg sync.WaitGroup
	for i := 0; i < claimants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins[i] = s.PutExclusive(id, []byte(fmt.Sprintf("owner-%d", i)))
		}(i)
	}
	wg.Wait()
	won := 0
	for _, w := range wins {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d claimants won; exactly one must", won)
	}
}

func TestPutExclusiveAfterRemove(t *testing.T) {
	s := Open(t.TempDir())
	id := NewKey("lease").Str("recycled").ID()
	if !s.PutExclusive(id, []byte("a")) {
		t.Fatal("claim")
	}
	s.Remove(id)
	if !s.PutExclusive(id, []byte("b")) {
		t.Fatal("reclaim after release")
	}
}

func TestPutExclusiveNilAndInvalid(t *testing.T) {
	var nilStore *Store
	if nilStore.PutExclusive(NewKey("x").ID(), nil) {
		t.Fatal("nil store claimed")
	}
	if nilStore.Touch(NewKey("x").ID()) {
		t.Fatal("nil store touched")
	}
	if _, ok := nilStore.Mtime(NewKey("x").ID()); ok {
		t.Fatal("nil store has mtimes")
	}
	s := Open(t.TempDir())
	if s.PutExclusive("not-a-key", []byte("x")) {
		t.Fatal("invalid id claimed")
	}
}

func TestMtimeAndTouch(t *testing.T) {
	s := Open(t.TempDir())
	id := NewKey("lease").Str("aging").ID()
	if _, ok := s.Mtime(id); ok {
		t.Fatal("mtime of absent record")
	}
	s.Put(id, []byte("x"))
	m0, ok := s.Mtime(id)
	if !ok {
		t.Fatal("no mtime after put")
	}
	// Backdate, then Touch must bring the record back to the present.
	past := time.Now().Add(-time.Hour)
	if err := chtimes(s.path(id), past); err != nil {
		t.Fatal(err)
	}
	m1, _ := s.Mtime(id)
	if !m1.Before(m0) {
		t.Fatal("backdating failed")
	}
	if !s.Touch(id) {
		t.Fatal("touch failed")
	}
	m2, _ := s.Mtime(id)
	if m2.Before(m0.Add(-time.Minute)) {
		t.Fatalf("touch did not refresh mtime: %v", m2)
	}
	if s.Touch(NewKey("lease").Str("absent").ID()) {
		t.Fatal("touched an absent record")
	}
}

// TestTrimGraceProtectsYoungRecords is the regression test for the
// Trim-vs-concurrent-Put interaction: records younger than the grace window
// — e.g. a lease claimed by a shard an instant ago — must survive any Trim,
// no matter how far over budget the store is.
func TestTrimGraceProtectsYoungRecords(t *testing.T) {
	s := Open(t.TempDir())
	young := NewKey("test").Str("young").ID()
	old := NewKey("test").Str("old").ID()
	payload := make([]byte, 1000)
	s.Put(old, payload)
	s.Put(young, payload)
	past := time.Now().Add(-time.Hour)
	if err := chtimes(s.path(old), past); err != nil {
		t.Fatal(err)
	}
	// Budget of one byte: without a grace window everything would go.
	if n := s.Trim(1); n != 1 {
		t.Fatalf("Trim removed %d records, want only the old one", n)
	}
	if _, ok := s.Get(old); ok {
		t.Fatal("expired record survived")
	}
	if _, ok := s.Get(young); !ok {
		t.Fatal("young record evicted inside the grace window")
	}
	// With the window explicitly zeroed the young record is fair game.
	if n := s.TrimWithGrace(1, 0); n != 1 {
		t.Fatalf("graceless trim removed %d records, want 1", n)
	}
	if _, ok := s.Get(young); ok {
		t.Fatal("young record survived a graceless trim")
	}
}

// TestTrimConcurrentPut hammers Put and Trim concurrently: every record
// written during the storm is young, so none may be lost, and nothing may
// crash or corrupt. (A corrupt survivor would read as a miss and fail the
// presence check.)
func TestTrimConcurrentPut(t *testing.T) {
	s := Open(t.TempDir())
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Trim(1) // tiny budget: would evict everything but for the grace window
			}
		}
	}()
	ids := make([][]ID, writers)
	for w := 0; w < writers; w++ {
		ids[w] = make([]ID, perWriter)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := NewKey("storm").Int(w).Int(i).ID()
				ids[w][i] = id
				s.Put(id, []byte(fmt.Sprintf("payload %d/%d", w, i)))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let the storm overlap for a moment, then stop the trimmer.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	for w := 0; w < writers; w++ {
		for i, id := range ids[w] {
			if id == "" {
				continue
			}
			if _, ok := s.Get(id); !ok {
				t.Fatalf("young record %d/%d lost to a concurrent Trim", w, i)
			}
		}
	}
}
