package artifact

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilStoreSafe(t *testing.T) {
	var s *Store
	if s.Enabled() {
		t.Fatal("nil store enabled")
	}
	if _, ok := s.Get("deadbeef"); ok {
		t.Fatal("nil store hit")
	}
	s.Put("deadbeef", []byte("x")) // must not panic
	s.Remove("deadbeef")
	if s.Trim(1) != 0 {
		t.Fatal("nil store trimmed")
	}
	if s.L96Dir() != "" {
		t.Fatal("nil store has an l96 dir")
	}
	if got := Open(""); got != nil {
		t.Fatal("Open(\"\") should be the disabled store")
	}
}

func TestRoundTrip(t *testing.T) {
	s := Open(t.TempDir())
	id := NewKey("test").Str("hello").Uint(42).ID()
	if _, ok := s.Get(id); ok {
		t.Fatal("hit before put")
	}
	payload := []byte("the payload")
	s.Put(id, payload)
	got, ok := s.Get(id)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip: got %q ok=%v", got, ok)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	s.Remove(id)
	if _, ok := s.Get(id); ok {
		t.Fatal("hit after remove")
	}
}

func TestEmptyPayload(t *testing.T) {
	s := Open(t.TempDir())
	id := NewKey("test").Str("empty").ID()
	s.Put(id, nil)
	got, ok := s.Get(id)
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload: got %v ok=%v", got, ok)
	}
}

func TestKeyDistinct(t *testing.T) {
	// Field boundaries must matter: ("ab", "c") != ("a", "bc"), and the
	// kind partitions the space.
	ids := map[ID]string{}
	add := func(label string, id ID) {
		if prev, dup := ids[id]; dup {
			t.Fatalf("key collision: %s == %s", label, prev)
		}
		ids[id] = label
	}
	add("ab|c", NewKey("k").Str("ab").Str("c").ID())
	add("a|bc", NewKey("k").Str("a").Str("bc").ID())
	add("kind2", NewKey("k2").Str("ab").Str("c").ID())
	add("uint", NewKey("k").Uint(0x6162).Str("c").ID())
	add("float0", NewKey("k").Float(0).ID())
	add("float-0", NewKey("k").Float(mustNeg0()).ID())
	add("bool-t", NewKey("k").Bool(true).ID())
	add("bool-f", NewKey("k").Bool(false).ID())
}

func mustNeg0() float64 {
	z := 0.0
	return -z
}

func TestKeyReusableAfterID(t *testing.T) {
	k := NewKey("k").Str("a")
	id1 := k.ID()
	if id2 := k.ID(); id1 != id2 {
		t.Fatal("ID not idempotent")
	}
	k.Str("b")
	if id3 := k.ID(); id3 == id1 {
		t.Fatal("extending the key did not change the ID")
	}
}

// corrupt loads the object file behind id, applies mutate, writes it back.
func corrupt(t *testing.T, s *Store, id ID, mutate func([]byte) []byte) {
	t.Helper()
	path := s.path(id)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(buf), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionIsAMiss(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"flipped checksum byte", func(b []byte) []byte { b[20] ^= 1; return b }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xff) }},
		{"wrong magic", func(b []byte) []byte { b[0] ^= 1; return b }},
		{"future version", func(b []byte) []byte { b[4]++; return b }},
		{"empty file", func(b []byte) []byte { return nil }},
		{"huge declared length", func(b []byte) []byte { b[8], b[15] = 0xff, 0x7f; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Open(t.TempDir())
			id := NewKey("test").Str(tc.name).ID()
			s.Put(id, []byte("payload payload payload"))
			corrupt(t, s, id, tc.mutate)
			if got, ok := s.Get(id); ok {
				t.Fatalf("corrupt artifact served as a hit: %q", got)
			}
			if s.Stats().BadReads != 1 {
				t.Fatalf("bad read not counted: %+v", s.Stats())
			}
		})
	}
}

func TestInvalidIDRejected(t *testing.T) {
	s := Open(t.TempDir())
	for _, id := range []ID{"", "short", ID("../../../../etc/passwd0000000000000000000000000000000000000000000000"), ID(string(make([]byte, 64)))} {
		s.Put(id, []byte("x"))
		if _, ok := s.Get(id); ok {
			t.Fatalf("invalid id %q accepted", id)
		}
	}
	// Nothing may have been written anywhere under the root.
	n := 0
	filepath.Walk(s.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			n++
		}
		return nil
	})
	if n != 0 {
		t.Fatalf("%d files written for invalid ids", n)
	}
}

func TestTrimEvictsOldestFirst(t *testing.T) {
	s := Open(t.TempDir())
	old := NewKey("test").Str("old").ID()
	neu := NewKey("test").Str("new").ID()
	payload := make([]byte, 1000)
	s.Put(old, payload)
	s.Put(neu, payload)
	// Backdate the first object so mtime ordering is unambiguous.
	past := time.Now().Add(-time.Hour)
	os.Chtimes(s.path(old), past, past)

	if n := s.Trim(0); n != 0 {
		t.Fatalf("Trim(0) removed %d", n)
	}
	if n := s.Trim(1 << 30); n != 0 {
		t.Fatalf("Trim(huge) removed %d", n)
	}
	if n := s.Trim(int64(headerSize + 1000 + 10)); n != 1 {
		t.Fatalf("Trim removed %d files, want 1", n)
	}
	if _, ok := s.Get(old); ok {
		t.Fatal("oldest artifact survived trim")
	}
	if _, ok := s.Get(neu); !ok {
		t.Fatal("newest artifact evicted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var e Enc
	e.Uint(7).Int(-3).Float(3.5).Bool(true).Bool(false).Str("hé").
		Floats([]float64{1, -2.25, 0}).Floats32([]float32{9, -8})
	d := NewDec(e.Bytes())
	if v := d.Uint(); v != 7 {
		t.Fatalf("Uint %d", v)
	}
	if v := d.Int(); v != -3 {
		t.Fatalf("Int %d", v)
	}
	if v := d.Float(); v != 3.5 {
		t.Fatalf("Float %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool")
	}
	if v := d.Str(); v != "hé" {
		t.Fatalf("Str %q", v)
	}
	f := d.Floats()
	if len(f) != 3 || f[1] != -2.25 {
		t.Fatalf("Floats %v", f)
	}
	f32 := d.Floats32()
	if len(f32) != 2 || f32[1] != -8 {
		t.Fatalf("Floats32 %v", f32)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordSchemaMismatch(t *testing.T) {
	var e Enc
	e.Uint(7)
	d := NewDec(e.Bytes())
	if v := d.Float(); v != 0 || d.Err() == nil {
		t.Fatal("wrong-type read must error")
	}
	// All subsequent reads stay zero after the first error.
	if d.Uint() != 0 || d.Str() != "" || d.Floats() != nil {
		t.Fatal("reads after error not zero")
	}
}

func TestRecordTrailingBytes(t *testing.T) {
	var e Enc
	e.Uint(7)
	payload := append(e.Bytes(), 0xaa)
	d := NewDec(payload)
	d.Uint()
	if d.Close() == nil {
		t.Fatal("trailing bytes must fail Close")
	}
}

func TestRecordHugeVectorLength(t *testing.T) {
	// A corrupt length prefix must fail cleanly before allocating.
	var e Enc
	e.Floats([]float64{1})
	payload := e.Bytes()
	payload[1] = 0xff // length LSB
	payload[8] = 0x7f // length MSB: absurd
	d := NewDec(payload)
	if v := d.Floats(); v != nil || d.Err() == nil {
		t.Fatal("huge vector length must error")
	}
}

func TestFloats32Into(t *testing.T) {
	var e Enc
	e.Floats32([]float32{1, 2, 3})
	d := NewDec(e.Bytes())
	dst := make([]float32, 3)
	got := d.Floats32Into(dst, 3)
	if &got[0] != &dst[0] {
		t.Fatal("exact-length dst not reused")
	}
	if got[2] != 3 {
		t.Fatalf("decoded %v", got)
	}
	// Want mismatch is an error.
	d2 := NewDec(e.Bytes())
	if v := d2.Floats32Into(nil, 5); v != nil || d2.Err() == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	// The Stats struct is the wire schema of climatebenchd's GET /stats:
	// every counter — including the PR 5 claim counters — must survive a
	// JSON round-trip under its documented key.
	want := Stats{Hits: 1, Misses: 2, Puts: 3, BadReads: 4, Claims: 5, ClaimLosses: 6}
	buf, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"hits", "misses", "puts", "bad_reads", "claims", "claim_losses"} {
		if !bytes.Contains(buf, []byte(`"`+key+`"`)) {
			t.Fatalf("marshalled stats %s lack key %q", buf, key)
		}
	}
	var got Stats
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round-trip: got %+v, want %+v", got, want)
	}
}

func TestStatsSnapshotUnderTraffic(t *testing.T) {
	// Stats must stay callable (and individually exact once quiescent)
	// while other goroutines hammer the counters.
	dir := t.TempDir()
	s := Open(dir)
	var wg sync.WaitGroup
	const writers, rounds = 4, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := NewKey("stats-traffic").Int(w).Int(i).ID()
				s.Get(id) // miss
				s.Put(id, []byte("x"))
				s.Get(id) // hit
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		_ = s.Stats() // must not race or tear
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits != writers*rounds || st.Misses != writers*rounds || st.Puts != writers*rounds {
		t.Fatalf("quiescent stats %+v, want %d of each of hits/misses/puts", st, writers*rounds)
	}
	if st.String() == "" || !strings.Contains(st.String(), "claims") {
		t.Fatalf("Stats.String() = %q lacks claim counters", st.String())
	}
}
