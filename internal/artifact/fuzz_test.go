package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreGet writes arbitrary bytes where an object file would live and
// calls Get. The decoder must never panic and may only return either a miss
// or the exact payload a legitimate Put would have produced for those bytes.
func FuzzStoreGet(f *testing.F) {
	s := Open(f.TempDir())
	id := NewKey("fuzz").Str("probe").ID()
	// Seed with a valid artifact, its prefixes, and a few mutations.
	valid := buildValid([]byte("seed payload"))
	f.Add(valid)
	f.Add(valid[:headerSize])
	f.Add(valid[:headerSize-1])
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[0] ^= 0xff
	f.Add(mut)
	f.Fuzz(func(t *testing.T, raw []byte) {
		path := s.path(id)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Skip(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Skip(err)
		}
		// The file was swapped out-of-band (bypassing Put, which would
		// invalidate); drop the in-process entry so Get reads the new bytes.
		s.mem.remove(id)
		payload, ok := s.Get(id)
		if !ok {
			return
		}
		// A hit must mean the bytes were a well-formed artifact whose
		// payload re-encodes to exactly the input file.
		if !bytes.Equal(buildValid(payload), raw) {
			t.Fatalf("hit on malformed file: payload %q from %d raw bytes", payload, len(raw))
		}
	})
}

// buildValid encodes payload into the on-disk artifact format (duplicating
// Put's header layout so the fuzz oracle is independent of Put's I/O path).
func buildValid(payload []byte) []byte {
	s := Open(os.TempDir() + "/artifact-oracle")
	id := NewKey("oracle").Bytes(payload).ID()
	s.Put(id, payload)
	defer os.RemoveAll(s.Dir())
	raw, err := os.ReadFile(s.path(id))
	if err != nil {
		panic(err)
	}
	return raw
}

// FuzzDec drives the record decoder with arbitrary payloads under a fixed
// read schedule. It must never panic; any malformed input must surface via
// Err/Close rather than a wrong silent zero.
func FuzzDec(f *testing.F) {
	var e Enc
	e.Uint(1).Int(-2).Float(3.5).Bool(true).Str("s").
		Floats([]float64{1, 2}).Floats32([]float32{3})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{tagF64s, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, raw []byte) {
		d := NewDec(raw)
		d.Uint()
		d.Int()
		d.Float()
		d.Bool()
		d.Str()
		d.Floats()
		d.Floats32()
		d.Floats32Into(make([]float32, 4), 4)
		err := d.Close()
		// Re-decoding must be deterministic.
		d2 := NewDec(raw)
		d2.Uint()
		d2.Int()
		d2.Float()
		d2.Bool()
		d2.Str()
		d2.Floats()
		d2.Floats32()
		d2.Floats32Into(make([]float32, 4), 4)
		if (err == nil) != (d2.Close() == nil) {
			t.Fatal("nondeterministic decode")
		}
	})
}
