package artifact

import (
	"container/list"
	"sync"
)

const (
	// memRecordLimit bounds which records the in-process cache will hold:
	// small metadata records (score vectors, outcomes, error-matrix cells)
	// are re-read on every warm-path hit and dominate Get traffic, while
	// member fields are megabytes and read once. 4 KiB cleanly separates
	// the two populations.
	memRecordLimit = 4 << 10

	// DefaultMemCacheBytes is the total payload budget of the in-process
	// cache (ignoring map/list overhead): ~1k small records.
	DefaultMemCacheBytes = 4 << 20
)

// memcache is a bounded LRU over small record payloads, saving the warm
// path a file open, read and SHA-256 verification per hit. Payloads are
// stored and returned by reference: the store is content-addressed (same
// ID ⇒ same bytes), so sharing is safe as long as callers treat Get
// results as read-only — which the zero-copy record API requires anyway.
type memcache struct {
	mu       sync.Mutex
	entries  map[ID]*list.Element
	order    *list.List // front = most recent
	bytes    int
	maxBytes int
}

type mementry struct {
	id      ID
	payload []byte
}

func newMemcache(maxBytes int) *memcache {
	if maxBytes <= 0 {
		return nil
	}
	return &memcache{
		entries:  make(map[ID]*list.Element),
		order:    list.New(),
		maxBytes: maxBytes,
	}
}

// get returns the cached payload by reference, refreshing recency. All
// methods are safe on a nil *memcache (cache disabled).
func (m *memcache) get(id ID) ([]byte, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[id]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*mementry).payload, true
}

// add inserts a payload (by reference), evicting least-recently-used
// entries to stay under the byte budget. Oversized payloads are ignored.
// Returns the number of entries evicted.
func (m *memcache) add(id ID, payload []byte) int {
	if m == nil || len(payload) > memRecordLimit || len(payload) > m.maxBytes {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[id]; ok {
		m.order.MoveToFront(el)
		return 0
	}
	m.entries[id] = m.order.PushFront(&mementry{id: id, payload: payload})
	m.bytes += len(payload)
	evicted := 0
	for m.bytes > m.maxBytes {
		el := m.order.Back()
		if el == nil {
			break
		}
		e := m.order.Remove(el).(*mementry)
		delete(m.entries, e.id)
		m.bytes -= len(e.payload)
		evicted++
	}
	return evicted
}

// remove drops the entry for id, if cached. Put, PutExclusive and Remove
// invalidate through here so the cache never outlives an explicit
// replacement or invalidation (content-addressing makes staleness benign,
// but Remove is the invalidation primitive and must be honoured).
func (m *memcache) remove(id ID) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[id]; ok {
		e := m.order.Remove(el).(*mementry)
		delete(m.entries, e.id)
		m.bytes -= len(e.payload)
	}
}
