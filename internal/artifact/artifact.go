// Package artifact is the persistent content-addressed store behind
// incremental experiment re-runs: every expensive intermediate of the
// pipeline — generated member fields, compressed streams, per-member
// verification statistics and per-(variable, variant) verification outcomes
// — can be written once under a SHA-256 key derived from the canonical
// encoding of everything that influences its value, and any later run whose
// inputs hash to the same key reads the artifact back instead of recomputing
// it.
//
// The store is deliberately dumb: keys in, byte payloads out. Key
// derivation (which config fields matter) and payload schemas live with the
// callers; this package owns the on-disk format, integrity checking and
// eviction. A corrupt, truncated or foreign file is always treated as a
// cache miss — never an error, never a wrong result — so a damaged cache
// degrades to plain recomputation, exactly like the Lorenz-96 cache it
// generalizes.
//
// On-disk layout under the root directory:
//
//	objects/<k0><k1>/<key>.art   one artifact per file (see file format below)
//	l96/                          the chaotic-core integration cache (managed
//	                              by internal/l96; colocated so one -cachedir
//	                              flag governs all persistent state)
//
// File format (all integers little-endian):
//
//	magic   u32   "CLMA"
//	version u32   format version; mismatch = miss
//	length  u64   payload byte count
//	sum     [32]  SHA-256 of the payload
//	payload [length]
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

const (
	// Magic identifies an artifact file.
	Magic uint32 = 0x434c4d41 // "CLMA"
	// Version is the on-disk format version. Bumping it invalidates every
	// existing artifact (they all decode as misses).
	Version uint32 = 1

	headerSize = 4 + 4 + 8 + 32
)

// ID is the hex form of an artifact's SHA-256 key.
type ID string

// Stats counts store traffic since Open. BadReads counts files that existed
// but failed validation (corruption, truncation, version skew). Claims and
// ClaimLosses count PutExclusive outcomes: cross-process coordination
// (internal/shard's lease protocol) claims records exclusively, and a lost
// claim means another process holds the record. MemHits counts the subset
// of Hits served from the in-process byte cache (no file read, no checksum
// pass); MemEvictions counts entries pushed out by its byte budget. The
// JSON tags are a wire contract: climatebenchd's GET /stats serves this
// struct verbatim (new fields are additive).
type Stats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Puts         int64 `json:"puts"`
	BadReads     int64 `json:"bad_reads"`
	Claims       int64 `json:"claims"`
	ClaimLosses  int64 `json:"claim_losses"`
	MemHits      int64 `json:"mem_hits"`
	MemEvictions int64 `json:"mem_evictions"`
}

// String renders the snapshot as one human-readable line (the payload of
// climatebench -cachestats).
func (st Stats) String() string {
	return fmt.Sprintf("%d hits (%d from memory), %d misses, %d puts, %d bad reads, %d claims (%d lost)",
		st.Hits, st.MemHits, st.Misses, st.Puts, st.BadReads, st.Claims, st.ClaimLosses)
}

// Store is a content-addressed artifact store rooted at one directory. All
// methods are safe on a nil *Store (every Get misses, every Put is dropped),
// so callers thread a possibly-disabled cache without branching.
type Store struct {
	dir string
	mem *memcache

	hits, misses, puts, badReads atomic.Int64
	claims, claimLosses          atomic.Int64
	memHits, memEvictions        atomic.Int64
}

// Open returns a store rooted at dir, creating the directory lazily on the
// first Put. An empty dir returns nil: the disabled store. Records under
// 4 KiB are additionally cached in process (DefaultMemCacheBytes budget)
// so repeat Gets skip the file read and checksum pass.
func Open(dir string) *Store {
	if dir == "" {
		return nil
	}
	return &Store{dir: dir, mem: newMemcache(DefaultMemCacheBytes)}
}

// Enabled reports whether the store can hold artifacts.
func (s *Store) Enabled() bool { return s != nil && s.dir != "" }

// Dir returns the store root ("" for the disabled store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// L96Dir returns the directory for the chaotic-core integration cache,
// colocated under the store root ("" when disabled, which l96.LoadOrCompute
// treats as cache-off).
func (s *Store) L96Dir() string {
	if !s.Enabled() {
		return ""
	}
	return filepath.Join(s.dir, "l96")
}

// Stats returns a snapshot of the traffic counters. The read is
// snapshot-consistent under brief contention: the counters are re-read
// until two consecutive passes agree, so a served snapshot never pairs a
// pre-increment hit count with a post-increment put count from the same
// racing operation. Under sustained traffic the retry budget runs out and
// the last read wins — each counter is still individually exact.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	read := func() Stats {
		return Stats{
			Hits:         s.hits.Load(),
			Misses:       s.misses.Load(),
			Puts:         s.puts.Load(),
			BadReads:     s.badReads.Load(),
			Claims:       s.claims.Load(),
			ClaimLosses:  s.claimLosses.Load(),
			MemHits:      s.memHits.Load(),
			MemEvictions: s.memEvictions.Load(),
		}
	}
	st := read()
	for attempt := 0; attempt < 4; attempt++ {
		again := read()
		if again == st {
			return st
		}
		st = again
	}
	return st
}

// path maps an ID to its object file, fanning out over 256 subdirectories
// so huge caches do not degenerate into one enormous directory.
func (s *Store) path(id ID) string {
	k := string(id)
	return filepath.Join(s.dir, "objects", k[:2], k+".art")
}

// valid reports whether id looks like a hex SHA-256 (defensive: IDs come
// from Key, but path construction must never escape the store).
func valid(id ID) bool {
	if len(id) != 64 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the payload stored under id. Any failure — absent file,
// truncation, corruption, format skew — is a miss. Small records may be
// served from the in-process cache, in which case the returned slice is
// shared across callers: treat it as read-only.
func (s *Store) Get(id ID) ([]byte, bool) {
	if !s.Enabled() || !valid(id) {
		return nil, false
	}
	if payload, ok := s.mem.get(id); ok {
		s.hits.Add(1)
		s.memHits.Add(1)
		return payload, true
	}
	payload, err := readFile(s.path(id))
	if err != nil {
		if !os.IsNotExist(err) {
			s.badReads.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	if n := s.mem.add(id, payload); n > 0 {
		s.memEvictions.Add(int64(n))
	}
	return payload, true
}

// writeTemp writes a fully framed artifact into a temp file next to path
// and returns the temp name. The caller either renames or links it into
// place and always removes the temp afterwards. Any failure returns "".
func writeTemp(path string, payload []byte) string {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return ""
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*.tmp")
	if err != nil {
		return ""
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[16:], sum[:])
	if _, err := tmp.Write(hdr[:]); err != nil {
		//lint:errdrop best-effort cleanup of an already-failed write; the caller removes the temp file
		tmp.Close()
		os.Remove(tmp.Name())
		return ""
	}
	if _, err := tmp.Write(payload); err != nil {
		//lint:errdrop best-effort cleanup of an already-failed write; the caller removes the temp file
		tmp.Close()
		os.Remove(tmp.Name())
		return ""
	}
	if tmp.Close() != nil {
		os.Remove(tmp.Name())
		return ""
	}
	return tmp.Name()
}

// Put stores payload under id, atomically (temp file + rename) so a crashed
// run never leaves a truncated artifact behind. I/O failures are silently
// dropped: an unwritable cache degrades to plain recomputation.
func (s *Store) Put(id ID, payload []byte) {
	if !s.Enabled() || !valid(id) {
		return
	}
	path := s.path(id)
	tmp := writeTemp(path, payload)
	if tmp == "" {
		return
	}
	defer os.Remove(tmp)
	if os.Rename(tmp, path) == nil {
		s.mem.remove(id)
		s.puts.Add(1)
	}
}

// PutExclusive stores payload under id only if no artifact exists there yet,
// and reports whether this call won. Unlike Put (rename, which silently
// replaces), the publish step is a hard link — an atomic create-exclusive —
// so exactly one of N concurrent claimants across any number of processes
// observes true. This is the claim primitive of the cross-process lease
// protocol (internal/shard): a lease is an exclusive record keyed on the
// work-unit digest.
func (s *Store) PutExclusive(id ID, payload []byte) bool {
	if !s.Enabled() || !valid(id) {
		return false
	}
	path := s.path(id)
	tmp := writeTemp(path, payload)
	if tmp == "" {
		return false
	}
	defer os.Remove(tmp)
	if os.Link(tmp, path) == nil {
		s.mem.remove(id)
		s.claims.Add(1)
		return true
	}
	s.claimLosses.Add(1)
	return false
}

// Mtime returns the modification time of the artifact stored under id. The
// lease protocol ages leases by mtime: a lease older than the TTL is
// presumed to belong to a dead process and may be broken.
func (s *Store) Mtime(id ID) (time.Time, bool) {
	if !s.Enabled() || !valid(id) {
		return time.Time{}, false
	}
	st, err := os.Stat(s.path(id))
	if err != nil {
		return time.Time{}, false
	}
	return st.ModTime(), true
}

// Touch refreshes the artifact's mtime to now, reporting success. A
// long-running lease holder touches its lease periodically so a short TTL
// can coexist with long computations.
func (s *Store) Touch(id ID) bool {
	if !s.Enabled() || !valid(id) {
		return false
	}
	//lint:nondet lease freshness is wall-clock by design; it never influences pipeline output or cache keys
	now := time.Now()
	return os.Chtimes(s.path(id), now, now) == nil
}

// Remove deletes the artifact stored under id, if present. This is the
// invalidation primitive: "codec X changed" is expressed by removing every
// artifact whose key involves X.
func (s *Store) Remove(id ID) {
	if !s.Enabled() || !valid(id) {
		return
	}
	s.mem.remove(id)
	os.Remove(s.path(id))
}

// readFile loads and validates one artifact file.
func readFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:errdrop read side; a Close error cannot lose data and the checksum guards the payload
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("artifact: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != Magic {
		return nil, fmt.Errorf("artifact: bad magic")
	}
	if binary.LittleEndian.Uint32(hdr[4:]) != Version {
		return nil, fmt.Errorf("artifact: version skew")
	}
	length := binary.LittleEndian.Uint64(hdr[8:])
	// The declared length must match the file size exactly: trailing bytes
	// are as suspect as missing ones.
	if length != uint64(st.Size())-headerSize {
		return nil, fmt.Errorf("artifact: declared %d payload bytes in a %d-byte file", length, st.Size())
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, fmt.Errorf("artifact: short payload: %w", err)
	}
	if sum := sha256.Sum256(payload); string(sum[:]) != string(hdr[16:16+32]) {
		return nil, fmt.Errorf("artifact: checksum mismatch")
	}
	return payload, nil
}

// DefaultTrimGrace is the eviction grace window applied by Trim: an
// artifact younger than this is never evicted, no matter how far the tree
// overshoots maxBytes. Without a grace window, Trim racing a concurrent run
// (same process or another one) can evict a record — or a just-claimed
// shard lease — between its Put and its first read, silently losing
// coordination state mid-run.
const DefaultTrimGrace = 5 * time.Minute

// Trim evicts least-recently-modified artifacts until the objects tree fits
// in maxBytes (payload + header sizes), never touching artifacts younger
// than DefaultTrimGrace. maxBytes <= 0 is a no-op. Returns the number of
// files removed.
func (s *Store) Trim(maxBytes int64) int {
	return s.TrimWithGrace(maxBytes, DefaultTrimGrace)
}

// TrimWithGrace is Trim with an explicit grace window (0 evicts regardless
// of age; tests and offline janitors may want that, live runs never do).
func (s *Store) TrimWithGrace(maxBytes int64, grace time.Duration) int {
	if !s.Enabled() || maxBytes <= 0 {
		return 0
	}
	type obj struct {
		path  string
		size  int64
		mtime int64
	}
	var objs []obj
	var total int64
	//lint:nondet the grace cutoff is an eviction policy input only; it never influences results or cache keys
	cutoff := time.Now().Add(-grace).UnixNano()
	root := filepath.Join(s.dir, "objects")
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".art" {
			return nil
		}
		total += info.Size()
		if m := info.ModTime().UnixNano(); m < cutoff {
			objs = append(objs, obj{path, info.Size(), m})
		}
		return nil
	})
	if total <= maxBytes {
		return 0
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].mtime < objs[j].mtime })
	removed := 0
	for _, o := range objs {
		if total <= maxBytes {
			break
		}
		if os.Remove(o.path) == nil {
			// The object filename is the ID; evict any in-process copy so a
			// trimmed record reads as a miss, not a stale memory hit.
			s.mem.remove(ID(strings.TrimSuffix(filepath.Base(o.path), ".art")))
			total -= o.size
			removed++
		}
	}
	return removed
}

// Usage reports the on-disk footprint of the objects tree: artifact count
// and total bytes (payload + framing). It complements the per-process Stats
// counters with cross-process state — any process can probe a shared cache
// directory without having contributed to it.
func (s *Store) Usage() (files int, bytes int64) {
	if !s.Enabled() {
		return 0, 0
	}
	root := filepath.Join(s.dir, "objects")
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".art" {
			return nil
		}
		files++
		bytes += info.Size()
		return nil
	})
	return files, bytes
}

// ---------------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------------

// Key accumulates the canonical encoding of an artifact's inputs into a
// SHA-256. Every field is written with a type tag and (for variable-length
// values) a length prefix, so distinct input sequences can never collide by
// concatenation ambiguity. The zero Key is not usable; start with NewKey.
type Key struct {
	h hash.Hash
}

// NewKey starts a key of the given kind ("field", "stream", "ensstats",
// "verify", ...). The kind partitions the key space so identical parameter
// folds of different artifact classes never alias.
func NewKey(kind string) *Key {
	k := &Key{h: sha256.New()}
	return k.Str(kind)
}

func (k *Key) tagged(tag byte, data []byte) *Key {
	var pre [9]byte
	pre[0] = tag
	binary.LittleEndian.PutUint64(pre[1:], uint64(len(data)))
	k.h.Write(pre[:])
	k.h.Write(data)
	return k
}

// Str folds a string field.
func (k *Key) Str(s string) *Key { return k.tagged('s', []byte(s)) }

// Uint folds an unsigned integer field.
func (k *Key) Uint(v uint64) *Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return k.tagged('u', b[:])
}

// Int folds a signed integer field.
func (k *Key) Int(v int) *Key { return k.Uint(uint64(int64(v))) }

// Float folds a float64 field by exact bit pattern (NaNs and signed zeros
// are distinct inputs and hash distinctly).
func (k *Key) Float(v float64) *Key { return k.Uint(math.Float64bits(v)) }

// Bool folds a boolean field.
func (k *Key) Bool(v bool) *Key {
	if v {
		return k.tagged('b', []byte{1})
	}
	return k.tagged('b', []byte{0})
}

// Bytes folds a raw byte field (e.g. a content digest of input data).
func (k *Key) Bytes(p []byte) *Key { return k.tagged('r', p) }

// ID finalizes the key. The Key remains usable; further folds derive
// longer keys with this one as prefix.
func (k *Key) ID() ID {
	return ID(hex.EncodeToString(k.h.Sum(nil)))
}
