// Record format v2: the blob columnar container (internal/blob) as the
// payload encoding. Version 1 records (records.go's tagged Enc/Dec
// streams) remain in use where a stable wire format matters (the daemon's
// binary verdict responses); v2 is the cache-record format, chosen so a
// payload verified once by the store checksum can then be read entirely
// in place — fields and score vectors are iterated off the record bytes
// with zero copies and zero allocations.

package artifact

import "climcompress/internal/blob"

// OpenRecord validates payload as a v2 (blob-framed) record and returns
// the zero-copy view. Any v1, foreign or damaged payload returns an
// error; cache callers treat that as a miss and recompute.
func OpenRecord(payload []byte) (blob.Blob, error) {
	return blob.Open(payload)
}

// GetBlob is Get plus OpenRecord: it returns a validated zero-copy view
// over the record stored under id. Any failure — absent record, v1 or
// foreign payload, damaged container — is a miss. The view aliases
// store-owned bytes (possibly shared via the in-process cache); callers
// must treat them as read-only.
func (s *Store) GetBlob(id ID) (blob.Blob, bool) {
	payload, ok := s.Get(id)
	if !ok {
		return blob.Blob{}, false
	}
	b, err := OpenRecord(payload)
	if err != nil {
		return blob.Blob{}, false
	}
	return b, true
}
