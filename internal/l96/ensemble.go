package l96

import (
	"math"

	"climcompress/internal/par"
)

// EnsembleConfig controls the generation of a perturbation ensemble.
type EnsembleConfig struct {
	Members      int     // number of trajectories (the paper uses 101)
	Dt           float64 // RK4 step size
	SpinupSteps  int     // shared steps to reach the attractor before perturbing
	DivergeSteps int     // per-member steps after the perturbation ("one year")
	CalibSteps   int     // control-run steps used to calibrate attractor stats
	Eps          float64 // base perturbation magnitude (paper: O(1e-14))
	Workers      int     // parallel workers; 0 means GOMAXPROCS

	// TimeSlices > 1 records a sequence of states per member after the
	// divergence phase, SliceSteps integration steps apart, enabling
	// temporally correlated "history file" sequences (the paper's
	// time-slice-to-time-series workflow). Defaults to a single slice.
	TimeSlices int
	SliceSteps int
}

// DefaultEnsembleConfig mirrors the CESM-PVT setup: 101 members, O(1e-14)
// initial perturbation, integrated long enough that members fully
// decorrelate (perturbation growth e^{λt} with λ≈1.7 reaches O(1) well
// before 30 model time units).
func DefaultEnsembleConfig(members int) EnsembleConfig {
	return EnsembleConfig{
		Members:      members,
		Dt:           0.002,
		SpinupSteps:  5000,
		DivergeSteps: 15000,
		CalibSteps:   20000,
		Eps:          1e-14,
		Workers:      0,
	}
}

// Member is the decorrelated end state of one ensemble trajectory.
// For multi-slice configurations, X and Key describe the first slice and
// Series/SeriesKeys hold the full temporal sequence.
type Member struct {
	X   []float64 // slow variables at the first recorded slice
	Key uint64    // deterministic hash of that state

	Series     [][]float64 // per-slice slow variables (len TimeSlices)
	SeriesKeys []uint64    // per-slice state hashes
}

// Ensemble is the set of decorrelated members plus the attractor
// standardization constants used to turn slow variables into unit-variance
// anomaly-mode weights.
type Ensemble struct {
	Members []Member
	MeanX   float64 // attractor time-mean of X_k
	StdX    float64 // attractor time-std of X_k
}

// NewEnsemble integrates cfg.Members trajectories of the two-scale
// Lorenz-96 model. Member m's initial condition differs from the base state
// only by cfg.Eps·m added to X_0 (member 0 is unperturbed). The shared
// spin-up and the calibration control run are computed once.
func NewEnsemble(p Params, cfg EnsembleConfig) *Ensemble {
	base := New(p)
	s0 := base.InitialState(0)
	base.Run(s0, cfg.Dt, cfg.SpinupSteps)

	// Calibrate attractor statistics from a control run continuing s0.
	calib := New(p)
	cs := s0.Clone()
	var n int
	var sum, sumsq float64
	for i := 0; i < cfg.CalibSteps; i++ {
		calib.Step(cs, cfg.Dt)
		if i%10 == 0 {
			for _, x := range cs.X {
				sum += x
				sumsq += x * x
				n++
			}
		}
	}
	meanX := sum / float64(n)
	varX := sumsq/float64(n) - meanX*meanX
	if varX < 1e-12 {
		varX = 1e-12
	}

	e := &Ensemble{Members: make([]Member, cfg.Members), MeanX: meanX}
	e.StdX = math.Sqrt(varX)

	slices := cfg.TimeSlices
	if slices < 1 {
		slices = 1
	}
	sliceSteps := cfg.SliceSteps
	if sliceSteps < 1 {
		sliceSteps = 250
	}

	// Per-member divergence runs are independent; fan out on the shared pool.
	par.EachLimit(cfg.Members, cfg.Workers, func(idx int) error {
		m := New(p)
		s := s0.Clone()
		s.X[0] += cfg.Eps * float64(idx)
		m.Run(s, cfg.Dt, cfg.DivergeSteps)
		mem := Member{
			Series:     make([][]float64, slices),
			SeriesKeys: make([]uint64, slices),
		}
		for t := 0; t < slices; t++ {
			if t > 0 {
				m.Run(s, cfg.Dt, sliceSteps)
			}
			x := make([]float64, len(s.X))
			copy(x, s.X)
			mem.Series[t] = x
			mem.SeriesKeys[t] = s.Key()
		}
		mem.X = mem.Series[0]
		mem.Key = mem.SeriesKeys[0]
		e.Members[idx] = mem
		return nil
	})
	return e
}

// Weights returns member m's standardized anomaly-mode weights
// (X_k − μ)/σ at the first time slice.
func (e *Ensemble) Weights(m int) []float64 { return e.WeightsAt(m, 0) }

// WeightsAt returns the standardized weights at time slice t.
func (e *Ensemble) WeightsAt(m, t int) []float64 {
	x := e.Members[m].Series[t]
	w := make([]float64, len(x))
	for k, v := range x {
		w[k] = (v - e.MeanX) / e.StdX
	}
	return w
}

// TimeSlices returns the number of recorded slices per member.
func (e *Ensemble) TimeSlices() int {
	if len(e.Members) == 0 {
		return 0
	}
	return len(e.Members[0].Series)
}
