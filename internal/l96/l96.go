// Package l96 implements the two-scale Lorenz-96 model (Lorenz, 1996) that
// serves as the chaotic dynamical core of the synthetic climate substrate.
//
// CESM's role in the paper's methodology is to supply an ensemble of runs
// that (a) differ only in an O(1e-14) perturbation of one initial value,
// (b) diverge chaotically until they are independent draws from the model's
// attractor, and (c) share identical statistics. The two-scale Lorenz-96
// system has exactly these properties at a minuscule fraction of the cost;
// its K slow variables drive the large-scale anomaly modes of every
// synthetic climate variable (see internal/model).
package l96

import (
	"math"
)

// Params holds the model constants. Defaults follow Lorenz's original
// two-scale configuration.
type Params struct {
	K int     // number of slow variables X_k
	J int     // fast variables per slow variable
	F float64 // forcing
	H float64 // coupling strength h
	C float64 // fast-scale time constant c
	B float64 // fast-scale amplitude ratio b
}

// DefaultParams returns the standard chaotic configuration (K=40, J=8,
// F=10), comfortably past the chaos threshold F ≈ 8.
func DefaultParams() Params {
	return Params{K: 40, J: 8, F: 10, H: 1, C: 10, B: 10}
}

// State is one trajectory's instantaneous state.
type State struct {
	X []float64 // slow variables, len K
	Y []float64 // fast variables, len K*J
}

// Model integrates the two-scale system with classical RK4.
type Model struct {
	P Params
	// scratch buffers reused across steps to avoid per-step allocation
	k1, k2, k3, k4, tmp State
}

// New returns a Model with the given parameters.
func New(p Params) *Model {
	m := &Model{P: p}
	alloc := func() State {
		return State{X: make([]float64, p.K), Y: make([]float64, p.K*p.J)}
	}
	m.k1, m.k2, m.k3, m.k4, m.tmp = alloc(), alloc(), alloc(), alloc(), alloc()
	return m
}

// InitialState returns the deterministic base initial condition with the
// slow variable X_0 perturbed by eps — the analogue of the CESM-PVT's
// O(1e-14) perturbation of the initial atmospheric temperature.
func (m *Model) InitialState(eps float64) State {
	p := m.P
	s := State{X: make([]float64, p.K), Y: make([]float64, p.K*p.J)}
	for k := 0; k < p.K; k++ {
		s.X[k] = p.F/2*math.Sin(2*math.Pi*float64(k)/float64(p.K)) + p.F/4
	}
	for j := range s.Y {
		s.Y[j] = 0.1 * math.Cos(2*math.Pi*float64(j)/float64(len(s.Y)))
	}
	s.X[0] += eps
	return s
}

// deriv writes the time derivative of s into out.
func (m *Model) deriv(s, out State) {
	p := m.P
	K, J := p.K, p.J
	hcb := p.H * p.C / p.B
	for k := 0; k < K; k++ {
		km1 := (k - 1 + K) % K
		km2 := (k - 2 + K) % K
		kp1 := (k + 1) % K
		var ysum float64
		for j := 0; j < J; j++ {
			ysum += s.Y[k*J+j]
		}
		out.X[k] = -s.X[km1]*(s.X[km2]-s.X[kp1]) - s.X[k] + p.F - hcb*ysum
	}
	n := K * J
	cb := p.C * p.B
	for i := 0; i < n; i++ {
		ip1 := (i + 1) % n
		ip2 := (i + 2) % n
		im1 := (i - 1 + n) % n
		k := i / J
		out.Y[i] = -cb*s.Y[ip1]*(s.Y[ip2]-s.Y[im1]) - p.C*s.Y[i] + hcb*s.X[k]
	}
}

func axpy(dst, s, d State, h float64) {
	for i := range dst.X {
		dst.X[i] = s.X[i] + h*d.X[i]
	}
	for i := range dst.Y {
		dst.Y[i] = s.Y[i] + h*d.Y[i]
	}
}

// Step advances s in place by one RK4 step of size dt.
func (m *Model) Step(s State, dt float64) {
	m.deriv(s, m.k1)
	axpy(m.tmp, s, m.k1, dt/2)
	m.deriv(m.tmp, m.k2)
	axpy(m.tmp, s, m.k2, dt/2)
	m.deriv(m.tmp, m.k3)
	axpy(m.tmp, s, m.k3, dt)
	m.deriv(m.tmp, m.k4)
	for i := range s.X {
		s.X[i] += dt / 6 * (m.k1.X[i] + 2*m.k2.X[i] + 2*m.k3.X[i] + m.k4.X[i])
	}
	for i := range s.Y {
		s.Y[i] += dt / 6 * (m.k1.Y[i] + 2*m.k2.Y[i] + 2*m.k3.Y[i] + m.k4.Y[i])
	}
}

// Run advances s by n steps of size dt.
func (m *Model) Run(s State, dt float64, n int) {
	for i := 0; i < n; i++ {
		m.Step(s, dt)
	}
}

// Clone deep-copies a state.
func (s State) Clone() State {
	c := State{X: make([]float64, len(s.X)), Y: make([]float64, len(s.Y))}
	copy(c.X, s.X)
	copy(c.Y, s.Y)
	return c
}

// Key folds the bit patterns of the slow variables into a 64-bit hash,
// giving each decorrelated member a distinct deterministic identity for
// downstream noise generation.
func (s State) Key() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, x := range s.X {
		b := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			h ^= (b >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}
