// Package l96 implements the two-scale Lorenz-96 model (Lorenz, 1996) that
// serves as the chaotic dynamical core of the synthetic climate substrate.
//
// CESM's role in the paper's methodology is to supply an ensemble of runs
// that (a) differ only in an O(1e-14) perturbation of one initial value,
// (b) diverge chaotically until they are independent draws from the model's
// attractor, and (c) share identical statistics. The two-scale Lorenz-96
// system has exactly these properties at a minuscule fraction of the cost;
// its K slow variables drive the large-scale anomaly modes of every
// synthetic climate variable (see internal/model).
package l96

import (
	"math"
)

// Params holds the model constants. Defaults follow Lorenz's original
// two-scale configuration.
type Params struct {
	K int     // number of slow variables X_k
	J int     // fast variables per slow variable
	F float64 // forcing
	H float64 // coupling strength h
	C float64 // fast-scale time constant c
	B float64 // fast-scale amplitude ratio b
}

// DefaultParams returns the standard chaotic configuration (K=40, J=8,
// F=10), comfortably past the chaos threshold F ≈ 8.
func DefaultParams() Params {
	return Params{K: 40, J: 8, F: 10, H: 1, C: 10, B: 10}
}

// State is one trajectory's instantaneous state.
type State struct {
	X []float64 // slow variables, len K
	Y []float64 // fast variables, len K*J
}

// Model integrates the two-scale system with classical RK4.
type Model struct {
	P Params
	// scratch buffers reused across steps to avoid per-step allocation
	k1, k2, k3, k4, tmp State
}

// New returns a Model with the given parameters.
func New(p Params) *Model {
	m := &Model{P: p}
	alloc := func() State {
		return State{X: make([]float64, p.K), Y: make([]float64, p.K*p.J)}
	}
	m.k1, m.k2, m.k3, m.k4, m.tmp = alloc(), alloc(), alloc(), alloc(), alloc()
	return m
}

// InitialState returns the deterministic base initial condition with the
// slow variable X_0 perturbed by eps — the analogue of the CESM-PVT's
// O(1e-14) perturbation of the initial atmospheric temperature.
func (m *Model) InitialState(eps float64) State {
	p := m.P
	s := State{X: make([]float64, p.K), Y: make([]float64, p.K*p.J)}
	for k := 0; k < p.K; k++ {
		s.X[k] = p.F/2*math.Sin(2*math.Pi*float64(k)/float64(p.K)) + p.F/4
	}
	for j := range s.Y {
		s.Y[j] = 0.1 * math.Cos(2*math.Pi*float64(j)/float64(len(s.Y)))
	}
	s.X[0] += eps
	return s
}

// deriv writes the time derivative of s into out. The cyclic neighbor
// indices are carried as running counters instead of per-element modulo
// operations — this is the innermost loop of the whole substrate (four
// deriv calls per RK4 step, tens of thousands of steps per member), and
// integer division dominated its profile. Every per-element floating-point
// expression is unchanged, so trajectories are bit-identical.
func (m *Model) deriv(s, out State) {
	p := m.P
	K, J := p.K, p.J
	hcb := p.H * p.C / p.B
	X, outX := s.X, out.X
	km1, km2 := K-1, K-2
	base := 0
	for k := 0; k < K; k++ {
		kp1 := k + 1
		if kp1 == K {
			kp1 = 0
		}
		var ysum float64
		for _, y := range s.Y[base : base+J] {
			ysum += y
		}
		base += J
		outX[k] = -X[km1]*(X[km2]-X[kp1]) - X[k] + p.F - hcb*ysum
		km2 = km1
		km1 = k
	}
	n := K * J
	cb := p.C * p.B
	pC := p.C
	Y, outY := s.Y[:n], out.Y[:n]
	if J < 2 || n < 4 {
		m.derivYSmall(s, out, n, cb, hcb)
		return
	}
	// The neighborhood Y[i-1], Y[i], Y[i+1], Y[i+2] is carried in rotating
	// registers so each element is loaded once and the in-loop indices stay
	// provably in bounds; the two wrap-around elements are peeled off the
	// end. For J >= 2 no coupling-term boundary falls between them, so hx is
	// hcb*X[K-1] for both. The arithmetic per element is unchanged.
	hx := hcb * X[0]
	k, inJ := 0, 0
	yim1, yi, yip1 := Y[n-1], Y[0], Y[1]
	for i := 0; i < n-2; i++ {
		yip2 := Y[i+2]
		outY[i] = -cb*yip1*(yip2-yim1) - pC*yi + hx
		yim1, yi, yip1 = yi, yip1, yip2
		inJ++
		if inJ == J {
			inJ = 0
			k++
			hx = hcb * X[k]
		}
	}
	// i = n-2: ip1 = n-1, ip2 = 0.
	outY[n-2] = -cb*yip1*(Y[0]-yim1) - pC*yi + hx
	// i = n-1: ip1 = 0, ip2 = 1.
	outY[n-1] = -cb*Y[0]*(Y[1]-yi) - pC*yip1 + hx
}

// derivYSmall is the fast-variable loop for degenerate configurations
// (J == 1, or fewer than four fast variables) where the peeled fast path's
// boundary assumptions do not hold.
func (m *Model) derivYSmall(s, out State, n int, cb, hcb float64) {
	p := m.P
	J, K := p.J, p.K
	X := s.X
	Y, outY := s.Y, out.Y
	im1 := n - 1
	hx := hcb * X[0]
	k, inJ := 0, 0
	for i := 0; i < n; i++ {
		ip1 := i + 1
		if ip1 == n {
			ip1 = 0
		}
		ip2 := ip1 + 1
		if ip2 == n {
			ip2 = 0
		}
		outY[i] = -cb*Y[ip1]*(Y[ip2]-Y[im1]) - p.C*Y[i] + hx
		im1 = i
		inJ++
		if inJ == J {
			inJ = 0
			k++
			if k < K {
				hx = hcb * X[k]
			}
		}
	}
}

func axpy(dst, s, d State, h float64) {
	sx, dx := s.X[:len(dst.X)], d.X[:len(dst.X)]
	for i := range dst.X {
		dst.X[i] = sx[i] + h*dx[i]
	}
	sy, dy := s.Y[:len(dst.Y)], d.Y[:len(dst.Y)]
	for i := range dst.Y {
		dst.Y[i] = sy[i] + h*dy[i]
	}
}

// Step advances s in place by one RK4 step of size dt.
func (m *Model) Step(s State, dt float64) {
	m.deriv(s, m.k1)
	axpy(m.tmp, s, m.k1, dt/2)
	m.deriv(m.tmp, m.k2)
	axpy(m.tmp, s, m.k2, dt/2)
	m.deriv(m.tmp, m.k3)
	axpy(m.tmp, s, m.k3, dt)
	m.deriv(m.tmp, m.k4)
	k1x, k2x, k3x, k4x := m.k1.X[:len(s.X)], m.k2.X[:len(s.X)], m.k3.X[:len(s.X)], m.k4.X[:len(s.X)]
	for i := range s.X {
		s.X[i] += dt / 6 * (k1x[i] + 2*k2x[i] + 2*k3x[i] + k4x[i])
	}
	k1y, k2y, k3y, k4y := m.k1.Y[:len(s.Y)], m.k2.Y[:len(s.Y)], m.k3.Y[:len(s.Y)], m.k4.Y[:len(s.Y)]
	for i := range s.Y {
		s.Y[i] += dt / 6 * (k1y[i] + 2*k2y[i] + 2*k3y[i] + k4y[i])
	}
}

// Run advances s by n steps of size dt.
func (m *Model) Run(s State, dt float64, n int) {
	for i := 0; i < n; i++ {
		m.Step(s, dt)
	}
}

// Clone deep-copies a state.
func (s State) Clone() State {
	c := State{X: make([]float64, len(s.X)), Y: make([]float64, len(s.Y))}
	copy(c.X, s.X)
	copy(c.Y, s.Y)
	return c
}

// Key folds the bit patterns of the slow variables into a 64-bit hash,
// giving each decorrelated member a distinct deterministic identity for
// downstream noise generation.
func (s State) Key() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, x := range s.X {
		b := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			h ^= (b >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}
