package l96

import (
	"math"
	"os"
	"testing"

	"climcompress/internal/stats"
)

func testConfig(members int) EnsembleConfig {
	// Scaled-down integration for unit tests; still long enough to diverge.
	return EnsembleConfig{
		Members:      members,
		Dt:           0.002,
		SpinupSteps:  1500,
		DivergeSteps: 12000,
		CalibSteps:   4000,
		Eps:          1e-14,
		Workers:      0,
	}
}

func TestDeterministic(t *testing.T) {
	p := DefaultParams()
	m := New(p)
	s1 := m.InitialState(0)
	s2 := m.InitialState(0)
	m.Run(s1, 0.002, 500)
	m2 := New(p)
	m2.Run(s2, 0.002, 500)
	for i := range s1.X {
		if s1.X[i] != s2.X[i] {
			t.Fatalf("non-deterministic trajectory at X[%d]: %v vs %v", i, s1.X[i], s2.X[i])
		}
	}
}

func TestStaysBounded(t *testing.T) {
	p := DefaultParams()
	m := New(p)
	s := m.InitialState(0)
	m.Run(s, 0.002, 20000)
	for i, x := range s.X {
		if math.IsNaN(x) || math.Abs(x) > 100 {
			t.Fatalf("trajectory blew up: X[%d] = %v", i, x)
		}
	}
	for i, y := range s.Y {
		if math.IsNaN(y) || math.Abs(y) > 100 {
			t.Fatalf("fast variables blew up: Y[%d] = %v", i, y)
		}
	}
}

func TestTinyPerturbationDiverges(t *testing.T) {
	p := DefaultParams()
	m := New(p)
	a := m.InitialState(0)
	b := m.InitialState(1e-14)
	m.Run(a, 0.002, 15000)
	m2 := New(p)
	m2.Run(b, 0.002, 15000)
	var dist float64
	for i := range a.X {
		d := a.X[i] - b.X[i]
		dist += d * d
	}
	dist = math.Sqrt(dist)
	if dist < 1 {
		t.Fatalf("1e-14 perturbation only diverged to distance %v after 30 time units; chaos broken?", dist)
	}
}

func TestSameICGivesSameState(t *testing.T) {
	p := DefaultParams()
	m := New(p)
	a := m.InitialState(0)
	m.Run(a, 0.002, 3000)
	k1 := a.Key()
	b := New(p).InitialState(0)
	New(p).Run(b, 0.002, 3000)
	if b.Key() != k1 {
		t.Fatal("identical trajectories produced different keys")
	}
	c := New(p).InitialState(1e-14)
	New(p).Run(c, 0.002, 3000)
	if c.Key() == k1 {
		t.Fatal("perturbed trajectory produced identical key")
	}
}

func TestEnsembleMembersDecorrelated(t *testing.T) {
	e := NewEnsemble(DefaultParams(), testConfig(8))
	if len(e.Members) != 8 {
		t.Fatalf("got %d members", len(e.Members))
	}
	// Pairwise correlation of slow states should be far from 1.
	for i := 0; i < len(e.Members); i++ {
		for j := i + 1; j < len(e.Members); j++ {
			rho := stats.Pearson(e.Members[i].X, e.Members[j].X)
			if rho > 0.9 {
				t.Fatalf("members %d,%d still correlated: ρ=%v", i, j, rho)
			}
		}
	}
	// Keys must be distinct.
	seen := map[uint64]bool{}
	for _, m := range e.Members {
		if seen[m.Key] {
			t.Fatal("duplicate member key")
		}
		seen[m.Key] = true
	}
}

func TestEnsembleWeightsStandardized(t *testing.T) {
	e := NewEnsemble(DefaultParams(), testConfig(12))
	var all []float64
	for m := range e.Members {
		w := e.Weights(m)
		if len(w) != DefaultParams().K {
			t.Fatalf("weights length %d", len(w))
		}
		all = append(all, w...)
	}
	// Standardized weights should be roughly zero-mean, unit-variance.
	mean := stats.Mean(all)
	std := stats.StdDev(all)
	if math.Abs(mean) > 0.5 {
		t.Fatalf("weights mean %v too far from 0", mean)
	}
	if std < 0.5 || std > 2 {
		t.Fatalf("weights std %v too far from 1", std)
	}
}

func TestEnsembleDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg1 := testConfig(5)
	cfg1.Workers = 1
	cfg4 := testConfig(5)
	cfg4.Workers = 4
	e1 := NewEnsemble(DefaultParams(), cfg1)
	e4 := NewEnsemble(DefaultParams(), cfg4)
	for m := range e1.Members {
		if e1.Members[m].Key != e4.Members[m].Key {
			t.Fatalf("member %d differs between worker counts", m)
		}
	}
}

// derivReference is the textbook modulo-indexed formulation; deriv's
// running-index rewrite must match it bit for bit.
func derivReference(p Params, s, out State) {
	K, J := p.K, p.J
	hcb := p.H * p.C / p.B
	for k := 0; k < K; k++ {
		km1 := (k - 1 + K) % K
		km2 := (k - 2 + K) % K
		kp1 := (k + 1) % K
		var ysum float64
		for j := 0; j < J; j++ {
			ysum += s.Y[k*J+j]
		}
		out.X[k] = -s.X[km1]*(s.X[km2]-s.X[kp1]) - s.X[k] + p.F - hcb*ysum
	}
	n := K * J
	cb := p.C * p.B
	for i := 0; i < n; i++ {
		ip1 := (i + 1) % n
		ip2 := (i + 2) % n
		im1 := (i - 1 + n) % n
		k := i / J
		out.Y[i] = -cb*s.Y[ip1]*(s.Y[ip2]-s.Y[im1]) - p.C*s.Y[i] + hcb*s.X[k]
	}
}

func TestDerivMatchesReference(t *testing.T) {
	for _, p := range []Params{
		DefaultParams(),
		{K: 7, J: 3, F: 8, H: 1, C: 10, B: 10},
		{K: 6, J: 2, F: 8, H: 1, C: 10, B: 10},
		{K: 9, J: 1, F: 8, H: 1, C: 10, B: 10}, // degenerate fallback path
		{K: 3, J: 1, F: 8, H: 1, C: 10, B: 10},
	} {
		m := New(p)
		s := m.InitialState(0)
		// March the state into the attractor a little so inputs are generic.
		m.Run(s, 0.002, 100)
		got := State{X: make([]float64, p.K), Y: make([]float64, p.K*p.J)}
		want := State{X: make([]float64, p.K), Y: make([]float64, p.K*p.J)}
		m.deriv(s, got)
		derivReference(p, s, want)
		for i := range want.X {
			if got.X[i] != want.X[i] {
				t.Fatalf("K=%d: X'[%d] = %x, reference %x", p.K, i, got.X[i], want.X[i])
			}
		}
		for i := range want.Y {
			if got.Y[i] != want.Y[i] {
				t.Fatalf("K=%d: Y'[%d] = %x, reference %x", p.K, i, got.Y[i], want.Y[i])
			}
		}
	}
}

func BenchmarkStep(b *testing.B) {
	m := New(DefaultParams())
	s := m.InitialState(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(s, 0.002)
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := DefaultParams()
	cfg := testConfig(4)
	e1, hit := LoadOrCompute(p, cfg, dir)
	if hit {
		t.Fatal("first load reported a cache hit")
	}
	e2, hit := LoadOrCompute(p, cfg, dir)
	if !hit {
		t.Fatal("second load missed the cache")
	}
	if e2.MeanX != e1.MeanX || e2.StdX != e1.StdX {
		t.Fatalf("calibration constants differ: %v/%v vs %v/%v", e2.MeanX, e2.StdX, e1.MeanX, e1.StdX)
	}
	for m := range e1.Members {
		if e2.Members[m].Key != e1.Members[m].Key {
			t.Fatalf("member %d key differs", m)
		}
		for i, x := range e1.Members[m].X {
			if e2.Members[m].X[i] != x {
				t.Fatalf("member %d X[%d] differs", m, i)
			}
		}
	}
	// A different configuration must not hit the same entry.
	other := cfg
	other.DivergeSteps++
	if _, hit := LoadOrCompute(p, other, dir); hit {
		t.Fatal("different config hit the cache")
	}
	// Workers is excluded from the key: the trajectories are identical.
	w4 := cfg
	w4.Workers = 4
	if _, hit := LoadOrCompute(p, w4, dir); !hit {
		t.Fatal("worker count should not affect the cache key")
	}
	// A corrupt file degrades to recomputation.
	path := cachePath(dir, CacheKey(p, cfg))
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	e3, hit := LoadOrCompute(p, cfg, dir)
	if hit {
		t.Fatal("corrupt cache reported a hit")
	}
	if e3.Members[1].Key != e1.Members[1].Key {
		t.Fatal("recomputed ensemble differs")
	}
}
