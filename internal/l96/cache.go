package l96

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// The chaotic-core integration is fully deterministic in (Params,
// EnsembleConfig), yet dominates the wall-clock of every experiment run —
// the same 101 trajectories are re-integrated every time climatebench
// starts. This cache persists the decorrelated end states (which is all the
// substrate keeps: slow variables and state keys per slice, plus the two
// calibration constants) in an exact float64-bits binary format, keyed by a
// hash of every parameter that influences the trajectories. Workers is
// deliberately excluded from the key: the integration is bit-identical at
// any worker count, which TestEnsembleDeterministicAcrossWorkerCounts pins.

const (
	cacheMagic   = 0x4c393643 // "L96C"
	cacheVersion = 1
)

// CacheKey returns the deterministic content key of an ensemble: a 64-bit
// FNV-1a fold of the model parameters and every trajectory-affecting config
// field, using exact float bit patterns.
func CacheKey(p Params, cfg EnsembleConfig) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(cacheVersion))
	mix(uint64(p.K))
	mix(uint64(p.J))
	mix(math.Float64bits(p.F))
	mix(math.Float64bits(p.H))
	mix(math.Float64bits(p.C))
	mix(math.Float64bits(p.B))
	mix(uint64(cfg.Members))
	mix(math.Float64bits(cfg.Dt))
	mix(uint64(cfg.SpinupSteps))
	mix(uint64(cfg.DivergeSteps))
	mix(uint64(cfg.CalibSteps))
	mix(math.Float64bits(cfg.Eps))
	mix(uint64(cfg.TimeSlices))
	mix(uint64(cfg.SliceSteps))
	return h
}

// cachePath is the file holding the ensemble for one key.
func cachePath(dir string, key uint64) string {
	return filepath.Join(dir, fmt.Sprintf("l96-%016x.bin", key))
}

// LoadOrCompute returns the ensemble for (p, cfg), reading it from a cache
// file under dir when one exists and integrating (then writing the file)
// otherwise. The second return reports a cache hit. Cache I/O failures are
// never fatal: a corrupt or unwritable cache degrades to plain computation.
func LoadOrCompute(p Params, cfg EnsembleConfig, dir string) (*Ensemble, bool) {
	if dir == "" {
		return NewEnsemble(p, cfg), false
	}
	key := CacheKey(p, cfg)
	path := cachePath(dir, key)
	if e, err := readCache(path, p, cfg); err == nil {
		return e, true
	}
	e := NewEnsemble(p, cfg)
	writeCache(path, dir, e, p, cfg)
	return e, false
}

// writeCache persists the ensemble atomically (temp file + rename) so a
// crashed run never leaves a truncated cache behind. Errors are ignored.
func writeCache(path, dir string, e *Ensemble, p Params, cfg EnsembleConfig) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "l96-*.tmp")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	u64 := func(v uint64) { binary.Write(w, binary.LittleEndian, v) }
	u64(cacheMagic)
	u64(CacheKey(p, cfg))
	u64(math.Float64bits(e.MeanX))
	u64(math.Float64bits(e.StdX))
	u64(uint64(len(e.Members)))
	slices := 0
	if len(e.Members) > 0 {
		slices = len(e.Members[0].Series)
	}
	u64(uint64(slices))
	u64(uint64(p.K))
	for _, m := range e.Members {
		for t := 0; t < slices; t++ {
			u64(m.SeriesKeys[t])
			for _, x := range m.Series[t] {
				u64(math.Float64bits(x))
			}
		}
	}
	if w.Flush() != nil || tmp.Close() != nil {
		return
	}
	os.Rename(tmp.Name(), path)
}

// readCache loads and validates one cache file.
func readCache(path string, p Params, cfg EnsembleConfig) (*Ensemble, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:errdrop read side; a Close error cannot lose data and the header checks below validate content
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [7]uint64
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	members := int(hdr[4])
	slices := int(hdr[5])
	k := int(hdr[6])
	wantSlices := cfg.TimeSlices
	if wantSlices < 1 {
		wantSlices = 1
	}
	if hdr[0] != cacheMagic || hdr[1] != CacheKey(p, cfg) ||
		members != cfg.Members || slices != wantSlices || k != p.K {
		return nil, fmt.Errorf("l96: cache %s does not match configuration", path)
	}
	e := &Ensemble{
		Members: make([]Member, members),
		MeanX:   math.Float64frombits(hdr[2]),
		StdX:    math.Float64frombits(hdr[3]),
	}
	buf := make([]byte, 8*(1+k))
	for m := range e.Members {
		mem := Member{
			Series:     make([][]float64, slices),
			SeriesKeys: make([]uint64, slices),
		}
		for t := 0; t < slices; t++ {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			mem.SeriesKeys[t] = binary.LittleEndian.Uint64(buf)
			x := make([]float64, k)
			for i := range x {
				x[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*(1+i):]))
			}
			mem.Series[t] = x
		}
		mem.X = mem.Series[0]
		mem.Key = mem.SeriesKeys[0]
		e.Members[m] = mem
	}
	// Trailing data means a format mismatch; reject rather than trust it.
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("l96: cache %s has trailing data", path)
	}
	return e, nil
}
