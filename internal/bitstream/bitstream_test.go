package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBitsRoundTrip(t *testing.T) {
	w := NewWriter(16)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got, want := w.BitsWritten(), uint64(len(pattern)); got != want {
		t.Fatalf("BitsWritten = %d, want %d", got, want)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if r.Err() != nil {
		t.Fatalf("unexpected reader error: %v", r.Err())
	}
}

func TestWriteBitsWidths(t *testing.T) {
	w := NewWriter(64)
	type item struct {
		v     uint64
		width uint
	}
	items := []item{
		{0x1, 1}, {0x3, 2}, {0xff, 8}, {0xabc, 12}, {0xdeadbeef, 32},
		{0x0123456789abcdef, 64}, {0, 5}, {0x7fffffffffffffff, 63},
		{1, 64}, {0x55, 7},
	}
	for _, it := range items {
		w.WriteBits(it.v, it.width)
	}
	r := NewReader(w.Bytes())
	for i, it := range items {
		want := it.v
		if it.width < 64 {
			want &= (1 << it.width) - 1
		}
		if got := r.ReadBits(it.width); got != want {
			t.Fatalf("item %d: got %#x, want %#x", i, got, want)
		}
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(64)
	vals := []uint64{0, 1, 2, 7, 31, 32, 33, 64, 100, 250}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		if got := r.ReadUnary(); got != want {
			t.Fatalf("unary %d: got %d, want %d", i, got, want)
		}
	}
}

func TestEliasGammaRoundTrip(t *testing.T) {
	w := NewWriter(64)
	vals := []uint64{1, 2, 3, 4, 7, 8, 255, 256, 1 << 20, 1<<40 + 5}
	for _, v := range vals {
		w.WriteEliasGamma(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range vals {
		if got := r.ReadEliasGamma(); got != want {
			t.Fatalf("gamma %d: got %d want %d", i, got, want)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestEliasGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteEliasGamma(0) should panic")
		}
	}()
	NewWriter(8).WriteEliasGamma(0)
}

func TestLenMatchesBytes(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0x5, 3)
	if w.Len() != 1 {
		t.Fatalf("Len after 3 bits = %d, want 1", w.Len())
	}
	w.WriteBits(0xff, 8)
	if w.Len() != 2 {
		t.Fatalf("Len after 11 bits = %d, want 2", w.Len())
	}
	if got := len(w.Bytes()); got != 2 {
		t.Fatalf("len(Bytes) = %d, want 2", got)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xff})
	_ = r.ReadBits(8)
	if r.Err() != nil {
		t.Fatalf("unexpected error after exact read: %v", r.Err())
	}
	_ = r.ReadBit()
	if r.Err() != ErrShortBuffer {
		t.Fatalf("expected ErrShortBuffer, got %v", r.Err())
	}
	// Subsequent reads stay at zero and keep the error.
	if got := r.ReadBits(17); got != 0 {
		t.Fatalf("read after error = %d, want 0", got)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xdead, 16)
	w.Reset()
	if w.BitsWritten() != 0 || w.Len() != 0 {
		t.Fatalf("Reset did not clear state: bits=%d len=%d", w.BitsWritten(), w.Len())
	}
	w.WriteBits(0x2, 2)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0x80 {
		t.Fatalf("post-reset bytes = %#v, want [0x80]", b)
	}
}

func TestBytesIsIdempotent(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xabcd, 13)
	b1 := w.Bytes()
	b2 := w.Bytes()
	if string(b1) != string(b2) {
		t.Fatalf("Bytes not idempotent: %x vs %x", b1, b2)
	}
	// Writing after Bytes continues the logical stream.
	w.WriteBits(0x3, 3)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(13); got != 0xabcd&((1<<13)-1) {
		t.Fatalf("first field corrupted after continued write: %#x", got)
	}
	if got := r.ReadBits(3); got != 0x3 {
		t.Fatalf("second field = %#x, want 0x3", got)
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%200) + 1
		vals := make([]uint64, count)
		widths := make([]uint, count)
		w := NewWriter(0)
		for i := range vals {
			widths[i] = uint(rng.Intn(64) + 1)
			vals[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			if widths[i] == 64 {
				vals[i] = rng.Uint64()
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			if r.ReadBits(widths[i]) != vals[i] {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWordBoundaryCrossing(t *testing.T) {
	// Write 63 bits then a 33-bit value to force the split path in WriteBits.
	w := NewWriter(0)
	w.WriteBits((1<<63)-1, 63)
	w.WriteBits(0x1aaaaaaaa, 33)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(63); got != (1<<63)-1 {
		t.Fatalf("first read = %#x", got)
	}
	if got := r.ReadBits(33); got != 0x1aaaaaaaa {
		t.Fatalf("second read = %#x", got)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%(1<<17) == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 23)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 1<<17; i++ {
		w.WriteBits(uint64(i), 23)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if i%(1<<17) == 0 {
			r = NewReader(data)
		}
		_ = r.ReadBits(23)
	}
}
