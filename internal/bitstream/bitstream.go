// Package bitstream provides MSB-first bit-level readers and writers used by
// the entropy coders and the fixed-rate codecs.
//
// Both Writer and Reader operate on an in-memory byte buffer. Bits are packed
// most-significant-bit first within each byte, which makes the packed output
// byte-order independent and easy to inspect in hex dumps.
package bitstream

import (
	"errors"
	"fmt"
)

// ErrShortBuffer is returned by Reader when a read runs past the end of the
// underlying buffer.
var ErrShortBuffer = errors.New("bitstream: read past end of buffer")

// Writer accumulates bits MSB-first into an internal byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bits not yet flushed, left-aligned in the low `n` bits
	n    uint   // number of valid bits in cur (0..63)
	bits uint64 // total number of bits written
}

// NewWriter returns a Writer whose internal buffer has the given capacity
// hint in bytes.
func NewWriter(capHint int) *Writer {
	if capHint < 0 {
		capHint = 0
	}
	return &Writer{buf: make([]byte, 0, capHint)}
}

// WriteBit appends a single bit (the low bit of b).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.n++
	w.bits++
	if w.n == 64 {
		w.flushWord()
	}
}

// WriteBits appends the low `width` bits of v, most significant first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width uint) {
	if width > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits width %d > 64", width))
	}
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	space := 64 - w.n
	if width <= space {
		w.cur = w.cur<<width | v
		w.n += width
		w.bits += uint64(width)
		if w.n == 64 {
			w.flushWord()
		}
		return
	}
	// Split across the word boundary.
	hi := width - space
	w.cur = w.cur<<space | v>>hi
	w.n = 64
	w.bits += uint64(space)
	w.flushWord()
	w.cur = v & ((1 << hi) - 1)
	w.n = hi
	w.bits += uint64(hi)
}

// WriteUnary writes v as v one-bits followed by a terminating zero bit.
func (w *Writer) WriteUnary(v uint64) {
	for v >= 32 {
		w.WriteBits((1<<32)-1, 32)
		v -= 32
	}
	// v ones followed by a zero: value (2^v - 1) << 1 in v+1 bits.
	w.WriteBits(((1<<v)-1)<<1, uint(v)+1)
}

// WriteEliasGamma writes v >= 1 in Elias gamma code: the bit length of v in
// unary (as leading zeros) followed by v itself.
func (w *Writer) WriteEliasGamma(v uint64) {
	if v == 0 {
		panic("bitstream: Elias gamma requires v >= 1")
	}
	n := uint(0)
	for 1<<(n+1) <= v {
		n++
	}
	w.WriteBits(0, n)   // n zeros
	w.WriteBits(v, n+1) // v starts with its leading one bit
}

// flushWord drains the 64-bit accumulator into the byte buffer. Only valid
// when w.n == 64.
func (w *Writer) flushWord() {
	w.buf = append(w.buf,
		byte(w.cur>>56), byte(w.cur>>48), byte(w.cur>>40), byte(w.cur>>32),
		byte(w.cur>>24), byte(w.cur>>16), byte(w.cur>>8), byte(w.cur))
	w.cur = 0
	w.n = 0
}

// BitsWritten reports the total number of bits written so far.
func (w *Writer) BitsWritten() uint64 { return w.bits }

// Len reports the number of bytes the finished stream will occupy.
func (w *Writer) Len() int { return int((w.bits + 7) / 8) }

// Bytes flushes any partial byte (padding with zero bits) and returns the
// packed stream. The Writer remains usable: further writes continue from the
// unpadded bit position, and a later Bytes call re-derives the padding.
func (w *Writer) Bytes() []byte {
	return w.AppendTo(make([]byte, 0, len(w.buf)+8))
}

// AppendTo appends the packed stream (with any partial byte zero-padded) to
// dst and returns the extended slice. Like Bytes, it leaves the Writer
// usable; unlike Bytes, it allocates nothing when dst has capacity.
func (w *Writer) AppendTo(dst []byte) []byte {
	dst = append(dst, w.buf...)
	n := w.n
	cur := w.cur
	for n >= 8 {
		dst = append(dst, byte(cur>>(n-8)))
		n -= 8
	}
	if n > 0 {
		dst = append(dst, byte(cur<<(8-n)))
	}
	return dst
}

// Reset discards all written bits, retaining the buffer capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.n = 0
	w.bits = 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next byte index
	cur  uint64 // bit accumulator, valid in the low `n` bits
	n    uint   // number of valid bits in cur
	read uint64 // total bits consumed
	err  error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset points the Reader at a new buffer, clearing all position and error
// state; a zero-value Reader plus Reset is equivalent to NewReader.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.cur = 0
	r.n = 0
	r.read = 0
	r.err = nil
}

// fill tops up the accumulator so that at least `need` bits are available,
// or sets err if the buffer is exhausted.
func (r *Reader) fill(need uint) bool {
	for r.n < need {
		if r.pos >= len(r.buf) {
			r.err = ErrShortBuffer
			return false
		}
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
	return true
}

// ReadBit reads a single bit. After an error, it returns 0.
func (r *Reader) ReadBit() uint {
	if r.err != nil || !r.fill(1) {
		return 0
	}
	r.n--
	r.read++
	return uint(r.cur>>r.n) & 1
}

// ReadBits reads `width` bits MSB-first. width must be in [0, 64].
// After an error, it returns 0.
func (r *Reader) ReadBits(width uint) uint64 {
	if width > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits width %d > 64", width))
	}
	if width == 0 || r.err != nil {
		return 0
	}
	if width <= 56 { // fits alongside a partial byte in the accumulator
		if !r.fill(width) {
			return 0
		}
		r.n -= width
		r.read += uint64(width)
		v := r.cur >> r.n
		if width < 64 {
			v &= (1 << width) - 1
		}
		return v
	}
	hi := r.ReadBits(width - 32)
	lo := r.ReadBits(32)
	return hi<<32 | lo
}

// ReadUnary reads a unary-coded value (count of one-bits before a zero).
func (r *Reader) ReadUnary() uint64 {
	var v uint64
	for {
		if r.err != nil {
			return v
		}
		if r.ReadBit() == 0 {
			return v
		}
		v++
	}
}

// ReadEliasGamma reads a value written by WriteEliasGamma.
func (r *Reader) ReadEliasGamma() uint64 {
	n := uint(0)
	for r.err == nil && r.ReadBit() == 0 {
		n++
		if n > 64 {
			r.err = ErrShortBuffer
			return 0
		}
	}
	if r.err != nil {
		return 0
	}
	if n == 0 {
		return 1
	}
	return 1<<n | r.ReadBits(n)
}

// BitsRead reports the total number of bits consumed.
func (r *Reader) BitsRead() uint64 { return r.read }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }
