// Package ensemble builds the per-variable statistics of the CESM-PVT
// verification ensemble (§4.3): leave-one-out per-point mean/std for the
// Z-scores of eq. 6, the per-member RMSZ distribution of eq. 7, the
// normalized maximum pointwise error distribution of eq. 10, per-member
// ranges and global means.
//
// The engine is one-pass and parallel: a single sweep over all members
// accumulates per-point streaming moments (Σx, Σx²) from which every
// leave-one-out mean/std follows algebraically in O(1) — O(M·N) for the
// whole M-member analysis — and the three stages (per-member summaries,
// per-point aggregation, per-member scoring) each fan out over the shared
// worker pool (internal/par). Point-range workers accumulate members in
// index order, so results are bit-identical to the serial formulation.
package ensemble

import (
	"fmt"
	"math"
	"sort"

	"climcompress/internal/field"
	"climcompress/internal/par"
	"climcompress/internal/stats"
)

// Source supplies ensemble member fields for the catalog variables.
// model.Generator implements it. Implementations must be safe for
// concurrent Field calls (CollectFields fans out over the worker pool).
type Source interface {
	Members() int
	Field(varIdx, member int) *field.Field
}

// VarStats holds one variable's ensemble statistics. It retains references
// to the member data (not copies) because the verification tests need the
// original values when scoring reconstructions.
type VarStats struct {
	Name    string
	NPoints int // stored points (including fill positions)

	HasFill  bool
	Fill     float32
	FillMask []bool // true where every member holds the fill sentinel

	// Per-point streaming moments over members (fill points stay empty).
	Mom *stats.Moments

	// Two smallest / largest member values per point, with the member that
	// holds the extreme, enabling exact max-over-others (eq. 10).
	min1, min2 []float32
	max1, max2 []float32
	min1m      []int32
	max1m      []int32

	orig [][]float32 // member data, indexed [member][point]; nil when streamed

	// Streamed-build handle: member data is re-acquired from src on demand
	// (AcquireOriginal) instead of being retained in orig.
	src    Source
	varIdx int
	nm     int

	RangePerMember []float64 // R_X^m over valid points
	RMSZ           []float64 // eq. 7 for each original member
	Enmax          []float64 // eq. 10 for each member
	GlobalMean     []float64 // area-weighted global mean per member
	ValidMean      []float64 // unweighted mean over valid points per member
}

// CollectFields materializes all member fields of one variable, generating
// members in parallel on the shared worker pool.
func CollectFields(src Source, varIdx int) []*field.Field {
	out := make([]*field.Field, src.Members())
	par.Each(len(out), func(m int) error {
		out[m] = src.Field(varIdx, m)
		return nil
	})
	return out
}

// ReleaseFields returns the fields' data buffers to the shared scratch
// pool. Call only when the fields — and any VarStats built from them — are
// no longer referenced.
func ReleaseFields(fields []*field.Field) {
	for _, f := range fields {
		if f != nil {
			f.Release()
		}
	}
}

// pointGrain is the minimum per-worker slice of points for parallel
// per-point stages; small enough to balance, large enough to amortize.
const pointGrain = 4096

// Build computes the ensemble statistics for one variable from its member
// fields (as produced by CollectFields). The fields' data slices are
// retained by the returned VarStats.
func Build(fields []*field.Field) (*VarStats, error) {
	if len(fields) < 3 {
		return nil, fmt.Errorf("ensemble: need at least 3 members, got %d", len(fields))
	}
	f0 := fields[0]
	n := f0.Len()
	nm := len(fields)
	vs := &VarStats{
		Name:    f0.Name,
		NPoints: n,
		HasFill: f0.HasFill,
		Fill:    f0.Fill,
		Mom:     stats.NewMoments(n),
		min1:    make([]float32, n),
		min2:    make([]float32, n),
		max1:    make([]float32, n),
		max2:    make([]float32, n),
		min1m:   make([]int32, n),
		max1m:   make([]int32, n),

		orig: make([][]float32, nm),
		nm:   nm,
	}
	vs.allocPerMember()
	vs.FillMask = make([]bool, n)
	if vs.HasFill {
		for i := 0; i < n; i++ {
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			vs.FillMask[i] = f0.Data[i] == f0.Fill
		}
	}
	for m, f := range fields {
		if f.Len() != n {
			return nil, fmt.Errorf("ensemble: member %d has %d points, want %d", m, f.Len(), n)
		}
		vs.orig[m] = f.Data
	}

	// Stage 1: per-member summaries, independent across members.
	par.Each(nm, func(m int) error {
		s := fields[m].Summarize()
		vs.RangePerMember[m] = s.Range
		vs.GlobalMean[m] = fields[m].GlobalMean()
		vs.ValidMean[m] = MaskedMean(fields[m].Data, vs.FillMask)
		return nil
	})

	// Stage 2: per-point aggregates (moments and running two-extremes) over
	// disjoint point ranges. Each worker folds members in index order, so
	// the accumulated sums match the serial loop bit for bit.
	par.Ranges(n, pointGrain, vs.accumulateRange)

	// Stage 3: RMSZ (eq. 7) and E_nmax (eq. 10), independent across members.
	par.Each(nm, func(m int) error {
		vs.RMSZ[m] = vs.RMSZOf(m, vs.orig[m])
		vs.Enmax[m] = vs.enmaxData(m, vs.orig[m])
		return nil
	})
	return vs, nil
}

// allocPerMember carves the five per-member vectors out of one backing
// array (they are fixed-size and never appended to).
func (vs *VarStats) allocPerMember() {
	nm := vs.nm
	per := make([]float64, 5*nm)
	vs.RangePerMember = per[0*nm : 1*nm : 1*nm]
	vs.GlobalMean = per[1*nm : 2*nm : 2*nm]
	vs.RMSZ = per[2*nm : 3*nm : 3*nm]
	vs.Enmax = per[3*nm : 4*nm : 4*nm]
	vs.ValidMean = per[4*nm : 5*nm : 5*nm]
}

// accumulateRange folds every member's values in [lo, hi) into the
// per-point aggregates.
func (vs *VarStats) accumulateRange(lo, hi int) {
	vs.initExtremes(lo, hi)
	vs.foldRange(vs.orig, 0, lo, hi)
}

// initExtremes resets the running two-extreme trackers over [lo, hi). Must
// run exactly once per point before the first foldRange over it.
func (vs *VarStats) initExtremes(lo, hi int) {
	min1, min2, max1, max2 := vs.min1, vs.min2, vs.max1, vs.max2
	for i := lo; i < hi; i++ {
		min1[i] = float32(math.Inf(1))
		min2[i] = float32(math.Inf(1))
		max1[i] = float32(math.Inf(-1))
		max2[i] = float32(math.Inf(-1))
	}
}

// foldRange folds the given members (whose ensemble indices start at base)
// into the per-point aggregates over [lo, hi), in slice order. Accumulation
// order per point is the fold order, so feeding members 0..M-1 through any
// chunking yields sums bit-identical to one pass over the whole ensemble.
func (vs *VarStats) foldRange(members [][]float32, base, lo, hi int) {
	cnt, sum, sumsq := vs.Mom.N, vs.Mom.Sum, vs.Mom.SumSq
	min1, min2, max1, max2 := vs.min1, vs.min2, vs.max1, vs.max2
	min1m, max1m := vs.min1m, vs.max1m
	mask := vs.FillMask
	for j, data := range members {
		mi := int32(base + j)
		for i := lo; i < hi; i++ {
			if mask[i] {
				continue
			}
			v := data[i]
			x := float64(v)
			cnt[i]++
			sum[i] += x
			sumsq[i] += x * x
			if v < min1[i] {
				min2[i] = min1[i]
				min1[i] = v
				min1m[i] = mi
			} else if v < min2[i] {
				min2[i] = v
			}
			if v > max1[i] {
				max2[i] = max1[i]
				max1[i] = v
				max1m[i] = mi
			} else if v > max2[i] {
				max2[i] = v
			}
		}
	}
}

// Members returns the ensemble size.
func (vs *VarStats) Members() int { return vs.nm }

// Original returns member m's original data (shared, do not modify). Only
// valid for materialized builds; streamed builds use AcquireOriginal.
func (vs *VarStats) Original(m int) []float32 { return vs.orig[m] }

// Streamed reports whether this VarStats was built without retaining member
// data (BuildStream); callers must then use AcquireOriginal instead of
// Original.
func (vs *VarStats) Streamed() bool { return vs.orig == nil }

// AcquireOriginal returns member m's original data plus a release func the
// caller must invoke when done with the slice. Materialized builds hand out
// the retained slice with a no-op release; streamed builds regenerate the
// member from the source (deterministic, so bit-identical to the build
// pass) and release it back to its pool.
func (vs *VarStats) AcquireOriginal(m int) ([]float32, func()) {
	if vs.orig != nil {
		return vs.orig[m], func() {}
	}
	f := vs.src.Field(vs.varIdx, m)
	return f.Data, func() { releaseField(vs.src, f) }
}

// ScoreRMSZ scores data (typically a reconstruction of member exclude's
// values) against the leave-one-out statistics of {E \ exclude}. It is
// RMSZOf for callers that already hold the excluded member's original data —
// required in streamed mode, where orig is not retained.
func (vs *VarStats) ScoreRMSZ(exclude, data []float32) float64 {
	if len(data) != vs.NPoints {
		return math.NaN()
	}
	return scoreRMSZ(vs.Mom, exclude, data, vs.FillMask)
}

// RMSZOf computes the RMSZ score (eqs. 6–7) of the given data against the
// leave-one-out statistics of the sub-ensemble {E \ m}. data may be member
// m's original values (yielding the eq. 7 score) or a reconstruction of
// them; in both cases the excluded value is member m's original one, since
// {E \ m} never contains reconstructed data.
func (vs *VarStats) RMSZOf(m int, data []float32) float64 {
	if len(data) != vs.NPoints {
		return math.NaN()
	}
	orig, release := vs.AcquireOriginal(m)
	defer release()
	return scoreRMSZ(vs.Mom, orig, data, vs.FillMask)
}

// scoreRMSZ is the shared eq. 6–7 scoring loop: Z-scores of data against
// the leave-one-out statistics of mo with exclude's values removed.
// Masked fill points and points with zero ensemble spread (σ = 0, which
// includes constant sub-ensembles) contribute nothing — they are excluded
// from the mean, exactly as a NaN-free implementation of eq. 7 requires —
// and a variable with no valid points at all scores NaN.
func scoreRMSZ(mo *stats.Moments, exclude, data []float32, mask []bool) float64 {
	cnts, sums, sumsqs := mo.N, mo.Sum, mo.SumSq
	var sum float64
	var cnt int
	for i, v := range data {
		if mask != nil && mask[i] {
			continue
		}
		// Leave-one-out moments, inlined from stats.Moments.Excluding with
		// identical operation order. n < 2 is the σ = NaN case; vr == 0 is
		// the zero-spread case; both skip the point.
		n := int(cnts[i]) - 1
		if n < 2 {
			continue
		}
		x := float64(exclude[i])
		s := sums[i] - x
		ss := sumsqs[i] - x*x
		mean := s / float64(n)
		vr := (ss - s*s/float64(n)) / float64(n-1)
		if !(vr > 0) { // zero spread, negative cancellation, or NaN input
			continue
		}
		std := math.Sqrt(vr)
		z := (float64(v) - mean) / std
		sum += z * z
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return math.Sqrt(sum / float64(cnt))
}

// enmaxData computes eq. 10 for member m (whose values are data): the
// maximum over grid points of the maximum pointwise distance to any other
// member, normalized by member m's range. The per-point maximum over others
// is max(|x−min'|, |max'−x|) where min'/max' exclude member m itself.
func (vs *VarStats) enmaxData(m int, data []float32) float64 {
	var maxDiff float64
	for i, v := range data {
		if vs.FillMask[i] {
			continue
		}
		lo := vs.min1[i]
		if vs.min1m[i] == int32(m) {
			lo = vs.min2[i]
		}
		hi := vs.max1[i]
		if vs.max1m[i] == int32(m) {
			hi = vs.max2[i]
		}
		if d := float64(v - lo); d > maxDiff {
			maxDiff = d
		}
		if d := float64(hi - v); d > maxDiff {
			maxDiff = d
		}
	}
	r := vs.RangePerMember[m]
	if r <= 0 {
		return math.NaN()
	}
	return maxDiff / r
}

// RMSZBox returns the five-number summary of the original RMSZ distribution
// (the histogram of Figure 2).
func (vs *VarStats) RMSZBox() stats.Boxplot { return stats.NewBoxplot(vs.RMSZ) }

// EnmaxBox returns the summary of the eq. 10 distribution (Figure 3).
func (vs *VarStats) EnmaxBox() stats.Boxplot { return stats.NewBoxplot(vs.Enmax) }

// EnmaxRange returns R_{E_nmax}: the spread of the eq. 10 distribution used
// as the denominator of the eq. 11 acceptance test.
func (vs *VarStats) EnmaxRange() float64 {
	b := vs.EnmaxBox()
	return b.Max - b.Min
}

// GlobalMeanBox summarizes the per-member global means, used for the
// paper's range-shift screen.
func (vs *VarStats) GlobalMeanBox() stats.Boxplot { return stats.NewBoxplot(vs.GlobalMean) }

// SigmaMedian returns the median per-point ensemble standard deviation over
// valid points — the scale the paper used (via the RMSZ ensemble test) to
// pick GRIB2's decimal scale factor per variable.
func (vs *VarStats) SigmaMedian() float64 {
	sigmas := make([]float64, 0, vs.NPoints)
	mo := vs.Mom
	for i := 0; i < mo.Len(); i++ {
		if vs.FillMask[i] || mo.N[i] < 2 {
			continue
		}
		// Full-ensemble std from the aggregates.
		n := float64(mo.N[i])
		mean := mo.Sum[i] / n
		v := (mo.SumSq[i] - mo.Sum[i]*mean) / (n - 1)
		if v < 0 {
			v = 0
		}
		sigmas = append(sigmas, math.Sqrt(v))
	}
	if len(sigmas) == 0 {
		return math.NaN()
	}
	sort.Float64s(sigmas)
	return sigmas[len(sigmas)/2]
}

// RMSZScores computes the eq. 7 RMSZ of every member of an arbitrary
// ensemble of data arrays against that ensemble's own leave-one-out
// statistics. The paper's bias test applies this to the fully reconstructed
// ensemble Ẽ ("substituting Ẽ for E"). fillMask marks points to skip.
func RMSZScores(members [][]float32, fillMask []bool) []float64 {
	if len(members) == 0 {
		return nil
	}
	// The ensemble is already materialized, so fold it directly instead of
	// going through RMSZScoresStream's chunked acquire/release machinery —
	// same fold order per point, so the moments (and scores) are
	// bit-identical, without the per-chunk bookkeeping allocations.
	n := len(members[0])
	mo := stats.NewMoments(n)
	par.Ranges(n, pointGrain, func(lo, hi int) {
		for _, data := range members {
			mo.AddMember(data, fillMask, lo, hi)
		}
	})
	out := make([]float64, len(members))
	par.Each(len(members), func(m int) error {
		out[m] = scoreRMSZ(mo, members[m], members[m], fillMask)
		return nil
	})
	return out
}

// MaskedMean averages data over non-masked points (mask may be nil). This is
// the unweighted global mean of the CESM-PVT range-shift screen; VarStats
// precomputes it per member as ValidMean.
func MaskedMean(data []float32, mask []bool) float64 {
	var sum float64
	var n int
	for i, v := range data {
		if mask != nil && mask[i] {
			continue
		}
		sum += float64(v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
