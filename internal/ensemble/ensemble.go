// Package ensemble builds the per-variable statistics of the CESM-PVT
// verification ensemble (§4.3): leave-one-out per-point mean/std for the
// Z-scores of eq. 6, the per-member RMSZ distribution of eq. 7, the
// normalized maximum pointwise error distribution of eq. 10, per-member
// ranges and global means. The aggregates are arranged so that excluding
// any single member is O(1) per point, making the whole 101-member analysis
// a two-pass streaming computation.
package ensemble

import (
	"fmt"
	"math"
	"sort"

	"climcompress/internal/field"
	"climcompress/internal/stats"
)

// Source supplies ensemble member fields for the catalog variables.
// model.Generator implements it.
type Source interface {
	Members() int
	Field(varIdx, member int) *field.Field
}

// VarStats holds one variable's ensemble statistics. It retains references
// to the member data (not copies) because the verification tests need the
// original values when scoring reconstructions.
type VarStats struct {
	Name    string
	NPoints int // stored points (including fill positions)

	HasFill  bool
	Fill     float32
	FillMask []bool // true where every member holds the fill sentinel

	// Per-point aggregates over members (fill points are zero-valued).
	Loo []stats.LeaveOneOut

	// Two smallest / largest member values per point, with the member that
	// holds the extreme, enabling exact max-over-others (eq. 10).
	min1, min2 []float32
	max1, max2 []float32
	min1m      []int32
	max1m      []int32

	orig [][]float32 // member data, indexed [member][point]

	RangePerMember []float64 // R_X^m over valid points
	RMSZ           []float64 // eq. 7 for each original member
	Enmax          []float64 // eq. 10 for each member
	GlobalMean     []float64 // area-weighted global mean per member
}

// CollectFields materializes all member fields of one variable.
func CollectFields(src Source, varIdx int) []*field.Field {
	out := make([]*field.Field, src.Members())
	for m := range out {
		out[m] = src.Field(varIdx, m)
	}
	return out
}

// Build computes the ensemble statistics for one variable from its member
// fields (as produced by CollectFields). The fields' data slices are
// retained by the returned VarStats.
func Build(fields []*field.Field) (*VarStats, error) {
	if len(fields) < 3 {
		return nil, fmt.Errorf("ensemble: need at least 3 members, got %d", len(fields))
	}
	f0 := fields[0]
	n := f0.Len()
	vs := &VarStats{
		Name:    f0.Name,
		NPoints: n,
		HasFill: f0.HasFill,
		Fill:    f0.Fill,
		Loo:     make([]stats.LeaveOneOut, n),
		min1:    make([]float32, n),
		min2:    make([]float32, n),
		max1:    make([]float32, n),
		max2:    make([]float32, n),
		min1m:   make([]int32, n),
		max1m:   make([]int32, n),
	}
	vs.FillMask = make([]bool, n)
	if vs.HasFill {
		for i := 0; i < n; i++ {
			vs.FillMask[i] = f0.Data[i] == f0.Fill
		}
	}
	for i := range vs.min1 {
		vs.min1[i] = float32(math.Inf(1))
		vs.min2[i] = float32(math.Inf(1))
		vs.max1[i] = float32(math.Inf(-1))
		vs.max2[i] = float32(math.Inf(-1))
	}

	// Pass 1: per-point aggregates, per-member summaries.
	for m, f := range fields {
		if f.Len() != n {
			return nil, fmt.Errorf("ensemble: member %d has %d points, want %d", m, f.Len(), n)
		}
		vs.orig = append(vs.orig, f.Data)
		for i, v := range f.Data {
			if vs.FillMask[i] {
				continue
			}
			vs.Loo[i].Add(float64(v))
			if v < vs.min1[i] {
				vs.min2[i] = vs.min1[i]
				vs.min1[i] = v
				vs.min1m[i] = int32(m)
			} else if v < vs.min2[i] {
				vs.min2[i] = v
			}
			if v > vs.max1[i] {
				vs.max2[i] = vs.max1[i]
				vs.max1[i] = v
				vs.max1m[i] = int32(m)
			} else if v > vs.max2[i] {
				vs.max2[i] = v
			}
		}
		s := f.Summarize()
		vs.RangePerMember = append(vs.RangePerMember, s.Range)
		vs.GlobalMean = append(vs.GlobalMean, f.GlobalMean())
	}

	// Pass 2: RMSZ (eq. 7) and E_nmax (eq. 10) per member.
	vs.RMSZ = make([]float64, len(fields))
	vs.Enmax = make([]float64, len(fields))
	for m, f := range fields {
		vs.RMSZ[m] = vs.RMSZOf(m, f.Data)
		vs.Enmax[m] = vs.enmaxOf(m)
	}
	return vs, nil
}

// Members returns the ensemble size.
func (vs *VarStats) Members() int { return len(vs.orig) }

// Original returns member m's original data (shared, do not modify).
func (vs *VarStats) Original(m int) []float32 { return vs.orig[m] }

// RMSZOf computes the RMSZ score (eqs. 6–7) of the given data against the
// leave-one-out statistics of the sub-ensemble {E \ m}. data may be member
// m's original values (yielding the eq. 7 score) or a reconstruction of
// them; in both cases the excluded value is member m's original one, since
// {E \ m} never contains reconstructed data.
func (vs *VarStats) RMSZOf(m int, data []float32) float64 {
	if len(data) != vs.NPoints {
		return math.NaN()
	}
	om := vs.orig[m]
	var sum float64
	var cnt int
	for i, v := range data {
		if vs.FillMask[i] {
			continue
		}
		mean, std := vs.Loo[i].Excluding(float64(om[i]))
		if std == 0 || math.IsNaN(std) {
			continue
		}
		z := (float64(v) - mean) / std
		sum += z * z
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return math.Sqrt(sum / float64(cnt))
}

// enmaxOf computes eq. 10 for member m: the maximum over grid points of the
// maximum pointwise distance to any other member, normalized by member m's
// range. The per-point maximum over others is max(|x−min'|, |max'−x|) where
// min'/max' exclude member m itself.
func (vs *VarStats) enmaxOf(m int) float64 {
	data := vs.orig[m]
	var maxDiff float64
	for i, v := range data {
		if vs.FillMask[i] {
			continue
		}
		lo := vs.min1[i]
		if vs.min1m[i] == int32(m) {
			lo = vs.min2[i]
		}
		hi := vs.max1[i]
		if vs.max1m[i] == int32(m) {
			hi = vs.max2[i]
		}
		if d := float64(v - lo); d > maxDiff {
			maxDiff = d
		}
		if d := float64(hi - v); d > maxDiff {
			maxDiff = d
		}
	}
	r := vs.RangePerMember[m]
	if r <= 0 {
		return math.NaN()
	}
	return maxDiff / r
}

// RMSZBox returns the five-number summary of the original RMSZ distribution
// (the histogram of Figure 2).
func (vs *VarStats) RMSZBox() stats.Boxplot { return stats.NewBoxplot(vs.RMSZ) }

// EnmaxBox returns the summary of the eq. 10 distribution (Figure 3).
func (vs *VarStats) EnmaxBox() stats.Boxplot { return stats.NewBoxplot(vs.Enmax) }

// EnmaxRange returns R_{E_nmax}: the spread of the eq. 10 distribution used
// as the denominator of the eq. 11 acceptance test.
func (vs *VarStats) EnmaxRange() float64 {
	b := vs.EnmaxBox()
	return b.Max - b.Min
}

// GlobalMeanBox summarizes the per-member global means, used for the
// paper's range-shift screen.
func (vs *VarStats) GlobalMeanBox() stats.Boxplot { return stats.NewBoxplot(vs.GlobalMean) }

// SigmaMedian returns the median per-point ensemble standard deviation over
// valid points — the scale the paper used (via the RMSZ ensemble test) to
// pick GRIB2's decimal scale factor per variable.
func (vs *VarStats) SigmaMedian() float64 {
	sigmas := make([]float64, 0, vs.NPoints)
	for i := range vs.Loo {
		if vs.FillMask[i] || vs.Loo[i].N < 2 {
			continue
		}
		// Full-ensemble std from the aggregates.
		n := float64(vs.Loo[i].N)
		mean := vs.Loo[i].Sum / n
		v := (vs.Loo[i].SumSq - vs.Loo[i].Sum*mean) / (n - 1)
		if v < 0 {
			v = 0
		}
		sigmas = append(sigmas, math.Sqrt(v))
	}
	if len(sigmas) == 0 {
		return math.NaN()
	}
	sort.Float64s(sigmas)
	return sigmas[len(sigmas)/2]
}

// RMSZScores computes the eq. 7 RMSZ of every member of an arbitrary
// ensemble of data arrays against that ensemble's own leave-one-out
// statistics. The paper's bias test applies this to the fully reconstructed
// ensemble Ẽ ("substituting Ẽ for E"). fillMask marks points to skip.
func RMSZScores(members [][]float32, fillMask []bool) []float64 {
	if len(members) == 0 {
		return nil
	}
	n := len(members[0])
	loo := make([]stats.LeaveOneOut, n)
	for _, data := range members {
		for i, v := range data {
			if fillMask != nil && fillMask[i] {
				continue
			}
			loo[i].Add(float64(v))
		}
	}
	out := make([]float64, len(members))
	for m, data := range members {
		var sum float64
		var cnt int
		for i, v := range data {
			if fillMask != nil && fillMask[i] {
				continue
			}
			mean, std := loo[i].Excluding(float64(v))
			if std == 0 || math.IsNaN(std) {
				continue
			}
			z := (float64(v) - mean) / std
			sum += z * z
			cnt++
		}
		if cnt == 0 {
			out[m] = math.NaN()
		} else {
			out[m] = math.Sqrt(sum / float64(cnt))
		}
	}
	return out
}
