package ensemble

import (
	"runtime"
	"sync"
	"testing"

	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/par"
)

// TestReleaseFieldsDoubleReleaseSafe: releasing a field set twice must be a
// no-op the second time — in particular it must not insert the same buffer
// into the scratch pool twice, which would hand one slice to two concurrent
// consumers. The pattern-stamping consumers below (plus the race detector)
// catch any such aliasing.
func TestReleaseFieldsDoubleReleaseSafe(t *testing.T) {
	g := grid.Test()
	fields := make([]*field.Field, 8)
	for i := range fields {
		fields[i] = field.New("X", "1", g, false)
		for j := range fields[i].Data {
			fields[i].Data[j] = float32(i)
		}
	}
	n := fields[0].Len()
	ReleaseFields(fields)
	ReleaseFields(fields) // must be a no-op: Data is already nil
	for _, f := range fields {
		if f.Data != nil {
			t.Fatal("Release left Data non-nil")
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(tag float32) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				b := par.GetFloats(n)
				for j := range b {
					b[j] = tag
				}
				runtime.Gosched()
				for j := range b {
					if b[j] != tag {
						t.Errorf("buffer shared between consumers: got %v, want %v", b[j], tag)
						return
					}
				}
				par.PutFloats(b)
			}
		}(float32(w + 1))
	}
	wg.Wait()
}

// TestScratchPoolSizeMismatch: recycling buffers of one size must never
// surface stale lengths or stale contents at another size.
func TestScratchPoolSizeMismatch(t *testing.T) {
	small := par.GetFloats(64)
	for i := range small {
		small[i] = 7
	}
	par.PutFloats(small)

	big := par.GetFloats(1 << 14)
	if len(big) != 1<<14 {
		t.Fatalf("len = %d, want %d", len(big), 1<<14)
	}
	for i, v := range big {
		if v != 0 {
			t.Fatalf("grown buffer not zeroed at %d: %v", i, v)
		}
	}
	for i := range big {
		big[i] = 9
	}
	par.PutFloats(big)

	shrunk := par.GetFloats(100)
	if len(shrunk) != 100 {
		t.Fatalf("len = %d, want 100", len(shrunk))
	}
	for i, v := range shrunk {
		if v != 0 {
			t.Fatalf("shrunk buffer not zeroed at %d: %v", i, v)
		}
	}
	par.PutFloats(shrunk)
}

// TestStreamedBuildUnderPoolChurn runs a streamed build while other
// goroutines hammer the scratch pool with mismatched sizes and while the
// same field set is double-released, then checks the statistics still match
// a serial reference bit-for-bit. This is the "size-mismatch reuse must not
// corrupt concurrent experiments" contract.
func TestStreamedBuildUnderPoolChurn(t *testing.T) {
	src := &streamSource{g: grid.Test(), nm: 11}
	ref := src.materialize(0)
	want, err := Build(ref)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sizes := []int{1, 63, 1024, 40000}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b := par.GetFloats(sizes[(i+w)%len(sizes)])
				for j := range b {
					b[j] = float32(w)
				}
				par.PutFloats(b)
				junk := []*field.Field{field.New("J", "1", grid.Test(), false)}
				ReleaseFields(junk)
				ReleaseFields(junk)
			}
		}(w)
	}

	got, err := BuildStream(src, 0)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	eqF64(t, "RMSZ", got.RMSZ, want.RMSZ)
	eqF64(t, "Enmax", got.Enmax, want.Enmax)
	eqF64(t, "GlobalMean", got.GlobalMean, want.GlobalMean)
	eqF64(t, "ValidMean", got.ValidMean, want.ValidMean)
	if n := src.outstanding.Load(); n != 0 {
		t.Fatalf("%d fields leaked", n)
	}
}
