package ensemble

import (
	"math"
	"sync/atomic"
	"testing"

	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/par"
	"climcompress/internal/stats"
)

// streamSource is a deterministic Source that tracks field residency: every
// Field call bumps the outstanding count, every Release drops it, and the
// high-water mark is recorded. Regenerating a member always yields the same
// bits, matching the contract BuildStream relies on.
type streamSource struct {
	g        *grid.Grid
	nm       int
	withFill bool

	outstanding atomic.Int64
	peak        atomic.Int64
	gets        atomic.Int64
}

func (s *streamSource) Members() int { return s.nm }

func (s *streamSource) Field(varIdx, m int) *field.Field {
	f := field.New("X", "1", s.g, false)
	f.HasFill = s.withFill
	for i := range f.Data {
		f.Data[i] = s.value(varIdx, m, i)
	}
	s.gets.Add(1)
	cur := s.outstanding.Add(1)
	for {
		p := s.peak.Load()
		if cur <= p || s.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	return f
}

func (s *streamSource) Release(f *field.Field) {
	s.outstanding.Add(-1)
	f.Release()
}

// value is a pure function of (varIdx, member, point): a smooth base plus
// hash noise, with a fixed fill pattern shared by all members.
func (s *streamSource) value(varIdx, m, i int) float32 {
	if s.withFill && i%17 == 0 {
		return field.DefaultFill
	}
	x := uint64(varIdx)*0x9e3779b97f4a7c15 + uint64(m)*0xbf58476d1ce4e5b9 + uint64(i)*0x94d049bb133111eb
	x ^= x >> 31
	x *= 0xd6e8feb86659fd93
	x ^= x >> 27
	return float32(10+i%7) + float32(x%100000)/50000 - 1
}

// materialize builds the full field set the way CollectFields would, but
// without touching the residency counters (plain field.New allocations).
func (s *streamSource) materialize(varIdx int) []*field.Field {
	out := make([]*field.Field, s.nm)
	for m := range out {
		f := field.New("X", "1", s.g, false)
		f.HasFill = s.withFill
		for i := range f.Data {
			f.Data[i] = s.value(varIdx, m, i)
		}
		out[m] = f
	}
	return out
}

// eqF64 compares float64 slices bit-for-bit (NaN == NaN).
func eqF64(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s[%d]: %v != %v", label, i, a[i], b[i])
		}
	}
}

func TestBuildStreamBitIdentical(t *testing.T) {
	for _, withFill := range []bool{false, true} {
		src := &streamSource{g: grid.Test(), nm: 13, withFill: withFill}
		fields := src.materialize(0)
		want, err := Build(fields)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BuildStream(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Streamed() || want.Streamed() {
			t.Fatal("Streamed flags wrong")
		}
		if got.Members() != want.Members() || got.NPoints != want.NPoints {
			t.Fatal("shape mismatch")
		}
		eqF64(t, "RMSZ", want.RMSZ, got.RMSZ)
		eqF64(t, "Enmax", want.Enmax, got.Enmax)
		eqF64(t, "GlobalMean", want.GlobalMean, got.GlobalMean)
		eqF64(t, "ValidMean", want.ValidMean, got.ValidMean)
		eqF64(t, "RangePerMember", want.RangePerMember, got.RangePerMember)
		eqF64(t, "Mom.Sum", want.Mom.Sum, got.Mom.Sum)
		eqF64(t, "Mom.SumSq", want.Mom.SumSq, got.Mom.SumSq)
		for i := range want.FillMask {
			if want.FillMask[i] != got.FillMask[i] {
				t.Fatalf("FillMask[%d] differs", i)
			}
		}
		if sm, gm := want.SigmaMedian(), got.SigmaMedian(); math.Float64bits(sm) != math.Float64bits(gm) {
			t.Fatalf("SigmaMedian %v != %v", sm, gm)
		}
		if n := src.outstanding.Load(); n != 0 {
			t.Fatalf("%d fields leaked", n)
		}
	}
}

func TestBuildStreamResidencyBounded(t *testing.T) {
	par.SetWidth(2)
	defer par.SetWidth(0)
	src := &streamSource{g: grid.Test(), nm: 32}
	vs, err := BuildStream(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Members() != 32 {
		t.Fatal("member count")
	}
	// Pass 1 holds one chunk (≤ width fields); pass 2 holds ≤ width
	// concurrently-scored fields. Leave headroom of one chunk for scheduling
	// overlap, but the bound must not scale with the 32 members.
	limit := int64(3*par.Width() + 1)
	if p := src.peak.Load(); p > limit {
		t.Fatalf("peak residency %d exceeds O(workers) bound %d", p, limit)
	}
	if n := src.outstanding.Load(); n != 0 {
		t.Fatalf("%d fields leaked", n)
	}
}

func TestAcquireOriginalStreamed(t *testing.T) {
	src := &streamSource{g: grid.Test(), nm: 5}
	vs, err := BuildStream(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := src.outstanding.Load()
	data, release := vs.AcquireOriginal(2)
	for i, v := range data {
		if v != src.value(3, 2, i) {
			t.Fatalf("regenerated member differs at %d", i)
		}
	}
	if src.outstanding.Load() != before+1 {
		t.Fatal("acquire not tracked")
	}
	release()
	if src.outstanding.Load() != before {
		t.Fatal("release not tracked")
	}

	// Materialized stats hand out the retained slice with a no-op release.
	fields := src.materialize(3)
	mvs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	d2, rel2 := mvs.AcquireOriginal(2)
	if &d2[0] != &mvs.Original(2)[0] {
		t.Fatal("materialized acquire must alias Original")
	}
	rel2()
	if mvs.Original(2) == nil {
		t.Fatal("no-op release mutated stats")
	}
}

func TestRMSZScoresStreamMatchesSerial(t *testing.T) {
	src := &streamSource{g: grid.Test(), nm: 9, withFill: true}
	fields := src.materialize(1)
	members := make([][]float32, len(fields))
	for m, f := range fields {
		members[m] = f.Data
	}
	mask := make([]bool, len(members[0]))
	for i := range mask {
		mask[i] = members[0][i] == field.DefaultFill
	}

	// Serial reference: one moment pass in member order, then score.
	n := len(members[0])
	mo := stats.NewMoments(n)
	for _, data := range members {
		mo.AddMember(data, mask, 0, n)
	}
	want := make([]float64, len(members))
	for m := range members {
		want[m] = scoreRMSZ(mo, members[m], members[m], mask)
	}

	eqF64(t, "RMSZScores", want, RMSZScores(members, mask))

	acquires := 0
	got := RMSZScoresStream(len(members), n, mask, func(m int) ([]float32, func()) {
		acquires++
		return members[m], func() {}
	})
	eqF64(t, "RMSZScoresStream", want, got)
	if acquires < 2*len(members) {
		t.Fatalf("expected two acquire passes, saw %d acquires", acquires)
	}
}
