package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/stats"
)

// naiveRMSZ recomputes member m's leave-one-out RMSZ from scratch: at every
// point, the mean and std of the sub-ensemble {E \ m} via a fresh Welford
// accumulation — the O(M²·N) textbook formulation of eqs. 6–7 that the
// streaming-moment engine must reproduce.
func naiveRMSZ(members [][]float32, m int, mask []bool) float64 {
	n := len(members[m])
	var sum float64
	var cnt int
	for p := 0; p < n; p++ {
		if mask != nil && mask[p] {
			continue
		}
		var w stats.Welford
		for o := range members {
			if o == m {
				continue
			}
			w.Add(float64(members[o][p]))
		}
		std := w.StdDev()
		if std == 0 || math.IsNaN(std) {
			continue
		}
		z := (float64(members[m][p]) - w.Mean()) / std
		sum += z * z
		cnt++
	}
	if cnt == 0 {
		return math.NaN()
	}
	return math.Sqrt(sum / float64(cnt))
}

// relDiff returns |a-b| / max(|a|, |b|, 1).
func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) / scale
}

// TestGoldenMomentVsNaive proves the moment formulation: on randomized
// inputs the streaming-moment RMSZ agrees with the naive from-scratch
// leave-one-out computation to 1e-10 relative.
func TestGoldenMomentVsNaive(t *testing.T) {
	const tol = 1e-10
	for _, sigma := range []float64{0.05, 1.0, 40.0} {
		fields := syntheticFields(17, sigma, int64(sigma*100)+21)
		vs, err := Build(fields)
		if err != nil {
			t.Fatal(err)
		}
		members := make([][]float32, len(fields))
		for m, f := range fields {
			members[m] = f.Data
		}
		for m := range members {
			want := naiveRMSZ(members, m, vs.FillMask)
			if d := relDiff(vs.RMSZ[m], want); d > tol {
				t.Fatalf("sigma=%v member %d: moment RMSZ %v vs naive %v (rel %v)",
					sigma, m, vs.RMSZ[m], want, d)
			}
		}
		// RMSZScores (the bias-test path) against the same golden values.
		scores := RMSZScores(members, vs.FillMask)
		for m := range members {
			want := naiveRMSZ(members, m, vs.FillMask)
			if d := relDiff(scores[m], want); d > tol {
				t.Fatalf("sigma=%v RMSZScores[%d] = %v vs naive %v (rel %v)",
					sigma, m, scores[m], want, d)
			}
		}
	}
}

// TestGoldenDegenerateInputs exercises the constant and zero-variance
// paths: points where every member agrees exactly (σ = 0) must be excluded
// from the score, not propagated as NaN or Inf, in both formulations.
func TestGoldenDegenerateInputs(t *testing.T) {
	const tol = 1e-10
	g := grid.Test()
	rng := rand.New(rand.NewSource(77))
	nm := 11
	fields := make([]*field.Field, nm)
	for m := range fields {
		f := field.New("D", "1", g, false)
		for i := range f.Data {
			switch {
			case i%5 == 0: // constant across members: zero ensemble spread
				f.Data[i] = 42
			case i%5 == 1: // constant except via float32 rounding
				f.Data[i] = float32(1e8)
			default:
				f.Data[i] = float32(3 + rng.NormFloat64())
			}
		}
		fields[m] = f
	}
	vs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	members := make([][]float32, nm)
	for m, f := range fields {
		members[m] = f.Data
	}
	for m := range members {
		if math.IsNaN(vs.RMSZ[m]) || math.IsInf(vs.RMSZ[m], 0) {
			t.Fatalf("member %d RMSZ = %v on degenerate input", m, vs.RMSZ[m])
		}
		want := naiveRMSZ(members, m, vs.FillMask)
		if d := relDiff(vs.RMSZ[m], want); d > tol {
			t.Fatalf("degenerate member %d: moment %v vs naive %v (rel %v)", m, vs.RMSZ[m], want, d)
		}
	}

	// Fully constant ensemble: no point has spread, so every score is NaN
	// (no valid points) rather than Inf.
	flat := make([]*field.Field, nm)
	for m := range flat {
		f := field.New("F", "1", g, false)
		for i := range f.Data {
			f.Data[i] = 7
		}
		flat[m] = f
	}
	vsFlat, err := Build(flat)
	if err != nil {
		t.Fatal(err)
	}
	for m, r := range vsFlat.RMSZ {
		if !math.IsNaN(r) {
			t.Fatalf("flat ensemble member %d RMSZ = %v, want NaN", m, r)
		}
	}
}

// TestFullyMaskedColumn is the regression test for the fill guard: a
// variable whose every point is the fill sentinel must produce NaN scores
// (no valid points) without poisoning the accumulators or dividing by zero.
func TestFullyMaskedColumn(t *testing.T) {
	g := grid.Test()
	nm := 7
	fields := make([]*field.Field, nm)
	for m := range fields {
		f := field.New("M", "1", g, false)
		f.HasFill = true
		for i := range f.Data {
			f.Data[i] = f.Fill
		}
		fields[m] = f
	}
	vs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	for i, masked := range vs.FillMask {
		if !masked {
			t.Fatalf("point %d not masked", i)
		}
		if vs.Mom.N[i] != 0 {
			t.Fatalf("masked point %d accumulated %d members", i, vs.Mom.N[i])
		}
	}
	for m := range fields {
		if !math.IsNaN(vs.RMSZ[m]) {
			t.Fatalf("member %d RMSZ = %v, want NaN for fully-masked variable", m, vs.RMSZ[m])
		}
	}
	if !math.IsNaN(vs.SigmaMedian()) {
		t.Fatalf("SigmaMedian = %v, want NaN", vs.SigmaMedian())
	}
	// The bias-test scorer with the same all-true mask.
	members := make([][]float32, nm)
	for m, f := range fields {
		members[m] = f.Data
	}
	for m, s := range RMSZScores(members, vs.FillMask) {
		if !math.IsNaN(s) {
			t.Fatalf("RMSZScores[%d] = %v, want NaN", m, s)
		}
	}
}
