// Streaming ensemble build: members flow generator → accumulators in chunks
// of O(workers) instead of being materialized all at once, so peak resident
// member fields per variable drop from the ensemble size (101 at paper
// scale) to a small multiple of the worker-pool width. Per-point aggregates
// fold members in index order regardless of chunking, so every statistic is
// bit-identical to the materialized Build path.

package ensemble

import (
	"fmt"

	"climcompress/internal/field"
	"climcompress/internal/par"
	"climcompress/internal/stats"
)

// ReleasingSource is a Source that wants its fields handed back when a
// consumer is done with them — e.g. to return pooled buffers or track
// residency. Sources without it get the default field.Release.
type ReleasingSource interface {
	Source
	Release(f *field.Field)
}

// releaseField hands a consumed field back to its source (if it cares) or
// to the shared scratch pool.
func releaseField(src Source, f *field.Field) {
	if rs, ok := src.(ReleasingSource); ok {
		rs.Release(f)
		return
	}
	f.Release()
}

// chunkSize is the streaming chunk: the number of member fields resident at
// once per pass.
func chunkSize() int {
	if w := par.Width(); w > 1 {
		return w
	}
	return 1
}

// BuildStream computes the same ensemble statistics as Build without ever
// holding more than O(workers) member fields. Two passes over the (assumed
// deterministic) source:
//
//	pass 1 — chunks of members are generated in parallel, folded into the
//	per-point moments/extremes in member order, summarized, and released;
//	pass 2 — each member is regenerated to compute its RMSZ (which needs the
//	complete moments) and E_nmax, then released.
//
// The returned VarStats does not retain member data; consumers use
// AcquireOriginal, which regenerates on demand.
func BuildStream(src Source, varIdx int) (*VarStats, error) {
	return buildStream(src, varIdx, -1, nil)
}

// BuildStreamWithScores is BuildStream with the second pass short-circuited
// by previously computed per-member RMSZ and E_nmax vectors (e.g. decoded
// from an artifact cache keyed on the same inputs). Both must have exactly
// Members() entries; otherwise they are ignored and pass 2 runs normally.
func BuildStreamWithScores(src Source, varIdx int, rmsz, enmax []float64) (*VarStats, error) {
	n := len(rmsz)
	if len(enmax) != n {
		return buildStream(src, varIdx, -1, nil)
	}
	return buildStream(src, varIdx, n, func(m int) (float64, float64) {
		return rmsz[m], enmax[m]
	})
}

// BuildStreamWithScoresFunc is BuildStreamWithScores with the vectors
// supplied lazily: score(m) returns member m's (RMSZ, E_nmax) pair, and
// nscores declares how many members it covers. It lets callers feed
// scores straight from a zero-copy cache record view without
// materializing slices. When nscores differs from Members(), score is
// never called and pass 2 runs normally.
func BuildStreamWithScoresFunc(src Source, varIdx, nscores int, score func(m int) (float64, float64)) (*VarStats, error) {
	return buildStream(src, varIdx, nscores, score)
}

func buildStream(src Source, varIdx, nscores int, score func(m int) (float64, float64)) (*VarStats, error) {
	nm := src.Members()
	if nm < 3 {
		return nil, fmt.Errorf("ensemble: need at least 3 members, got %d", nm)
	}
	chunk := chunkSize()
	var vs *VarStats
	var err error
	for base := 0; base < nm && err == nil; base += chunk {
		end := base + chunk
		if end > nm {
			end = nm
		}
		fields := make([]*field.Field, end-base)
		par.Each(len(fields), func(j int) error {
			fields[j] = src.Field(varIdx, base+j)
			return nil
		})
		if base == 0 {
			vs = newStreamStats(fields[0], src, varIdx, nm)
		}
		data := make([][]float32, len(fields))
		for j, f := range fields {
			if f.Len() != vs.NPoints {
				err = fmt.Errorf("ensemble: member %d has %d points, want %d", base+j, f.Len(), vs.NPoints)
				break
			}
			data[j] = f.Data
		}
		if err == nil {
			// Per-member summaries for the chunk, independent across members.
			par.Each(len(fields), func(j int) error {
				m := base + j
				s := fields[j].Summarize()
				vs.RangePerMember[m] = s.Range
				vs.GlobalMean[m] = fields[j].GlobalMean()
				vs.ValidMean[m] = MaskedMean(fields[j].Data, vs.FillMask)
				return nil
			})
			// Per-point aggregates: extremes init on the first chunk only,
			// then the chunk's members fold in index order.
			first := base == 0
			par.Ranges(vs.NPoints, pointGrain, func(lo, hi int) {
				if first {
					vs.initExtremes(lo, hi)
				}
				vs.foldRange(data, base, lo, hi)
			})
		}
		for _, f := range fields {
			releaseField(src, f)
		}
	}
	if err != nil {
		return nil, err
	}

	if nscores == nm && score != nil {
		for m := 0; m < nm; m++ {
			vs.RMSZ[m], vs.Enmax[m] = score(m)
		}
		return vs, nil
	}

	// Pass 2: RMSZ (needs the complete moments) and E_nmax per member, each
	// regenerated, scored, released. Residency stays O(workers) because the
	// pool bounds concurrent fn invocations.
	par.Each(nm, func(m int) error {
		f := src.Field(varIdx, m)
		vs.RMSZ[m] = scoreRMSZ(vs.Mom, f.Data, f.Data, vs.FillMask)
		vs.Enmax[m] = vs.enmaxData(m, f.Data)
		releaseField(src, f)
		return nil
	})
	return vs, nil
}

// newStreamStats allocates the accumulator set for a streamed build, taking
// variable metadata (name, fill handling, size) from the first member.
func newStreamStats(f0 *field.Field, src Source, varIdx, nm int) *VarStats {
	n := f0.Len()
	vs := &VarStats{
		Name:    f0.Name,
		NPoints: n,
		HasFill: f0.HasFill,
		Fill:    f0.Fill,
		Mom:     stats.NewMoments(n),
		min1:    make([]float32, n),
		min2:    make([]float32, n),
		max1:    make([]float32, n),
		max2:    make([]float32, n),
		min1m:   make([]int32, n),
		max1m:   make([]int32, n),

		src:    src,
		varIdx: varIdx,
		nm:     nm,
	}
	vs.allocPerMember()
	vs.FillMask = make([]bool, n)
	if vs.HasFill {
		for i := 0; i < n; i++ {
			//lint:floateq fill values are exact bit-pattern sentinels copied verbatim, never computed
			vs.FillMask[i] = f0.Data[i] == f0.Fill
		}
	}
	return vs
}

// RMSZScoresStream is RMSZScores over an ensemble supplied member-by-member:
// acquire(m) returns member m's data plus a release func. Pass A folds
// chunks of members (acquired in parallel, folded in member order) into the
// moments; pass B re-acquires each member and scores it. At most O(workers)
// member buffers are live at any moment, and the result is bit-identical to
// RMSZScores over the materialized ensemble.
func RMSZScoresStream(nm, npoints int, fillMask []bool, acquire func(m int) ([]float32, func())) []float64 {
	if nm == 0 {
		return nil
	}
	mo := stats.NewMoments(npoints)
	chunk := chunkSize()
	for base := 0; base < nm; base += chunk {
		end := base + chunk
		if end > nm {
			end = nm
		}
		data := make([][]float32, end-base)
		rel := make([]func(), end-base)
		par.Each(len(data), func(j int) error {
			data[j], rel[j] = acquire(base + j)
			return nil
		})
		par.Ranges(npoints, pointGrain, func(lo, hi int) {
			for _, d := range data {
				mo.AddMember(d, fillMask, lo, hi)
			}
		})
		for _, r := range rel {
			r()
		}
	}
	out := make([]float64, nm)
	par.Each(nm, func(m int) error {
		data, release := acquire(m)
		out[m] = scoreRMSZ(mo, data, data, fillMask)
		release()
		return nil
	})
	return out
}
