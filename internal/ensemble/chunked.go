// Chunked scoring accumulators for the fused verification path: the RMSZ
// and masked-mean reductions consume reconstructed values chunk by chunk as
// they decode, so no full reconstructed field exists on that path. Each
// accumulator replicates the per-point arithmetic and accumulation order of
// its whole-field counterpart (scoreRMSZ, MaskedMean), so the scores are
// bit-identical — pinned by the equivalence tests.

package ensemble

import (
	"fmt"
	"math"

	"climcompress/internal/par"
	"climcompress/internal/stats"
)

// RMSZAccumulator is the streaming form of ScoreRMSZ: chunks of the scored
// data (with the matching chunk of the excluded member's original values)
// are pushed in ascending contiguous order, and Finish returns the eq. 6–7
// RMSZ. Out-of-order or mismatched pushes poison the accumulator and
// Finish returns NaN, like ScoreRMSZ on a length mismatch.
type RMSZAccumulator struct {
	mo   *stats.Moments
	mask []bool

	sum   float64
	cnt   int
	total int
	bad   bool
}

// Reset prepares the accumulator to score against the leave-one-out
// statistics of mo (with mask marking fill points; may be nil).
func (a *RMSZAccumulator) Reset(mo *stats.Moments, mask []bool) {
	*a = RMSZAccumulator{mo: mo, mask: mask}
}

// Push accumulates one chunk: excl holds the excluded member's original
// values and vals the scored (typically reconstructed) values of points
// [off, off+len(vals)).
func (a *RMSZAccumulator) Push(excl, vals []float32, off int) {
	if len(excl) != len(vals) || off != a.total || off+len(vals) > a.mo.Len() {
		a.bad = true
		return
	}
	a.total += len(vals)
	cnts, sums, sumsqs := a.mo.N, a.mo.Sum, a.mo.SumSq
	mask := a.mask
	sum, cnt := a.sum, a.cnt
	for j, v := range vals {
		i := off + j
		if mask != nil && mask[i] {
			continue
		}
		// Same inlined leave-one-out moments as scoreRMSZ, operation for
		// operation.
		n := int(cnts[i]) - 1
		if n < 2 {
			continue
		}
		x := float64(excl[j])
		s := sums[i] - x
		ss := sumsqs[i] - x*x
		mean := s / float64(n)
		vr := (ss - s*s/float64(n)) / float64(n-1)
		if !(vr > 0) { // zero spread, negative cancellation, or NaN input
			continue
		}
		std := math.Sqrt(vr)
		z := (float64(v) - mean) / std
		sum += z * z
		cnt++
	}
	a.sum, a.cnt = sum, cnt
}

// Finish returns the RMSZ over the pushed chunks. npoints is the expected
// field size; a short or poisoned accumulation returns NaN, matching
// ScoreRMSZ's length check.
func (a *RMSZAccumulator) Finish(npoints int) float64 {
	if a.bad || a.total != npoints || a.cnt == 0 {
		return math.NaN()
	}
	return math.Sqrt(a.sum / float64(a.cnt))
}

// MeanAccumulator is the streaming form of MaskedMean.
type MeanAccumulator struct {
	mask []bool
	sum  float64
	n    int
}

// Reset prepares the accumulator with the fill mask (may be nil).
func (a *MeanAccumulator) Reset(mask []bool) {
	*a = MeanAccumulator{mask: mask}
}

// Push accumulates the values of points [off, off+len(vals)).
func (a *MeanAccumulator) Push(vals []float32, off int) {
	sum, n := a.sum, a.n
	if a.mask == nil {
		for _, v := range vals {
			sum += float64(v)
			n++
		}
	} else {
		for j, v := range vals {
			if a.mask[off+j] {
				continue
			}
			sum += float64(v)
			n++
		}
	}
	a.sum, a.n = sum, n
}

// Finish returns the mean over accumulated points, NaN when none.
func (a *MeanAccumulator) Finish() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum / float64(a.n)
}

// RMSZScoresChunked is RMSZScoresStream over an ensemble supplied chunk by
// chunk: decode(m, yield) streams member m's reconstructed values in
// ascending contiguous chunks (the compress.DecodeChunks contract). Pass A
// folds each member's chunks into the moments serially in member order —
// the exact fold order of the materialized RMSZScores, so the moments (and
// scores) are bit-identical; pass B re-decodes each member in parallel and
// self-scores it. No full member field is ever materialized, and at most
// O(workers) chunk buffers are live. A decode error aborts and is returned.
func RMSZScoresChunked(nm, npoints int, fillMask []bool, decode func(m int, yield func(off int, vals []float32) error) error) ([]float64, error) {
	if nm == 0 {
		return nil, nil
	}
	mo := stats.NewMoments(npoints)
	for m := 0; m < nm; m++ {
		total := 0
		err := decode(m, func(off int, vals []float32) error {
			if off != total || off+len(vals) > npoints {
				return fmt.Errorf("ensemble: member %d chunk [%d,%d) out of order in field of %d points", m, off, off+len(vals), npoints)
			}
			mo.AddMemberChunk(vals, fillMask, off)
			total = off + len(vals)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if total != npoints {
			return nil, fmt.Errorf("ensemble: member %d decoded %d of %d points", m, total, npoints)
		}
	}
	out := make([]float64, nm)
	err := par.Each(nm, func(m int) error {
		var acc RMSZAccumulator
		acc.Reset(mo, fillMask)
		err := decode(m, func(off int, vals []float32) error {
			// Self-scoring: the scored values are also the excluded ones,
			// exactly like RMSZScoresStream's scoreRMSZ(mo, data, data, mask).
			acc.Push(vals, vals, off)
			return nil
		})
		if err != nil {
			return err
		}
		out[m] = acc.Finish(npoints)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
