package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/field"
	"climcompress/internal/grid"
	"climcompress/internal/stats"
)

// syntheticFields builds an ensemble of nm member fields where point i has
// ensemble mean mu(i) and std sigma, using plain Gaussian noise.
func syntheticFields(nm int, sigma float64, seed int64) []*field.Field {
	g := grid.Test()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*field.Field, nm)
	for m := range out {
		f := field.New("X", "1", g, false)
		for i := range f.Data {
			mu := 10 + float64(i%7)
			f.Data[i] = float32(mu + sigma*rng.NormFloat64())
		}
		out[m] = f
	}
	return out
}

func TestBuildBasics(t *testing.T) {
	fields := syntheticFields(21, 1.0, 1)
	vs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Members() != 21 {
		t.Fatalf("members = %d", vs.Members())
	}
	if len(vs.RMSZ) != 21 || len(vs.Enmax) != 21 || len(vs.GlobalMean) != 21 {
		t.Fatal("per-member arrays wrong length")
	}
	// For Gaussian members, RMSZ of each original member should be near 1.
	for m, r := range vs.RMSZ {
		if r < 0.7 || r > 1.4 {
			t.Fatalf("member %d RMSZ = %v, expected ≈ 1", m, r)
		}
	}
	box := vs.RMSZBox()
	if box.N != 21 || box.Min <= 0 {
		t.Fatalf("bad RMSZ box %+v", box)
	}
}

func TestRMSZDetectsPerturbation(t *testing.T) {
	fields := syntheticFields(21, 1.0, 2)
	vs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	m := 3
	orig := vs.RMSZOf(m, fields[m].Data)
	if math.Abs(orig-vs.RMSZ[m]) > 1e-12 {
		t.Fatal("RMSZOf on original data disagrees with stored RMSZ")
	}
	// A small perturbation (well under sigma) moves RMSZ only slightly.
	small := make([]float32, len(fields[m].Data))
	for i, v := range fields[m].Data {
		small[i] = v + 0.01
	}
	if d := math.Abs(vs.RMSZOf(m, small) - orig); d > 0.05 {
		t.Fatalf("tiny perturbation moved RMSZ by %v", d)
	}
	// A perturbation comparable to sigma moves RMSZ a lot.
	big := make([]float32, len(fields[m].Data))
	for i, v := range fields[m].Data {
		big[i] = v + 3
	}
	if d := math.Abs(vs.RMSZOf(m, big) - orig); d < 0.5 {
		t.Fatalf("large perturbation moved RMSZ by only %v", d)
	}
}

func TestEnmaxWithinExpectedScale(t *testing.T) {
	fields := syntheticFields(31, 1.0, 3)
	vs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	// Values span roughly [10-3σ, 16+3σ]; max pairwise diff at a point is a
	// few sigma; normalized by range (≈12) it should be small but nonzero.
	for m, e := range vs.Enmax {
		if e <= 0 || e > 1 {
			t.Fatalf("member %d Enmax = %v", m, e)
		}
	}
	if vs.EnmaxRange() <= 0 {
		t.Fatal("Enmax distribution has no spread")
	}
}

func TestEnmaxExcludesSelf(t *testing.T) {
	// Make member 0 an extreme outlier at one point; other members' Enmax
	// must reflect their distance to it, while member 0's own Enmax must
	// exclude itself.
	fields := syntheticFields(11, 0.1, 4)
	fields[0].Data[5] += 50
	vs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	// Member 1 sees the outlier: big Enmax (distance ≈ 50 / range).
	if vs.Enmax[1] < 0.1 {
		t.Fatalf("member 1 should see the outlier, Enmax = %v", vs.Enmax[1])
	}
	// Member 0 measures against others at that point (who agree with each
	// other), so its Enmax is also large — but computed via min2/max2:
	// distance ≈ 50 normalized by member 0's own (inflated) range.
	if math.IsNaN(vs.Enmax[0]) {
		t.Fatal("member 0 Enmax is NaN")
	}
}

func TestFillMaskSkipsPoints(t *testing.T) {
	fields := syntheticFields(7, 1.0, 5)
	for _, f := range fields {
		f.HasFill = true
		f.Data[0] = f.Fill
		f.Data[10] = f.Fill
	}
	vs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	if !vs.FillMask[0] || !vs.FillMask[10] || vs.FillMask[1] {
		t.Fatal("fill mask wrong")
	}
	if vs.Mom.N[0] != 0 {
		t.Fatal("fill point accumulated values")
	}
	if math.IsNaN(vs.RMSZ[0]) {
		t.Fatal("RMSZ should ignore fill points, not become NaN")
	}
}

func TestSigmaMedian(t *testing.T) {
	fields := syntheticFields(51, 2.0, 6)
	vs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	med := vs.SigmaMedian()
	if med < 1.5 || med > 2.5 {
		t.Fatalf("SigmaMedian = %v, want ≈ 2", med)
	}
}

func TestRMSZScoresSelfConsistent(t *testing.T) {
	fields := syntheticFields(21, 1.0, 7)
	vs, err := Build(fields)
	if err != nil {
		t.Fatal(err)
	}
	members := make([][]float32, len(fields))
	for m, f := range fields {
		members[m] = f.Data
	}
	scores := RMSZScores(members, vs.FillMask)
	for m := range scores {
		if math.Abs(scores[m]-vs.RMSZ[m]) > 1e-9 {
			t.Fatalf("RMSZScores[%d] = %v, VarStats RMSZ = %v", m, scores[m], vs.RMSZ[m])
		}
	}
}

func TestRMSZScoresOfIdenticalEnsembles(t *testing.T) {
	// The bias test's ideal case: Ẽ == E gives identical score vectors, so
	// the regression is exactly slope 1 / intercept 0.
	fields := syntheticFields(21, 1.0, 8)
	a := make([][]float32, len(fields))
	for m, f := range fields {
		a[m] = f.Data
	}
	s1 := RMSZScores(a, nil)
	s2 := RMSZScores(a, nil)
	reg := stats.LinearFit(s1, s2)
	if math.Abs(reg.Slope-1) > 1e-12 || math.Abs(reg.Intercept) > 1e-12 {
		t.Fatalf("identical ensembles: slope %v intercept %v", reg.Slope, reg.Intercept)
	}
}

func TestBuildErrors(t *testing.T) {
	fields := syntheticFields(2, 1, 9)
	if _, err := Build(fields); err == nil {
		t.Fatal("too few members should error")
	}
	fields = syntheticFields(5, 1, 10)
	fields[3] = field.New("X", "1", grid.Small(), false)
	if _, err := Build(fields); err == nil {
		t.Fatal("mismatched field sizes should error")
	}
}

func TestGlobalMeansTight(t *testing.T) {
	fields := syntheticFields(31, 1.0, 11)
	vs, _ := Build(fields)
	box := vs.GlobalMeanBox()
	// Global means average ~10^2 points of unit noise: spread well under 1.
	if box.Range() > 1 {
		t.Fatalf("global means spread %v too wide", box.Range())
	}
}

func BenchmarkBuild(b *testing.B) {
	fields := syntheticFields(31, 1.0, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(fields); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMSZOf(b *testing.B) {
	fields := syntheticFields(31, 1.0, 13)
	vs, _ := Build(fields)
	data := fields[5].Data
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vs.RMSZOf(5, data)
	}
}
