package ensemble

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"climcompress/internal/stats"
)

// chunkedEnsemble builds a deterministic synthetic ensemble with a fill
// mask and a zero-spread (constant-across-members) point.
func chunkedEnsemble(nm, n int) (members [][]float32, mask []bool) {
	rng := rand.New(rand.NewSource(41))
	members = make([][]float32, nm)
	for m := range members {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(math.Sin(float64(i)/5)) + rng.Float32()*0.1
		}
		data[3] = 42 // zero ensemble spread at point 3
		members[m] = data
	}
	mask = make([]bool, n)
	for i := 0; i < n; i += 7 {
		mask[i] = true
	}
	return members, mask
}

func pushChunks(data []float32, step int, push func(off int, vals []float32)) {
	for off := 0; off < len(data); off += step {
		end := off + step
		if end > len(data) {
			end = len(data)
		}
		push(off, data[off:end])
	}
}

// TestRMSZAccumulatorMatchesScore pins bit-identity of the chunked RMSZ
// reduction against the whole-field scoring loop, across chunk sizes.
func TestRMSZAccumulatorMatchesScore(t *testing.T) {
	members, mask := chunkedEnsemble(9, 100)
	n := len(members[0])
	mo := stats.NewMoments(n)
	for _, d := range members {
		mo.AddMember(d, mask, 0, n)
	}
	recon := make([]float32, n)
	copy(recon, members[4])
	recon[11] += 0.05 // perturb so the score is nontrivial
	want := scoreRMSZ(mo, members[4], recon, mask)
	for _, step := range []int{1, 13, 100, 1000} {
		var acc RMSZAccumulator
		acc.Reset(mo, mask)
		pushChunks(recon, step, func(off int, vals []float32) {
			acc.Push(members[4][off:off+len(vals)], vals, off)
		})
		got := acc.Finish(n)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("step %d: chunked RMSZ %v != %v", step, got, want)
		}
	}
	// Poisoned accumulations return NaN like the whole-field length check.
	var acc RMSZAccumulator
	acc.Reset(mo, mask)
	acc.Push(recon[:10], recon[:10], 5) // out of order
	if !math.IsNaN(acc.Finish(n)) {
		t.Error("out-of-order push did not poison the accumulator")
	}
	acc.Reset(mo, mask)
	acc.Push(recon[:10], recon[:10], 0)
	if !math.IsNaN(acc.Finish(n)) { // short accumulation
		t.Error("short accumulation did not yield NaN")
	}
}

// TestMeanAccumulatorMatchesMaskedMean pins the chunked masked mean.
func TestMeanAccumulatorMatchesMaskedMean(t *testing.T) {
	members, mask := chunkedEnsemble(3, 57)
	data := members[0]
	for _, m := range [][]bool{mask, nil} {
		want := MaskedMean(data, m)
		for _, step := range []int{1, 8, 57} {
			var acc MeanAccumulator
			acc.Reset(m)
			pushChunks(data, step, func(off int, vals []float32) { acc.Push(vals, off) })
			if got := acc.Finish(); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("mask=%v step %d: %v != %v", m != nil, step, got, want)
			}
		}
	}
	var acc MeanAccumulator
	acc.Reset(nil)
	if !math.IsNaN(acc.Finish()) {
		t.Error("empty mean should be NaN")
	}
}

// TestRMSZScoresChunkedMatchesStream pins the fused bias-test scores
// against the streamed (and therefore materialized) implementation.
func TestRMSZScoresChunkedMatchesStream(t *testing.T) {
	members, mask := chunkedEnsemble(7, 90)
	n := len(members[0])
	want := RMSZScoresStream(len(members), n, mask, func(m int) ([]float32, func()) {
		return members[m], func() {}
	})
	for _, step := range []int{1, 17, 4096} {
		got, err := RMSZScoresChunked(len(members), n, mask, func(m int, yield func(off int, vals []float32) error) error {
			for off := 0; off < n; off += step {
				end := off + step
				if end > n {
					end = n
				}
				if err := yield(off, members[m][off:end]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: %d scores, want %d", step, len(got), len(want))
		}
		for m := range got {
			if math.Float64bits(got[m]) != math.Float64bits(want[m]) {
				t.Errorf("step %d member %d: %v != %v", step, m, got[m], want[m])
			}
		}
	}
}

// TestRMSZScoresChunkedErrors pins decode-error propagation and the
// short-member guard.
func TestRMSZScoresChunkedErrors(t *testing.T) {
	members, mask := chunkedEnsemble(4, 30)
	n := len(members[0])
	sentinel := errors.New("decode blew up")
	_, err := RMSZScoresChunked(len(members), n, mask, func(m int, yield func(off int, vals []float32) error) error {
		if m == 2 {
			return sentinel
		}
		return yield(0, members[m])
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("decode error not propagated: %v", err)
	}
	_, err = RMSZScoresChunked(len(members), n, mask, func(m int, yield func(off int, vals []float32) error) error {
		return yield(0, members[m][:n-1]) // short member
	})
	if err == nil {
		t.Error("short member not rejected")
	}
}
