// Package convert implements the paper's target workflow (§1): converting
// a sequence of time-slice "history files" (one file per instant, every
// variable) into per-variable time-series files, applying a per-variable
// compression assignment during the conversion — the post-processing step
// the paper proposes as the integration point for lossy compression.
package convert

import (
	"fmt"
	"path/filepath"
	"sort"

	"climcompress/internal/cdf"
)

// Options configures a conversion.
type Options struct {
	// Codec is the default codec registry name for series variables.
	Codec string
	// PerVar overrides the codec for specific variables (the hybrid
	// assignment of §5.4).
	PerVar map[string]string
	// Variables restricts conversion to the named variables (nil = all).
	Variables []string
	// OutDir receives one "series_<VAR>.cdf" file per variable.
	OutDir string
}

// Result summarizes a conversion.
type Result struct {
	Variables  int
	TimeSlices int
	// BytesIn is the total size of the variable payloads read.
	BytesIn int64
	// BytesOut is the total size of the compressed series payloads.
	BytesOut int64
	// PerVariable maps variable name to its series file and achieved
	// payload compression ratio.
	PerVariable map[string]VariableResult
}

// VariableResult is one converted variable.
type VariableResult struct {
	Path  string
	Codec string
	CR    float64
}

// Ratio returns BytesOut / BytesIn.
func (r Result) Ratio() float64 {
	if r.BytesIn == 0 {
		return 0
	}
	return float64(r.BytesOut) / float64(r.BytesIn)
}

// Convert reads the given history files (in time order) and writes one
// compressed time-series file per variable. Every history file must carry
// the same variables with identical shapes.
func Convert(historyPaths []string, opts Options) (Result, error) {
	res := Result{PerVariable: map[string]VariableResult{}}
	if len(historyPaths) == 0 {
		return res, fmt.Errorf("convert: no history files")
	}
	if opts.OutDir == "" {
		return res, fmt.Errorf("convert: OutDir required")
	}
	first, err := cdf.Open(historyPaths[0])
	if err != nil {
		return res, err
	}
	wanted := map[string]bool{}
	for _, v := range opts.Variables {
		wanted[v] = true
	}
	var names []string
	for _, n := range first.VarNames() {
		if len(wanted) == 0 || wanted[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return res, fmt.Errorf("convert: no matching variables")
	}
	res.TimeSlices = len(historyPaths)

	// Open all slices once; datasets are in-memory after Open.
	files := make([]*cdf.File, len(historyPaths))
	files[0] = first
	for i := 1; i < len(historyPaths); i++ {
		f, err := cdf.Open(historyPaths[i])
		if err != nil {
			return res, fmt.Errorf("convert: %s: %w", historyPaths[i], err)
		}
		files[i] = f
	}

	for _, name := range names {
		v0, ok := first.Var(name)
		if !ok {
			return res, fmt.Errorf("convert: variable %s missing", name)
		}
		out := cdf.New()
		out.GlobalAttr("variable", name)
		out.GlobalAttr("source", "convert: time-slice to time-series")
		timeDim := out.AddDim("time", len(files))
		dims := []int{timeDim}
		for _, d := range v0.Dims {
			dims = append(dims, out.AddDim(first.Dims[d].Name, first.Dims[d].Len))
		}
		perSlice := v0.Len(first)
		series := make([]float32, 0, perSlice*len(files))
		for i, f := range files {
			data, err := f.ReadVar(name)
			if err != nil {
				return res, fmt.Errorf("convert: %s slice %d: %w", name, i, err)
			}
			if len(data) != perSlice {
				return res, fmt.Errorf("convert: %s slice %d has %d values, want %d", name, i, len(data), perSlice)
			}
			series = append(series, data...)
			res.BytesIn += int64(4 * len(data))
		}
		sv, err := out.AddVar(name, dims, series, v0.Attrs...)
		if err != nil {
			return res, err
		}
		sv.HasFill, sv.Fill = v0.HasFill, v0.Fill

		codec := opts.Codec
		if codec == "" {
			codec = "nc"
		}
		if over, ok := opts.PerVar[name]; ok {
			codec = over
		}
		path := filepath.Join(opts.OutDir, "series_"+name+".cdf")
		if err := out.WriteFile(path, cdf.WriteOptions{Codec: codec}); err != nil {
			return res, fmt.Errorf("convert: %s: %w", name, err)
		}
		written, err := cdf.Open(path)
		if err != nil {
			return res, err
		}
		size, _ := written.PayloadSize(name)
		res.BytesOut += int64(size)
		res.PerVariable[name] = VariableResult{
			Path:  path,
			Codec: codec,
			CR:    float64(size) / float64(4*len(series)),
		}
		res.Variables++
	}
	return res, nil
}
