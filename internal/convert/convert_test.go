package convert

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"climcompress/internal/cdf"
	_ "climcompress/internal/compress/apax"
	_ "climcompress/internal/compress/fpzip"
	_ "climcompress/internal/compress/nclossless"
)

// writeHistory writes nslices tiny history files and returns their paths
// plus the per-variable data for verification.
func writeHistory(t *testing.T, dir string, nslices int) ([]string, map[string][][]float32) {
	t.Helper()
	want := map[string][][]float32{}
	var paths []string
	for ts := 0; ts < nslices; ts++ {
		f := cdf.New()
		f.GlobalAttr("time", fmt.Sprint(ts))
		lat := f.AddDim("lat", 6)
		lon := f.AddDim("lon", 8)
		for _, name := range []string{"TS", "PS", "SST"} {
			data := make([]float32, 48)
			for i := range data {
				data[i] = float32(ts*100 + i)
			}
			v, err := f.AddVar(name, []int{lat, lon}, data, cdf.Attr{Name: "units", Value: "x"})
			if err != nil {
				t.Fatal(err)
			}
			if name == "SST" {
				v.HasFill = true
				v.Fill = 1e35
				data[0] = 1e35
			}
			want[name] = append(want[name], data)
		}
		p := filepath.Join(dir, fmt.Sprintf("h%02d.cdf", ts))
		if err := f.WriteFile(p, cdf.WriteOptions{Codec: "raw"}); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths, want
}

func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	paths, want := writeHistory(t, dir, 4)
	out := filepath.Join(dir, "series")
	if err := os.MkdirAll(out, 0o755); err != nil {
		t.Fatal(err)
	}
	res, err := Convert(paths, Options{
		Codec:  "fpzip-32",
		PerVar: map[string]string{"PS": "nc"},
		OutDir: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variables != 3 || res.TimeSlices != 4 {
		t.Fatalf("result summary wrong: %+v", res)
	}
	if res.PerVariable["PS"].Codec != "nc" || res.PerVariable["TS"].Codec != "fpzip-32" {
		t.Fatalf("codec assignment wrong: %+v", res.PerVariable)
	}
	for name, slices := range want {
		sf, err := cdf.Open(res.PerVariable[name].Path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sf.ReadVar(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 4*48 {
			t.Fatalf("%s: series length %d", name, len(got))
		}
		for ts, data := range slices {
			for i := range data {
				if got[ts*48+i] != data[i] {
					t.Fatalf("%s: slice %d point %d: %v vs %v", name, ts, i, got[ts*48+i], data[i])
				}
			}
		}
		// Time dimension must lead.
		v, _ := sf.Var(name)
		if sf.Dims[v.Dims[0]].Name != "time" || sf.Dims[v.Dims[0]].Len != 4 {
			t.Fatalf("%s: time dimension missing", name)
		}
	}
	if res.Ratio() <= 0 || math.IsNaN(res.Ratio()) {
		t.Fatalf("ratio = %v", res.Ratio())
	}
}

func TestConvertVariableSubset(t *testing.T) {
	dir := t.TempDir()
	paths, _ := writeHistory(t, dir, 2)
	res, err := Convert(paths, Options{Codec: "nc", OutDir: dir, Variables: []string{"TS"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variables != 1 {
		t.Fatalf("expected 1 variable, got %d", res.Variables)
	}
	if _, ok := res.PerVariable["PS"]; ok {
		t.Fatal("PS should not be converted")
	}
}

func TestConvertCompressionEffective(t *testing.T) {
	dir := t.TempDir()
	paths, _ := writeHistory(t, dir, 6)
	res, err := Convert(paths, Options{Codec: "nc", OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic ramps are highly compressible.
	if res.Ratio() > 0.8 {
		t.Fatalf("conversion achieved no compression: %v", res.Ratio())
	}
}

func TestConvertErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Convert(nil, Options{OutDir: dir}); err == nil {
		t.Fatal("no inputs should error")
	}
	paths, _ := writeHistory(t, dir, 2)
	if _, err := Convert(paths, Options{}); err == nil {
		t.Fatal("missing OutDir should error")
	}
	if _, err := Convert(paths, Options{OutDir: dir, Variables: []string{"NOPE"}}); err == nil {
		t.Fatal("no matching variables should error")
	}
	if _, err := Convert([]string{filepath.Join(dir, "missing.cdf")}, Options{OutDir: dir}); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestConvertMismatchedSlices(t *testing.T) {
	dir := t.TempDir()
	paths, _ := writeHistory(t, dir, 2)
	// Third file with a different shape.
	f := cdf.New()
	lat := f.AddDim("lat", 3)
	lon := f.AddDim("lon", 3)
	_, err := f.AddVar("TS", []int{lat, lon}, make([]float32, 9))
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.cdf")
	if err := f.WriteFile(bad, cdf.WriteOptions{Codec: "raw"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(append(paths, bad), Options{OutDir: dir, Variables: []string{"TS"}}); err == nil {
		t.Fatal("mismatched slice shape should error")
	}
}
