package benchjson

import (
	"path/filepath"
	"testing"
)

func TestMergeBestKeepsFasterObservation(t *testing.T) {
	a := NewReport()
	a.Entries = append(a.Entries,
		Entry{Name: "codec/x/compress", NsPerOp: 100},
		Entry{Name: "experiments/fig1", Seconds: 2.0, Note: "cold cache"},
		Entry{Name: "serve/verdict", OpsPerSec: 900, P50Ns: 40, P99Ns: 80, Note: "warm cache"},
	)
	b := NewReport()
	b.Entries = append(b.Entries,
		Entry{Name: "codec/x/compress", NsPerOp: 90},
		Entry{Name: "experiments/fig1", Seconds: 3.0, Note: "cold cache"},
		// Higher sustained throughput is the better load-test observation.
		Entry{Name: "serve/verdict", OpsPerSec: 1200, P50Ns: 30, P99Ns: 60, Note: "warm cache"},
		Entry{Name: "serve/verdict", OpsPerSec: 50, Note: "cold cache"},
	)
	a.MergeBest(b)
	got := map[string]Entry{}
	for _, e := range a.Entries {
		got[e.Name+"/"+e.Note] = e
	}
	if e := got["codec/x/compress/"]; e.NsPerOp != 90 {
		t.Fatalf("ns/op merge kept %d, want 90", e.NsPerOp)
	}
	if e := got["experiments/fig1/cold cache"]; e.Seconds != 2.0 {
		t.Fatalf("seconds merge kept %v, want 2.0", e.Seconds)
	}
	if e := got["serve/verdict/warm cache"]; e.OpsPerSec != 1200 || e.P99Ns != 60 {
		t.Fatalf("ops/sec merge kept %+v, want the 1200 ops/s observation", e)
	}
	if e, ok := got["serve/verdict/cold cache"]; !ok || e.OpsPerSec != 50 {
		t.Fatalf("unique entry not appended: %+v ok=%v", e, ok)
	}
	if len(a.Entries) != 4 {
		t.Fatalf("%d entries after merge, want 4", len(a.Entries))
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_PRX.json")
	rep := NewReport()
	allocs := int64(0)
	rep.Entries = append(rep.Entries,
		Entry{Name: "codec/x/compress", NsPerOp: 7, AllocsPerOp: &allocs, Workers: 1},
		Entry{Name: "serve/verdict", OpsPerSec: 1234.5, P50Ns: 1000, P99Ns: 9000, Note: "warm cache", Workers: 8},
	)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("%d entries", len(got.Entries))
	}
	if e := got.Entries[0]; e.AllocsPerOp == nil || *e.AllocsPerOp != 0 {
		t.Fatalf("zero allocs/op did not survive the round-trip: %+v", e)
	}
	if e := got.Entries[1]; e.OpsPerSec != 1234.5 || e.P50Ns != 1000 || e.P99Ns != 9000 {
		t.Fatalf("load-test fields did not survive the round-trip: %+v", e)
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("reading a missing snapshot must error")
	}
}
