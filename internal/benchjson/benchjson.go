// Package benchjson defines the machine-readable performance report written
// by `make bench-json`: per-experiment wall-clock timings and ns/op
// microbenchmarks in one JSON document, so performance changes across PRs
// can be diffed mechanically instead of eyeballed from benchmark logs.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// Entry is one measured quantity.
type Entry struct {
	// Name identifies the measurement (e.g. "table1", "rmsz/build",
	// "codec/fpzip-24/compress").
	Name string `json:"name"`
	// Seconds is a wall-clock duration, for experiment-level entries.
	Seconds float64 `json:"seconds,omitempty"`
	// NsPerOp and MBPerSec come from testing.Benchmark microbenchmarks.
	NsPerOp  int64   `json:"ns_per_op,omitempty"`
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// AllocsPerOp and BytesPerOp are steady-state heap costs per operation.
	// Pointers, not values: zero allocations is a measurement worth keeping
	// (it is this repo's target for codec hot paths), so it must survive
	// omitempty, while entries that never measured allocations stay absent.
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	// TotalAllocBytes is the runtime.MemStats.TotalAlloc delta across an
	// experiment-level entry: the cumulative heap churn of the run, which
	// wall-clock timings alone cannot distinguish from CPU cost. Pointer for
	// the same reason as AllocsPerOp: a zero-allocation run must survive
	// omitempty.
	TotalAllocBytes *uint64 `json:"total_alloc_bytes,omitempty"`
	// PeakHeapBytes is the maximum live-heap (HeapAlloc) observed during an
	// experiment-level entry, sampled by a HeapWatcher — residency rather
	// than churn, which TotalAllocBytes cannot capture: a fused streaming
	// unit and a materialize-then-measure unit can churn similar totals
	// while differing several-fold in peak residency. Pointer for the same
	// omitempty reason as AllocsPerOp.
	PeakHeapBytes *uint64 `json:"peak_heap_bytes,omitempty"`
	// OpsPerSec, P50Ns and P99Ns come from load tests against the serving
	// daemon (`make bench-serve`): sustained successful-response throughput
	// and client-observed latency quantiles. Wall-clock seconds cannot
	// express a saturating open-loop run, so these are first-class fields
	// rather than derived ones.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	P50Ns     int64   `json:"p50_ns,omitempty"`
	P99Ns     int64   `json:"p99_ns,omitempty"`
	// Workers records the concurrency this entry ran with, so single-core
	// and multi-worker measurements of the same name are distinguishable.
	Workers int `json:"workers,omitempty"`
	// Note carries qualifiers like "cold cache" / "warm cache".
	Note string `json:"note,omitempty"`
}

// Report is the top-level document.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Entries    []Entry `json:"entries"`
}

// NewReport returns a report stamped with the runtime environment.
func NewReport() *Report {
	return &Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// AddSeconds records a wall-clock measurement taken with the process-wide
// worker pool.
func (r *Report) AddSeconds(name string, seconds float64, note string) {
	r.Entries = append(r.Entries, Entry{
		Name: name, Seconds: seconds, Note: note, Workers: runtime.GOMAXPROCS(0),
	})
}

// AddSecondsAlloc is AddSeconds plus the run's cumulative heap allocation
// (a runtime.MemStats.TotalAlloc delta measured by the caller).
func (r *Report) AddSecondsAlloc(name string, seconds float64, note string, allocBytes uint64) {
	r.Entries = append(r.Entries, Entry{
		Name: name, Seconds: seconds, Note: note, Workers: runtime.GOMAXPROCS(0),
		TotalAllocBytes: &allocBytes,
	})
}

// AddSecondsAllocPeak is AddSecondsAlloc plus the run's peak live-heap
// residency (a HeapWatcher maximum measured by the caller).
func (r *Report) AddSecondsAllocPeak(name string, seconds float64, note string, allocBytes, peakBytes uint64) {
	r.Entries = append(r.Entries, Entry{
		Name: name, Seconds: seconds, Note: note, Workers: runtime.GOMAXPROCS(0),
		TotalAllocBytes: &allocBytes,
		PeakHeapBytes:   &peakBytes,
	})
}

// HeapWatcher samples runtime.MemStats.HeapAlloc on a ticker and keeps the
// maximum, approximating peak live-heap residency over a measured region.
// Sampling can only under-report a short-lived spike, never over-report, so
// the benchdiff peak-heap gate errs toward passing — acceptable for a gate
// whose job is catching sustained regressions, not transients.
type HeapWatcher struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

// WatchHeap starts a background sampler at the given interval. Call Stop to
// retrieve the observed maximum.
func WatchHeap(interval time.Duration) *HeapWatcher {
	w := &HeapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak {
					w.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return w
}

// Stop halts the sampler, takes one final sample (so regions shorter than
// the interval still record something), and returns the maximum HeapAlloc
// observed.
func (w *HeapWatcher) Stop() uint64 {
	close(w.stop)
	<-w.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > w.peak {
		w.peak = ms.HeapAlloc
	}
	return w.peak
}

// AddBenchmark runs fn under testing.Benchmark and records its ns/op, MB/s
// (when fn calls b.SetBytes) and steady-state allocations per op. The entry
// is stamped with GOMAXPROCS as its worker count.
func (r *Report) AddBenchmark(name string, fn func(b *testing.B)) {
	r.AddBenchmarkWorkers(name, runtime.GOMAXPROCS(0), fn)
}

// AddBenchmarkWorkers is AddBenchmark with an explicit worker count for
// entries whose concurrency differs from GOMAXPROCS (e.g. serial codec
// loops).
func (r *Report) AddBenchmarkWorkers(name string, workers int, fn func(b *testing.B)) {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	allocs, bytesOp := res.AllocsPerOp(), res.AllocedBytesPerOp()
	e := Entry{
		Name:        name,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: &allocs,
		BytesPerOp:  &bytesOp,
		Workers:     workers,
	}
	if res.Bytes > 0 && res.T > 0 {
		e.MBPerSec = float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6
	}
	r.Entries = append(r.Entries, e)
}

// MergeBest folds other's entries into r, matching on name+note. A
// measurement present on both sides keeps the faster observation (lower
// ns/op for benchmarks, lower seconds for wall-clock entries); entries
// unique to other are appended. Callers run the same sweep several times,
// minutes apart, and merge: on shared hosts a background burst can only
// slow a run down, never speed it up, so the per-entry minimum over
// interleaved sweeps is the closest observation of the code's actual cost
// — and interleaving means one burst cannot poison every sample of one
// entry the way back-to-back retries can.
func (r *Report) MergeBest(other *Report) {
	index := make(map[string]int, len(r.Entries))
	key := func(e Entry) string { return e.Name + "\x00" + e.Note }
	for i, e := range r.Entries {
		index[key(e)] = i
	}
	for _, e := range other.Entries {
		i, ok := index[key(e)]
		if !ok {
			index[key(e)] = len(r.Entries)
			r.Entries = append(r.Entries, e)
			continue
		}
		have := &r.Entries[i]
		switch {
		case e.NsPerOp > 0 && (have.NsPerOp == 0 || e.NsPerOp < have.NsPerOp):
			*have = e
		case e.OpsPerSec > 0 && e.OpsPerSec > have.OpsPerSec:
			// Load-test entries: higher sustained throughput is the better
			// observation, mirroring the lower-ns/op rule.
			*have = e
		case e.Seconds > 0 && e.NsPerOp == 0 && e.Seconds < have.Seconds:
			*have = e
		}
	}
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a snapshot written by WriteFile. Shared by cmd/benchdiff
// (the gate) and cmd/benchjson -merge (folding shard-scale entries into an
// existing snapshot).
func ReadFile(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
