// Package benchjson defines the machine-readable performance report written
// by `make bench-json`: per-experiment wall-clock timings and ns/op
// microbenchmarks in one JSON document, so performance changes across PRs
// can be diffed mechanically instead of eyeballed from benchmark logs.
package benchjson

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
)

// Entry is one measured quantity.
type Entry struct {
	// Name identifies the measurement (e.g. "table1", "rmsz/build",
	// "codec/fpzip-24/compress").
	Name string `json:"name"`
	// Seconds is a wall-clock duration, for experiment-level entries.
	Seconds float64 `json:"seconds,omitempty"`
	// NsPerOp and MBPerSec come from testing.Benchmark microbenchmarks.
	NsPerOp  int64   `json:"ns_per_op,omitempty"`
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// Note carries qualifiers like "cold cache" / "warm cache".
	Note string `json:"note,omitempty"`
}

// Report is the top-level document.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Entries    []Entry `json:"entries"`
}

// NewReport returns a report stamped with the runtime environment.
func NewReport() *Report {
	return &Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// AddSeconds records a wall-clock measurement.
func (r *Report) AddSeconds(name string, seconds float64, note string) {
	r.Entries = append(r.Entries, Entry{Name: name, Seconds: seconds, Note: note})
}

// AddBenchmark runs fn under testing.Benchmark and records its ns/op (and
// MB/s when fn calls b.SetBytes).
func (r *Report) AddBenchmark(name string, fn func(b *testing.B)) {
	res := testing.Benchmark(fn)
	e := Entry{Name: name, NsPerOp: res.NsPerOp()}
	if res.Bytes > 0 && res.T > 0 {
		e.MBPerSec = float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6
	}
	r.Entries = append(r.Entries, e)
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
