// Package wavelet implements the reversible integer CDF(2,2) ("5/3",
// LeGall) lifting wavelet transform used by JPEG2000's lossless path — the
// transform underneath the study's GRIB2+JPEG2000 codec. The lifting
// formulation guarantees perfect integer reconstruction, so all loss in the
// GRIB2 pipeline comes from the decimal-scale quantization step, exactly as
// in the real format.
package wavelet

// Forward1D applies one level of the 5/3 lifting transform in place and
// returns the approximation length: x[:sn] holds the low-pass (approx)
// coefficients and x[sn:] the high-pass (detail) coefficients afterwards.
// Works for any length >= 1 (length 1 is a no-op).
func Forward1D(x []int64, scratch []int64) int {
	n := len(x)
	sn := (n + 1) / 2
	if n < 2 {
		return sn
	}
	dn := n - sn
	s := scratch[:sn]
	d := scratch[sn : sn+dn]

	// Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2),
	// with symmetric extension at the right edge.
	for i := 0; i < dn; i++ {
		left := x[2*i]
		var right int64
		if 2*i+2 < n {
			right = x[2*i+2]
		} else {
			right = x[2*i] // mirror
		}
		d[i] = x[2*i+1] - floorDiv(left+right, 2)
	}
	// Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4),
	// with symmetric extension at both edges.
	for i := 0; i < sn; i++ {
		var dl, dr int64
		if i > 0 {
			dl = d[i-1]
		} else if dn > 0 {
			dl = d[0]
		}
		if i < dn {
			dr = d[i]
		} else if dn > 0 {
			dr = d[dn-1]
		}
		s[i] = x[2*i] + floorDiv(dl+dr+2, 4)
	}
	copy(x[:sn], s)
	copy(x[sn:], d)
	return sn
}

// Inverse1D undoes Forward1D for a signal of the given original length.
func Inverse1D(x []int64, scratch []int64) {
	n := len(x)
	if n < 2 {
		return
	}
	sn := (n + 1) / 2
	dn := n - sn
	s := x[:sn]
	d := x[sn:]
	out := scratch[:n]

	// Undo update.
	for i := 0; i < sn; i++ {
		var dl, dr int64
		if i > 0 {
			dl = d[i-1]
		} else if dn > 0 {
			dl = d[0]
		}
		if i < dn {
			dr = d[i]
		} else if dn > 0 {
			dr = d[dn-1]
		}
		out[2*i] = s[i] - floorDiv(dl+dr+2, 4)
	}
	// Undo predict.
	for i := 0; i < dn; i++ {
		left := out[2*i]
		var right int64
		if 2*i+2 < n {
			right = out[2*i+2]
		} else {
			right = out[2*i]
		}
		out[2*i+1] = d[i] + floorDiv(left+right, 2)
	}
	copy(x, out)
}

// floorDiv divides rounding toward negative infinity (Go's / truncates).
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Transform2D applies `levels` of the 2-D 5/3 transform in place on a
// rows×cols image stored row-major. Each level transforms all current rows
// then all current columns of the low-pass quadrant from the previous level
// (the standard dyadic decomposition). It returns the per-level
// (rows, cols) of the approximation quadrants for Inverse2D.
func Transform2D(img []int64, rows, cols, levels int) [][2]int {
	if len(img) != rows*cols {
		panic("wavelet: image size mismatch")
	}
	scratch := make([]int64, max(rows, cols))
	colBuf := make([]int64, rows)
	dims := make([][2]int, 0, levels)
	r, c := rows, cols
	for lev := 0; lev < levels && r >= 2 && c >= 2; lev++ {
		dims = append(dims, [2]int{r, c})
		// Rows.
		for i := 0; i < r; i++ {
			Forward1D(img[i*cols:i*cols+c], scratch)
		}
		// Columns.
		for j := 0; j < c; j++ {
			for i := 0; i < r; i++ {
				colBuf[i] = img[i*cols+j]
			}
			Forward1D(colBuf[:r], scratch)
			for i := 0; i < r; i++ {
				img[i*cols+j] = colBuf[i]
			}
		}
		r = (r + 1) / 2
		c = (c + 1) / 2
	}
	return dims
}

// Inverse2D undoes Transform2D given the dims it returned.
func Inverse2D(img []int64, rows, cols int, dims [][2]int) {
	if len(img) != rows*cols {
		panic("wavelet: image size mismatch")
	}
	scratch := make([]int64, max(rows, cols))
	colBuf := make([]int64, rows)
	for lev := len(dims) - 1; lev >= 0; lev-- {
		r, c := dims[lev][0], dims[lev][1]
		// Columns first (reverse of forward order).
		for j := 0; j < c; j++ {
			for i := 0; i < r; i++ {
				colBuf[i] = img[i*cols+j]
			}
			Inverse1D(colBuf[:r], scratch)
			for i := 0; i < r; i++ {
				img[i*cols+j] = colBuf[i]
			}
		}
		for i := 0; i < r; i++ {
			Inverse1D(img[i*cols:i*cols+c], scratch)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
