// Package wavelet implements the reversible integer CDF(2,2) ("5/3",
// LeGall) lifting wavelet transform used by JPEG2000's lossless path — the
// transform underneath the study's GRIB2+JPEG2000 codec. The lifting
// formulation guarantees perfect integer reconstruction, so all loss in the
// GRIB2 pipeline comes from the decimal-scale quantization step, exactly as
// in the real format.
package wavelet

// Forward1D applies one level of the 5/3 lifting transform in place and
// returns the approximation length: x[:sn] holds the low-pass (approx)
// coefficients and x[sn:] the high-pass (detail) coefficients afterwards.
// Works for any length >= 1 (length 1 is a no-op).
func Forward1D(x []int64, scratch []int64) int {
	n := len(x)
	sn := (n + 1) / 2
	if n < 2 {
		return sn
	}
	dn := n - sn
	s := scratch[:sn]
	d := scratch[sn : sn+dn]

	// The lifting divisors are 2 and 4, so the floor divisions are
	// arithmetic right shifts — identical results (shifts floor toward
	// negative infinity), no divide, no per-element sign branch. The
	// symmetric-extension edge cases are peeled out of the loops.

	// Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2),
	// with symmetric extension at the right edge. Only the last element of
	// an even-length signal mirrors (2i+2 == n), where the predictor
	// degenerates to x[2i].
	interior := dn
	if 2*(dn-1)+2 >= n {
		interior = dn - 1
	}
	for i := 0; i < interior; i++ {
		d[i] = x[2*i+1] - ((x[2*i] + x[2*i+2]) >> 1)
	}
	for i := interior; i < dn; i++ {
		d[i] = x[2*i+1] - x[2*i]
	}
	// Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4),
	// with symmetric extension at both edges: i == 0 mirrors d[0] on the
	// left, and for odd-length signals i == sn-1 mirrors d[dn-1] on the
	// right.
	s[0] = x[0] + ((2*d[0] + 2) >> 2)
	top := sn
	if sn > dn {
		top = sn - 1
	}
	for i := 1; i < top; i++ {
		s[i] = x[2*i] + ((d[i-1] + d[i] + 2) >> 2)
	}
	if sn > dn && sn > 1 {
		s[sn-1] = x[2*(sn-1)] + ((2*d[dn-1] + 2) >> 2)
	}
	copy(x[:sn], s)
	copy(x[sn:], d)
	return sn
}

// Inverse1D undoes Forward1D for a signal of the given original length.
func Inverse1D(x []int64, scratch []int64) {
	n := len(x)
	if n < 2 {
		return
	}
	sn := (n + 1) / 2
	dn := n - sn
	s := x[:sn]
	d := x[sn:]
	out := scratch[:n]

	// Undo update (same shift-for-floorDiv and edge peeling as Forward1D).
	out[0] = s[0] - ((2*d[0] + 2) >> 2)
	top := sn
	if sn > dn {
		top = sn - 1
	}
	for i := 1; i < top; i++ {
		out[2*i] = s[i] - ((d[i-1] + d[i] + 2) >> 2)
	}
	if sn > dn && sn > 1 {
		out[2*(sn-1)] = s[sn-1] - ((2*d[dn-1] + 2) >> 2)
	}
	// Undo predict.
	interior := dn
	if 2*(dn-1)+2 >= n {
		interior = dn - 1
	}
	for i := 0; i < interior; i++ {
		out[2*i+1] = d[i] + ((out[2*i] + out[2*i+2]) >> 1)
	}
	for i := interior; i < dn; i++ {
		out[2*i+1] = d[i] + out[2*i]
	}
	copy(x, out)
}

// Scratch holds the reusable working buffers of the 2-D transforms, so a
// caller sweeping many slabs (every level of every chunk of a field) pays
// for them once. The zero value is ready to use.
type Scratch struct {
	lift []int64  // Forward1D/Inverse1D working space (row passes)
	tile []int64  // whole-quadrant working space (column passes)
	dims [][2]int // per-level approximation quadrant sizes
}

// grow sizes the buffers for a rows×cols image at the given depth.
func (s *Scratch) grow(rows, cols, levels int) {
	if n := max(rows, cols); cap(s.lift) < n {
		s.lift = make([]int64, n)
	}
	if cap(s.tile) < rows*cols {
		s.tile = make([]int64, rows*cols)
	}
	if cap(s.dims) < levels {
		s.dims = make([][2]int, 0, levels)
	}
	s.dims = s.dims[:0]
}

// forwardCols applies Forward1D down every column of the r×c quadrant of a
// row-major image with the given stride, all columns at once: each lifting
// step runs across a whole row at unit stride instead of gathering one
// strided column at a time. Per column the arithmetic is exactly Forward1D's,
// so the output is bit-identical. buf must hold r*c elements.
func forwardCols(img []int64, r, c, stride int, buf []int64) {
	if r < 2 {
		return
	}
	sn := (r + 1) / 2
	dn := r - sn
	sBuf := buf[:sn*c]
	dBuf := buf[sn*c : (sn+dn)*c]
	row := func(i int) []int64 { return img[i*stride : i*stride+c] }

	// Predict (cf. Forward1D, with n -> r).
	interior := dn
	if 2*(dn-1)+2 >= r {
		interior = dn - 1
	}
	for i := 0; i < interior; i++ {
		x0, x1, x2 := row(2*i), row(2*i+1), row(2*i+2)
		dr := dBuf[i*c : (i+1)*c]
		for j := range dr {
			dr[j] = x1[j] - ((x0[j] + x2[j]) >> 1)
		}
	}
	for i := interior; i < dn; i++ {
		x0, x1 := row(2*i), row(2*i+1)
		dr := dBuf[i*c : (i+1)*c]
		for j := range dr {
			dr[j] = x1[j] - x0[j]
		}
	}
	// Update.
	{
		s0, x0, d0 := sBuf[:c], row(0), dBuf[:c]
		for j := range s0 {
			s0[j] = x0[j] + ((2*d0[j] + 2) >> 2)
		}
	}
	top := sn
	if sn > dn {
		top = sn - 1
	}
	for i := 1; i < top; i++ {
		sr, xr := sBuf[i*c:(i+1)*c], row(2*i)
		dp, dc := dBuf[(i-1)*c:i*c], dBuf[i*c:(i+1)*c]
		for j := range sr {
			sr[j] = xr[j] + ((dp[j] + dc[j] + 2) >> 2)
		}
	}
	if sn > dn && sn > 1 {
		sr, xr := sBuf[(sn-1)*c:sn*c], row(2*(sn-1))
		dl := dBuf[(dn-1)*c : dn*c]
		for j := range sr {
			sr[j] = xr[j] + ((2*dl[j] + 2) >> 2)
		}
	}
	for i := 0; i < sn; i++ {
		copy(row(i), sBuf[i*c:(i+1)*c])
	}
	for i := 0; i < dn; i++ {
		copy(row(sn+i), dBuf[i*c:(i+1)*c])
	}
}

// inverseCols undoes forwardCols (column-wise Inverse1D across all columns
// at once). buf must hold r*c elements.
func inverseCols(img []int64, r, c, stride int, buf []int64) {
	if r < 2 {
		return
	}
	sn := (r + 1) / 2
	dn := r - sn
	out := buf[:r*c]
	row := func(i int) []int64 { return img[i*stride : i*stride+c] }
	srow := row                                        // s coefficients live in rows [0, sn)
	drow := func(i int) []int64 { return row(sn + i) } // d coefficients in rows [sn, r)
	orow := func(i int) []int64 { return out[i*c : (i+1)*c] }

	// Undo update into the even output rows.
	{
		o0, s0, d0 := orow(0), srow(0), drow(0)
		for j := range o0 {
			o0[j] = s0[j] - ((2*d0[j] + 2) >> 2)
		}
	}
	top := sn
	if sn > dn {
		top = sn - 1
	}
	for i := 1; i < top; i++ {
		or, sr := orow(2*i), srow(i)
		dp, dc := drow(i-1), drow(i)
		for j := range or {
			or[j] = sr[j] - ((dp[j] + dc[j] + 2) >> 2)
		}
	}
	if sn > dn && sn > 1 {
		or, sr := orow(2*(sn-1)), srow(sn-1)
		dl := drow(dn - 1)
		for j := range or {
			or[j] = sr[j] - ((2*dl[j] + 2) >> 2)
		}
	}
	// Undo predict into the odd output rows.
	interior := dn
	if 2*(dn-1)+2 >= r {
		interior = dn - 1
	}
	for i := 0; i < interior; i++ {
		or, dr := orow(2*i+1), drow(i)
		e0, e2 := orow(2*i), orow(2*i+2)
		for j := range or {
			or[j] = dr[j] + ((e0[j] + e2[j]) >> 1)
		}
	}
	for i := interior; i < dn; i++ {
		or, dr := orow(2*i+1), drow(i)
		e0 := orow(2 * i)
		for j := range or {
			or[j] = dr[j] + e0[j]
		}
	}
	for i := 0; i < r; i++ {
		copy(row(i), orow(i))
	}
}

// Transform2D applies `levels` of the 2-D 5/3 transform in place on a
// rows×cols image stored row-major. Each level transforms all current rows
// then all current columns of the low-pass quadrant from the previous level
// (the standard dyadic decomposition). It returns the per-level
// (rows, cols) of the approximation quadrants for Inverse2D.
func Transform2D(img []int64, rows, cols, levels int) [][2]int {
	return new(Scratch).Transform2D(img, rows, cols, levels)
}

// Transform2D is the scratch-reusing form of the package-level Transform2D;
// the transform applied to img is identical. The returned dims alias the
// Scratch and are valid until its next use.
func (s *Scratch) Transform2D(img []int64, rows, cols, levels int) [][2]int {
	if len(img) != rows*cols {
		panic("wavelet: image size mismatch")
	}
	s.grow(rows, cols, levels)
	scratch := s.lift[:max(rows, cols)]
	r, c := rows, cols
	for lev := 0; lev < levels && r >= 2 && c >= 2; lev++ {
		s.dims = append(s.dims, [2]int{r, c})
		// Rows.
		for i := 0; i < r; i++ {
			Forward1D(img[i*cols:i*cols+c], scratch)
		}
		// Columns, all at once (row-wise lifting at unit stride).
		forwardCols(img, r, c, cols, s.tile)
		r = (r + 1) / 2
		c = (c + 1) / 2
	}
	return s.dims
}

// Inverse2D undoes Transform2D given the dims it returned.
func Inverse2D(img []int64, rows, cols int, dims [][2]int) {
	new(Scratch).Inverse2D(img, rows, cols, dims)
}

// Inverse2D is the scratch-reusing form of the package-level Inverse2D.
// dims may alias s.dims (the usual round-trip case).
func (s *Scratch) Inverse2D(img []int64, rows, cols int, dims [][2]int) {
	if len(img) != rows*cols {
		panic("wavelet: image size mismatch")
	}
	if n := max(rows, cols); cap(s.lift) < n {
		s.lift = make([]int64, n)
	}
	if cap(s.tile) < rows*cols {
		s.tile = make([]int64, rows*cols)
	}
	scratch := s.lift[:max(rows, cols)]
	for lev := len(dims) - 1; lev >= 0; lev-- {
		r, c := dims[lev][0], dims[lev][1]
		// Columns first (reverse of forward order), all at once.
		inverseCols(img, r, c, cols, s.tile)
		for i := 0; i < r; i++ {
			Inverse1D(img[i*cols:i*cols+c], scratch)
		}
	}
}

// PlanDims recomputes, into s.dims, the per-level approximation sizes that
// Transform2D would record for a rows×cols image at the given depth —
// what a decoder needs when the stream stores only the depth.
func (s *Scratch) PlanDims(rows, cols, levels int) [][2]int {
	if cap(s.dims) < levels {
		s.dims = make([][2]int, 0, levels)
	}
	s.dims = s.dims[:0]
	r, c := rows, cols
	for l := 0; l < levels && r >= 2 && c >= 2; l++ {
		s.dims = append(s.dims, [2]int{r, c})
		r = (r + 1) / 2
		c = (c + 1) / 2
	}
	return s.dims
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
