package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestForwardInverse1D(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 17, 100, 101} {
		x := make([]int64, n)
		for i := range x {
			x[i] = int64(i*i%23 - 11)
		}
		orig := append([]int64(nil), x...)
		scratch := make([]int64, n)
		Forward1D(x, scratch)
		Inverse1D(x, scratch)
		for i := range x {
			if x[i] != orig[i] {
				t.Fatalf("n=%d: mismatch at %d: %d vs %d", n, i, x[i], orig[i])
			}
		}
	}
}

func TestQuick1DRoundTrip(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) == 0 {
			return true
		}
		x := make([]int64, len(vals))
		for i, v := range vals {
			x[i] = int64(v)
		}
		orig := append([]int64(nil), x...)
		scratch := make([]int64, len(x))
		Forward1D(x, scratch)
		Inverse1D(x, scratch)
		for i := range x {
			if x[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothSignalSmallDetails(t *testing.T) {
	// The detail band of a smooth ramp must be tiny relative to the signal.
	n := 256
	x := make([]int64, n)
	for i := range x {
		x[i] = int64(1000 + 10*i)
	}
	scratch := make([]int64, n)
	sn := Forward1D(x, scratch)
	// Interior detail coefficients vanish on a linear ramp; the final one
	// reflects the boundary's symmetric extension and is excluded.
	for i := sn; i < n-1; i++ {
		if abs := x[i]; abs > 1 || abs < -1 {
			t.Fatalf("detail coefficient %d = %d on linear ramp", i, x[i])
		}
	}
}

func TestTransform2DRoundTrip(t *testing.T) {
	cases := [][2]int{{4, 4}, {8, 8}, {7, 9}, {16, 24}, {31, 17}, {2, 2}, {5, 2}}
	rng := rand.New(rand.NewSource(1))
	for _, rc := range cases {
		rows, cols := rc[0], rc[1]
		img := make([]int64, rows*cols)
		for i := range img {
			img[i] = int64(rng.Intn(100000) - 50000)
		}
		orig := append([]int64(nil), img...)
		dims := Transform2D(img, rows, cols, 3)
		Inverse2D(img, rows, cols, dims)
		for i := range img {
			if img[i] != orig[i] {
				t.Fatalf("%dx%d: mismatch at %d", rows, cols, i)
			}
		}
	}
}

func TestTransform2DEnergyCompaction(t *testing.T) {
	// A smooth 2-D field must concentrate magnitude in the approx quadrant.
	rows, cols := 32, 32
	img := make([]int64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			img[i*cols+j] = int64(1000 * math.Sin(float64(i)/8) * math.Cos(float64(j)/8))
		}
	}
	dims := Transform2D(img, rows, cols, 2)
	if len(dims) != 2 {
		t.Fatalf("expected 2 levels, got %d", len(dims))
	}
	// Approx quadrant after 2 levels is 8x8.
	var approxSum, detailSum float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := math.Abs(float64(img[i*cols+j]))
			if i < 8 && j < 8 {
				approxSum += v
			} else {
				detailSum += v
			}
		}
	}
	if approxSum < 2*detailSum {
		t.Fatalf("poor energy compaction: approx %v vs detail %v", approxSum, detailSum)
	}
}

// TestShiftIsFloorDiv pins the identity the lifting loops rely on: an
// arithmetic right shift is floor division by a power of two, including for
// negative operands (where Go's / would truncate toward zero instead).
func TestShiftIsFloorDiv(t *testing.T) {
	cases := []struct{ a, shift, want int64 }{
		{7, 1, 3}, {-7, 1, -4}, {6, 1, 3}, {-6, 1, -3},
		{1, 2, 0}, {-1, 2, -1}, {-5, 2, -2},
	}
	for _, c := range cases {
		if got := c.a >> c.shift; got != c.want {
			t.Errorf("%d >> %d = %d, want %d", c.a, c.shift, got, c.want)
		}
	}
}

func TestDegenerateShapes(t *testing.T) {
	// 1xN and Nx1 images should survive (no levels applied when a side < 2).
	img := []int64{1, 2, 3, 4, 5}
	orig := append([]int64(nil), img...)
	dims := Transform2D(img, 1, 5, 3)
	Inverse2D(img, 1, 5, dims)
	for i := range img {
		if img[i] != orig[i] {
			t.Fatal("1xN image corrupted")
		}
	}
}

func BenchmarkTransform2D(b *testing.B) {
	rows, cols := 72, 144
	img := make([]int64, rows*cols)
	rng := rand.New(rand.NewSource(2))
	for i := range img {
		img[i] = int64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dims := Transform2D(img, rows, cols, 4)
		Inverse2D(img, rows, cols, dims)
	}
}
