// Package bspline provides least-squares fitting and evaluation of uniform
// cubic B-splines, the curve-fitting core of the ISABELA compressor: after
// window sorting, the monotone value curve is approximated by a small number
// of spline coefficients.
package bspline

import (
	"errors"
	"math"
	"sync"
)

// ErrBadFit is returned when a fit is requested with too few points or
// coefficients.
var ErrBadFit = errors.New("bspline: need ncoef >= 4 and len(y) >= ncoef")

// basis returns the four cubic B-spline blending weights at local
// parameter t in [0, 1].
func basis(t float64) (b0, b1, b2, b3 float64) {
	u := 1 - t
	t2 := t * t
	t3 := t2 * t
	b0 = u * u * u / 6
	b1 = (3*t3 - 6*t2 + 4) / 6
	b2 = (-3*t3 + 3*t2 + 3*t + 1) / 6
	b3 = t3 / 6
	return
}

// segment maps a global parameter x in [0, 1] to a segment index and local
// parameter for a spline with ncoef control points.
func segment(x float64, ncoef int) (s int, t float64) {
	nseg := ncoef - 3
	u := x * float64(nseg)
	s = int(u)
	if s >= nseg {
		s = nseg - 1
	}
	if s < 0 {
		s = 0
	}
	t = u - float64(s)
	if t > 1 {
		t = 1
	}
	return
}

// Eval evaluates the spline with the given control points at x in [0, 1].
func Eval(coefs []float64, x float64) float64 {
	s, t := segment(x, len(coefs))
	b0, b1, b2, b3 := basis(t)
	return b0*coefs[s] + b1*coefs[s+1] + b2*coefs[s+2] + b3*coefs[s+3]
}

// EvalAll evaluates the spline at n equally spaced parameters i/(n-1),
// writing into out (grown or allocated as needed).
func EvalAll(coefs []float64, n int, out []float64) []float64 {
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	if n == 1 {
		out[0] = Eval(coefs, 0)
		return out
	}
	ncoef := len(coefs)
	if pl, err := planFor(n, ncoef); err == nil {
		for i := 0; i < n; i++ {
			s := int(pl.seg[i])
			w := pl.w[4*i:]
			out[i] = w[0]*coefs[s] + w[1]*coefs[s+1] + w[2]*coefs[s+2] + w[3]*coefs[s+3]
		}
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = Eval(coefs, float64(i)/float64(n-1))
	}
	return out
}

// plan caches everything about fitting/evaluating n points with ncoef
// control points that does not depend on the data: the per-point segment
// index and blending weights, and the Cholesky factor of the (ridged)
// normal matrix AᵀA. ISABELA fits the same (window, ncoef) geometry for
// every window of every field, so the O(n·ncoef²) matrix build and O(ncoef³)
// factorization run once per shape instead of once per window.
type plan struct {
	seg []int32   // len n: first control point of each point's segment
	w   []float64 // len 4n: blending weights, [4i..4i+3] for point i
	fac []float64 // len ncoef²: lower-triangular Cholesky factor
}

type planKey struct{ n, ncoef int }

type planEntry struct {
	once sync.Once
	pl   *plan
	err  error
}

var plans sync.Map // planKey → *planEntry

// planFor returns the cached plan for (n, ncoef), building it on first use.
func planFor(n, ncoef int) (*plan, error) {
	if ncoef < 4 || n < ncoef || n < 2 {
		return nil, ErrBadFit
	}
	key := planKey{n, ncoef}
	v, _ := plans.LoadOrStore(key, &planEntry{})
	e := v.(*planEntry)
	e.once.Do(func() { e.pl, e.err = buildPlan(n, ncoef) })
	return e.pl, e.err
}

// buildPlan computes the geometry tables and factors the normal matrix with
// the exact arithmetic of the previous per-call Fit path, so cached fits are
// bit-identical to uncached ones.
func buildPlan(n, ncoef int) (*plan, error) {
	pl := &plan{
		seg: make([]int32, n),
		w:   make([]float64, 4*n),
		fac: make([]float64, ncoef*ncoef),
	}
	N := pl.fac
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		s, t := segment(x, ncoef)
		b0, b1, b2, b3 := basis(t)
		pl.seg[i] = int32(s)
		w := pl.w[4*i:]
		w[0], w[1], w[2], w[3] = b0, b1, b2, b3
		for a := 0; a < 4; a++ {
			ia := s + a
			for c := 0; c < 4; c++ {
				N[ia*ncoef+s+c] += w[a] * w[c]
			}
		}
	}
	var trace float64
	for i := 0; i < ncoef; i++ {
		trace += N[i*ncoef+i]
	}
	ridge := 1e-10 * (trace/float64(ncoef) + 1)
	for i := 0; i < ncoef; i++ {
		N[i*ncoef+i] += ridge
	}
	if err := choleskyFactor(N, ncoef); err != nil {
		return nil, err
	}
	return pl, nil
}

// Fit computes the least-squares control points of a uniform cubic B-spline
// through the points (i/(n-1), y[i]). It solves the banded normal equations
// with a dense Cholesky factorization (ncoef is small) plus a tiny ridge
// term for numerical safety on degenerate inputs.
func Fit(y []float64, ncoef int) ([]float64, error) {
	return FitInto(nil, y, ncoef)
}

// FitInto is Fit with the coefficient vector written into dst's backing
// array when its capacity suffices (allocating only otherwise). The
// arithmetic — and therefore the coefficients — are identical to Fit's.
func FitInto(dst []float64, y []float64, ncoef int) ([]float64, error) {
	n := len(y)
	if ncoef < 4 || n < ncoef {
		return nil, ErrBadFit
	}
	pl, err := planFor(n, ncoef)
	if err != nil {
		return nil, err
	}
	// Right-hand side b = Aᵀy, accumulated in the same point order as the
	// former fused matrix/vector build.
	var b []float64
	if cap(dst) >= ncoef {
		b = dst[:ncoef]
		for i := range b {
			b[i] = 0
		}
	} else {
		b = make([]float64, ncoef)
	}
	for i := 0; i < n; i++ {
		s := int(pl.seg[i])
		w := pl.w[4*i:]
		yi := y[i]
		b[s] += w[0] * yi
		b[s+1] += w[1] * yi
		b[s+2] += w[2] * yi
		b[s+3] += w[3] * yi
	}
	solveFactored(pl.fac, b, ncoef)
	return b, nil
}

// choleskyFactor factors the SPD matrix a = L·Lᵀ in place (lower triangle
// stored in a).
func choleskyFactor(a []float64, n int) error {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 {
			return errors.New("bspline: normal equations not positive definite")
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s / d
		}
	}
	return nil
}

// solveFactored solves L·Lᵀ x = b given the factor from choleskyFactor,
// reading a and leaving x in b — safe for concurrent use over a shared
// factor.
func solveFactored(a []float64, b []float64, n int) {
	// Forward substitution L z = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*n+k] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
	// Back substitution Lᵀ x = z.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[k*n+i] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
}
