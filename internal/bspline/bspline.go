// Package bspline provides least-squares fitting and evaluation of uniform
// cubic B-splines, the curve-fitting core of the ISABELA compressor: after
// window sorting, the monotone value curve is approximated by a small number
// of spline coefficients.
package bspline

import (
	"errors"
	"math"
)

// ErrBadFit is returned when a fit is requested with too few points or
// coefficients.
var ErrBadFit = errors.New("bspline: need ncoef >= 4 and len(y) >= ncoef")

// basis returns the four cubic B-spline blending weights at local
// parameter t in [0, 1].
func basis(t float64) (b0, b1, b2, b3 float64) {
	u := 1 - t
	t2 := t * t
	t3 := t2 * t
	b0 = u * u * u / 6
	b1 = (3*t3 - 6*t2 + 4) / 6
	b2 = (-3*t3 + 3*t2 + 3*t + 1) / 6
	b3 = t3 / 6
	return
}

// segment maps a global parameter x in [0, 1] to a segment index and local
// parameter for a spline with ncoef control points.
func segment(x float64, ncoef int) (s int, t float64) {
	nseg := ncoef - 3
	u := x * float64(nseg)
	s = int(u)
	if s >= nseg {
		s = nseg - 1
	}
	if s < 0 {
		s = 0
	}
	t = u - float64(s)
	if t > 1 {
		t = 1
	}
	return
}

// Eval evaluates the spline with the given control points at x in [0, 1].
func Eval(coefs []float64, x float64) float64 {
	s, t := segment(x, len(coefs))
	b0, b1, b2, b3 := basis(t)
	return b0*coefs[s] + b1*coefs[s+1] + b2*coefs[s+2] + b3*coefs[s+3]
}

// EvalAll evaluates the spline at n equally spaced parameters i/(n-1),
// writing into out (grown or allocated as needed).
func EvalAll(coefs []float64, n int, out []float64) []float64 {
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	if n == 1 {
		out[0] = Eval(coefs, 0)
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = Eval(coefs, float64(i)/float64(n-1))
	}
	return out
}

// Fit computes the least-squares control points of a uniform cubic B-spline
// through the points (i/(n-1), y[i]). It solves the banded normal equations
// with a dense Cholesky factorization (ncoef is small) plus a tiny ridge
// term for numerical safety on degenerate inputs.
func Fit(y []float64, ncoef int) ([]float64, error) {
	n := len(y)
	if ncoef < 4 || n < ncoef {
		return nil, ErrBadFit
	}
	// Normal equations N c = b with N = AᵀA, b = Aᵀy; A has 4 nonzeros/row.
	N := make([]float64, ncoef*ncoef)
	b := make([]float64, ncoef)
	var w [4]float64
	for i := 0; i < n; i++ {
		x := 0.0
		if n > 1 {
			x = float64(i) / float64(n-1)
		}
		s, t := segment(x, ncoef)
		w[0], w[1], w[2], w[3] = basis(t)
		for a := 0; a < 4; a++ {
			ia := s + a
			b[ia] += w[a] * y[i]
			for c := 0; c < 4; c++ {
				N[ia*ncoef+s+c] += w[a] * w[c]
			}
		}
	}
	// Ridge regularization keeps the factorization positive definite even
	// when some control point is unconstrained (short windows).
	var trace float64
	for i := 0; i < ncoef; i++ {
		trace += N[i*ncoef+i]
	}
	ridge := 1e-10 * (trace/float64(ncoef) + 1)
	for i := 0; i < ncoef; i++ {
		N[i*ncoef+i] += ridge
	}
	if err := choleskySolve(N, b, ncoef); err != nil {
		return nil, err
	}
	return b, nil
}

// choleskySolve solves the SPD system in place: on return b holds x.
func choleskySolve(a []float64, b []float64, n int) error {
	// Factor a = L·Lᵀ (lower triangle stored in a).
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			d -= a[j*n+k] * a[j*n+k]
		}
		if d <= 0 {
			return errors.New("bspline: normal equations not positive definite")
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[i*n+j]
			for k := 0; k < j; k++ {
				s -= a[i*n+k] * a[j*n+k]
			}
			a[i*n+j] = s / d
		}
	}
	// Forward substitution L z = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*n+k] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
	// Back substitution Lᵀ x = z.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[k*n+i] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
	return nil
}
