package bspline

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBasisPartitionOfUnity(t *testing.T) {
	for _, tt := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.99, 1} {
		b0, b1, b2, b3 := basis(tt)
		sum := b0 + b1 + b2 + b3
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("basis weights at t=%v sum to %v", tt, sum)
		}
		for _, b := range []float64{b0, b1, b2, b3} {
			if b < 0 {
				t.Fatalf("negative basis weight at t=%v", tt)
			}
		}
	}
}

func TestEvalConstant(t *testing.T) {
	coefs := []float64{5, 5, 5, 5, 5, 5}
	for _, x := range []float64{0, 0.3, 0.5, 0.999, 1} {
		if got := Eval(coefs, x); math.Abs(got-5) > 1e-12 {
			t.Fatalf("constant spline at %v = %v", x, got)
		}
	}
}

func TestFitRecoversSmoothCurve(t *testing.T) {
	n := 512
	y := make([]float64, n)
	for i := range y {
		x := float64(i) / float64(n-1)
		y[i] = 3 + 2*x + math.Sin(3*x)
	}
	coefs, err := Fit(y, 20)
	if err != nil {
		t.Fatal(err)
	}
	rec := EvalAll(coefs, n, nil)
	var maxErr float64
	for i := range y {
		if e := math.Abs(rec[i] - y[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-3 {
		t.Fatalf("smooth curve max fit error %v", maxErr)
	}
}

func TestFitMonotoneSortedData(t *testing.T) {
	// ISABELA's use case: a sorted (monotone) window.
	rng := rand.New(rand.NewSource(1))
	n := 1024
	y := make([]float64, n)
	y[0] = 0
	for i := 1; i < n; i++ {
		y[i] = y[i-1] + rng.Float64()
	}
	coefs, err := Fit(y, 30)
	if err != nil {
		t.Fatal(err)
	}
	rec := EvalAll(coefs, n, nil)
	var sumsq float64
	for i := range y {
		d := rec[i] - y[i]
		sumsq += d * d
	}
	rmse := math.Sqrt(sumsq / float64(n))
	if rng := y[n-1] - y[0]; rmse > 0.01*rng {
		t.Fatalf("sorted-curve RMSE %v too large relative to range %v", rmse, rng)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, 4); err == nil {
		t.Fatal("too few points should error")
	}
	if _, err := Fit(make([]float64, 100), 3); err == nil {
		t.Fatal("ncoef < 4 should error")
	}
}

func TestFitExactlyRepresentableLine(t *testing.T) {
	// A straight line is exactly representable by a cubic B-spline.
	n := 64
	y := make([]float64, n)
	for i := range y {
		y[i] = 2*float64(i)/float64(n-1) - 1
	}
	coefs, err := Fit(y, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		if got := Eval(coefs, x); math.Abs(got-y[i]) > 1e-6 {
			t.Fatalf("line not reproduced at %v: %v vs %v", x, got, y[i])
		}
	}
}

func TestEvalAllAllocates(t *testing.T) {
	coefs := []float64{0, 1, 2, 3}
	out := EvalAll(coefs, 10, nil)
	if len(out) != 10 {
		t.Fatalf("EvalAll length %d", len(out))
	}
	buf := make([]float64, 10)
	out2 := EvalAll(coefs, 10, buf)
	if &out2[0] != &buf[0] {
		t.Fatal("EvalAll should reuse the provided buffer")
	}
}

func TestDegenerateConstantInput(t *testing.T) {
	y := make([]float64, 50)
	for i := range y {
		y[i] = 7
	}
	coefs, err := Fit(y, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.5, 1} {
		if got := Eval(coefs, x); math.Abs(got-7) > 1e-6 {
			t.Fatalf("constant input reproduced as %v", got)
		}
	}
}

func BenchmarkFit1024x30(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	y := make([]float64, 1024)
	y[0] = 0
	for i := 1; i < len(y); i++ {
		y[i] = y[i-1] + rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(y, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// fitReference is the pre-cache implementation: fused normal-matrix build
// and per-call Cholesky solve. The plan-cached Fit must match it bit for
// bit.
func fitReference(y []float64, ncoef int) ([]float64, error) {
	n := len(y)
	if ncoef < 4 || n < ncoef {
		return nil, ErrBadFit
	}
	N := make([]float64, ncoef*ncoef)
	b := make([]float64, ncoef)
	var w [4]float64
	for i := 0; i < n; i++ {
		x := 0.0
		if n > 1 {
			x = float64(i) / float64(n-1)
		}
		s, t := segment(x, ncoef)
		w[0], w[1], w[2], w[3] = basis(t)
		for a := 0; a < 4; a++ {
			ia := s + a
			b[ia] += w[a] * y[i]
			for c := 0; c < 4; c++ {
				N[ia*ncoef+s+c] += w[a] * w[c]
			}
		}
	}
	var trace float64
	for i := 0; i < ncoef; i++ {
		trace += N[i*ncoef+i]
	}
	ridge := 1e-10 * (trace/float64(ncoef) + 1)
	for i := 0; i < ncoef; i++ {
		N[i*ncoef+i] += ridge
	}
	if err := choleskyFactor(N, ncoef); err != nil {
		return nil, err
	}
	solveFactored(N, b, ncoef)
	return b, nil
}

func TestFitMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct{ n, ncoef int }{
		{1024, 30}, {1000, 30}, {100, 30}, {9, 4}, {512, 17},
	} {
		y := make([]float64, tc.n)
		for i := range y {
			y[i] = float64(i) + 3*rng.NormFloat64()
		}
		sort.Float64s(y) // ISABELA fits sorted curves
		got, err := Fit(y, tc.ncoef)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fitReference(y, tc.ncoef)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d ncoef=%d: coef[%d] = %x, reference %x", tc.n, tc.ncoef, i, got[i], want[i])
			}
		}
		// EvalAll through the cached tables must match per-point Eval.
		rec := EvalAll(got, tc.n, nil)
		for i := range rec {
			if x := Eval(got, float64(i)/float64(tc.n-1)); rec[i] != x {
				t.Fatalf("n=%d ncoef=%d: EvalAll[%d] = %x, Eval %x", tc.n, tc.ncoef, i, rec[i], x)
			}
		}
	}
}
