package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer reports == and != between floating-point operands in
// the numeric packages, where an accidental exact comparison silently
// turns a tolerance check into a coin flip. Two idioms are exempt
// because they are exact by construction:
//
//   - self-comparison (x != x), the NaN test;
//   - comparison against a constant that is exactly zero, the
//     pervasive degenerate-denominator guard (sxx == 0 and friends).
//
// Everything else — fill-value sentinels, bit-reproducibility checks,
// tie detection on sorted data — must carry a //lint:floateq directive
// stating why exact equality is intended.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "no float == / != outside annotated sentinel comparisons",
	Paths: []string{
		"internal/stats",
		"internal/metrics",
		"internal/ensemble",
		"internal/pvt",
	},
	Run: runFloatEq,
}

func runFloatEq(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) && !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x: the NaN idiom
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true // exact-zero guard
			}
			p.Reportf(be.OpPos, "%s on floating-point operands: compare with a tolerance, or annotate the sentinel with //lint:floateq", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to 0.
func isZeroConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
	}
	return false
}
