package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A small forward-dataflow framework over the CFG: facts flow from a
// block's IN (the join of its predecessors' OUTs) through a transfer
// function to its OUT, iterated on a worklist until fixpoint. Analyzers
// define their lattice with four functions; the framework owns the
// iteration. Termination is the analyzer's contract: Join must be
// monotone and the fact domain must have finite height (every lattice
// here is a finite map of program variables to small sets, so height is
// bounded by the function's size).

// Problem defines one forward-dataflow analysis.
type Problem[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Bottom is the fact for blocks not yet visited (identity of Join).
	Bottom func() F
	// Join merges two facts at a control-flow merge point. It must not
	// mutate its inputs.
	Join func(a, b F) F
	// Equal reports whether two facts carry the same information; the
	// worklist stops re-queuing when OUT facts stop changing.
	Equal func(a, b F) bool
	// Transfer pushes a fact through one block. It must not mutate in.
	Transfer func(b *Block, in F) F
}

// Forward iterates the problem to fixpoint and returns each block's IN
// fact. A block's state at a specific node is recovered by re-applying
// the transfer from the IN fact (see the analyzers' per-node walks).
func Forward[F any](g *CFG, p Problem[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	out := make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = p.Bottom()
		out[b] = p.Bottom()
	}
	in[g.Entry] = p.Entry

	// Seed with every block so unreachable blocks still get their Bottom
	// facts transferred once (their nodes are dead code, but analyzers
	// walking them should see a defined state).
	work := make([]*Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	pop := func() *Block {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		return b
	}
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			work = append(work, b)
		}
	}

	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	for len(work) > 0 {
		b := pop()
		fact := p.Bottom()
		if b == g.Entry {
			fact = p.Join(fact, p.Entry)
		}
		for _, pr := range preds[b] {
			fact = p.Join(fact, out[pr])
		}
		in[b] = fact
		newOut := p.Transfer(b, fact)
		if !p.Equal(newOut, out[b]) {
			out[b] = newOut
			for _, s := range b.Succs {
				push(s)
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

// DefSite is one definition of a variable. Rhs is the defining expression
// when the definition binds exactly one value (x := e, x = e); it is nil
// for opaque definitions — compound assignment, ++/--, range bindings,
// multi-value unpacking — where no single expression describes the new
// value. A variable with no recorded definition at a use site (parameter,
// closure capture, named result) is unknown, which analyzers must treat
// as "could be anything".
type DefSite struct {
	Pos token.Pos
	Rhs ast.Expr
}

// defsFact maps each variable to the set of definitions that may reach a
// program point. The per-variable set is keyed by definition position.
type defsFact map[types.Object]map[token.Pos]DefSite

func (f defsFact) clone() defsFact {
	g := make(defsFact, len(f))
	for obj, sites := range f {
		m := make(map[token.Pos]DefSite, len(sites))
		for pos, d := range sites {
			m[pos] = d
		}
		g[obj] = m
	}
	return g
}

// ReachingDefs is the result of a reaching-definitions analysis over one
// function frame, queryable at any emitted CFG node.
type ReachingDefs struct {
	p  *Pass
	g  *CFG
	in map[*Block]defsFact
}

// ComputeReachingDefs runs the analysis. Only identifiers resolving to
// *types.Var objects are tracked; anything assigned through a selector,
// index or dereference changes state the analysis does not model.
func ComputeReachingDefs(p *Pass, g *CFG) *ReachingDefs {
	prob := Problem[defsFact]{
		Entry:  defsFact{},
		Bottom: func() defsFact { return defsFact{} },
		Join: func(a, b defsFact) defsFact {
			m := a.clone()
			for obj, sites := range b {
				if m[obj] == nil {
					m[obj] = make(map[token.Pos]DefSite, len(sites))
				}
				for pos, d := range sites {
					m[obj][pos] = d
				}
			}
			return m
		},
		Equal: func(a, b defsFact) bool {
			if len(a) != len(b) {
				return false
			}
			for obj, as := range a {
				bs, ok := b[obj]
				if !ok || len(as) != len(bs) {
					return false
				}
				for pos := range as {
					if _, ok := bs[pos]; !ok {
						return false
					}
				}
			}
			return true
		},
		Transfer: func(b *Block, in defsFact) defsFact {
			out := in.clone()
			for _, n := range b.Nodes {
				applyDefs(p, n, out)
			}
			return out
		},
	}
	return &ReachingDefs{p: p, g: g, in: Forward(g, prob)}
}

// applyDefs folds one emitted node's definitions into the fact (kill the
// old sites, gen the new one).
func applyDefs(p *Pass, n ast.Node, fact defsFact) {
	def := func(id *ast.Ident, rhs ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := p.ObjectOf(id)
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		fact[obj] = map[token.Pos]DefSite{id.Pos(): {Pos: id.Pos(), Rhs: rhs}}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		oneToOne := len(n.Lhs) == len(n.Rhs)
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if oneToOne && (n.Tok == token.ASSIGN || n.Tok == token.DEFINE) {
				rhs = n.Rhs[i]
			}
			def(id, rhs) // compound tokens (+=, …) record an opaque def
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			def(id, nil)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			oneToOne := len(vs.Names) == len(vs.Values)
			for i, id := range vs.Names {
				var rhs ast.Expr
				if oneToOne {
					rhs = vs.Values[i]
				}
				def(id, rhs)
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			def(id, nil)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			def(id, nil)
		}
	}
}

// At returns the definitions of obj that may reach the given node, which
// must be one the CFG builder emitted (or an expression nested inside
// one). ok is false when the node is not part of this CFG or obj has no
// recorded definition (a parameter, capture, or untracked write) — both
// mean "unknown", the conservative answer.
func (r *ReachingDefs) At(obj types.Object, node ast.Node) (sites []DefSite, ok bool) {
	blk, idx := r.g.FindNested(node)
	if blk == nil {
		return nil, false
	}
	fact := r.in[blk].clone()
	for i := 0; i < idx; i++ {
		applyDefs(r.p, blk.Nodes[i], fact)
	}
	m, have := fact[obj]
	if !have || len(m) == 0 {
		return nil, false
	}
	for _, d := range m {
		sites = append(sites, d)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Pos < sites[j].Pos })
	return sites, true
}

// contains reports whether needle appears in the subtree of root (not
// descending into function literals — their nodes belong to other frames).
func contains(root, needle ast.Node) bool {
	found := false
	nodeRefs(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}

// assignsIn reports whether any emitted node of block b (re)defines obj.
func assignsIn(p *Pass, b *Block, obj types.Object) bool {
	fact := defsFact{}
	for _, n := range b.Nodes {
		applyDefs(p, n, fact)
	}
	_, ok := fact[obj]
	return ok
}
