package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SliceViewAnalyzer guards the boundary the zero-copy record path walks
// along: a subslice of a pooled scratch buffer or a store-owned record
// payload is a live view into memory the function does not own. Returning
// such a view silently extends the buffer's lifetime past the Put (or
// past the next cache eviction) from the caller's side, where nothing in
// the signature says so.
//
// Tracked acquisitions are the compress package's pooled getters
// (GetBytes, GetInt64s, GetFloats) and payloads handed out by the
// artifact store's Get. A return whose results include a slice expression
// over a tracked buffer is reported. Returning the whole buffer is not —
// that is the poolpair analyzer's ownership-transfer convention — and
// deliberate view-returning APIs document themselves with a
// //lint:sliceview annotation stating the ownership story.
//
// The same borrow discipline applies to the chunked-decode boundary: the
// slice a DecodeChunks yield callback receives is valid only for the
// duration of the callback (the decoder rewrites it for the next chunk).
// Assigning it — or a subslice of it — to a variable captured from an
// enclosing scope retains a view that will be silently overwritten, so
// such assignments are reported too; keep what you need with an
// append-copy instead.
var SliceViewAnalyzer = &Analyzer{
	Name: "sliceview",
	Doc:  "returning a subslice of a pooled or store-owned buffer leaks an unadvertised alias",
	Run:  runSliceView,
}

func runSliceView(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					sliceViewBody(p, fn.Body)
				}
			case *ast.FuncLit:
				sliceViewBody(p, fn.Body)
			case *ast.CallExpr:
				chunkYieldCheck(p, fn)
			}
			return true
		})
	}
}

// chunkYieldCheck enforces the DecodeChunks borrow contract on a call
// site: inside the yield func literal, the chunk parameter (the slice the
// decoder lends for one callback) must not escape into a variable
// declared outside the literal, whole or sliced. Copies via append (or
// any other call) pass; so does binding to locals of the literal itself,
// which cannot outlive the callback.
func chunkYieldCheck(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Name() != "DecodeChunks" {
		return
	}
	var lit *ast.FuncLit
	for _, arg := range call.Args {
		if l, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			lit = l
		}
	}
	if lit == nil || lit.Type.Params == nil {
		return
	}
	borrowed := make(map[types.Object]bool)
	for _, fld := range lit.Type.Params.List {
		for _, name := range fld.Names {
			obj := p.ObjectOf(name)
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				borrowed[obj] = true
			}
		}
	}
	if len(borrowed) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Lhs) != len(s.Rhs) {
			return true
		}
		for i := range s.Rhs {
			rhs := ast.Unparen(s.Rhs[i])
			if se, ok := rhs.(*ast.SliceExpr); ok {
				rhs = ast.Unparen(se.X)
			}
			id, ok := rhs.(*ast.Ident)
			if !ok || !borrowed[p.ObjectOf(id)] {
				continue
			}
			dst := lhsObject(p, s.Lhs, i)
			if dst == nil || (dst.Pos() >= lit.Pos() && dst.Pos() < lit.End()) {
				continue
			}
			p.Reportf(s.Pos(), "retaining the chunk-iterator slice %q past its yield callback aliases a decoder-owned buffer that the next chunk overwrites: copy the values (append) or annotate the ownership story with //lint:sliceview", id.Name)
		}
		return true
	})
}

// borrowFact maps each local to the ownership label of the borrowed
// buffer it currently holds ("pooled", "store-owned").
type borrowFact map[types.Object]string

func (f borrowFact) clone() borrowFact {
	g := make(borrowFact, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

// sliceViewBody runs the borrow analysis over one function frame as a
// forward-dataflow problem on its CFG: a variable holds a borrow from
// the assignment that acquires it until a reassignment kills it, along
// every path — so a return only fires when a borrowed view actually
// reaches it, and rebinding the variable to an owned buffer clears the
// taint (the linear walker this replaces tainted the name for the whole
// body, path-insensitively).
func sliceViewBody(p *Pass, body *ast.BlockStmt) {
	g := FuncCFG(body)
	in := Forward(g, Problem[borrowFact]{
		Entry:  borrowFact{},
		Bottom: func() borrowFact { return borrowFact{} },
		Join: func(a, b borrowFact) borrowFact {
			m := a.clone()
			for k, v := range b {
				m[k] = v // a buffer borrowed on any path is borrowed at the join
			}
			return m
		},
		Equal: func(a, b borrowFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if b[k] != v {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in borrowFact) borrowFact {
			out := in.clone()
			for _, n := range b.Nodes {
				applyBorrows(p, n, out)
			}
			return out
		},
	})
	for _, b := range g.Blocks {
		fact := in[b].clone()
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				checkBorrowReturn(p, ret, fact)
			}
			applyBorrows(p, n, fact)
		}
	}
}

// applyBorrows is the transfer function for one emitted node: an
// assignment from a borrow-returning call gens the label, any other
// direct rebinding of a tracked variable kills it.
func applyBorrows(p *Pass, n ast.Node, fact borrowFact) {
	kill := func(e ast.Expr) {
		if id := identOf(e); id != nil {
			if obj := p.ObjectOf(id); obj != nil {
				delete(fact, obj)
			}
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				if kind := borrowKind(p, call); kind != "" {
					for _, l := range s.Lhs {
						kill(l)
					}
					if obj := lhsObject(p, s.Lhs, 0); obj != nil {
						fact[obj] = kind
					}
					return
				}
			}
		}
		for _, l := range s.Lhs {
			kill(l)
		}
	case *ast.IncDecStmt:
		kill(s.X)
	case *ast.RangeStmt:
		kill(s.Key)
		kill(s.Value)
	}
}

// checkBorrowReturn reports subslice views of currently-borrowed buffers
// among a return's results.
func checkBorrowReturn(p *Pass, ret *ast.ReturnStmt, fact borrowFact) {
	if len(fact) == 0 {
		return
	}
	for _, r := range ret.Results {
		ast.Inspect(r, func(c ast.Node) bool {
			se, ok := c.(*ast.SliceExpr)
			if !ok {
				return true
			}
			id := identOf(se.X)
			if id == nil {
				return true
			}
			if kind, ok := fact[p.ObjectOf(id)]; ok {
				p.Reportf(se.Pos(), "returning a subslice of %q hands out a view of a %s buffer the caller cannot see: copy the bytes, return the whole buffer, or annotate the ownership story with //lint:sliceview", id.Name, kind)
			}
			return true
		})
	}
}

// borrowKind classifies a call whose result is a buffer the function
// borrows rather than owns: "" when it is neither.
func borrowKind(p *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if _, pooled := poolPairs[fn.Name()]; pooled && strings.HasSuffix(fn.Pkg().Path(), "internal/compress") {
		return "pooled"
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if fn.Name() == "Get" && strings.HasSuffix(fn.Pkg().Path(), "internal/artifact") {
		return "store-owned"
	}
	return ""
}
