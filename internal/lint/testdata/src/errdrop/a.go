// Corpus for the errdrop analyzer: no silently discarded errors from
// module APIs or Close/Flush.
package errdrop

import (
	"os"

	"climcompress/internal/par"
)

func mightFail() error { return nil }

type sink struct{}

func (sink) Close() error                { return nil }
func (sink) Flush() error                { return nil }
func (sink) Write(p []byte) (int, error) { return len(p), nil }

// Positive: a module API's error dropped on the floor.
func dropModuleAPI() {
	mightFail() // want "discards its error"
}

// Positive: blank-assigning a Close error.
func dropClose(s sink) {
	_ = s.Close() // want "blank-assigned call .* discards its Close error"
}

// Positive: deferring a Flush discards its error just as silently.
func dropFlushDefer(s sink) {
	defer s.Flush() // want "deferred call .* discards its Flush error"
}

// Positive: par.Each whose worker can actually fail.
func errWorkers(n int) {
	par.Each(n, func(i int) error { // want "discards its error"
		return mightFail()
	})
}

// Negative: handled error.
func handled() error {
	if err := mightFail(); err != nil {
		return err
	}
	return nil
}

// Negative: stdlib error-returning call that is neither Close nor Flush
// (plain vet territory; this analyzer stays out of it).
func stdlibNonClose(f *os.File) {
	f.Sync()
}

// Negative: par.Each with a worker that only returns nil — by Each's
// contract the dropped result is structurally nil.
func nilOnlyWorkers(n int, errs []error) {
	par.Each(n, func(i int) error {
		errs[i] = mightFail()
		return nil
	})
}

// Negative: annotated read-side close.
func annotatedClose(s sink) {
	s.Close() //lint:errdrop read side; no buffered data to lose
}
