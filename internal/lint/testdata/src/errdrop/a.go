// Corpus for the errdrop analyzer: no silently discarded errors from
// module APIs or Close/Flush.
package errdrop

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"

	"climcompress/internal/par"
)

func mightFail() error { return nil }

type sink struct{}

func (sink) Close() error                { return nil }
func (sink) Flush() error                { return nil }
func (sink) Write(p []byte) (int, error) { return len(p), nil }

// Positive: a module API's error dropped on the floor.
func dropModuleAPI() {
	mightFail() // want "discards its error"
}

// Positive: blank-assigning a Close error.
func dropClose(s sink) {
	_ = s.Close() // want "blank-assigned call .* discards its Close error"
}

// Positive: deferring a Flush discards its error just as silently.
func dropFlushDefer(s sink) {
	defer s.Flush() // want "deferred call .* discards its Flush error"
}

// Positive: par.Each whose worker can actually fail.
func errWorkers(n int) {
	par.Each(n, func(i int) error { // want "discards its error"
		return mightFail()
	})
}

// Negative: handled error.
func handled() error {
	if err := mightFail(); err != nil {
		return err
	}
	return nil
}

// Negative: stdlib error-returning call that is neither Close nor Flush
// (plain vet territory; this analyzer stays out of it).
func stdlibNonClose(f *os.File) {
	f.Sync()
}

// Negative: par.Each with a worker that only returns nil — by Each's
// contract the dropped result is structurally nil.
func nilOnlyWorkers(n int, errs []error) {
	par.Each(n, func(i int) error {
		errs[i] = mightFail()
		return nil
	})
}

// Negative: annotated read-side close.
func annotatedClose(s sink) {
	s.Close() //lint:errdrop read side; no buffered data to lose
}

// lease models the shard runner's claim records: Release returns an error
// because a release that fails leaves the unit locked until TTL expiry.
type lease struct{}

func (lease) Release() error { return nil }
func (lease) Renew() error   { return nil }

// Positive: dropping a lease release on the unit-failure path silently
// costs every peer a full TTL of wait before they can steal the unit.
func dropLeaseRelease(l lease) {
	l.Release() // want "discards its error"
}

// Positive: releasing in a defer is just as silent.
func dropLeaseReleaseDefer(l lease) {
	defer l.Release() // want "deferred call .* discards its error"
}

// Positive: a background lease-refresh goroutine that drops the renewal
// error keeps computing a unit another shard will steal and recompute.
func dropLeaseRenewSpawned(l lease) {
	go l.Renew() // want "spawned call .* discards its error"
}

// Negative: annotated best-effort release — the unit already failed and
// TTL expiry bounds the damage, a decision worth recording inline.
func annotatedLeaseRelease(l lease) {
	l.Release() //lint:errdrop best-effort; TTL expiry reclaims the unit if this fails
}

// --- HTTP daemon cases (climatebenchd made these paths load-bearing) ---

// Positive: an HTTP response body Close dropped after a read. The Close
// rule already covers it; the case is pinned here because it is the
// single most common error drop in HTTP client code.
func dropRespBodyClose() {
	resp, err := http.Get("http://127.0.0.1:0/stats")
	if err != nil {
		return
	}
	resp.Body.Close() // want "discards its Close error"
}

// Positive: a spawned http.Serve whose error vanishes with the
// goroutine — the daemon stops serving and nobody finds out.
func dropServeSpawned(srv *http.Server, ln net.Listener) {
	go srv.Serve(ln) // want "spawned call .* discards its Serve error"
}

// Positive: package-level ListenAndServe dropped on the floor.
func dropListenAndServe() {
	http.ListenAndServe("127.0.0.1:0", nil) // want "discards its ListenAndServe error"
}

// Positive: a graceful drain whose failure is silent abandons in-flight
// requests without a trace.
func dropShutdown(srv *http.Server, ctx context.Context) {
	srv.Shutdown(ctx) // want "discards its Shutdown error"
}

// Positive: deferring the TLS variant is just as silent.
func dropServeTLSDefer(srv *http.Server, ln net.Listener) {
	defer srv.ServeTLS(ln, "cert.pem", "key.pem") // want "deferred call .* discards its ServeTLS error"
}

// Negative: serve error captured and inspected — the daemon idiom.
func handledServe(srv *http.Server, ln net.Listener) error {
	if err := srv.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Negative: annotated read-side body close after a full drain.
func annotatedRespBodyClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	//lint:errdrop read side; the body was drained and a response Close cannot lose data
	resp.Body.Close()
}

// Negative: http.Handler's ServeHTTP returns no error at all; the serve
// rule must not fire on name proximity.
func serveHTTPIsFine(h http.Handler, w http.ResponseWriter, r *http.Request) {
	h.ServeHTTP(w, r)
}
