// Corpus for the ctxflow analyzer: context threading and cancellation
// observation. Positives detach from the caller's ctx or loop blind to
// it; negatives thread it, observe it, or have no caller ctx to lose.
package ctxflow

import (
	"context"

	"climcompress/internal/par"
)

func work(a, b int)                          {}
func workCtx(ctx context.Context, i int)     {}
func fetch(ctx context.Context) (int, error) { return 0, nil }

// --- positives -------------------------------------------------------------

func detach(ctx context.Context) (int, error) {
	return fetch(context.Background()) // want "discards the caller's ctx"
}

func todoInstead(ctx context.Context, n int) {
	c := context.TODO() // want "discards the caller's ctx"
	workCtx(c, n)
}

func detachInClosure(ctx context.Context) func() (int, error) {
	return func() (int, error) {
		return fetch(context.Background()) // want "discards the caller's ctx"
	}
}

func blindFor(ctx context.Context, n int) error {
	return par.EachCtx(ctx, n, func(i int) error {
		for j := 0; j < 1000; j++ { // want "never observes any context"
			work(i, j)
		}
		return nil
	})
}

func blindRange(ctx context.Context, xs []int) error {
	return par.EachLimitCtx(ctx, len(xs), 4, func(i int) error {
		for _, v := range xs { // want "never observes any context"
			work(i, v)
		}
		return nil
	})
}

// --- negatives -------------------------------------------------------------

// No caller ctx in scope: constructing the root context is main()'s job.
func mainStyle() {
	ctx := context.Background()
	workCtx(ctx, 0)
}

// The worker loop polls ctx.Err(): cancellation is observed.
func politeLoop(ctx context.Context, n int) error {
	return par.EachCtx(ctx, n, func(i int) error {
		for j := 0; j < 1000; j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			work(i, j)
		}
		return nil
	})
}

// No loop in the worker: EachCtx's own scheduling check bounds the work.
func noLoop(ctx context.Context, n int) error {
	return par.EachLimitCtx(ctx, n, 2, func(i int) error {
		work(i, 0)
		return nil
	})
}

// Passing ctx into the loop body counts as observing it: the callee is
// assumed to honor cancellation.
func threadsThrough(ctx context.Context, xs []int) error {
	return par.EachCtx(ctx, len(xs), func(i int) error {
		for range xs {
			workCtx(ctx, i)
		}
		return nil
	})
}

// A deliberate detach states its reason.
func detachJanitor(ctx context.Context) context.Context {
	//lint:ctxflow the janitor outlives request contexts by design
	return context.Background()
}
