// Corpus for the nondet analyzer: no wall-clock, unseeded randomness,
// or map formatting in deterministic packages.
package nondet

import (
	"fmt"
	"math/rand"
	"time"
)

// Positive: wall clock leaking into pipeline state.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic package"
}

// Positive: the global random source is differently seeded per process.
func jitter() float64 {
	return rand.Float64() // want "global random source"
}

// Positive: seeding the global source is still shared mutable state.
func reseed(seed int64) {
	rand.Seed(seed) // want "global random source"
}

// Positive: formatting a map bakes fmt's key ordering into the output.
func describe(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want "map passed to fmt.Sprintf"
}

// Negative: an explicitly seeded generator is reproducible.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Negative: formatting a slice preserves its order.
func describeSlice(xs []int) string {
	return fmt.Sprintf("%v", xs)
}

// Negative: arithmetic on timestamps passed in by the caller.
func elapsed(start, end int64) int64 {
	return end - start
}

// Negative: annotated wall-clock use (timing display only).
func wallClock() time.Time {
	//lint:nondet timing display only; never feeds results or cache keys
	return time.Now()
}
