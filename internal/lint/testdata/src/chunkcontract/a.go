// Corpus for the chunkcontract analyzer: DecodeChunks offsets must be
// strictly increasing and contiguous from 0. Positives are provable
// violations; negatives are the repo's real decode shapes plus the
// conservative-unknown cases the analyzer must stay silent on.
package chunkcontract

// --- positives -------------------------------------------------------------

type badFirstLit struct{}

func (badFirstLit) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	var chunk []float32
	return yield(1, chunk) // want "first chunk must start at offset 0"
}

type badFirstVar struct{}

func (badFirstVar) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	off := 4
	var chunk []float32
	return yield(off, chunk) // want "first chunk must start at offset 0"
}

type badRepeatZero struct{}

func (badRepeatZero) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	var chunk []float32
	if err := yield(0, chunk); err != nil {
		return err
	}
	return yield(0, chunk) // want "passes offset 0 again"
}

type badStuckVar struct{}

func (badStuckVar) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	off := 0
	var chunk []float32
	for i := 0; i < len(data); i++ {
		if err := yield(off, chunk); err != nil { // want "never changes on the loop"
			return err
		}
	}
	return nil
}

type badStuckConst struct{}

func (badStuckConst) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	var chunk []float32
	for range data {
		if err := yield(0, chunk); err != nil { // want "never changes on the loop"
			return err
		}
	}
	return nil
}

type badBackwards struct{}

func (badBackwards) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	off := 0
	var chunk []float32
	for i := 0; i < len(data); i += 8 {
		if err := yield(off, chunk); err != nil {
			return err
		}
		off += 8
		off-- // want "moves backwards"
	}
	return nil
}

// --- negatives -------------------------------------------------------------

// The canonical decode loop: offset advances by the chunk width each
// iteration (fallbackChunks' shape).
type okLoop struct{}

func (okLoop) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	chunk := make([]float32, 8)
	for off := 0; off < len(data); off += len(chunk) {
		if err := yield(off, chunk); err != nil {
			return err
		}
	}
	return nil
}

// Conditional advance inside the loop body (tsblob's shape): the offset
// is reassigned on the cycle, so the proof obligation fails — silence.
type okConditional struct{}

func (okConditional) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	off := 0
	chunk := make([]float32, 8)
	for off < len(data) {
		if err := yield(off, chunk); err != nil {
			return err
		}
		off += len(chunk)
	}
	return nil
}

// Yield forwarded through a closure (fillmask's shape): the frame CFG
// cannot order the calls, so everything is unknown — silence, even
// though the literal 5 would be damning if it were provably first.
type okClosure struct{}

func (okClosure) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	emit := func(off int, c []float32) error { return yield(off, c) }
	return emit(5, nil)
}

// Yield escaping into a helper: the call set is incomplete — silence.
func replay(yield func(int, []float32) error) error { return yield(0, nil) }

type okEscape struct{}

func (okEscape) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	return replay(yield)
}

// A sanctioned non-contiguous probe documents itself.
type okSuppressed struct{}

func (okSuppressed) DecodeChunks(data []byte, yield func(int, []float32) error) error {
	//lint:chunkcontract header probe yields the trailer block first by design
	return yield(8, nil)
}
