// Corpus for gocapture's pre-Go-1.22 loop-variable rule. This package is
// evaluated by its test with the module version forced to 1.21, where
// every loop iteration shares a single variable, so a goroutine capturing
// it observes whatever iteration the loop has advanced to.
package gocaptureold

func use(int) {}

// --- positives -------------------------------------------------------------

func spawnRangeValue(xs []int) {
	for _, v := range xs {
		go func() { // want "loop variable \"v\""
			use(v)
		}()
	}
}

func spawnRangeKey(xs []int) {
	for i := range xs {
		go func() { // want "loop variable \"i\""
			use(i)
		}()
	}
}

func spawnForInit(n int) {
	for i := 0; i < n; i++ {
		go func() { // want "loop variable \"i\""
			use(i)
		}()
	}
}

func spawnNested(xs, ys []int) {
	for _, x := range xs {
		for _, y := range ys {
			go func() { // want "loop variable \"x\"" "loop variable \"y\""
				use(x + y)
			}()
		}
	}
}

func spawnDeepUse(xs []int) {
	for _, v := range xs {
		go func() { // want "loop variable \"v\""
			if v > 0 {
				use(v)
			}
		}()
	}
}

// --- negatives -------------------------------------------------------------

// Passing the variable as an argument snapshots it at spawn time.
func passedAsArg(xs []int) {
	for _, v := range xs {
		go func(v int) { use(v) }(v)
	}
}

// The classic v := v shadow gives each iteration its own variable.
func shadowed(xs []int) {
	for _, v := range xs {
		v := v
		go func() { use(v) }()
	}
}

// Not a loop variable at all.
func notALoop(v int) {
	go func() { use(v) }()
}

// A deliberate last-value capture documents itself.
func suppressedCapture(xs []int) {
	for _, v := range xs {
		//lint:gocapture the goroutine only runs after the loop completes
		go func() { use(v) }()
	}
}
