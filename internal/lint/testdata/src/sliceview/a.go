// Corpus for the sliceview analyzer: returning a subslice of a pooled
// or store-owned buffer leaks an unadvertised alias.
package sliceview

import (
	"climcompress/internal/artifact"
	"climcompress/internal/compress"
)

// Positive: a window into pooled scratch escapes to the caller.
func viewOfPooled(n int) []byte {
	b := compress.GetBytes(n)
	defer compress.PutBytes(b)
	return b[:n] // want "view of a pooled buffer"
}

// Positive: the subslice hides inside a multi-result return.
func viewWithErr(n int) ([]byte, error) {
	b := compress.GetBytes(n)
	defer compress.PutBytes(b)
	return b[4:n], nil // want "view of a pooled buffer"
}

// Positive: a three-index slice is still a view.
func viewFullSlice(n int) []int64 {
	s := compress.GetInt64s(n)
	defer compress.PutInt64s(s)
	return s[0:n:n] // want "view of a pooled buffer"
}

// Positive: a window into a store payload.
func headerOf(s *artifact.Store, id artifact.ID) []byte {
	p, ok := s.Get(id)
	if !ok {
		return nil
	}
	return p[:8] // want "view of a store-owned buffer"
}

// Negative: returning the whole buffer transfers ownership (the
// poolpair convention); only subslice views are flagged.
func handOff(n int) []byte {
	b := compress.GetBytes(n)
	return b
}

// Negative: copying out breaks the alias.
func copied(n int) []byte {
	b := compress.GetBytes(n)
	out := append([]byte(nil), b[:n]...)
	compress.PutBytes(b)
	return out
}

// Negative: an annotation states the ownership story.
func annotatedView(s *artifact.Store, id artifact.ID) []byte {
	p, _ := s.Get(id)
	//lint:sliceview content-addressed records are immutable; read-only views are safe
	return p[:4]
}

// Negative: subslices of locally owned slices are fine.
func plainSlice(n int) []byte {
	b := make([]byte, n)
	return b[:n/2]
}

// Positive: the yield callback's chunk slice escapes whole into a
// captured variable — the decoder overwrites it on the next chunk.
func retainWhole(c compress.Codec, buf []byte) []float32 {
	var keep []float32
	_ = compress.DecodeChunks(c, buf, nil, func(off int, vals []float32) error {
		keep = vals // want "chunk-iterator slice"
		return nil
	})
	return keep
}

// Positive: a subslice of the chunk is the same borrowed memory.
func retainHead(c compress.Codec, buf []byte) []float32 {
	var head []float32
	_ = compress.DecodeChunks(c, buf, nil, func(off int, vals []float32) error {
		if off == 0 {
			head = vals[:1] // want "chunk-iterator slice"
		}
		return nil
	})
	return head
}

// Negative: an append-copy owns its memory.
func copyOut(c compress.Codec, buf []byte) []float32 {
	var all []float32
	_ = compress.DecodeChunks(c, buf, nil, func(off int, vals []float32) error {
		all = append(all, vals...)
		return nil
	})
	return all
}

// Negative: a local of the callback cannot outlive it.
func localAlias(c compress.Codec, buf []byte) float64 {
	var sum float64
	_ = compress.DecodeChunks(c, buf, nil, func(off int, vals []float32) error {
		v := vals
		for _, x := range v {
			sum += float64(x)
		}
		return nil
	})
	return sum
}

// Negative: an annotation states why retaining is safe here.
func annotatedRetain(c compress.Codec, buf []byte) int {
	var last []float32
	_ = compress.DecodeChunks(c, buf, nil, func(off int, vals []float32) error {
		//lint:sliceview only the length is read after the loop, never the elements
		last = vals
		return nil
	})
	return len(last)
}
