// Corpus for the floateq analyzer: no float == / != outside annotated
// sentinel comparisons.
package floateq

// Positive: exact equality where a tolerance is almost surely meant.
func approxEqual(a, b float64) bool {
	return a == b // want "== on floating-point operands"
}

// Positive: exact match against a computed value.
func countTies(xs []float32, v float32) int {
	n := 0
	for _, x := range xs {
		if x == v { // want "== on floating-point operands"
			n++
		}
	}
	return n
}

// Positive: != is just as suspect as ==.
func drifted(prev, cur float64) bool {
	return prev != cur // want "!= on floating-point operands"
}

// Positive: a nonzero constant is not the degenerate-guard idiom.
func atUpperEdge(p float64) bool {
	return p == 1 // want "== on floating-point operands"
}

// Negative: the NaN self-comparison idiom is exact by construction.
func isNaN(x float64) bool {
	return x != x
}

// Negative: comparison against exactly zero guards degenerate inputs.
func zeroGuard(sxx float64) bool {
	return sxx == 0
}

// Negative: integer equality is exact; not this analyzer's business.
func intEq(a, b int) bool {
	return a == b
}

// Negative: an annotated sentinel comparison.
func isFill(v, fill float32) bool {
	//lint:floateq fill values are exact bit-pattern sentinels, never computed
	return v == fill
}
