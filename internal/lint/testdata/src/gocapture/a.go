// Corpus for the gocapture analyzer: captured variables written
// concurrently. Positive cases race; negative cases synchronize, write
// per-index slots, run serially, or order the writes by happens-before.
package gocapture

import (
	"sync"

	"climcompress/internal/par"
)

// --- positives -------------------------------------------------------------

func bothSides() {
	x := 0
	done := make(chan struct{})
	go func() {
		x = 1 // want "written both by this goroutine and by the spawning function"
		close(done)
	}()
	x = 2
	<-done
	_ = x
}

func incBothSides() {
	hits := 0
	done := make(chan struct{})
	go func() {
		hits++ // want "written both by this goroutine"
		close(done)
	}()
	hits++
	<-done
}

func loopSpawn() {
	total := 0
	for i := 0; i < 4; i++ {
		go func() {
			total++ // want "goroutine spawned inside a loop"
		}()
	}
	_ = total
}

func parEachShared(n int) error {
	sum := 0
	err := par.Each(n, func(i int) error {
		sum += i // want "par.Each worker closure"
		return nil
	})
	_ = sum
	return err
}

func parRangesShared(n int) {
	last := 0
	par.Ranges(n, 8, func(lo, hi int) {
		last = hi // want "par.Ranges worker closure"
	})
	_ = last
}

func parLimitShared(n int) error {
	count := 0
	err := par.EachLimit(n, 4, func(i int) error {
		count++ // want "par.EachLimit worker closure"
		return nil
	})
	_ = count
	return err
}

// --- negatives -------------------------------------------------------------

// Per-index writes are the package's sanctioned result pattern: each
// worker owns its slot, no two invocations touch the same element.
func perIndexSlots(n int) ([]int, error) {
	res := make([]int, n)
	err := par.Each(n, func(i int) error {
		res[i] = i * i
		return nil
	})
	return res, err
}

// Both sides hold the mutex: synchronized, not a race.
func guarded() int {
	var mu sync.Mutex
	x := 0
	done := make(chan struct{})
	go func() {
		mu.Lock()
		x++
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	x++
	mu.Unlock()
	<-done
	return x
}

// The outer write happens before the spawn: the go statement orders it.
func writeBeforeSpawn() {
	x := 0
	x = 1
	done := make(chan struct{})
	go func() {
		x++
		close(done)
	}()
	<-done
}

// EachLimit with limit 1 runs workers serially; the closure is the only
// writer at any moment.
func serialLimit(n int) error {
	acc := 0
	err := par.EachLimit(n, 1, func(i int) error {
		acc += i
		return nil
	})
	_ = acc
	return err
}

// Writes to the closure's own locals never leave the goroutine.
func closureLocal() {
	go func() {
		y := 0
		y++
		_ = y
	}()
}

// A documented single-writer handoff suppresses the finding.
func suppressedHandoff() {
	x := 0
	done := make(chan struct{})
	go func() {
		//lint:gocapture single writer until done closes, then ownership returns
		x = 1
		close(done)
	}()
	<-done
	x = 2
	_ = x
}
