// Corpus for the maporder analyzer: range over a map must not feed
// ordered output without an intervening sort.
package maporder

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// Positive: keys collected from a map range and returned unsorted.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "never sorted"
	}
	return keys
}

// Positive: writing to a stream while iterating a map.
func printDirect(m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%v\n", k, v) // want "output order depends on map iteration order"
	}
}

// Positive: the PR 3 HistogramChart revert, distilled — building chart
// text straight out of a marker map.
func render(markers map[string]string) string {
	var b strings.Builder
	for name, sym := range markers {
		b.WriteString(name) // want "WriteString on an io.Writer inside range over map"
		b.WriteString(sym)  // want "WriteString on an io.Writer inside range over map"
	}
	return b.String()
}

// Positive: two slices built in one loop, only one sorted afterwards.
func halfSorted(m map[string]int) ([]string, []int) {
	var names []string
	var vals []int
	for k, v := range m {
		names = append(names, k)
		vals = append(vals, v) // want "\"vals\" is built from a range over a map"
	}
	sort.Strings(names)
	return names, vals
}

// Negative: the sanctioned collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Negative: sort.Slice with the collected slice in its comparator.
func sortedByValue(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return m[out[i]] < m[out[j]] })
	return out
}

// Negative: ranging over a slice (already ordered) while writing.
func renderSorted(names []string, m map[string]string) string {
	var b strings.Builder
	for _, n := range names {
		b.WriteString(m[n])
	}
	return b.String()
}

// Negative: order-insensitive aggregation over a map.
func maxVal(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Negative: an explicit suppression with justification.
func annotated(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:maporder caller sorts; kept raw here to exercise suppression
		keys = append(keys, k)
	}
	return keys
}
