// Corpus for the poolpair analyzer: every pooled Get/Acquire must be
// released on every exit path.
package poolpair

import (
	"errors"

	"climcompress/internal/compress"
)

var errTooBig = errors.New("too big")

func use(b []byte) { _ = len(b) }

type source struct{}

// AcquireView mimics ensemble.VarStats.AcquireOriginal: data plus a
// release func the caller must invoke.
func (source) AcquireView(i int) ([]float32, func()) { return nil, func() {} }

// Positive: early return leaks the buffer.
func leakEarlyReturn(n int) error {
	b := compress.GetBytes(n) // want "\"b\" acquired here is not released"
	if n > 4 {
		return errTooBig
	}
	compress.PutBytes(b)
	return nil
}

// Positive: a panic edge before the Put.
func leakPanic(n int) {
	s := compress.GetInt64s(n) // want "\"s\" acquired here is not released"
	if n == 0 {
		panic("n must be positive")
	}
	compress.PutInt64s(s)
}

// Positive: acquired and simply never released.
func leakForgotten(n int) {
	b := compress.GetBytes(n) // want "\"b\" acquired here is not released"
	use(b)
}

// Positive: release func skipped on the early return.
func leakAcquire(s source) int {
	data, release := s.AcquireView(0) // want "\"release\" acquired here is not released"
	if len(data) == 0 {
		return 0
	}
	release()
	return len(data)
}

// Negative: deferred Put covers every exit.
func deferRelease(n int) int {
	b := compress.GetBytes(n)
	defer compress.PutBytes(b)
	if n > 4 {
		return 1
	}
	return 0
}

// Negative: straight-line Get/Put pairing.
func putBeforeReturn(n int) int {
	b := compress.GetBytes(n)
	b = append(b, 1)
	compress.PutBytes(b)
	return len(b)
}

// Negative: returning the buffer transfers ownership to the caller.
func handOff(n int) []byte {
	b := compress.GetBytes(n)
	return append(b, 0)
}

// Negative: storing into a shared structure transfers ownership (the
// parallel-codec payloads pattern, released later by a bulk sweep).
func stash(dst [][]byte, n int) {
	b := compress.GetBytes(n)
	dst[0] = append(b, 1)
}

// Negative: deferred closure releases the buffer.
func deferWrapped(n int) {
	b := compress.GetBytes(n)
	defer func() { compress.PutBytes(b) }()
	use(b)
}

// Negative: deferred release func.
func acquireDefer(s source) int {
	data, release := s.AcquireView(1)
	defer release()
	return len(data)
}

// Negative: explicit suppression.
func annotatedLeak(n int) {
	b := compress.GetBytes(n) //lint:poolpair ownership documented elsewhere; suppression under test
	use(b)
}

// Positive: the float pool follows the same pairing rule.
func leakFloats(n int) error {
	f := compress.GetFloats(n) // want "\"f\" acquired here is not released"
	if n > 4 {
		return errTooBig
	}
	compress.PutFloats(f)
	return nil
}

// Negative: deferred release of the float pool covers every exit.
func floatsDeferred(n int) float32 {
	f := compress.GetFloats(n)
	defer compress.PutFloats(f)
	if n == 0 {
		return 0
	}
	return f[0]
}
