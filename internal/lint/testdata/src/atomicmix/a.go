// Corpus for the atomicmix analyzer: a variable must be all-atomic or
// all-plain. Positives mix the two disciplines; negatives stick to one,
// use the wrapper types, or document a joined-writers read.
package atomicmix

import "sync/atomic"

var hits int64

func bump() {
	atomic.AddInt64(&hits, 1)
}

// --- positives -------------------------------------------------------------

func report() int64 {
	return hits // want "updated through sync/atomic"
}

func reset() {
	hits = 0 // want "updated through sync/atomic"
}

func drain() int64 {
	old := hits // want "updated through sync/atomic"
	atomic.StoreInt64(&hits, 0)
	return old
}

type counters struct {
	served int64
	errs   uint32
}

func (c *counters) serve(failed bool) {
	atomic.AddInt64(&c.served, 1)
	if failed {
		atomic.AddUint32(&c.errs, 1)
	}
}

func (c *counters) snapshot() (int64, uint32) {
	c.errs++                // want "updated through sync/atomic"
	return c.served, c.errs // want "updated through sync/atomic" "updated through sync/atomic"
}

// --- negatives -------------------------------------------------------------

// All-atomic discipline: every access goes through sync/atomic.
var clean int64

func cleanBump()       { atomic.AddInt64(&clean, 1) }
func cleanRead() int64 { return atomic.LoadInt64(&clean) }

// All-plain discipline: never touched atomically, nothing to mix.
var plainOnly int

func incPlain() int {
	plainOnly++
	return plainOnly
}

// The wrapper types make plain access unrepresentable — method calls are
// not loads or stores of the field.
var wrapped atomic.Int64

func wrappedOps() int64 {
	wrapped.Add(1)
	return wrapped.Load()
}

// A read after every writer goroutine is joined is ordered; it documents
// itself rather than paying for an atomic load.
var final int64

func bumpFinal() { atomic.AddInt64(&final, 1) }

func afterJoin() int64 {
	//lint:atomicmix read after all writers are joined by the caller
	return final
}
