// Parses fine, fails the type checker: exercises the loader's
// type-error path.
package types

func addsStringToInt() int {
	return 1 + undefinedIdentifier
}
