// A deliberately unparseable file for the loader's failure-path tests.
package syntax

func missingBrace( {
