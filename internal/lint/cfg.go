package lint

import (
	"go/ast"
	"go/token"
)

// Control-flow graphs for the dataflow analyzers. A CFG is built per
// function frame (a FuncDecl body or a FuncLit body — closures are
// separate frames, exactly like the linear walkers treat them) from the
// AST alone; no types are needed to build one, only to interpret the
// statements inside its blocks.
//
// Blocks hold the nodes that execute when control reaches them, in
// execution order. Control constructs are decomposed: an if statement
// contributes its Init and Cond to the block that evaluates them, then
// branches; a for statement contributes Init to the predecessor, Cond to
// the head block, Post to the latch block. A RangeStmt node itself is
// placed in its head block so analyses can see the per-iteration Key and
// Value definitions, but consumers must not descend into its Body (the
// body statements live in their own blocks) — nodeRefs below implements
// that shallow traversal once for everyone.
//
// The builder is deliberately conservative where Go is tricky: a select
// with no default still gets fall-through edges (an analysis sees more
// paths than can execute, never fewer), and goto to a label that was
// never declared simply ends the block. Panics and returns edge to the
// single Exit block.

// CFG is one function frame's control-flow graph.
type CFG struct {
	Entry  *Block
	Exit   *Block // every return/panic/fall-off-the-end edges here
	Blocks []*Block
}

// Block is a straight-line run of nodes with a single entry point.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

func (b *Block) addSucc(s *Block) {
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// cfgBuilder carries the under-construction graph plus the targets that
// break, continue and goto resolve against.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// breakTargets / continueTargets are stacks of enclosing loop (or
	// switch/select, for break) exits, innermost last. The label is ""
	// for unlabeled constructs.
	breakTargets    []branchTarget
	continueTargets []branchTarget

	// labels maps a label name to its block, for goto. Forward gotos
	// record a pending edge resolved when the label is declared.
	labels       map[string]*Block
	pendingGotos map[string][]*Block

	// stmtLabels maps each labeled loop/switch statement to its label, so
	// the lowering cases can register labeled break/continue targets (the
	// AST does not link a statement back to its label).
	stmtLabels map[ast.Stmt]string
}

type branchTarget struct {
	label string
	block *Block
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:          &CFG{},
		labels:       make(map[string]*Block),
		pendingGotos: make(map[string][]*Block),
		stmtLabels:   attachLabels(body),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Falling off the end of the body reaches Exit.
	if b.cur != nil {
		b.cur.addSucc(b.cfg.Exit)
	}
	// Unresolved gotos (label never declared — ill-formed code the
	// type-checker rejects, but the builder must not crash): drop them.
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock begins a new current block with an edge from the old one
// (when the old one has not terminated).
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		b.cur.addSucc(blk)
	}
	b.cur = blk
	return blk
}

// emit appends a node to the current block, resurrecting an unreachable
// block after a terminator so later statements still get analyzed (dead
// code keeps its facts; it simply has no predecessors).
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Cond)
		condBlk := b.cur
		join := b.newBlock()

		thenBlk := b.newBlock()
		condBlk.addSucc(thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(join)
		}

		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.addSucc(elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			if b.cur != nil {
				b.cur.addSucc(join)
			}
		} else {
			condBlk.addSucc(join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.emit(s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil || hasBreak(s.Body) {
			head.addSucc(exit)
		}
		// An infinite loop without break never reaches exit; the edge
		// above is omitted so reachability stays honest. (A break inside
		// edges to exit explicitly.)
		latch := b.newBlock()
		if s.Post != nil {
			latch.Nodes = append(latch.Nodes, s.Post)
		}
		latch.addSucc(head)

		body := b.newBlock()
		head.addSucc(body)
		b.cur = body
		b.pushLoop(b.labelOf(s), exit, latch)
		b.stmtList(s.Body.List)
		b.popLoop()
		if b.cur != nil {
			b.cur.addSucc(latch)
		}
		b.cur = exit

	case *ast.RangeStmt:
		head := b.startBlock()
		// The RangeStmt node itself carries the per-iteration Key/Value
		// definitions and the ranged expression; nodeRefs visits exactly
		// those parts.
		b.emit(s)
		exit := b.newBlock()
		head.addSucc(exit)
		body := b.newBlock()
		head.addSucc(body)
		b.cur = body
		b.pushLoop(b.labelOf(s), exit, head)
		b.stmtList(s.Body.List)
		b.popLoop()
		if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.switchBody(b.labelOf(s), s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchBody(b.labelOf(s), s.Body, s.Assign)

	case *ast.SelectStmt:
		b.switchBody(b.labelOf(s), s.Body, nil)

	case *ast.LabeledStmt:
		// Start a fresh block so goto/continue can target it; the labeled
		// statement itself handles loop/switch labels via labelOf.
		blk := b.startBlock()
		b.labels[s.Label.Name] = blk
		for _, src := range b.pendingGotos[s.Label.Name] {
			src.addSucc(blk)
		}
		delete(b.pendingGotos, s.Label.Name)
		b.stmt(s.Stmt)

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breakTargets, label); t != nil && b.cur != nil {
				b.cur.addSucc(t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := findTarget(b.continueTargets, label); t != nil && b.cur != nil {
				b.cur.addSucc(t)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				if t, ok := b.labels[label]; ok {
					b.cur.addSucc(t)
				} else {
					b.pendingGotos[label] = append(b.pendingGotos[label], b.cur)
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally by switchBody (case bodies chain); as a
			// bare statement it just ends the block.
		}

	case *ast.ReturnStmt:
		b.emit(s)
		if b.cur != nil {
			b.cur.addSucc(b.cfg.Exit)
		}
		b.cur = nil

	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s) {
			if b.cur != nil {
				b.cur.addSucc(b.cfg.Exit)
			}
			b.cur = nil
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.emit(s)

	default:
		// Unknown statement kinds flow straight through.
		b.emit(s)
	}
}

// switchBody lowers the shared shape of switch / type switch / select:
// each clause starts from the dispatch block, every clause body joins at
// the exit, break targets the exit, and fallthrough chains a case body to
// the next clause's body.
func (b *cfgBuilder) switchBody(label string, body *ast.BlockStmt, assign ast.Stmt) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.startBlock()
	}
	exit := b.newBlock()
	b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: exit}, branchTarget{label: "", block: exit})

	var clauseBlocks []*Block
	var clauseStmts [][]ast.Stmt
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		var guard []ast.Node
		switch cs := cs.(type) {
		case *ast.CaseClause:
			stmts = cs.Body
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				guard = append(guard, e)
			}
		case *ast.CommClause:
			stmts = cs.Body
			if cs.Comm == nil {
				hasDefault = true
			} else {
				guard = append(guard, cs.Comm)
			}
		default:
			continue
		}
		blk := b.newBlock()
		dispatch.addSucc(blk)
		// The type-switch assign (x := y.(type)) and the case guard
		// expressions evaluate on entry to the clause.
		if assign != nil {
			blk.Nodes = append(blk.Nodes, assign)
		}
		blk.Nodes = append(blk.Nodes, guard...)
		clauseBlocks = append(clauseBlocks, blk)
		clauseStmts = append(clauseStmts, stmts)
	}
	if !hasDefault {
		dispatch.addSucc(exit)
	}
	for i, blk := range clauseBlocks {
		b.cur = blk
		b.stmtList(clauseStmts[i])
		if b.cur != nil {
			if fallsThrough(clauseStmts[i]) && i+1 < len(clauseBlocks) {
				b.cur.addSucc(clauseBlocks[i+1])
			} else {
				b.cur.addSucc(exit)
			}
		}
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-2]
	b.cur = exit
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	br, ok := stmts[len(stmts)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, branchTarget{label: "", block: brk})
	b.continueTargets = append(b.continueTargets, branchTarget{label: "", block: cont})
	if label != "" {
		b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: brk})
		b.continueTargets = append(b.continueTargets, branchTarget{label: label, block: cont})
	}
}

func (b *cfgBuilder) popLoop() {
	trim := func(ts []branchTarget) []branchTarget {
		// Unlabeled entry plus possibly a labeled one were pushed; pop
		// until the unlabeled entry for this loop is gone.
		for len(ts) > 0 {
			last := ts[len(ts)-1]
			ts = ts[:len(ts)-1]
			if last.label == "" {
				break
			}
		}
		return ts
	}
	b.breakTargets = trim(b.breakTargets)
	b.continueTargets = trim(b.continueTargets)
}

// findTarget resolves a break/continue label against a target stack,
// innermost (last) first. label "" matches the innermost unlabeled entry.
func findTarget(ts []branchTarget, label string) *Block {
	for i := len(ts) - 1; i >= 0; i-- {
		if ts[i].label == label {
			return ts[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) labelOf(s ast.Stmt) string { return b.stmtLabels[s] }

// attachLabels records the label of each labeled loop/switch statement in
// the frame (not descending into closures).
func attachLabels(body *ast.BlockStmt) map[ast.Stmt]string {
	labels := make(map[ast.Stmt]string)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ls, ok := n.(*ast.LabeledStmt); ok {
			switch ls.Stmt.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				labels[ls.Stmt] = ls.Label.Name
			}
		}
		return true
	})
	return labels
}

// hasBreak reports whether the loop body contains an unlabeled break not
// swallowed by a nested loop/switch/select (which would capture it).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(c ast.Node) bool {
			if found || c == nil {
				return false
			}
			switch c := c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if c != n {
					return false // nested construct captures unlabeled break
				}
			case *ast.BranchStmt:
				if c.Tok == token.BREAK {
					// A labeled break may target an outer loop; treating it
					// as "can exit this loop" only adds edges, never hides
					// them, which is the conservative direction.
					found = true
				}
			}
			return true
		})
	}
	walk(body, 0)
	return found
}

// FuncCFG builds the CFG of a function body, wiring labels first.
func FuncCFG(body *ast.BlockStmt) *CFG {
	attachLabels(body)
	return BuildCFG(body)
}

// Reaches reports whether control can flow from block a to block b
// through at least one edge (a block reaches itself only via a cycle).
func (g *CFG) Reaches(a, b *Block) bool {
	seen := make([]bool, len(g.Blocks))
	var stack []*Block
	push := func(x *Block) {
		if !seen[x.Index] {
			seen[x.Index] = true
			stack = append(stack, x)
		}
	}
	for _, s := range a.Succs {
		push(s)
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return true
		}
		for _, s := range x.Succs {
			push(s)
		}
	}
	return false
}

// InCycle reports whether b sits on a control-flow cycle (a loop).
func (g *CFG) InCycle(b *Block) bool { return g.Reaches(b, b) }

// FindNested locates the emitted node containing n — n itself, or the
// emitted ancestor whose subtree (per nodeRefs) holds it — so analyzers
// can map an arbitrary expression back to its program point.
func (g *CFG) FindNested(n ast.Node) (*Block, int) {
	for _, b := range g.Blocks {
		for i, have := range b.Nodes {
			if have == n || contains(have, n) {
				return b, i
			}
		}
	}
	return nil, -1
}

// BlockOf returns the block and node index holding the given node, or
// (nil, -1). Identity match — the node must be one the builder emitted.
func (g *CFG) BlockOf(n ast.Node) (*Block, int) {
	for _, b := range g.Blocks {
		for i, have := range b.Nodes {
			if have == n {
				return b, i
			}
		}
	}
	return nil, -1
}

// nodeRefs visits the parts of an emitted CFG node that execute with it,
// without descending into nested function literals (separate frames) or
// into the bodies of control statements (their statements live in other
// blocks). This is the shallow traversal every dataflow transfer uses.
func nodeRefs(n ast.Node, f func(ast.Node) bool) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		if !f(n) {
			return
		}
		if n.Key != nil {
			nodeRefs(n.Key, f)
		}
		if n.Value != nil {
			nodeRefs(n.Value, f)
		}
		nodeRefs(n.X, f)
	case nil:
	default:
		ast.Inspect(n, func(c ast.Node) bool {
			if _, ok := c.(*ast.FuncLit); ok {
				f(c) // let the callback see the literal itself, not inside
				return false
			}
			if c == nil {
				return true
			}
			return f(c)
		})
	}
}
