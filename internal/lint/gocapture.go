package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// GoCaptureAnalyzer finds data races hiding in closure captures — the
// class of bug the race detector only reports when a test happens to hit
// the interleaving, and the one PR 5's fan-outs made structurally easy to
// write. Three rules, all built on the CFG so "concurrent" means what the
// control flow says, not what the source order suggests:
//
//   - A `go func(){...}()` closure that writes a captured variable races
//     with the spawning function if the spawner can also write it after
//     the goroutine starts (reachability from the spawn block), or if the
//     spawn sits on a loop so multiple goroutine instances write the same
//     variable.
//
//   - A par.Each / EachLimit / EachCtx / EachLimitCtx / Ranges worker
//     closure that writes a captured variable races with its sibling
//     invocations: the pool runs workers concurrently. Writes through an
//     index (res[i] = ...) are the package's sanctioned pattern and are
//     not captures of the variable itself. par's Each* functions block
//     until every worker returns, so spawner writes *after* the call are
//     ordered and never reported. EachLimit/EachLimitCtx with a literal
//     limit of 1 runs workers serially and is exempt.
//
//   - Under a go.mod `go` directive older than 1.22, a goroutine capturing
//     a loop variable observes whatever iteration the loop has advanced
//     to — every instance likely sees the final value.
//
// Writes bracketed by a mutex Lock() earlier in the same region are
// treated as synchronized and stay silent; so does everything done
// through sync/atomic (those are calls, not assignments). A deliberate
// single-writer handoff documents itself with //lint:gocapture.
var GoCaptureAnalyzer = &Analyzer{
	Name: "gocapture",
	Doc:  "captured variables written concurrently by goroutines or par workers without synchronization",
	Run:  runGoCapture,
}

// parEachFuncs are the internal/par entry points that invoke their
// closure argument concurrently.
var parEachFuncs = map[string]bool{
	"Each": true, "EachLimit": true, "EachCtx": true, "EachLimitCtx": true, "Ranges": true,
}

// spawnSite is one place a frame starts concurrent execution of a closure.
type spawnSite struct {
	lit  *ast.FuncLit
	kind string // "go" or the par function name
	node ast.Node
}

func runGoCapture(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					goCaptureFrame(p, fn.Body)
				}
			case *ast.FuncLit:
				goCaptureFrame(p, fn.Body)
			}
			return true
		})
	}
}

// goCaptureFrame analyzes one function frame's spawn sites.
func goCaptureFrame(p *Pass, body *ast.BlockStmt) {
	spawns := frameSpawns(p, body)
	if len(spawns) == 0 {
		return
	}
	g := FuncCFG(body)
	oldLoopVars := !loopVarPerIteration(p.Pkg.GoVersion)
	for _, s := range spawns {
		blk, idx := g.FindNested(s.node)
		if blk == nil {
			continue
		}
		for _, w := range closureWrites(p, s.lit) {
			obj := w.obj
			switch {
			case s.kind != "go":
				p.Reportf(w.pos, "%q is captured and written by this par.%s worker closure; worker invocations run concurrently and race on it: write to a per-index slot, guard every write with a mutex, or use sync/atomic", obj.Name(), s.kind)
			case g.InCycle(blk):
				p.Reportf(w.pos, "%q is written by a goroutine spawned inside a loop; the goroutine instances race with each other on it: pass a per-iteration value or guard the writes with a mutex", obj.Name())
			default:
				if wpos, ok := outerWriteAfterSpawn(p, g, body, s, blk, idx, obj); ok {
					p.Reportf(w.pos, "%q is written both by this goroutine and by the spawning function (line %d) with neither write synchronized: guard both with a mutex or use sync/atomic", obj.Name(), p.Pkg.Fset.Position(wpos).Line)
				}
			}
		}
		if oldLoopVars && s.kind == "go" {
			for _, lv := range enclosingLoopVars(p, body, s.node) {
				if usesObject(p, s.lit.Body, lv) {
					p.Reportf(s.lit.Pos(), "loop variable %q is captured by a goroutine started in the loop; before Go 1.22 every iteration shares one variable, so the goroutines observe whatever value the loop has advanced to: pass it as an argument", lv.Name())
				}
			}
		}
	}
}

// frameSpawns collects the frame's spawn sites: go statements with a
// closure, and par.Each*/Ranges calls with a closure worker. Nested
// closures are separate frames and are skipped (nodeRefs does not
// descend), so a spawn inside a worker belongs to the worker's frame.
func frameSpawns(p *Pass, body *ast.BlockStmt) []spawnSite {
	var spawns []spawnSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A nested closure is its own frame; runGoCapture visits it
			// separately. (The go/par statements above are seen before the
			// walk reaches their literal, so spawn targets are recorded.)
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				spawns = append(spawns, spawnSite{lit: lit, kind: "go", node: n})
			}
		case *ast.CallExpr:
			if name, lit := parWorker(p, n); lit != nil {
				spawns = append(spawns, spawnSite{lit: lit, kind: name, node: n})
			}
		}
		return true
	})
	return spawns
}

// parWorker recognizes a call to one of internal/par's concurrent
// entry points and returns the worker closure, or ("", nil). Calls whose
// literal limit argument is 1 run serially and return nil.
func parWorker(p *Pass, call *ast.CallExpr) (string, *ast.FuncLit) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/par") {
		return "", nil
	}
	name := fn.Name()
	if !parEachFuncs[name] {
		return "", nil
	}
	if name == "EachLimit" || name == "EachLimitCtx" {
		// The limit is the argument before the worker func.
		if len(call.Args) >= 2 {
			if v, ok := intLit(call.Args[len(call.Args)-2]); ok && v == 1 {
				return "", nil
			}
		}
	}
	var lit *ast.FuncLit
	for _, arg := range call.Args {
		if l, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			lit = l
		}
	}
	return name, lit
}

// capturedWrite is one unsynchronized write inside a closure to a
// variable captured from an enclosing function.
type capturedWrite struct {
	obj types.Object
	pos token.Pos
}

// closureWrites finds direct writes (assignment or ++/--, not through an
// index or field) inside lit's body to variables declared outside it.
// Writes preceded by a mutex Lock() in the closure body are treated as
// synchronized and skipped.
func closureWrites(p *Pass, lit *ast.FuncLit) []capturedWrite {
	var writes []capturedWrite
	record := func(e ast.Expr, pos token.Pos) {
		id := identOf(e)
		if id == nil || id.Name == "_" {
			return
		}
		obj, ok := p.ObjectOf(id).(*types.Var)
		if !ok || obj.IsField() {
			return
		}
		// Must be function-local to some enclosing frame: declared outside
		// the literal but not at package scope (package-level state has its
		// own idioms and owners; the capture rules are about stack escape).
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return
		}
		if mutexHeldBefore(p, lit.Body, pos) {
			return
		}
		writes = append(writes, capturedWrite{obj: obj, pos: pos})
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				record(l, n.Pos())
			}
		case *ast.IncDecStmt:
			record(n.X, n.Pos())
		}
		return true
	})
	return writes
}

// outerWriteAfterSpawn reports a write to obj in the spawning frame that
// can execute after the goroutine is live: in a block the spawn block
// reaches, or later in the spawn block itself. Writes inside other
// closures are not this frame's writes; writes under a mutex are
// synchronized.
func outerWriteAfterSpawn(p *Pass, g *CFG, body *ast.BlockStmt, s spawnSite, spawnBlk *Block, spawnIdx int, obj types.Object) (token.Pos, bool) {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if b == spawnBlk && i <= spawnIdx {
				continue
			}
			if b != spawnBlk && !g.Reaches(spawnBlk, b) {
				continue
			}
			if pos, ok := writesObj(p, n, obj); ok && !mutexHeldBefore(p, body, pos) {
				return pos, true
			}
		}
	}
	return token.NoPos, false
}

// writesObj reports whether emitted node n directly assigns obj.
func writesObj(p *Pass, n ast.Node, obj types.Object) (token.Pos, bool) {
	var pos token.Pos
	found := false
	check := func(e ast.Expr) {
		if id := identOf(e); id != nil && p.ObjectOf(id) == obj {
			found, pos = true, id.Pos()
		}
	}
	nodeRefs(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.AssignStmt:
			for _, l := range c.Lhs {
				check(l)
			}
		case *ast.IncDecStmt:
			check(c.X)
		}
		return !found
	})
	return pos, found
}

// mutexHeldBefore is the synchronization heuristic: somewhere in region,
// before pos, a sync.Mutex/RWMutex Lock (or RLock) is taken. It is
// deliberately coarse — a Lock anywhere earlier in the same region
// counts — because the analyzer's job is flagging code with *no*
// synchronization story, not auditing lock scopes.
func mutexHeldBefore(p *Pass, region ast.Node, pos token.Pos) bool {
	held := false
	ast.Inspect(region, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if t := p.TypeOf(sel.X); t != nil && isMutexType(t) {
			held = true
		}
		return !held
	})
	return held
}

// isMutexType matches sync.Mutex / sync.RWMutex, by value or pointer.
func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// enclosingLoopVars returns the loop variables (for-init or range
// key/value) of every loop in body whose subtree contains node.
func enclosingLoopVars(p *Pass, body *ast.BlockStmt, node ast.Node) []types.Object {
	var vars []types.Object
	addIdent := func(e ast.Expr) {
		if id := identOf(e); id != nil && id.Name != "_" {
			if obj, ok := p.ObjectOf(id).(*types.Var); ok {
				vars = append(vars, obj)
			}
		}
	}
	encloses := func(n ast.Node) bool {
		return n.Pos() <= node.Pos() && node.End() <= n.End()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // the spawn lives in this frame, not a closure
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE && encloses(n) {
				for _, l := range init.Lhs {
					addIdent(l)
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE && encloses(n) {
				addIdent(n.Key)
				addIdent(n.Value)
			}
		}
		return true
	})
	return vars
}

// loopVarPerIteration reports whether the module's Go version gives each
// loop iteration its own variable (go1.22+). Unknown versions are
// assumed modern — the conservative direction for a linter is silence.
func loopVarPerIteration(version string) bool {
	if version == "" {
		return true
	}
	parts := strings.SplitN(version, ".", 3)
	if len(parts) < 2 {
		return true
	}
	major, err1 := strconv.Atoi(parts[0])
	minor, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return true
	}
	return major > 1 || (major == 1 && minor >= 22)
}

// intLit evaluates an integer literal expression.
func intLit(e ast.Expr) (int64, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.ParseInt(lit.Value, 0, 64)
	return v, err == nil
}
