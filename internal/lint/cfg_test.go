package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body from source for CFG shape tests (no
// type information needed to build a graph).
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// blockWith finds the block holding a node matching pred.
func blockWith(t *testing.T, g *CFG, pred func(ast.Node) bool) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			nodeRefs(n, func(c ast.Node) bool {
				if pred(c) {
					found = true
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	t.Fatal("no block matches predicate")
	return nil
}

func callNamed(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestCFGStraightLine(t *testing.T) {
	g := FuncCFG(parseBody(t, "a(); b()"))
	ab := blockWith(t, g, callNamed("a"))
	if ab != blockWith(t, g, callNamed("b")) {
		t.Error("straight-line statements must share a block")
	}
	if !g.Reaches(g.Entry, g.Exit) && ab != g.Entry {
		t.Error("entry must reach exit")
	}
}

func TestCFGIfBranches(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		if cond() {
			a()
		} else {
			b()
		}
		c()`))
	ba := blockWith(t, g, callNamed("a"))
	bb := blockWith(t, g, callNamed("b"))
	bc := blockWith(t, g, callNamed("c"))
	if g.Reaches(ba, bb) || g.Reaches(bb, ba) {
		t.Error("then and else branches must not reach each other")
	}
	if !g.Reaches(ba, bc) || !g.Reaches(bb, bc) {
		t.Error("both branches must reach the join")
	}
}

func TestCFGReturnCutsFlow(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		if cond() {
			a()
			return
		}
		b()`))
	ba := blockWith(t, g, callNamed("a"))
	bb := blockWith(t, g, callNamed("b"))
	if g.Reaches(ba, bb) {
		t.Error("statements after return must be unreachable from the returning branch")
	}
	if !g.Reaches(ba, g.Exit) {
		t.Error("return must reach Exit")
	}
}

func TestCFGForLoopCycle(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		for i := 0; i < n; i++ {
			a()
		}
		b()`))
	ba := blockWith(t, g, callNamed("a"))
	bb := blockWith(t, g, callNamed("b"))
	if !g.InCycle(ba) {
		t.Error("loop body must be on a cycle")
	}
	if g.InCycle(bb) {
		t.Error("statement after the loop must not be on a cycle")
	}
	if !g.Reaches(ba, bb) {
		t.Error("loop body must reach the loop exit")
	}
	// The post statement (i++) must be inside the cycle too.
	post := blockWith(t, g, func(n ast.Node) bool {
		_, ok := n.(*ast.IncDecStmt)
		return ok
	})
	if !g.InCycle(post) {
		t.Error("loop post statement must be on the cycle")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		for _, v := range xs {
			a(v)
		}
		b()`))
	ba := blockWith(t, g, callNamed("a"))
	if !g.InCycle(ba) {
		t.Error("range body must be on a cycle")
	}
	head := blockWith(t, g, func(n ast.Node) bool {
		_, ok := n.(*ast.RangeStmt)
		return ok
	})
	if !g.InCycle(head) {
		t.Error("range head must be on the cycle (per-iteration bindings)")
	}
}

func TestCFGBreakExitsLoop(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		for {
			if cond() {
				break
			}
			a()
		}
		b()`))
	ba := blockWith(t, g, callNamed("a"))
	bb := blockWith(t, g, callNamed("b"))
	if !g.Reaches(ba, bb) {
		t.Error("break must connect the loop to its exit")
	}
	if !g.InCycle(ba) {
		t.Error("body of for{} must still be on a cycle")
	}
}

func TestCFGInfiniteLoopWithoutBreak(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		for {
			a()
		}`))
	ba := blockWith(t, g, callNamed("a"))
	if g.Reaches(ba, g.Exit) {
		t.Error("for{} without break must not reach Exit")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	g := FuncCFG(parseBody(t, `
	outer:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if cond() {
					continue outer
				}
				a()
			}
		}
		b()`))
	ba := blockWith(t, g, callNamed("a"))
	if !g.InCycle(ba) {
		t.Error("inner loop body must be on a cycle")
	}
	if !g.Reaches(ba, blockWith(t, g, callNamed("b"))) {
		t.Error("nested loops must reach the code after them")
	}
}

func TestCFGSwitchClausesJoin(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		switch x {
		case 1:
			a()
		case 2:
			b()
		}
		c()`))
	ba := blockWith(t, g, callNamed("a"))
	bb := blockWith(t, g, callNamed("b"))
	bc := blockWith(t, g, callNamed("c"))
	if g.Reaches(ba, bb) || g.Reaches(bb, ba) {
		t.Error("switch cases must not reach each other without fallthrough")
	}
	if !g.Reaches(ba, bc) || !g.Reaches(bb, bc) {
		t.Error("both cases must join after the switch")
	}
}

func TestCFGFallthroughChains(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		switch x {
		case 1:
			a()
			fallthrough
		case 2:
			b()
		}`))
	ba := blockWith(t, g, callNamed("a"))
	bb := blockWith(t, g, callNamed("b"))
	if !g.Reaches(ba, bb) {
		t.Error("fallthrough must chain case bodies")
	}
}

func TestCFGSelect(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		select {
		case <-ch:
			a()
		default:
			b()
		}
		c()`))
	if !g.Reaches(blockWith(t, g, callNamed("a")), blockWith(t, g, callNamed("c"))) {
		t.Error("select clause must join after the select")
	}
}

func TestCFGGotoBackward(t *testing.T) {
	g := FuncCFG(parseBody(t, `
	again:
		a()
		if cond() {
			goto again
		}
		b()`))
	ba := blockWith(t, g, callNamed("a"))
	if !g.InCycle(ba) {
		t.Error("backward goto must form a cycle")
	}
}

func TestCFGPanicReachesExit(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		if cond() {
			panic("boom")
		}
		a()`))
	pb := blockWith(t, g, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		return ok && id.Name == "panic"
	})
	if g.Reaches(pb, blockWith(t, g, callNamed("a"))) {
		t.Error("panic must not fall through to the next statement")
	}
	if !g.Reaches(pb, g.Exit) {
		t.Error("panic must edge to Exit")
	}
}

func TestCFGClosureBodyExcluded(t *testing.T) {
	g := FuncCFG(parseBody(t, `
		f := func() { inner() }
		outer()`))
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			nodeRefs(n, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "inner" {
						t.Error("closure body nodes must not leak into the enclosing frame's CFG")
					}
				}
				return true
			})
		}
	}
}
