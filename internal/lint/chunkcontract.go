package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChunkContractAnalyzer proves violations of the DecodeChunks offset
// contract (internal/compress.ChunkDecoder): the yield callback must see
// offsets that start at 0, strictly increase, and tile [0, len(dst))
// contiguously. The fused verification path and every streaming consumer
// assume this — an offset that repeats or rewinds silently corrupts
// metric accumulation rather than erroring.
//
// The analyzer is a dataflow proof, not a heuristic: it reports only
// offsets whose reaching definitions make the violation certain on some
// executable path, and stays silent the moment anything is unknown (a
// computed offset, a yield forwarded into a helper closure, a value
// flowing in from a parameter). Four provable shapes:
//
//   - the first yield on some path passes a nonzero constant offset;
//   - a yield that always follows another yield passes constant 0 again;
//   - a yield inside a loop whose offset variable is never reassigned
//     anywhere on the cycle (consecutive iterations repeat the offset);
//   - the offset variable is decremented (--, -= <positive literal>)
//     and a later yield can still observe it.
//
// Implementations with a sanctioned non-contiguous layout would document
// themselves with //lint:chunkcontract, though none should exist: the
// contract is load-bearing for fused verification.
var ChunkContractAnalyzer = &Analyzer{
	Name: "chunkcontract",
	Doc:  "DecodeChunks yields must be strictly increasing and contiguous from offset 0",
	Run:  runChunkContract,
}

func runChunkContract(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "DecodeChunks" || fd.Body == nil {
				continue
			}
			yield := yieldParam(p, fd)
			if yield == nil {
				continue
			}
			checkChunkContract(p, fd.Body, yield)
		}
	}
}

// yieldParam returns the object of the trailing yield-callback parameter
// when the function matches the ChunkDecoder shape: last parameter of
// type func(int, []float32) error.
func yieldParam(p *Pass, fd *ast.FuncDecl) types.Object {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	last := params.List[len(params.List)-1]
	if len(last.Names) != 1 {
		return nil
	}
	sig, ok := p.TypeOf(last.Type).(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return nil
	}
	if !types.Identical(sig.Params().At(0).Type(), types.Typ[types.Int]) {
		return nil
	}
	slice, ok := sig.Params().At(1).Type().(*types.Slice)
	if !ok || !types.Identical(slice.Elem(), types.Typ[types.Float32]) {
		return nil
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return nil
	}
	return p.ObjectOf(last.Names[0])
}

func checkChunkContract(p *Pass, body *ast.BlockStmt, yield types.Object) {
	calls, confined := yieldCalls(p, body, yield)
	if !confined || len(calls) == 0 {
		return // yield escapes into a closure or is passed around: unknown
	}
	g := FuncCFG(body)
	rd := ComputeReachingDefs(p, g)

	// Map each yield call to its program point and collect, per block, the
	// source positions of the yield calls it contains.
	type site struct {
		call *ast.CallExpr
		blk  *Block
		idx  int
	}
	var sites []site
	yieldPosIn := make(map[*Block][]token.Pos)
	for _, c := range calls {
		blk, idx := g.FindNested(c)
		if blk == nil {
			return // a yield outside the frame graph: give up, stay silent
		}
		sites = append(sites, site{call: c, blk: blk, idx: idx})
		yieldPosIn[blk] = append(yieldPosIn[blk], c.Pos())
	}

	// canBeFirst: is there a path from entry to this call crossing no
	// earlier yield?
	canBeFirst := func(s site) bool {
		seen := make([]bool, len(g.Blocks))
		var dfs func(b *Block) bool
		dfs = func(b *Block) bool {
			if seen[b.Index] {
				return false
			}
			seen[b.Index] = true
			if b == s.blk {
				for _, pos := range yieldPosIn[b] {
					if pos < s.call.Pos() {
						return false
					}
				}
				return true
			}
			if len(yieldPosIn[b]) > 0 {
				return false // every path through here already yielded
			}
			for _, succ := range b.Succs {
				if dfs(succ) {
					return true
				}
			}
			return false
		}
		return dfs(g.Entry)
	}

	// offsetConst resolves a yield's offset argument to a constant: the
	// literal itself, or an identifier all of whose reaching definitions
	// are the same integer literal. ok=false means unknown.
	offsetConst := func(s site) (int64, bool) {
		arg := ast.Unparen(s.call.Args[0])
		if v, ok := intLit(arg); ok {
			return v, true
		}
		id, ok := arg.(*ast.Ident)
		if !ok {
			return 0, false
		}
		defs, ok := rd.At(p.ObjectOf(id), s.call)
		if !ok {
			return 0, false
		}
		var val int64
		for i, d := range defs {
			if d.Rhs == nil {
				return 0, false
			}
			v, isLit := intLit(d.Rhs)
			if !isLit || (i > 0 && v != val) {
				return 0, false
			}
			val = v
		}
		return val, true
	}

	for _, s := range sites {
		first := canBeFirst(s)
		if v, known := offsetConst(s); known {
			if first && v != 0 {
				p.Reportf(s.call.Pos(), "the first offset this DecodeChunks can yield is %d, violating the contiguous-from-zero offset contract: the first chunk must start at offset 0", v)
				continue
			}
			if !first && v == 0 {
				p.Reportf(s.call.Pos(), "this yield always follows an earlier yield but passes offset 0 again, violating the strictly-increasing offset contract")
				continue
			}
		}
		if g.InCycle(s.blk) {
			if stuck, name := offsetStuckInLoop(p, g, rd, s.blk, s.call); stuck {
				p.Reportf(s.call.Pos(), "the %s offset never changes on the loop this yield sits in, so consecutive yields repeat the same offset, violating the strictly-increasing contract", name)
				continue
			}
		}
	}

	// Backwards movement: a decrement of any variable used as a yield
	// offset, observable by a later yield.
	offsetObjs := make(map[types.Object]bool)
	for _, s := range sites {
		if id, ok := ast.Unparen(s.call.Args[0]).(*ast.Ident); ok {
			if obj := p.ObjectOf(id); obj != nil {
				offsetObjs[obj] = true
			}
		}
	}
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			obj, pos, ok := decrements(p, n, offsetObjs)
			if !ok {
				continue
			}
			for _, s := range sites {
				if id, isIdent := ast.Unparen(s.call.Args[0]).(*ast.Ident); !isIdent || p.ObjectOf(id) != obj {
					continue
				}
				laterInBlock := s.blk == b && s.idx > i
				if laterInBlock || g.Reaches(b, s.blk) {
					p.Reportf(pos, "the yield offset %q moves backwards here and a later yield can observe it, violating the strictly-increasing offset contract", obj.Name())
					break
				}
			}
		}
	}
}

// offsetStuckInLoop reports whether the yield's offset argument is a
// tracked variable that no block on the call's cycle reassigns (or a
// bare constant, which trivially never advances). name is the offset's
// description for the diagnostic.
func offsetStuckInLoop(p *Pass, g *CFG, rd *ReachingDefs, blk *Block, call *ast.CallExpr) (bool, string) {
	arg := ast.Unparen(call.Args[0])
	if _, ok := intLit(arg); ok {
		return true, "constant"
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return false, ""
	}
	obj := p.ObjectOf(id)
	if obj == nil {
		return false, ""
	}
	if _, known := rd.At(obj, call); !known {
		return false, "" // parameter or capture: its mutation is invisible here
	}
	for _, b := range g.Blocks {
		onCycle := b == blk || (g.Reaches(blk, b) && g.Reaches(b, blk))
		if onCycle && assignsIn(p, b, obj) {
			return false, ""
		}
	}
	return true, `"` + obj.Name() + `"`
}

// decrements matches off-- and off -= <positive int literal> against the
// set of known offset variables.
func decrements(p *Pass, n ast.Node, offsets map[types.Object]bool) (types.Object, token.Pos, bool) {
	var obj types.Object
	var pos token.Pos
	nodeRefs(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.IncDecStmt:
			if c.Tok == token.DEC {
				if id := identOf(c.X); id != nil && offsets[p.ObjectOf(id)] {
					obj, pos = p.ObjectOf(id), c.Pos()
				}
			}
		case *ast.AssignStmt:
			if c.Tok == token.SUB_ASSIGN && len(c.Lhs) == 1 && len(c.Rhs) == 1 {
				if v, ok := intLit(c.Rhs[0]); ok && v > 0 {
					if id := identOf(c.Lhs[0]); id != nil && offsets[p.ObjectOf(id)] {
						obj, pos = p.ObjectOf(id), c.Pos()
					}
				}
			}
		}
		return obj == nil
	})
	return obj, pos, obj != nil
}

// yieldCalls collects every call through the yield parameter in the
// function's own frame. confined is false when yield is referenced any
// other way — inside a closure, passed as an argument, assigned — which
// makes the call set incomplete and all proofs unsound.
func yieldCalls(p *Pass, body *ast.BlockStmt, yield types.Object) (calls []*ast.CallExpr, confined bool) {
	confined = true
	var inLit int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			if !confined {
				return false
			}
			switch c := c.(type) {
			case *ast.FuncLit:
				inLit++
				walk(c.Body)
				inLit--
				return false
			case *ast.CallExpr:
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && p.ObjectOf(id) == yield {
					if inLit > 0 {
						confined = false // yielding from a closure: frame CFG can't order it
						return false
					}
					calls = append(calls, c)
					// Arguments may still mention yield (they do not here,
					// but stay safe): inspect them below via the normal walk
					// of children minus Fun. Simplest: mark the Fun ident as
					// accounted for by skipping it.
					for _, a := range c.Args {
						walk(a)
					}
					return false
				}
			case *ast.Ident:
				if p.ObjectOf(c) == yield {
					confined = false // any non-call use: escape
					return false
				}
			}
			return true
		})
	}
	walk(body)
	return calls, confined
}
