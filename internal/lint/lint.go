// Package lint is a small static-analysis driver built entirely on the
// standard library (go/parser + go/types; no golang.org/x/tools). It
// exists because this repo's correctness rests on invariants that go vet
// cannot see: the experiment pipeline must be bit-reproducible (no map
// iteration order leaking into output, no wall-clock or unseeded
// randomness in deterministic packages), the zero-allocation codec
// pipeline pairs every pooled Get with a Put on every path, and the
// statistics packages never compare floats with == by accident.
//
// Each invariant is mechanized as an Analyzer; cmd/climatelint loads
// every package in the module and runs all of them. Analyzers are driven
// by testdata corpora with `// want "regexp"` expectation comments (see
// expect.go) so their exact contract is pinned by tests.
//
// # Suppression
//
// A finding is suppressed with a `//lint:<analyzer>` comment — either at
// the end of the offending line or alone on the line directly above it.
// Everything after the analyzer name is a free-form justification, which
// is mandatory by convention (the corpus tests accept a bare directive,
// but every suppression in this repo states its reason):
//
//	if v == fill { // lint note: see parseDirectives for the exact grammar
//	//lint:floateq fill values are exact sentinels, not computed floats
//	if v == fill {
//
// The form `//lint:ignore <analyzer> reason` is accepted as an alias.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding reported by an analyzer. Suppressed marks a
// finding covered by a //lint: directive; Run drops those, RunAll keeps
// them so machine consumers (-json) can audit what the directives hide.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run inspects a fully
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	// Paths restricts the analyzer to packages whose import path ends
	// with one of these suffixes. Empty means every package. A package
	// under testdata/src/<Name> always qualifies, so each analyzer's own
	// corpus exercises it regardless of the restriction.
	Paths []string
	Run   func(*Pass)
}

// appliesTo reports whether the analyzer should run on a package.
func (a *Analyzer) appliesTo(pkgPath string) bool {
	if strings.Contains(pkgPath, "/testdata/src/"+a.Name) {
		return true
	}
	if len(a.Paths) == 0 {
		return true
	}
	for _, suf := range a.Paths {
		if pkgPath == suf || strings.HasSuffix(pkgPath, "/"+suf) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Module is the module path ("climcompress"); analyzers use it to
	// distinguish this repo's own APIs from the standard library.
	Module string

	report func(Diagnostic)
}

// Reportf records a finding at pos. A //lint: directive on that line (or
// the line above) marks it suppressed; the driver decides whether
// suppressed findings are dropped (Run) or surfaced flagged (RunAll).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Pos:        position,
		Analyzer:   p.Analyzer.Name,
		Message:    fmt.Sprintf(format, args...),
		Suppressed: p.Pkg.suppressed(p.Analyzer.Name, position),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Analyzers returns the full set, in deterministic (alphabetical) order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicMixAnalyzer,
		ChunkContractAnalyzer,
		CtxFlowAnalyzer,
		ErrDropAnalyzer,
		FloatEqAnalyzer,
		GoCaptureAnalyzer,
		MapOrderAnalyzer,
		NonDetAnalyzer,
		PoolPairAnalyzer,
		SliceViewAnalyzer,
	}
}

// Run applies each analyzer to each package it applies to and returns
// every unsuppressed diagnostic, sorted by position then analyzer so the
// output is byte-stable.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, d := range RunAll(pkgs, analyzers) {
		if !d.Suppressed {
			diags = append(diags, d)
		}
	}
	return diags
}

// RunAll is Run including suppressed findings (flagged, not dropped):
// the raw feed for machine-readable output and baseline diffing.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.appliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Module:   pkg.Module,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// directive is one parsed //lint: comment.
type directive struct {
	line     int    // source line the comment sits on
	analyzer string // analyzer name it suppresses
}

// parseDirectives extracts //lint: suppression directives from a
// comment's text. Grammar (text is the comment with the // or /* */
// markers already stripped):
//
//	lint:<name> [justification...]
//	lint:ignore <name> [justification...]
//
// A single comment can hold only one directive. Unknown or malformed
// directives are ignored — they suppress nothing — rather than being an
// error, so ordinary prose mentioning "lint:" cannot break a build.
func parseDirectives(text string) (analyzer string, ok bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "lint:") {
		return "", false
	}
	fields := strings.Fields(text[len("lint:"):])
	if len(fields) == 0 {
		return "", false
	}
	name := fields[0]
	if name == "ignore" {
		if len(fields) < 2 {
			return "", false
		}
		name = fields[1]
	}
	if !validAnalyzerName(name) {
		return "", false
	}
	return name, true
}

// validAnalyzerName reports whether s looks like an analyzer name:
// nonempty ASCII lower-case letters only. Keeping the charset tight
// means a stray "lint:fixme(later)" comment is prose, not a directive.
func validAnalyzerName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 'a' || s[i] > 'z' {
			return false
		}
	}
	return true
}

// fileDirectives collects every suppression directive in a parsed file.
// The fset maps comment positions to lines.
func fileDirectives(fset *token.FileSet, f *ast.File) []directive {
	var ds []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			switch {
			case strings.HasPrefix(text, "//"):
				text = text[2:]
			case strings.HasPrefix(text, "/*"):
				text = strings.TrimSuffix(text[2:], "*/")
			}
			if name, ok := parseDirectives(text); ok {
				ds = append(ds, directive{line: fset.Position(c.Pos()).Line, analyzer: name})
			}
		}
	}
	return ds
}
