package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkClimatelint times one full analyzer pass — all analyzers over
// every package in the module — against packages loaded once up front.
// Loading (parse + type-check) is excluded so the number tracks the
// CFG/dataflow engine and analyzer walks themselves; the benchjson
// lint/climatelint-repo entry covers the end-to-end wall-clock including
// the load. The pass doubles as a clean-module assertion.
func BenchmarkClimatelint(b *testing.B) {
	l, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.Load(filepath.Join(l.ModuleDir, "..."))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, Analyzers()); len(diags) != 0 {
			b.Fatalf("module not lint-clean: %d finding(s)", len(diags))
		}
	}
}
