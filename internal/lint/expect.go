package lint

import (
	"fmt"
	"go/ast"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Corpus expectation support: testdata files mark the diagnostics they
// must produce with trailing comments of the form
//
//	x := a == b // want "floating-point"
//	y := c == d // want "first" "second"
//
// Each quoted string is an anchored-nowhere regexp that must match one
// diagnostic reported on that line. CheckExpectations diffs a run's
// diagnostics against a package's expectations and returns one problem
// description per mismatch — unmatched expectations and unexpected
// diagnostics both count, so a corpus pins analyzer behavior from both
// sides.

// expectation is one `// want` clause.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseWant extracts the quoted patterns from a want comment's text
// (the part after "want"). It returns nil if nothing parses; a corpus
// with a malformed want line fails its test through the "unexpected
// diagnostic" side of the diff, which is much easier to debug than
// silent acceptance.
func parseWant(text string) []string {
	var pats []string
	rest := strings.TrimSpace(text)
	for strings.HasPrefix(rest, `"`) {
		// strconv.QuotedPrefix understands escapes so patterns may
		// contain \" and friends.
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return pats
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			return pats
		}
		pats = append(pats, unq)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return pats
}

// expectationsOf collects every want clause in the package's files.
func expectationsOf(pkg *Package) ([]*expectation, error) {
	var exps []*expectation
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := commentText(c)
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				pats := parseWant(rest)
				if len(pats) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", fname, line, text)
				}
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", fname, line, pat, err)
					}
					exps = append(exps, &expectation{file: fname, line: line, pattern: re})
				}
			}
		}
	}
	return exps, nil
}

func commentText(c *ast.Comment) string {
	text := c.Text
	switch {
	case strings.HasPrefix(text, "//"):
		return text[2:]
	case strings.HasPrefix(text, "/*"):
		return strings.TrimSuffix(text[2:], "*/")
	}
	return text
}

// CheckExpectations compares diagnostics against the package's want
// comments and returns a sorted list of mismatches (empty means the
// corpus and the analyzer agree exactly).
func CheckExpectations(pkg *Package, diags []Diagnostic) ([]string, error) {
	exps, err := expectationsOf(pkg)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, d := range diags {
		matched := false
		for _, e := range exps {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, e := range exps {
		if !e.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.pattern))
		}
	}
	sort.Strings(problems)
	return problems, nil
}
