package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderAnalyzer mechanizes the bug class behind the PR 3
// report.HistogramChart fix: Go map iteration order is deliberately
// randomized, so a `range` over a map that feeds ordered output makes
// that output differ run to run — fatal in a pipeline whose figures and
// artifact digests are pinned by exact-byte tests.
//
// It reports a range over a map-typed value when the loop body
//
//   - writes through anything implementing io.Writer (including
//     strings.Builder / bytes.Buffer method calls) or calls a
//     fmt.Print/Fprint-family function, or
//   - appends to a slice declared outside the loop that is never
//     subsequently passed to a sort or slices call in the same function
//     (the collect-then-sort idiom is the sanctioned fix and is not
//     flagged).
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map must not feed ordered output without an intervening sort",
	Run:  runMapOrder,
}

var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// fmtOutputFuncs are fmt functions that emit directly to a stream. The
// Sprint family only builds a value, so it is order-sensitive only if
// the result itself is accumulated — which the append rule covers.
var fmtOutputFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					mapOrderBody(p, fn.Body)
				}
			case *ast.FuncLit:
				mapOrderBody(p, fn.Body)
			}
			return true
		})
	}
}

// mapOrderBody checks every map-range directly inside body (nested
// function literals get their own pass).
func mapOrderBody(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := p.TypeOf(rs.X); t == nil || !isMapType(t) {
			return true
		}
		checkMapRange(p, body, rs)
		return true
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one range-over-map for order-sensitive sinks.
func checkMapRange(p *Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt) {
	type appendSite struct {
		obj types.Object
		pos token.Pos
	}
	var appends []appendSite
	seen := make(map[types.Object]bool)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || calleeName(call) != "append" || len(call.Args) == 0 {
					continue
				}
				if _, isBuiltin := p.ObjectOf(identOf(call.Fun)).(*types.Builtin); !isBuiltin {
					continue
				}
				if i >= len(s.Lhs) && len(s.Lhs) != 1 {
					continue
				}
				lhs := s.Lhs[min(i, len(s.Lhs)-1)]
				id := identOf(lhs)
				if id == nil || id.Name == "_" {
					continue // appending into a map element or field: order-independent storage
				}
				obj := p.ObjectOf(id)
				if obj == nil || seen[obj] {
					continue
				}
				// Only slices declared outside the loop accumulate
				// across iterations in iteration order.
				if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
					continue
				}
				seen[obj] = true
				appends = append(appends, appendSite{obj: obj, pos: s.Pos()})
			}
		case *ast.CallExpr:
			if importedPackage(p, s) == "fmt" && fmtOutputFuncs[calleeName(s)] {
				p.Reportf(s.Pos(), "fmt.%s inside range over map: output order depends on map iteration order", calleeName(s))
				return true
			}
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok && writerMethods[sel.Sel.Name] {
				if implementsWriter(p.TypeOf(sel.X)) {
					p.Reportf(s.Pos(), "%s on an io.Writer inside range over map: output order depends on map iteration order", sel.Sel.Name)
				}
			}
		}
		return true
	})

	for _, site := range appends {
		if !sortedAfter(p, enclosing, rs, site.obj) {
			p.Reportf(site.pos, "slice %q is built from a range over a map and never sorted: element order depends on map iteration order", site.obj.Name())
		}
	}
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// sortedAfter reports whether obj is passed to any sort or slices call
// after the range statement ends, within the same function body.
func sortedAfter(p *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		switch importedPackage(p, call) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if usesObject(p, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
