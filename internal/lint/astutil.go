package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared AST/type helpers for the analyzers.

// calleeFunc resolves a call expression to the function or method object
// it invokes, or nil (builtins, calls through function values, etc.).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// importedPackage returns the import path of the package a selector
// call like pkg.Fn refers to, or "" if the receiver is not a package
// name.
func importedPackage(p *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.ObjectOf(id).(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// calleeName returns the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isModuleOwn reports whether obj is declared inside this module.
func isModuleOwn(p *Pass, obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == p.Module || len(path) > len(p.Module) && path[:len(p.Module)+1] == p.Module+"/"
}

// returnsError reports whether the function's result list includes the
// built-in error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(p *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && p.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// ioWriterIface is a structurally built io.Writer, so analyzers can ask
// "does this type implement io.Writer" without the analyzed package
// importing io.
var ioWriterIface = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", errorType),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

// implementsWriter reports whether t (or *t) implements io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriterIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriterIface)
	}
	return false
}

// isPanicCall reports whether the statement is a call to the builtin
// panic.
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
