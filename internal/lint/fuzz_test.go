package lint

import (
	"strings"
	"testing"
)

// FuzzDirectives hammers the two tiny parsers this package adds — the
// //lint: suppression grammar and the // want expectation grammar —
// with arbitrary comment text. Both must never panic, and every
// accepted directive must satisfy the documented invariants.
func FuzzDirectives(f *testing.F) {
	f.Add("lint:floateq fill sentinels")
	f.Add("lint:ignore poolpair handed off to caller")
	f.Add("lint:")
	f.Add("lint:ignore")
	f.Add(`want "never sorted"`)
	f.Add(`"a" "b" trailing prose`)
	f.Add(`"esc\"aped \n pattern"`)
	f.Add("\"unterminated")
	f.Add(strings.Repeat(`"x" `, 50))
	f.Fuzz(func(t *testing.T, text string) {
		name, ok := parseDirectives(text)
		if ok {
			if !validAnalyzerName(name) {
				t.Errorf("parseDirectives(%q) accepted invalid name %q", text, name)
			}
		} else if name != "" {
			t.Errorf("parseDirectives(%q) rejected but returned name %q", text, name)
		}
		for i, pat := range parseWant(text) {
			if pat == "" && i == 0 && !strings.HasPrefix(strings.TrimSpace(text), `""`) {
				t.Errorf("parseWant(%q) invented an empty pattern", text)
			}
		}
	})
}
