package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer enforces the daemon's cancellation story. climatebenchd
// promises that a dropped connection or SIGTERM stops in-flight
// verification work; that promise only holds if every library path
// threads the caller's context downward. Two rules:
//
//   - Constructing context.Background() (or TODO()) in a function that
//     already has a caller's ctx in scope detaches everything below from
//     cancellation. Thread the ctx that is already there. A deliberate
//     detach (a shutdown grace timer, say) states its reason with
//     //lint:ctxflow.
//
//   - A par.EachCtx / EachLimitCtx worker closure that loops without ever
//     observing any context — no ctx.Done(), no ctx.Err(), not even
//     passing ctx to a callee — keeps burning CPU after cancellation;
//     EachCtx only stops *scheduling* workers, it cannot preempt one.
//     Any reference to a context-typed value inside the loop counts as
//     observing (a callee that receives ctx is assumed to check it), so
//     the rule is silent wherever cancellation is plausibly handled.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Background constructed where a caller ctx is in scope; ctx-blind loops in EachCtx workers",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					ctxScan(p, d.Body, hasCtxParam(p, d.Type))
				}
			case *ast.GenDecl:
				// Package-level func-literal values (rare, but cheap to
				// cover): each literal starts a fresh scope chain.
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						ctxScan(p, lit.Body, hasCtxParam(p, lit.Type))
						return false
					}
					return true
				})
			}
		}
	}
}

// ctxScan walks one function body. haveCtx records whether some
// enclosing function (this one or an outer literal chain) has a
// context.Context parameter in scope.
func ctxScan(p *Pass, body *ast.BlockStmt, haveCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ctxScan(p, n.Body, haveCtx || hasCtxParam(p, n.Type))
			return false
		case *ast.CallExpr:
			if haveCtx && importedPackage(p, n) == "context" {
				switch calleeName(n) {
				case "Background", "TODO":
					p.Reportf(n.Pos(), "context.%s() constructed here discards the caller's ctx already in scope, detaching this path from cancellation: thread the existing context (or annotate a deliberate detach with //lint:ctxflow)", calleeName(n))
				}
			}
			if name, lit := parWorker(p, n); lit != nil && (name == "EachCtx" || name == "EachLimitCtx") {
				ctxBlindLoops(p, name, lit)
			}
		}
		return true
	})
}

// ctxBlindLoops reports loops in an EachCtx-family worker closure that
// never reference any context-typed value.
func ctxBlindLoops(p *Pass, parName string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate frame; if it is itself spawned, it gets its own pass
		case *ast.ForStmt, *ast.RangeStmt:
			if !referencesContext(p, n) {
				p.Reportf(n.Pos(), "this loop inside a par.%s worker never observes any context; a cancelled ctx stops scheduling new workers but cannot preempt this one, so long iterations keep running after shutdown: check ctx.Err() in the loop (or pass ctx to the work it calls)", parName)
			}
			return false // nested loops inherit the outer loop's finding
		}
		return true
	})
}

// referencesContext reports whether any identifier under n has type
// context.Context.
func referencesContext(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok {
			if obj := p.ObjectOf(id); obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasCtxParam reports whether a function type declares a
// context.Context parameter.
func hasCtxParam(p *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, fld := range ft.Params.List {
		if t := p.TypeOf(fld.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// isContextType matches the named type context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
